// Package lejit is the public API of the LeJIT library: Just-in-Time Logic
// Enforcement for autoregressive models on network-management tasks
// (Hè & Apostolaki, HotNets '25).
//
// LeJIT interleaves an SMT solver into a language model's token-by-token
// inference. Before each character is emitted, the solver computes — from a
// configurable set of network rules and everything generated so far — which
// next characters still lead to a rule-compliant completion, masks the rest,
// and renormalizes. Outputs are guaranteed to satisfy every rule while
// preserving the model's learned distribution among compliant choices.
//
// The same trained model is repurposed across tasks by swapping rule sets:
//
//	pipe, _ := lejit.NewPipeline(model, schema, imputationRules)
//	rec, _ := pipe.Impute(coarseCounters, rng)   // telemetry imputation
//
//	pipe2, _ := lejit.NewPipeline(model, schema, synthesisRules)
//	rec, _ = pipe2.Generate(rng)                 // synthetic data
//
// See examples/quickstart for a complete runnable program and DESIGN.md for
// the architecture.
package lejit

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/mining"
	"repro/internal/nn"
	"repro/internal/rules"
	"repro/internal/vocab"
)

// Re-exported domain types. The rule language, schema model, and record
// representation are defined in internal/rules; these aliases are the public
// names.
type (
	// Schema declares the telemetry fields of one record shape.
	Schema = rules.Schema
	// Field declares one telemetry field (scalar or fixed-length vector)
	// with its finite integer domain.
	Field = rules.Field
	// Record holds one concrete record: field name → values.
	Record = rules.Record
	// RuleSet is a parsed collection of rules bound to a schema.
	RuleSet = rules.RuleSet
	// Rule is one named rule.
	Rule = rules.Rule
	// Model is a trained autoregressive language model.
	Model = nn.Model
	// ModelConfig describes a model architecture.
	ModelConfig = nn.Config
	// TrainConfig controls model training.
	TrainConfig = nn.TrainConfig
	// Tokenizer is the character-level tokenizer.
	Tokenizer = vocab.Tokenizer
	// Stats reports what one decode did (tokens, masked steps, solver calls).
	Stats = core.Stats
	// Slot is one value position in the output grammar.
	Slot = core.Slot
)

// Field kinds.
const (
	Scalar = rules.Scalar
	Vector = rules.Vector
)

// NewSchema builds a schema from fields (error on duplicates/empty domains).
func NewSchema(fields ...Field) (*Schema, error) { return rules.NewSchema(fields...) }

// MustSchema is NewSchema that panics on error.
func MustSchema(fields ...Field) *Schema { return rules.MustSchema(fields...) }

// ParseRules parses rule-DSL source against a schema. The DSL supports
// bounds, linear arithmetic, sum/max/min aggregates, chained comparisons,
// forall/exists quantifiers, and implications; see internal/rules.
func ParseRules(src string, schema *Schema) (*RuleSet, error) {
	return rules.ParseRuleSet(src, schema)
}

// MineOptions configures automatic rule discovery (the NetNomos-style miner).
type MineOptions struct {
	// Fields restricts mining to these schema fields (nil → all).
	Fields []string
	// Slack widens mined bounds for generalization to unseen data.
	Slack int64
	// Coeffs are the multipliers tried in pairwise A ≤ k·B + c rules
	// (nil → {1, 2}).
	Coeffs []int64
}

// MineRules discovers hard rules from training records; every returned rule
// holds on every input record.
func MineRules(recs []Record, schema *Schema, opts MineOptions) (*RuleSet, error) {
	return mining.Mine(recs, schema, mining.Config{
		Fields: opts.Fields, Slack: opts.Slack, Coeffs: opts.Coeffs,
	})
}

// TelemetryTokenizer returns the character-level tokenizer for the telemetry
// text format (digits plus ',', '|', ':' and newline).
func TelemetryTokenizer() *Tokenizer { return vocab.Telemetry() }

// NewModel initializes an untrained model with the given architecture.
func NewModel(cfg ModelConfig, seed int64) (*Model, error) { return nn.New(cfg, seed) }

// LoadModel reads a model previously written with (*Model).Save.
func LoadModel(r io.Reader) (*Model, error) { return nn.Load(r) }

// TrainOnRecords renders records in the telemetry text format of the given
// schema, tokenizes them, and trains the model, returning the per-step loss
// history.
func TrainOnRecords(m *Model, recs []Record, schema *Schema, tc TrainConfig) ([]float64, error) {
	tok := vocab.Telemetry()
	seqs := make([][]int, 0, len(recs))
	for i, rec := range recs {
		line, err := FormatRecord(rec, schema)
		if err != nil {
			return nil, fmt.Errorf("lejit: rendering record %d: %w", i, err)
		}
		seq, err := tok.EncodeSeq(line)
		if err != nil {
			return nil, fmt.Errorf("lejit: encoding record %d: %w", i, err)
		}
		seqs = append(seqs, seq)
	}
	return m.Train(seqs, tc)
}

// PipelineOption customizes a Pipeline.
type PipelineOption func(*core.Config)

// WithTemperature sets the sampling temperature (default 1.0).
func WithTemperature(t float64) PipelineOption {
	return func(c *core.Config) { c.Temperature = t }
}

// WithTopK restricts sampling to the K most likely admissible tokens.
func WithTopK(k int) PipelineOption {
	return func(c *core.Config) { c.TopK = k }
}

// WithGrammar overrides the output grammar (default: the telemetry grammar
// over the schema's scalar fields followed by its vector field).
func WithGrammar(slots []Slot) PipelineOption {
	return func(c *core.Config) { c.Slots = slots }
}

// WithoutSolver downgrades enforcement to structural masking only (grammar +
// field domains) — the constrained-decoding baseline, useful for ablations.
func WithoutSolver() PipelineOption {
	return func(c *core.Config) { c.Mode = core.StructureOnly }
}

// WithMaxAttempts caps rejection-sampling attempts (default 500).
func WithMaxAttempts(n int) PipelineOption {
	return func(c *core.Config) { c.MaxAttempts = n }
}

// Pipeline couples a trained model with a rule set for guided decoding.
// A Pipeline is not safe for concurrent use; build one per goroutine or use
// ImputeBatch, which parallelizes internally.
type Pipeline struct {
	eng    *core.Engine
	cfg    core.Config
	rules  *RuleSet
	schema *Schema
}

// NewPipeline assembles a LeJIT pipeline. The default grammar renders the
// schema's scalar fields (declaration order, ',' separated, then '|')
// followed by its single vector field (',' separated, final newline) —
// matching the telemetry text format the model is trained on. Pass
// WithGrammar for other shapes.
func NewPipeline(m *Model, schema *Schema, rs *RuleSet, opts ...PipelineOption) (*Pipeline, error) {
	cfg := core.Config{
		LM:     core.WrapNN(m),
		Tok:    vocab.Telemetry(),
		Schema: schema,
		Rules:  rs,
		Mode:   core.LeJIT,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.Slots == nil {
		slots, err := defaultGrammar(schema)
		if err != nil {
			return nil, err
		}
		cfg.Slots = slots
	}
	eng, err := core.NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	return &Pipeline{eng: eng, cfg: cfg, rules: rs, schema: schema}, nil
}

// defaultGrammar derives the telemetry grammar from the schema: scalars in
// declaration order, then the vector field (exactly one required).
func defaultGrammar(schema *Schema) ([]Slot, error) {
	var coarse []string
	fine := ""
	for _, f := range schema.Fields() {
		if f.Kind == rules.Vector {
			if fine != "" {
				return nil, fmt.Errorf("lejit: schema has multiple vector fields; pass WithGrammar")
			}
			fine = f.Name
			continue
		}
		coarse = append(coarse, f.Name)
	}
	if fine == "" {
		return nil, fmt.Errorf("lejit: schema has no vector field; pass WithGrammar")
	}
	return core.TelemetryGrammar(schema, coarse, fine)
}

// Impute generates the fields not covered by known, conditioned on the known
// prefix, with Just-in-Time rule enforcement. The returned record satisfies
// every rule in the pipeline's rule set.
func (p *Pipeline) Impute(known Record, rng *rand.Rand) (Record, Stats, error) {
	res, err := p.eng.Impute(known, rng)
	return res.Rec, res.Stats, err
}

// Generate produces a full record unconditionally under rule enforcement.
func (p *Pipeline) Generate(rng *rand.Rand) (Record, Stats, error) {
	res, err := p.eng.Generate(rng)
	return res.Rec, res.Stats, err
}

// Sample decodes without any rule enforcement (the vanilla baseline).
func (p *Pipeline) Sample(known Record, rng *rand.Rand) (Record, Stats, error) {
	res, err := p.eng.Vanilla(known, rng)
	return res.Rec, res.Stats, err
}

// SampleRejection resamples until the output complies with the rules (the
// rejection baseline); errors once the attempt cap is exhausted.
func (p *Pipeline) SampleRejection(known Record, rng *rand.Rand) (Record, Stats, error) {
	res, err := p.eng.Rejection(known, rng)
	return res.Rec, res.Stats, err
}

// SampleRepair decodes freely and projects violating outputs onto the rules
// by L1-minimal repair (the post-hoc baseline).
func (p *Pipeline) SampleRepair(known Record, rng *rand.Rand) (Record, Stats, error) {
	res, err := p.eng.PostHoc(known, rng)
	return res.Rec, res.Stats, err
}

// ImputeBeam decodes with beam search of the given width instead of
// sampling: deterministic, (approximately) most-likely rule-compliant
// output; Stats.LogProb carries the sequence's renormalized log-probability.
func (p *Pipeline) ImputeBeam(known Record, width int) (Record, Stats, error) {
	res, err := p.eng.BeamImpute(known, width)
	return res.Rec, res.Stats, err
}

// ImputeBatch decodes many prompts in parallel (workers ≤ 0 → GOMAXPROCS),
// returning per-prompt records and errors in prompt order. Deterministic in
// seed regardless of worker count. The pipeline's engine is reused: worker
// clones share its compiled rule formula, so spin-up is cheap.
func (p *Pipeline) ImputeBatch(prompts []Record, workers int, seed int64) ([]Record, []error, error) {
	out, err := p.eng.DecodeBatch(prompts, workers, seed, nil)
	if err != nil {
		return nil, nil, err
	}
	recs := make([]Record, len(out))
	errs := make([]error, len(out))
	for i, r := range out {
		recs[i], errs[i] = r.Res.Rec, r.Err
	}
	return recs, errs, nil
}

// Diagnose explains an infeasible prompt: it returns a minimal set of rule
// names that, together with the known values, admit no completion.
func (p *Pipeline) Diagnose(known Record) ([]string, error) {
	return p.eng.DiagnoseInfeasible(known)
}

// Violations returns the names of the pipeline rules rec violates.
func (p *Pipeline) Violations(rec Record) ([]string, error) {
	if p.rules == nil {
		return nil, nil
	}
	return p.rules.Violations(rec)
}

// Rules returns the pipeline's rule set.
func (p *Pipeline) Rules() *RuleSet { return p.rules }

// FormatRecord renders a record in the telemetry text format under the given
// schema (scalars in declaration order, then the vector field).
func FormatRecord(rec Record, schema *Schema) (string, error) {
	slots, err := defaultGrammar(schema)
	if err != nil {
		return "", err
	}
	var b []byte
	for _, s := range slots {
		vs, ok := rec[s.Field]
		if !ok || s.Index >= len(vs) {
			return "", fmt.Errorf("lejit: record missing %s[%d]", s.Field, s.Index)
		}
		b = append(b, fmt.Sprintf("%d%c", vs[s.Index], s.Sep)...)
	}
	return string(b), nil
}

// IsInfeasible reports whether err indicates that no rule-compliant
// completion exists for the given prompt.
func IsInfeasible(err error) bool {
	_, ok := err.(core.ErrInfeasible)
	return ok
}

// TelemetrySchema returns the canonical datacenter-telemetry schema used by
// the built-in simulator and the paper's experiments: five coarse counters
// (TotalIngress, Congestion, Retrans, Egress, Conns) plus the fine-grained
// ingress vector I[0..4].
func TelemetrySchema() *Schema { return dataset.Schema() }

// SimulateTelemetry generates per-rack datacenter telemetry records with the
// built-in simulator (the substitute for the paper's Meta traces; see
// DESIGN.md §1). Deterministic in the seed.
func SimulateTelemetry(racks, windowsPerRack int, seed int64) []Record {
	ws := dataset.Generate(dataset.Config{Racks: racks, WindowsPerRack: windowsPerRack, Seed: seed})
	return dataset.Records(ws)
}

// TelemetryCoarseFields lists the coarse scalar fields of TelemetrySchema in
// serialization order.
func TelemetryCoarseFields() []string { return dataset.CoarseFields() }

// SimulatorConfig exposes the telemetry simulator's realism knobs.
type SimulatorConfig struct {
	Racks          int
	WindowsPerRack int
	Seed           int64
	// DiurnalAmplitude ∈ [0,1] adds a time-of-day load cycle.
	DiurnalAmplitude float64
	// DiurnalPeriod is the cycle length in windows (0 → 48).
	DiurnalPeriod int
	// AnomalyRate injects incident windows (extreme but rule-compliant).
	AnomalyRate float64
}

// SimulateTelemetryWith is SimulateTelemetry with full control over the
// simulator's diurnal and anomaly behaviour.
func SimulateTelemetryWith(cfg SimulatorConfig) []Record {
	ws := dataset.Generate(dataset.Config{
		Racks: cfg.Racks, WindowsPerRack: cfg.WindowsPerRack, Seed: cfg.Seed,
		DiurnalAmplitude: cfg.DiurnalAmplitude, DiurnalPeriod: cfg.DiurnalPeriod,
		AnomalyRate: cfg.AnomalyRate,
	})
	return dataset.Records(ws)
}
