package lejit_test

import (
	"fmt"
	"math/rand"

	"repro/lejit"
)

// A complete pipeline: declare a schema, write one rule, train a tiny model
// from scratch, and impute under Just-in-Time enforcement. The output is
// guaranteed to satisfy the rule, whatever the (deliberately under-trained)
// model would have preferred.
func Example() {
	schema := lejit.MustSchema(
		lejit.Field{Name: "Total", Kind: lejit.Scalar, Lo: 0, Hi: 40},
		lejit.Field{Name: "X", Kind: lejit.Vector, Len: 4, Lo: 0, Hi: 10},
	)
	rs, err := lejit.ParseRules("rule conserve: sum(X) == Total", schema)
	if err != nil {
		panic(err)
	}

	// A toy corpus obeying the rule.
	rng := rand.New(rand.NewSource(1))
	var recs []lejit.Record
	for i := 0; i < 100; i++ {
		x := []int64{int64(rng.Intn(11)), int64(rng.Intn(11)), int64(rng.Intn(11)), int64(rng.Intn(11))}
		recs = append(recs, lejit.Record{"Total": {x[0] + x[1] + x[2] + x[3]}, "X": x})
	}

	model, err := lejit.NewModel(lejit.ModelConfig{
		Vocab: lejit.TelemetryTokenizer().Size(), Ctx: 24, Dim: 16, Heads: 2, Layers: 1,
	}, 1)
	if err != nil {
		panic(err)
	}
	if _, err := lejit.TrainOnRecords(model, recs, schema, lejit.TrainConfig{Epochs: 1, Seed: 1, Workers: 1}); err != nil {
		panic(err)
	}

	pipe, err := lejit.NewPipeline(model, schema, rs)
	if err != nil {
		panic(err)
	}
	rec, _, err := pipe.Impute(lejit.Record{"Total": {23}}, rand.New(rand.NewSource(2)))
	if err != nil {
		panic(err)
	}
	var sum int64
	for _, v := range rec["X"] {
		sum += v
	}
	vs, _ := pipe.Violations(rec)
	fmt.Println("sum:", sum, "violations:", vs)
	// Output: sum: 23 violations: []
}
