package lejit

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// quickSchema is a small schema trainable in milliseconds.
func quickSchema(t *testing.T) *Schema {
	t.Helper()
	return MustSchema(
		Field{Name: "Total", Kind: Scalar, Lo: 0, Hi: 40},
		Field{Name: "X", Kind: Vector, Len: 4, Lo: 0, Hi: 10},
	)
}

// quickCorpus builds records satisfying sum(X) == Total.
func quickCorpus(rng *rand.Rand, n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		x := make([]int64, 4)
		var total int64
		for j := range x {
			x[j] = int64(rng.Intn(11))
			total += x[j]
		}
		recs[i] = Record{"Total": {total}, "X": x}
	}
	return recs
}

func quickModel(t *testing.T, recs []Record) *Model {
	t.Helper()
	m, err := NewModel(ModelConfig{Vocab: TelemetryTokenizer().Size(), Ctx: 24, Dim: 16, Heads: 2, Layers: 1}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TrainOnRecords(m, recs, quickSchema(t), TrainConfig{Epochs: 1, Seed: 1, Workers: 2}); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPipelineEndToEnd(t *testing.T) {
	schema := quickSchema(t)
	rng := rand.New(rand.NewSource(5))
	recs := quickCorpus(rng, 150)
	m := quickModel(t, recs)

	rs, err := ParseRules("rule conserve: sum(X) == Total", schema)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := NewPipeline(m, schema, rs, WithTemperature(0.9))
	if err != nil {
		t.Fatal(err)
	}

	// Imputation: every output must satisfy the rule exactly.
	for trial := 0; trial < 10; trial++ {
		rec, stats, err := pipe.Impute(Record{"Total": {23}}, rng)
		if err != nil {
			t.Fatal(err)
		}
		var sum int64
		for _, v := range rec["X"] {
			sum += v
		}
		if sum != 23 {
			t.Fatalf("trial %d: sum %d != 23 (%v)", trial, sum, rec["X"])
		}
		if stats.Tokens == 0 {
			t.Error("no tokens recorded")
		}
		vs, err := pipe.Violations(rec)
		if err != nil {
			t.Fatal(err)
		}
		if len(vs) != 0 {
			t.Fatalf("violations %v", vs)
		}
	}

	// Unconditional generation also complies.
	rec, _, err := pipe.Generate(rng)
	if err != nil {
		t.Fatal(err)
	}
	if vs, _ := pipe.Violations(rec); len(vs) != 0 {
		t.Fatalf("generate violations %v in %v", vs, rec)
	}
}

func TestPipelineRepurposing(t *testing.T) {
	// The "single LLM to rule them all" property: the same model under two
	// different rule sets produces outputs compliant with each.
	schema := quickSchema(t)
	rng := rand.New(rand.NewSource(6))
	m := quickModel(t, quickCorpus(rng, 120))

	rsA, err := ParseRules("rule conserve: sum(X) == Total", schema)
	if err != nil {
		t.Fatal(err)
	}
	rsB, err := ParseRules("rule lowtotal: Total <= 10\nrule flat: max(X) <= 4", schema)
	if err != nil {
		t.Fatal(err)
	}
	pipeA, err := NewPipeline(m, schema, rsA)
	if err != nil {
		t.Fatal(err)
	}
	pipeB, err := NewPipeline(m, schema, rsB)
	if err != nil {
		t.Fatal(err)
	}
	ra, _, err := pipeA.Generate(rng)
	if err != nil {
		t.Fatal(err)
	}
	if vs, _ := rsA.Violations(ra); len(vs) != 0 {
		t.Fatalf("pipeline A violations %v", vs)
	}
	rb, _, err := pipeB.Generate(rng)
	if err != nil {
		t.Fatal(err)
	}
	if vs, _ := rsB.Violations(rb); len(vs) != 0 {
		t.Fatalf("pipeline B violations %v", vs)
	}
	if rb["Total"][0] > 10 {
		t.Fatalf("rule set B not enforced: Total %d", rb["Total"][0])
	}
}

func TestMineAndEnforce(t *testing.T) {
	schema := quickSchema(t)
	rng := rand.New(rand.NewSource(8))
	recs := quickCorpus(rng, 200)
	rs, err := MineRules(recs, schema, MineOptions{Slack: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() == 0 {
		t.Fatal("miner found nothing")
	}
	for _, rec := range recs {
		vs, err := rs.Violations(rec)
		if err != nil {
			t.Fatal(err)
		}
		if len(vs) > 0 {
			t.Fatalf("mined rules violated on training data: %v", vs)
		}
	}
}

func TestModelSaveLoadThroughFacade(t *testing.T) {
	schema := quickSchema(t)
	rng := rand.New(rand.NewSource(9))
	m := quickModel(t, quickCorpus(rng, 60))
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rs, _ := ParseRules("rule conserve: sum(X) == Total", schema)
	if _, err := NewPipeline(m2, schema, rs); err != nil {
		t.Fatal(err)
	}
}

func TestInfeasiblePromptDetection(t *testing.T) {
	schema := quickSchema(t)
	rng := rand.New(rand.NewSource(10))
	m := quickModel(t, quickCorpus(rng, 60))
	// Satisfiable rule set (Total < 20 is fine) whose consequent is
	// impossible once the prompt pins Total ≥ 20: sum(X) caps at 40.
	rs, err := ParseRules("rule trap: Total >= 20 -> sum(X) == 41", schema)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := NewPipeline(m, schema, rs)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = pipe.Impute(Record{"Total": {25}}, rng)
	if err == nil || !IsInfeasible(err) {
		t.Fatalf("err = %v, want infeasible", err)
	}
	// And the benign prompt still works.
	if _, _, err := pipe.Impute(Record{"Total": {5}}, rng); err != nil {
		t.Fatalf("benign prompt failed: %v", err)
	}
}

func TestDefaultGrammarValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := quickModel(t, quickCorpus(rng, 60))
	noVec := MustSchema(Field{Name: "A", Kind: Scalar, Lo: 0, Hi: 9})
	if _, err := NewPipeline(m, noVec, nil); err == nil {
		t.Error("schema without vector field should need WithGrammar")
	}
	twoVec := MustSchema(
		Field{Name: "A", Kind: Vector, Len: 2, Lo: 0, Hi: 9},
		Field{Name: "B", Kind: Vector, Len: 2, Lo: 0, Hi: 9},
	)
	if _, err := NewPipeline(m, twoVec, nil); err == nil {
		t.Error("schema with two vector fields should need WithGrammar")
	}
}

func TestFormatRecord(t *testing.T) {
	schema := quickSchema(t)
	s, err := FormatRecord(Record{"Total": {23}, "X": {5, 6, 7, 5}}, schema)
	if err != nil {
		t.Fatal(err)
	}
	if s != "23|5,6,7,5\n" {
		t.Errorf("FormatRecord = %q", s)
	}
	if !strings.HasSuffix(s, "\n") {
		t.Error("missing newline")
	}
	if _, err := FormatRecord(Record{"Total": {23}}, schema); err == nil {
		t.Error("missing field should error")
	}
}

func TestWithoutSolverOption(t *testing.T) {
	schema := quickSchema(t)
	rng := rand.New(rand.NewSource(12))
	m := quickModel(t, quickCorpus(rng, 100))
	rs, _ := ParseRules("rule conserve: sum(X) == Total", schema)
	pipe, err := NewPipeline(m, schema, rs, WithoutSolver())
	if err != nil {
		t.Fatal(err)
	}
	// Structural decoding alone will sooner or later break conservation.
	broke := false
	for trial := 0; trial < 20 && !broke; trial++ {
		rec, _, err := pipe.Impute(Record{"Total": {23}}, rng)
		if err != nil {
			t.Fatal(err)
		}
		var sum int64
		for _, v := range rec["X"] {
			sum += v
		}
		if sum != 23 {
			broke = true
		}
	}
	if !broke {
		t.Error("structure-only decoding never violated conservation in 20 trials (implausible for a 1-epoch model)")
	}
}

func TestPipelineBeamAndBatch(t *testing.T) {
	schema := quickSchema(t)
	rng := rand.New(rand.NewSource(20))
	m := quickModel(t, quickCorpus(rng, 150))
	rs, err := ParseRules("rule conserve: sum(X) == Total", schema)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := NewPipeline(m, schema, rs)
	if err != nil {
		t.Fatal(err)
	}

	// Beam decode: compliant and deterministic.
	a, stats, err := pipe.ImputeBeam(Record{"Total": {17}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if vs, _ := pipe.Violations(a); len(vs) != 0 {
		t.Fatalf("beam violations %v", vs)
	}
	if stats.LogProb > 0 {
		t.Errorf("logprob %v > 0", stats.LogProb)
	}
	b, _, err := pipe.ImputeBeam(Record{"Total": {17}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a["X"] {
		if a["X"][i] != b["X"][i] {
			t.Fatalf("beam decode not deterministic: %v vs %v", a["X"], b["X"])
		}
	}

	// Batch decode: all compliant, order preserved.
	prompts := []Record{{"Total": {5}}, {"Total": {23}}, {"Total": {40}}, {"Total": {0}}}
	recs, errs, err := pipe.ImputeBatch(prompts, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range prompts {
		if errs[i] != nil {
			t.Fatalf("prompt %d: %v", i, errs[i])
		}
		var sum int64
		for _, v := range recs[i]["X"] {
			sum += v
		}
		if sum != prompts[i]["Total"][0] {
			t.Fatalf("prompt %d: sum %d != %d", i, sum, prompts[i]["Total"][0])
		}
	}
}

func TestPipelineDiagnose(t *testing.T) {
	schema := quickSchema(t)
	rng := rand.New(rand.NewSource(21))
	m := quickModel(t, quickCorpus(rng, 80))
	rs, err := ParseRules(`
rule conserve: sum(X) == Total
rule flat:     max(X) <= 5
`, schema)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := NewPipeline(m, schema, rs)
	if err != nil {
		t.Fatal(err)
	}
	// Total=30 needs sum(X)=30 but max(X) ≤ 5 caps the sum at 20.
	_, _, err = pipe.Impute(Record{"Total": {30}}, rng)
	if !IsInfeasible(err) {
		t.Fatalf("err = %v, want infeasible", err)
	}
	culprits, err := pipe.Diagnose(Record{"Total": {30}})
	if err != nil {
		t.Fatal(err)
	}
	if len(culprits) != 2 {
		t.Fatalf("culprits = %v, want both rules", culprits)
	}
}

func TestSimulateTelemetryWith(t *testing.T) {
	recs := SimulateTelemetryWith(SimulatorConfig{
		Racks: 3, WindowsPerRack: 20, Seed: 5, DiurnalAmplitude: 0.5, AnomalyRate: 0.1,
	})
	if len(recs) != 60 {
		t.Fatalf("got %d records, want 60", len(recs))
	}
	schema := TelemetrySchema()
	for i, rec := range recs {
		if err := schema.Validate(rec); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
	// The plain helper agrees with the zero-knob config.
	a := SimulateTelemetry(2, 10, 9)
	b := SimulateTelemetryWith(SimulatorConfig{Racks: 2, WindowsPerRack: 10, Seed: 9})
	for i := range a {
		sa, err := FormatRecord(a[i], schema)
		if err != nil {
			t.Fatal(err)
		}
		sb, err := FormatRecord(b[i], schema)
		if err != nil {
			t.Fatal(err)
		}
		if sa != sb {
			t.Fatalf("record %d differs between helpers", i)
		}
	}
}
