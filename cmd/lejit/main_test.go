package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/rules"
)

func TestCmdSimulate(t *testing.T) {
	out := filepath.Join(t.TempDir(), "data.txt")
	if err := cmdSimulate([]string{"-racks", "2", "-windows", "5", "-o", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 10 {
		t.Fatalf("got %d lines, want 10", len(lines))
	}
	for i, line := range lines {
		if _, err := dataset.ParseLine(line); err != nil {
			t.Fatalf("line %d unparseable: %v", i, err)
		}
	}
}

func TestCmdMine(t *testing.T) {
	out := filepath.Join(t.TempDir(), "rules.txt")
	if err := cmdMine([]string{"-racks", "4", "-windows", "30", "-o", out}); err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := rules.ParseRuleSet(string(src), dataset.Schema())
	if err != nil {
		t.Fatalf("mined rules do not re-parse: %v", err)
	}
	if rs.Len() == 0 {
		t.Fatal("no rules mined")
	}
}

func TestCmdMineCoarseOnly(t *testing.T) {
	out := filepath.Join(t.TempDir(), "rules.txt")
	if err := cmdMine([]string{"-racks", "4", "-windows", "30", "-coarse-only", "-o", out}); err != nil {
		t.Fatal(err)
	}
	src, _ := os.ReadFile(out)
	if strings.Contains(string(src), "I[") {
		t.Error("coarse-only mining emitted fine-grained rules")
	}
}

// TestCmdTrainImputeCheck drives the full CLI workflow end to end with a
// deliberately tiny model.
func TestCmdTrainImputeCheck(t *testing.T) {
	dir := t.TempDir()
	model := filepath.Join(dir, "model.gob")
	rulesPath := filepath.Join(dir, "rules.txt")

	if err := cmdTrain([]string{
		"-racks", "3", "-windows", "20", "-epochs", "1",
		"-dim", "16", "-layers", "1", "-heads", "2", "-o", model,
	}); err != nil {
		t.Fatal(err)
	}
	if err := cmdMine([]string{"-racks", "3", "-windows", "20", "-o", rulesPath}); err != nil {
		t.Fatal(err)
	}

	// Impute with LeJIT: capture stdout, verify compliant records.
	out := captureStdout(t, func() {
		if err := cmdDecode([]string{
			"-model", model, "-rules", rulesPath, "-n", "2", "-mode", "lejit",
		}, true); err != nil {
			t.Fatal(err)
		}
	})
	checked := 0
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if _, err := dataset.ParseLine(line); err != nil {
			t.Fatalf("impute output unparseable: %v (%q)", err, line)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no imputed records produced")
	}
	if strings.Contains(out, "violations:") {
		t.Errorf("LeJIT output reports violations:\n%s", out)
	}

	// Generate unconditionally, structure mode (no rules needed).
	out = captureStdout(t, func() {
		if err := cmdDecode([]string{
			"-model", model, "-n", "2", "-mode", "structure",
		}, false); err != nil {
			t.Fatal(err)
		}
	})
	if strings.TrimSpace(out) == "" {
		t.Fatal("no generated records")
	}

	// Check: feed simulated (ground-truth) data through cmdCheck — by
	// construction it satisfies all mined rules.
	dataPath := filepath.Join(dir, "data.txt")
	if err := cmdSimulate([]string{"-racks", "3", "-windows", "20", "-o", dataPath}); err != nil {
		t.Fatal(err)
	}
	withStdin(t, dataPath, func() {
		out = captureStdout(t, func() {
			if err := cmdCheck([]string{"-rules", rulesPath}); err != nil {
				t.Fatal(err)
			}
		})
	})
	if !strings.Contains(out, "0 non-compliant") {
		t.Errorf("ground-truth data flagged non-compliant:\n%s", out)
	}
}

func TestCmdCheckFlagsViolations(t *testing.T) {
	dir := t.TempDir()
	rulesPath := filepath.Join(dir, "rules.txt")
	if err := os.WriteFile(rulesPath, []byte("rule conserve: sum(I) == TotalIngress\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dataPath := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(dataPath, []byte("100,0,0,0,1|1,1,1,1,1\nnot a record\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out string
	withStdin(t, dataPath, func() {
		out = captureStdout(t, func() {
			if err := cmdCheck([]string{"-rules", rulesPath}); err != nil {
				t.Fatal(err)
			}
		})
	})
	if !strings.Contains(out, "violates [conserve]") {
		t.Errorf("violation not flagged:\n%s", out)
	}
	if !strings.Contains(out, "parse error") {
		t.Errorf("malformed line not flagged:\n%s", out)
	}
	if !strings.Contains(out, "2 non-compliant") {
		t.Errorf("summary wrong:\n%s", out)
	}
}

func TestCmdCheckRequiresRules(t *testing.T) {
	if err := cmdCheck(nil); err == nil {
		t.Error("missing -rules should error")
	}
}

func TestCmdDecodeRequiresRules(t *testing.T) {
	if err := cmdDecode([]string{"-mode", "rejection"}, true); err == nil {
		t.Error("rejection without -rules should error")
	}
}

// captureStdout redirects os.Stdout for the duration of f.
func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		buf := make([]byte, 0, 4096)
		tmp := make([]byte, 1024)
		for {
			n, err := r.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if err != nil {
				break
			}
		}
		done <- string(buf)
	}()
	f()
	w.Close()
	os.Stdout = old
	return <-done
}

// withStdin redirects os.Stdin to the given file for the duration of f.
func withStdin(t *testing.T, path string, f func()) {
	t.Helper()
	file, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer file.Close()
	old := os.Stdin
	os.Stdin = file
	defer func() { os.Stdin = old }()
	f()
}

func TestCmdExplain(t *testing.T) {
	dir := t.TempDir()
	model := filepath.Join(dir, "model.gob")
	rulesPath := filepath.Join(dir, "rules.txt")
	if err := cmdTrain([]string{
		"-racks", "2", "-windows", "15", "-epochs", "1",
		"-dim", "16", "-layers", "1", "-heads", "2", "-o", model,
	}); err != nil {
		t.Fatal(err)
	}
	if err := cmdMine([]string{"-racks", "2", "-windows", "15", "-o", rulesPath}); err != nil {
		t.Fatal(err)
	}
	out := captureStdout(t, func() {
		if err := cmdExplain([]string{"-model", model, "-rules", rulesPath}); err != nil {
			t.Fatal(err)
		}
	})
	for _, want := range []string{"step", "allowed", "result:", "violations: []"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
	if err := cmdExplain(nil); err == nil {
		t.Error("explain without -rules should error")
	}
}
