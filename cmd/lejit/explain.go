package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/rules"
	"repro/internal/vocab"
)

// cmdExplain decodes a single record with the trace hook enabled and prints
// a step-by-step view of LeJIT's masking — the paper's Fig 1b as text:
// which characters the rules allowed, which were pruned, and what the model
// picked.
func cmdExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	modelPath := fs.String("model", "model.gob", "trained model file")
	rulePath := fs.String("rules", "", "rule file (required)")
	seed := fs.Int64("seed", 1, "sampling seed")
	temp := fs.Float64("temp", 0.9, "sampling temperature")
	testSeed := fs.Int64("test-seed", 99, "simulator seed for the prompt")
	fs.Parse(args)
	if *rulePath == "" {
		return fmt.Errorf("-rules is required")
	}

	f, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	defer f.Close()
	m, err := nn.Load(f)
	if err != nil {
		return err
	}
	schema := dataset.Schema()
	src, err := os.ReadFile(*rulePath)
	if err != nil {
		return err
	}
	rs, err := rules.ParseRuleSet(string(src), schema)
	if err != nil {
		return err
	}
	slots, err := core.TelemetryGrammar(schema, dataset.CoarseFields(), dataset.FineField)
	if err != nil {
		return err
	}

	tok := vocab.Telemetry()
	var steps []core.TraceStep
	eng, err := core.NewEngine(core.Config{
		LM: core.WrapNN(m), Tok: tok, Schema: schema,
		Rules: rs, Slots: slots, Temperature: *temp,
		TraceHook: func(s core.TraceStep) { steps = append(steps, s) },
	})
	if err != nil {
		return err
	}

	// One simulated prompt.
	ws := dataset.Generate(dataset.Config{Racks: 1, WindowsPerRack: 1, Seed: *testSeed})
	known := rules.Record{}
	for _, fn := range dataset.CoarseFields() {
		known[fn] = ws[0].Rec[fn]
	}
	fmt.Printf("prompt (coarse counters): %s\n", strings.TrimSuffix(dataset.Prompt(ws[0].Rec), "|"))
	fmt.Printf("enforcing %d rules; generating %s[0..%d]\n\n", rs.Len(), dataset.FineField, dataset.T-1)

	rng := rand.New(rand.NewSource(*seed))
	res, err := eng.Impute(known, rng)
	if err != nil {
		if _, ok := err.(core.ErrInfeasible); ok {
			culprits, derr := eng.DiagnoseInfeasible(known)
			if derr == nil {
				return fmt.Errorf("prompt infeasible; minimal conflicting rule set: %v", culprits)
			}
		}
		return err
	}

	renderTok := func(id int) string {
		if !tok.IsChar(id) {
			return "?"
		}
		c := tok.Char(id)
		if c == '\n' {
			return "⏎"
		}
		return string(c)
	}
	for i, s := range steps {
		var allowed []string
		for _, id := range s.Admissible {
			allowed = append(allowed, renderTok(id))
		}
		pruned := s.Structural - len(s.Admissible)
		note := ""
		if pruned > 0 {
			note = fmt.Sprintf("  ← pruned %d option(s)", pruned)
		}
		if len(s.Admissible) == 1 && pruned > 0 {
			note += " (forced)"
		}
		fmt.Printf("step %2d  %s[%d] prefix %-3s  allowed {%s}  model chose %q%s\n",
			i+1, s.Field, s.Index, s.Prefix, strings.Join(allowed, " "), renderTok(s.Chosen), note)
	}
	fmt.Printf("\nresult: %s", dataset.Format(res.Rec))
	viol, err := rs.Violations(res.Rec)
	if err != nil {
		return err
	}
	fmt.Printf("violations: %v  (solver checks: %d, masked steps: %d, forced: %d)\n",
		viol, res.Stats.SolverChecks, res.Stats.MaskedSteps, res.Stats.ForcedSteps)
	return nil
}
