// Command lejit is the CLI for the LeJIT library: simulate telemetry, mine
// rules, train models, and run guided imputation/generation.
//
// Subcommands:
//
//	lejit simulate -racks 10 -windows 100 -o data.txt
//	lejit mine     -racks 80 -windows 60 [-coarse-only] -o rules.txt
//	lejit train    -racks 80 -windows 60 -epochs 3 -o model.gob
//	lejit impute   -model model.gob -rules rules.txt -n 5 [-mode lejit|vanilla|rejection|posthoc]
//	lejit generate -model model.gob -rules rules.txt -n 5
//	lejit check    -rules rules.txt < data.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/mining"
	"repro/internal/nn"
	"repro/internal/rules"
	"repro/internal/vocab"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "simulate":
		err = cmdSimulate(os.Args[2:])
	case "mine":
		err = cmdMine(os.Args[2:])
	case "train":
		err = cmdTrain(os.Args[2:])
	case "impute":
		err = cmdDecode(os.Args[2:], true)
	case "generate":
		err = cmdDecode(os.Args[2:], false)
	case "check":
		err = cmdCheck(os.Args[2:])
	case "explain":
		err = cmdExplain(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "lejit: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lejit:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: lejit <simulate|mine|train|impute|generate|check> [flags]

  simulate  generate synthetic datacenter telemetry records
  mine      discover rules from simulated training data
  train     train the character-level LM from scratch
  impute    impute fine-grained series for test windows
  generate  generate synthetic records unconditionally
  check     check records on stdin against a rule file
  explain   decode one record with a per-step masking trace (paper Fig 1b)

run 'lejit <cmd> -h' for per-command flags`)
}

func openOut(path string) (*os.File, func(), error) {
	if path == "" || path == "-" {
		return os.Stdout, func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}

func cmdSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	racks := fs.Int("racks", 10, "number of racks")
	windows := fs.Int("windows", 100, "windows per rack")
	seed := fs.Int64("seed", 1, "simulator seed")
	out := fs.String("o", "-", "output file (default stdout)")
	fs.Parse(args)

	w, done, err := openOut(*out)
	if err != nil {
		return err
	}
	defer done()
	for _, win := range dataset.Generate(dataset.Config{Racks: *racks, WindowsPerRack: *windows, Seed: *seed}) {
		fmt.Fprint(w, dataset.Format(win.Rec))
	}
	return nil
}

func cmdMine(args []string) error {
	fs := flag.NewFlagSet("mine", flag.ExitOnError)
	racks := fs.Int("racks", 80, "training racks")
	windows := fs.Int("windows", 60, "windows per rack")
	seed := fs.Int64("seed", 1, "simulator seed")
	coarse := fs.Bool("coarse-only", false, "mine only coarse-signal rules (synthesis task)")
	slack := fs.Int64("slack", 2, "bound slack")
	out := fs.String("o", "-", "output rule file (default stdout)")
	fs.Parse(args)

	ws := dataset.Generate(dataset.Config{Racks: *racks, WindowsPerRack: *windows, Seed: *seed})
	cfg := mining.Config{Slack: *slack, Coeffs: []int64{1, 2, 3}}
	if *coarse {
		cfg.Fields = dataset.CoarseFields()
	}
	rs, err := mining.Mine(dataset.Records(ws), dataset.Schema(), cfg)
	if err != nil {
		return err
	}
	w, done, err := openOut(*out)
	if err != nil {
		return err
	}
	defer done()
	fmt.Fprint(w, rs.String())
	fmt.Fprintf(os.Stderr, "lejit: mined %d rules\n", rs.Len())
	return nil
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	racks := fs.Int("racks", 80, "training racks")
	windows := fs.Int("windows", 60, "windows per rack")
	seed := fs.Int64("seed", 1, "seed")
	epochs := fs.Int("epochs", 3, "training epochs")
	dim := fs.Int("dim", 64, "model width")
	layers := fs.Int("layers", 2, "transformer blocks")
	heads := fs.Int("heads", 4, "attention heads")
	out := fs.String("o", "model.gob", "output model file")
	fs.Parse(args)

	tok := vocab.Telemetry()
	ws := dataset.Generate(dataset.Config{Racks: *racks, WindowsPerRack: *windows, Seed: *seed})
	seqs := make([][]int, 0, len(ws))
	for _, win := range ws {
		seq, err := tok.EncodeSeq(dataset.Format(win.Rec))
		if err != nil {
			return err
		}
		seqs = append(seqs, seq)
	}
	m, err := nn.New(nn.Config{Vocab: tok.Size(), Ctx: 48, Dim: *dim, Heads: *heads, Layers: *layers}, *seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "lejit: training %d-param model on %d sequences\n", m.NumParams(), len(seqs))
	if _, err := m.Train(seqs, nn.TrainConfig{
		Epochs: *epochs, Seed: *seed, LogEvery: 100,
		Logf: func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) },
	}); err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := m.Save(f); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "lejit: wrote %s\n", *out)
	return nil
}

func loadEngine(modelPath, rulePath string, mode core.Mode, temp float64) (*core.Engine, *rules.RuleSet, error) {
	f, err := os.Open(modelPath)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	m, err := nn.Load(f)
	if err != nil {
		return nil, nil, err
	}
	schema := dataset.Schema()
	var rs *rules.RuleSet
	if rulePath != "" {
		src, err := os.ReadFile(rulePath)
		if err != nil {
			return nil, nil, err
		}
		rs, err = rules.ParseRuleSet(string(src), schema)
		if err != nil {
			return nil, nil, err
		}
	}
	slots, err := core.TelemetryGrammar(schema, dataset.CoarseFields(), dataset.FineField)
	if err != nil {
		return nil, nil, err
	}
	eng, err := core.NewEngine(core.Config{
		LM: core.WrapNN(m), Tok: vocab.Telemetry(), Schema: schema,
		Rules: rs, Slots: slots, Mode: mode, Temperature: temp,
	})
	return eng, rs, err
}

func cmdDecode(args []string, impute bool) error {
	name := "generate"
	if impute {
		name = "impute"
	}
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	modelPath := fs.String("model", "model.gob", "trained model file")
	rulePath := fs.String("rules", "", "rule file (required except -mode vanilla)")
	n := fs.Int("n", 5, "records to decode")
	seed := fs.Int64("seed", 1, "sampling seed")
	temp := fs.Float64("temp", 0.9, "sampling temperature")
	mode := fs.String("mode", "lejit", "lejit|structure|vanilla|rejection|posthoc")
	testSeed := fs.Int64("test-seed", 99, "simulator seed for test prompts (impute)")
	workers := fs.Int("workers", 0, "parallel decode workers (0 = GOMAXPROCS); output is deterministic in -seed regardless")
	fs.Parse(args)

	engMode := core.LeJIT
	if *mode == "structure" {
		engMode = core.StructureOnly
	}
	if *rulePath == "" && *mode != "vanilla" && *mode != "structure" {
		return fmt.Errorf("-rules is required for mode %s", *mode)
	}
	eng, rs, err := loadEngine(*modelPath, *rulePath, engMode, *temp)
	if err != nil {
		return err
	}

	var prompts []rules.Record
	if impute {
		ws := dataset.Generate(dataset.Config{Racks: 1, WindowsPerRack: *n, Seed: *testSeed})
		for _, w := range ws {
			known := rules.Record{}
			for _, f := range dataset.CoarseFields() {
				known[f] = w.Rec[f]
			}
			prompts = append(prompts, known)
		}
	} else {
		prompts = make([]rules.Record, *n)
	}

	var decode core.DecodeFn
	switch *mode {
	case "lejit", "structure":
		// nil → Impute for prompts, Generate for nil prompts.
	case "vanilla":
		decode = (*core.Engine).Vanilla
	case "rejection":
		decode = (*core.Engine).Rejection
	case "posthoc":
		decode = (*core.Engine).PostHoc
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	batch, err := eng.DecodeBatch(prompts, *workers, *seed, decode)
	if err != nil {
		return err
	}
	for i, b := range batch {
		if b.Err != nil {
			fmt.Printf("# record %d: error: %v\n", i, b.Err)
			continue
		}
		line := dataset.Format(b.Res.Rec)
		var viol []string
		if rs != nil {
			viol, _ = rs.Violations(b.Res.Rec)
		}
		fmt.Printf("%s", line)
		if len(viol) > 0 {
			fmt.Printf("# violations: %v\n", viol)
		}
	}
	return nil
}

func cmdCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	rulePath := fs.String("rules", "", "rule file (required)")
	fs.Parse(args)
	if *rulePath == "" {
		return fmt.Errorf("-rules is required")
	}
	src, err := os.ReadFile(*rulePath)
	if err != nil {
		return err
	}
	rs, err := rules.ParseRuleSet(string(src), dataset.Schema())
	if err != nil {
		return err
	}

	sc := bufio.NewScanner(os.Stdin)
	lineNo, bad := 0, 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		rec, err := dataset.ParseLine(line)
		if err != nil {
			fmt.Printf("line %d: parse error: %v\n", lineNo, err)
			bad++
			continue
		}
		vs, err := rs.Violations(rec)
		if err != nil {
			return err
		}
		if len(vs) > 0 {
			fmt.Printf("line %d: violates %v\n", lineNo, vs)
			bad++
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	fmt.Printf("checked %d lines, %d non-compliant\n", lineNo, bad)
	return nil
}
