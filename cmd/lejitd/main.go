// Command lejitd is the LeJIT serving daemon: it loads domain packs (model +
// rule set + decode shape bundles) once, then serves rule-compliant
// imputation/generation over HTTP with per-request pack selection, dynamic
// micro-batching, bounded-queue backpressure, per-request deadlines,
// Prometheus metrics, rule hot-reload, and graceful drain on SIGTERM.
//
// Endpoints:
//
//	POST /v1/impute       {"pack": "telemetry", "known": {"TotalIngress": [100], ...}, "seed": 1}
//	POST /v1/generate     {"pack": "routercfg", "seed": 2}
//	POST /v1/check        {"pack": "fincompliance", "record": {...}}
//	GET  /v1/packs
//	POST /v1/packs/reload {"pack": "telemetry", "rules": "rule r1: ..."}
//	GET  /healthz
//	GET  /metrics
//
// Examples:
//
//	lejitd -model model.gob -rules rules.txt -addr :8080
//	lejitd -demo                      # self-contained: trains tiny models in-process
//	lejitd -demo -batch-window 5ms -max-batch 16 -queue 128
//	lejitd -model model.gob -pack pack.manifest:pack.rules
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/nn"
	"repro/internal/pack"
	"repro/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lejitd:", err)
		os.Exit(1)
	}
}

// packFlags collects repeated -pack MANIFEST:RULES[:MODEL] values.
type packFlags []string

func (p *packFlags) String() string     { return strings.Join(*p, ",") }
func (p *packFlags) Set(v string) error { *p = append(*p, v); return nil }

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	modelPath := flag.String("model", "", "trained telemetry model file (see 'lejit train'); required unless -demo")
	rulePath := flag.String("rules", "", "telemetry rule file (see 'lejit mine'); optional with -demo")
	demo := flag.Bool("demo", false, "self-contained demo: train tiny models and mine rules in-process; serves the telemetry, routercfg, and fincompliance packs")
	temp := flag.Float64("temp", 0.9, "sampling temperature")
	var extraPacks packFlags
	flag.Var(&extraPacks, "pack", "extra domain pack as MANIFEST:RULES[:MODEL] file paths (repeatable); without MODEL the pack decodes under a uniform LM")
	defaultPack := flag.String("default-pack", pack.TelemetryName, "pack used by requests that do not select one")
	replicas := flag.Int("replicas", 1, "engine shards behind the load-aware router; each runs its own micro-batcher and engine clones, prefix caches stay shared")
	shardFailures := flag.Int("shard-failure-threshold", 8, "drain a shard (fresh engine clones, queued jobs redistributed) after this many budget/panic lane failures; <0 disables")
	batchWindow := flag.Duration("batch-window", 2*time.Millisecond, "how long each shard holds the micro-batch open after the first request")
	maxBatch := flag.Int("max-batch", 32, "max records coalesced per decode batch")
	queueDepth := flag.Int("queue", 256, "total admission queue depth across shards (full queues answer 429)")
	workers := flag.Int("workers", 0, "decode workers per batch (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request deadline")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown bound after SIGTERM")
	seed := flag.Int64("seed", 1, "base seed for requests that do not pin their own")
	lookahead := flag.Int("lookahead", 0, "speculative decoding window: decode up to k tokens on the oracle fast path, then validate the suffix with one batched solver settle; 0 = exact per-token path (output is bit-identical either way)")
	solverBudget := flag.Uint64("solver-budget", 0, "max solver search nodes per SMT check; an exhausted check fails only its own request with 503 (0 = solver default)")
	solverTimeout := flag.Duration("solver-timeout", 0, "wall-clock budget per SMT check (0 = none)")
	degradedThreshold := flag.Int("degraded-threshold", 0, "report /healthz status \"degraded\" once this many requests exhausted their solver budget (0 = disabled)")
	prefixCacheMB := flag.Int("prefix-cache-mb", 64, "per-pack cross-request prefix cache budget in MiB: decodes sharing a prompt prefix reuse transformer KV and solver state across batches (0 = disabled)")
	kernelWorkers := flag.Int("kernel-workers", 0, "GEMM worker-group size for nn-backed packs; output is bit-identical at any count (0 = serial, <0 = GOMAXPROCS); a pack's kernel_workers manifest directive wins")
	quantize := flag.String("quantize", "", "int8 weight quantization for nn-backed packs: exact|snap ('' = off); a pack's quantize manifest directive wins")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060); off when empty, never on the public listener")
	flag.Parse()

	logf := func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	reg, err := buildRegistry(*modelPath, *rulePath, extraPacks, *demo, *temp, *prefixCacheMB, logf)
	if err != nil {
		return err
	}
	if *quantize != "" && *quantize != nn.QuantExact && *quantize != nn.QuantSnap {
		return fmt.Errorf("-quantize %q (want exact|snap)", *quantize)
	}
	// Budgets, the speculative window, and the kernel knobs are engine
	// state, so they apply per registered pack — and ride along across hot
	// reloads, which rebuild engines from the current configuration. Packs
	// whose manifests pin kernel_workers/quantize keep their own settings.
	for _, name := range reg.Names() {
		pk, _ := reg.Get(name)
		if *solverBudget > 0 || *solverTimeout > 0 {
			pk.Engine.SetSolverBudget(*solverBudget, *solverTimeout)
		}
		if *lookahead > 0 {
			pk.Engine.SetLookahead(*lookahead)
		}
		if *kernelWorkers != 0 && pk.Def.KernelWorkers == 0 {
			if eff := pk.Engine.SetKernelWorkers(*kernelWorkers); eff > 1 {
				logf("lejitd: pack %s: GEMM worker group of %d", name, eff)
			}
		}
		if *quantize != "" && pk.Def.Quantize == "" {
			st, err := pk.Engine.SetWeightQuantization(*quantize)
			if err != nil {
				// Uniform-LM packs have no weights to quantize; the flag is
				// best-effort across the registry, so skip them.
				logf("lejitd: pack %s: -quantize skipped: %v", name, err)
				continue
			}
			logf("lejitd: pack %s: int8 weights (%s, row coverage %.2f)", name, st.Mode, st.Coverage)
		}
	}
	srv, err := server.New(server.Config{
		Packs: reg, DefaultPack: *defaultPack,
		Replicas: *replicas, ShardFailureThreshold: *shardFailures,
		BatchWindow: *batchWindow, MaxBatch: *maxBatch, QueueDepth: *queueDepth,
		Workers: *workers, Timeout: *timeout, DrainTimeout: *drainTimeout,
		Seed: *seed, DegradedThreshold: *degradedThreshold,
		Logf: logf,
	})
	if err != nil {
		return err
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// SIGTERM/SIGINT cancel the context; Serve then drains in-flight
	// requests (bounded by -drain-timeout) before returning.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *pprofAddr != "" {
		// Profiling stays on its own listener with its own explicit mux.
		// (The net/http/pprof import also registers on DefaultServeMux, but
		// the public listener serves the server package's private mux, so
		// the debug handlers are reachable only here.)
		pl, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		psrv := &http.Server{Handler: pmux}
		go psrv.Serve(pl)
		defer psrv.Close()
		logf("lejitd: pprof on %s", pl.Addr())
	}
	logf("lejitd: serving packs %v on %s (default %s, replicas %d, batch window %v, max batch %d, queue %d)",
		reg.Names(), l.Addr(), *defaultPack, *replicas, *batchWindow, *maxBatch, *queueDepth)
	return srv.Serve(ctx, l)
}

// buildRegistry assembles the domain-pack registry: the telemetry pack from
// artifact files (or the in-process demo environment), the demo's two extra
// built-in packs, and any -pack MANIFEST:RULES[:MODEL] bundles.
func buildRegistry(modelPath, rulePath string, extra []string, demo bool, temp float64, prefixCacheMB int, logf func(string, ...any)) (*pack.Registry, error) {
	reg := pack.NewRegistry(int64(prefixCacheMB) << 20)

	telemetryDef, err := telemetryDefinition(modelPath, rulePath, demo, temp)
	if err != nil {
		return nil, err
	}
	pk, err := pack.Compile(*telemetryDef)
	if err != nil {
		return nil, err
	}
	if err := reg.Register(pk); err != nil {
		return nil, err
	}

	if demo {
		// The demo serves the two other built-in packs as well, each with a
		// tiny transformer trained on its example corpus in-process.
		for _, def := range []pack.Definition{pack.RouterCfgDefinition(nil), pack.FinComplianceDefinition(nil)} {
			logf("lejitd: training %s demo model (%d examples)", def.Name, len(def.Examples))
			if err := pack.TrainLM(&def, pack.TrainLMConfig{Logf: logf}); err != nil {
				return nil, fmt.Errorf("pack %s: %w", def.Name, err)
			}
			def.Temperature = temp
			pk, err := pack.Compile(def)
			if err != nil {
				return nil, fmt.Errorf("pack %s: %w", def.Name, err)
			}
			if err := reg.Register(pk); err != nil {
				return nil, err
			}
		}
	}

	for _, spec := range extra {
		pk, err := loadPackSpec(spec)
		if err != nil {
			return nil, err
		}
		if err := reg.Register(pk); err != nil {
			return nil, err
		}
	}
	return reg, nil
}

// telemetryDefinition builds the telemetry pack definition from artifact
// files or the demo environment.
func telemetryDefinition(modelPath, rulePath string, demo bool, temp float64) (*pack.Definition, error) {
	if demo && modelPath == "" {
		sc := experiments.TinyScale()
		sc.Quiet = false
		env, err := experiments.Prepare(sc)
		if err != nil {
			return nil, err
		}
		def := pack.TelemetryDefinition(core.WrapNN(env.Model), env.ImputeRules.String(), temp, nil)
		return &def, nil
	}
	if modelPath == "" {
		return nil, fmt.Errorf("-model is required (or pass -demo)")
	}
	f, err := os.Open(modelPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := nn.Load(f)
	if err != nil {
		return nil, err
	}
	ruleText := ""
	if rulePath != "" {
		src, err := os.ReadFile(rulePath)
		if err != nil {
			return nil, err
		}
		ruleText = string(src)
	}
	def := pack.TelemetryDefinition(core.WrapNN(m), ruleText, temp, nil)
	return &def, nil
}

// loadPackSpec parses one -pack MANIFEST:RULES[:MODEL] value into a compiled
// pack.
func loadPackSpec(spec string) (*pack.Compiled, error) {
	parts := strings.Split(spec, ":")
	if len(parts) != 2 && len(parts) != 3 {
		return nil, fmt.Errorf("-pack %q: want MANIFEST:RULES[:MODEL]", spec)
	}
	manifest, err := os.ReadFile(parts[0])
	if err != nil {
		return nil, fmt.Errorf("-pack %q: %w", spec, err)
	}
	ruleSrc, err := os.ReadFile(parts[1])
	if err != nil {
		return nil, fmt.Errorf("-pack %q: %w", spec, err)
	}
	var lm core.LM
	if len(parts) == 3 {
		f, err := os.Open(parts[2])
		if err != nil {
			return nil, fmt.Errorf("-pack %q: %w", spec, err)
		}
		defer f.Close()
		m, err := nn.Load(f)
		if err != nil {
			return nil, fmt.Errorf("-pack %q: %w", spec, err)
		}
		lm = core.WrapNN(m)
	}
	return pack.Load(string(manifest), string(ruleSrc), lm)
}
