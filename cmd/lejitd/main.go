// Command lejitd is the LeJIT serving daemon: it loads a model and rule set
// once, then serves rule-compliant imputation/generation over HTTP with
// dynamic micro-batching, bounded-queue backpressure, per-request deadlines,
// Prometheus metrics, and graceful drain on SIGTERM.
//
// Endpoints:
//
//	POST /v1/impute    {"known": {"TotalIngress": [100], ...}, "seed": 1}
//	POST /v1/generate  {"seed": 2}
//	POST /v1/check     {"record": {...}}
//	GET  /healthz
//	GET  /metrics
//
// Examples:
//
//	lejitd -model model.gob -rules rules.txt -addr :8080
//	lejitd -demo                      # self-contained: trains a tiny model in-process
//	lejitd -demo -batch-window 5ms -max-batch 16 -queue 128
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/nn"
	"repro/internal/rules"
	"repro/internal/server"
	"repro/internal/vocab"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lejitd:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	modelPath := flag.String("model", "", "trained model file (see 'lejit train'); required unless -demo")
	rulePath := flag.String("rules", "", "rule file (see 'lejit mine'); optional with -demo")
	demo := flag.Bool("demo", false, "self-contained demo: train a tiny model and mine rules in-process")
	temp := flag.Float64("temp", 0.9, "sampling temperature")
	batchWindow := flag.Duration("batch-window", 2*time.Millisecond, "how long to hold the micro-batch open after the first request")
	maxBatch := flag.Int("max-batch", 32, "max records coalesced per decode batch")
	queueDepth := flag.Int("queue", 256, "admission queue depth (full queue answers 429)")
	workers := flag.Int("workers", 0, "decode workers per batch (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request deadline")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown bound after SIGTERM")
	seed := flag.Int64("seed", 1, "base seed for requests that do not pin their own")
	lookahead := flag.Int("lookahead", 0, "speculative decoding window: decode up to k tokens on the oracle fast path, then validate the suffix with one batched solver settle; 0 = exact per-token path (output is bit-identical either way)")
	solverBudget := flag.Uint64("solver-budget", 0, "max solver search nodes per SMT check; an exhausted check fails only its own request with 503 (0 = solver default)")
	solverTimeout := flag.Duration("solver-timeout", 0, "wall-clock budget per SMT check (0 = none)")
	degradedThreshold := flag.Int("degraded-threshold", 0, "report /healthz status \"degraded\" once this many requests exhausted their solver budget (0 = disabled)")
	prefixCacheMB := flag.Int("prefix-cache-mb", 64, "cross-request prefix cache budget in MiB: decodes sharing a prompt prefix reuse transformer KV and solver state across batches (0 = disabled)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060); off when empty, never on the public listener")
	flag.Parse()

	eng, rs, schema, err := buildEngine(*modelPath, *rulePath, *demo, *temp)
	if err != nil {
		return err
	}
	if *solverBudget > 0 || *solverTimeout > 0 {
		eng.SetSolverBudget(*solverBudget, *solverTimeout)
	}
	if *lookahead > 0 {
		eng.SetLookahead(*lookahead)
	}
	logf := func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	srv, err := server.New(server.Config{
		Engine: eng, Rules: rs, Schema: schema,
		BatchWindow: *batchWindow, MaxBatch: *maxBatch, QueueDepth: *queueDepth,
		Workers: *workers, Timeout: *timeout, DrainTimeout: *drainTimeout,
		Seed: *seed, DegradedThreshold: *degradedThreshold,
		PrefixCacheMB: *prefixCacheMB, Logf: logf,
	})
	if err != nil {
		return err
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// SIGTERM/SIGINT cancel the context; Serve then drains in-flight
	// requests (bounded by -drain-timeout) before returning.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *pprofAddr != "" {
		// Profiling stays on its own listener with its own explicit mux.
		// (The net/http/pprof import also registers on DefaultServeMux, but
		// the public listener serves the server package's private mux, so
		// the debug handlers are reachable only here.)
		pl, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		psrv := &http.Server{Handler: pmux}
		go psrv.Serve(pl)
		defer psrv.Close()
		logf("lejitd: pprof on %s", pl.Addr())
	}
	logf("lejitd: serving on %s (batch window %v, max batch %d, queue %d)",
		l.Addr(), *batchWindow, *maxBatch, *queueDepth)
	return srv.Serve(ctx, l)
}

// buildEngine assembles the decoding engine either from artifact files or,
// with -demo, from an in-process tiny-scale experiment environment.
func buildEngine(modelPath, rulePath string, demo bool, temp float64) (*core.Engine, *rules.RuleSet, *rules.Schema, error) {
	if demo && modelPath == "" {
		sc := experiments.TinyScale()
		sc.Quiet = false
		env, err := experiments.Prepare(sc)
		if err != nil {
			return nil, nil, nil, err
		}
		eng, err := env.EngineFor(env.ImputeRules, core.LeJIT)
		if err != nil {
			return nil, nil, nil, err
		}
		return eng, env.ImputeRules, env.Schema, nil
	}
	if modelPath == "" {
		return nil, nil, nil, fmt.Errorf("-model is required (or pass -demo)")
	}
	f, err := os.Open(modelPath)
	if err != nil {
		return nil, nil, nil, err
	}
	defer f.Close()
	m, err := nn.Load(f)
	if err != nil {
		return nil, nil, nil, err
	}
	schema := dataset.Schema()
	var rs *rules.RuleSet
	if rulePath != "" {
		src, err := os.ReadFile(rulePath)
		if err != nil {
			return nil, nil, nil, err
		}
		rs, err = rules.ParseRuleSet(string(src), schema)
		if err != nil {
			return nil, nil, nil, err
		}
	}
	slots, err := core.TelemetryGrammar(schema, dataset.CoarseFields(), dataset.FineField)
	if err != nil {
		return nil, nil, nil, err
	}
	eng, err := core.NewEngine(core.Config{
		LM: core.WrapNN(m), Tok: vocab.Telemetry(), Schema: schema,
		Rules: rs, Slots: slots, Mode: core.LeJIT, Temperature: temp,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return eng, rs, schema, nil
}
