// Command lejit-bench regenerates the paper's evaluation figures (§4,
// Figures 3–5) plus the design-choice ablations, printing each as an
// aligned text table. Results for the committed scales are recorded in
// EXPERIMENTS.md.
//
// Examples:
//
//	lejit-bench                      # all figures at the default scale
//	lejit-bench -scale tiny          # fast smoke run
//	lejit-bench -fig 3l,3r           # just Fig 3
//	lejit-bench -testn 1000 -samplen 2000   # bigger evaluation
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lejit-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	scale := flag.String("scale", "default", "default|tiny")
	figs := flag.String("fig", "all", "comma-separated: 3l,3r,4l,4r,5,abl,perf,serve,spec,pack,cores,load (all = every figure except serve, spec, pack, cores, and load)")
	testN := flag.Int("testn", 0, "override test-record count")
	sampleN := flag.Int("samplen", 0, "override synthesis sample count")
	racks := flag.Int("racks", 0, "override total rack count")
	windows := flag.Int("windows", 0, "override windows per rack")
	epochs := flag.Int("epochs", 0, "override training epochs")
	cache := flag.String("cache", "artifacts", "model cache directory ('' disables)")
	seed := flag.Int64("seed", 0, "override seed")
	workers := flag.Int("workers", 0, "decode workers for batched methods (0 = GOMAXPROCS)")
	jsonOut := flag.String("json", "", "write the perf report to this file (e.g. BENCH_1.json)")
	kernelWorkers := flag.Int("kernel-workers", 0, "GEMM worker-group size for figure decodes (0 = leave serial, <0 = GOMAXPROCS)")
	quantize := flag.String("quantize", "", "weight quantization for figure decodes: exact|snap ('' = off)")
	lookahead := flag.Int("lookahead", 0, "speculative window for -fig spec: 0 sweeps {0,2,4,8,16}, k>0 compares {0,k}")
	loadConns := flag.Int("load-conns", 0, "in-flight connection cap for -fig load (0 = default 10000)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	quiet := flag.Bool("q", false, "suppress progress logs")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "lejit-bench: -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "lejit-bench: -memprofile:", err)
			}
		}()
	}

	var sc experiments.ScaleConfig
	switch *scale {
	case "default":
		sc = experiments.DefaultScale()
	case "tiny":
		sc = experiments.TinyScale()
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}
	if *testN > 0 {
		sc.TestN = *testN
	}
	if *sampleN > 0 {
		sc.SampleN = *sampleN
	}
	if *racks > 0 {
		sc.Racks = *racks
	}
	if *windows > 0 {
		sc.WindowsPerRack = *windows
	}
	if *epochs > 0 {
		sc.Epochs = *epochs
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	if *workers > 0 {
		sc.Workers = *workers
	}
	sc.CacheDir = *cache
	sc.Quiet = *quiet

	want := map[string]bool{}
	for _, f := range strings.Split(*figs, ",") {
		want[strings.TrimSpace(f)] = true
	}
	all := want["all"]

	env, err := experiments.Prepare(sc)
	if err != nil {
		return err
	}
	fmt.Printf("# LeJIT benchmark — scale=%s racks=%d windows/rack=%d testN=%d sampleN=%d\n",
		*scale, sc.Racks, sc.WindowsPerRack, sc.TestN, sc.SampleN)
	fmt.Printf("# mined rules: %d (imputation) / %d (synthesis); model: %d params\n\n",
		env.ImputeRules.Len(), env.SynthRules.Len(), env.Model.NumParams())

	// Kernel knobs apply to the shared figure model. The cores benchmark is
	// unaffected: it gob-clones the model and manages its own worker group.
	if *kernelWorkers != 0 {
		eff := env.Model.SetKernelWorkers(*kernelWorkers)
		fmt.Printf("# kernel workers: %d\n", eff)
	}
	if *quantize != "" {
		st, err := env.Model.Quantize(*quantize)
		if err != nil {
			return err
		}
		fmt.Printf("# weight quantization: %s (row coverage %.2f)\n", st.Mode, st.Coverage)
	}

	if all || want["3l"] || want["3r"] || want["4l"] || want["4r"] {
		rs, err := experiments.RunImputation(env)
		if err != nil {
			return err
		}
		if all || want["3l"] {
			fmt.Println(experiments.Fig3LeftTable(rs).Render())
		}
		if all || want["3r"] {
			fmt.Println(experiments.Fig3RightTable(rs).Render())
		}
		if all || want["4l"] {
			fmt.Println(experiments.Fig4LeftTable(rs).Render())
		}
		if all || want["4r"] {
			fmt.Println(experiments.Fig4RightTable(rs).Render())
		}
	}
	if all || want["5"] {
		ss, err := experiments.RunSynthesis(env)
		if err != nil {
			return err
		}
		fmt.Println(experiments.Fig5Table(ss).Render())
		fmt.Println(experiments.Fig5RuntimeTable(ss).Render())
	}
	if all || want["abl"] {
		ab, err := experiments.RunRuleSetSizeAblation(env, nil)
		if err != nil {
			return err
		}
		fmt.Println(experiments.AblationTable("Ablation: rule-set size sweep (violations measured vs the FULL mined set)", ab).Render())
		db, err := experiments.RunDecodeStrategyAblation(env, nil)
		if err != nil {
			return err
		}
		fmt.Println(experiments.AblationTable("Ablation: decoding strategy (sampling vs greedy vs beam)", db).Render())
	}
	if all || want["perf"] || (*jsonOut != "" && !want["serve"] && !want["spec"] && !want["pack"] && !want["cores"] && !want["load"]) {
		rep, err := experiments.RunPerf(env, nil)
		if err != nil {
			return err
		}
		fmt.Println(experiments.PerfTable(rep).Render())
		if rep.Warning != "" {
			fmt.Printf("# warning: %s\n", rep.Warning)
		}
		if *jsonOut != "" {
			if err := rep.WriteJSON(*jsonOut); err != nil {
				return err
			}
			fmt.Printf("# perf report written to %s\n", *jsonOut)
		}
	}
	// The speculative-decoding sweep re-decodes the test set once per
	// lookahead setting, so it only runs when asked for explicitly — it is
	// not part of "all".
	if want["spec"] {
		var ks []int
		if *lookahead > 0 {
			ks = []int{0, *lookahead}
		}
		rep, err := experiments.RunSpecBench(env, ks)
		if err != nil {
			return err
		}
		fmt.Println(experiments.SpecTable(rep).Render())
		if !rep.MatchesExact {
			return fmt.Errorf("speculative decode diverged from the exact path (see table)")
		}
		if *jsonOut != "" {
			if err := rep.WriteJSON(*jsonOut); err != nil {
				return err
			}
			fmt.Printf("# spec report written to %s\n", *jsonOut)
		}
	}
	// The domain-pack benchmark trains two extra tiny models and spins up a
	// multi-pack lejitd instance, so it only runs when asked for explicitly —
	// it is not part of "all".
	if want["pack"] {
		rep, err := experiments.RunPackBench(env, experiments.ServeBenchConfig{})
		if err != nil {
			return err
		}
		fmt.Println(experiments.PackTable(rep).Render())
		if !rep.TelemetryMatchesDirect {
			return fmt.Errorf("telemetry pack diverged from the directly built engine (see table)")
		}
		if *jsonOut != "" {
			if err := rep.WriteJSON(*jsonOut); err != nil {
				return err
			}
			fmt.Printf("# pack report written to %s\n", *jsonOut)
		}
	}
	// The multi-core kernel sweep re-decodes the test set at several
	// GOMAXPROCS settings (mutating the process's GOMAXPROCS as it goes), so
	// it only runs when asked for explicitly — it is not part of "all".
	if want["cores"] {
		rep, err := experiments.RunCoresBench(env)
		if err != nil {
			return err
		}
		fmt.Println(experiments.CoresTable(rep).Render())
		if rep.Warning != "" {
			fmt.Printf("# warning: %s\n", rep.Warning)
		}
		if !rep.ParallelMatchesSerial {
			return fmt.Errorf("sharded kernels diverged from the serial baseline (see table)")
		}
		if !rep.QuantizedMatchesFloat32 {
			return fmt.Errorf("int8 kernels diverged from float32 on snapped weights (see table)")
		}
		if *jsonOut != "" {
			if err := rep.WriteJSON(*jsonOut); err != nil {
				return err
			}
			fmt.Printf("# cores report written to %s\n", *jsonOut)
		}
	}
	// The open-loop load sweep spins up multi-shard lejitd fleets and drives
	// thousands of connections, so it only runs when asked for explicitly —
	// it is not part of "all". It hard-fails on any correctness violation:
	// the curve is meaningless if the fleet returned wrong bytes fast.
	if want["load"] {
		rep, err := experiments.RunLoadBench(env, experiments.LoadBenchConfig{Conns: *loadConns})
		if err != nil {
			return err
		}
		fmt.Println(experiments.LoadTable(rep).Render())
		if rep.Warning != "" {
			fmt.Printf("# warning: %s\n", rep.Warning)
		}
		if !rep.StreamedMatchesUnary {
			return fmt.Errorf("load bench: streamed responses diverged from unary (see table)")
		}
		if rep.MisSeeded > 0 || rep.StaleEpochs > 0 {
			return fmt.Errorf("load bench: %d mis-seeded and %d stale-epoch responses", rep.MisSeeded, rep.StaleEpochs)
		}
		if rep.Errors > 0 {
			return fmt.Errorf("load bench: %d transport or unexpected-status errors", rep.Errors)
		}
		if *jsonOut != "" {
			if err := rep.WriteJSON(*jsonOut); err != nil {
				return err
			}
			fmt.Printf("# load report written to %s\n", *jsonOut)
		}
	}
	// The serving load test spins up a real lejitd instance, so it only
	// runs when asked for explicitly — it is not part of "all".
	if want["serve"] {
		rep, err := experiments.RunServeBench(env, experiments.ServeBenchConfig{})
		if err != nil {
			return err
		}
		fmt.Println(experiments.ServeTable(rep).Render())
		if rep.Warning != "" {
			fmt.Printf("# warning: %s\n", rep.Warning)
		}
		if *jsonOut != "" {
			if err := rep.WriteJSON(*jsonOut); err != nil {
				return err
			}
			fmt.Printf("# serve report written to %s\n", *jsonOut)
		}
	}
	return nil
}
