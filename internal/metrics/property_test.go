package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func sampleFrom(rng *rand.Rand, n int, scale float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Float64() * scale
	}
	return out
}

// TestEMDTriangleInequality: EMD is a metric, so d(a,c) ≤ d(a,b) + d(b,c).
func TestEMDTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(20)
		a := sampleFrom(rng, n, 10)
		b := sampleFrom(rng, 1+rng.Intn(20), 10)
		c := sampleFrom(rng, 1+rng.Intn(20), 10)
		dac := EMD(a, c)
		dab := EMD(a, b)
		dbc := EMD(b, c)
		if dac > dab+dbc+1e-9 {
			t.Fatalf("triangle violated: d(a,c)=%v > %v + %v", dac, dab, dbc)
		}
	}
}

// TestEMDTranslationInvariance: shifting both samples by the same constant
// leaves EMD unchanged; shifting one by c changes it by at most |c|.
func TestEMDTranslationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 50; trial++ {
		a := sampleFrom(rng, 1+rng.Intn(15), 10)
		b := sampleFrom(rng, 1+rng.Intn(15), 10)
		c := rng.Float64()*10 - 5
		shift := func(xs []float64) []float64 {
			out := make([]float64, len(xs))
			for i, v := range xs {
				out[i] = v + c
			}
			return out
		}
		d0 := EMD(a, b)
		d1 := EMD(shift(a), shift(b))
		if math.Abs(d0-d1) > 1e-9 {
			t.Fatalf("shift changed EMD: %v vs %v", d0, d1)
		}
		d2 := EMD(shift(a), b)
		if d2 > d0+math.Abs(c)+1e-9 || d2 < d0-math.Abs(c)-1e-9 {
			t.Fatalf("one-sided shift moved EMD by more than |c|: %v -> %v (c=%v)", d0, d2, c)
		}
	}
}

// TestJSDSymmetry via testing/quick.
func TestJSDSymmetry(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		ra := rand.New(rand.NewSource(seedA))
		rb := rand.New(rand.NewSource(seedB))
		a := sampleFrom(ra, 1+ra.Intn(30), 10)
		b := sampleFrom(rb, 1+rb.Intn(30), 10)
		d1 := JSD(a, b, 12, 0, 10)
		d2 := JSD(b, a, 12, 0, 10)
		return math.Abs(d1-d2) < 1e-12 && d1 >= 0 && d1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPercentileMonotone: percentiles are non-decreasing in p.
func TestPercentileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 50; trial++ {
		xs := sampleFrom(rng, 1+rng.Intn(40), 100)
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := Percentile(xs, p)
			if v < prev {
				t.Fatalf("P%v=%v < P(prev)=%v", p, v, prev)
			}
			prev = v
		}
	}
}

// TestBurstsPartitionVolume: the sum of burst volumes plus sub-threshold
// volume equals the series total — FindBursts neither loses nor double
// counts.
func TestBurstsPartitionVolume(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(30)
		series := make([]int64, n)
		var total int64
		for i := range series {
			series[i] = int64(rng.Intn(60))
			total += series[i]
		}
		const thr = 30
		var burstVol, quietVol int64
		for _, b := range FindBursts(series, thr) {
			burstVol += b.Volume
			if b.Start >= b.End {
				t.Fatalf("empty burst %+v", b)
			}
			if b.Peak < thr {
				t.Fatalf("burst peak %d below threshold", b.Peak)
			}
		}
		for _, v := range series {
			if v < thr {
				quietVol += v
			}
		}
		if burstVol+quietVol != total {
			t.Fatalf("partition broken: %d + %d != %d", burstVol, quietVol, total)
		}
	}
}

// TestBurstsAreMaximalAndDisjoint: bursts never touch or overlap.
func TestBurstsAreMaximalAndDisjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 100; trial++ {
		series := make([]int64, 1+rng.Intn(30))
		for i := range series {
			series[i] = int64(rng.Intn(60))
		}
		bs := FindBursts(series, 30)
		for i, b := range bs {
			if i > 0 && b.Start <= bs[i-1].End {
				t.Fatalf("bursts touch/overlap: %+v then %+v (non-maximal)", bs[i-1], b)
			}
			for t0 := b.Start; t0 < b.End; t0++ {
				if series[t0] < 30 {
					t.Fatalf("burst %+v contains sub-threshold interval %d", b, t0)
				}
			}
		}
	}
}
