package metrics

import (
	"math"
	"math/rand"
	"testing"
)

func TestEMDIdentical(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if d := EMD(a, a); d != 0 {
		t.Errorf("EMD(a,a) = %v", d)
	}
}

func TestEMDShift(t *testing.T) {
	// Shifting a distribution by c moves EMD by exactly c.
	a := []float64{0, 1, 2, 3}
	b := []float64{5, 6, 7, 8}
	if d := EMD(a, b); math.Abs(d-5) > 1e-12 {
		t.Errorf("EMD shifted = %v, want 5", d)
	}
}

func TestEMDPointMasses(t *testing.T) {
	if d := EMD([]float64{0}, []float64{3}); math.Abs(d-3) > 1e-12 {
		t.Errorf("EMD point masses = %v, want 3", d)
	}
}

func TestEMDSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		a := randSample(rng, 1+rng.Intn(30))
		b := randSample(rng, 1+rng.Intn(30))
		if d1, d2 := EMD(a, b), EMD(b, a); math.Abs(d1-d2) > 1e-9 {
			t.Fatalf("EMD not symmetric: %v vs %v", d1, d2)
		}
	}
}

func TestEMDUnequalSizes(t *testing.T) {
	// {0,0} vs {0}: same distribution → 0.
	if d := EMD([]float64{0, 0}, []float64{0}); d != 0 {
		t.Errorf("EMD same dist different n = %v", d)
	}
	// Uniform{0,1} vs point{0}: EMD = 0.5.
	if d := EMD([]float64{0, 1}, []float64{0}); math.Abs(d-0.5) > 1e-12 {
		t.Errorf("EMD = %v, want 0.5", d)
	}
}

func randSample(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Float64() * 10
	}
	return out
}

func TestJSDBounds(t *testing.T) {
	a := []float64{1, 1, 1, 1}
	b := []float64{9, 9, 9, 9}
	d := JSD(a, b, 10, 0, 10)
	if math.Abs(d-1) > 1e-9 {
		t.Errorf("disjoint JSD = %v, want 1", d)
	}
	if d := JSD(a, a, 10, 0, 10); d != 0 {
		t.Errorf("identical JSD = %v, want 0", d)
	}
	mixed := []float64{1, 9, 1, 9}
	d = JSD(a, mixed, 10, 0, 10)
	if d <= 0 || d >= 1 {
		t.Errorf("partial-overlap JSD = %v, want in (0,1)", d)
	}
}

func TestJSDDegenerate(t *testing.T) {
	if !math.IsNaN(JSD(nil, []float64{1}, 10, 0, 10)) {
		t.Error("empty sample should yield NaN")
	}
	if !math.IsNaN(JSD([]float64{1}, []float64{1}, 0, 0, 10)) {
		t.Error("zero bins should yield NaN")
	}
	if !math.IsNaN(JSD([]float64{1}, []float64{1}, 10, 5, 5)) {
		t.Error("empty range should yield NaN")
	}
}

func TestMAE(t *testing.T) {
	pred := [][]int64{{1, 2, 3}, {4, 5, 6}}
	truth := [][]int64{{1, 2, 5}, {4, 5, 6}}
	m, err := MAE(pred, truth)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2.0 / 6.0; math.Abs(m-want) > 1e-12 {
		t.Errorf("MAE = %v, want %v", m, want)
	}
	if _, err := MAE(pred, truth[:1]); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 5}, {50, 3}, {25, 2},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile should be NaN")
	}
}

func TestP99Error(t *testing.T) {
	truth := [][]int64{{10, 10, 10, 100}}
	perfect := [][]int64{{10, 10, 10, 100}}
	if e := P99Error(perfect, truth); e > 1e-9 {
		t.Errorf("perfect p99 error = %v", e)
	}
	low := [][]int64{{10, 10, 10, 50}}
	if e := P99Error(low, truth); e <= 0 {
		t.Errorf("under-predicting tail should have positive error, got %v", e)
	}
}

func TestAutocorr(t *testing.T) {
	// Alternating series has lag-1 autocorrelation near -1.
	alt := []float64{1, -1, 1, -1, 1, -1, 1, -1}
	if a := Autocorr(alt, 1); a > -0.7 {
		t.Errorf("alternating lag-1 = %v, want strongly negative", a)
	}
	// Constant series is undefined.
	if !math.IsNaN(Autocorr([]float64{3, 3, 3}, 1)) {
		t.Error("constant series should be NaN")
	}
	if !math.IsNaN(Autocorr(alt, 0)) || !math.IsNaN(Autocorr(alt, 8)) {
		t.Error("invalid lags should be NaN")
	}
}

func TestAutocorrError(t *testing.T) {
	a := [][]int64{{1, 2, 3, 4, 5}}
	if e := AutocorrError(a, a); e != 0 {
		t.Errorf("self autocorr error = %v", e)
	}
	b := [][]int64{{5, 1, 5, 1, 5}}
	if e := AutocorrError(a, b); e <= 0 {
		t.Errorf("different temporal structure should have positive error: %v", e)
	}
}

func TestFindBursts(t *testing.T) {
	series := []int64{5, 30, 35, 5, 40, 5}
	bs := FindBursts(series, 30)
	if len(bs) != 2 {
		t.Fatalf("got %d bursts, want 2: %+v", len(bs), bs)
	}
	if bs[0].Start != 1 || bs[0].End != 3 || bs[0].Volume != 65 || bs[0].Peak != 35 {
		t.Errorf("burst 0 = %+v", bs[0])
	}
	if bs[1].Start != 4 || bs[1].End != 5 || bs[1].Volume != 40 {
		t.Errorf("burst 1 = %+v", bs[1])
	}
	if bs := FindBursts([]int64{1, 2, 3}, 30); len(bs) != 0 {
		t.Errorf("no bursts expected: %+v", bs)
	}
	// Burst spanning the whole window.
	if bs := FindBursts([]int64{30, 30}, 30); len(bs) != 1 || bs[0].End != 2 {
		t.Errorf("full-window burst: %+v", bs)
	}
}

func TestBurstAnalysisPerfect(t *testing.T) {
	truth := [][]int64{{5, 30, 35, 5, 40}, {0, 0, 0, 0, 0}}
	st, err := BurstAnalysis(truth, truth, 30)
	if err != nil {
		t.Fatal(err)
	}
	if st.CountErr != 0 || st.VolumeErr != 0 || st.PositionErr != 0 {
		t.Errorf("perfect analysis should be zero: %+v", st)
	}
}

func TestBurstAnalysisErrors(t *testing.T) {
	truth := [][]int64{{5, 30, 35, 5, 40}}
	pred := [][]int64{{30, 30, 35, 5, 5}} // one merged burst instead of two, shifted
	st, err := BurstAnalysis(pred, truth, 30)
	if err != nil {
		t.Fatal(err)
	}
	if st.CountErr <= 0 || st.VolumeErr <= 0 || st.PositionErr <= 0 {
		t.Errorf("imperfect prediction should have positive errors: %+v", st)
	}
	// Spurious burst where truth has none.
	st, err = BurstAnalysis([][]int64{{40, 0, 0}}, [][]int64{{0, 0, 0}}, 30)
	if err != nil {
		t.Fatal(err)
	}
	if st.VolumeErr != 1 {
		t.Errorf("spurious-burst volume error = %v, want 1", st.VolumeErr)
	}
	if _, err := BurstAnalysis(nil, nil, 30); err == nil {
		t.Error("empty input should error")
	}
	if _, err := BurstAnalysis([][]int64{{1}}, [][]int64{{1}, {2}}, 30); err == nil {
		t.Error("length mismatch should error")
	}
}
