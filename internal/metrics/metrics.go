// Package metrics implements the evaluation metrics of the paper's §4:
// earth mover's distance (1-D Wasserstein) and Jensen–Shannon divergence for
// distributional fidelity (Fig 4 left, Fig 5), MAE and tail (p99) accuracy,
// autocorrelation error for temporal structure, and the downstream
// burst-analysis metrics (burst count / volume / position, Fig 4 right)
// following the burst definition of the underlying datacenter study
// (a sub-interval is in a burst when its volume reaches half the bandwidth).
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// EMD computes the exact 1-D earth mover's distance (Wasserstein-1) between
// two empirical samples: ∫ |F_a(x) − F_b(x)| dx over the merged support.
func EMD(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return math.NaN()
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)

	var d float64
	i, j := 0, 0
	na, nb := float64(len(as)), float64(len(bs))
	prev := math.Min(as[0], bs[0])
	for i < len(as) || j < len(bs) {
		var x float64
		switch {
		case i >= len(as):
			x = bs[j]
		case j >= len(bs):
			x = as[i]
		default:
			x = math.Min(as[i], bs[j])
		}
		fa := float64(i) / na
		fb := float64(j) / nb
		d += math.Abs(fa-fb) * (x - prev)
		prev = x
		for i < len(as) && as[i] == x {
			i++
		}
		for j < len(bs) && bs[j] == x {
			j++
		}
	}
	return d
}

// JSD computes the Jensen–Shannon divergence (base-2, in [0,1]) between the
// histograms of two samples over [lo, hi] with the given bin count.
func JSD(a, b []float64, bins int, lo, hi float64) float64 {
	if bins < 1 || hi <= lo || len(a) == 0 || len(b) == 0 {
		return math.NaN()
	}
	pa := histogram(a, bins, lo, hi)
	pb := histogram(b, bins, lo, hi)
	var d float64
	for i := 0; i < bins; i++ {
		m := (pa[i] + pb[i]) / 2
		d += 0.5*klTerm(pa[i], m) + 0.5*klTerm(pb[i], m)
	}
	return d
}

func klTerm(p, m float64) float64 {
	if p == 0 || m == 0 {
		return 0
	}
	return p * math.Log2(p/m)
}

func histogram(xs []float64, bins int, lo, hi float64) []float64 {
	h := make([]float64, bins)
	w := (hi - lo) / float64(bins)
	for _, x := range xs {
		i := int((x - lo) / w)
		if i < 0 {
			i = 0
		}
		if i >= bins {
			i = bins - 1
		}
		h[i]++
	}
	n := float64(len(xs))
	for i := range h {
		h[i] /= n
	}
	return h
}

// MAE is the mean absolute error between aligned series pairs.
func MAE(pred, truth [][]int64) (float64, error) {
	if len(pred) != len(truth) {
		return 0, fmt.Errorf("metrics: %d predictions vs %d truths", len(pred), len(truth))
	}
	var sum float64
	n := 0
	for i := range pred {
		if len(pred[i]) != len(truth[i]) {
			return 0, fmt.Errorf("metrics: series %d length mismatch", i)
		}
		for t := range pred[i] {
			d := pred[i][t] - truth[i][t]
			if d < 0 {
				d = -d
			}
			sum += float64(d)
			n++
		}
	}
	if n == 0 {
		return 0, fmt.Errorf("metrics: empty series")
	}
	return sum / float64(n), nil
}

// Percentile returns the p-th percentile (p in [0,100]) by linear
// interpolation over the sorted sample.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(s) {
		return s[i]
	}
	return s[i]*(1-frac) + s[i+1]*frac
}

// P99Error is the relative error of the 99th percentile of the flattened
// predicted values against the truth (the tail metric of Fig 4).
func P99Error(pred, truth [][]int64) float64 {
	pp := Percentile(flatten(pred), 99)
	tp := Percentile(flatten(truth), 99)
	if tp == 0 {
		return math.Abs(pp - tp)
	}
	return math.Abs(pp-tp) / tp
}

func flatten(xs [][]int64) []float64 {
	var out []float64
	for _, s := range xs {
		for _, v := range s {
			out = append(out, float64(v))
		}
	}
	return out
}

// Autocorr computes the lag-k autocorrelation of a series (NaN for constant
// or too-short series).
func Autocorr(series []float64, lag int) float64 {
	n := len(series)
	if lag <= 0 || lag >= n {
		return math.NaN()
	}
	var mean float64
	for _, v := range series {
		mean += v
	}
	mean /= float64(n)
	var num, den float64
	for t := 0; t < n; t++ {
		d := series[t] - mean
		den += d * d
		if t+lag < n {
			num += d * (series[t+lag] - mean)
		}
	}
	if den == 0 {
		return math.NaN()
	}
	return num / den
}

// AutocorrError is the mean absolute difference of lag-1 autocorrelations
// across aligned series pairs, skipping pairs where either side is constant.
func AutocorrError(pred, truth [][]int64) float64 {
	var sum float64
	n := 0
	for i := range pred {
		if i >= len(truth) {
			break
		}
		ap := Autocorr(toF(pred[i]), 1)
		at := Autocorr(toF(truth[i]), 1)
		if math.IsNaN(ap) || math.IsNaN(at) {
			continue
		}
		sum += math.Abs(ap - at)
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

func toF(xs []int64) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = float64(v)
	}
	return out
}

// Burst is a maximal run of sub-intervals at or above the burst threshold.
type Burst struct {
	Start, End int   // half-open [Start, End)
	Volume     int64 // total volume within the burst
	Peak       int64 // maximum sub-interval volume
}

// FindBursts locates bursts in a fine-grained series given a threshold
// (the datacenter study and the paper's R3 use BW/2).
func FindBursts(series []int64, threshold int64) []Burst {
	var out []Burst
	i := 0
	for i < len(series) {
		if series[i] < threshold {
			i++
			continue
		}
		b := Burst{Start: i, Peak: series[i]}
		for i < len(series) && series[i] >= threshold {
			b.Volume += series[i]
			if series[i] > b.Peak {
				b.Peak = series[i]
			}
			i++
		}
		b.End = i
		out = append(out, b)
	}
	return out
}

// BurstStats aggregates the downstream burst-analysis errors of Fig 4
// (right) over aligned imputed/true series.
type BurstStats struct {
	CountErr    float64 // mean |#bursts_pred − #bursts_true|
	VolumeErr   float64 // mean relative burst-volume error per window
	PositionErr float64 // mean fraction of sub-intervals with wrong burst membership
}

// BurstAnalysis computes BurstStats at the given threshold.
func BurstAnalysis(pred, truth [][]int64, threshold int64) (BurstStats, error) {
	if len(pred) != len(truth) {
		return BurstStats{}, fmt.Errorf("metrics: %d predictions vs %d truths", len(pred), len(truth))
	}
	if len(pred) == 0 {
		return BurstStats{}, fmt.Errorf("metrics: empty input")
	}
	var st BurstStats
	for i := range pred {
		if len(pred[i]) != len(truth[i]) {
			return BurstStats{}, fmt.Errorf("metrics: series %d length mismatch", i)
		}
		bp := FindBursts(pred[i], threshold)
		bt := FindBursts(truth[i], threshold)
		st.CountErr += math.Abs(float64(len(bp) - len(bt)))

		var vp, vt int64
		for _, b := range bp {
			vp += b.Volume
		}
		for _, b := range bt {
			vt += b.Volume
		}
		switch {
		case vt == 0 && vp == 0:
			// perfect
		case vt == 0:
			st.VolumeErr += 1
		default:
			st.VolumeErr += math.Abs(float64(vp-vt)) / float64(vt)
		}

		wrong := 0
		for t := range pred[i] {
			if (pred[i][t] >= threshold) != (truth[i][t] >= threshold) {
				wrong++
			}
		}
		st.PositionErr += float64(wrong) / float64(len(pred[i]))
	}
	n := float64(len(pred))
	st.CountErr /= n
	st.VolumeErr /= n
	st.PositionErr /= n
	return st, nil
}
