package smt

import "fmt"

// Minimize finds the smallest value of e over all models of the active
// assertions (conjoined with extra). It returns the minimum and Sat, or
// Unsat if no model exists, or Unknown on budget exhaustion.
//
// The search is a binary descent on satisfiability: each probe conjoins
// e ≤ mid and re-checks, so it needs O(log range) Check calls. Every probe
// runs under the solver's per-Check budget (MaxNodes, MaxProps, Timeout,
// and any context attached via SetContext), so a Minimize over a
// pathological store costs at most O(log range) budgets before giving up
// with Unknown rather than running forever.
func (s *Solver) Minimize(e LinExpr, extra ...Formula) (int64, Status) {
	s.stats.OptQueries++
	res := s.CheckWith(extra...)
	if res.Status != Sat {
		return 0, res.Status
	}
	cur, err := e.Eval(res.Model)
	if err != nil {
		return 0, Unknown
	}
	lo := s.exprDomainMin(e)
	hi := cur
	for lo < hi {
		mid := lo + (hi-lo)/2 // floor; mid < hi always
		probe := append(append([]Formula(nil), extra...), Le(e, C(mid)))
		r := s.CheckWith(probe...)
		switch r.Status {
		case Sat:
			v, err := e.Eval(r.Model)
			if err != nil {
				return 0, Unknown
			}
			if v < hi {
				hi = v
			} else {
				hi = mid
			}
		case Unsat:
			lo = mid + 1
		default:
			return 0, Unknown
		}
	}
	return lo, Sat
}

// Maximize finds the largest value of e over all models of the active
// assertions (conjoined with extra).
func (s *Solver) Maximize(e LinExpr, extra ...Formula) (int64, Status) {
	v, st := s.Minimize(e.Scale(-1), extra...)
	return -v, st
}

// FeasibleRange computes [min, max] of e over all models; the two bounds may
// be attained by different models. Returns Unsat/Unknown statuses as in
// Minimize.
func (s *Solver) FeasibleRange(e LinExpr, extra ...Formula) (lo, hi int64, st Status) {
	lo, st = s.Minimize(e, extra...)
	if st != Sat {
		return 0, 0, st
	}
	hi, st = s.Maximize(e, extra...)
	if st != Sat {
		return 0, 0, st
	}
	return lo, hi, Sat
}

// exprDomainMin is the trivial lower bound of e from variable domains alone.
func (s *Solver) exprDomainMin(e LinExpr) int64 {
	d := domains{lo: s.lo, hi: s.hi}
	minV, _ := d.exprRange(e)
	return minV
}

// Value extracts the model value of e, panicking on incomplete models
// (models returned by Check are always complete).
func (r Result) Value(e LinExpr) int64 {
	v, err := e.Eval(r.Model)
	if err != nil {
		panic(fmt.Sprintf("smt: %v", err))
	}
	return v
}
