package smt_test

import (
	"fmt"

	"repro/internal/smt"
)

// The paper's running example (§2.1): five fine-grained ingress values must
// sum to the observed total, stay under the link bandwidth, and — because
// ECN marks were seen — include a burst of at least half the bandwidth.
func Example() {
	s := smt.NewSolver()
	const bw = 60
	var is []smt.Var
	var sum smt.LinExpr
	for i := 0; i < 5; i++ {
		v := s.NewVar(fmt.Sprintf("I%d", i), 0, bw)
		is = append(is, v)
		sum = sum.Add(smt.V(v))
	}
	s.Assert(smt.Eq(sum, smt.C(100))) // R2: conservation
	var burst []smt.Formula
	for _, v := range is {
		burst = append(burst, smt.Ge(smt.V(v), smt.C(bw/2)))
	}
	s.Assert(smt.Or(burst...)) // R3 with congestion observed

	// Pin the values generated so far and ask what I3 may still become —
	// the LeJIT lookahead query (Fig 1b step ②).
	s.Assert(smt.Eq(smt.V(is[0]), smt.C(20)))
	s.Assert(smt.Eq(smt.V(is[1]), smt.C(15)))
	s.Assert(smt.Eq(smt.V(is[2]), smt.C(25)))

	lo, hi, st := s.FeasibleRange(smt.V(is[3]))
	fmt.Println(st, lo, hi)

	// 70 — the model's intent in Fig 1a — is infeasible.
	r := s.CheckWith(smt.Eq(smt.V(is[3]), smt.C(39)))
	fmt.Println("I3=39:", r.Status)
	// Output:
	// sat 0 40
	// I3=39: sat
}

// Minimize finds tight bounds under the assertions.
func ExampleSolver_Minimize() {
	s := smt.NewSolver()
	x := s.NewVar("x", 0, 100)
	y := s.NewVar("y", 0, 100)
	s.Assert(smt.Ge(smt.V(x).Add(smt.V(y)), smt.C(10)))
	min, st := s.Minimize(smt.Sum(smt.V(x), smt.CV(2, y)))
	fmt.Println(st, min)
	// Output: sat 10
}

// Push/Pop scope assertions per decoded record.
func ExampleSolver_Push() {
	s := smt.NewSolver()
	x := s.NewVar("x", 0, 10)
	s.Assert(smt.Ge(smt.V(x), smt.C(3)))

	s.Push()
	s.Assert(smt.Le(smt.V(x), smt.C(1)))
	fmt.Println(s.Check().Status)
	s.Pop()
	fmt.Println(s.Check().Status)
	// Output:
	// unsat
	// sat
}
