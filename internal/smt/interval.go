package smt

// This file backs LeJIT's interval-based oracle fast path (DESIGN.md §6).
// The decoder answers most per-digit range probes from the propagated root
// bounds of the slot variable instead of issuing a solver check, which is
// sound only under two conditions established here:
//
//  1. BaseBounds must be a true over-approximation of the variable's
//     feasible projection. Bounds propagation guarantees that by
//     construction, so a probe range disjoint from BaseBounds is always
//     genuinely infeasible.
//  2. Treating the feasible set as one contiguous interval (so "between two
//     witnessed values" implies feasible) requires the projection to have no
//     holes. Disjunctions are the dominant source of holes, and the hole a
//     disjunction induces is not confined to the variables it mentions —
//     v = y ∧ (y ≤ 0 ∨ y ≥ 10) punches a hole into v's projection without
//     any disjunction naming v. VarDisjunctionTainted therefore reports v
//     as tainted when v is connected, through the constraint graph of the
//     epoch's live constraints, to any variable of a live disjunction.
//     For the conjunctive remainder, interval-ness is a property of the
//     rule grammar, not of linear arithmetic in general (coupled equality
//     chains like w = x+y ∧ x = y give w an all-even projection); LeJIT's
//     compiled rules — single unit-coefficient sum equalities plus pairwise
//     inequalities whose slack (≥2) exceeds their coefficients minus one —
//     cannot express such chains. DESIGN.md §6 states the argument; the
//     decoder's ValidateFastPath mode and the fast-path equivalence tests
//     check it empirically against the mined rule sets.
//
// "Live" matters for precision: the telemetry prompt pins the coarse fields
// before fine-grained decoding starts, which decides most rule disjunctions
// (e.g. Congestion = 0 entails the r3 implication). simplifyDisjunctions
// resolves those at base-build time — entailed disjunctions are dropped,
// refuted alternatives pruned, sole survivors asserted as base constraints —
// so taint reflects only the disjunctions that can still branch.

// simplifyDisjunctions resolves the base store's disjunctions against the
// propagated root bounds, to fixpoint. Sound for every later probe of the
// epoch: probes only conjoin extra constraints, which shrink the bound box,
// and a formula entailed (resp. refuted) on a box stays entailed (refuted)
// on any subset.
func (b *baseStore) simplifyDisjunctions(s *Solver) {
	pending := b.disj
	b.disj = b.disj[:0:0] // fresh backing: pending still reads the old one
	for len(pending) > 0 {
		var next []orF
		asserted := false
		for _, g := range pending {
			live := make([]Formula, 0, len(g.fs))
			entailed := false
			for _, alt := range g.fs {
				switch b.dom.formulaStatus(alt) {
				case triTrue:
					entailed = true
				case triUnknown:
					live = append(live, alt)
				}
				if entailed {
					break
				}
			}
			if entailed {
				continue
			}
			switch len(live) {
			case 0:
				b.conflict = true
				return
			case 1:
				// Unit: the sole surviving alternative must hold; fold it
				// into the base constraints.
				ca := compileAssert(live[0])
				if ca.unsat {
					b.conflict = true
					return
				}
				b.cons = append(b.cons, ca.cons...)
				next = append(next, ca.disj...)
				asserted = true
			default:
				next = append(next, orF{fs: live})
			}
		}
		if asserted {
			// New base constraints may tighten bounds, which can decide
			// disjunctions kept earlier in this round: re-examine them all.
			if !propagate(b.dom, b.cons, &s.stats.Propagations) {
				b.conflict = true
				return
			}
			pending = next
			continue
		}
		b.disj = next
		return
	}
}

// buildTaint marks every variable whose feasible projection may be
// non-convex: those in the same constraint-graph component as a variable of
// a live disjunction. Components are computed by union-find over the base
// constraints; disjunction variables then taint their components.
func (b *baseStore) buildTaint(nvars int) {
	if len(b.disj) == 0 {
		return // no live disjunctions: every projection is an interval
	}
	parent := make([]int32, nvars)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	union := func(x, y int32) {
		rx, ry := find(x), find(y)
		if rx != ry {
			parent[rx] = ry
		}
	}
	for i := range b.cons {
		terms := b.cons[i].terms
		for j := 1; j < len(terms); j++ {
			union(int32(terms[0].V), int32(terms[j].V))
		}
	}
	tainted := make(map[int32]bool)
	for _, g := range b.disj {
		for v := range FormulaVars(g) {
			tainted[find(int32(v))] = true
		}
	}
	b.disjTaint = make([]bool, nvars)
	for v := range b.disjTaint {
		b.disjTaint[v] = tainted[find(int32(v))]
	}
}

// BaseBounds returns the propagated root bounds of v under the active
// assertions: a superset of v's feasible values, computed without any solver
// check (the epoch's memoized base store is built at most once). feasible is
// false when the assertions alone are unsatisfiable — then no value of any
// variable is feasible.
func (s *Solver) BaseBounds(v Var) (lo, hi int64, feasible bool) {
	b := s.currentBase()
	if b.conflict {
		return 0, 0, false
	}
	return b.dom.lo[v], b.dom.hi[v], true
}

// VarDisjunctionTainted reports whether v's feasible projection may be
// non-convex under the active assertions: whether v shares a constraint-graph
// component with a variable of a disjunction the root bounds cannot decide.
// When it returns false, the feasible set of v is a single interval, so a
// caller holding two feasible witnesses may treat every value between them
// as feasible. Conservative: true never lies, false is exact for the
// bounds-consistent base (see the file comment for the argument).
func (s *Solver) VarDisjunctionTainted(v Var) bool {
	b := s.currentBase()
	if b.conflict {
		return true
	}
	if b.disjTaint == nil {
		return false
	}
	return b.disjTaint[v]
}
