package smt

import (
	"fmt"
	"strings"
)

// AtomOp is the comparison operator of an atom.
type AtomOp int

// Comparison operators. Internally everything is normalized to LE and EQ over
// integers (strict inequalities are tightened by one; NE becomes a
// disjunction during solving).
const (
	OpLE AtomOp = iota // Expr ≤ 0
	OpLT               // Expr < 0
	OpGE               // Expr ≥ 0
	OpGT               // Expr > 0
	OpEQ               // Expr = 0
	OpNE               // Expr ≠ 0
)

func (op AtomOp) String() string {
	switch op {
	case OpLE:
		return "<="
	case OpLT:
		return "<"
	case OpGE:
		return ">="
	case OpGT:
		return ">"
	case OpEQ:
		return "=="
	case OpNE:
		return "!="
	}
	return "?"
}

// negate returns the operator of the negated atom.
func (op AtomOp) negate() AtomOp {
	switch op {
	case OpLE:
		return OpGT
	case OpLT:
		return OpGE
	case OpGE:
		return OpLT
	case OpGT:
		return OpLE
	case OpEQ:
		return OpNE
	case OpNE:
		return OpEQ
	}
	panic("smt: bad AtomOp")
}

// Atom is a linear constraint Expr ⋈ 0.
type Atom struct {
	Expr LinExpr
	Op   AtomOp
}

// Formula is a quantifier-free boolean combination of linear atoms.
// Formulas are immutable trees built with the package-level constructors
// (And, Or, Not, Implies, Le, Lt, Ge, Gt, Eq, Ne, True, False).
type Formula interface {
	fString(*strings.Builder)
	isFormula()
}

type (
	atomF struct{ a Atom }
	boolF struct{ v bool }
	notF  struct{ f Formula }
	andF  struct{ fs []Formula }
	orF   struct{ fs []Formula }
)

func (atomF) isFormula() {}
func (boolF) isFormula() {}
func (notF) isFormula()  {}
func (andF) isFormula()  {}
func (orF) isFormula()   {}

// True and False are the boolean constants.
var (
	True  Formula = boolF{v: true}
	False Formula = boolF{v: false}
)

// AtomFormula wraps an Atom as a Formula.
func AtomFormula(a Atom) Formula { return atomF{a: a} }

// AtomOf returns the atom of a bare atomic formula, and reports whether f
// is one.
func AtomOf(f Formula) (Atom, bool) {
	if g, ok := f.(atomF); ok {
		return g.a, true
	}
	return Atom{}, false
}

// Le returns the formula a ≤ b.
func Le(a, b LinExpr) Formula { return atomF{Atom{Expr: a.Sub(b), Op: OpLE}} }

// Lt returns the formula a < b.
func Lt(a, b LinExpr) Formula { return atomF{Atom{Expr: a.Sub(b), Op: OpLT}} }

// Ge returns the formula a ≥ b.
func Ge(a, b LinExpr) Formula { return atomF{Atom{Expr: a.Sub(b), Op: OpGE}} }

// Gt returns the formula a > b.
func Gt(a, b LinExpr) Formula { return atomF{Atom{Expr: a.Sub(b), Op: OpGT}} }

// Eq returns the formula a = b.
func Eq(a, b LinExpr) Formula { return atomF{Atom{Expr: a.Sub(b), Op: OpEQ}} }

// Ne returns the formula a ≠ b.
func Ne(a, b LinExpr) Formula { return atomF{Atom{Expr: a.Sub(b), Op: OpNE}} }

// Not returns ¬f.
func Not(f Formula) Formula {
	switch g := f.(type) {
	case boolF:
		return boolF{v: !g.v}
	case notF:
		return g.f
	case atomF:
		return atomF{Atom{Expr: g.a.Expr, Op: g.a.Op.negate()}}
	}
	return notF{f: f}
}

// And returns the conjunction of fs, flattening nested conjunctions and
// simplifying constants.
func And(fs ...Formula) Formula {
	out := make([]Formula, 0, len(fs))
	for _, f := range fs {
		switch g := f.(type) {
		case boolF:
			if !g.v {
				return False
			}
		case andF:
			out = append(out, g.fs...)
		default:
			out = append(out, f)
		}
	}
	switch len(out) {
	case 0:
		return True
	case 1:
		return out[0]
	}
	return andF{fs: out}
}

// Or returns the disjunction of fs, flattening nested disjunctions and
// simplifying constants.
func Or(fs ...Formula) Formula {
	out := make([]Formula, 0, len(fs))
	for _, f := range fs {
		switch g := f.(type) {
		case boolF:
			if g.v {
				return True
			}
		case orF:
			out = append(out, g.fs...)
		default:
			out = append(out, f)
		}
	}
	switch len(out) {
	case 0:
		return False
	case 1:
		return out[0]
	}
	return orF{fs: out}
}

// Implies returns a → b (as ¬a ∨ b).
func Implies(a, b Formula) Formula { return Or(Not(a), b) }

// Iff returns a ↔ b.
func Iff(a, b Formula) Formula { return And(Implies(a, b), Implies(b, a)) }

// Between returns the formula lo ≤ e ≤ hi.
func Between(e LinExpr, lo, hi int64) Formula {
	return And(Ge(e, C(lo)), Le(e, C(hi)))
}

// nnf pushes negations down to atoms, yielding a formula consisting only of
// atoms, conjunctions, and disjunctions.
func nnf(f Formula) Formula {
	switch g := f.(type) {
	case boolF, atomF:
		return f
	case notF:
		switch h := g.f.(type) {
		case boolF:
			return boolF{v: !h.v}
		case atomF:
			return atomF{Atom{Expr: h.a.Expr, Op: h.a.Op.negate()}}
		case notF:
			return nnf(h.f)
		case andF:
			out := make([]Formula, len(h.fs))
			for i, sub := range h.fs {
				out[i] = nnf(notF{f: sub})
			}
			return Or(out...)
		case orF:
			out := make([]Formula, len(h.fs))
			for i, sub := range h.fs {
				out[i] = nnf(notF{f: sub})
			}
			return And(out...)
		}
	case andF:
		out := make([]Formula, len(g.fs))
		for i, sub := range g.fs {
			out[i] = nnf(sub)
		}
		return And(out...)
	case orF:
		out := make([]Formula, len(g.fs))
		for i, sub := range g.fs {
			out[i] = nnf(sub)
		}
		return Or(out...)
	}
	panic("smt: unknown formula node")
}

// EvalFormula evaluates f under a complete assignment.
func EvalFormula(f Formula, assign map[Var]int64) (bool, error) {
	switch g := f.(type) {
	case boolF:
		return g.v, nil
	case atomF:
		v, err := g.a.Expr.Eval(assign)
		if err != nil {
			return false, err
		}
		switch g.a.Op {
		case OpLE:
			return v <= 0, nil
		case OpLT:
			return v < 0, nil
		case OpGE:
			return v >= 0, nil
		case OpGT:
			return v > 0, nil
		case OpEQ:
			return v == 0, nil
		case OpNE:
			return v != 0, nil
		}
		return false, fmt.Errorf("smt: bad atom op %v", g.a.Op)
	case notF:
		v, err := EvalFormula(g.f, assign)
		return !v, err
	case andF:
		for _, sub := range g.fs {
			v, err := EvalFormula(sub, assign)
			if err != nil || !v {
				return false, err
			}
		}
		return true, nil
	case orF:
		for _, sub := range g.fs {
			v, err := EvalFormula(sub, assign)
			if err != nil {
				return false, err
			}
			if v {
				return true, nil
			}
		}
		return false, nil
	}
	return false, fmt.Errorf("smt: unknown formula node %T", f)
}

// Conjuncts splits f into its top-level conjuncts. And flattens nested
// conjunctions at construction time, so one level of splitting is complete:
// no element of the result is itself a conjunction.
func Conjuncts(f Formula) []Formula {
	switch g := f.(type) {
	case nil:
		return nil
	case andF:
		return g.fs
	}
	return []Formula{f}
}

// FormulaVars returns the set of variables referenced by f.
func FormulaVars(f Formula) map[Var]bool {
	out := make(map[Var]bool)
	collectVars(f, out)
	return out
}

func collectVars(f Formula, out map[Var]bool) {
	switch g := f.(type) {
	case atomF:
		for _, v := range g.a.Expr.Vars() {
			out[v] = true
		}
	case notF:
		collectVars(g.f, out)
	case andF:
		for _, sub := range g.fs {
			collectVars(sub, out)
		}
	case orF:
		for _, sub := range g.fs {
			collectVars(sub, out)
		}
	}
}

func (f atomF) fString(b *strings.Builder) {
	b.WriteString(f.a.Expr.String())
	b.WriteString(" ")
	b.WriteString(f.a.Op.String())
	b.WriteString(" 0")
}

func (f boolF) fString(b *strings.Builder) {
	if f.v {
		b.WriteString("true")
	} else {
		b.WriteString("false")
	}
}

func (f notF) fString(b *strings.Builder) {
	b.WriteString("!(")
	f.f.fString(b)
	b.WriteString(")")
}

func (f andF) fString(b *strings.Builder) {
	b.WriteString("(")
	for i, sub := range f.fs {
		if i > 0 {
			b.WriteString(" && ")
		}
		sub.fString(b)
	}
	b.WriteString(")")
}

func (f orF) fString(b *strings.Builder) {
	b.WriteString("(")
	for i, sub := range f.fs {
		if i > 0 {
			b.WriteString(" || ")
		}
		sub.fString(b)
	}
	b.WriteString(")")
}

// FormulaString renders f for debugging.
func FormulaString(f Formula) string {
	var b strings.Builder
	f.fString(&b)
	return b.String()
}

// formulaEqual reports structural equality of two formulas. Assert uses it
// to detect that a formula exactly replays one discarded by TruncateTo —
// the undo case that restores the stack's previous epoch — so it must never
// report a false positive; a false negative merely costs a recompile.
func formulaEqual(a, b Formula) bool {
	switch x := a.(type) {
	case boolF:
		y, ok := b.(boolF)
		return ok && x.v == y.v
	case atomF:
		y, ok := b.(atomF)
		return ok && x.a.Op == y.a.Op && linExprEqual(x.a.Expr, y.a.Expr)
	case notF:
		y, ok := b.(notF)
		return ok && formulaEqual(x.f, y.f)
	case andF:
		y, ok := b.(andF)
		return ok && formulasEqual(x.fs, y.fs)
	case orF:
		y, ok := b.(orF)
		return ok && formulasEqual(x.fs, y.fs)
	}
	return false
}

func formulasEqual(a, b []Formula) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !formulaEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

func linExprEqual(a, b LinExpr) bool {
	if a.k != b.k || len(a.terms) != len(b.terms) {
		return false
	}
	for i := range a.terms {
		if a.terms[i] != b.terms[i] {
			return false
		}
	}
	return true
}
