package smt

import (
	"context"
	"errors"
	"testing"
	"time"
)

// hardSolver builds a store whose Check needs well over 64 search nodes:
// twelve wide variables coupled by a sum and per-variable edge disjunctions,
// so the search must branch repeatedly before finding a model.
func hardSolver() *Solver {
	s := NewSolver()
	vars := make([]Var, 12)
	sum := C(0)
	for i := range vars {
		vars[i] = s.NewVar("x", 0, 50)
		sum = sum.Add(V(vars[i]))
		s.Assert(Or(Lt(V(vars[i]), C(5)), Gt(V(vars[i]), C(45))))
	}
	s.Assert(Eq(sum, C(300)))
	return s
}

func TestBudgetResultCarriesErrBudget(t *testing.T) {
	s := hardSolver()
	s.MaxNodes = 2
	r := s.Check()
	if r.Status != Unknown {
		t.Fatalf("status %v with MaxNodes=2, want unknown", r.Status)
	}
	if !errors.Is(r.Err, ErrBudget) {
		t.Fatalf("Result.Err = %v, want ErrBudget", r.Err)
	}
	if s.Stats().BudgetStops == 0 {
		t.Error("BudgetStops not counted")
	}

	// With the default budget the same store is decidable, and decisive
	// results carry no error.
	s.MaxNodes = 1 << 20
	r = s.Check()
	if r.Status == Unknown {
		t.Fatalf("default budget still unknown")
	}
	if r.Err != nil {
		t.Errorf("decisive result carries err %v", r.Err)
	}
}

func TestPropagationBudget(t *testing.T) {
	s := hardSolver()
	s.MaxProps = 1
	r := s.Check()
	if r.Status != Unknown || !errors.Is(r.Err, ErrBudget) {
		t.Fatalf("status %v err %v with MaxProps=1, want unknown/ErrBudget", r.Status, r.Err)
	}

	// A store that needs no propagation at all stays decidable under the
	// same tiny propagation budget.
	tiny := NewSolver()
	tiny.MaxProps = 1
	tiny.NewVar("y", 3, 3)
	if r := tiny.Check(); r.Status != Sat {
		t.Fatalf("propagation-free store: %v, want sat", r.Status)
	}
}

func TestTimeoutStopsSearch(t *testing.T) {
	s := hardSolver()
	s.Timeout = time.Nanosecond
	start := time.Now()
	r := s.Check()
	if r.Status != Unknown || !errors.Is(r.Err, ErrBudget) {
		t.Fatalf("status %v err %v with 1ns timeout, want unknown/ErrBudget", r.Status, r.Err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("timeout took %v to fire", time.Since(start))
	}
}

func TestSetContextAbandonsCheck(t *testing.T) {
	s := hardSolver()

	// Already-cancelled context: the Check does no search work at all.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.SetContext(ctx)
	nodesBefore := s.Stats().Nodes
	r := s.Check()
	if r.Status != Unknown || !errors.Is(r.Err, context.Canceled) {
		t.Fatalf("status %v err %v under cancelled ctx, want unknown/Canceled", r.Status, r.Err)
	}
	if s.Stats().Nodes != nodesBefore {
		t.Errorf("cancelled Check explored %d nodes", s.Stats().Nodes-nodesBefore)
	}

	// An expired deadline interrupts the search mid-Check (at a poll point),
	// not just between Checks.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(time.Microsecond))
	defer dcancel()
	time.Sleep(time.Millisecond)
	s.SetContext(dctx)
	r = s.Check()
	if r.Status != Unknown || !errors.Is(r.Err, context.DeadlineExceeded) {
		t.Fatalf("status %v err %v under expired deadline, want unknown/DeadlineExceeded", r.Status, r.Err)
	}

	// Detaching restores normal solving.
	s.SetContext(nil)
	if r := s.Check(); r.Status == Unknown {
		t.Fatalf("detached solver still unknown: %v", r.Err)
	}
}

func TestMinimizeHonorsBudget(t *testing.T) {
	s := hardSolver()
	s.MaxNodes = 2
	vs := V(Var(0))
	if _, st := s.Minimize(vs); st != Unknown {
		t.Fatalf("Minimize under exhausted budget: %v, want unknown", st)
	}
}
