package smt

import (
	"testing"
	"testing/quick"
)

func TestLinExprBuilders(t *testing.T) {
	x, y := Var(0), Var(1)
	e := Sum(CV(2, x), CV(3, y), C(5))
	if got := e.Coef(x); got != 2 {
		t.Errorf("Coef(x) = %d, want 2", got)
	}
	if got := e.Coef(y); got != 3 {
		t.Errorf("Coef(y) = %d, want 3", got)
	}
	if got := e.Const(); got != 5 {
		t.Errorf("Const = %d, want 5", got)
	}
	if got := e.Coef(Var(7)); got != 0 {
		t.Errorf("Coef(absent) = %d, want 0", got)
	}
}

func TestLinExprAddCancels(t *testing.T) {
	x := Var(0)
	e := V(x).Add(CV(-1, x))
	if !e.IsConst() || e.Const() != 0 {
		t.Errorf("x + (-x) = %v, want constant 0", e)
	}
}

func TestLinExprSubScale(t *testing.T) {
	x, y := Var(0), Var(1)
	e := V(x).Sub(V(y)).Scale(4) // 4x - 4y
	if e.Coef(x) != 4 || e.Coef(y) != -4 {
		t.Errorf("scale: got %v", e)
	}
	if e.Scale(0).NumTerms() != 0 {
		t.Error("Scale(0) should drop all terms")
	}
}

func TestLinExprEval(t *testing.T) {
	x, y := Var(0), Var(1)
	e := Sum(CV(2, x), CV(-1, y), C(7))
	v, err := e.Eval(map[Var]int64{x: 3, y: 4})
	if err != nil {
		t.Fatal(err)
	}
	if v != 2*3-4+7 {
		t.Errorf("Eval = %d, want 9", v)
	}
	if _, err := e.Eval(map[Var]int64{x: 3}); err == nil {
		t.Error("Eval with missing var should error")
	}
}

func TestLinExprAddCommutative(t *testing.T) {
	f := func(ax, ay, ak, bx, by, bk int8) bool {
		x, y := Var(0), Var(1)
		a := Sum(CV(int64(ax), x), CV(int64(ay), y), C(int64(ak)))
		b := Sum(CV(int64(bx), x), CV(int64(by), y), C(int64(bk)))
		l, r := a.Add(b), b.Add(a)
		return l.Coef(x) == r.Coef(x) && l.Coef(y) == r.Coef(y) && l.Const() == r.Const()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromTermsMergesDuplicates(t *testing.T) {
	x := Var(3)
	e := FromTerms(1, struct {
		C int64
		V Var
	}{2, x}, struct {
		C int64
		V Var
	}{5, x})
	if e.Coef(x) != 7 || e.Const() != 1 {
		t.Errorf("FromTerms merge: got %v", e)
	}
}

func TestDivisionHelpers(t *testing.T) {
	cases := []struct {
		a, b, fl, ce int64
	}{
		{7, 2, 3, 4},
		{-7, 2, -4, -3},
		{6, 3, 2, 2},
		{-6, 3, -2, -2},
		{0, 5, 0, 0},
		{1, 7, 0, 1},
		{-1, 7, -1, 0},
	}
	for _, c := range cases {
		if got := floorDiv(c.a, c.b); got != c.fl {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.fl)
		}
		if got := ceilDiv(c.a, c.b); got != c.ce {
			t.Errorf("ceilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.ce)
		}
	}
}

func TestGCD(t *testing.T) {
	cases := []struct{ a, b, g int64 }{
		{12, 18, 6}, {7, 13, 1}, {0, 5, 5}, {5, 0, 5}, {0, 0, 0},
	}
	for _, c := range cases {
		if got := gcd64(c.a, c.b); got != c.g {
			t.Errorf("gcd(%d,%d) = %d, want %d", c.a, c.b, got, c.g)
		}
	}
}

func TestLinExprString(t *testing.T) {
	x, y := Var(0), Var(1)
	cases := []struct {
		e    LinExpr
		want string
	}{
		{C(5), "5"},
		{V(x), "x0"},
		{CV(-1, x), "-x0"},
		{Sum(CV(2, x), CV(-3, y), C(1)), "2*x0 - 3*x1 + 1"},
		{Sum(V(x), C(-4)), "x0 - 4"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
