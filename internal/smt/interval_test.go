package smt

import (
	"math/rand"
	"testing"
)

func TestBaseBoundsTightens(t *testing.T) {
	s := NewSolver()
	x := s.NewVar("x", 0, 100)
	y := s.NewVar("y", 0, 100)
	s.Assert(Le(V(x), C(40)))
	s.Assert(Ge(V(x).Sub(V(y)), C(10))) // x - y >= 10 → y <= 30

	lo, hi, ok := s.BaseBounds(x)
	if !ok || lo != 10 || hi != 40 {
		t.Errorf("BaseBounds(x) = [%d,%d] ok=%v, want [10,40] true", lo, hi, ok)
	}
	lo, hi, ok = s.BaseBounds(y)
	if !ok || lo != 0 || hi != 30 {
		t.Errorf("BaseBounds(y) = [%d,%d] ok=%v, want [0,30] true", lo, hi, ok)
	}
	// BaseBounds must never issue a solver check.
	if got := s.Stats().Checks; got != 0 {
		t.Errorf("BaseBounds performed %d checks", got)
	}

	// Over-approximation: every feasible value lies inside BaseBounds.
	rlo, rhi, st := s.FeasibleRange(V(x))
	if st != Sat || rlo < 10 || rhi > 40 {
		t.Errorf("true range [%d,%d] (%v) escapes BaseBounds [10,40]", rlo, rhi, st)
	}
}

func TestBaseBoundsConflict(t *testing.T) {
	s := NewSolver()
	x := s.NewVar("x", 0, 10)
	s.Assert(Ge(V(x), C(20)))
	if _, _, ok := s.BaseBounds(x); ok {
		t.Error("BaseBounds reported feasible on a conflicting stack")
	}
	if !s.VarDisjunctionTainted(x) {
		t.Error("tainted must be conservative (true) on a conflicting stack")
	}
}

// TestDisjunctionTaintComponents pins the component semantics: a live
// disjunction taints every variable connected to it through constraints,
// and nothing else.
func TestDisjunctionTaintComponents(t *testing.T) {
	s := NewSolver()
	u := s.NewVar("u", 0, 100) // mentioned by the disjunction
	v := s.NewVar("v", 0, 100) // linked to u by an equality
	w := s.NewVar("w", 0, 100) // separate component
	s.Assert(Eq(V(v), V(u)))
	s.Assert(Or(Le(V(u), C(0)), Ge(V(u), C(10))))

	for _, tc := range []struct {
		name string
		x    Var
		want bool
	}{{"u", u, true}, {"v", v, true}, {"w", w, false}} {
		if got := s.VarDisjunctionTainted(tc.x); got != tc.want {
			t.Errorf("VarDisjunctionTainted(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}

	// The taint is real: v's feasible set has a hole at (0, 10).
	if r := s.CheckWith(Eq(V(v), C(5))); r.Status != Unsat {
		t.Fatalf("v=5 should be infeasible, got %v", r.Status)
	}
	if r := s.CheckWith(Eq(V(v), C(0))); r.Status != Sat {
		t.Fatalf("v=0 should be feasible, got %v", r.Status)
	}
	if r := s.CheckWith(Eq(V(v), C(10))); r.Status != Sat {
		t.Fatalf("v=10 should be feasible, got %v", r.Status)
	}
}

// TestTaintClearsWhenDisjunctionDecided mirrors the decoding situation the
// fast path exploits: once an assertion pins the disjunction's condition,
// base simplification resolves it and the taint disappears.
func TestTaintClearsWhenDisjunctionDecided(t *testing.T) {
	s := NewSolver()
	cong := s.NewVar("cong", 0, 50)
	i0 := s.NewVar("i0", 0, 100)
	// cong > 0 -> i0 >= 30, in NNF disjunction form.
	s.Assert(Or(Le(V(cong), C(0)), Ge(V(i0), C(30))))

	if !s.VarDisjunctionTainted(i0) {
		t.Fatal("i0 should be tainted while the implication is undecided")
	}

	s.Push()
	s.Assert(Eq(V(cong), C(0))) // antecedent false: disjunction entailed
	if s.VarDisjunctionTainted(i0) {
		t.Error("i0 still tainted after the disjunction became entailed")
	}
	s.Pop()

	s.Push()
	s.Assert(Eq(V(cong), C(7))) // antecedent true: unit-propagates i0 >= 30
	if s.VarDisjunctionTainted(i0) {
		t.Error("i0 still tainted after unit propagation resolved the disjunction")
	}
	if lo, _, ok := s.BaseBounds(i0); !ok || lo != 30 {
		t.Errorf("unit-propagated bound lo = %d ok=%v, want 30 true", lo, ok)
	}
	s.Pop()
}

// TestBaseSimplifyEquivalence fuzzes random stacks and confirms that base
// disjunction simplification never changes any CheckWith outcome relative to
// a fresh solver given the same formulas in one shot.
func TestBaseSimplifyEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 150; iter++ {
		inc := NewSolver()
		nv := 2 + rng.Intn(3)
		vars := make([]Var, nv)
		for i := range vars {
			vars[i] = inc.NewVar("v", 0, int64(5+rng.Intn(20)))
		}
		var fs []Formula
		for i := 0; i < 1+rng.Intn(4); i++ {
			fs = append(fs, randomFuzzFormula(rng, vars))
		}
		for _, f := range fs {
			inc.Assert(f)
		}
		// Interleave probes so some base stores get built mid-stack.
		for p := 0; p < 3; p++ {
			q := Between(V(vars[rng.Intn(nv)]), int64(rng.Intn(10)), int64(10+rng.Intn(10)))
			ref := NewSolver()
			for i := range vars {
				lo, hi := inc.Bounds(vars[i])
				ref.NewVar("v", lo, hi)
			}
			for _, f := range fs {
				ref.Assert(f)
			}
			// The reference path: one monolithic check, no reused base.
			want := ref.CheckWith(q).Status
			got := inc.CheckWith(q).Status
			if got != want {
				t.Fatalf("iter %d probe %d: incremental %v, reference %v", iter, p, got, want)
			}
		}
	}
}

// randomFuzzFormula builds a small random formula over vars, biased toward
// the shapes rule compilation emits (conjunctions, implications-as-or).
func randomFuzzFormula(rng *rand.Rand, vars []Var) Formula {
	atom := func() Formula {
		a := V(vars[rng.Intn(len(vars))])
		var b LinExpr
		if rng.Intn(2) == 0 {
			b = C(int64(rng.Intn(25)))
		} else {
			b = V(vars[rng.Intn(len(vars))])
		}
		switch rng.Intn(4) {
		case 0:
			return Le(a, b)
		case 1:
			return Ge(a, b)
		case 2:
			return Eq(a, b)
		default:
			return Ne(a, b)
		}
	}
	switch rng.Intn(4) {
	case 0:
		return atom()
	case 1:
		return And(atom(), atom())
	case 2:
		return Or(atom(), atom())
	default:
		return Or(atom(), And(atom(), atom()))
	}
}
