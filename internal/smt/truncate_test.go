package smt

import "testing"

func TestTruncateToDiscardsSpeculativeAsserts(t *testing.T) {
	s := NewSolver()
	x := s.NewVar("x", 0, 100)
	s.Assert(Ge(V(x), C(10)))

	mark := s.AssertionMark()
	if mark != 1 {
		t.Fatalf("AssertionMark = %d, want 1", mark)
	}
	s.Assert(Eq(V(x), C(42)))
	s.Assert(Le(V(x), C(50)))
	if got := s.NumAssertions(); got != 3 {
		t.Fatalf("NumAssertions = %d after speculative asserts, want 3", got)
	}
	r := s.CheckWith(Eq(V(x), C(99)))
	if r.Status != Unsat {
		t.Fatalf("CheckWith(x=99) over speculative x=42 = %v, want unsat", r.Status)
	}

	before := s.Epoch()
	s.TruncateTo(mark)
	if got := s.NumAssertions(); got != 1 {
		t.Fatalf("NumAssertions = %d after TruncateTo, want 1", got)
	}
	if s.Epoch() == before {
		t.Error("TruncateTo did not advance the epoch")
	}
	r = s.CheckWith(Eq(V(x), C(99)))
	if r.Status != Sat {
		t.Fatalf("CheckWith(x=99) after TruncateTo = %v, want sat", r.Status)
	}
}

func TestTruncateToCurrentLengthIsNoOp(t *testing.T) {
	s := NewSolver()
	x := s.NewVar("x", 0, 10)
	s.Assert(Ge(V(x), C(1)))
	epoch := s.Epoch()
	s.TruncateTo(s.AssertionMark())
	if s.Epoch() != epoch {
		t.Error("no-op TruncateTo advanced the epoch")
	}
}

func TestTruncateToInterleavesWithFrames(t *testing.T) {
	s := NewSolver()
	x := s.NewVar("x", 0, 100)
	s.Assert(Ge(V(x), C(10))) // base, outside any frame

	s.Push()
	s.Assert(Le(V(x), C(90))) // frame-owned
	mark := s.AssertionMark()
	s.Assert(Eq(V(x), C(42))) // speculative, above the frame mark
	s.TruncateTo(mark)
	if got := s.NumAssertions(); got != 2 {
		t.Fatalf("NumAssertions = %d after truncate inside frame, want 2", got)
	}
	// Pop must still discard exactly the frame's assertion.
	s.Pop()
	if got := s.NumAssertions(); got != 1 {
		t.Fatalf("NumAssertions = %d after Pop, want 1", got)
	}
}

func TestTruncateToPanicsBelowOpenFrame(t *testing.T) {
	s := NewSolver()
	x := s.NewVar("x", 0, 100)
	s.Assert(Ge(V(x), C(10)))
	s.Push()
	s.Assert(Le(V(x), C(90)))
	for _, mark := range []int{0, -1, 99} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("TruncateTo(%d) did not panic", mark)
				}
			}()
			s.TruncateTo(mark)
		}()
	}
}

func TestTruncateReplayRestoresEpoch(t *testing.T) {
	s := NewSolver()
	x := s.NewVar("x", 0, 100)
	s.Assert(Ge(V(x), C(10)))
	mark := s.AssertionMark()
	e1 := s.Epoch()

	f2, f3 := Eq(V(x), C(42)), Le(V(x), C(50))
	s.Assert(f2)
	e2 := s.Epoch()
	s.Assert(f3)
	e3 := s.Epoch()

	s.TruncateTo(mark)
	if got := s.Epoch(); got != e1 {
		t.Fatalf("Epoch after TruncateTo = %d, want the prefix's old epoch %d", got, e1)
	}
	// Replaying the identical formulas walks back up the recorded epochs.
	s.Assert(Eq(V(x), C(42)))
	if got := s.Epoch(); got != e2 {
		t.Fatalf("Epoch after replaying assert = %d, want %d", got, e2)
	}
	s.Assert(Le(V(x), C(50)))
	if got := s.Epoch(); got != e3 {
		t.Fatalf("Epoch after full replay = %d, want %d", got, e3)
	}
	if r := s.CheckWith(Eq(V(x), C(99))); r.Status != Unsat {
		t.Fatalf("CheckWith(x=99) after replay = %v, want unsat", r.Status)
	}
}

func TestTruncateDivergentAssertGetsFreshEpoch(t *testing.T) {
	s := NewSolver()
	x := s.NewVar("x", 0, 100)
	s.Assert(Ge(V(x), C(10)))
	mark := s.AssertionMark()
	s.Assert(Eq(V(x), C(42)))
	e2 := s.Epoch()

	s.TruncateTo(mark)
	s.Assert(Eq(V(x), C(43))) // different formula at the same position
	if got := s.Epoch(); got == e2 {
		t.Fatal("divergent assert restored the old epoch; states differ")
	}
	if r := s.CheckWith(Eq(V(x), C(43))); r.Status != Sat {
		t.Fatalf("CheckWith(x=43) = %v, want sat", r.Status)
	}
	// The shadow is dropped on divergence: re-asserting the original
	// formula later must not resurrect the pre-divergence epoch.
	s.TruncateTo(mark)
	s.Assert(Eq(V(x), C(42)))
	if got := s.Epoch(); got == e2 {
		t.Fatal("epoch restored across a divergent overwrite")
	}
}

func TestTruncateReplayAfterNewVarReRecords(t *testing.T) {
	s := NewSolver()
	x := s.NewVar("x", 0, 100)
	s.Assert(Ge(V(x), C(10)))
	mark := s.AssertionMark()
	s.Assert(Eq(V(x), C(42)))
	e2 := s.Epoch()

	y := s.NewVar("y", 0, 5)
	s.Assert(Ge(V(y), C(1)))
	s.TruncateTo(mark + 1) // back to [x>=10, x=42], but y now exists
	eNew := s.Epoch()
	if eNew == e2 {
		t.Fatal("epoch restored across a NewVar; variable sets differ")
	}
	// The re-recorded epoch is stable on the next visit.
	s.TruncateTo(mark)
	s.Assert(Eq(V(x), C(42)))
	if got := s.Epoch(); got != eNew {
		t.Fatalf("revisit epoch = %d, want re-recorded %d", got, eNew)
	}
	if lo, hi, ok := s.BaseBounds(y); !ok || lo != 0 || hi != 5 {
		t.Fatalf("BaseBounds(y) = [%d,%d] ok=%v, want [0,5] true", lo, hi, ok)
	}
}

func TestTruncateReplayKeepsBaseWarm(t *testing.T) {
	s := NewSolver()
	x := s.NewVar("x", 0, 100)
	s.Assert(Ge(V(x), C(10)))
	mark := s.AssertionMark()
	s.Assert(Eq(V(x), C(42)))

	// Build bases at both heights once.
	if _, _, ok := s.BaseBounds(x); !ok {
		t.Fatal("full stack infeasible")
	}
	s.TruncateTo(mark)
	if _, _, ok := s.BaseBounds(x); !ok {
		t.Fatal("prefix infeasible")
	}
	s.Assert(Eq(V(x), C(42)))
	builds := s.Stats().BaseBuilds

	// Ping-pong between the two heights: every base is cached, so no
	// further builds happen.
	for i := 0; i < 5; i++ {
		s.TruncateTo(mark)
		if _, _, ok := s.BaseBounds(x); !ok {
			t.Fatal("prefix infeasible during ping-pong")
		}
		s.Assert(Eq(V(x), C(42)))
		if _, _, ok := s.BaseBounds(x); !ok {
			t.Fatal("full stack infeasible during ping-pong")
		}
	}
	if got := s.Stats().BaseBuilds; got != builds {
		t.Fatalf("BaseBuilds grew %d -> %d during truncate/replay ping-pong, want no growth", builds, got)
	}
}
