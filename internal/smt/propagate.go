package smt

// lincon is a normalized linear constraint used by the propagation engine:
//
//	Σ terms ≤ rhs        (eq == false)
//	Σ terms  = rhs        (eq == true)
//
// Strict inequalities over integers are tightened during normalization
// (e < 0 becomes e ≤ -1), and ≥ is negated into ≤, so only these two shapes
// remain. NE atoms are handled as disjunctions by the search, never here.
type lincon struct {
	terms []term
	rhs   int64
	eq    bool
}

// normalizeAtom converts an atom into zero or more linear constraints, or
// reports that it must be split as a disjunction (for NE), or that it is
// trivially decided (constant expressions).
//
// Return values: cons is the constraint (valid when kind == normCon);
// kind describes the outcome.
type normKind int

const (
	normCon   normKind = iota // a constraint to propagate
	normTrue                  // trivially satisfied
	normFalse                 // trivially unsatisfiable
	normSplit                 // NE: caller must branch on (< 0) ∨ (> 0)
)

func normalizeAtom(a Atom) (lincon, normKind) {
	e := a.Expr
	if e.IsConst() {
		sat := false
		switch a.Op {
		case OpLE:
			sat = e.k <= 0
		case OpLT:
			sat = e.k < 0
		case OpGE:
			sat = e.k >= 0
		case OpGT:
			sat = e.k > 0
		case OpEQ:
			sat = e.k == 0
		case OpNE:
			sat = e.k != 0
		}
		if sat {
			return lincon{}, normTrue
		}
		return lincon{}, normFalse
	}
	switch a.Op {
	case OpLE: // e ≤ 0  →  terms ≤ -k
		return reduceCon(lincon{terms: e.terms, rhs: -e.k}), normCon
	case OpLT: // e < 0  →  terms ≤ -k - 1
		return reduceCon(lincon{terms: e.terms, rhs: -e.k - 1}), normCon
	case OpGE: // e ≥ 0  →  -terms ≤ k
		return reduceCon(lincon{terms: negTerms(e.terms), rhs: e.k}), normCon
	case OpGT: // e > 0  →  -terms ≤ k - 1
		return reduceCon(lincon{terms: negTerms(e.terms), rhs: e.k - 1}), normCon
	case OpEQ:
		c := lincon{terms: e.terms, rhs: -e.k, eq: true}
		// Divisibility check: if gcd(coefs) does not divide rhs, the
		// equality has no integer solution.
		g := int64(0)
		for _, t := range c.terms {
			g = gcd64(g, abs64(t.C))
		}
		if g > 1 {
			if c.rhs%g != 0 {
				return lincon{}, normFalse
			}
			ts := make([]term, len(c.terms))
			for i, t := range c.terms {
				ts[i] = term{V: t.V, C: t.C / g}
			}
			c = lincon{terms: ts, rhs: c.rhs / g, eq: true}
		}
		return c, normCon
	case OpNE:
		return lincon{}, normSplit
	}
	panic("smt: bad atom op")
}

func negTerms(ts []term) []term {
	out := make([]term, len(ts))
	for i, t := range ts {
		out[i] = term{V: t.V, C: -t.C}
	}
	return out
}

// reduceCon divides an inequality through by the gcd of its coefficients,
// rounding the right-hand side down (sound and tightening for integers).
func reduceCon(c lincon) lincon {
	g := int64(0)
	for _, t := range c.terms {
		g = gcd64(g, abs64(t.C))
	}
	if g <= 1 {
		return c
	}
	ts := make([]term, len(c.terms))
	for i, t := range c.terms {
		ts[i] = term{V: t.V, C: t.C / g}
	}
	return lincon{terms: ts, rhs: floorDiv(c.rhs, g), eq: c.eq}
}

// propagate runs bounds-consistency propagation over cons until fixpoint.
// It returns false on conflict (some constraint unsatisfiable under the
// bounds, or a domain became empty). The count of individual bound
// tightenings is added to *tightenings when non-nil.
func propagate(d *domains, cons []lincon, tightenings *uint64) bool {
	for {
		changed := false
		for i := range cons {
			ok, ch := propagateOne(d, &cons[i], nil)
			if !ok {
				return false
			}
			if ch {
				changed = true
				if tightenings != nil {
					*tightenings++
				}
			}
		}
		if !changed {
			return true
		}
	}
}

// propagateOne applies one constraint to the domain store. For
// Σ c_i x_i ≤ rhs it derives, for each j:
//
//	c_j x_j ≤ rhs − Σ_{i≠j} min(c_i x_i)
//
// and tightens x_j accordingly; equalities propagate both directions.
// When changedVars is non-nil, every variable whose bound moves is appended
// to it (the worklist propagator uses this to wake watching constraints).
func propagateOne(d *domains, c *lincon, changedVars *[]Var) (ok, changed bool) {
	// minSum / maxSum of the left-hand side under current bounds.
	var minSum, maxSum int64
	for _, t := range c.terms {
		if t.C > 0 {
			minSum += t.C * d.lo[t.V]
			maxSum += t.C * d.hi[t.V]
		} else {
			minSum += t.C * d.hi[t.V]
			maxSum += t.C * d.lo[t.V]
		}
	}
	if minSum > c.rhs {
		return false, false
	}
	if c.eq && maxSum < c.rhs {
		return false, false
	}
	for _, t := range c.terms {
		// Contribution of t to minSum / maxSum.
		var tMin, tMax int64
		if t.C > 0 {
			tMin, tMax = t.C*d.lo[t.V], t.C*d.hi[t.V]
		} else {
			tMin, tMax = t.C*d.hi[t.V], t.C*d.lo[t.V]
		}
		// Upper side: c_j x_j ≤ rhs − (minSum − tMin)
		ub := c.rhs - (minSum - tMin)
		var ch, empty bool
		if t.C > 0 {
			ch, empty = d.tightenHi(t.V, floorDiv(ub, t.C))
		} else {
			ch, empty = d.tightenLo(t.V, ceilDiv(ub, t.C))
		}
		if empty {
			return false, false
		}
		if ch {
			if changedVars != nil {
				*changedVars = append(*changedVars, t.V)
			}
			changed = true
			// Recompute sums after a tightening so later terms use
			// fresh bounds.
			return propagateRestart(d, c, changedVars)
		}
		if c.eq {
			// Lower side: c_j x_j ≥ rhs − (maxSum − tMax)
			lb := c.rhs - (maxSum - tMax)
			if t.C > 0 {
				ch, empty = d.tightenLo(t.V, ceilDiv(lb, t.C))
			} else {
				ch, empty = d.tightenHi(t.V, floorDiv(lb, t.C))
			}
			if empty {
				return false, false
			}
			if ch {
				if changedVars != nil {
					*changedVars = append(*changedVars, t.V)
				}
				return propagateRestart(d, c, changedVars)
			}
		}
	}
	return true, changed
}

// propagateRestart re-runs propagateOne after a tightening; it reports
// changed=true unconditionally since a bound moved.
func propagateRestart(d *domains, c *lincon, changedVars *[]Var) (ok, changed bool) {
	ok, _ = propagateOne(d, c, changedVars)
	return ok, true
}

// conSatisfiedAtFixpoint reports whether the constraint is certainly
// satisfied when every variable is fixed (used as a final verification).
func conSatisfiedFixed(d *domains, c *lincon) bool {
	var sum int64
	for _, t := range c.terms {
		sum += t.C * d.lo[t.V]
	}
	if c.eq {
		return sum == c.rhs
	}
	return sum <= c.rhs
}
