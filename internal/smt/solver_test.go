package smt

import (
	"math/rand"
	"testing"
)

func TestCheckTrivial(t *testing.T) {
	s := NewSolver()
	if r := s.Check(); r.Status != Sat {
		t.Fatalf("empty solver: %v, want sat", r.Status)
	}
	s.Assert(False)
	if r := s.Check(); r.Status != Unsat {
		t.Fatalf("assert false: %v, want unsat", r.Status)
	}
}

func TestCheckSimpleBounds(t *testing.T) {
	s := NewSolver()
	x := s.NewVar("x", 0, 10)
	s.Assert(Ge(V(x), C(4)))
	s.Assert(Le(V(x), C(6)))
	r := s.Check()
	if r.Status != Sat {
		t.Fatalf("status %v, want sat", r.Status)
	}
	if v := r.Model[x]; v < 4 || v > 6 {
		t.Errorf("model x = %d, want in [4,6]", v)
	}
}

func TestCheckConflictingBounds(t *testing.T) {
	s := NewSolver()
	x := s.NewVar("x", 0, 10)
	s.Assert(Ge(V(x), C(7)))
	s.Assert(Le(V(x), C(3)))
	if r := s.Check(); r.Status != Unsat {
		t.Fatalf("status %v, want unsat", r.Status)
	}
}

func TestCheckSumEquality(t *testing.T) {
	// The paper's R2: Σ I_t = TotalIngress.
	s := NewSolver()
	var is []Var
	var sum LinExpr
	for i := 0; i < 5; i++ {
		v := s.NewVar("I", 0, 60)
		is = append(is, v)
		sum = sum.Add(V(v))
	}
	s.Assert(Eq(sum, C(100)))
	r := s.Check()
	if r.Status != Sat {
		t.Fatalf("status %v, want sat", r.Status)
	}
	var total int64
	for _, v := range is {
		total += r.Model[v]
	}
	if total != 100 {
		t.Errorf("model sum = %d, want 100", total)
	}
}

func TestCheckSumEqualityInfeasible(t *testing.T) {
	s := NewSolver()
	var sum LinExpr
	for i := 0; i < 5; i++ {
		sum = sum.Add(V(s.NewVar("I", 0, 10)))
	}
	s.Assert(Eq(sum, C(51))) // max possible is 50
	if r := s.Check(); r.Status != Unsat {
		t.Fatalf("status %v, want unsat", r.Status)
	}
}

func TestCheckImplication(t *testing.T) {
	// The paper's R3: Congestion > 0 ⟹ max_t I_t ≥ BW/2.
	const bw = 60
	s := NewSolver()
	cong := s.NewVar("Congestion", 0, 100)
	var is []Var
	for i := 0; i < 5; i++ {
		is = append(is, s.NewVar("I", 0, bw))
	}
	var burst []Formula
	for _, v := range is {
		burst = append(burst, Ge(V(v), C(bw/2)))
	}
	s.Assert(Implies(Gt(V(cong), C(0)), Or(burst...)))

	// With congestion forced positive and all I small: unsat.
	s.Push()
	s.Assert(Ge(V(cong), C(1)))
	for _, v := range is {
		s.Assert(Le(V(v), C(bw/2-1)))
	}
	if r := s.Check(); r.Status != Unsat {
		t.Fatalf("congested but no burst: %v, want unsat", r.Status)
	}
	s.Pop()

	// With congestion zero the implication is vacuous: sat.
	s.Push()
	s.Assert(Eq(V(cong), C(0)))
	for _, v := range is {
		s.Assert(Le(V(v), C(5)))
	}
	if r := s.Check(); r.Status != Sat {
		t.Fatalf("uncongested: %v, want sat", r.Status)
	}
	s.Pop()
}

func TestCheckNE(t *testing.T) {
	s := NewSolver()
	x := s.NewVar("x", 3, 3)
	s.Assert(Ne(V(x), C(3)))
	if r := s.Check(); r.Status != Unsat {
		t.Fatalf("x=3 && x!=3: %v, want unsat", r.Status)
	}

	s2 := NewSolver()
	y := s2.NewVar("y", 0, 1)
	s2.Assert(Ne(V(y), C(0)))
	r := s2.Check()
	if r.Status != Sat || r.Model[y] != 1 {
		t.Fatalf("y!=0 over [0,1]: %v model=%v, want sat y=1", r.Status, r.Model)
	}
}

func TestCheckEqualityDivisibility(t *testing.T) {
	s := NewSolver()
	x := s.NewVar("x", -100, 100)
	s.Assert(Eq(CV(2, x), C(7))) // 2x = 7 has no integer solution
	if r := s.Check(); r.Status != Unsat {
		t.Fatalf("2x=7: %v, want unsat", r.Status)
	}
}

func TestCheckMultipleEqualities(t *testing.T) {
	// x + y = 10, x - y = 4  →  x = 7, y = 3.
	s := NewSolver()
	x := s.NewVar("x", 0, 100)
	y := s.NewVar("y", 0, 100)
	s.Assert(Eq(V(x).Add(V(y)), C(10)))
	s.Assert(Eq(V(x).Sub(V(y)), C(4)))
	r := s.Check()
	if r.Status != Sat {
		t.Fatalf("status %v, want sat", r.Status)
	}
	if r.Model[x] != 7 || r.Model[y] != 3 {
		t.Errorf("model (%d,%d), want (7,3)", r.Model[x], r.Model[y])
	}
}

func TestPushPop(t *testing.T) {
	s := NewSolver()
	x := s.NewVar("x", 0, 10)
	s.Assert(Ge(V(x), C(2)))
	s.Push()
	s.Assert(Le(V(x), C(1)))
	if r := s.Check(); r.Status != Unsat {
		t.Fatal("pushed contradiction should be unsat")
	}
	s.Pop()
	if r := s.Check(); r.Status != Sat {
		t.Fatal("after pop should be sat again")
	}
	if n := s.NumAssertions(); n != 1 {
		t.Errorf("NumAssertions = %d, want 1", n)
	}
}

func TestPopWithoutPushPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Pop without Push should panic")
		}
	}()
	NewSolver().Pop()
}

func TestNewVarEmptyDomainPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewVar with lo>hi should panic")
		}
	}()
	NewSolver().NewVar("bad", 5, 4)
}

func TestCheckWithDoesNotMutate(t *testing.T) {
	s := NewSolver()
	x := s.NewVar("x", 0, 10)
	before := s.NumAssertions()
	s.CheckWith(Eq(V(x), C(5)))
	if s.NumAssertions() != before {
		t.Error("CheckWith must not change the assertion stack")
	}
	// And the extra constraint must actually apply.
	r := s.CheckWith(Eq(V(x), C(5)))
	if r.Status != Sat || r.Model[x] != 5 {
		t.Errorf("CheckWith(x=5): %v x=%d", r.Status, r.Model[x])
	}
}

func TestModelSatisfiesAllAssertions(t *testing.T) {
	s := NewSolver()
	x := s.NewVar("x", 0, 50)
	y := s.NewVar("y", 0, 50)
	z := s.NewVar("z", 0, 50)
	fs := []Formula{
		Eq(Sum(V(x), V(y), V(z)), C(60)),
		Implies(Gt(V(x), C(10)), Ge(V(y), C(20))),
		Or(Le(V(z), C(5)), Ge(V(z), C(45))),
		Ne(V(x), V(y)),
	}
	for _, f := range fs {
		s.Assert(f)
	}
	r := s.Check()
	if r.Status != Sat {
		t.Fatalf("status %v, want sat", r.Status)
	}
	for _, f := range fs {
		ok, err := EvalFormula(f, r.Model)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("model violates %s", FormulaString(f))
		}
	}
}

func TestBudgetReturnsUnknown(t *testing.T) {
	s := NewSolver()
	s.MaxNodes = 1
	var sum LinExpr
	for i := 0; i < 8; i++ {
		sum = sum.Add(V(s.NewVar("x", 0, 1000)))
	}
	s.Assert(Eq(sum, C(4001)))
	s.Assert(Ne(V(Var(0)), V(Var(1))))
	r := s.Check()
	if r.Status == Sat && r.Model == nil {
		t.Error("sat without model")
	}
	// With MaxNodes=1 this must not claim unsat incorrectly; Unknown or a
	// genuine quick answer are both acceptable, but a wrong Unsat is not.
	if r.Status == Unsat {
		// Verify by brute reasoning: 8 vars in [0,1000] summing to 4001
		// with x0 != x1 is clearly satisfiable.
		t.Error("budget-limited solver returned a wrong unsat")
	}
}

// TestRandomAgainstBruteForce cross-checks the solver against exhaustive
// enumeration on random small problems — the core soundness/completeness
// property test.
func TestRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const trials = 300
	for trial := 0; trial < trials; trial++ {
		nv := 2 + rng.Intn(2) // 2..3 vars
		dom := int64(3 + rng.Intn(3))
		s := NewSolver()
		vars := make([]Var, nv)
		for i := range vars {
			vars[i] = s.NewVar("v", 0, dom)
		}
		f := randFormula(rng, vars, 3)
		s.Assert(f)
		r := s.Check()

		want := bruteSat(f, vars, dom)
		switch r.Status {
		case Sat:
			if !want {
				t.Fatalf("trial %d: solver sat, brute unsat: %s", trial, FormulaString(f))
			}
			ok, err := EvalFormula(f, r.Model)
			if err != nil || !ok {
				t.Fatalf("trial %d: returned model violates formula %s (model %v)", trial, FormulaString(f), r.Model)
			}
		case Unsat:
			if want {
				t.Fatalf("trial %d: solver unsat, brute sat: %s", trial, FormulaString(f))
			}
		case Unknown:
			t.Fatalf("trial %d: unexpected unknown on tiny problem", trial)
		}
	}
}

// randFormula builds a random formula of bounded depth over the given vars.
func randFormula(rng *rand.Rand, vars []Var, depth int) Formula {
	if depth == 0 || rng.Intn(3) == 0 {
		// Random atom: c1*v1 + c2*v2 ⋈ k
		e := C(int64(rng.Intn(7) - 3))
		for _, v := range vars {
			if rng.Intn(2) == 0 {
				e = e.Add(CV(int64(rng.Intn(5)-2), v))
			}
		}
		ops := []func(a, b LinExpr) Formula{Le, Lt, Ge, Gt, Eq, Ne}
		return ops[rng.Intn(len(ops))](e, C(int64(rng.Intn(9)-2)))
	}
	a := randFormula(rng, vars, depth-1)
	b := randFormula(rng, vars, depth-1)
	switch rng.Intn(4) {
	case 0:
		return And(a, b)
	case 1:
		return Or(a, b)
	case 2:
		return Implies(a, b)
	default:
		return Not(a)
	}
}

// bruteSat exhaustively enumerates assignments over [0,dom]^n.
func bruteSat(f Formula, vars []Var, dom int64) bool {
	assign := make(map[Var]int64, len(vars))
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(vars) {
			ok, err := EvalFormula(f, assign)
			return err == nil && ok
		}
		for v := int64(0); v <= dom; v++ {
			assign[vars[i]] = v
			if rec(i + 1) {
				return true
			}
		}
		return false
	}
	return rec(0)
}

func TestStatsAccumulate(t *testing.T) {
	s := NewSolver()
	x := s.NewVar("x", 0, 100)
	s.Assert(Ge(V(x), C(10)))
	s.Check()
	s.Check()
	st := s.Stats()
	if st.Checks != 2 {
		t.Errorf("Checks = %d, want 2", st.Checks)
	}
	if st.Nodes == 0 {
		t.Error("Nodes should be nonzero after checks")
	}
}

func TestNegativeDomains(t *testing.T) {
	s := NewSolver()
	x := s.NewVar("x", -50, 50)
	y := s.NewVar("y", -50, 50)
	s.Assert(Eq(V(x).Add(V(y)), C(-30)))
	s.Assert(Le(V(x), C(-40)))
	r := s.Check()
	if r.Status != Sat {
		t.Fatalf("status %v, want sat", r.Status)
	}
	if r.Model[x]+r.Model[y] != -30 || r.Model[x] > -40 {
		t.Errorf("bad model %v", r.Model)
	}
}
