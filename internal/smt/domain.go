package smt

import "fmt"

// domains tracks the current lower and upper bound of every variable during
// search. Bounds are always finite (variables are declared with finite
// domains) and lo ≤ hi for every live variable; an empty domain is a
// conflict and is reported by the propagation engine rather than stored.
type domains struct {
	lo []int64
	hi []int64
}

func newDomains(lo, hi []int64) *domains {
	d := &domains{
		lo: append([]int64(nil), lo...),
		hi: append([]int64(nil), hi...),
	}
	return d
}

func (d *domains) clone() *domains {
	return &domains{
		lo: append([]int64(nil), d.lo...),
		hi: append([]int64(nil), d.hi...),
	}
}

func (d *domains) fixed(v Var) bool { return d.lo[v] == d.hi[v] }

// width returns the number of values in the domain of v.
func (d *domains) width(v Var) int64 { return d.hi[v] - d.lo[v] + 1 }

// tightenLo raises the lower bound of v to at least b. It reports whether the
// domain changed and whether it became empty.
func (d *domains) tightenLo(v Var, b int64) (changed, empty bool) {
	if b <= d.lo[v] {
		return false, false
	}
	d.lo[v] = b
	return true, b > d.hi[v]
}

// tightenHi lowers the upper bound of v to at most b.
func (d *domains) tightenHi(v Var, b int64) (changed, empty bool) {
	if b >= d.hi[v] {
		return false, false
	}
	d.hi[v] = b
	return true, b < d.lo[v]
}

// exprRange computes the interval [min, max] that e can take under the
// current bounds.
func (d *domains) exprRange(e LinExpr) (minV, maxV int64) {
	minV, maxV = e.k, e.k
	for _, t := range e.terms {
		if t.C > 0 {
			minV += t.C * d.lo[t.V]
			maxV += t.C * d.hi[t.V]
		} else {
			minV += t.C * d.hi[t.V]
			maxV += t.C * d.lo[t.V]
		}
	}
	return minV, maxV
}

// tri is a three-valued truth: entailed, refuted, or unknown under the
// current bounds.
type tri int

const (
	triUnknown tri = iota
	triTrue
	triFalse
)

// atomStatus evaluates an atom against the current bounds.
func (d *domains) atomStatus(a Atom) tri {
	minV, maxV := d.exprRange(a.Expr)
	switch a.Op {
	case OpLE:
		if maxV <= 0 {
			return triTrue
		}
		if minV > 0 {
			return triFalse
		}
	case OpLT:
		if maxV < 0 {
			return triTrue
		}
		if minV >= 0 {
			return triFalse
		}
	case OpGE:
		if minV >= 0 {
			return triTrue
		}
		if maxV < 0 {
			return triFalse
		}
	case OpGT:
		if minV > 0 {
			return triTrue
		}
		if maxV <= 0 {
			return triFalse
		}
	case OpEQ:
		if minV == 0 && maxV == 0 {
			return triTrue
		}
		if minV > 0 || maxV < 0 {
			return triFalse
		}
	case OpNE:
		if minV > 0 || maxV < 0 {
			return triTrue
		}
		if minV == 0 && maxV == 0 {
			return triFalse
		}
	}
	return triUnknown
}

// formulaStatus evaluates an NNF formula against the current bounds,
// returning triTrue only if every completion within the bounds satisfies it,
// and triFalse only if none does.
func (d *domains) formulaStatus(f Formula) tri {
	switch g := f.(type) {
	case boolF:
		if g.v {
			return triTrue
		}
		return triFalse
	case atomF:
		return d.atomStatus(g.a)
	case notF:
		switch d.formulaStatus(g.f) {
		case triTrue:
			return triFalse
		case triFalse:
			return triTrue
		}
		return triUnknown
	case andF:
		out := triTrue
		for _, sub := range g.fs {
			switch d.formulaStatus(sub) {
			case triFalse:
				return triFalse
			case triUnknown:
				out = triUnknown
			}
		}
		return out
	case orF:
		out := triFalse
		for _, sub := range g.fs {
			switch d.formulaStatus(sub) {
			case triTrue:
				return triTrue
			case triUnknown:
				out = triUnknown
			}
		}
		return out
	}
	panic(fmt.Sprintf("smt: unknown formula node %T", f))
}
