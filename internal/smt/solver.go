package smt

import (
	"errors"
	"fmt"
)

// Status is the outcome of a satisfiability check.
type Status int

const (
	// Unknown means the solver exhausted its search budget.
	Unknown Status = iota
	// Sat means a model was found.
	Sat
	// Unsat means no model exists.
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	}
	return "unknown"
}

// Result carries the outcome of Check: the status and, when Sat, a model
// assigning every declared variable a value within its bounds.
type Result struct {
	Status Status
	Model  map[Var]int64
}

// Stats counts solver work, cumulative over the solver's lifetime.
type Stats struct {
	Checks       uint64 // Check / CheckWith invocations
	Nodes        uint64 // search-tree nodes explored
	Propagations uint64 // individual bound tightenings
	Conflicts    uint64 // dead ends reached during search
	OptQueries   uint64 // Minimize/Maximize invocations
}

// ErrBudget is returned when the search exceeds its node budget.
var ErrBudget = errors.New("smt: search budget exhausted")

// Solver is an incremental SMT solver for QF-LIA over finite-domain integer
// variables. The zero value is not usable; create with NewSolver.
//
// Solver is not safe for concurrent use; create one per goroutine.
type Solver struct {
	names []string
	lo    []int64
	hi    []int64

	asserted []Formula
	frames   []int // assertion-stack frame marks for Push/Pop

	// MaxNodes bounds the search-tree size per Check; Check returns
	// Unknown when exceeded. The default is generous for LeJIT-scale
	// problems (tens of variables, hundreds of constraints).
	MaxNodes uint64

	stats Stats
}

// NewSolver returns an empty solver.
func NewSolver() *Solver {
	return &Solver{MaxNodes: 1 << 20}
}

// NewVar declares an integer variable with inclusive bounds [lo, hi].
// It panics if lo > hi: every variable must have a non-empty finite domain
// (see DESIGN.md §4 — bounded counters make the solver complete).
func (s *Solver) NewVar(name string, lo, hi int64) Var {
	if lo > hi {
		panic(fmt.Sprintf("smt: empty domain for %q: [%d,%d]", name, lo, hi))
	}
	v := Var(len(s.names))
	s.names = append(s.names, name)
	s.lo = append(s.lo, lo)
	s.hi = append(s.hi, hi)
	return v
}

// NumVars reports the number of declared variables.
func (s *Solver) NumVars() int { return len(s.names) }

// VarName returns the name v was declared with.
func (s *Solver) VarName(v Var) string { return s.names[v] }

// Bounds returns the declared domain of v.
func (s *Solver) Bounds(v Var) (lo, hi int64) { return s.lo[v], s.hi[v] }

// Assert adds f to the current assertion frame.
func (s *Solver) Assert(f Formula) {
	s.asserted = append(s.asserted, f)
}

// Push opens a new assertion frame.
func (s *Solver) Push() {
	s.frames = append(s.frames, len(s.asserted))
}

// Pop discards every assertion added since the matching Push.
// It panics if no frame is open.
func (s *Solver) Pop() {
	if len(s.frames) == 0 {
		panic("smt: Pop without Push")
	}
	mark := s.frames[len(s.frames)-1]
	s.frames = s.frames[:len(s.frames)-1]
	s.asserted = s.asserted[:mark]
}

// NumAssertions reports the number of currently active assertions.
func (s *Solver) NumAssertions() int { return len(s.asserted) }

// Stats returns a copy of the cumulative statistics.
func (s *Solver) Stats() Stats { return s.stats }

// Check decides satisfiability of the conjunction of all active assertions.
func (s *Solver) Check() Result {
	return s.CheckWith()
}

// CheckWith decides satisfiability of the active assertions conjoined with
// extra, without mutating the assertion stack.
func (s *Solver) CheckWith(extra ...Formula) Result {
	s.stats.Checks++
	st := &searchState{
		dom:   newDomains(s.lo, s.hi),
		solv:  s,
		limit: s.MaxNodes,
	}
	pending := make([]Formula, 0, len(s.asserted)+len(extra))
	for _, f := range s.asserted {
		pending = append(pending, nnf(f))
	}
	for _, f := range extra {
		pending = append(pending, nnf(f))
	}
	status, model := st.search(pending, nil, nil)
	return Result{Status: status, Model: model}
}

// searchState carries per-Check search bookkeeping shared across branches.
type searchState struct {
	dom   *domains
	solv  *Solver
	nodes uint64
	limit uint64
}

// search is the DPLL core. pending holds formulas not yet decomposed; cons
// holds normalized linear constraints already in the store; disj holds
// unresolved disjunctions. The domains in st.dom reflect the current branch.
// On Sat it returns a complete model.
func (st *searchState) search(pending []Formula, cons []lincon, disj []orF) (Status, map[Var]int64) {
	st.nodes++
	st.solv.stats.Nodes++
	if st.nodes > st.limit {
		return Unknown, nil
	}

	d := st.dom

	// Decompose pending formulas into constraints and disjunctions.
	for len(pending) > 0 {
		f := pending[len(pending)-1]
		pending = pending[:len(pending)-1]
		switch g := f.(type) {
		case boolF:
			if !g.v {
				st.solv.stats.Conflicts++
				return Unsat, nil
			}
		case atomF:
			c, kind := normalizeAtom(g.a)
			switch kind {
			case normTrue:
			case normFalse:
				st.solv.stats.Conflicts++
				return Unsat, nil
			case normCon:
				cons = append(cons, c)
			case normSplit:
				lt := atomF{Atom{Expr: g.a.Expr, Op: OpLT}}
				gt := atomF{Atom{Expr: g.a.Expr, Op: OpGT}}
				disj = append(disj, orF{fs: []Formula{lt, gt}})
			}
		case andF:
			pending = append(pending, g.fs...)
		case orF:
			disj = append(disj, g)
		case notF:
			// nnf leaves no notF nodes; defensive.
			pending = append(pending, nnf(g))
		}
	}

	// Propagate to fixpoint.
	if !propagate(d, cons, &st.solv.stats.Propagations) {
		st.solv.stats.Conflicts++
		return Unsat, nil
	}

	// Simplify disjunctions under the tightened bounds: drop entailed
	// ones, prune refuted disjuncts, unit-propagate single survivors.
	for {
		progressed := false
		kept := disj[:0:0] // fresh backing to avoid aliasing across branches
		for _, g := range disj {
			live := make([]Formula, 0, len(g.fs))
			entailed := false
			for _, alt := range g.fs {
				switch d.formulaStatus(alt) {
				case triTrue:
					entailed = true
				case triUnknown:
					live = append(live, alt)
				}
				if entailed {
					break
				}
			}
			if entailed {
				progressed = true
				continue
			}
			switch len(live) {
			case 0:
				st.solv.stats.Conflicts++
				return Unsat, nil
			case 1:
				// Unit: assert the sole survivor now.
				status, model := st.searchUnit(live[0], cons, append(kept, disj[indexAfter(disj, g):]...))
				return status, model
			default:
				if len(live) != len(g.fs) {
					progressed = true
				}
				kept = append(kept, orF{fs: live})
			}
		}
		disj = kept
		if !progressed {
			break
		}
	}

	// Decide: branch on a disjunction first (fewest alternatives first —
	// the most constrained choice point); otherwise split a domain.
	if len(disj) > 0 {
		pick := 0
		for i := 1; i < len(disj); i++ {
			if len(disj[i].fs) < len(disj[pick].fs) {
				pick = i
			}
		}
		g := disj[pick]
		rest := make([]orF, 0, len(disj)-1)
		rest = append(rest, disj[:pick]...)
		rest = append(rest, disj[pick+1:]...)
		for _, alt := range g.fs {
			saved := d.clone()
			status, model := st.search([]Formula{alt}, cloneCons(cons), cloneDisj(rest))
			if status == Sat || status == Unknown {
				return status, model
			}
			*st.dom = *saved
		}
		st.solv.stats.Conflicts++
		return Unsat, nil
	}

	// No disjunctions left. Find an unfixed variable appearing in some
	// constraint; if none, the store is bounds-consistent and every
	// constraint will be verified on the all-lower-bound assignment or
	// needs a split.
	v := pickBranchVar(d, cons)
	if v == InvalidVar {
		// All constrained variables fixed: verify and build the model.
		for i := range cons {
			if !conSatisfiedFixed(d, &cons[i]) {
				st.solv.stats.Conflicts++
				return Unsat, nil
			}
		}
		model := make(map[Var]int64, len(d.lo))
		for i := range d.lo {
			model[Var(i)] = d.lo[i]
		}
		return Sat, model
	}

	// Domain split: [lo, mid] then [mid+1, hi].
	lo, hi := d.lo[v], d.hi[v]
	mid := lo + (hi-lo)/2
	for _, half := range [2][2]int64{{lo, mid}, {mid + 1, hi}} {
		saved := d.clone()
		d.lo[v], d.hi[v] = half[0], half[1]
		status, model := st.search(nil, cloneCons(cons), nil)
		if status == Sat || status == Unknown {
			return status, model
		}
		*st.dom = *saved
	}
	st.solv.stats.Conflicts++
	return Unsat, nil
}

// searchUnit asserts a unit-propagated disjunct and continues.
func (st *searchState) searchUnit(f Formula, cons []lincon, disj []orF) (Status, map[Var]int64) {
	return st.search([]Formula{f}, cloneCons(cons), cloneDisj(disj))
}

// indexAfter finds g in disj (by slice position identity of fs) and returns
// the index after it; used to pass the remaining disjunctions onward when
// unit-propagating mid-scan.
func indexAfter(disj []orF, g orF) int {
	for i := range disj {
		if len(disj[i].fs) == len(g.fs) && (len(g.fs) == 0 || &disj[i].fs[0] == &g.fs[0]) {
			return i + 1
		}
	}
	return len(disj)
}

func cloneCons(cons []lincon) []lincon {
	return append([]lincon(nil), cons...)
}

func cloneDisj(disj []orF) []orF {
	return append([]orF(nil), disj...)
}

// pickBranchVar selects the unfixed constrained variable with the smallest
// domain (first-fail heuristic), or InvalidVar if all are fixed.
func pickBranchVar(d *domains, cons []lincon) Var {
	best := InvalidVar
	var bestW int64
	for i := range cons {
		for _, t := range cons[i].terms {
			if d.fixed(t.V) {
				continue
			}
			w := d.width(t.V)
			if best == InvalidVar || w < bestW {
				best, bestW = t.V, w
			}
		}
	}
	return best
}
