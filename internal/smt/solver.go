package smt

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Status is the outcome of a satisfiability check.
type Status int

const (
	// Unknown means the solver exhausted its search budget.
	Unknown Status = iota
	// Sat means a model was found.
	Sat
	// Unsat means no model exists.
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	}
	return "unknown"
}

// Result carries the outcome of Check: the status and, when Sat, a model
// assigning every declared variable a value within its bounds.
type Result struct {
	Status Status
	Model  map[Var]int64
	// Err explains an Unknown status: ErrBudget when the node/propagation
	// budget or the per-Check deadline ran out, the context's error when the
	// Check was abandoned via SetContext. nil for Sat and Unsat.
	Err error
}

// Stats counts solver work, cumulative over the solver's lifetime.
type Stats struct {
	Checks       uint64 // Check / CheckWith invocations
	Nodes        uint64 // search-tree nodes explored
	Propagations uint64 // individual bound tightenings
	Conflicts    uint64 // dead ends reached during search
	OptQueries   uint64 // Minimize/Maximize invocations
	BaseBuilds   uint64 // warm-start base stores built (≤ one per epoch)
	WarmStarts   uint64 // Checks served from a memoized base store
	BudgetStops  uint64 // Checks that returned Unknown (budget, deadline, or cancellation)
}

// ErrBudget is carried by an Unknown Result whose Check exceeded its node or
// propagation budget or its per-Check deadline (Solver.MaxNodes, MaxProps,
// Timeout). It is the signal a serving layer maps to "overloaded, retry"
// rather than "infeasible".
var ErrBudget = errors.New("smt: search budget exhausted")

// Solver is an incremental SMT solver for QF-LIA over finite-domain integer
// variables. The zero value is not usable; create with NewSolver.
//
// Solver is not safe for concurrent use; create one per goroutine.
type Solver struct {
	names []string
	lo    []int64
	hi    []int64

	asserted []Formula
	compiled []compiledAssert // parallel to asserted: lowered once at Assert
	frames   []int            // assertion-stack frame marks for Push/Pop

	// epoch identifies the solver's logical state: two moments with equal
	// epochs have identical declared variables and identical assertion
	// stacks. Anything memoized against an epoch (the warm-start base
	// stores below, callers' oracle caches) is valid exactly when the
	// epoch matches again. Fresh epochs come from epochSrc; returning to a
	// previous state — TruncateTo, or an Assert that replays the formula a
	// TruncateTo discarded — restores that state's old epoch, which is
	// what keeps the memos warm across speculative stack rewinds.
	epoch    uint64
	epochSrc uint64 // monotone source of never-reused fresh epoch values
	// gen guards epoch restoration: it advances when the variable set
	// changes (NewVar), so a recorded epoch is only restored if the
	// variables are still exactly those it was recorded under.
	gen    uint64
	epoch0 uint64 // epoch of the empty assertion stack, valid while gen0 == gen
	gen0   uint64
	// posEpoch[i] and posGen[i] record the epoch right after position i was
	// asserted (equivalently: the epoch of the stack prefix of length i+1)
	// and the variable generation it was recorded under. TruncateTo uses
	// them to restore the shortened stack's epoch, re-recording at the
	// current generation when the old one no longer applies.
	posEpoch []uint64
	posGen   []uint64
	// shadow retains the tail most recently discarded by TruncateTo,
	// starting at stack position shadowBase. An Assert that exactly matches
	// the next shadowed formula is an undo: it reuses the retained compiled
	// form and restores the retained epoch instead of recompiling and
	// invalidating every memo. The first mismatching Assert drops the
	// shadow. This is what makes a speculation journal replay (truncate to
	// a checkpoint, re-assert the same suffix) free for the base stores.
	shadow     []shadowEntry
	shadowBase int

	base *baseStore // memoized propagated store for the current epoch
	// baseCache keeps the last few built base stores keyed by epoch, so a
	// caller ping-ponging between stack heights (speculative validation
	// probing several checkpoints of one window) rebuilds each height's
	// base once instead of once per visit.
	baseCache map[uint64]*baseStore
	baseOrder []uint64

	// MaxNodes bounds the search-tree size per Check; Check returns
	// Unknown when exceeded. The default is generous for LeJIT-scale
	// problems (tens of variables, hundreds of constraints).
	MaxNodes uint64
	// MaxProps bounds the propagation steps (individual bound tightenings)
	// one Check may perform; 0 means unlimited. Together with MaxNodes it
	// forms the decision/propagation step budget: a pathological rule set
	// whose cost is propagation-heavy rather than branch-heavy still stops.
	MaxProps uint64
	// Timeout bounds one Check's wall-clock time; 0 means none. The clock is
	// polled every budgetPollMask+1 nodes, so very small timeouts resolve at
	// node granularity, not instantly.
	Timeout time.Duration

	// ctx, when set via SetContext, is polled during search: cancellation or
	// deadline expiry abandons the Check mid-search with the context's error.
	ctx context.Context

	stats Stats

	// Worklist-propagation scratch, reused across Checks.
	workQ   []int32
	inQ     []bool
	chgVars []Var
}

// compiledAssert is an asserted formula lowered once at Assert time: NNF
// applied, atoms normalized into linear constraints, disjunctions collected.
// unsat marks a formula with a trivially-false conjunct.
type compiledAssert struct {
	cons  []lincon
	disj  []orF
	unsat bool
}

// shadowEntry is one assertion retained across a TruncateTo for undo
// detection: the formula, its compiled form, and the epoch the stack had
// right after it was originally asserted.
type shadowEntry struct {
	f     Formula
	ca    compiledAssert
	epoch uint64
	gen   uint64
}

// compileAssert lowers f for the propagation engine. The decomposition
// mirrors the search's pending-formula loop, but runs once per Assert
// instead of once per Check.
func compileAssert(f Formula) compiledAssert {
	var ca compiledAssert
	pending := []Formula{nnf(f)}
	for len(pending) > 0 {
		g := pending[len(pending)-1]
		pending = pending[:len(pending)-1]
		switch h := g.(type) {
		case boolF:
			if !h.v {
				return compiledAssert{unsat: true}
			}
		case atomF:
			c, kind := normalizeAtom(h.a)
			switch kind {
			case normTrue:
			case normFalse:
				return compiledAssert{unsat: true}
			case normCon:
				ca.cons = append(ca.cons, c)
			case normSplit:
				lt := atomF{Atom{Expr: h.a.Expr, Op: OpLT}}
				gt := atomF{Atom{Expr: h.a.Expr, Op: OpGT}}
				ca.disj = append(ca.disj, orF{fs: []Formula{lt, gt}})
			}
		case andF:
			pending = append(pending, h.fs...)
		case orF:
			ca.disj = append(ca.disj, h)
		case notF:
			// nnf leaves no notF nodes; defensive.
			pending = append(pending, nnf(h))
		}
	}
	return ca
}

// baseStore memoizes the assertion-stack-dependent part of a Check: the
// union of all compiled assertions plus the root domains propagated once to
// fixpoint. CheckWith warm-starts every probe of the same epoch from here
// instead of recompiling and re-propagating the whole stack.
type baseStore struct {
	epoch    uint64
	conflict bool // the assertions alone are Unsat
	dom      *domains
	cons     []lincon
	disj     []orF
	// watch[v] lists the indices of cons containing variable v, so a probe
	// that tightens v wakes only the constraints that can react.
	watch [][]int32
	// disjTaint[v] marks variables connected to a live disjunction (nil when
	// no disjunction survived simplification); see interval.go.
	disjTaint []bool
}

// NewSolver returns an empty solver.
func NewSolver() *Solver {
	return &Solver{MaxNodes: 1 << 20}
}

// NewVar declares an integer variable with inclusive bounds [lo, hi].
// It panics if lo > hi: every variable must have a non-empty finite domain
// (see DESIGN.md §4 — bounded counters make the solver complete).
func (s *Solver) NewVar(name string, lo, hi int64) Var {
	if lo > hi {
		panic(fmt.Sprintf("smt: empty domain for %q: [%d,%d]", name, lo, hi))
	}
	v := Var(len(s.names))
	s.names = append(s.names, name)
	s.lo = append(s.lo, lo)
	s.hi = append(s.hi, hi)
	s.gen++
	s.bumpEpoch()
	return v
}

// bumpEpoch moves the solver to a fresh, never-before-issued epoch.
func (s *Solver) bumpEpoch() {
	s.epochSrc++
	s.epoch = s.epochSrc
}

// NumVars reports the number of declared variables.
func (s *Solver) NumVars() int { return len(s.names) }

// VarName returns the name v was declared with.
func (s *Solver) VarName(v Var) string { return s.names[v] }

// Bounds returns the declared domain of v.
func (s *Solver) Bounds(v Var) (lo, hi int64) { return s.lo[v], s.hi[v] }

// Assert adds f to the current assertion frame. The formula is compiled
// (NNF + atom normalization) once, here, not on every Check — and when f
// exactly replays the formula a TruncateTo discarded at this position, not
// even that: the retained compiled form is reused and the stack's previous
// epoch is restored, so every memo keyed on it becomes valid again.
func (s *Solver) Assert(f Formula) {
	pos := len(s.asserted)
	if i := pos - s.shadowBase; len(s.shadow) > 0 && i >= 0 && i < len(s.shadow) && formulaEqual(s.shadow[i].f, f) {
		se := &s.shadow[i]
		s.asserted = append(s.asserted, se.f)
		s.compiled = append(s.compiled, se.ca)
		if se.gen == s.gen {
			s.epoch = se.epoch
		} else {
			s.bumpEpoch()
			se.epoch, se.gen = s.epoch, s.gen
		}
		s.posEpoch = append(s.posEpoch, s.epoch)
		s.posGen = append(s.posGen, s.gen)
		return
	}
	if i := pos - s.shadowBase; len(s.shadow) > 0 && i >= 0 && i < len(s.shadow) {
		// Diverged from the retained tail: it can never match again.
		s.shadow, s.shadowBase = nil, 0
	}
	s.asserted = append(s.asserted, f)
	s.compiled = append(s.compiled, compileAssert(f))
	s.bumpEpoch()
	s.posEpoch = append(s.posEpoch, s.epoch)
	s.posGen = append(s.posGen, s.gen)
}

// Push opens a new assertion frame.
func (s *Solver) Push() {
	s.frames = append(s.frames, len(s.asserted))
}

// Pop discards every assertion added since the matching Push.
// It panics if no frame is open.
func (s *Solver) Pop() {
	if len(s.frames) == 0 {
		panic("smt: Pop without Push")
	}
	mark := s.frames[len(s.frames)-1]
	s.frames = s.frames[:len(s.frames)-1]
	s.asserted = s.asserted[:mark]
	s.compiled = s.compiled[:mark]
	s.posEpoch = s.posEpoch[:mark]
	s.posGen = s.posGen[:mark]
	s.shadow, s.shadowBase = nil, 0
	s.restorePrefixEpoch(mark)
}

// restorePrefixEpoch sets the epoch for the stack prefix of length mark:
// the recorded epoch when the variable set is unchanged since it was
// recorded, a fresh one (re-recorded for next time) otherwise.
func (s *Solver) restorePrefixEpoch(mark int) {
	if mark == 0 {
		if s.gen0 == s.gen {
			s.epoch = s.epoch0
		} else {
			s.bumpEpoch()
			s.epoch0, s.gen0 = s.epoch, s.gen
		}
		return
	}
	if s.posGen[mark-1] == s.gen {
		s.epoch = s.posEpoch[mark-1]
	} else {
		s.bumpEpoch()
		s.posEpoch[mark-1], s.posGen[mark-1] = s.epoch, s.gen
	}
}

// AssertionMark returns a cursor into the assertion stack for TruncateTo.
// Unlike Push, a mark is a plain integer with no frame bookkeeping: callers
// that interleave speculative Asserts with an enclosing Push/Pop frame can
// rewind to the mark any number of times without unbalancing the frames.
func (s *Solver) AssertionMark() int { return len(s.asserted) }

// TruncateTo discards every assertion added after the given AssertionMark.
// It panics if mark is out of range or would cut into an enclosing Push
// frame (Pop owns those assertions). Truncating to the current length is a
// no-op. The epoch returns to the value the shortened stack had before, and
// the discarded tail is retained: re-asserting the identical formulas walks
// back up through their old epochs (see Assert), so a speculative
// truncate-and-replay cycle leaves every epoch-keyed memo warm.
func (s *Solver) TruncateTo(mark int) {
	if mark < 0 || mark > len(s.asserted) {
		panic(fmt.Sprintf("smt: TruncateTo(%d) outside [0,%d]", mark, len(s.asserted)))
	}
	if n := len(s.frames); n > 0 && mark < s.frames[n-1] {
		panic(fmt.Sprintf("smt: TruncateTo(%d) below open frame at %d", mark, s.frames[n-1]))
	}
	top := len(s.asserted)
	if mark == top {
		return
	}
	// Retain [mark, top) for undo detection, then any previously retained
	// entries above top (the live stack up to top matched them, or the
	// shadow would already have been dropped).
	var above []shadowEntry
	if len(s.shadow) > 0 && s.shadowBase <= top {
		if off := top - s.shadowBase; off < len(s.shadow) {
			above = s.shadow[off:]
		}
	}
	ns := make([]shadowEntry, 0, (top-mark)+len(above))
	for i := mark; i < top; i++ {
		ns = append(ns, shadowEntry{f: s.asserted[i], ca: s.compiled[i], epoch: s.posEpoch[i], gen: s.posGen[i]})
	}
	ns = append(ns, above...)
	s.shadow, s.shadowBase = ns, mark
	s.asserted = s.asserted[:mark]
	s.compiled = s.compiled[:mark]
	s.posEpoch = s.posEpoch[:mark]
	s.posGen = s.posGen[:mark]
	s.restorePrefixEpoch(mark)
}

// SetContext attaches ctx to subsequent Checks: once it is cancelled or its
// deadline passes, an in-flight Check stops mid-search and returns Unknown
// with the context's error in Result.Err. Pass nil to detach. This is how a
// serving layer's per-request deadline interrupts solver work between — and
// within — token steps.
func (s *Solver) SetContext(ctx context.Context) { s.ctx = ctx }

// Epoch identifies the solver's logical state: equal epochs mean identical
// declared variables and identical assertion stacks. It changes on NewVar,
// Assert, Pop, and TruncateTo, and is stable across Check/CheckWith — but
// it is not monotone: an operation that returns the solver to a previous
// state (TruncateTo, or an Assert replaying a truncated formula) restores
// that state's epoch. Callers may key memoized query results by it (LeJIT's
// range-feasibility oracle cache does); restoration deliberately revalidates
// such memos.
func (s *Solver) Epoch() uint64 { return s.epoch }

// NumAssertions reports the number of currently active assertions.
func (s *Solver) NumAssertions() int { return len(s.asserted) }

// Stats returns a copy of the cumulative statistics.
func (s *Solver) Stats() Stats { return s.stats }

// Check decides satisfiability of the conjunction of all active assertions.
func (s *Solver) Check() Result {
	return s.CheckWith()
}

// CheckWith decides satisfiability of the active assertions conjoined with
// extra, without mutating the assertion stack. The assertions themselves are
// not reprocessed: the check warm-starts from the epoch's memoized base
// store and only compiles the extra formulas.
func (s *Solver) CheckWith(extra ...Formula) Result {
	s.stats.Checks++
	if s.ctx != nil {
		// A request already cancelled before this Check does no work at all.
		if err := s.ctx.Err(); err != nil {
			s.stats.BudgetStops++
			return Result{Status: Unknown, Err: err}
		}
	}
	if s.base != nil && s.base.epoch == s.epoch {
		s.stats.WarmStarts++
	}
	base := s.currentBase()
	if base.conflict {
		s.stats.Conflicts++
		return Result{Status: Unsat}
	}
	cons := capCons(base.cons)
	disj := capDisj(base.disj)
	for _, f := range extra {
		ca := compileAssert(f)
		if ca.unsat {
			s.stats.Conflicts++
			return Result{Status: Unsat}
		}
		cons = append(cons, ca.cons...)
		disj = append(disj, ca.disj...)
	}
	st := &searchState{
		dom:     base.dom.clone(),
		solv:    s,
		limit:   s.MaxNodes,
		propsIn: s.stats.Propagations,
	}
	if s.Timeout > 0 {
		st.deadline = time.Now().Add(s.Timeout)
	}
	// The base domains are at fixpoint with the base constraints, so only
	// the extras (and whatever they disturb) need propagating; the search's
	// own first full propagation pass is then redundant and skipped.
	st.watch = base.watch
	st.watchN = len(base.cons)
	if len(cons) > len(base.cons) {
		if !s.propagateWakeup(st.dom, cons, base.watch, len(base.cons), len(base.cons), nil) {
			s.stats.Conflicts++
			return Result{Status: Unsat}
		}
	}
	st.skipProp = true
	status, model := st.search(nil, cons, disj)
	res := Result{Status: status, Model: model}
	if status == Unknown {
		s.stats.BudgetStops++
		res.Err = st.stopErr
		if res.Err == nil {
			res.Err = ErrBudget
		}
	}
	return res
}

// currentBase returns the memoized base store for the current epoch,
// building it on the first use after a mutation. Propagating the asserted
// constraints here is sound for every subsequent probe: bounds propagation
// only removes values that no model of the assertions can take, and extra
// formulas only shrink the model set further. The same monotonicity argument
// covers the disjunction simplification (see interval.go).
func (s *Solver) currentBase() *baseStore {
	if s.base != nil && s.base.epoch == s.epoch {
		return s.base
	}
	if b, ok := s.baseCache[s.epoch]; ok {
		s.base = b
		return b
	}
	s.stats.BaseBuilds++
	b := &baseStore{epoch: s.epoch}
	var nc, nd int
	for i := range s.compiled {
		nc += len(s.compiled[i].cons)
		nd += len(s.compiled[i].disj)
	}
	b.cons = make([]lincon, 0, nc)
	b.disj = make([]orF, 0, nd)
	for i := range s.compiled {
		ca := &s.compiled[i]
		if ca.unsat {
			b.conflict = true
		}
		b.cons = append(b.cons, ca.cons...)
		b.disj = append(b.disj, ca.disj...)
	}
	b.dom = newDomains(s.lo, s.hi)
	if !b.conflict && !propagate(b.dom, b.cons, &s.stats.Propagations) {
		b.conflict = true
	}
	if !b.conflict {
		b.simplifyDisjunctions(s)
	}
	if !b.conflict {
		b.watch = make([][]int32, len(s.lo))
		for i := range b.cons {
			for _, t := range b.cons[i].terms {
				b.watch[t.V] = append(b.watch[t.V], int32(i))
			}
		}
		b.buildTaint(len(s.lo))
	}
	s.base = b
	// Built stores are immutable after this point (Check clones the
	// domains and cap-guards the slices), so keeping a few around keyed by
	// epoch is safe; restoration of an old epoch then reuses its store.
	const baseCacheCap = 8
	if s.baseCache == nil {
		s.baseCache = make(map[uint64]*baseStore, baseCacheCap)
	}
	if len(s.baseOrder) >= baseCacheCap {
		delete(s.baseCache, s.baseOrder[0])
		s.baseOrder = s.baseOrder[1:]
	}
	s.baseCache[b.epoch] = b
	s.baseOrder = append(s.baseOrder, b.epoch)
	return b
}

// propagateWakeup runs worklist propagation over cons, assuming d is already
// at fixpoint with respect to cons[:newFrom] except for variables listed in
// dirty (mutated directly by a domain split). Seeds are the new constraints
// cons[newFrom:] plus the watchers of every dirty variable. When a
// constraint tightens a variable, the constraints containing that variable
// are re-queued — via the epoch's watch index for cons[:watchN], by linear
// scan for the (few) constraints added during this Check's search. This
// makes the cost of a node proportional to the constraints it actually
// disturbs instead of the whole assertion stack.
func (s *Solver) propagateWakeup(d *domains, cons []lincon, watch [][]int32, watchN, newFrom int, dirty []Var) bool {
	if cap(s.inQ) < len(cons) {
		s.inQ = make([]bool, len(cons))
	}
	inQ := s.inQ[:len(cons)]
	clear(inQ)
	q := s.workQ[:0]
	enqueueVar := func(v Var) {
		for _, j := range watch[v] {
			if !inQ[j] {
				inQ[j] = true
				q = append(q, j)
			}
		}
		for j := watchN; j < len(cons); j++ {
			if inQ[j] {
				continue
			}
			for _, t := range cons[j].terms {
				if t.V == v {
					inQ[j] = true
					q = append(q, int32(j))
					break
				}
			}
		}
	}
	for _, v := range dirty {
		enqueueVar(v)
	}
	for i := newFrom; i < len(cons); i++ {
		if !inQ[i] {
			inQ[i] = true
			q = append(q, int32(i))
		}
	}
	chg := s.chgVars[:0]
	ok := true
	for head := 0; head < len(q); head++ {
		i := q[head]
		inQ[i] = false
		chg = chg[:0]
		okOne, _ := propagateOne(d, &cons[i], &chg)
		if !okOne {
			ok = false
			break
		}
		s.stats.Propagations += uint64(len(chg))
		for _, v := range chg {
			enqueueVar(v)
		}
	}
	s.workQ, s.chgVars = q[:0], chg[:0]
	return ok
}

// budgetPollMask gates the wall-clock and context polls to every 64th node:
// frequent enough that a stalled Check stops within microseconds of real
// work, rare enough that time.Now never shows up in profiles.
const budgetPollMask = 63

// searchState carries per-Check search bookkeeping shared across branches.
type searchState struct {
	dom   *domains
	solv  *Solver
	nodes uint64
	limit uint64
	// propsIn snapshots cumulative propagations at Check entry; deadline is
	// the per-Check wall-clock cutoff (zero = none). stopErr records why the
	// search gave up, reported as Result.Err alongside Unknown.
	propsIn  uint64
	deadline time.Time
	stopErr  error
	// watch is the epoch's var→constraint index covering cons[:watchN]
	// (the warm-started base); constraints beyond watchN were added during
	// this Check and are found by scan.
	watch  [][]int32
	watchN int
	// skipProp marks the domains already at fixpoint with the constraints
	// handed to the next search call (warm-started probes); consumed once.
	skipProp bool
	// dirtyVar is the variable a domain split just narrowed; the next
	// search call seeds propagation from its watchers. Consumed once.
	dirtyVar Var
	hasDirty bool
}

// overBudget reports why the search must stop, or nil to continue. Node and
// propagation budgets are exact; the deadline and the attached context are
// polled every budgetPollMask+1 nodes, starting at the first node so that an
// already-expired deadline stops even a short search.
func (st *searchState) overBudget() error {
	if st.nodes > st.limit {
		return ErrBudget
	}
	s := st.solv
	if s.MaxProps > 0 && s.stats.Propagations-st.propsIn > s.MaxProps {
		return ErrBudget
	}
	if st.nodes&budgetPollMask == 1 {
		if s.ctx != nil {
			if err := s.ctx.Err(); err != nil {
				return err
			}
		}
		if !st.deadline.IsZero() && time.Now().After(st.deadline) {
			return ErrBudget
		}
	}
	return nil
}

// search is the DPLL core. pending holds formulas not yet decomposed; cons
// holds normalized linear constraints already in the store; disj holds
// unresolved disjunctions. The domains in st.dom reflect the current branch.
// On Sat it returns a complete model.
func (st *searchState) search(pending []Formula, cons []lincon, disj []orF) (Status, map[Var]int64) {
	st.nodes++
	st.solv.stats.Nodes++
	if err := st.overBudget(); err != nil {
		st.stopErr = err
		return Unknown, nil
	}

	d := st.dom
	consIn := len(cons)

	// Decompose pending formulas into constraints and disjunctions.
	for len(pending) > 0 {
		f := pending[len(pending)-1]
		pending = pending[:len(pending)-1]
		switch g := f.(type) {
		case boolF:
			if !g.v {
				st.solv.stats.Conflicts++
				return Unsat, nil
			}
		case atomF:
			c, kind := normalizeAtom(g.a)
			switch kind {
			case normTrue:
			case normFalse:
				st.solv.stats.Conflicts++
				return Unsat, nil
			case normCon:
				cons = append(cons, c)
			case normSplit:
				lt := atomF{Atom{Expr: g.a.Expr, Op: OpLT}}
				gt := atomF{Atom{Expr: g.a.Expr, Op: OpGT}}
				disj = append(disj, orF{fs: []Formula{lt, gt}})
			}
		case andF:
			pending = append(pending, g.fs...)
		case orF:
			disj = append(disj, g)
		case notF:
			// nnf leaves no notF nodes; defensive.
			pending = append(pending, nnf(g))
		}
	}

	// Propagate to fixpoint (unless the caller already did). The incoming
	// domains are at fixpoint with the incoming constraints — the parent
	// node propagated before branching — so only the decomposed additions
	// and the split variable's watchers need waking.
	if st.skipProp {
		st.skipProp = false
	} else {
		var dirty []Var
		var dbuf [1]Var
		if st.hasDirty {
			dbuf[0] = st.dirtyVar
			dirty = dbuf[:]
			st.hasDirty = false
		}
		if len(cons) > consIn || dirty != nil {
			if !st.solv.propagateWakeup(d, cons, st.watch, st.watchN, consIn, dirty) {
				st.solv.stats.Conflicts++
				return Unsat, nil
			}
		}
	}

	// Simplify disjunctions under the tightened bounds: drop entailed
	// ones, prune refuted disjuncts, unit-propagate single survivors.
	for {
		progressed := false
		kept := disj[:0:0] // fresh backing to avoid aliasing across branches
		for _, g := range disj {
			live := make([]Formula, 0, len(g.fs))
			entailed := false
			for _, alt := range g.fs {
				switch d.formulaStatus(alt) {
				case triTrue:
					entailed = true
				case triUnknown:
					live = append(live, alt)
				}
				if entailed {
					break
				}
			}
			if entailed {
				progressed = true
				continue
			}
			switch len(live) {
			case 0:
				st.solv.stats.Conflicts++
				return Unsat, nil
			case 1:
				// Unit: assert the sole survivor now.
				status, model := st.searchUnit(live[0], cons, append(kept, disj[indexAfter(disj, g):]...))
				return status, model
			default:
				if len(live) != len(g.fs) {
					progressed = true
				}
				kept = append(kept, orF{fs: live})
			}
		}
		disj = kept
		if !progressed {
			break
		}
	}

	// Decide: branch on a disjunction first (fewest alternatives first —
	// the most constrained choice point); otherwise split a domain.
	if len(disj) > 0 {
		pick := 0
		for i := 1; i < len(disj); i++ {
			if len(disj[i].fs) < len(disj[pick].fs) {
				pick = i
			}
		}
		g := disj[pick]
		rest := make([]orF, 0, len(disj)-1)
		rest = append(rest, disj[:pick]...)
		rest = append(rest, disj[pick+1:]...)
		for _, alt := range g.fs {
			saved := d.clone()
			status, model := st.search([]Formula{alt}, capCons(cons), capDisj(rest))
			if status == Sat || status == Unknown {
				return status, model
			}
			*st.dom = *saved
		}
		st.solv.stats.Conflicts++
		return Unsat, nil
	}

	// No disjunctions left. Find an unfixed variable appearing in some
	// constraint; if none, the store is bounds-consistent and every
	// constraint will be verified on the all-lower-bound assignment or
	// needs a split.
	v := pickBranchVar(d, cons)
	if v == InvalidVar {
		// All constrained variables fixed: verify and build the model.
		for i := range cons {
			if !conSatisfiedFixed(d, &cons[i]) {
				st.solv.stats.Conflicts++
				return Unsat, nil
			}
		}
		model := make(map[Var]int64, len(d.lo))
		for i := range d.lo {
			model[Var(i)] = d.lo[i]
		}
		return Sat, model
	}

	// Domain split: [lo, mid] then [mid+1, hi].
	lo, hi := d.lo[v], d.hi[v]
	mid := lo + (hi-lo)/2
	for _, half := range [2][2]int64{{lo, mid}, {mid + 1, hi}} {
		saved := d.clone()
		d.lo[v], d.hi[v] = half[0], half[1]
		st.dirtyVar, st.hasDirty = v, true
		status, model := st.search(nil, capCons(cons), nil)
		if status == Sat || status == Unknown {
			return status, model
		}
		*st.dom = *saved
	}
	st.solv.stats.Conflicts++
	return Unsat, nil
}

// searchUnit asserts a unit-propagated disjunct and continues.
func (st *searchState) searchUnit(f Formula, cons []lincon, disj []orF) (Status, map[Var]int64) {
	return st.search([]Formula{f}, capCons(cons), capDisj(disj))
}

// indexAfter finds g in disj (by slice position identity of fs) and returns
// the index after it; used to pass the remaining disjunctions onward when
// unit-propagating mid-scan.
func indexAfter(disj []orF, g orF) int {
	for i := range disj {
		if len(disj[i].fs) == len(g.fs) && (len(g.fs) == 0 || &disj[i].fs[0] == &g.fs[0]) {
			return i + 1
		}
	}
	return len(disj)
}

// capCons and capDisj cap a slice's capacity at its length, so sibling
// branches that receive the same store share the parent's backing array
// read-only and reallocate only when they append (copy-on-write). Elements
// are never mutated in place during search, which makes the sharing safe —
// and it replaces a full store copy per branch with a three-word slice
// header.
func capCons(cons []lincon) []lincon { return cons[:len(cons):len(cons)] }

func capDisj(disj []orF) []orF { return disj[:len(disj):len(disj)] }

// pickBranchVar selects the unfixed constrained variable with the smallest
// domain (first-fail heuristic), or InvalidVar if all are fixed.
func pickBranchVar(d *domains, cons []lincon) Var {
	best := InvalidVar
	var bestW int64
	for i := range cons {
		for _, t := range cons[i].terms {
			if d.fixed(t.V) {
				continue
			}
			w := d.width(t.V)
			if best == InvalidVar || w < bestW {
				best, bestW = t.V, w
			}
		}
	}
	return best
}
