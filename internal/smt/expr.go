// Package smt implements a small, self-contained SMT solver for
// quantifier-free linear integer arithmetic (QF-LIA) over finite-domain
// variables, with boolean structure (and/or/not/implies).
//
// It is the symbolic-reasoning substrate of LeJIT: network rules compile to
// smt.Formula values, and the decoding engine queries the solver before every
// token to compute the set of values from which a rule-compliant completion
// still exists.
//
// The solver is sound and complete for bounded integer variables: it combines
// bounds-consistency propagation over linear constraints with DPLL-style
// search over disjunctions and domain splitting (branch and bound). All
// variables must be declared with finite bounds; this matches network
// telemetry, where every counter is non-negative and capped by a physical
// quantity such as link capacity or window volume.
package smt

import (
	"fmt"
	"sort"
	"strings"
)

// Var identifies an integer variable within a Solver. Vars are created with
// Solver.NewVar and are only meaningful for the solver that created them.
type Var int

// InvalidVar is the zero value sentinel for "no variable".
const InvalidVar Var = -1

// term is one coefficient*variable product inside a linear expression.
type term struct {
	V Var
	C int64
}

// LinExpr is a linear expression over integer variables:
//
//	Σ Coef_i · Var_i + Const
//
// LinExpr values are immutable once built; all combinators return fresh
// expressions. The zero value is the constant 0.
type LinExpr struct {
	terms []term // sorted by Var, no zero coefficients, no duplicates
	k     int64
}

// C returns the constant expression c.
func C(c int64) LinExpr { return LinExpr{k: c} }

// V returns the expression consisting of the single variable v.
func V(v Var) LinExpr { return LinExpr{terms: []term{{V: v, C: 1}}} }

// CV returns the expression c·v.
func CV(c int64, v Var) LinExpr {
	if c == 0 {
		return LinExpr{}
	}
	return LinExpr{terms: []term{{V: v, C: c}}}
}

// Const reports the constant part of the expression.
func (e LinExpr) Const() int64 { return e.k }

// IsConst reports whether the expression has no variable terms.
func (e LinExpr) IsConst() bool { return len(e.terms) == 0 }

// Vars returns the variables referenced by the expression, in ascending order.
func (e LinExpr) Vars() []Var {
	vs := make([]Var, len(e.terms))
	for i, t := range e.terms {
		vs[i] = t.V
	}
	return vs
}

// Coef returns the coefficient of v in e (0 if absent).
func (e LinExpr) Coef(v Var) int64 {
	for _, t := range e.terms {
		if t.V == v {
			return t.C
		}
	}
	return 0
}

// NumTerms returns the number of variable terms.
func (e LinExpr) NumTerms() int { return len(e.terms) }

// Add returns e + f.
func (e LinExpr) Add(f LinExpr) LinExpr {
	out := LinExpr{k: e.k + f.k}
	out.terms = mergeTerms(e.terms, f.terms)
	return out
}

// Sub returns e - f.
func (e LinExpr) Sub(f LinExpr) LinExpr { return e.Add(f.Scale(-1)) }

// AddConst returns e + c.
func (e LinExpr) AddConst(c int64) LinExpr {
	out := e
	out.terms = append([]term(nil), e.terms...)
	out.k += c
	return out
}

// Scale returns c·e.
func (e LinExpr) Scale(c int64) LinExpr {
	if c == 0 {
		return LinExpr{}
	}
	out := LinExpr{k: e.k * c, terms: make([]term, 0, len(e.terms))}
	for _, t := range e.terms {
		out.terms = append(out.terms, term{V: t.V, C: t.C * c})
	}
	return out
}

// Sum returns the sum of the given expressions.
func Sum(es ...LinExpr) LinExpr {
	var out LinExpr
	for _, e := range es {
		out = out.Add(e)
	}
	return out
}

// Eval evaluates the expression under a complete assignment. It returns an
// error if any referenced variable is missing from the assignment.
func (e LinExpr) Eval(assign map[Var]int64) (int64, error) {
	v := e.k
	for _, t := range e.terms {
		x, ok := assign[t.V]
		if !ok {
			return 0, fmt.Errorf("smt: variable %d unassigned in Eval", t.V)
		}
		v += t.C * x
	}
	return v, nil
}

// mergeTerms merges two sorted term slices, summing coefficients and dropping
// zeros.
func mergeTerms(a, b []term) []term {
	out := make([]term, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].V < b[j].V:
			out = append(out, a[i])
			i++
		case a[i].V > b[j].V:
			out = append(out, b[j])
			j++
		default:
			c := a[i].C + b[j].C
			if c != 0 {
				out = append(out, term{V: a[i].V, C: c})
			}
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// normTerms sorts and merges duplicate terms; used by builders that accept
// arbitrary term lists.
func normTerms(ts []term) []term {
	sort.Slice(ts, func(i, j int) bool { return ts[i].V < ts[j].V })
	out := ts[:0]
	for _, t := range ts {
		if t.C == 0 {
			continue
		}
		if n := len(out); n > 0 && out[n-1].V == t.V {
			out[n-1].C += t.C
			if out[n-1].C == 0 {
				out = out[:n-1]
			}
			continue
		}
		out = append(out, t)
	}
	return out
}

// FromTerms builds a linear expression from explicit (coef, var) pairs plus a
// constant. Duplicate variables are summed.
func FromTerms(k int64, pairs ...struct {
	C int64
	V Var
}) LinExpr {
	ts := make([]term, 0, len(pairs))
	for _, p := range pairs {
		ts = append(ts, term{V: p.V, C: p.C})
	}
	return LinExpr{terms: normTerms(ts), k: k}
}

// String renders the expression using solver-independent variable names x<i>.
func (e LinExpr) String() string {
	if len(e.terms) == 0 {
		return fmt.Sprintf("%d", e.k)
	}
	var b strings.Builder
	for i, t := range e.terms {
		c := t.C
		if i == 0 {
			if c == -1 {
				b.WriteString("-")
			} else if c != 1 {
				fmt.Fprintf(&b, "%d*", c)
			}
		} else {
			if c < 0 {
				b.WriteString(" - ")
				c = -c
			} else {
				b.WriteString(" + ")
			}
			if c != 1 {
				fmt.Fprintf(&b, "%d*", c)
			}
		}
		fmt.Fprintf(&b, "x%d", t.V)
	}
	if e.k > 0 {
		fmt.Fprintf(&b, " + %d", e.k)
	} else if e.k < 0 {
		fmt.Fprintf(&b, " - %d", -e.k)
	}
	return b.String()
}

// gcd64 returns the greatest common divisor of two non-negative int64s.
func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// abs64 returns |a|.
func abs64(a int64) int64 {
	if a < 0 {
		return -a
	}
	return a
}

// floorDiv returns ⌊a/b⌋ for b > 0.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// ceilDiv returns ⌈a/b⌉ for b > 0.
func ceilDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) == (b < 0) {
		q++
	}
	return q
}
