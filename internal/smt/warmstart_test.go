package smt

import (
	"math/rand"
	"testing"
)

// TestEpochAdvances pins the epoch contract: NewVar, Assert, and Pop each
// advance the epoch; Check and CheckWith never do. The oracle cache in
// internal/core keys on this, so a silent change here would make stale
// feasibility answers look fresh.
func TestEpochAdvances(t *testing.T) {
	s := NewSolver()
	e0 := s.Epoch()
	x := s.NewVar("x", 0, 10)
	if s.Epoch() == e0 {
		t.Error("NewVar did not advance the epoch")
	}
	e1 := s.Epoch()
	s.Assert(Ge(V(x), C(2)))
	if s.Epoch() == e1 {
		t.Error("Assert did not advance the epoch")
	}
	e2 := s.Epoch()
	s.Check()
	s.CheckWith(Le(V(x), C(8)))
	if s.Epoch() != e2 {
		t.Errorf("Check/CheckWith moved the epoch %d -> %d", e2, s.Epoch())
	}
	s.Push()
	s.Assert(Le(V(x), C(5)))
	e3 := s.Epoch()
	s.Pop()
	if s.Epoch() == e3 {
		t.Error("Pop did not advance the epoch")
	}
}

// TestWarmStartStats checks that the propagated base store is built once per
// epoch and reused by every subsequent check in that epoch.
func TestWarmStartStats(t *testing.T) {
	s := NewSolver()
	x := s.NewVar("x", 0, 100)
	y := s.NewVar("y", 0, 100)
	s.Assert(Eq(V(x).Add(V(y)), C(50)))

	for i := int64(0); i < 5; i++ {
		s.CheckWith(Ge(V(x), C(i*10)))
	}
	st := s.Stats()
	if st.BaseBuilds != 1 {
		t.Errorf("BaseBuilds = %d after 5 checks in one epoch, want 1", st.BaseBuilds)
	}
	if st.WarmStarts != 4 {
		t.Errorf("WarmStarts = %d, want 4", st.WarmStarts)
	}

	// A new assertion opens a new epoch: exactly one more build.
	s.Assert(Le(V(x), C(70)))
	s.Check()
	s.CheckWith(Ge(V(y), C(10)))
	st = s.Stats()
	if st.BaseBuilds != 2 {
		t.Errorf("BaseBuilds = %d after assert + 2 checks, want 2", st.BaseBuilds)
	}
	if st.WarmStarts != 5 {
		t.Errorf("WarmStarts = %d, want 5", st.WarmStarts)
	}
}

// TestWarmStartPopInvalidates makes sure Pop discards the memoized base:
// a check after Pop must not see constraints from the popped frame.
func TestWarmStartPopInvalidates(t *testing.T) {
	s := NewSolver()
	x := s.NewVar("x", 0, 10)
	s.Push()
	s.Assert(Ge(V(x), C(8)))
	if r := s.CheckWith(Le(V(x), C(3))); r.Status != Unsat {
		t.Fatalf("x>=8 && x<=3: status %v, want unsat", r.Status)
	}
	s.Pop()
	if r := s.CheckWith(Le(V(x), C(3))); r.Status != Sat {
		t.Fatalf("after Pop, x<=3: status %v, want sat", r.Status)
	}
}

// TestWarmStartEquivalence fuzzes the incremental path against brute force:
// one long-lived solver answering many CheckWith probes over a mutating
// assertion stack must agree with exhaustive enumeration every time.
func TestWarmStartEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const dom = 5
	for trial := 0; trial < 60; trial++ {
		s := NewSolver()
		vars := []Var{s.NewVar("a", 0, dom), s.NewVar("b", 0, dom)}
		var stack []Formula // mirrors the solver's assertion stack
		base := randFormula(rng, vars, 2)
		s.Assert(base)
		stack = append(stack, base)

		for step := 0; step < 8; step++ {
			switch rng.Intn(4) {
			case 0: // grow the stack
				f := randFormula(rng, vars, 1)
				s.Push()
				s.Assert(f)
				stack = append(stack, f)
			case 1: // shrink it, if we can
				if len(stack) > 1 {
					s.Pop()
					stack = stack[:len(stack)-1]
				}
			}
			probe := randFormula(rng, vars, 1)
			got := s.CheckWith(probe)
			want := bruteSat(And(append(append([]Formula{}, stack...), probe)...), vars, dom)
			switch got.Status {
			case Sat:
				if !want {
					t.Fatalf("trial %d step %d: solver sat, brute unsat", trial, step)
				}
			case Unsat:
				if want {
					t.Fatalf("trial %d step %d: solver unsat, brute sat", trial, step)
				}
			default:
				t.Fatalf("trial %d step %d: unexpected status %v", trial, step, got.Status)
			}
		}
	}
}
