package smt

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPushPopEquivalence: checking under Push(f); Check(); Pop() must agree
// with CheckWith(f), and the assertion stack must be fully restored — the
// incrementality contract the LeJIT engine relies on (one frame per record).
func TestPushPopEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		s := NewSolver()
		vars := []Var{s.NewVar("a", 0, 6), s.NewVar("b", 0, 6), s.NewVar("c", 0, 6)}
		base := randFormula(rng, vars, 2)
		extra := randFormula(rng, vars, 2)
		s.Assert(base)

		want := s.CheckWith(extra)

		s.Push()
		s.Assert(extra)
		got := s.Check()
		s.Pop()

		if got.Status != want.Status {
			t.Fatalf("trial %d: push/pop %v vs checkwith %v for %s + %s",
				trial, got.Status, want.Status, FormulaString(base), FormulaString(extra))
		}
		if s.NumAssertions() != 1 {
			t.Fatalf("trial %d: %d assertions after pop, want 1", trial, s.NumAssertions())
		}
		// And the popped frame must no longer constrain anything.
		after := s.Check()
		baseline := func() Status {
			s2 := NewSolver()
			for range vars {
				s2.NewVar("v", 0, 6)
			}
			s2.Assert(base)
			return s2.Check().Status
		}()
		if after.Status != baseline {
			t.Fatalf("trial %d: post-pop status %v, fresh-solver %v", trial, after.Status, baseline)
		}
	}
}

// TestNestedPushPop exercises multi-level frames.
func TestNestedPushPop(t *testing.T) {
	s := NewSolver()
	x := s.NewVar("x", 0, 100)
	s.Assert(Ge(V(x), C(10))) // level 0: x ≥ 10
	s.Push()
	s.Assert(Le(V(x), C(50))) // level 1: x ≤ 50
	s.Push()
	s.Assert(Eq(V(x), C(75))) // level 2: contradiction with level 1
	if r := s.Check(); r.Status != Unsat {
		t.Fatalf("level 2: %v, want unsat", r.Status)
	}
	s.Pop()
	r := s.Check()
	if r.Status != Sat || r.Model[x] < 10 || r.Model[x] > 50 {
		t.Fatalf("level 1: %v model %v", r.Status, r.Model)
	}
	s.Pop()
	r = s.Check()
	if r.Status != Sat || r.Model[x] < 10 {
		t.Fatalf("level 0: %v model %v", r.Status, r.Model)
	}
}

// TestMinimizeWithExtras: the extra formulas must scope only to the query.
func TestMinimizeWithExtras(t *testing.T) {
	s := NewSolver()
	x := s.NewVar("x", 0, 100)
	s.Assert(Ge(V(x), C(10)))
	v, st := s.Minimize(V(x), Ge(V(x), C(40)))
	if st != Sat || v != 40 {
		t.Errorf("constrained min = (%d,%v), want (40,sat)", v, st)
	}
	v, st = s.Minimize(V(x))
	if st != Sat || v != 10 {
		t.Errorf("unconstrained min = (%d,%v), want (10,sat): extras leaked", v, st)
	}
}

// TestSolverSequenceProperty drives a random interleaving of assert, push,
// pop, and check against a naive reference implementation of the assertion
// stack.
func TestSolverSequenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		s := NewSolver()
		vars := []Var{s.NewVar("a", 0, 5), s.NewVar("b", 0, 5)}
		type frame struct{ fs []Formula }
		ref := []frame{{}}
		for op := 0; op < 20; op++ {
			switch rng.Intn(4) {
			case 0: // assert
				f := randFormula(rng, vars, 2)
				s.Assert(f)
				ref[len(ref)-1].fs = append(ref[len(ref)-1].fs, f)
			case 1: // push
				s.Push()
				ref = append(ref, frame{})
			case 2: // pop
				if len(ref) > 1 {
					s.Pop()
					ref = ref[:len(ref)-1]
				}
			default: // check against brute force over all active formulas
				var active []Formula
				for _, fr := range ref {
					active = append(active, fr.fs...)
				}
				got := s.Check()
				want := bruteSat(And(active...), vars, 5)
				if (got.Status == Sat) != want {
					t.Fatalf("trial %d op %d: solver %v, brute sat=%v", trial, op, got.Status, want)
				}
			}
		}
	}
}

// TestVarBoundsRespectedInModels: models never step outside declared
// domains, even for unconstrained variables.
func TestVarBoundsRespectedInModels(t *testing.T) {
	f := func(lo8 int8, span uint8) bool {
		lo := int64(lo8)
		hi := lo + int64(span%50)
		s := NewSolver()
		v := s.NewVar("v", lo, hi)
		u := s.NewVar("unconstrained", lo, hi)
		s.Assert(Ge(V(v), C(lo))) // trivially true, forces v into the store
		r := s.Check()
		if r.Status != Sat {
			return false
		}
		return r.Model[v] >= lo && r.Model[v] <= hi && r.Model[u] >= lo && r.Model[u] <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestFeasibleRangeEndpointsAttainable: min and max returned by
// FeasibleRange are themselves feasible values (the transition system's
// correctness depends on exact endpoints).
func TestFeasibleRangeEndpointsAttainable(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 60; trial++ {
		s := NewSolver()
		vars := []Var{s.NewVar("a", 0, 8), s.NewVar("b", 0, 8)}
		f := randFormula(rng, vars, 2)
		s.Assert(f)
		lo, hi, st := s.FeasibleRange(V(vars[0]))
		if st != Sat {
			continue
		}
		for _, v := range []int64{lo, hi} {
			r := s.CheckWith(Eq(V(vars[0]), C(v)))
			if r.Status != Sat {
				t.Fatalf("trial %d: endpoint %d of [%d,%d] not attainable for %s",
					trial, v, lo, hi, FormulaString(f))
			}
		}
		if lo > hi {
			t.Fatalf("trial %d: inverted range [%d,%d]", trial, lo, hi)
		}
	}
}
