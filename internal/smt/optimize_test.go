package smt

import (
	"math/rand"
	"testing"
)

func TestMinimizeMaximizeSimple(t *testing.T) {
	s := NewSolver()
	x := s.NewVar("x", 0, 100)
	s.Assert(Ge(V(x), C(17)))
	s.Assert(Le(V(x), C(64)))
	if v, st := s.Minimize(V(x)); st != Sat || v != 17 {
		t.Errorf("Minimize = (%d,%v), want (17,sat)", v, st)
	}
	if v, st := s.Maximize(V(x)); st != Sat || v != 64 {
		t.Errorf("Maximize = (%d,%v), want (64,sat)", v, st)
	}
}

func TestMinimizeUnsat(t *testing.T) {
	s := NewSolver()
	x := s.NewVar("x", 0, 10)
	s.Assert(Gt(V(x), C(20)))
	if _, st := s.Minimize(V(x)); st != Unsat {
		t.Errorf("status %v, want unsat", st)
	}
}

func TestFeasibleRangeWithSuffixLookahead(t *testing.T) {
	// LeJIT's core query: after fixing I0..I2, what range can I3 take such
	// that SOME I4 still completes Σ I = 100 with 0 ≤ I_t ≤ 60?
	// Fixed prefix: I0=20, I1=15, I2=25 → I3 + I4 = 40, I4 ∈ [0,60]
	// → I3 ∈ [0, 40]  (paper Fig 1b step ②: 39 is valid, 70 is not).
	s := NewSolver()
	var is []Var
	var sum LinExpr
	for i := 0; i < 5; i++ {
		v := s.NewVar("I", 0, 60)
		is = append(is, v)
		sum = sum.Add(V(v))
	}
	s.Assert(Eq(sum, C(100)))
	s.Assert(Eq(V(is[0]), C(20)))
	s.Assert(Eq(V(is[1]), C(15)))
	s.Assert(Eq(V(is[2]), C(25)))

	lo, hi, st := s.FeasibleRange(V(is[3]))
	if st != Sat {
		t.Fatalf("status %v, want sat", st)
	}
	if lo != 0 || hi != 40 {
		t.Errorf("I3 range [%d,%d], want [0,40]", lo, hi)
	}
}

func TestFeasibleRangeWithImplicationActive(t *testing.T) {
	// Same as above but with the paper's R3 active (Congestion > 0, no
	// burst generated yet): when choosing I3, either I3 itself bursts
	// (≥ 30) or I4 must. I4 = 40 - I3 ≥ 30 → I3 ≤ 10. So the feasible
	// set for I3 is [0,10] ∪ [30,40] — a hole! Min/max see [0,40].
	const bw = 60
	s := NewSolver()
	var is []Var
	var sum LinExpr
	for i := 0; i < 5; i++ {
		v := s.NewVar("I", 0, bw)
		is = append(is, v)
		sum = sum.Add(V(v))
	}
	cong := s.NewVar("Congestion", 0, 100)
	s.Assert(Eq(sum, C(100)))
	var burst []Formula
	for _, v := range is {
		burst = append(burst, Ge(V(v), C(bw/2)))
	}
	s.Assert(Implies(Gt(V(cong), C(0)), Or(burst...)))
	s.Assert(Eq(V(cong), C(8)))
	s.Assert(Eq(V(is[0]), C(20)))
	s.Assert(Eq(V(is[1]), C(15)))
	s.Assert(Eq(V(is[2]), C(25)))

	lo, hi, st := s.FeasibleRange(V(is[3]))
	if st != Sat {
		t.Fatalf("status %v, want sat", st)
	}
	if lo != 0 || hi != 40 {
		t.Errorf("I3 hull [%d,%d], want [0,40]", lo, hi)
	}
	// The hole: I3 in [11,29] must be infeasible.
	for _, bad := range []int64{11, 20, 29} {
		r := s.CheckWith(Eq(V(is[3]), C(bad)))
		if r.Status != Unsat {
			t.Errorf("I3=%d should be infeasible (hole), got %v", bad, r.Status)
		}
	}
	for _, good := range []int64{0, 10, 30, 40} {
		r := s.CheckWith(Eq(V(is[3]), C(good)))
		if r.Status != Sat {
			t.Errorf("I3=%d should be feasible, got %v", good, r.Status)
		}
	}
}

func TestMinimizeObjectiveExpression(t *testing.T) {
	// Minimize x + 2y subject to x + y ≥ 10.
	s := NewSolver()
	x := s.NewVar("x", 0, 100)
	y := s.NewVar("y", 0, 100)
	s.Assert(Ge(V(x).Add(V(y)), C(10)))
	v, st := s.Minimize(Sum(V(x), CV(2, y)))
	if st != Sat || v != 10 { // x=10, y=0
		t.Errorf("Minimize = (%d,%v), want (10,sat)", v, st)
	}
}

func TestMinimizeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		dom := int64(4)
		s := NewSolver()
		vars := []Var{s.NewVar("a", 0, dom), s.NewVar("b", 0, dom)}
		f := randFormula(rng, vars, 2)
		s.Assert(f)
		obj := Sum(CV(int64(rng.Intn(5)-2), vars[0]), CV(int64(rng.Intn(5)-2), vars[1]))

		got, st := s.Minimize(obj)
		want, found := bruteMin(f, obj, vars, dom)
		if !found {
			if st != Unsat {
				t.Fatalf("trial %d: want unsat, got %v", trial, st)
			}
			continue
		}
		if st != Sat || got != want {
			t.Fatalf("trial %d: Minimize=(%d,%v), brute=%d for %s", trial, got, st, want, FormulaString(f))
		}
	}
}

func bruteMin(f Formula, obj LinExpr, vars []Var, dom int64) (int64, bool) {
	best := int64(0)
	found := false
	assign := make(map[Var]int64)
	var rec func(i int)
	rec = func(i int) {
		if i == len(vars) {
			ok, err := EvalFormula(f, assign)
			if err != nil || !ok {
				return
			}
			v, err := obj.Eval(assign)
			if err != nil {
				return
			}
			if !found || v < best {
				best, found = v, true
			}
			return
		}
		for v := int64(0); v <= dom; v++ {
			assign[vars[i]] = v
			rec(i + 1)
		}
	}
	rec(0)
	return best, found
}
