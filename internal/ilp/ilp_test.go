package ilp

import (
	"math/rand"
	"testing"

	"repro/internal/smt"
)

func TestRepairAlreadyFeasible(t *testing.T) {
	s := smt.NewSolver()
	x := s.NewVar("x", 0, 10)
	s.Assert(smt.Ge(smt.V(x), smt.C(2)))
	got, st := Repair(s, []smt.Var{x}, []int64{5})
	if st != smt.Sat || got[x] != 5 {
		t.Errorf("Repair = %v (%v), want x=5", got, st)
	}
}

func TestRepairProjectsToNearest(t *testing.T) {
	// The paper's Fig 1a: model output [20,15,25,70,8] violates
	// I3 ≤ 60 and Σ I = 100; the L1-minimal repair moves as little volume
	// as possible.
	s := smt.NewSolver()
	var vars []smt.Var
	var sum smt.LinExpr
	for i := 0; i < 5; i++ {
		v := s.NewVar("I", 0, 60)
		vars = append(vars, v)
		sum = sum.Add(smt.V(v))
	}
	s.Assert(smt.Eq(sum, smt.C(100)))
	targets := []int64{20, 15, 25, 70, 8}
	got, st := Repair(s, vars, targets)
	if st != smt.Sat {
		t.Fatalf("status %v", st)
	}
	var total int64
	for _, v := range vars {
		total += got[v]
	}
	if total != 100 {
		t.Errorf("repaired sum = %d", total)
	}
	// Optimal distance: clamping I3 to 60 costs 10, then the remaining
	// excess (sum 128 vs 100) must shed 28 more: total ≥ 38.
	if d := Distance(got, vars, targets); d != 38 {
		t.Errorf("repair distance = %d, want 38", d)
	}
}

func TestRepairInfeasible(t *testing.T) {
	s := smt.NewSolver()
	x := s.NewVar("x", 0, 10)
	s.Assert(smt.Ge(smt.V(x), smt.C(20)))
	if _, st := Repair(s, []smt.Var{x}, []int64{5}); st != smt.Unsat {
		t.Errorf("status %v, want unsat", st)
	}
}

func TestRepairEmptyVars(t *testing.T) {
	s := smt.NewSolver()
	got, st := Repair(s, nil, nil)
	if st != smt.Sat || len(got) != 0 {
		t.Errorf("empty repair: %v (%v)", got, st)
	}
}

func TestRepairLeavesAssertionsIntact(t *testing.T) {
	s := smt.NewSolver()
	x := s.NewVar("x", 0, 10)
	s.Assert(smt.Ge(smt.V(x), smt.C(2)))
	before := s.NumAssertions()
	Repair(s, []smt.Var{x}, []int64{0})
	if s.NumAssertions() != before {
		t.Error("Repair must not leave assertions behind")
	}
}

func TestRepairMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		s := smt.NewSolver()
		a := s.NewVar("a", 0, 8)
		b := s.NewVar("b", 0, 8)
		k := int64(rng.Intn(12))
		s.Assert(smt.Ge(smt.V(a).Add(smt.V(b)), smt.C(k)))
		s.Assert(smt.Ne(smt.V(a), smt.V(b)))
		targets := []int64{int64(rng.Intn(9)), int64(rng.Intn(9))}

		got, st := Repair(s, []smt.Var{a, b}, targets)
		// Brute force.
		best := int64(1 << 30)
		for av := int64(0); av <= 8; av++ {
			for bv := int64(0); bv <= 8; bv++ {
				if av+bv >= k && av != bv {
					d := absI(av-targets[0]) + absI(bv-targets[1])
					if d < best {
						best = d
					}
				}
			}
		}
		if st != smt.Sat {
			t.Fatalf("trial %d: status %v", trial, st)
		}
		if d := Distance(got, []smt.Var{a, b}, targets); d != best {
			t.Errorf("trial %d: distance %d, brute %d", trial, d, best)
		}
	}
}

func absI(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
