// Package ilp implements L1-minimal integer repair on top of the SMT solver:
// given a constraint store and a target point (a model's raw output), find
// the feasible point minimizing Σ|xᵢ − targetᵢ|.
//
// This is the post-inference enforcement strategy of the paper's §2.2: it is
// what Zoom2Net's Constraint Enforcement Module does (an ILP projection), and
// what a generic "SMT repair" baseline does. The paper's critique — that the
// projection optimizes numerical distance, not semantic likelihood, and so
// hurts statistical fidelity — is exactly what the Fig 4/5 experiments
// measure against this implementation.
package ilp

import (
	"fmt"

	"repro/internal/smt"
)

// Repair finds an assignment to vars that satisfies every assertion active
// on s and minimizes the L1 distance Σ|vars[i] − targets[i]|. It returns the
// assignment restricted to vars.
//
// The search grows the distance budget exponentially from zero (probes with
// a small budget propagate hard: every variable is pinned to a narrow band
// around its target) and then binary-searches between the last refuted and
// first satisfied budget. If the solver's node budget runs out mid-search,
// Repair returns the best incumbent found so far — compliant but possibly
// not L1-optimal — which mirrors the time-limited ILP of real CEM-style
// systems. Only when no compliant point is found at all does it return a
// non-Sat status.
//
// Repair adds auxiliary deviation variables to s (they remain declared
// afterwards — solvers are cheap, use a fresh one per repair if that
// matters) but leaves the assertion stack unchanged.
func Repair(s *smt.Solver, vars []smt.Var, targets []int64) (map[smt.Var]int64, smt.Status) {
	if len(vars) != len(targets) {
		panic(fmt.Sprintf("ilp: %d vars, %d targets", len(vars), len(targets)))
	}
	if len(vars) == 0 {
		r := s.Check()
		return map[smt.Var]int64{}, r.Status
	}

	// Deviation encoding: dᵢ ≥ xᵢ − tᵢ and dᵢ ≥ tᵢ − xᵢ, objective Σ dᵢ.
	var side []smt.Formula
	var obj smt.LinExpr
	var maxObj int64
	for i, v := range vars {
		lo, hi := s.Bounds(v)
		t := targets[i]
		maxDev := hi - t
		if d := t - lo; d > maxDev {
			maxDev = d
		}
		if maxDev < 0 {
			maxDev = 0
		}
		maxObj += maxDev
		d := s.NewVar(fmt.Sprintf("dev(%s)", s.VarName(v)), 0, maxDev)
		side = append(side,
			smt.Ge(smt.V(d), smt.V(v).AddConst(-t)),
			smt.Ge(smt.V(d), smt.V(v).Scale(-1).AddConst(t)),
		)
		obj = obj.Add(smt.V(d))
	}

	probe := func(bound int64) smt.Result {
		extra := append(append([]smt.Formula(nil), side...), smt.Le(obj, smt.C(bound)))
		return s.CheckWith(extra...)
	}
	extract := func(model map[smt.Var]int64) map[smt.Var]int64 {
		out := make(map[smt.Var]int64, len(vars))
		for _, v := range vars {
			out[v] = model[v]
		}
		return out
	}
	objOf := func(model map[smt.Var]int64) int64 {
		var d int64
		for i, v := range vars {
			diff := model[v] - targets[i]
			if diff < 0 {
				diff = -diff
			}
			d += diff
		}
		return d
	}

	// Exponential ascent: find the first satisfiable distance budget.
	var best map[smt.Var]int64
	lo, bound := int64(0), int64(0)
	var hi int64
	for {
		r := probe(bound)
		switch r.Status {
		case smt.Sat:
			best = r.Model
			hi = objOf(r.Model)
		case smt.Unsat:
			lo = bound + 1
			if bound == 0 {
				bound = 1
			} else {
				bound *= 2
			}
			if bound > maxObj {
				bound = maxObj
			}
			if lo > maxObj {
				return nil, smt.Unsat
			}
			continue
		default:
			// Budget exhausted proving a tight bound; fall back to an
			// unconstrained compliance check for an incumbent.
			r2 := s.CheckWith(side...)
			if r2.Status != smt.Sat {
				return nil, r2.Status
			}
			return extract(r2.Model), smt.Sat
		}
		break
	}

	// Binary descent between the last refuted budget and the incumbent.
	for lo < hi {
		mid := lo + (hi-lo)/2
		r := probe(mid)
		switch r.Status {
		case smt.Sat:
			best = r.Model
			if v := objOf(r.Model); v < hi {
				hi = v
			} else {
				hi = mid
			}
		case smt.Unsat:
			lo = mid + 1
		default:
			// Out of budget: keep the incumbent.
			return extract(best), smt.Sat
		}
	}
	return extract(best), smt.Sat
}

// Distance computes the L1 distance between an assignment and targets.
func Distance(assign map[smt.Var]int64, vars []smt.Var, targets []int64) int64 {
	var d int64
	for i, v := range vars {
		diff := assign[v] - targets[i]
		if diff < 0 {
			diff = -diff
		}
		d += diff
	}
	return d
}
