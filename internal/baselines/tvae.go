package baselines

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/rules"
)

// TVAE is the variational-autoencoder tabular baseline (Xu et al., NeurIPS
// '19, substituted per DESIGN.md): a linear VAE with a Gaussian latent —
// equivalent to probabilistic PCA. Fit extracts the top-k principal
// components of the standardized record vectors by power iteration with
// deflation; Sample draws latent coordinates from the per-component
// variances and adds isotropic residual noise.
type TVAE struct {
	layout *layout
	k      int
	mean   []float64
	std    []float64
	comps  [][]float64 // unit-norm principal directions (standardized space)
	lambda []float64   // component variances
	resid  float64     // residual std in standardized space
	fitted bool
}

// NewTVAE builds the generator with a k-dimensional latent (0 → 4).
func NewTVAE(schema *rules.Schema, k int) *TVAE {
	if k == 0 {
		k = 4
	}
	return &TVAE{layout: newLayout(schema), k: k}
}

// Name implements Generator.
func (g *TVAE) Name() string { return "TVAE" }

// Fit implements Generator.
func (g *TVAE) Fit(recs []rules.Record) error {
	rows, err := g.layout.matrix(recs)
	if err != nil {
		return err
	}
	if len(rows) < 2 {
		return fmt.Errorf("baselines: need ≥2 records, got %d", len(rows))
	}
	d := g.layout.size()
	if g.k > d {
		g.k = d
	}
	g.mean, g.std = meanStd(rows)
	norm := make([][]float64, len(rows))
	for i, r := range rows {
		norm[i] = make([]float64, d)
		for j, v := range r {
			norm[i][j] = (v - g.mean[j]) / g.std[j]
		}
	}
	// Covariance in standardized space.
	cov := make([][]float64, d)
	for i := range cov {
		cov[i] = make([]float64, d)
	}
	for _, r := range norm {
		for i := 0; i < d; i++ {
			for j := 0; j <= i; j++ {
				cov[i][j] += r[i] * r[j]
			}
		}
	}
	inv := 1 / float64(len(rows)-1)
	var trace float64
	for i := 0; i < d; i++ {
		for j := 0; j <= i; j++ {
			cov[i][j] *= inv
			cov[j][i] = cov[i][j]
		}
		trace += cov[i][i]
	}

	g.comps = nil
	g.lambda = nil
	var explained float64
	for c := 0; c < g.k; c++ {
		vec, val := powerIteration(cov, 200, 1e-9)
		if val <= 1e-9 {
			break
		}
		g.comps = append(g.comps, vec)
		g.lambda = append(g.lambda, val)
		explained += val
		deflate(cov, vec, val)
	}
	residVar := (trace - explained) / float64(d)
	if residVar < 0 {
		residVar = 0
	}
	g.resid = math.Sqrt(residVar)
	g.fitted = true
	return nil
}

// Sample implements Generator.
func (g *TVAE) Sample(rng *rand.Rand) (rules.Record, error) {
	if !g.fitted {
		return nil, fmt.Errorf("baselines: TVAE not fitted")
	}
	d := g.layout.size()
	x := make([]float64, d)
	for c, vec := range g.comps {
		z := rng.NormFloat64() * math.Sqrt(g.lambda[c])
		for j := 0; j < d; j++ {
			x[j] += z * vec[j]
		}
	}
	for j := 0; j < d; j++ {
		x[j] += rng.NormFloat64() * g.resid
		x[j] = x[j]*g.std[j] + g.mean[j]
	}
	return g.layout.devectorize(x), nil
}

// powerIteration finds the dominant eigenpair of a symmetric matrix.
func powerIteration(a [][]float64, iters int, tol float64) ([]float64, float64) {
	d := len(a)
	v := make([]float64, d)
	for i := range v {
		v[i] = 1 / math.Sqrt(float64(d))
	}
	var val float64
	for it := 0; it < iters; it++ {
		w := make([]float64, d)
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				w[i] += a[i][j] * v[j]
			}
		}
		var norm float64
		for _, x := range w {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		if norm < tol {
			return v, 0
		}
		for i := range w {
			w[i] /= norm
		}
		prev := val
		val = norm
		v = w
		if it > 5 && math.Abs(val-prev) < tol {
			break
		}
	}
	return v, val
}

// deflate removes an eigenpair: a ← a − λ v vᵀ.
func deflate(a [][]float64, v []float64, val float64) {
	d := len(a)
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			a[i][j] -= val * v[i] * v[j]
		}
	}
}
