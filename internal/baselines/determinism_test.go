package baselines

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/rules"
)

// TestGeneratorsDeterministic: same fit + same sampling seed → identical
// samples (the reproducibility contract of every experiment driver).
func TestGeneratorsDeterministic(t *testing.T) {
	train, _, schema := trainTest(t)
	for _, mk := range []func() Generator{
		func() Generator { return NewNetShare(schema, 0) },
		func() Generator { return NewEWGANGP(schema) },
		func() Generator { return NewCTGAN(schema, 0, 9) },
		func() Generator { return NewTVAE(schema, 0) },
	} {
		g1, g2 := mk(), mk()
		if err := g1.Fit(train); err != nil {
			t.Fatal(err)
		}
		if err := g2.Fit(train); err != nil {
			t.Fatal(err)
		}
		r1 := rand.New(rand.NewSource(123))
		r2 := rand.New(rand.NewSource(123))
		for i := 0; i < 20; i++ {
			a, err := g1.Sample(r1)
			if err != nil {
				t.Fatal(err)
			}
			b, err := g2.Sample(r2)
			if err != nil {
				t.Fatal(err)
			}
			if dataset.Format(a) != dataset.Format(b) {
				t.Fatalf("%s: sample %d diverged:\n%s%s", g1.Name(), i, dataset.Format(a), dataset.Format(b))
			}
		}
	}
}

func TestZoom2NetDeterministic(t *testing.T) {
	train, test, schema := trainTest(t)
	mk := func() *Zoom2Net {
		z, err := NewZoom2Net(schema, dataset.CoarseFields(), dataset.FineField, nil, Z2NConfig{Epochs: 5, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if err := z.Fit(train); err != nil {
			t.Fatal(err)
		}
		return z
	}
	z1, z2 := mk(), mk()
	for _, rec := range test[:20] {
		a, err := z1.Impute(coarseOnly(rec))
		if err != nil {
			t.Fatal(err)
		}
		b, err := z2.Impute(coarseOnly(rec))
		if err != nil {
			t.Fatal(err)
		}
		for i := range a[dataset.FineField] {
			if a[dataset.FineField][i] != b[dataset.FineField][i] {
				t.Fatalf("Zoom2Net not deterministic: %v vs %v", a[dataset.FineField], b[dataset.FineField])
			}
		}
	}
}

// TestCTGANSingularData: k-means over a corpus with fewer distinct points
// than clusters must not loop or crash.
func TestCTGANSingularData(t *testing.T) {
	_, _, schema := trainTest(t)
	rec := rules.Record{
		"TotalIngress": {10}, "Congestion": {0}, "Retrans": {0},
		"Egress": {5}, "Conns": {3}, dataset.FineField: {2, 2, 2, 2, 2},
	}
	var recs []rules.Record
	for i := 0; i < 20; i++ {
		recs = append(recs, rec.Clone())
	}
	g := NewCTGAN(schema, 6, 1)
	if err := g.Fit(recs); err != nil {
		t.Fatal(err)
	}
	out, err := g.Sample(rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if dataset.Format(out) != dataset.Format(rec) {
		t.Errorf("degenerate corpus should reproduce the single point: %s", dataset.Format(out))
	}
}

// TestEWGANGPSingularCovariance: constant dimensions make the covariance
// singular; the jittered Cholesky must still succeed.
func TestEWGANGPSingularCovariance(t *testing.T) {
	_, _, schema := trainTest(t)
	var recs []rules.Record
	for i := 0; i < 30; i++ {
		recs = append(recs, rules.Record{
			"TotalIngress": {int64(i % 7 * 10)}, "Congestion": {0}, "Retrans": {0},
			"Egress": {0}, "Conns": {5}, dataset.FineField: {int64(i % 7 * 2), 0, 0, 0, 0},
		})
	}
	g := NewEWGANGP(schema)
	if err := g.Fit(recs); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10; i++ {
		rec, err := g.Sample(rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := schema.Validate(rec); err != nil {
			t.Fatalf("sample outside domains: %v", err)
		}
	}
}

// TestTVAELatentLargerThanDims: k larger than the dimensionality must clamp.
func TestTVAELatentLargerThanDims(t *testing.T) {
	train, _, schema := trainTest(t)
	g := NewTVAE(schema, 100)
	if err := g.Fit(train); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Sample(rand.New(rand.NewSource(3))); err != nil {
		t.Fatal(err)
	}
}
