package baselines

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/ilp"
	"repro/internal/rules"
	"repro/internal/smt"
)

// Zoom2Net is the task-specific imputation baseline (Gong et al., SIGCOMM
// '24, substituted per DESIGN.md): a small MLP regressor mapping coarse
// counters to the fine-grained series, followed by a Constraint Enforcement
// Module that projects the prediction onto a handful of manual rules via
// L1-minimal integer repair — post-inference enforcement, §2.2.
type Zoom2Net struct {
	schema *rules.Schema
	coarse []string
	fine   string
	manual *rules.RuleSet // the "C4–C7" manual rules; may be nil (no CEM)
	cfg    Z2NConfig

	inDim, outDim  int
	inHi, outHi    []float64 // normalization scales
	w1, b1, w2, b2 []float64 // MLP parameters (hidden tanh)
	fitted         bool
}

// Z2NConfig tunes the regressor.
type Z2NConfig struct {
	Hidden int     // hidden width (0 → 32)
	Epochs int     // training epochs (0 → 60)
	LR     float64 // SGD learning rate (0 → 0.05)
	Seed   int64
}

func (c *Z2NConfig) fill() {
	if c.Hidden == 0 {
		c.Hidden = 32
	}
	if c.Epochs == 0 {
		c.Epochs = 60
	}
	if c.LR == 0 {
		c.LR = 0.05
	}
}

// NewZoom2Net builds the imputer. manual is the CEM rule set (pass nil to
// disable enforcement, i.e. the bare regressor).
func NewZoom2Net(schema *rules.Schema, coarse []string, fine string, manual *rules.RuleSet, cfg Z2NConfig) (*Zoom2Net, error) {
	cfg.fill()
	z := &Zoom2Net{schema: schema, coarse: coarse, fine: fine, manual: manual, cfg: cfg}
	for _, name := range coarse {
		f, ok := schema.Field(name)
		if !ok || f.Kind != rules.Scalar {
			return nil, fmt.Errorf("baselines: coarse field %q invalid", name)
		}
		z.inHi = append(z.inHi, float64(f.Hi))
	}
	f, ok := schema.Field(fine)
	if !ok || f.Kind != rules.Vector {
		return nil, fmt.Errorf("baselines: fine field %q invalid", fine)
	}
	z.inDim = len(coarse)
	z.outDim = f.Len
	for i := 0; i < f.Len; i++ {
		z.outHi = append(z.outHi, float64(f.Hi))
	}
	return z, nil
}

// Name implements Imputer.
func (z *Zoom2Net) Name() string { return "Zoom2Net" }

// Fit trains the MLP with SGD on normalized inputs/targets.
func (z *Zoom2Net) Fit(recs []rules.Record) error {
	if len(recs) == 0 {
		return fmt.Errorf("baselines: empty training set")
	}
	rng := rand.New(rand.NewSource(z.cfg.Seed))
	h := z.cfg.Hidden
	z.w1 = randSlice(rng, z.inDim*h, 1/math.Sqrt(float64(z.inDim)))
	z.b1 = make([]float64, h)
	z.w2 = randSlice(rng, h*z.outDim, 1/math.Sqrt(float64(h)))
	z.b2 = make([]float64, z.outDim)

	xs := make([][]float64, len(recs))
	ys := make([][]float64, len(recs))
	for i, rec := range recs {
		x, y, err := z.normalize(rec)
		if err != nil {
			return err
		}
		xs[i], ys[i] = x, y
	}

	order := rng.Perm(len(recs))
	for epoch := 0; epoch < z.cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		lr := z.cfg.LR / (1 + 0.05*float64(epoch))
		for _, idx := range order {
			z.sgdStep(xs[idx], ys[idx], lr)
		}
	}
	z.fitted = true
	return nil
}

func (z *Zoom2Net) normalize(rec rules.Record) (x, y []float64, err error) {
	for i, name := range z.coarse {
		vs, ok := rec[name]
		if !ok {
			return nil, nil, fmt.Errorf("baselines: record missing %q", name)
		}
		x = append(x, float64(vs[0])/z.inHi[i])
	}
	vs, ok := rec[z.fine]
	if !ok {
		return nil, nil, fmt.Errorf("baselines: record missing %q", z.fine)
	}
	for i, v := range vs {
		y = append(y, float64(v)/z.outHi[i])
	}
	return x, y, nil
}

// sgdStep runs one forward/backward/update on a single example (MSE loss).
func (z *Zoom2Net) sgdStep(x, y []float64, lr float64) {
	h := z.cfg.Hidden
	hid := make([]float64, h)
	for j := 0; j < h; j++ {
		s := z.b1[j]
		for i := 0; i < z.inDim; i++ {
			s += x[i] * z.w1[i*h+j]
		}
		hid[j] = math.Tanh(s)
	}
	out := make([]float64, z.outDim)
	for k := 0; k < z.outDim; k++ {
		s := z.b2[k]
		for j := 0; j < h; j++ {
			s += hid[j] * z.w2[j*z.outDim+k]
		}
		out[k] = s
	}
	// Backward.
	dOut := make([]float64, z.outDim)
	for k := range dOut {
		dOut[k] = 2 * (out[k] - y[k]) / float64(z.outDim)
	}
	dHid := make([]float64, h)
	for j := 0; j < h; j++ {
		for k := 0; k < z.outDim; k++ {
			dHid[j] += dOut[k] * z.w2[j*z.outDim+k]
			z.w2[j*z.outDim+k] -= lr * dOut[k] * hid[j]
		}
		dHid[j] *= 1 - hid[j]*hid[j]
	}
	for k := 0; k < z.outDim; k++ {
		z.b2[k] -= lr * dOut[k]
	}
	for i := 0; i < z.inDim; i++ {
		for j := 0; j < h; j++ {
			z.w1[i*h+j] -= lr * dHid[j] * x[i]
		}
	}
	for j := 0; j < h; j++ {
		z.b1[j] -= lr * dHid[j]
	}
}

// predict runs the MLP and denormalizes to raw fine-grained values.
func (z *Zoom2Net) predict(known rules.Record) ([]int64, error) {
	x := make([]float64, 0, z.inDim)
	for i, name := range z.coarse {
		vs, ok := known[name]
		if !ok {
			return nil, fmt.Errorf("baselines: known record missing %q", name)
		}
		x = append(x, float64(vs[0])/z.inHi[i])
	}
	h := z.cfg.Hidden
	hid := make([]float64, h)
	for j := 0; j < h; j++ {
		s := z.b1[j]
		for i := 0; i < z.inDim; i++ {
			s += x[i] * z.w1[i*h+j]
		}
		hid[j] = math.Tanh(s)
	}
	out := make([]int64, z.outDim)
	f, _ := z.schema.Field(z.fine)
	for k := 0; k < z.outDim; k++ {
		s := z.b2[k]
		for j := 0; j < h; j++ {
			s += hid[j] * z.w2[j*z.outDim+k]
		}
		v := int64(math.Round(s * z.outHi[k]))
		if v < f.Lo {
			v = f.Lo
		}
		if v > f.Hi {
			v = f.Hi
		}
		out[k] = v
	}
	return out, nil
}

// Impute predicts the fine series and, when a manual rule set is configured,
// runs the CEM projection (L1-minimal repair holding the coarse inputs
// fixed). Note the characteristic Zoom2Net behaviour the paper highlights:
// the output satisfies the manual rules, not the full mined set.
func (z *Zoom2Net) Impute(known rules.Record) (rules.Record, error) {
	if !z.fitted {
		return nil, fmt.Errorf("baselines: Zoom2Net not fitted")
	}
	pred, err := z.predict(known)
	if err != nil {
		return nil, err
	}
	rec := known.Clone()
	rec[z.fine] = pred
	if z.manual == nil {
		return rec, nil
	}
	// CEM: project onto the manual rules.
	vs, err := z.manual.Violations(rec)
	if err != nil {
		return nil, err
	}
	if len(vs) == 0 {
		return rec, nil
	}
	s := smt.NewSolver()
	b := rules.Instantiate(s, z.schema)
	compiled, err := z.manual.CompileAll(b)
	if err != nil {
		return nil, err
	}
	s.Assert(compiled)
	for name, vals := range known {
		bv, ok := b.Vars(name)
		if !ok {
			continue
		}
		for i, v := range vals {
			s.Assert(smt.Eq(smt.V(bv[i]), smt.C(v)))
		}
	}
	fineVars, _ := b.Vars(z.fine)
	repaired, st := ilp.Repair(s, fineVars, pred)
	if st != smt.Sat {
		// No compliant projection exists (e.g. contradictory coarse
		// inputs): return the raw prediction, as Zoom2Net's soft CEM
		// would.
		return rec, nil
	}
	out := make([]int64, len(fineVars))
	for i, v := range fineVars {
		out[i] = repaired[v]
	}
	rec[z.fine] = out
	return rec, nil
}

func randSlice(rng *rand.Rand, n int, std float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64() * std
	}
	return out
}
