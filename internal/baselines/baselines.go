// Package baselines implements the task-specific systems the paper compares
// LeJIT against (§4 "Baselines"). Each is the canonical statistical core of
// its namesake, substituted per DESIGN.md §1:
//
//   - Zoom2Net  → MLP imputer + ILP Constraint Enforcement Module over the
//     four manual rules (zoom2net.go),
//   - NetShare  → per-dimension quantized first-order Markov generator
//     (netshare.go),
//   - E-WGAN-GP → full-covariance Gaussian density fit (gaussian.go),
//   - CTGAN     → mode-clustered (k-means) empirical mixture (mixture.go),
//   - TVAE      → linear VAE via PCA latents (tvae.go),
//   - REaLTabFormer → a second from-scratch transformer decoded with
//     structural masking; being GPT-2-based itself, it is exactly
//     core.Engine in StructureOnly mode and lives in internal/experiments.
//
// All generators implement Generator and operate on the flattened record
// vector in schema field order.
package baselines

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/rules"
)

// Generator is an unconditional synthetic-record generator.
type Generator interface {
	// Name identifies the generator in reports.
	Name() string
	// Fit learns from training records.
	Fit(recs []rules.Record) error
	// Sample draws one synthetic record.
	Sample(rng *rand.Rand) (rules.Record, error)
}

// Imputer predicts missing fields from known ones.
type Imputer interface {
	Name() string
	Fit(recs []rules.Record) error
	// Impute fills the fields not present in known.
	Impute(known rules.Record) (rules.Record, error)
}

// layout flattens a schema into an ordered list of (field, index) slots so
// records convert to/from plain vectors.
type layout struct {
	schema *rules.Schema
	fields []rules.Field
	// dims[i] describes flat position i.
	dims []dim
}

type dim struct {
	field  string
	index  int
	lo, hi int64
}

func newLayout(schema *rules.Schema) *layout {
	l := &layout{schema: schema, fields: schema.Fields()}
	for _, f := range l.fields {
		for i := 0; i < f.Len; i++ {
			l.dims = append(l.dims, dim{field: f.Name, index: i, lo: f.Lo, hi: f.Hi})
		}
	}
	return l
}

func (l *layout) size() int { return len(l.dims) }

// vectorize flattens a record; it errors on missing fields.
func (l *layout) vectorize(rec rules.Record) ([]float64, error) {
	out := make([]float64, 0, l.size())
	for _, d := range l.dims {
		vs, ok := rec[d.field]
		if !ok || d.index >= len(vs) {
			return nil, fmt.Errorf("baselines: record missing %s[%d]", d.field, d.index)
		}
		out = append(out, float64(vs[d.index]))
	}
	return out, nil
}

// devectorize rounds, clamps to the domain, and rebuilds a record.
func (l *layout) devectorize(v []float64) rules.Record {
	rec := rules.Record{}
	for _, f := range l.fields {
		rec[f.Name] = make([]int64, f.Len)
	}
	for i, d := range l.dims {
		x := int64(math.Round(v[i]))
		if x < d.lo {
			x = d.lo
		}
		if x > d.hi {
			x = d.hi
		}
		rec[d.field][d.index] = x
	}
	return rec
}

// matrix converts a corpus into row vectors.
func (l *layout) matrix(recs []rules.Record) ([][]float64, error) {
	out := make([][]float64, len(recs))
	for i, rec := range recs {
		v, err := l.vectorize(rec)
		if err != nil {
			return nil, fmt.Errorf("record %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}

// meanStd computes per-dimension mean and standard deviation (σ floored at
// a tiny epsilon so standardization never divides by zero).
func meanStd(rows [][]float64) (mean, std []float64) {
	n := len(rows)
	d := len(rows[0])
	mean = make([]float64, d)
	std = make([]float64, d)
	for _, r := range rows {
		for j, v := range r {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	for _, r := range rows {
		for j, v := range r {
			dv := v - mean[j]
			std[j] += dv * dv
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] / float64(n))
		if std[j] < 1e-9 {
			std[j] = 1e-9
		}
	}
	return mean, std
}
