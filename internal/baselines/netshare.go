package baselines

import (
	"fmt"
	"math/rand"

	"repro/internal/rules"
)

// NetShare is the sequence-model synthetic-data baseline (Yin et al.,
// SIGCOMM '22, substituted per DESIGN.md): it learns a quantized first-order
// Markov chain over the record's dimensions — each value is sampled from the
// empirical conditional distribution given the previous dimension's
// quantization bin. Captures pairwise sequential correlations, knows no
// rules.
type NetShare struct {
	layout *layout
	bins   int
	// lo/width per dimension for quantization.
	lo, width []float64
	// marginal[k] = observed values of dimension k.
	marginal [][]float64
	// cond[k][prevBin] = observed values of dim k given bin(dim k-1).
	cond   []map[int][]float64
	fitted bool
}

// NewNetShare builds the generator; bins controls quantization granularity
// (0 → 12).
func NewNetShare(schema *rules.Schema, bins int) *NetShare {
	if bins == 0 {
		bins = 12
	}
	return &NetShare{layout: newLayout(schema), bins: bins}
}

// Name implements Generator.
func (g *NetShare) Name() string { return "NetShare" }

// Fit implements Generator.
func (g *NetShare) Fit(recs []rules.Record) error {
	rows, err := g.layout.matrix(recs)
	if err != nil {
		return err
	}
	if len(rows) == 0 {
		return fmt.Errorf("baselines: empty training set")
	}
	d := g.layout.size()
	g.lo = make([]float64, d)
	g.width = make([]float64, d)
	g.marginal = make([][]float64, d)
	g.cond = make([]map[int][]float64, d)
	for k := 0; k < d; k++ {
		lo, hi := rows[0][k], rows[0][k]
		for _, r := range rows {
			if r[k] < lo {
				lo = r[k]
			}
			if r[k] > hi {
				hi = r[k]
			}
		}
		g.lo[k] = lo
		g.width[k] = (hi - lo) / float64(g.bins)
		if g.width[k] == 0 {
			g.width[k] = 1
		}
		g.cond[k] = map[int][]float64{}
	}
	for _, r := range rows {
		for k := 0; k < d; k++ {
			g.marginal[k] = append(g.marginal[k], r[k])
			if k > 0 {
				pb := g.bin(k-1, r[k-1])
				g.cond[k][pb] = append(g.cond[k][pb], r[k])
			}
		}
	}
	g.fitted = true
	return nil
}

func (g *NetShare) bin(k int, v float64) int {
	b := int((v - g.lo[k]) / g.width[k])
	if b < 0 {
		b = 0
	}
	if b >= g.bins {
		b = g.bins - 1
	}
	return b
}

// Sample implements Generator.
func (g *NetShare) Sample(rng *rand.Rand) (rules.Record, error) {
	if !g.fitted {
		return nil, fmt.Errorf("baselines: NetShare not fitted")
	}
	d := g.layout.size()
	v := make([]float64, d)
	for k := 0; k < d; k++ {
		var pool []float64
		if k > 0 {
			pool = g.cond[k][g.bin(k-1, v[k-1])]
		}
		if len(pool) == 0 {
			pool = g.marginal[k]
		}
		v[k] = pool[rng.Intn(len(pool))]
	}
	return g.layout.devectorize(v), nil
}
