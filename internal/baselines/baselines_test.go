package baselines

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/rules"
)

func trainTest(t *testing.T) (train, test []rules.Record, schema *rules.Schema) {
	t.Helper()
	ws := dataset.Generate(dataset.Config{Racks: 20, WindowsPerRack: 120, Seed: 55})
	trw, tew := dataset.Split(ws, 16, 4)
	return dataset.Records(trw), dataset.Records(tew), dataset.Schema()
}

func generators(schema *rules.Schema) []Generator {
	return []Generator{
		NewNetShare(schema, 0),
		NewEWGANGP(schema),
		NewCTGAN(schema, 0, 1),
		NewTVAE(schema, 0),
	}
}

func TestGeneratorsFitAndSample(t *testing.T) {
	train, _, schema := trainTest(t)
	rng := rand.New(rand.NewSource(2))
	for _, g := range generators(schema) {
		t.Run(g.Name(), func(t *testing.T) {
			if err := g.Fit(train); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 50; i++ {
				rec, err := g.Sample(rng)
				if err != nil {
					t.Fatal(err)
				}
				if err := schema.Validate(rec); err != nil {
					t.Fatalf("sample %d invalid: %v", i, err)
				}
			}
		})
	}
}

func TestGeneratorsRequireFit(t *testing.T) {
	_, _, schema := trainTest(t)
	rng := rand.New(rand.NewSource(3))
	for _, g := range generators(schema) {
		if _, err := g.Sample(rng); err == nil {
			t.Errorf("%s: Sample before Fit should error", g.Name())
		}
	}
}

// TestGeneratorsApproximateMarginals: each generator should land closer to
// the held-out TotalIngress distribution than a uniform sampler does —
// i.e. they actually learn something.
func TestGeneratorsApproximateMarginals(t *testing.T) {
	train, test, schema := trainTest(t)
	rng := rand.New(rand.NewSource(4))

	truth := fieldValues(test, "TotalIngress")
	uniform := make([]float64, 2000)
	for i := range uniform {
		uniform[i] = rng.Float64() * dataset.MaxCoarse
	}
	uniformJSD := metrics.JSD(uniform, truth, 20, 0, dataset.MaxCoarse)

	for _, g := range generators(schema) {
		t.Run(g.Name(), func(t *testing.T) {
			if err := g.Fit(train); err != nil {
				t.Fatal(err)
			}
			var synth []float64
			for i := 0; i < 2000; i++ {
				rec, err := g.Sample(rng)
				if err != nil {
					t.Fatal(err)
				}
				synth = append(synth, float64(rec["TotalIngress"][0]))
			}
			jsd := metrics.JSD(synth, truth, 20, 0, dataset.MaxCoarse)
			if math.IsNaN(jsd) || jsd >= uniformJSD {
				t.Errorf("JSD %.4f is not better than uniform %.4f", jsd, uniformJSD)
			}
		})
	}
}

// TestGeneratorsViolateRules: the SOTA generators know no rules; on mined
// hard constraints they must show violations (the Fig 5 contrast).
func TestGeneratorsViolateRules(t *testing.T) {
	train, _, schema := trainTest(t)
	rng := rand.New(rand.NewSource(5))
	rs, err := rules.ParseRuleSet(`
const BW = 60
rule conserve: sum(I) == TotalIngress
rule burst: Congestion > 0 -> max(I) >= BW/2
`, schema)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range generators(schema) {
		t.Run(g.Name(), func(t *testing.T) {
			if err := g.Fit(train); err != nil {
				t.Fatal(err)
			}
			violated := 0
			const n = 200
			for i := 0; i < n; i++ {
				rec, err := g.Sample(rng)
				if err != nil {
					t.Fatal(err)
				}
				vs, err := rs.Violations(rec)
				if err != nil {
					t.Fatal(err)
				}
				if len(vs) > 0 {
					violated++
				}
			}
			if violated == 0 {
				t.Errorf("%s: zero violations in %d samples (a rule-free generator satisfying Σ I = TotalIngress exactly is implausible)", g.Name(), n)
			}
		})
	}
}

func TestZoom2NetLearnsImputation(t *testing.T) {
	train, test, schema := trainTest(t)
	z, err := NewZoom2Net(schema, dataset.CoarseFields(), dataset.FineField, nil, Z2NConfig{Epochs: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := z.Fit(train); err != nil {
		t.Fatal(err)
	}
	// Compare against the constant mean predictor.
	meanPred := meanFine(train)
	var zPred, mPred, truth [][]int64
	for _, rec := range test[:300] {
		known := coarseOnly(rec)
		out, err := z.Impute(known)
		if err != nil {
			t.Fatal(err)
		}
		zPred = append(zPred, out[dataset.FineField])
		mPred = append(mPred, meanPred)
		truth = append(truth, rec[dataset.FineField])
	}
	zMAE, err := metrics.MAE(zPred, truth)
	if err != nil {
		t.Fatal(err)
	}
	mMAE, err := metrics.MAE(mPred, truth)
	if err != nil {
		t.Fatal(err)
	}
	if zMAE >= mMAE {
		t.Errorf("Zoom2Net MAE %.3f not better than mean predictor %.3f", zMAE, mMAE)
	}
}

func TestZoom2NetCEMEnforcesManualRules(t *testing.T) {
	train, test, schema := trainTest(t)
	manual, err := rules.ParseRuleSet(`
const BW = 60
const T  = 5
rule c4: forall t in 0..T-1: 0 <= I[t] and I[t] <= BW
rule c5: sum(I) == TotalIngress
rule c6: Congestion > 0 -> max(I) >= BW/2
rule c7: forall t in 0..T-2: I[t+1] - I[t] <= BW and I[t] - I[t+1] <= BW
`, schema)
	if err != nil {
		t.Fatal(err)
	}
	z, err := NewZoom2Net(schema, dataset.CoarseFields(), dataset.FineField, manual, Z2NConfig{Epochs: 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := z.Fit(train); err != nil {
		t.Fatal(err)
	}
	for i, rec := range test[:100] {
		out, err := z.Impute(coarseOnly(rec))
		if err != nil {
			t.Fatal(err)
		}
		vs, err := manual.Violations(out)
		if err != nil {
			t.Fatal(err)
		}
		if len(vs) > 0 {
			t.Fatalf("record %d: CEM output violates manual rules %v: %v", i, vs, out)
		}
	}
}

func TestZoom2NetRequiresFit(t *testing.T) {
	_, test, schema := trainTest(t)
	z, err := NewZoom2Net(schema, dataset.CoarseFields(), dataset.FineField, nil, Z2NConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := z.Impute(coarseOnly(test[0])); err == nil {
		t.Error("Impute before Fit should error")
	}
}

func TestZoom2NetValidation(t *testing.T) {
	_, _, schema := trainTest(t)
	if _, err := NewZoom2Net(schema, []string{"Nope"}, dataset.FineField, nil, Z2NConfig{}); err == nil {
		t.Error("unknown coarse field accepted")
	}
	if _, err := NewZoom2Net(schema, dataset.CoarseFields(), "Congestion", nil, Z2NConfig{}); err == nil {
		t.Error("scalar fine field accepted")
	}
}

func TestLayoutRoundTrip(t *testing.T) {
	_, test, schema := trainTest(t)
	l := newLayout(schema)
	for _, rec := range test[:20] {
		v, err := l.vectorize(rec)
		if err != nil {
			t.Fatal(err)
		}
		back := l.devectorize(v)
		for _, f := range schema.Fields() {
			for i := range rec[f.Name] {
				if back[f.Name][i] != rec[f.Name][i] {
					t.Fatalf("round trip mismatch at %s[%d]", f.Name, i)
				}
			}
		}
	}
}

func TestCholeskyIdentity(t *testing.T) {
	id := [][]float64{{1, 0}, {0, 1}}
	l, err := cholesky(id)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l[0][0]-1) > 1e-4 || math.Abs(l[1][1]-1) > 1e-4 || l[1][0] != 0 {
		t.Errorf("chol(I) = %v", l)
	}
}

func coarseOnly(rec rules.Record) rules.Record {
	out := rules.Record{}
	for _, f := range dataset.CoarseFields() {
		out[f] = append([]int64(nil), rec[f]...)
	}
	return out
}

func fieldValues(recs []rules.Record, field string) []float64 {
	out := make([]float64, 0, len(recs))
	for _, r := range recs {
		out = append(out, float64(r[field][0]))
	}
	return out
}

func meanFine(recs []rules.Record) []int64 {
	sum := make([]float64, dataset.T)
	for _, r := range recs {
		for i, v := range r[dataset.FineField] {
			sum[i] += float64(v)
		}
	}
	out := make([]int64, dataset.T)
	for i := range out {
		out[i] = int64(math.Round(sum[i] / float64(len(recs))))
	}
	return out
}
