package baselines

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/rules"
)

// EWGANGP is the implicit-density baseline (Gulrajani et al.'s WGAN-GP as
// used for network data, substituted per DESIGN.md): a full-covariance
// multivariate Gaussian fit of the record vector — the smooth unimodal
// density a critic-regularized GAN converges towards on this data scale.
// Captures all linear correlations, knows no rules and no hard bounds
// (samples are clamped to domains, mirroring a GAN's output squashing).
type EWGANGP struct {
	layout *layout
	mean   []float64
	chol   [][]float64 // lower-triangular Cholesky factor of the covariance
	fitted bool
}

// NewEWGANGP builds the generator.
func NewEWGANGP(schema *rules.Schema) *EWGANGP {
	return &EWGANGP{layout: newLayout(schema)}
}

// Name implements Generator.
func (g *EWGANGP) Name() string { return "E-WGAN-GP" }

// Fit implements Generator.
func (g *EWGANGP) Fit(recs []rules.Record) error {
	rows, err := g.layout.matrix(recs)
	if err != nil {
		return err
	}
	if len(rows) < 2 {
		return fmt.Errorf("baselines: need ≥2 records, got %d", len(rows))
	}
	d := g.layout.size()
	g.mean = make([]float64, d)
	for _, r := range rows {
		for j, v := range r {
			g.mean[j] += v
		}
	}
	for j := range g.mean {
		g.mean[j] /= float64(len(rows))
	}
	cov := make([][]float64, d)
	for i := range cov {
		cov[i] = make([]float64, d)
	}
	for _, r := range rows {
		for i := 0; i < d; i++ {
			di := r[i] - g.mean[i]
			for j := 0; j <= i; j++ {
				cov[i][j] += di * (r[j] - g.mean[j])
			}
		}
	}
	inv := 1 / float64(len(rows)-1)
	for i := 0; i < d; i++ {
		for j := 0; j <= i; j++ {
			cov[i][j] *= inv
			cov[j][i] = cov[i][j]
		}
	}
	g.chol, err = cholesky(cov)
	if err != nil {
		return err
	}
	g.fitted = true
	return nil
}

// Sample implements Generator.
func (g *EWGANGP) Sample(rng *rand.Rand) (rules.Record, error) {
	if !g.fitted {
		return nil, fmt.Errorf("baselines: E-WGAN-GP not fitted")
	}
	d := g.layout.size()
	z := make([]float64, d)
	for i := range z {
		z[i] = rng.NormFloat64()
	}
	x := make([]float64, d)
	for i := 0; i < d; i++ {
		s := g.mean[i]
		for j := 0; j <= i; j++ {
			s += g.chol[i][j] * z[j]
		}
		x[i] = s
	}
	return g.layout.devectorize(x), nil
}

// cholesky computes the lower-triangular factor of a symmetric
// positive-semidefinite matrix, adding diagonal jitter until it succeeds.
func cholesky(a [][]float64) ([][]float64, error) {
	d := len(a)
	for jitter := 1e-9; jitter < 1e3; jitter *= 10 {
		l := make([][]float64, d)
		for i := range l {
			l[i] = make([]float64, d)
		}
		ok := true
		for i := 0; i < d && ok; i++ {
			for j := 0; j <= i; j++ {
				s := a[i][j]
				if i == j {
					s += jitter
				}
				for k := 0; k < j; k++ {
					s -= l[i][k] * l[j][k]
				}
				if i == j {
					if s <= 0 {
						ok = false
						break
					}
					l[i][j] = math.Sqrt(s)
				} else {
					l[i][j] = s / l[j][j]
				}
			}
		}
		if ok {
			return l, nil
		}
	}
	return nil, fmt.Errorf("baselines: covariance is not positive semidefinite")
}
