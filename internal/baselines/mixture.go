package baselines

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/rules"
)

// CTGAN is the mode-aware tabular baseline (Xu et al., NeurIPS '19,
// substituted per DESIGN.md): CTGAN's core ideas are mode-specific
// normalization and conditional sampling per mode. The substitute clusters
// the corpus into traffic modes with k-means, then samples a mode by its
// empirical frequency and each dimension from that mode's empirical values.
// Captures multi-modality (idle vs loaded vs bursty traffic) but not exact
// arithmetic couplings.
type CTGAN struct {
	layout   *layout
	k        int
	iters    int
	seed     int64
	weights  []float64
	clusters [][][]float64 // clusters[c][dim] = observed values
	fitted   bool
}

// NewCTGAN builds the generator with k modes (0 → 6).
func NewCTGAN(schema *rules.Schema, k int, seed int64) *CTGAN {
	if k == 0 {
		k = 6
	}
	return &CTGAN{layout: newLayout(schema), k: k, iters: 25, seed: seed}
}

// Name implements Generator.
func (g *CTGAN) Name() string { return "CTGAN" }

// Fit implements Generator.
func (g *CTGAN) Fit(recs []rules.Record) error {
	rows, err := g.layout.matrix(recs)
	if err != nil {
		return err
	}
	if len(rows) < g.k {
		return fmt.Errorf("baselines: %d records for %d modes", len(rows), g.k)
	}
	mean, std := meanStd(rows)
	norm := make([][]float64, len(rows))
	for i, r := range rows {
		norm[i] = make([]float64, len(r))
		for j, v := range r {
			norm[i][j] = (v - mean[j]) / std[j]
		}
	}
	assign := kmeans(norm, g.k, g.iters, rand.New(rand.NewSource(g.seed)))

	d := g.layout.size()
	g.clusters = make([][][]float64, g.k)
	g.weights = make([]float64, g.k)
	for c := 0; c < g.k; c++ {
		g.clusters[c] = make([][]float64, d)
	}
	for i, c := range assign {
		g.weights[c]++
		for j, v := range rows[i] {
			g.clusters[c][j] = append(g.clusters[c][j], v)
		}
	}
	for c := range g.weights {
		g.weights[c] /= float64(len(rows))
	}
	g.fitted = true
	return nil
}

// Sample implements Generator.
func (g *CTGAN) Sample(rng *rand.Rand) (rules.Record, error) {
	if !g.fitted {
		return nil, fmt.Errorf("baselines: CTGAN not fitted")
	}
	c := sampleWeighted(g.weights, rng)
	for len(g.clusters[c][0]) == 0 { // empty cluster: resample
		c = sampleWeighted(g.weights, rng)
	}
	d := g.layout.size()
	v := make([]float64, d)
	for j := 0; j < d; j++ {
		pool := g.clusters[c][j]
		v[j] = pool[rng.Intn(len(pool))]
	}
	return g.layout.devectorize(v), nil
}

func sampleWeighted(ws []float64, rng *rand.Rand) int {
	r := rng.Float64()
	for i, w := range ws {
		r -= w
		if r <= 0 {
			return i
		}
	}
	return len(ws) - 1
}

// kmeans runs Lloyd's algorithm and returns per-row cluster assignments.
func kmeans(rows [][]float64, k, iters int, rng *rand.Rand) []int {
	n, d := len(rows), len(rows[0])
	centers := make([][]float64, k)
	perm := rng.Perm(n)
	for c := 0; c < k; c++ {
		centers[c] = append([]float64(nil), rows[perm[c]]...)
	}
	assign := make([]int, n)
	for it := 0; it < iters; it++ {
		changed := false
		for i, r := range rows {
			best, bestD := 0, math.Inf(1)
			for c := 0; c < k; c++ {
				var dist float64
				for j := 0; j < d; j++ {
					dv := r[j] - centers[c][j]
					dist += dv * dv
				}
				if dist < bestD {
					best, bestD = c, dist
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed {
			break
		}
		counts := make([]int, k)
		for c := range centers {
			for j := range centers[c] {
				centers[c][j] = 0
			}
		}
		for i, c := range assign {
			counts[c]++
			for j, v := range rows[i] {
				centers[c][j] += v
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed empty cluster at a random point.
				centers[c] = append([]float64(nil), rows[rng.Intn(n)]...)
				continue
			}
			for j := range centers[c] {
				centers[c][j] /= float64(counts[c])
			}
		}
	}
	return assign
}
