package rules

import (
	"fmt"
)

// Eval evaluates a rule against a concrete record, returning whether the rule
// holds. It is the fast path for violation checking (no solver involved) and
// by construction agrees with the SMT compilation (see TestEvalAgreesWithSMT).
func (rs *RuleSet) Eval(r Rule, rec Record) (bool, error) {
	ev := &evaluator{rs: rs, rec: rec, env: map[string]int64{}}
	return ev.node(r.Body)
}

// Violations returns the names of all rules in the set that rec violates,
// in rule order.
func (rs *RuleSet) Violations(rec Record) ([]string, error) {
	var out []string
	for _, r := range rs.Rules {
		ok, err := rs.Eval(r, rec)
		if err != nil {
			return nil, fmt.Errorf("rule %s: %w", r.Name, err)
		}
		if !ok {
			out = append(out, r.Name)
		}
	}
	return out, nil
}

// ViolationRate evaluates every rule against every record and returns the
// fraction of (record, rule) pairs that are violated, plus the fraction of
// records violating at least one rule.
func (rs *RuleSet) ViolationRate(recs []Record) (pairRate, recordRate float64, err error) {
	if len(recs) == 0 || len(rs.Rules) == 0 {
		return 0, 0, nil
	}
	var pairViol, recViol int
	for _, rec := range recs {
		vs, err := rs.Violations(rec)
		if err != nil {
			return 0, 0, err
		}
		pairViol += len(vs)
		if len(vs) > 0 {
			recViol++
		}
	}
	pairRate = float64(pairViol) / float64(len(recs)*len(rs.Rules))
	recordRate = float64(recViol) / float64(len(recs))
	return pairRate, recordRate, nil
}

type evaluator struct {
	rs  *RuleSet
	rec Record
	env map[string]int64
}

func (ev *evaluator) node(n Node) (bool, error) {
	switch g := n.(type) {
	case *CmpNode:
		l, err := ev.expr(g.L)
		if err != nil {
			return false, err
		}
		r, err := ev.expr(g.R)
		if err != nil {
			return false, err
		}
		switch g.Op {
		case CmpLE:
			return l <= r, nil
		case CmpLT:
			return l < r, nil
		case CmpGE:
			return l >= r, nil
		case CmpGT:
			return l > r, nil
		case CmpEQ:
			return l == r, nil
		case CmpNE:
			return l != r, nil
		}
		return false, fmt.Errorf("bad comparison op")
	case *AndNode:
		for _, k := range g.Kids {
			ok, err := ev.node(k)
			if err != nil || !ok {
				return false, err
			}
		}
		return true, nil
	case *OrNode:
		for _, k := range g.Kids {
			ok, err := ev.node(k)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	case *NotNode:
		ok, err := ev.node(g.Kid)
		return !ok, err
	case *ImpliesNode:
		a, err := ev.node(g.A)
		if err != nil {
			return false, err
		}
		if !a {
			return true, nil
		}
		return ev.node(g.B)
	case *QuantNode:
		lo, err := ev.expr(g.Lo)
		if err != nil {
			return false, err
		}
		hi, err := ev.expr(g.Hi)
		if err != nil {
			return false, err
		}
		for t := lo; t <= hi; t++ {
			ev.env[g.Var] = t
			ok, err := ev.node(g.Body)
			if err != nil {
				delete(ev.env, g.Var)
				return false, err
			}
			if g.Forall && !ok {
				delete(ev.env, g.Var)
				return false, nil
			}
			if !g.Forall && ok {
				delete(ev.env, g.Var)
				return true, nil
			}
		}
		delete(ev.env, g.Var)
		return g.Forall, nil
	}
	return false, fmt.Errorf("unknown node %T", n)
}

func (ev *evaluator) expr(e Expr) (int64, error) {
	switch g := e.(type) {
	case *NumLit:
		return g.V, nil
	case *VarRef:
		v, ok := ev.env[g.Name]
		if !ok {
			return 0, fmt.Errorf("loop variable %s out of scope", g.Name)
		}
		return v, nil
	case *NegExpr:
		v, err := ev.expr(g.E)
		return -v, err
	case *FieldRef:
		vs, ok := ev.rec[g.Name]
		if !ok {
			return 0, fmt.Errorf("record missing field %s", g.Name)
		}
		idx := int64(0)
		if g.Index != nil {
			var err error
			idx, err = ev.expr(g.Index)
			if err != nil {
				return 0, err
			}
		}
		if idx < 0 || idx >= int64(len(vs)) {
			return 0, fmt.Errorf("index %s[%d] out of range [0,%d)", g.Name, idx, len(vs))
		}
		return vs[idx], nil
	case *CountExpr:
		vs, ok := ev.rec[g.Field]
		if !ok {
			return 0, fmt.Errorf("record missing field %s", g.Field)
		}
		rhs, err := ev.expr(g.Rhs)
		if err != nil {
			return 0, err
		}
		var n int64
		for _, v := range vs {
			var hold bool
			switch g.Op {
			case CmpLE:
				hold = v <= rhs
			case CmpLT:
				hold = v < rhs
			case CmpGE:
				hold = v >= rhs
			case CmpGT:
				hold = v > rhs
			case CmpEQ:
				hold = v == rhs
			case CmpNE:
				hold = v != rhs
			}
			if hold {
				n++
			}
		}
		return n, nil
	case *AggRef:
		vs, ok := ev.rec[g.Field]
		if !ok {
			return 0, fmt.Errorf("record missing field %s", g.Field)
		}
		if len(vs) == 0 {
			return 0, fmt.Errorf("aggregate over empty field %s", g.Field)
		}
		switch g.Op {
		case AggSum:
			var s int64
			for _, v := range vs {
				s += v
			}
			return s, nil
		case AggMax:
			m := vs[0]
			for _, v := range vs[1:] {
				if v > m {
					m = v
				}
			}
			return m, nil
		case AggMin:
			m := vs[0]
			for _, v := range vs[1:] {
				if v < m {
					m = v
				}
			}
			return m, nil
		}
		return 0, fmt.Errorf("bad aggregate op")
	case *BinExpr:
		l, err := ev.expr(g.L)
		if err != nil {
			return 0, err
		}
		r, err := ev.expr(g.R)
		if err != nil {
			return 0, err
		}
		switch g.Op {
		case '+':
			return l + r, nil
		case '-':
			return l - r, nil
		case '*':
			return l * r, nil
		case '/':
			if r == 0 {
				return 0, fmt.Errorf("division by zero")
			}
			return floorDivI(l, r), nil
		}
	}
	return 0, fmt.Errorf("unknown expression %T", e)
}
