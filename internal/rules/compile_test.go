package rules

import (
	"math/rand"
	"testing"

	"repro/internal/smt"
)

// compileEnv creates a solver + binding for the paper schema.
func compileEnv(t *testing.T, schema *Schema) (*smt.Solver, *Binding) {
	t.Helper()
	s := smt.NewSolver()
	return s, Instantiate(s, schema)
}

func TestCompilePaperRulesSat(t *testing.T) {
	schema := paperSchema(t)
	rs, err := ParseRuleSet(paperRules, schema)
	if err != nil {
		t.Fatal(err)
	}
	s, b := compileEnv(t, schema)
	f, err := rs.CompileAll(b)
	if err != nil {
		t.Fatal(err)
	}
	s.Assert(f)
	// Pin the coarse inputs of the paper's running example.
	ti, _ := b.Vars("TotalIngress")
	cg, _ := b.Vars("Congestion")
	s.Assert(smt.Eq(smt.V(ti[0]), smt.C(100)))
	s.Assert(smt.Eq(smt.V(cg[0]), smt.C(8)))

	r := s.Check()
	if r.Status != smt.Sat {
		t.Fatalf("paper rules with TI=100, C=8: %v, want sat", r.Status)
	}
	// Extract the model into a record and confirm zero violations.
	iv, _ := b.Vars("I")
	rec := Record{"TotalIngress": {100}, "Congestion": {8}, "I": make([]int64, 5)}
	for i, v := range iv {
		rec["I"][i] = r.Model[v]
	}
	vs, err := rs.Violations(rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Errorf("solver model violates rules %v (record %v)", vs, rec)
	}
}

func TestCompileRejectsNonlinear(t *testing.T) {
	schema := paperSchema(t)
	rs, err := ParseRuleSet("rule bad: TotalIngress * Congestion > 0", schema)
	if err != nil {
		t.Fatal(err)
	}
	_, b := compileEnv(t, schema)
	if _, err := rs.Compile(rs.Rules[0], b); err == nil {
		t.Error("nonlinear product should not compile")
	}
}

func TestCompileRejectsVariableDivision(t *testing.T) {
	schema := paperSchema(t)
	rs, err := ParseRuleSet("rule bad: TotalIngress / 2 > 0", schema)
	if err != nil {
		t.Fatal(err)
	}
	_, b := compileEnv(t, schema)
	if _, err := rs.Compile(rs.Rules[0], b); err == nil {
		t.Error("non-constant division should not compile")
	}
}

func TestCompileRejectsAggArithmetic(t *testing.T) {
	schema := paperSchema(t)
	rs, err := ParseRuleSet("rule bad: max(I) + 1 > 0", schema)
	if err != nil {
		t.Fatal(err)
	}
	_, b := compileEnv(t, schema)
	if _, err := rs.Compile(rs.Rules[0], b); err == nil {
		t.Error("max inside arithmetic should not compile")
	}
}

func TestCompileMaxMinExpansions(t *testing.T) {
	schema := paperSchema(t)
	cases := []struct {
		src string
		rec Record
		ok  bool
	}{
		{"rule r: max(I) >= 30", Record{"I": {1, 2, 35, 4, 5}, "TotalIngress": {47}, "Congestion": {0}}, true},
		{"rule r: max(I) >= 30", Record{"I": {1, 2, 3, 4, 5}, "TotalIngress": {15}, "Congestion": {0}}, false},
		{"rule r: max(I) <= 10", Record{"I": {1, 2, 3, 4, 5}, "TotalIngress": {15}, "Congestion": {0}}, true},
		{"rule r: max(I) <= 10", Record{"I": {1, 2, 30, 4, 5}, "TotalIngress": {42}, "Congestion": {0}}, false},
		{"rule r: max(I) == 5", Record{"I": {1, 2, 3, 4, 5}, "TotalIngress": {15}, "Congestion": {0}}, true},
		{"rule r: max(I) == 5", Record{"I": {1, 2, 3, 4, 4}, "TotalIngress": {14}, "Congestion": {0}}, false},
		{"rule r: min(I) >= 1", Record{"I": {1, 2, 3, 4, 5}, "TotalIngress": {15}, "Congestion": {0}}, true},
		{"rule r: min(I) >= 1", Record{"I": {0, 2, 3, 4, 5}, "TotalIngress": {14}, "Congestion": {0}}, false},
		{"rule r: min(I) <= 2", Record{"I": {1, 2, 3, 4, 5}, "TotalIngress": {15}, "Congestion": {0}}, true},
		{"rule r: 30 <= max(I)", Record{"I": {1, 2, 35, 4, 5}, "TotalIngress": {47}, "Congestion": {0}}, true},
		{"rule r: min(I) != 0", Record{"I": {1, 2, 3, 4, 5}, "TotalIngress": {15}, "Congestion": {0}}, true},
		{"rule r: min(I) != 0", Record{"I": {0, 2, 3, 4, 5}, "TotalIngress": {14}, "Congestion": {0}}, false},
	}
	for _, c := range cases {
		t.Run(c.src, func(t *testing.T) {
			rs, err := ParseRuleSet(c.src, schema)
			if err != nil {
				t.Fatal(err)
			}
			// Concrete evaluation must agree with expectation.
			got, err := rs.Eval(rs.Rules[0], c.rec)
			if err != nil {
				t.Fatal(err)
			}
			if got != c.ok {
				t.Errorf("Eval = %v, want %v", got, c.ok)
			}
			// SMT compilation pinned to the record must agree too.
			s, b := compileEnv(t, schema)
			f, err := rs.Compile(rs.Rules[0], b)
			if err != nil {
				t.Fatal(err)
			}
			s.Assert(pinRecord(b, c.rec))
			r := s.CheckWith(f)
			if (r.Status == smt.Sat) != c.ok {
				t.Errorf("SMT check = %v, want sat=%v", r.Status, c.ok)
			}
		})
	}
}

// pinRecord builds a formula asserting every field equals the record value.
func pinRecord(b *Binding, rec Record) smt.Formula {
	var fs []smt.Formula
	for _, name := range rec.FieldNames() {
		vs, ok := b.Vars(name)
		if !ok {
			continue
		}
		for i, v := range rec[name] {
			fs = append(fs, smt.Eq(smt.V(vs[i]), smt.C(v)))
		}
	}
	return smt.And(fs...)
}

// TestEvalAgreesWithSMT is the key semantic-agreement property: for random
// compilable rules and random records, concrete evaluation and SMT
// satisfiability of the pinned instance must coincide.
func TestEvalAgreesWithSMT(t *testing.T) {
	schema := MustSchema(
		Field{Name: "X", Kind: Vector, Len: 3, Lo: 0, Hi: 9},
		Field{Name: "S", Kind: Scalar, Lo: 0, Hi: 30},
	)
	srcs := []string{
		"rule r: forall t in 0..2: X[t] <= S",
		"rule r: sum(X) == S",
		"rule r: S > 5 -> max(X) >= 4",
		"rule r: exists t in 0..2: X[t] == S - 10 or X[t] > 7",
		"rule r: not (min(X) < 2)",
		"rule r: forall t in 0..1: X[t] <= X[t+1]",
		"rule r: 2*X[0] - X[1] + 3 >= X[2]",
		"rule r: max(X) <= 8 and min(X) >= 1",
		"rule r: sum(X) != S",
		"rule r: (X[0] > 3 and X[1] > 3) or S < 5",
	}
	rng := rand.New(rand.NewSource(99))
	for _, src := range srcs {
		rs, err := ParseRuleSet(src, schema)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		for trial := 0; trial < 30; trial++ {
			rec := Record{
				"X": {int64(rng.Intn(10)), int64(rng.Intn(10)), int64(rng.Intn(10))},
				"S": {int64(rng.Intn(31))},
			}
			want, err := rs.Eval(rs.Rules[0], rec)
			if err != nil {
				t.Fatal(err)
			}
			s := smt.NewSolver()
			b := Instantiate(s, schema)
			f, err := rs.Compile(rs.Rules[0], b)
			if err != nil {
				t.Fatalf("%s: %v", src, err)
			}
			s.Assert(pinRecord(b, rec))
			r := s.CheckWith(f)
			if (r.Status == smt.Sat) != want {
				t.Errorf("%s on %v: eval=%v smt=%v", src, rec, want, r.Status)
			}
		}
	}
}

func TestCompileIndexOutOfRange(t *testing.T) {
	schema := paperSchema(t)
	rs, err := ParseRuleSet("rule r: forall t in 0..5: I[t] >= 0", schema) // I has len 5: index 5 invalid
	if err != nil {
		t.Fatal(err)
	}
	_, b := compileEnv(t, schema)
	if _, err := rs.Compile(rs.Rules[0], b); err == nil {
		t.Error("out-of-range index should fail at compile time")
	}
}

func TestInstantiateNamesAndBounds(t *testing.T) {
	schema := paperSchema(t)
	s := smt.NewSolver()
	b := Instantiate(s, schema)
	iv, ok := b.Vars("I")
	if !ok || len(iv) != 5 {
		t.Fatalf("I vars: %v ok=%v", iv, ok)
	}
	if lo, hi := s.Bounds(iv[0]); lo != 0 || hi != 60 {
		t.Errorf("I[0] bounds [%d,%d], want [0,60]", lo, hi)
	}
	if name := s.VarName(iv[2]); name != "I[2]" {
		t.Errorf("I[2] name %q", name)
	}
	tv, _ := b.Vars("TotalIngress")
	if name := s.VarName(tv[0]); name != "TotalIngress" {
		t.Errorf("scalar name %q", name)
	}
}
