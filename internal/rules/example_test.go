package rules_test

import (
	"fmt"

	"repro/internal/rules"
)

// The paper's R1–R3 in the rule DSL, checked against the invalid output of
// Fig 1a and the valid output of Fig 1b.
func Example() {
	schema := rules.MustSchema(
		rules.Field{Name: "I", Kind: rules.Vector, Len: 5, Lo: 0, Hi: 60},
		rules.Field{Name: "TotalIngress", Kind: rules.Scalar, Lo: 0, Hi: 300},
		rules.Field{Name: "Congestion", Kind: rules.Scalar, Lo: 0, Hi: 100},
	)
	rs, err := rules.ParseRuleSet(`
const BW = 60
const T  = 5
rule r1: forall t in 0..T-1: 0 <= I[t] <= BW
rule r2: sum(I) == TotalIngress
rule r3: Congestion > 0 -> max(I) >= BW/2
`, schema)
	if err != nil {
		panic(err)
	}

	invalid := rules.Record{"I": {20, 15, 25, 70, 8}, "TotalIngress": {100}, "Congestion": {8}}
	vs, _ := rs.Violations(invalid)
	fmt.Println("Fig 1a output violates:", vs)

	valid := rules.Record{"I": {20, 15, 25, 39, 1}, "TotalIngress": {100}, "Congestion": {8}}
	vs, _ = rs.Violations(valid)
	fmt.Println("Fig 1b output violates:", vs)
	// Output:
	// Fig 1a output violates: [r1 r2]
	// Fig 1b output violates: []
}

// The count aggregate bounds how many sub-intervals may burst.
func ExampleParseRuleSet_count() {
	schema := rules.MustSchema(
		rules.Field{Name: "I", Kind: rules.Vector, Len: 5, Lo: 0, Hi: 60},
	)
	rs, err := rules.ParseRuleSet("rule onepeak: count(I >= 30) <= 1", schema)
	if err != nil {
		panic(err)
	}
	ok, _ := rs.Eval(rs.Rules[0], rules.Record{"I": {5, 45, 10, 0, 3}})
	fmt.Println("single burst:", ok)
	ok, _ = rs.Eval(rs.Rules[0], rules.Record{"I": {35, 45, 10, 0, 3}})
	fmt.Println("double burst:", ok)
	// Output:
	// single burst: true
	// double burst: false
}
