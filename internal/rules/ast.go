package rules

import (
	"fmt"
	"strings"
)

// CmpOp is a comparison operator in the rule language.
type CmpOp int

// Comparison operators.
const (
	CmpLE CmpOp = iota
	CmpLT
	CmpGE
	CmpGT
	CmpEQ
	CmpNE
)

func (op CmpOp) String() string {
	return [...]string{"<=", "<", ">=", ">", "==", "!="}[op]
}

// flip returns the operator with its operands swapped (a op b ⟺ b flip(op) a).
func (op CmpOp) flip() CmpOp {
	switch op {
	case CmpLE:
		return CmpGE
	case CmpLT:
		return CmpGT
	case CmpGE:
		return CmpLE
	case CmpGT:
		return CmpLT
	}
	return op
}

// AggOp is an aggregate over a vector field.
type AggOp int

// Aggregates.
const (
	AggSum AggOp = iota
	AggMax
	AggMin
)

func (op AggOp) String() string {
	return [...]string{"sum", "max", "min"}[op]
}

// Expr is an arithmetic expression node.
type Expr interface {
	exprString(*strings.Builder)
	isExpr()
}

type (
	// NumLit is an integer literal or a folded constant.
	NumLit struct{ V int64 }
	// FieldRef references a field: scalar (Index == nil) or an indexed
	// vector element X[indexExpr].
	FieldRef struct {
		Name  string
		Index Expr
	}
	// VarRef references a quantifier loop variable.
	VarRef struct{ Name string }
	// AggRef is an aggregate over an entire vector field.
	AggRef struct {
		Op    AggOp
		Field string
	}
	// BinExpr is L op R for op in + - * /.
	BinExpr struct {
		Op   byte // '+', '-', '*', '/'
		L, R Expr
	}
	// NegExpr is -E.
	NegExpr struct{ E Expr }
	// CountExpr counts the elements of a vector field satisfying a
	// per-element comparison: count(Field Op Rhs). It evaluates to an
	// integer and, like max/min, may only appear as a whole comparison
	// side when compiled to SMT (expanded by subset enumeration).
	CountExpr struct {
		Field string
		Op    CmpOp
		Rhs   Expr
	}
)

func (*NumLit) isExpr()    {}
func (*FieldRef) isExpr()  {}
func (*VarRef) isExpr()    {}
func (*AggRef) isExpr()    {}
func (*BinExpr) isExpr()   {}
func (*NegExpr) isExpr()   {}
func (*CountExpr) isExpr() {}

// Node is a formula node in the rule language.
type Node interface {
	nodeString(*strings.Builder)
	isNode()
}

type (
	// CmpNode compares two expressions.
	CmpNode struct {
		Op   CmpOp
		L, R Expr
	}
	// AndNode is a conjunction.
	AndNode struct{ Kids []Node }
	// OrNode is a disjunction.
	OrNode struct{ Kids []Node }
	// NotNode is a negation.
	NotNode struct{ Kid Node }
	// ImpliesNode is antecedent -> consequent.
	ImpliesNode struct{ A, B Node }
	// QuantNode is forall/exists Var in Lo..Hi: Body.
	QuantNode struct {
		Forall bool
		Var    string
		Lo, Hi Expr
		Body   Node
	}
)

func (*CmpNode) isNode()     {}
func (*AndNode) isNode()     {}
func (*OrNode) isNode()      {}
func (*NotNode) isNode()     {}
func (*ImpliesNode) isNode() {}
func (*QuantNode) isNode()   {}

// Rule is one named rule.
type Rule struct {
	Name string
	Body Node
}

// String renders the rule in parseable DSL syntax.
func (r Rule) String() string {
	var b strings.Builder
	b.WriteString("rule ")
	b.WriteString(r.Name)
	b.WriteString(": ")
	r.Body.nodeString(&b)
	return b.String()
}

func (e *NumLit) exprString(b *strings.Builder) { fmt.Fprintf(b, "%d", e.V) }

func (e *FieldRef) exprString(b *strings.Builder) {
	b.WriteString(e.Name)
	if e.Index != nil {
		b.WriteString("[")
		e.Index.exprString(b)
		b.WriteString("]")
	}
}

func (e *VarRef) exprString(b *strings.Builder) { b.WriteString(e.Name) }

func (e *AggRef) exprString(b *strings.Builder) {
	fmt.Fprintf(b, "%s(%s)", e.Op, e.Field)
}

func (e *BinExpr) exprString(b *strings.Builder) {
	b.WriteString("(")
	e.L.exprString(b)
	fmt.Fprintf(b, " %c ", e.Op)
	e.R.exprString(b)
	b.WriteString(")")
}

func (e *CountExpr) exprString(b *strings.Builder) {
	fmt.Fprintf(b, "count(%s %s ", e.Field, e.Op)
	e.Rhs.exprString(b)
	b.WriteString(")")
}

func (e *NegExpr) exprString(b *strings.Builder) {
	b.WriteString("-")
	switch e.E.(type) {
	case *NumLit, *FieldRef, *VarRef, *AggRef:
		e.E.exprString(b)
	default:
		b.WriteString("(")
		e.E.exprString(b)
		b.WriteString(")")
	}
}

func (n *CmpNode) nodeString(b *strings.Builder) {
	n.L.exprString(b)
	fmt.Fprintf(b, " %s ", n.Op)
	n.R.exprString(b)
}

func (n *AndNode) nodeString(b *strings.Builder) {
	b.WriteString("(")
	for i, k := range n.Kids {
		if i > 0 {
			b.WriteString(" and ")
		}
		k.nodeString(b)
	}
	b.WriteString(")")
}

func (n *OrNode) nodeString(b *strings.Builder) {
	b.WriteString("(")
	for i, k := range n.Kids {
		if i > 0 {
			b.WriteString(" or ")
		}
		k.nodeString(b)
	}
	b.WriteString(")")
}

func (n *NotNode) nodeString(b *strings.Builder) {
	b.WriteString("not (")
	n.Kid.nodeString(b)
	b.WriteString(")")
}

func (n *ImpliesNode) nodeString(b *strings.Builder) {
	b.WriteString("(")
	n.A.nodeString(b)
	b.WriteString(" -> ")
	n.B.nodeString(b)
	b.WriteString(")")
}

// nodeString wraps the whole quantifier application in parentheses: the
// parser gives quantifier bodies greedy extent (they run to the next
// unmatched ')' or end of rule), so an unparenthesized rendering inside a
// disjunction would re-associate — and can even re-bind a sibling
// quantifier's variable into this body (see TestRenderParseEvalRoundTrip).
func (n *QuantNode) nodeString(b *strings.Builder) {
	if n.Forall {
		b.WriteString("(forall ")
	} else {
		b.WriteString("(exists ")
	}
	b.WriteString(n.Var)
	b.WriteString(" in ")
	n.Lo.exprString(b)
	b.WriteString("..")
	n.Hi.exprString(b)
	b.WriteString(": (")
	n.Body.nodeString(b)
	b.WriteString("))")
}

// ExprString renders an expression in DSL syntax.
func ExprString(e Expr) string {
	var b strings.Builder
	e.exprString(&b)
	return b.String()
}

// NodeString renders a formula node in DSL syntax.
func NodeString(n Node) string {
	var b strings.Builder
	n.nodeString(&b)
	return b.String()
}
