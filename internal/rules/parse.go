package rules

import (
	"fmt"
)

// RuleSet is a parsed collection of rules plus the constants they use, bound
// to a schema.
type RuleSet struct {
	Schema *Schema
	Consts map[string]int64
	Rules  []Rule
}

// ParseRuleSet parses DSL source against a schema. Constants must be declared
// before use; rule names must be unique; every field reference is checked
// against the schema (existence, scalar vs vector usage).
func ParseRuleSet(src string, schema *Schema) (*RuleSet, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{
		toks:   toks,
		schema: schema,
		rs:     &RuleSet{Schema: schema, Consts: map[string]int64{}},
	}
	if err := p.parseFile(); err != nil {
		return nil, err
	}
	return p.rs, nil
}

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks   []token
	pos    int
	schema *Schema
	rs     *RuleSet
	// loopVars tracks quantifier variables in scope during formula parsing.
	loopVars map[string]bool
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...any) error {
	t := p.cur()
	return fmt.Errorf("rules: line %d col %d: %s", t.line, t.col, fmt.Sprintf(format, args...))
}

func (p *parser) expect(kind tokKind, what string) (token, error) {
	if p.cur().kind != kind {
		return token{}, p.errf("expected %s, got %s", what, p.cur())
	}
	return p.next(), nil
}

func (p *parser) parseFile() error {
	names := map[string]bool{}
	for p.cur().kind != tEOF {
		switch p.cur().kind {
		case tConst:
			p.next()
			id, err := p.expect(tIdent, "constant name")
			if err != nil {
				return err
			}
			if _, err := p.expect(tAssign, "'='"); err != nil {
				return err
			}
			// Constant value: a constant-foldable expression.
			e, err := p.parseExpr()
			if err != nil {
				return err
			}
			v, ok := foldConst(e, p.rs.Consts)
			if !ok {
				return p.errf("constant %s must have a constant value", id.text)
			}
			if _, dup := p.rs.Consts[id.text]; dup {
				return p.errf("duplicate constant %s", id.text)
			}
			if _, isField := p.schema.Field(id.text); isField {
				return p.errf("constant %s shadows a schema field", id.text)
			}
			p.rs.Consts[id.text] = v
		case tRule:
			p.next()
			id, err := p.expect(tIdent, "rule name")
			if err != nil {
				return err
			}
			if names[id.text] {
				return p.errf("duplicate rule name %s", id.text)
			}
			names[id.text] = true
			if _, err := p.expect(tColon, "':'"); err != nil {
				return err
			}
			p.loopVars = map[string]bool{}
			body, err := p.parseFormula()
			if err != nil {
				return err
			}
			p.rs.Rules = append(p.rs.Rules, Rule{Name: id.text, Body: body})
		default:
			return p.errf("expected 'const' or 'rule', got %s", p.cur())
		}
	}
	return nil
}

// parseFormula: implication, right-associative, lowest precedence.
func (p *parser) parseFormula() (Node, error) {
	a, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tArrow {
		p.next()
		b, err := p.parseFormula()
		if err != nil {
			return nil, err
		}
		return &ImpliesNode{A: a, B: b}, nil
	}
	return a, nil
}

func (p *parser) parseOr() (Node, error) {
	a, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	kids := []Node{a}
	for p.cur().kind == tOr {
		p.next()
		b, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		kids = append(kids, b)
	}
	if len(kids) == 1 {
		return a, nil
	}
	return &OrNode{Kids: kids}, nil
}

func (p *parser) parseAnd() (Node, error) {
	a, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	kids := []Node{a}
	for p.cur().kind == tAnd {
		p.next()
		b, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		kids = append(kids, b)
	}
	if len(kids) == 1 {
		return a, nil
	}
	return &AndNode{Kids: kids}, nil
}

// parseUnary: 'not' formulas, quantifiers, parenthesized formulas, and
// comparisons.
func (p *parser) parseUnary() (Node, error) {
	switch p.cur().kind {
	case tNot:
		p.next()
		kid, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &NotNode{Kid: kid}, nil
	case tForall, tExists:
		return p.parseQuant()
	}
	return p.parseCmpOrParen()
}

func (p *parser) parseQuant() (Node, error) {
	forall := p.next().kind == tForall
	id, err := p.expect(tIdent, "loop variable")
	if err != nil {
		return nil, err
	}
	if p.loopVars[id.text] {
		return nil, p.errf("loop variable %s shadows an outer one", id.text)
	}
	if _, isField := p.schema.Field(id.text); isField {
		return nil, p.errf("loop variable %s shadows a schema field", id.text)
	}
	if _, isConst := p.rs.Consts[id.text]; isConst {
		return nil, p.errf("loop variable %s shadows a constant", id.text)
	}
	if _, err := p.expect(tIn, "'in'"); err != nil {
		return nil, err
	}
	lo, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tDotDot, "'..'"); err != nil {
		return nil, err
	}
	hi, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tColon, "':'"); err != nil {
		return nil, err
	}
	p.loopVars[id.text] = true
	body, err := p.parseFormula()
	p.loopVars[id.text] = false
	if err != nil {
		return nil, err
	}
	return &QuantNode{Forall: forall, Var: id.text, Lo: lo, Hi: hi, Body: body}, nil
}

// parseCmpOrParen handles '(' formula ')' disambiguation against '(' expr ')'
// by trying a comparison first when the parenthesized content is an
// expression, and also supports chained comparisons (a <= b <= c).
func (p *parser) parseCmpOrParen() (Node, error) {
	// A leading '(' could open either a sub-formula or an expression.
	// Strategy: attempt to parse an expression followed by a comparison;
	// on failure at the formula level, backtrack and parse a formula.
	if p.cur().kind == tLParen {
		save := p.pos
		if n, err := p.tryParenFormula(); err == nil {
			return n, nil
		}
		p.pos = save
	}
	return p.parseCmp()
}

// tryParenFormula parses '(' formula ')' where the content is genuinely a
// formula (contains a comparison or logical operator).
func (p *parser) tryParenFormula() (Node, error) {
	if _, err := p.expect(tLParen, "'('"); err != nil {
		return nil, err
	}
	n, err := p.parseFormula()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tRParen, "')'"); err != nil {
		return nil, err
	}
	// A parenthesized formula must not be followed by an arithmetic or
	// comparison operator — that means the '(...)' was an expression.
	switch p.cur().kind {
	case tPlus, tMinus, tStar, tSlash, tLE, tLT, tGE, tGT, tEQ, tNE, tLBracket:
		return nil, fmt.Errorf("rules: parenthesized expression, not formula")
	}
	return n, nil
}

func cmpFromTok(k tokKind) (CmpOp, bool) {
	switch k {
	case tLE:
		return CmpLE, true
	case tLT:
		return CmpLT, true
	case tGE:
		return CmpGE, true
	case tGT:
		return CmpGT, true
	case tEQ:
		return CmpEQ, true
	case tNE:
		return CmpNE, true
	}
	return 0, false
}

// parseCmp parses expr (op expr)+ with chaining: a <= b <= c becomes
// (a <= b) and (b <= c).
func (p *parser) parseCmp() (Node, error) {
	l, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	op, ok := cmpFromTok(p.cur().kind)
	if !ok {
		return nil, p.errf("expected comparison operator, got %s", p.cur())
	}
	p.next()
	r, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	kids := []Node{&CmpNode{Op: op, L: l, R: r}}
	for {
		op2, ok := cmpFromTok(p.cur().kind)
		if !ok {
			break
		}
		p.next()
		r2, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		kids = append(kids, &CmpNode{Op: op2, L: r, R: r2})
		r = r2
	}
	if len(kids) == 1 {
		return kids[0], nil
	}
	return &AndNode{Kids: kids}, nil
}

func (p *parser) parseExpr() (Expr, error) {
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tPlus || p.cur().kind == tMinus {
		op := byte('+')
		if p.cur().kind == tMinus {
			op = '-'
		}
		p.next()
		r, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseTerm() (Expr, error) {
	l, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tStar || p.cur().kind == tSlash {
		op := byte('*')
		if p.cur().kind == tSlash {
			op = '/'
		}
		p.next()
		r, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseFactor() (Expr, error) {
	switch t := p.cur(); t.kind {
	case tInt:
		p.next()
		return &NumLit{V: t.num}, nil
	case tMinus:
		p.next()
		e, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return &NegExpr{E: e}, nil
	case tLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	case tCount:
		p.next()
		if _, err := p.expect(tLParen, "'('"); err != nil {
			return nil, err
		}
		id, err := p.expect(tIdent, "vector field name")
		if err != nil {
			return nil, err
		}
		f, ok := p.schema.Field(id.text)
		if !ok {
			return nil, p.errf("unknown field %s in count", id.text)
		}
		if f.Kind != Vector {
			return nil, p.errf("count over scalar field %s", id.text)
		}
		op, ok := cmpFromTok(p.cur().kind)
		if !ok {
			return nil, p.errf("expected comparison operator in count, got %s", p.cur())
		}
		p.next()
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen, "')'"); err != nil {
			return nil, err
		}
		return &CountExpr{Field: id.text, Op: op, Rhs: rhs}, nil
	case tSum, tMax, tMin:
		p.next()
		var op AggOp
		switch t.kind {
		case tSum:
			op = AggSum
		case tMax:
			op = AggMax
		case tMin:
			op = AggMin
		}
		if _, err := p.expect(tLParen, "'('"); err != nil {
			return nil, err
		}
		id, err := p.expect(tIdent, "vector field name")
		if err != nil {
			return nil, err
		}
		f, ok := p.schema.Field(id.text)
		if !ok {
			return nil, p.errf("unknown field %s in aggregate", id.text)
		}
		if f.Kind != Vector {
			return nil, p.errf("aggregate %s over scalar field %s", op, id.text)
		}
		if _, err := p.expect(tRParen, "')'"); err != nil {
			return nil, err
		}
		return &AggRef{Op: op, Field: id.text}, nil
	case tIdent:
		p.next()
		if p.loopVars[t.text] {
			return &VarRef{Name: t.text}, nil
		}
		if v, isConst := p.rs.Consts[t.text]; isConst {
			return &NumLit{V: v}, nil
		}
		f, isField := p.schema.Field(t.text)
		if !isField {
			return nil, p.errf("unknown identifier %s", t.text)
		}
		if p.cur().kind == tLBracket {
			if f.Kind != Vector {
				return nil, p.errf("indexing scalar field %s", t.text)
			}
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tRBracket, "']'"); err != nil {
				return nil, err
			}
			return &FieldRef{Name: t.text, Index: idx}, nil
		}
		if f.Kind == Vector {
			return nil, p.errf("vector field %s used without index or aggregate", t.text)
		}
		return &FieldRef{Name: t.text}, nil
	}
	return nil, p.errf("expected expression, got %s", p.cur())
}

// foldConst evaluates an expression that references only literals and
// already-declared constants.
func foldConst(e Expr, consts map[string]int64) (int64, bool) {
	switch g := e.(type) {
	case *NumLit:
		return g.V, true
	case *NegExpr:
		v, ok := foldConst(g.E, consts)
		return -v, ok
	case *BinExpr:
		l, ok1 := foldConst(g.L, consts)
		r, ok2 := foldConst(g.R, consts)
		if !ok1 || !ok2 {
			return 0, false
		}
		switch g.Op {
		case '+':
			return l + r, true
		case '-':
			return l - r, true
		case '*':
			return l * r, true
		case '/':
			if r == 0 {
				return 0, false
			}
			// Floor division, matching the solver's integer semantics.
			q := l / r
			if l%r != 0 && (l < 0) != (r < 0) {
				q--
			}
			return q, true
		}
	}
	return 0, false
}
