package rules

import (
	"strings"
	"testing"
)

// FuzzParseRuleSet hammers the DSL front end: arbitrary input must either
// parse cleanly or return an error — never panic — and anything that parses
// must render back to text that parses again.
func FuzzParseRuleSet(f *testing.F) {
	seeds := []string{
		"",
		"rule r: sum(I) == TotalIngress",
		"const BW = 60\nrule r1: forall t in 0..4: 0 <= I[t] <= BW",
		"rule r3: Congestion > 0 -> max(I) >= 30",
		"rule c: count(I >= 30) <= 2",
		"rule e: exists t in 0..4: I[t] >= 30 or I[t] == 0",
		"rule n: not (min(I) < 2) and (TotalIngress + 10) * 2 >= 120",
		"rule bad: ((((",
		"const = rule",
		"rule r: I[",
		"rule r: forall forall",
		"rule r: 1/0 > 2",
		"# only a comment",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	schema := MustSchema(
		Field{Name: "I", Kind: Vector, Len: 5, Lo: 0, Hi: 60},
		Field{Name: "TotalIngress", Kind: Scalar, Lo: 0, Hi: 300},
		Field{Name: "Congestion", Kind: Scalar, Lo: 0, Hi: 100},
	)
	f.Fuzz(func(t *testing.T, src string) {
		rs, err := ParseRuleSet(src, schema)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Round trip: rendered output must re-parse.
		text := rs.String()
		rs2, err := ParseRuleSet(text, schema)
		if err != nil {
			t.Fatalf("accepted input renders unparseable text:\ninput: %q\nrendered: %q\nerr: %v", src, text, err)
		}
		if rs2.Len() != rs.Len() {
			t.Fatalf("rule count changed through render/parse: %d -> %d", rs.Len(), rs2.Len())
		}
		// Every accepted rule must evaluate without panicking on a
		// well-formed record.
		rec := Record{"I": {1, 2, 3, 4, 5}, "TotalIngress": {15}, "Congestion": {0}}
		for _, r := range rs.Rules {
			if _, err := rs.Eval(r, rec); err != nil && !strings.Contains(err.Error(), "division by zero") &&
				!strings.Contains(err.Error(), "out of range") {
				t.Fatalf("accepted rule fails evaluation: %v (%s)", err, r)
			}
		}
	})
}
