package rules

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/smt"
)

func TestParseCount(t *testing.T) {
	schema := paperSchema(t)
	rs, err := ParseRuleSet("rule bursts: count(I >= 30) <= 2", schema)
	if err != nil {
		t.Fatal(err)
	}
	if got := rs.Rules[0].String(); !strings.Contains(got, "count(I >= 30)") {
		t.Errorf("rendered rule %q", got)
	}
	// Round-trip through the renderer.
	if _, err := ParseRuleSet(rs.String(), schema); err != nil {
		t.Fatalf("re-parse: %v\n%s", err, rs.String())
	}
}

func TestParseCountErrors(t *testing.T) {
	schema := paperSchema(t)
	cases := []struct{ src, want string }{
		{"rule r: count(Congestion >= 1) <= 2", "count over scalar"},
		{"rule r: count(Missing >= 1) <= 2", "unknown field"},
		{"rule r: count(I) <= 2", "expected comparison operator"},
		{"rule r: count(I >= 30) + 1 <= 2", ""}, // parses; compile must reject
	}
	for _, c := range cases {
		rs, err := ParseRuleSet(c.src, schema)
		if c.want == "" {
			if err != nil {
				t.Fatalf("%s: unexpected parse error %v", c.src, err)
			}
			s, b := compileEnv(t, schema)
			_ = s
			if _, err := rs.Compile(rs.Rules[0], b); err == nil {
				t.Errorf("%s: count in arithmetic should not compile", c.src)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err %v, want %q", c.src, err, c.want)
		}
	}
}

func TestEvalCount(t *testing.T) {
	schema := paperSchema(t)
	rec := Record{"I": {35, 10, 40, 29, 30}, "TotalIngress": {144}, "Congestion": {5}}
	cases := []struct {
		src string
		ok  bool
	}{
		{"rule r: count(I >= 30) == 3", true},
		{"rule r: count(I >= 30) <= 2", false},
		{"rule r: count(I < 30) == 2", true},
		{"rule r: count(I == 10) == 1", true},
		{"rule r: count(I != 10) == 4", true},
		{"rule r: count(I > 29) >= 3", true},
		{"rule r: 3 == count(I >= 30)", true}, // flipped side
	}
	for _, c := range cases {
		rs, err := ParseRuleSet(c.src, schema)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		got, err := rs.Eval(rs.Rules[0], rec)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		if got != c.ok {
			t.Errorf("%s = %v, want %v", c.src, got, c.ok)
		}
	}
}

// TestCountEvalAgreesWithSMT is the semantic-agreement property for count.
func TestCountEvalAgreesWithSMT(t *testing.T) {
	schema := MustSchema(
		Field{Name: "X", Kind: Vector, Len: 4, Lo: 0, Hi: 5},
		Field{Name: "S", Kind: Scalar, Lo: 0, Hi: 20},
	)
	srcs := []string{
		"rule r: count(X >= 3) <= 2",
		"rule r: count(X >= 3) >= 1",
		"rule r: count(X > 2) == 2",
		"rule r: count(X <= 1) < 3",
		"rule r: count(X != 0) > 1",
		"rule r: S > 10 -> count(X >= 4) >= 1",
		"rule r: count(X >= S - 15) >= 2", // variable inner threshold
	}
	rng := rand.New(rand.NewSource(77))
	for _, src := range srcs {
		rs, err := ParseRuleSet(src, schema)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		for trial := 0; trial < 30; trial++ {
			rec := Record{
				"X": {int64(rng.Intn(6)), int64(rng.Intn(6)), int64(rng.Intn(6)), int64(rng.Intn(6))},
				"S": {int64(rng.Intn(21))},
			}
			want, err := rs.Eval(rs.Rules[0], rec)
			if err != nil {
				t.Fatal(err)
			}
			s := smt.NewSolver()
			b := Instantiate(s, schema)
			f, err := rs.Compile(rs.Rules[0], b)
			if err != nil {
				t.Fatalf("%s: %v", src, err)
			}
			s.Assert(pinRecord(b, rec))
			r := s.CheckWith(f)
			if (r.Status == smt.Sat) != want {
				t.Errorf("%s on %v: eval=%v smt=%v", src, rec, want, r.Status)
			}
		}
	}
}

// TestCountGuidesGeneration verifies count rules constrain the feasible set
// the way LeJIT needs: with count(X >= 3) == 0 asserted, no element may
// reach 3.
func TestCountGuidesGeneration(t *testing.T) {
	schema := MustSchema(Field{Name: "X", Kind: Vector, Len: 3, Lo: 0, Hi: 9})
	rs, err := ParseRuleSet("rule r: count(X >= 3) == 0", schema)
	if err != nil {
		t.Fatal(err)
	}
	s := smt.NewSolver()
	b := Instantiate(s, schema)
	f, err := rs.Compile(rs.Rules[0], b)
	if err != nil {
		t.Fatal(err)
	}
	s.Assert(f)
	xs, _ := b.Vars("X")
	lo, hi, st := s.FeasibleRange(smt.V(xs[1]))
	if st != smt.Sat || lo != 0 || hi != 2 {
		t.Errorf("X[1] range [%d,%d] (%v), want [0,2]", lo, hi, st)
	}
}

func TestBinomTooBig(t *testing.T) {
	if binomTooBig(5, 2, 10000) {
		t.Error("C(5,2)=10 flagged as too big")
	}
	if !binomTooBig(40, 20, 10000) {
		t.Error("C(40,20) not flagged")
	}
	if binomTooBig(20, 0, 1) {
		t.Error("C(n,0)=1 flagged")
	}
}
