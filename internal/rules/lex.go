package rules

import (
	"fmt"
	"strconv"
	"unicode"
)

// tokKind enumerates lexical token kinds of the rule DSL.
type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tInt
	tLParen
	tRParen
	tLBracket
	tRBracket
	tColon
	tComma
	tDotDot
	tPlus
	tMinus
	tStar
	tSlash
	tLE
	tLT
	tGE
	tGT
	tEQ
	tNE
	tArrow
	tAssign // '=' in const declarations
	// keywords
	tAnd
	tOr
	tNot
	tForall
	tExists
	tIn
	tSum
	tMax
	tMin
	tCount
	tConst
	tRule
)

var keywords = map[string]tokKind{
	"and":    tAnd,
	"or":     tOr,
	"not":    tNot,
	"forall": tForall,
	"exists": tExists,
	"in":     tIn,
	"sum":    tSum,
	"max":    tMax,
	"min":    tMin,
	"count":  tCount,
	"const":  tConst,
	"rule":   tRule,
}

// token is one lexical token with position info for error messages.
type token struct {
	kind tokKind
	text string
	num  int64
	line int
	col  int
}

func (t token) String() string {
	if t.kind == tEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lex tokenizes src. Comments run from '#' to end of line.
func lex(src string) ([]token, error) {
	var toks []token
	line, col := 1, 1
	i := 0
	emit := func(kind tokKind, text string) {
		toks = append(toks, token{kind: kind, text: text, line: line, col: col})
		col += len(text)
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			col = 1
			i++
		case c == ' ' || c == '\t' || c == '\r':
			col++
			i++
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c >= '0' && c <= '9':
			j := i
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			text := src[i:j]
			n, err := strconv.ParseInt(text, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("rules: line %d: bad integer %q: %v", line, text, err)
			}
			toks = append(toks, token{kind: tInt, text: text, num: n, line: line, col: col})
			col += len(text)
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < len(src) && isIdentPart(rune(src[j])) {
				j++
			}
			text := src[i:j]
			kind, isKw := keywords[text]
			if !isKw {
				kind = tIdent
			}
			emit(kind, text)
			i = j
		default:
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch two {
			case "<=":
				emit(tLE, two)
				i += 2
				continue
			case ">=":
				emit(tGE, two)
				i += 2
				continue
			case "==":
				emit(tEQ, two)
				i += 2
				continue
			case "!=":
				emit(tNE, two)
				i += 2
				continue
			case "->":
				emit(tArrow, two)
				i += 2
				continue
			case "..":
				emit(tDotDot, two)
				i += 2
				continue
			}
			switch c {
			case '(':
				emit(tLParen, "(")
			case ')':
				emit(tRParen, ")")
			case '[':
				emit(tLBracket, "[")
			case ']':
				emit(tRBracket, "]")
			case ':':
				emit(tColon, ":")
			case ',':
				emit(tComma, ",")
			case '+':
				emit(tPlus, "+")
			case '-':
				emit(tMinus, "-")
			case '*':
				emit(tStar, "*")
			case '/':
				emit(tSlash, "/")
			case '<':
				emit(tLT, "<")
			case '>':
				emit(tGT, ">")
			case '=':
				emit(tAssign, "=")
			default:
				return nil, fmt.Errorf("rules: line %d col %d: unexpected character %q", line, col, string(c))
			}
			i++
		}
	}
	toks = append(toks, token{kind: tEOF, line: line, col: col})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
