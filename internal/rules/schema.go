// Package rules implements LeJIT's network-rule language: a small DSL in
// which operators (or the automatic miner) express domain constraints such as
// the paper's R1–R3, plus a compiler that turns rules into smt.Formula values
// and a concrete evaluator used for violation checking.
//
// Example rule file (the paper's §2.1 telemetry-imputation rules):
//
//	const BW = 60
//	const T  = 5
//
//	rule r1: forall t in 0..T-1: 0 <= I[t] and I[t] <= BW
//	rule r2: sum(I) == TotalIngress
//	rule r3: Congestion > 0 -> max(I) >= BW/2
//
// Rules are written against a Schema that declares each telemetry field,
// its shape (scalar or fixed-length vector), and its finite integer domain.
package rules

import (
	"fmt"
	"sort"
)

// FieldKind distinguishes scalar fields (one value per record, e.g.
// TotalIngress) from vector fields (a fixed-length time series per record,
// e.g. the fine-grained ingress I[0..T-1]).
type FieldKind int

const (
	// Scalar is a single-value field.
	Scalar FieldKind = iota
	// Vector is a fixed-length time-indexed field.
	Vector
)

// Field declares one telemetry field.
type Field struct {
	Name string
	Kind FieldKind
	// Len is the vector length; 1 for scalars.
	Len int
	// Lo, Hi bound every element's value (inclusive). Finite bounds are
	// required: they make the SMT solver complete (DESIGN.md §4).
	Lo, Hi int64
}

// Schema is an ordered collection of fields describing one record shape.
type Schema struct {
	fields []Field
	index  map[string]int
}

// NewSchema builds a schema from the given fields. It returns an error on
// duplicate names, non-positive lengths, or empty domains.
func NewSchema(fields ...Field) (*Schema, error) {
	s := &Schema{index: make(map[string]int, len(fields))}
	for _, f := range fields {
		if f.Name == "" {
			return nil, fmt.Errorf("rules: field with empty name")
		}
		if _, dup := s.index[f.Name]; dup {
			return nil, fmt.Errorf("rules: duplicate field %q", f.Name)
		}
		if f.Kind == Scalar {
			f.Len = 1
		}
		if f.Len < 1 {
			return nil, fmt.Errorf("rules: field %q has length %d", f.Name, f.Len)
		}
		if f.Lo > f.Hi {
			return nil, fmt.Errorf("rules: field %q has empty domain [%d,%d]", f.Name, f.Lo, f.Hi)
		}
		s.index[f.Name] = len(s.fields)
		s.fields = append(s.fields, f)
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for statically-known schemas.
func MustSchema(fields ...Field) *Schema {
	s, err := NewSchema(fields...)
	if err != nil {
		panic(err)
	}
	return s
}

// Field looks a field up by name.
func (s *Schema) Field(name string) (Field, bool) {
	i, ok := s.index[name]
	if !ok {
		return Field{}, false
	}
	return s.fields[i], true
}

// Fields returns the fields in declaration order.
func (s *Schema) Fields() []Field { return append([]Field(nil), s.fields...) }

// NumValues is the total number of integer values in one record
// (Σ field lengths).
func (s *Schema) NumValues() int {
	n := 0
	for _, f := range s.fields {
		n += f.Len
	}
	return n
}

// Record holds one concrete record: field name → values (length 1 for
// scalars, Field.Len for vectors).
type Record map[string][]int64

// Validate checks that rec matches the schema's shapes and domains.
func (s *Schema) Validate(rec Record) error {
	for _, f := range s.fields {
		vs, ok := rec[f.Name]
		if !ok {
			return fmt.Errorf("rules: record missing field %q", f.Name)
		}
		if len(vs) != f.Len {
			return fmt.Errorf("rules: field %q has %d values, want %d", f.Name, len(vs), f.Len)
		}
		for i, v := range vs {
			if v < f.Lo || v > f.Hi {
				return fmt.Errorf("rules: %s[%d] = %d outside [%d,%d]", f.Name, i, v, f.Lo, f.Hi)
			}
		}
	}
	for name := range rec {
		if _, ok := s.index[name]; !ok {
			return fmt.Errorf("rules: record has unknown field %q", name)
		}
	}
	return nil
}

// Clone deep-copies a record.
func (r Record) Clone() Record {
	out := make(Record, len(r))
	for k, v := range r {
		out[k] = append([]int64(nil), v...)
	}
	return out
}

// FieldNames returns the record's field names sorted for deterministic
// iteration.
func (r Record) FieldNames() []string {
	names := make([]string, 0, len(r))
	for k := range r {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
