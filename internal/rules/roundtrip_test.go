package rules

import (
	"math/rand"
	"testing"
)

// randExprGen builds random DSL expressions over a fixed schema.
type randGen struct {
	rng *rand.Rand
}

func (g *randGen) expr(depth int, loopVar string) Expr {
	if depth == 0 {
		switch g.rng.Intn(4) {
		case 0:
			return &NumLit{V: int64(g.rng.Intn(21) - 10)}
		case 1:
			return &FieldRef{Name: "S"}
		case 2:
			if loopVar != "" {
				return &FieldRef{Name: "X", Index: &VarRef{Name: loopVar}}
			}
			return &FieldRef{Name: "X", Index: &NumLit{V: int64(g.rng.Intn(3))}}
		default:
			return &AggRef{Op: AggSum, Field: "X"}
		}
	}
	switch g.rng.Intn(4) {
	case 0:
		return &BinExpr{Op: '+', L: g.expr(depth-1, loopVar), R: g.expr(depth-1, loopVar)}
	case 1:
		return &BinExpr{Op: '-', L: g.expr(depth-1, loopVar), R: g.expr(depth-1, loopVar)}
	case 2:
		return &BinExpr{Op: '*', L: &NumLit{V: int64(g.rng.Intn(4) - 1)}, R: g.expr(depth-1, loopVar)}
	default:
		return &NegExpr{E: g.expr(depth-1, loopVar)}
	}
}

func (g *randGen) node(depth int, loopVar string) Node {
	if depth == 0 {
		ops := []CmpOp{CmpLE, CmpLT, CmpGE, CmpGT, CmpEQ, CmpNE}
		switch g.rng.Intn(5) {
		case 0:
			return &CmpNode{Op: ops[g.rng.Intn(6)],
				L: &AggRef{Op: AggMax, Field: "X"}, R: g.expr(0, "")}
		case 1:
			return &CmpNode{Op: ops[g.rng.Intn(6)],
				L: &AggRef{Op: AggMin, Field: "X"}, R: g.expr(0, "")}
		case 2:
			return &CmpNode{Op: ops[g.rng.Intn(6)],
				L: &CountExpr{Field: "X", Op: ops[g.rng.Intn(6)], Rhs: &NumLit{V: int64(g.rng.Intn(10))}},
				R: &NumLit{V: int64(g.rng.Intn(4))}}
		default:
			return &CmpNode{Op: ops[g.rng.Intn(6)], L: g.expr(1, loopVar), R: g.expr(1, loopVar)}
		}
	}
	switch g.rng.Intn(6) {
	case 0:
		return &AndNode{Kids: []Node{g.node(depth-1, loopVar), g.node(depth-1, loopVar)}}
	case 1:
		return &OrNode{Kids: []Node{g.node(depth-1, loopVar), g.node(depth-1, loopVar)}}
	case 2:
		return &NotNode{Kid: g.node(depth-1, loopVar)}
	case 3:
		return &ImpliesNode{A: g.node(depth-1, loopVar), B: g.node(depth-1, loopVar)}
	case 4:
		if loopVar == "" {
			v := "t"
			return &QuantNode{Forall: g.rng.Intn(2) == 0, Var: v,
				Lo: &NumLit{V: 0}, Hi: &NumLit{V: 2}, Body: g.node(depth-1, v)}
		}
		return g.node(depth-1, loopVar)
	default:
		return g.node(depth-1, loopVar)
	}
}

// TestRenderParseEvalRoundTrip generates random rule ASTs, renders them to
// DSL text, re-parses, and verifies the parsed rule evaluates identically on
// random records — the grammar/renderer/evaluator coherence property.
func TestRenderParseEvalRoundTrip(t *testing.T) {
	schema := MustSchema(
		Field{Name: "X", Kind: Vector, Len: 3, Lo: 0, Hi: 9},
		Field{Name: "S", Kind: Scalar, Lo: 0, Hi: 30},
	)
	g := &randGen{rng: rand.New(rand.NewSource(101))}
	for trial := 0; trial < 200; trial++ {
		orig := Rule{Name: "r", Body: g.node(2, "")}
		text := orig.String()
		rs, err := ParseRuleSet(text, schema)
		if err != nil {
			t.Fatalf("trial %d: rendered rule does not parse: %v\n%s", trial, err, text)
		}
		origSet := &RuleSet{Schema: schema, Consts: map[string]int64{}, Rules: []Rule{orig}}
		for rec := 0; rec < 10; rec++ {
			r := Record{
				"X": {int64(g.rng.Intn(10)), int64(g.rng.Intn(10)), int64(g.rng.Intn(10))},
				"S": {int64(g.rng.Intn(31))},
			}
			want, err := origSet.Eval(orig, r)
			if err != nil {
				t.Fatalf("trial %d: eval original: %v\n%s", trial, err, text)
			}
			got, err := rs.Eval(rs.Rules[0], r)
			if err != nil {
				t.Fatalf("trial %d: eval parsed: %v\n%s", trial, err, text)
			}
			if got != want {
				t.Fatalf("trial %d: semantics changed through render/parse on %v:\n%s", trial, r, text)
			}
		}
	}
}
