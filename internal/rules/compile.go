package rules

import (
	"fmt"

	"repro/internal/smt"
)

// Binding maps schema fields to the SMT variables representing one record
// instance. Create one with Instantiate, or assemble manually with Bind.
type Binding struct {
	vars map[string][]smt.Var
}

// NewBinding returns an empty binding.
func NewBinding() *Binding {
	return &Binding{vars: map[string][]smt.Var{}}
}

// Bind associates a field with its per-element solver variables.
func (b *Binding) Bind(field string, vars []smt.Var) {
	b.vars[field] = vars
}

// Vars returns the solver variables of a field.
func (b *Binding) Vars(field string) ([]smt.Var, bool) {
	vs, ok := b.vars[field]
	return vs, ok
}

// Instantiate declares one solver variable per schema field element, with the
// field's domain, and returns the binding. Variable names are "Field" for
// scalars and "Field[i]" for vector elements.
func Instantiate(s *smt.Solver, schema *Schema) *Binding {
	b := NewBinding()
	for _, f := range schema.Fields() {
		vs := make([]smt.Var, f.Len)
		for i := range vs {
			name := f.Name
			if f.Kind == Vector {
				name = fmt.Sprintf("%s[%d]", f.Name, i)
			}
			vs[i] = s.NewVar(name, f.Lo, f.Hi)
		}
		b.Bind(f.Name, vs)
	}
	return b
}

// Compile lowers a rule body to an smt.Formula over the binding's variables.
func (rs *RuleSet) Compile(r Rule, b *Binding) (smt.Formula, error) {
	c := &compiler{rs: rs, b: b, env: map[string]int64{}}
	return c.node(r.Body)
}

// CompileAll compiles every rule and returns the conjunction. Rule order is
// preserved; the first compile error aborts.
func (rs *RuleSet) CompileAll(b *Binding) (smt.Formula, error) {
	fs := make([]smt.Formula, 0, len(rs.Rules))
	for _, r := range rs.Rules {
		f, err := rs.Compile(r, b)
		if err != nil {
			return nil, fmt.Errorf("rule %s: %w", r.Name, err)
		}
		fs = append(fs, f)
	}
	return smt.And(fs...), nil
}

type compiler struct {
	rs  *RuleSet
	b   *Binding
	env map[string]int64 // quantifier loop variables
}

func (c *compiler) node(n Node) (smt.Formula, error) {
	switch g := n.(type) {
	case *CmpNode:
		return c.cmp(g)
	case *AndNode:
		fs := make([]smt.Formula, len(g.Kids))
		for i, k := range g.Kids {
			f, err := c.node(k)
			if err != nil {
				return nil, err
			}
			fs[i] = f
		}
		return smt.And(fs...), nil
	case *OrNode:
		fs := make([]smt.Formula, len(g.Kids))
		for i, k := range g.Kids {
			f, err := c.node(k)
			if err != nil {
				return nil, err
			}
			fs[i] = f
		}
		return smt.Or(fs...), nil
	case *NotNode:
		f, err := c.node(g.Kid)
		if err != nil {
			return nil, err
		}
		return smt.Not(f), nil
	case *ImpliesNode:
		a, err := c.node(g.A)
		if err != nil {
			return nil, err
		}
		b, err := c.node(g.B)
		if err != nil {
			return nil, err
		}
		return smt.Implies(a, b), nil
	case *QuantNode:
		lo, err := c.constExpr(g.Lo)
		if err != nil {
			return nil, fmt.Errorf("quantifier lower bound: %w", err)
		}
		hi, err := c.constExpr(g.Hi)
		if err != nil {
			return nil, fmt.Errorf("quantifier upper bound: %w", err)
		}
		var fs []smt.Formula
		for t := lo; t <= hi; t++ {
			c.env[g.Var] = t
			f, err := c.node(g.Body)
			if err != nil {
				delete(c.env, g.Var)
				return nil, err
			}
			fs = append(fs, f)
		}
		delete(c.env, g.Var)
		if g.Forall {
			return smt.And(fs...), nil
		}
		return smt.Or(fs...), nil
	}
	return nil, fmt.Errorf("unknown node %T", n)
}

// cmp compiles a comparison, expanding max/min/count aggregates per
// DESIGN.md.
func (c *compiler) cmp(g *CmpNode) (smt.Formula, error) {
	lCnt, lIsCnt := g.L.(*CountExpr)
	rCnt, rIsCnt := g.R.(*CountExpr)
	l, lAgg := extremeAgg(g.L)
	r, rAgg := extremeAgg(g.R)
	switch {
	case (lAgg || lIsCnt) && (rAgg || rIsCnt):
		return nil, fmt.Errorf("comparison between two aggregates is not supported")
	case lIsCnt:
		return c.expandCount(lCnt, g.Op, g.R)
	case rIsCnt:
		return c.expandCount(rCnt, g.Op.flip(), g.L)
	case lAgg:
		rhs, err := c.expr(g.R)
		if err != nil {
			return nil, err
		}
		return c.expandExtreme(l, g.Op, rhs)
	case rAgg:
		lhs, err := c.expr(g.L)
		if err != nil {
			return nil, err
		}
		return c.expandExtreme(r, g.Op.flip(), lhs)
	}
	lhs, err := c.expr(g.L)
	if err != nil {
		return nil, err
	}
	rhs, err := c.expr(g.R)
	if err != nil {
		return nil, err
	}
	return cmpFormula(g.Op, lhs, rhs), nil
}

// expandCount compiles count(Field innerOp innerRhs) op k by subset
// enumeration: "at least k elements satisfy P" becomes a disjunction over
// the k-subsets of conjunctions of P. The comparison bound k must fold to a
// constant; the inner threshold may reference other variables. Expansion is
// exponential in the vector length and guarded accordingly — fine for
// telemetry-window vectors, wrong tool for length-1000 series.
func (c *compiler) expandCount(ce *CountExpr, op CmpOp, bound Expr) (smt.Formula, error) {
	vs, ok := c.b.Vars(ce.Field)
	if !ok {
		return nil, fmt.Errorf("field %s not bound", ce.Field)
	}
	k, err := c.constExpr(bound)
	if err != nil {
		return nil, fmt.Errorf("count comparison bound must be constant: %w", err)
	}
	inner, err := c.expr(ce.Rhs)
	if err != nil {
		return nil, err
	}
	elem := make([]smt.Formula, len(vs))
	for t, v := range vs {
		elem[t] = cmpFormula(ce.Op, smt.V(v), inner)
	}
	atLeast := func(k int64) (smt.Formula, error) {
		n := int64(len(elem))
		if k <= 0 {
			return smt.True, nil
		}
		if k > n {
			return smt.False, nil
		}
		if binomTooBig(len(elem), int(k), 10000) {
			return nil, fmt.Errorf("count expansion over %d choose %d is too large", n, k)
		}
		var alts []smt.Formula
		subset := make([]int, k)
		var rec func(start int, depth int64) // enumerate k-subsets
		rec = func(start int, depth int64) {
			if depth == k {
				conj := make([]smt.Formula, k)
				for i, t := range subset {
					conj[i] = elem[t]
				}
				alts = append(alts, smt.And(conj...))
				return
			}
			for t := start; int64(len(elem))-int64(t) >= k-depth; t++ {
				subset[depth] = t
				rec(t+1, depth+1)
			}
		}
		rec(0, 0)
		return smt.Or(alts...), nil
	}

	switch op {
	case CmpGE:
		return atLeast(k)
	case CmpGT:
		return atLeast(k + 1)
	case CmpLE:
		f, err := atLeast(k + 1)
		if err != nil {
			return nil, err
		}
		return smt.Not(f), nil
	case CmpLT:
		f, err := atLeast(k)
		if err != nil {
			return nil, err
		}
		return smt.Not(f), nil
	case CmpEQ:
		ge, err := atLeast(k)
		if err != nil {
			return nil, err
		}
		gt, err := atLeast(k + 1)
		if err != nil {
			return nil, err
		}
		return smt.And(ge, smt.Not(gt)), nil
	case CmpNE:
		eq, err := c.expandCount(ce, CmpEQ, bound)
		if err != nil {
			return nil, err
		}
		return smt.Not(eq), nil
	}
	return nil, fmt.Errorf("bad comparison op")
}

// binomTooBig reports whether C(n, k) exceeds limit.
func binomTooBig(n, k, limit int) bool {
	if k > n-k {
		k = n - k
	}
	c := 1
	for i := 0; i < k; i++ {
		c = c * (n - i) / (i + 1)
		if c > limit {
			return true
		}
	}
	return false
}

// extremeAgg reports whether e is a bare max/min aggregate.
func extremeAgg(e Expr) (*AggRef, bool) {
	a, ok := e.(*AggRef)
	if ok && (a.Op == AggMax || a.Op == AggMin) {
		return a, true
	}
	return nil, false
}

func cmpFormula(op CmpOp, l, r smt.LinExpr) smt.Formula {
	switch op {
	case CmpLE:
		return smt.Le(l, r)
	case CmpLT:
		return smt.Lt(l, r)
	case CmpGE:
		return smt.Ge(l, r)
	case CmpGT:
		return smt.Gt(l, r)
	case CmpEQ:
		return smt.Eq(l, r)
	case CmpNE:
		return smt.Ne(l, r)
	}
	panic("rules: bad CmpOp")
}

// expandExtreme compiles max(X) op rhs (or min(X) op rhs):
//
//	max(X) ≥ e  ⟺  ∃t: X[t] ≥ e          max(X) ≤ e  ⟺  ∀t: X[t] ≤ e
//	min(X) ≤ e  ⟺  ∃t: X[t] ≤ e          min(X) ≥ e  ⟺  ∀t: X[t] ≥ e
//	max(X) = e  ⟺  (∀t: X[t] ≤ e) ∧ (∃t: X[t] = e), min symmetric.
func (c *compiler) expandExtreme(a *AggRef, op CmpOp, rhs smt.LinExpr) (smt.Formula, error) {
	vs, ok := c.b.Vars(a.Field)
	if !ok {
		return nil, fmt.Errorf("field %s not bound", a.Field)
	}
	exists := func(op CmpOp) smt.Formula {
		fs := make([]smt.Formula, len(vs))
		for i, v := range vs {
			fs[i] = cmpFormula(op, smt.V(v), rhs)
		}
		return smt.Or(fs...)
	}
	all := func(op CmpOp) smt.Formula {
		fs := make([]smt.Formula, len(vs))
		for i, v := range vs {
			fs[i] = cmpFormula(op, smt.V(v), rhs)
		}
		return smt.And(fs...)
	}
	isMax := a.Op == AggMax
	switch op {
	case CmpGE:
		if isMax {
			return exists(CmpGE), nil
		}
		return all(CmpGE), nil
	case CmpGT:
		if isMax {
			return exists(CmpGT), nil
		}
		return all(CmpGT), nil
	case CmpLE:
		if isMax {
			return all(CmpLE), nil
		}
		return exists(CmpLE), nil
	case CmpLT:
		if isMax {
			return all(CmpLT), nil
		}
		return exists(CmpLT), nil
	case CmpEQ:
		if isMax {
			return smt.And(all(CmpLE), exists(CmpEQ)), nil
		}
		return smt.And(all(CmpGE), exists(CmpEQ)), nil
	case CmpNE:
		f, err := c.expandExtreme(a, CmpEQ, rhs)
		if err != nil {
			return nil, err
		}
		return smt.Not(f), nil
	}
	return nil, fmt.Errorf("bad comparison op")
}

// expr lowers an arithmetic expression to a linear expression over solver
// variables. Nonlinear products and non-constant division are rejected.
func (c *compiler) expr(e Expr) (smt.LinExpr, error) {
	switch g := e.(type) {
	case *NumLit:
		return smt.C(g.V), nil
	case *VarRef:
		v, ok := c.env[g.Name]
		if !ok {
			return smt.LinExpr{}, fmt.Errorf("loop variable %s out of scope", g.Name)
		}
		return smt.C(v), nil
	case *NegExpr:
		inner, err := c.expr(g.E)
		if err != nil {
			return smt.LinExpr{}, err
		}
		return inner.Scale(-1), nil
	case *FieldRef:
		vs, ok := c.b.Vars(g.Name)
		if !ok {
			return smt.LinExpr{}, fmt.Errorf("field %s not bound", g.Name)
		}
		idx := int64(0)
		if g.Index != nil {
			var err error
			idx, err = c.constExpr(g.Index)
			if err != nil {
				return smt.LinExpr{}, fmt.Errorf("index of %s: %w", g.Name, err)
			}
		}
		if idx < 0 || idx >= int64(len(vs)) {
			return smt.LinExpr{}, fmt.Errorf("index %s[%d] out of range [0,%d)", g.Name, idx, len(vs))
		}
		return smt.V(vs[idx]), nil
	case *CountExpr:
		return smt.LinExpr{}, fmt.Errorf("count(%s ...) is only allowed as a whole comparison side", g.Field)
	case *AggRef:
		if g.Op != AggSum {
			return smt.LinExpr{}, fmt.Errorf("%s(%s) is only allowed as a whole comparison side", g.Op, g.Field)
		}
		vs, ok := c.b.Vars(g.Field)
		if !ok {
			return smt.LinExpr{}, fmt.Errorf("field %s not bound", g.Field)
		}
		var sum smt.LinExpr
		for _, v := range vs {
			sum = sum.Add(smt.V(v))
		}
		return sum, nil
	case *BinExpr:
		l, err := c.expr(g.L)
		if err != nil {
			return smt.LinExpr{}, err
		}
		r, err := c.expr(g.R)
		if err != nil {
			return smt.LinExpr{}, err
		}
		switch g.Op {
		case '+':
			return l.Add(r), nil
		case '-':
			return l.Sub(r), nil
		case '*':
			if l.IsConst() {
				return r.Scale(l.Const()), nil
			}
			if r.IsConst() {
				return l.Scale(r.Const()), nil
			}
			return smt.LinExpr{}, fmt.Errorf("nonlinear product %s", ExprString(e))
		case '/':
			if !l.IsConst() || !r.IsConst() {
				return smt.LinExpr{}, fmt.Errorf("division requires constant operands: %s", ExprString(e))
			}
			if r.Const() == 0 {
				return smt.LinExpr{}, fmt.Errorf("division by zero: %s", ExprString(e))
			}
			return smt.C(floorDivI(l.Const(), r.Const())), nil
		}
	}
	return smt.LinExpr{}, fmt.Errorf("unknown expression %T", e)
}

// constExpr evaluates an expression that must be constant under the current
// quantifier environment (used for indices and quantifier bounds).
func (c *compiler) constExpr(e Expr) (int64, error) {
	le, err := c.expr(e)
	if err != nil {
		return 0, err
	}
	if !le.IsConst() {
		return 0, fmt.Errorf("expression %s is not constant", ExprString(e))
	}
	return le.Const(), nil
}

func floorDivI(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}
