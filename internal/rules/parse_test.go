package rules

import (
	"strings"
	"testing"
)

// paperSchema is the §2.1 telemetry schema used throughout the tests:
// fine-grained ingress I[0..4] plus two coarse scalar counters.
func paperSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Field{Name: "I", Kind: Vector, Len: 5, Lo: 0, Hi: 60},
		Field{Name: "TotalIngress", Kind: Scalar, Lo: 0, Hi: 300},
		Field{Name: "Congestion", Kind: Scalar, Lo: 0, Hi: 100},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

const paperRules = `
# The paper's §2.1 rules R1-R3.
const BW = 60
const T  = 5

rule r1: forall t in 0..T-1: 0 <= I[t] and I[t] <= BW
rule r2: sum(I) == TotalIngress
rule r3: Congestion > 0 -> max(I) >= BW/2
`

func TestParsePaperRules(t *testing.T) {
	rs, err := ParseRuleSet(paperRules, paperSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 3 {
		t.Fatalf("got %d rules, want 3", rs.Len())
	}
	if rs.Consts["BW"] != 60 || rs.Consts["T"] != 5 {
		t.Errorf("consts = %v", rs.Consts)
	}
	wantNames := []string{"r1", "r2", "r3"}
	for i, r := range rs.Rules {
		if r.Name != wantNames[i] {
			t.Errorf("rule %d name %q, want %q", i, r.Name, wantNames[i])
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	schema := paperSchema(t)
	rs, err := ParseRuleSet(paperRules, schema)
	if err != nil {
		t.Fatal(err)
	}
	text := rs.String()
	rs2, err := ParseRuleSet(text, schema)
	if err != nil {
		t.Fatalf("re-parsing rendered rules: %v\n%s", err, text)
	}
	if rs2.String() != text {
		t.Errorf("round trip not stable:\nfirst:\n%s\nsecond:\n%s", text, rs2.String())
	}
}

func TestParseChainedComparison(t *testing.T) {
	rs, err := ParseRuleSet("rule c: forall t in 0..4: 0 <= I[t] <= 60", paperSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	ok, err := rs.Eval(rs.Rules[0], Record{
		"I": {0, 10, 60, 5, 30}, "TotalIngress": {105}, "Congestion": {0},
	})
	if err != nil || !ok {
		t.Errorf("chained in-range: ok=%v err=%v", ok, err)
	}
	ok, err = rs.Eval(rs.Rules[0], Record{
		"I": {0, 10, 61, 5, 30}, "TotalIngress": {106}, "Congestion": {0},
	})
	if err != nil || ok {
		t.Errorf("chained out-of-range should fail: ok=%v err=%v", ok, err)
	}
}

func TestParseExists(t *testing.T) {
	rs, err := ParseRuleSet("rule e: exists t in 0..4: I[t] >= 30", paperSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	ok, _ := rs.Eval(rs.Rules[0], Record{"I": {1, 2, 3, 4, 35}, "TotalIngress": {45}, "Congestion": {0}})
	if !ok {
		t.Error("exists with witness should hold")
	}
	ok, _ = rs.Eval(rs.Rules[0], Record{"I": {1, 2, 3, 4, 5}, "TotalIngress": {15}, "Congestion": {0}})
	if ok {
		t.Error("exists without witness should fail")
	}
}

func TestParseErrors(t *testing.T) {
	schema := paperSchema(t)
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"unknown field", "rule r: Foo > 0", "unknown identifier"},
		{"index scalar", "rule r: Congestion[0] > 0", "indexing scalar"},
		{"vector no index", "rule r: I > 0", "without index or aggregate"},
		{"agg scalar", "rule r: sum(Congestion) > 0", "aggregate sum over scalar"},
		{"dup rule", "rule r: Congestion > 0\nrule r: Congestion > 1", "duplicate rule"},
		{"dup const", "const A = 1\nconst A = 2", "duplicate constant"},
		{"const shadows field", "const I = 1", "shadows a schema field"},
		{"nonconst const", "const A = Congestion", "constant value"},
		{"bad token", "rule r: Congestion > 0 $", "unexpected character"},
		{"missing colon", "rule r Congestion > 0", "expected ':'"},
		{"loop shadows field", "rule r: forall I in 0..4: Congestion > 0", "shadows a schema field"},
		{"loop shadows loop", "rule r: forall t in 0..4: forall t in 0..4: I[t] > 0", "shadows an outer"},
		{"undeclared const", "rule r: Congestion > MISSING", "unknown identifier"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseRuleSet(c.src, schema)
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestParseParenFormulaVsExpr(t *testing.T) {
	schema := paperSchema(t)
	// Parenthesized formula on the left of an implication.
	src := "rule r: (Congestion > 0 and TotalIngress > 50) -> max(I) >= 30"
	rs, err := ParseRuleSet(src, schema)
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{"I": {10, 10, 10, 10, 10}, "TotalIngress": {50}, "Congestion": {5}}
	ok, err := rs.Eval(rs.Rules[0], rec)
	if err != nil || !ok {
		t.Errorf("vacuous implication: ok=%v err=%v", ok, err)
	}

	// Parenthesized arithmetic expression.
	src2 := "rule r: (TotalIngress + 10) * 2 >= 120"
	rs2, err := ParseRuleSet(src2, schema)
	if err != nil {
		t.Fatal(err)
	}
	ok, err = rs2.Eval(rs2.Rules[0], rec)
	if err != nil || !ok {
		t.Errorf("(50+10)*2 >= 120: ok=%v err=%v", ok, err)
	}
}

func TestParseConstArithmetic(t *testing.T) {
	rs, err := ParseRuleSet("const A = 2*3+1\nconst B = A*10\nrule r: TotalIngress >= B", paperSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	if rs.Consts["A"] != 7 || rs.Consts["B"] != 70 {
		t.Errorf("consts = %v, want A=7 B=70", rs.Consts)
	}
}

func TestParseNegativeLiterals(t *testing.T) {
	rs, err := ParseRuleSet("rule r: TotalIngress - 2*Congestion >= -10", paperSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	ok, err := rs.Eval(rs.Rules[0], Record{"I": {0, 0, 0, 0, 0}, "TotalIngress": {0}, "Congestion": {5}})
	if err != nil || !ok {
		t.Errorf("0 - 10 >= -10: ok=%v err=%v", ok, err)
	}
}

func TestViolations(t *testing.T) {
	rs, err := ParseRuleSet(paperRules, paperSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Fig 1a invalid output: I = [20,15,25,70,8], sum 138 ≠ 100,
	// and I[3] = 70 > BW. (Record validation would reject 70 > Hi, so this
	// record bypasses schema validation deliberately — Violations works on
	// arbitrary records, e.g. raw model output.)
	rec := Record{"I": {20, 15, 25, 70, 8}, "TotalIngress": {100}, "Congestion": {8}}
	vs, err := rs.Violations(rec)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"r1", "r2"}
	if len(vs) != len(want) || vs[0] != want[0] || vs[1] != want[1] {
		t.Errorf("violations = %v, want %v", vs, want)
	}

	// The paper's Fig 1b valid output: I = [20,15,25,39,1]? No — LeJIT's
	// example yields I3=39 and the solver forces I4=1; max is 39 ≥ 30. Use
	// a compliant record and expect no violations.
	good := Record{"I": {20, 15, 25, 39, 1}, "TotalIngress": {100}, "Congestion": {8}}
	vs, err = rs.Violations(good)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Errorf("violations on compliant record: %v", vs)
	}
}

func TestViolationRate(t *testing.T) {
	rs, err := ParseRuleSet(paperRules, paperSchema(t))
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{"I": {20, 15, 25, 39, 1}, "TotalIngress": {100}, "Congestion": {8}},  // clean
		{"I": {20, 15, 25, 70, 8}, "TotalIngress": {100}, "Congestion": {8}},  // r1+r2
		{"I": {10, 10, 10, 10, 10}, "TotalIngress": {50}, "Congestion": {0}},  // clean
		{"I": {10, 10, 10, 10, 10}, "TotalIngress": {50}, "Congestion": {99}}, // r3
	}
	pair, rec, err := rs.ViolationRate(recs)
	if err != nil {
		t.Fatal(err)
	}
	if wantPair := 3.0 / 12.0; pair != wantPair {
		t.Errorf("pair rate = %v, want %v", pair, wantPair)
	}
	if wantRec := 0.5; rec != wantRec {
		t.Errorf("record rate = %v, want %v", rec, wantRec)
	}
}

func TestMergeAndFilter(t *testing.T) {
	schema := paperSchema(t)
	a, err := ParseRuleSet("const BW = 60\nrule a1: sum(I) == TotalIngress", schema)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseRuleSet("const BW = 60\nrule b1: max(I) <= BW", schema)
	if err != nil {
		t.Fatal(err)
	}
	m, err := a.Merge(b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 2 {
		t.Errorf("merged len = %d, want 2", m.Len())
	}
	f := m.Filter(func(r Rule) bool { return r.Name == "b1" })
	if f.Len() != 1 || f.Rules[0].Name != "b1" {
		t.Errorf("filter: %v", f.Rules)
	}
	// Conflicting constants must fail.
	c, _ := ParseRuleSet("const BW = 99\nrule c1: max(I) <= BW", schema)
	if _, err := a.Merge(c); err == nil {
		t.Error("merge with conflicting constant should fail")
	}
	// Duplicate rule names must fail.
	d, _ := ParseRuleSet("rule a1: min(I) >= 0", schema)
	if _, err := a.Merge(d); err == nil {
		t.Error("merge with duplicate rule name should fail")
	}
}

func TestSchemaValidate(t *testing.T) {
	s := paperSchema(t)
	good := Record{"I": {1, 2, 3, 4, 5}, "TotalIngress": {15}, "Congestion": {0}}
	if err := s.Validate(good); err != nil {
		t.Errorf("valid record rejected: %v", err)
	}
	cases := []Record{
		{"I": {1, 2, 3, 4}, "TotalIngress": {15}, "Congestion": {0}},              // short vector
		{"I": {1, 2, 3, 4, 5}, "TotalIngress": {15}},                              // missing field
		{"I": {1, 2, 3, 4, 500}, "TotalIngress": {15}, "Congestion": {0}},         // out of domain
		{"I": {1, 2, 3, 4, 5}, "TotalIngress": {15}, "Congestion": {0}, "X": {1}}, // unknown field
	}
	for i, rec := range cases {
		if err := s.Validate(rec); err == nil {
			t.Errorf("case %d: invalid record accepted", i)
		}
	}
}

func TestSchemaErrors(t *testing.T) {
	if _, err := NewSchema(Field{Name: "A", Kind: Scalar, Lo: 0, Hi: 5}, Field{Name: "A", Kind: Scalar, Lo: 0, Hi: 5}); err == nil {
		t.Error("duplicate field accepted")
	}
	if _, err := NewSchema(Field{Name: "A", Kind: Vector, Len: 0, Lo: 0, Hi: 5}); err == nil {
		t.Error("zero-length vector accepted")
	}
	if _, err := NewSchema(Field{Name: "A", Kind: Scalar, Lo: 5, Hi: 0}); err == nil {
		t.Error("empty domain accepted")
	}
	if _, err := NewSchema(Field{Name: "", Kind: Scalar, Lo: 0, Hi: 5}); err == nil {
		t.Error("empty name accepted")
	}
}
