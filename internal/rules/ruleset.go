package rules

import (
	"fmt"
	"sort"
	"strings"
)

// String renders the rule set in parseable DSL syntax (constants first, then
// rules in order). ParseRuleSet(rs.String(), rs.Schema) reproduces the set.
func (rs *RuleSet) String() string {
	var b strings.Builder
	names := make([]string, 0, len(rs.Consts))
	for k := range rs.Consts {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(&b, "const %s = %d\n", k, rs.Consts[k])
	}
	if len(names) > 0 && len(rs.Rules) > 0 {
		b.WriteString("\n")
	}
	for _, r := range rs.Rules {
		b.WriteString(r.String())
		b.WriteString("\n")
	}
	return b.String()
}

// Filter returns a new rule set containing only rules for which keep returns
// true; constants and schema are shared.
func (rs *RuleSet) Filter(keep func(Rule) bool) *RuleSet {
	out := &RuleSet{Schema: rs.Schema, Consts: rs.Consts}
	for _, r := range rs.Rules {
		if keep(r) {
			out.Rules = append(out.Rules, r)
		}
	}
	return out
}

// Merge returns a rule set combining the receiver's rules with other's.
// Rule names must not collide; schemas must be the same object.
func (rs *RuleSet) Merge(other *RuleSet) (*RuleSet, error) {
	if rs.Schema != other.Schema {
		return nil, fmt.Errorf("rules: merging rule sets with different schemas")
	}
	seen := map[string]bool{}
	out := &RuleSet{Schema: rs.Schema, Consts: map[string]int64{}}
	for k, v := range rs.Consts {
		out.Consts[k] = v
	}
	for k, v := range other.Consts {
		if existing, dup := out.Consts[k]; dup && existing != v {
			return nil, fmt.Errorf("rules: constant %s has conflicting values %d and %d", k, existing, v)
		}
		out.Consts[k] = v
	}
	for _, r := range rs.Rules {
		seen[r.Name] = true
		out.Rules = append(out.Rules, r)
	}
	for _, r := range other.Rules {
		if seen[r.Name] {
			return nil, fmt.Errorf("rules: duplicate rule name %s in merge", r.Name)
		}
		out.Rules = append(out.Rules, r)
	}
	return out, nil
}

// Len reports the number of rules.
func (rs *RuleSet) Len() int { return len(rs.Rules) }
