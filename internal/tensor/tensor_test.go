package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatMulSmall(t *testing.T) {
	a := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float32{7, 8, 9, 10, 11, 12})
	c := NewMat(2, 2)
	MatMul(c, a, b)
	want := []float32{58, 64, 139, 154}
	for i, v := range want {
		if c.W[i] != v {
			t.Errorf("c[%d] = %v, want %v", i, c.W[i], v)
		}
	}
}

func TestMatMulDimsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("dim mismatch should panic")
		}
	}()
	MatMul(NewMat(2, 2), NewMat(2, 3), NewMat(2, 2))
}

// naive reference implementations for cross-checks.
func refMatMul(a, b *Mat) *Mat {
	c := NewMat(a.R, b.C)
	for i := 0; i < a.R; i++ {
		for j := 0; j < b.C; j++ {
			var s float32
			for k := 0; k < a.C; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			c.Set(i, j, s)
		}
	}
	return c
}

func transpose(m *Mat) *Mat {
	out := NewMat(m.C, m.R)
	for i := 0; i < m.R; i++ {
		for j := 0; j < m.C; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

func TestMatMulVariantsAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n, k, m := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a := NewMat(n, k)
		a.Randn(rng, 1)
		b := NewMat(k, m)
		b.Randn(rng, 1)

		c := NewMat(n, m)
		MatMul(c, a, b)
		want := refMatMul(a, b)
		for i := range c.W {
			if !approxEq(float64(c.W[i]), float64(want.W[i]), 1e-4) {
				t.Fatalf("MatMul mismatch at %d: %v vs %v", i, c.W[i], want.W[i])
			}
		}

		// dst += A·Bᵀ
		bt := NewMat(m, k)
		bt.Randn(rng, 1)
		c2 := NewMat(n, m)
		MatMulAddTransB(c2, a, bt)
		want2 := refMatMul(a, transpose(bt))
		for i := range c2.W {
			if !approxEq(float64(c2.W[i]), float64(want2.W[i]), 1e-4) {
				t.Fatalf("MatMulAddTransB mismatch at %d", i)
			}
		}

		// dst += Aᵀ·B
		at := NewMat(k, n)
		at.Randn(rng, 1)
		c3 := NewMat(n, m)
		b3 := NewMat(k, m)
		b3.Randn(rng, 1)
		MatMulAddTransA(c3, at, b3)
		want3 := refMatMul(transpose(at), b3)
		for i := range c3.W {
			if !approxEq(float64(c3.W[i]), float64(want3.W[i]), 1e-4) {
				t.Fatalf("MatMulAddTransA mismatch at %d", i)
			}
		}
	}
}

func TestAddRowSumRows(t *testing.T) {
	m := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	AddRow(m, []float32{10, 20, 30})
	want := []float32{11, 22, 33, 14, 25, 36}
	for i := range want {
		if m.W[i] != want[i] {
			t.Errorf("AddRow[%d] = %v", i, m.W[i])
		}
	}
	v := make([]float32, 3)
	SumRowsInto(v, m)
	if v[0] != 25 || v[1] != 47 || v[2] != 69 {
		t.Errorf("SumRowsInto = %v", v)
	}
}

func TestSoftmaxRow(t *testing.T) {
	x := []float32{1, 2, 3}
	SoftmaxRow(x)
	var sum float32
	for _, v := range x {
		sum += v
	}
	if !approxEq(float64(sum), 1, 1e-5) {
		t.Errorf("softmax sum = %v", sum)
	}
	if !(x[2] > x[1] && x[1] > x[0]) {
		t.Errorf("softmax not monotone: %v", x)
	}
	// Extreme values must not overflow.
	y := []float32{1000, -1000, 999}
	SoftmaxRow(y)
	for _, v := range y {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Errorf("softmax overflow: %v", y)
		}
	}
}

// numGrad computes a central-difference numeric gradient of f at x[i].
func numGrad(f func() float64, x []float32, i int) float64 {
	const h = 1e-3
	orig := x[i]
	x[i] = orig + h
	fp := f()
	x[i] = orig - h
	fm := f()
	x[i] = orig
	return (fp - fm) / (2 * h)
}

func TestSoftmaxBackwardNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 5
	x := make([]float32, n)
	dy := make([]float32, n)
	for i := range x {
		x[i] = float32(rng.NormFloat64())
		dy[i] = float32(rng.NormFloat64())
	}
	// loss = <dy, softmax(x)>
	loss := func() float64 {
		p := append([]float32(nil), x...)
		SoftmaxRow(p)
		var s float64
		for i := range p {
			s += float64(dy[i] * p[i])
		}
		return s
	}
	p := append([]float32(nil), x...)
	SoftmaxRow(p)
	dx := make([]float32, n)
	SoftmaxBackwardRow(dx, dy, p)
	for i := 0; i < n; i++ {
		want := numGrad(loss, x, i)
		if !approxEq(float64(dx[i]), want, 1e-2) {
			t.Errorf("softmax grad[%d] = %v, numeric %v", i, dx[i], want)
		}
	}
}

func TestLayerNormNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 6
	x := make([]float32, n)
	gamma := make([]float32, n)
	beta := make([]float32, n)
	dy := make([]float32, n)
	for i := range x {
		x[i] = float32(rng.NormFloat64())
		gamma[i] = 1 + float32(rng.NormFloat64())*0.1
		beta[i] = float32(rng.NormFloat64()) * 0.1
		dy[i] = float32(rng.NormFloat64())
	}
	loss := func() float64 {
		out := make([]float32, n)
		LayerNormRow(out, x, gamma, beta)
		var s float64
		for i := range out {
			s += float64(dy[i] * out[i])
		}
		return s
	}
	out := make([]float32, n)
	mean, invStd := LayerNormRow(out, x, gamma, beta)
	dx := make([]float32, n)
	dgamma := make([]float32, n)
	dbeta := make([]float32, n)
	LayerNormBackwardRow(dx, dy, x, mean, invStd, gamma, dgamma, dbeta)
	for i := 0; i < n; i++ {
		if want := numGrad(loss, x, i); !approxEq(float64(dx[i]), want, 2e-2) {
			t.Errorf("LN dx[%d] = %v, numeric %v", i, dx[i], want)
		}
		if want := numGrad(loss, gamma, i); !approxEq(float64(dgamma[i]), want, 2e-2) {
			t.Errorf("LN dgamma[%d] = %v, numeric %v", i, dgamma[i], want)
		}
		if want := numGrad(loss, beta, i); !approxEq(float64(dbeta[i]), want, 2e-2) {
			t.Errorf("LN dbeta[%d] = %v, numeric %v", i, dbeta[i], want)
		}
	}
}

func TestGELUNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 8
	x := make([]float32, n)
	dy := make([]float32, n)
	for i := range x {
		x[i] = float32(rng.NormFloat64()) * 2
		dy[i] = float32(rng.NormFloat64())
	}
	loss := func() float64 {
		out := make([]float32, n)
		GELU(out, x)
		var s float64
		for i := range out {
			s += float64(dy[i] * out[i])
		}
		return s
	}
	dx := make([]float32, n)
	GELUBackward(dx, dy, x)
	for i := 0; i < n; i++ {
		if want := numGrad(loss, x, i); !approxEq(float64(dx[i]), want, 1e-2) {
			t.Errorf("GELU dx[%d] = %v, numeric %v", i, dx[i], want)
		}
	}
}

func TestGELUValues(t *testing.T) {
	out := make([]float32, 3)
	GELU(out, []float32{0, 10, -10})
	if out[0] != 0 {
		t.Errorf("gelu(0) = %v", out[0])
	}
	if !approxEq(float64(out[1]), 10, 1e-3) {
		t.Errorf("gelu(10) = %v", out[1])
	}
	if !approxEq(float64(out[2]), 0, 1e-3) {
		t.Errorf("gelu(-10) = %v", out[2])
	}
}

func TestAxpyDotScale(t *testing.T) {
	y := []float32{1, 2}
	Axpy(y, 2, []float32{3, 4})
	if y[0] != 7 || y[1] != 10 {
		t.Errorf("Axpy = %v", y)
	}
	if d := Dot([]float32{1, 2, 3}, []float32{4, 5, 6}); d != 32 {
		t.Errorf("Dot = %v", d)
	}
	x := []float32{2, 4}
	Scale(x, 0.5)
	if x[0] != 1 || x[1] != 2 {
		t.Errorf("Scale = %v", x)
	}
}

func TestMatBasics(t *testing.T) {
	m := NewMat(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Error("Set/At")
	}
	r := m.Row(1)
	if r[2] != 5 {
		t.Error("Row view")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Error("Clone must not alias")
	}
	m.Zero()
	if m.At(1, 2) != 0 {
		t.Error("Zero")
	}
}
