// Package tensor provides the dense float32 kernels underlying the
// internal/nn transformer: row-major matrices, matmul variants (including
// the transposed forms needed by manual backpropagation), softmax,
// layer-norm and GELU forward/backward, and seeded Gaussian initialization.
//
// Everything is scalar Go with cache-friendly loop ordering — fast enough
// for the paper-scale models LeJIT uses (the paper deliberately picks a
// small, generic LM; see DESIGN.md).
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Mat is a dense row-major matrix.
type Mat struct {
	R, C int
	W    []float32
}

// NewMat allocates an R×C zero matrix.
func NewMat(r, c int) *Mat {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("tensor: negative dims %dx%d", r, c))
	}
	return &Mat{R: r, C: c, W: make([]float32, r*c)}
}

// FromSlice wraps data (length r*c) as an R×C matrix without copying.
func FromSlice(r, c int, data []float32) *Mat {
	if len(data) != r*c {
		panic(fmt.Sprintf("tensor: FromSlice %dx%d with %d values", r, c, len(data)))
	}
	return &Mat{R: r, C: c, W: data}
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float32 { return m.W[i*m.C+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float32) { m.W[i*m.C+j] = v }

// Row returns a view of row i.
func (m *Mat) Row(i int) []float32 { return m.W[i*m.C : (i+1)*m.C] }

// Zero clears all elements.
func (m *Mat) Zero() {
	for i := range m.W {
		m.W[i] = 0
	}
}

// Clone deep-copies the matrix.
func (m *Mat) Clone() *Mat {
	out := NewMat(m.R, m.C)
	copy(out.W, m.W)
	return out
}

// Randn fills m with N(0, std²) samples from rng.
func (m *Mat) Randn(rng *rand.Rand, std float64) {
	for i := range m.W {
		m.W[i] = float32(rng.NormFloat64() * std)
	}
}

// MatMul computes dst = A·B for A (n×k) and B (k×m); dst must be n×m and is
// overwritten. The k-outer loop order keeps B rows hot in cache.
func MatMul(dst, a, b *Mat) {
	if a.C != b.R || dst.R != a.R || dst.C != b.C {
		panic(fmt.Sprintf("tensor: MatMul dims %dx%d · %dx%d -> %dx%d", a.R, a.C, b.R, b.C, dst.R, dst.C))
	}
	dst.Zero()
	n, k, m := a.R, a.C, b.C
	for i := 0; i < n; i++ {
		arow := a.W[i*k : (i+1)*k]
		drow := dst.W[i*m : (i+1)*m]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.W[p*m : (p+1)*m]
			for j := 0; j < m; j++ {
				drow[j] += av * brow[j]
			}
		}
	}
}

// MatMulAddTransB computes dst += A·Bᵀ for A (n×k), B (m×k); dst is n×m.
// This is the "weights stored output-major" product used by linear layers'
// backward-through-weights.
func MatMulAddTransB(dst, a, b *Mat) {
	if a.C != b.C || dst.R != a.R || dst.C != b.R {
		panic(fmt.Sprintf("tensor: MatMulAddTransB dims %dx%d · (%dx%d)ᵀ -> %dx%d", a.R, a.C, b.R, b.C, dst.R, dst.C))
	}
	n, k, m := a.R, a.C, b.R
	for i := 0; i < n; i++ {
		arow := a.W[i*k : (i+1)*k]
		drow := dst.W[i*m : (i+1)*m]
		for j := 0; j < m; j++ {
			brow := b.W[j*k : (j+1)*k]
			var s float32
			for p := 0; p < k; p++ {
				s += arow[p] * brow[p]
			}
			drow[j] += s
		}
	}
}

// MatMulAddTransA computes dst += Aᵀ·B for A (k×n), B (k×m); dst is n×m.
// This accumulates weight gradients (activationsᵀ · upstream).
func MatMulAddTransA(dst, a, b *Mat) {
	if a.R != b.R || dst.R != a.C || dst.C != b.C {
		panic(fmt.Sprintf("tensor: MatMulAddTransA dims (%dx%d)ᵀ · %dx%d -> %dx%d", a.R, a.C, b.R, b.C, dst.R, dst.C))
	}
	k, n, m := a.R, a.C, b.C
	for p := 0; p < k; p++ {
		arow := a.W[p*n : (p+1)*n]
		brow := b.W[p*m : (p+1)*m]
		for i := 0; i < n; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			drow := dst.W[i*m : (i+1)*m]
			for j := 0; j < m; j++ {
				drow[j] += av * brow[j]
			}
		}
	}
}

// AddRow adds vector v to every row of m (broadcast bias add).
func AddRow(m *Mat, v []float32) {
	if len(v) != m.C {
		panic("tensor: AddRow length mismatch")
	}
	for i := 0; i < m.R; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] += v[j]
		}
	}
}

// SumRowsInto accumulates the column sums of m into v (bias gradient).
func SumRowsInto(v []float32, m *Mat) {
	if len(v) != m.C {
		panic("tensor: SumRowsInto length mismatch")
	}
	for i := 0; i < m.R; i++ {
		row := m.Row(i)
		for j := range row {
			v[j] += row[j]
		}
	}
}

// SoftmaxRow computes a numerically stable softmax of x in place.
func SoftmaxRow(x []float32) {
	if len(x) == 0 {
		return
	}
	maxV := x[0]
	for _, v := range x[1:] {
		if v > maxV {
			maxV = v
		}
	}
	var sum float32
	for i, v := range x {
		e := float32(math.Exp(float64(v - maxV)))
		x[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range x {
		x[i] *= inv
	}
}

// SoftmaxBackwardRow computes, in place into dx, the gradient through a
// softmax row: dx = p ⊙ (dy − ⟨dy, p⟩) where p is the softmax output.
func SoftmaxBackwardRow(dx, dy, p []float32) {
	var dot float32
	for i := range p {
		dot += dy[i] * p[i]
	}
	for i := range p {
		dx[i] = p[i] * (dy[i] - dot)
	}
}

const lnEps = 1e-5

// LayerNormRow normalizes x into out using gamma/beta, returning the mean
// and inverse std needed by the backward pass.
func LayerNormRow(out, x, gamma, beta []float32) (mean, invStd float32) {
	n := float32(len(x))
	var m float32
	for _, v := range x {
		m += v
	}
	m /= n
	var va float32
	for _, v := range x {
		d := v - m
		va += d * d
	}
	va /= n
	inv := float32(1 / math.Sqrt(float64(va)+lnEps))
	for i, v := range x {
		out[i] = (v-m)*inv*gamma[i] + beta[i]
	}
	return m, inv
}

// LayerNormBackwardRow backpropagates through one layer-norm row.
// dgamma/dbeta are accumulated; dx is overwritten.
func LayerNormBackwardRow(dx, dy, x []float32, mean, invStd float32, gamma, dgamma, dbeta []float32) {
	n := float32(len(x))
	// xhat_i = (x_i - mean) * invStd
	var sumDyG, sumDyGXhat float32
	for i := range x {
		xhat := (x[i] - mean) * invStd
		g := dy[i] * gamma[i]
		sumDyG += g
		sumDyGXhat += g * xhat
		dgamma[i] += dy[i] * xhat
		dbeta[i] += dy[i]
	}
	for i := range x {
		xhat := (x[i] - mean) * invStd
		g := dy[i] * gamma[i]
		dx[i] = invStd * (g - sumDyG/n - xhat*sumDyGXhat/n)
	}
}

// GELU applies the tanh-approximation GELU elementwise: out[i] = gelu(x[i]).
func GELU(out, x []float32) {
	const c = 0.7978845608028654 // sqrt(2/π)
	for i, v := range x {
		u := float64(v)
		out[i] = float32(0.5 * u * (1 + math.Tanh(c*(u+0.044715*u*u*u))))
	}
}

// GELUBackward computes dx[i] = dy[i] * gelu'(x[i]).
func GELUBackward(dx, dy, x []float32) {
	const c = 0.7978845608028654
	for i, v := range x {
		u := float64(v)
		t := math.Tanh(c * (u + 0.044715*u*u*u))
		d := 0.5*(1+t) + 0.5*u*(1-t*t)*c*(1+3*0.044715*u*u)
		dx[i] = dy[i] * float32(d)
	}
}

// Axpy computes y += a*x elementwise. Unrolled 4-wide; each element is an
// independent fused update, so the result is identical to the scalar loop.
func Axpy(y []float32, a float32, x []float32) {
	if len(x) != len(y) {
		panic("tensor: Axpy length mismatch")
	}
	i := 0
	for ; i+4 <= len(y); i += 4 {
		y[i] += a * x[i]
		y[i+1] += a * x[i+1]
		y[i+2] += a * x[i+2]
		y[i+3] += a * x[i+3]
	}
	for ; i < len(y); i++ {
		y[i] += a * x[i]
	}
}

// Dot returns ⟨x, y⟩. Unrolled 4-wide into a single accumulator with the
// adds kept as separate sequential statements, so the summation order — and
// therefore the float32 result — is bit-identical to the scalar loop.
func Dot(x, y []float32) float32 {
	if len(x) != len(y) {
		panic("tensor: Dot length mismatch")
	}
	var s float32
	i := 0
	for ; i+4 <= len(x); i += 4 {
		s += x[i] * y[i]
		s += x[i+1] * y[i+1]
		s += x[i+2] * y[i+2]
		s += x[i+3] * y[i+3]
	}
	for ; i < len(x); i++ {
		s += x[i] * y[i]
	}
	return s
}

// Scale multiplies x by a elementwise.
func Scale(x []float32, a float32) {
	for i := range x {
		x[i] *= a
	}
}

// Arena carves float32 scratch buffers out of one contiguous allocation.
// Batched decoding sizes its whole working set up front (KV caches, per-step
// activations, logits) and allocates it in a single slab, so the allocation
// count per batch stays O(1) no matter how many lanes the batch has.
type Arena struct {
	buf []float32
	off int
}

// NewArena allocates an arena holding n float32s, all zero.
func NewArena(n int) *Arena {
	if n < 0 {
		panic(fmt.Sprintf("tensor: NewArena(%d)", n))
	}
	return &Arena{buf: make([]float32, n)}
}

// Alloc returns the next n float32s of the slab (zeroed, since the slab is
// freshly allocated and handed out exactly once). Panics if the arena was
// sized too small — that is a programming error, not a runtime condition.
func (a *Arena) Alloc(n int) []float32 {
	if n < 0 || a.off+n > len(a.buf) {
		panic(fmt.Sprintf("tensor: Arena.Alloc(%d) with %d of %d used", n, a.off, len(a.buf)))
	}
	s := a.buf[a.off : a.off+n : a.off+n]
	a.off += n
	return s
}

// Remaining reports how many float32s are still unallocated.
func (a *Arena) Remaining() int { return len(a.buf) - a.off }
