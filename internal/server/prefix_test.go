package server

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/vocab"
)

// newPrefixTestServer builds a Server over a real (tiny, untrained)
// transformer with the prefix cache enabled — the uniform mock LM used by the
// other tests never participates in the cache (snapshots are frozen
// nn.Sessions), so these tests need the real thing.
func newPrefixTestServer(t *testing.T) *Server {
	t.Helper()
	m, err := nn.New(nn.Config{
		Vocab: vocab.Telemetry().Size(), Ctx: 48, Dim: 16, Heads: 2, Layers: 2,
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	eng, rs, schema := testEngine(t, core.WrapNN(m))
	s, err := New(Config{
		Engine: eng, Rules: rs, Schema: schema,
		Workers: 2, BatchWindow: time.Millisecond, PrefixCacheMB: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// TestServerPrefixCacheWarmsAcrossBatches: the same seeded impute posted
// repeatedly hits the prefix cache from the second request on (the cache
// lives on the engine, not the batch), answers byte-identically, and the
// counters surface in both the programmatic snapshot and /metrics.
func TestServerPrefixCacheWarmsAcrossBatches(t *testing.T) {
	s := newPrefixTestServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	const body = `{"known": {"TotalIngress": [120], "Congestion": [10]}, "seed": 5}`
	var lines []string
	for i := 0; i < 3; i++ {
		resp, data := postJSON(t, ts, "/v1/impute", body)
		if resp.StatusCode != 200 {
			t.Fatalf("request %d: status %d: %s", i, resp.StatusCode, data)
		}
		var out DecodeResponse
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatal(err)
		}
		lines = append(lines, out.Line)
	}
	for i, l := range lines {
		if l != lines[0] {
			t.Fatalf("response %d line %q != first %q (warm decode diverged)", i, l, lines[0])
		}
	}
	snap := s.Metrics().Snapshot()
	if snap.Prefix.Inserts == 0 {
		t.Fatal("no snapshots captured")
	}
	if snap.Prefix.Hits == 0 {
		t.Fatal("no prefix-cache hits across identical requests")
	}

	rec := httptest.NewRecorder()
	s.Metrics().WritePrometheus(rec)
	text := rec.Body.String()
	for _, metric := range []string{
		"lejitd_prefix_hits_total", "lejitd_prefix_misses_total",
		"lejitd_prefix_evictions_total", "lejitd_prefix_cache_bytes",
		"lejitd_prefix_cache_entries",
	} {
		if !strings.Contains(text, metric) {
			t.Errorf("/metrics output missing %s", metric)
		}
	}
	if !strings.Contains(text, fmt.Sprintf(`lejitd_prefix_hits_total{pack="default"} %d`, snap.Prefix.Hits)) {
		t.Errorf("hits counter mismatch between snapshot and exposition:\n%s", text)
	}
}

// TestServerPrefixCacheOptOut: no_prefix_cache requests decode identically
// but never read the cache.
func TestServerPrefixCacheOptOut(t *testing.T) {
	s := newPrefixTestServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	const warm = `{"known": {"TotalIngress": [120], "Congestion": [10]}, "seed": 5}`
	resp, data := postJSON(t, ts, "/v1/impute", warm)
	if resp.StatusCode != 200 {
		t.Fatalf("warmup: status %d: %s", resp.StatusCode, data)
	}
	var base DecodeResponse
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatal(err)
	}
	before := s.Metrics().Snapshot().Prefix

	const optOut = `{"known": {"TotalIngress": [120], "Congestion": [10]}, "seed": 5, "no_prefix_cache": true}`
	resp, data = postJSON(t, ts, "/v1/impute", optOut)
	if resp.StatusCode != 200 {
		t.Fatalf("opt-out: status %d: %s", resp.StatusCode, data)
	}
	var out DecodeResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Line != base.Line {
		t.Fatalf("opted-out decode %q != cached-path decode %q", out.Line, base.Line)
	}
	after := s.Metrics().Snapshot().Prefix
	if after.Hits != before.Hits || after.Misses != before.Misses {
		t.Errorf("opted-out request touched the cache: hits %d->%d misses %d->%d",
			before.Hits, after.Hits, before.Misses, after.Misses)
	}
}
