// Package server implements lejitd's HTTP serving layer: a JSON API over a
// dynamic micro-batching queue that coalesces concurrent requests into one
// core.DecodeRequests call, with bounded-queue backpressure (429 +
// Retry-After), per-request timeouts that cancel in-flight decodes, graceful
// drain, and a Prometheus-text /metrics endpoint. See DESIGN.md §8.
package server

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/rules"
)

// Supported per-request decode modes. ModeLeJIT is the default.
const (
	ModeLeJIT     = "lejit"
	ModeVanilla   = "vanilla"
	ModeRejection = "rejection"
	ModePostHoc   = "posthoc"
)

// DecodeRequest is the body of POST /v1/impute and POST /v1/generate.
type DecodeRequest struct {
	// Known holds the prompt fields for imputation (a grammar prefix, e.g.
	// the coarse counters). It must be absent for /v1/generate.
	Known rules.Record `json:"known,omitempty"`
	// Pack selects the domain pack (schema + rules + decode shape) this
	// request decodes under. Empty means the server's default pack. Known is
	// validated against the selected pack's schema, so validation happens
	// after pack resolution, not at parse time.
	Pack string `json:"pack,omitempty"`
	// Mode selects the decode strategy: lejit (default), vanilla, rejection,
	// or posthoc.
	Mode string `json:"mode,omitempty"`
	// Seed, when set, makes the response a deterministic function of the
	// request alone, independent of how requests were batched.
	Seed *int64 `json:"seed,omitempty"`
	// TimeoutMs overrides the server's default per-request timeout.
	TimeoutMs int `json:"timeout_ms,omitempty"`
	// NoPrefixCache opts this request out of the server's cross-request
	// prefix cache: its decode neither reuses cached transformer/solver
	// state nor leaves snapshots behind. The response is unchanged either
	// way (warm decodes are bit-identical); this is an isolation knob.
	NoPrefixCache bool `json:"no_prefix_cache,omitempty"`
	// Lookahead, when set, overrides the daemon's speculative-decoding
	// window (the -lookahead flag) for this request; 0 forces the exact
	// path. The response is bit-identical for every value (DESIGN.md §13) —
	// this is a latency knob, not a quality one.
	Lookahead *int `json:"lookahead,omitempty"`
	// Stream switches the response to Server-Sent Events: one "slot" event
	// per completed grammar slot as the decode proves it exact, then a
	// terminal "done" event carrying the full DecodeResponse (or an "error"
	// event). The concatenated slot texts are bit-identical to the unary
	// response's line field. Baseline modes (vanilla/rejection/posthoc)
	// produce no slot events — only the terminal event — because they are
	// not token-interruptible.
	Stream bool `json:"stream,omitempty"`
}

// CheckRequest is the body of POST /v1/check.
type CheckRequest struct {
	Record rules.Record `json:"record"`
	// Pack selects whose rules the record is checked against (empty means
	// the server's default pack).
	Pack string `json:"pack,omitempty"`
}

// StatsJSON is the wire form of core.Stats (the fields operators care about).
type StatsJSON struct {
	Tokens       int    `json:"tokens"`
	MaskedSteps  int    `json:"masked_steps"`
	ForcedSteps  int    `json:"forced_steps"`
	SolverChecks uint64 `json:"solver_checks"`
	Attempts     int    `json:"attempts,omitempty"`
	// Speculative-decoding counters (zero unless a lookahead was in effect).
	SpecAcceptedTokens int `json:"spec_accepted_tokens,omitempty"`
	SpecRollbacks      int `json:"spec_rollbacks,omitempty"`
}

// DecodeResponse is the body of a successful impute/generate response.
type DecodeResponse struct {
	Record rules.Record `json:"record"`
	// Line is the record rendered in the engine's grammar order (the
	// telemetry text format).
	Line       string    `json:"line"`
	Compliant  bool      `json:"compliant"`
	Violations []string  `json:"violations,omitempty"`
	Stats      StatsJSON `json:"stats"`
	// BatchSize reports how many requests shared this record's
	// core.DecodeRequests call (serving observability).
	BatchSize int `json:"batch_size"`
	// Pack names the domain pack that decoded this request; Epoch is that
	// pack's rule-epoch fingerprint (hex) at admission time, so a caller can
	// tell which rule generation produced the record across hot reloads.
	Pack  string `json:"pack,omitempty"`
	Epoch string `json:"epoch,omitempty"`
}

// PackInfoJSON is one entry of a GET /v1/packs response.
type PackInfoJSON struct {
	Name       string `json:"name"`
	Version    string `json:"version"`
	Epoch      string `json:"epoch"` // rule-epoch fingerprint, hex
	Generation int    `json:"generation"`
	Rules      int    `json:"rules"`
	Fields     int    `json:"fields"`
	Reloads    uint64 `json:"reloads"`
	ReloadErrs uint64 `json:"reload_errors"`
	Default    bool   `json:"default,omitempty"`
}

// PacksResponse is the body of GET /v1/packs.
type PacksResponse struct {
	Default string         `json:"default"`
	Packs   []PackInfoJSON `json:"packs"`
}

// ReloadRequest is the body of POST /v1/packs/reload: replace one pack's
// rule set from source text, recompiling off the hot path.
type ReloadRequest struct {
	Pack  string `json:"pack"`
	Rules string `json:"rules"`
}

// ReloadResponse reports the swapped-in bundle.
type ReloadResponse struct {
	Pack       string `json:"pack"`
	Epoch      string `json:"epoch"`
	Generation int    `json:"generation"`
	Rules      int    `json:"rules"`
}

// CheckResponse is the body of a /v1/check response.
type CheckResponse struct {
	Compliant  bool     `json:"compliant"`
	Violations []string `json:"violations"`
}

// ErrorResponse is the body of every non-2xx JSON response.
type ErrorResponse struct {
	Error  string `json:"error"`
	Status string `json:"status,omitempty"` // machine-readable: e.g. "timeout", "infeasible", "overloaded"
}

// errBadRequest tags client errors so handlers can map them to 400. It
// wraps the underlying error so typed causes (e.g. *http.MaxBytesError)
// stay reachable via errors.As.
type errBadRequest struct{ err error }

func (e errBadRequest) Error() string { return e.err.Error() }
func (e errBadRequest) Unwrap() error { return e.err }

func badRequestf(format string, args ...any) error {
	return errBadRequest{fmt.Errorf(format, args...)}
}

// ParseDecodeRequest decodes and validates one impute/generate body.
// allowKnown distinguishes /v1/impute (prompt required to be well-formed if
// present) from /v1/generate (prompt forbidden). It never panics on
// malformed input — FuzzImputeRequest holds it to that.
func ParseDecodeRequest(r io.Reader, schema *rules.Schema, allowKnown bool) (*DecodeRequest, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req DecodeRequest
	if err := dec.Decode(&req); err != nil {
		return nil, errBadRequest{fmt.Errorf("invalid JSON: %w", err)}
	}
	// Exactly one JSON value per body.
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return nil, badRequestf("trailing content after JSON body")
	}
	switch req.Mode {
	case "", ModeLeJIT, ModeVanilla, ModeRejection, ModePostHoc:
	default:
		return nil, badRequestf("unknown mode %q", req.Mode)
	}
	if req.Mode == "" {
		req.Mode = ModeLeJIT
	}
	if req.TimeoutMs < 0 {
		return nil, badRequestf("timeout_ms must be non-negative")
	}
	if req.Lookahead != nil && *req.Lookahead < 0 {
		return nil, badRequestf("lookahead must be non-negative")
	}
	if !allowKnown && len(req.Known) > 0 {
		return nil, badRequestf("generate takes no known fields; use /v1/impute")
	}
	if len(req.Known) == 0 {
		req.Known = nil
	}
	if req.Known != nil && schema != nil {
		if err := validateRecord(req.Known, schema); err != nil {
			return nil, err
		}
	}
	return &req, nil
}

// ParseReloadRequest decodes and validates one /v1/packs/reload body.
func ParseReloadRequest(r io.Reader) (*ReloadRequest, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req ReloadRequest
	if err := dec.Decode(&req); err != nil {
		return nil, errBadRequest{fmt.Errorf("invalid JSON: %w", err)}
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return nil, badRequestf("trailing content after JSON body")
	}
	if req.Pack == "" {
		return nil, badRequestf("pack is required")
	}
	return &req, nil
}

// ParseCheckRequest decodes and validates one /v1/check body.
func ParseCheckRequest(r io.Reader, schema *rules.Schema) (*CheckRequest, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req CheckRequest
	if err := dec.Decode(&req); err != nil {
		return nil, errBadRequest{fmt.Errorf("invalid JSON: %w", err)}
	}
	if len(req.Record) == 0 {
		return nil, badRequestf("record is required")
	}
	if schema != nil {
		if err := validateRecord(req.Record, schema); err != nil {
			return nil, err
		}
	}
	return &req, nil
}

// validateRecord checks a wire record against the schema: known fields only,
// correct arity, and values inside the field domain. Fields may cover any
// subset of the schema — whether the subset is a legal grammar prefix is the
// decoder's call (core.Engine rejects non-prefix prompts).
func validateRecord(rec rules.Record, schema *rules.Schema) error {
	for name, vals := range rec {
		f, ok := schema.Field(name)
		if !ok {
			return badRequestf("unknown field %q", name)
		}
		if len(vals) != f.Len {
			return badRequestf("field %q has %d values, schema wants %d", name, len(vals), f.Len)
		}
		for i, v := range vals {
			if v < f.Lo || v > f.Hi {
				return badRequestf("field %q[%d] = %d outside domain [%d,%d]", name, i, v, f.Lo, f.Hi)
			}
		}
	}
	return nil
}
