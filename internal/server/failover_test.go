package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestShardFailoverE2E: with four engine shards and a hair-trigger failure
// threshold, a request that exhausts its solver budget drains the shard it
// decoded on — fresh clones, failure score reset — while every other request
// stays bit-identical to an uninjected multi-replica run and the fleet keeps
// serving. Determinism is what makes this checkable: output depends on
// (prompt, seed) only, never on shard placement or drain timing.
func TestShardFailoverE2E(t *testing.T) {
	const budgetTarget = int64(60 + 10*9) // request 9 "stalls"
	replicated := func(c *Config) {
		c.Replicas = 4
		c.ShardFailureThreshold = 1
	}

	clean := newFaultServer(t, nil, replicated)
	cleanTS := httptest.NewServer(clean)
	defer cleanTS.Close()
	cleanCodes, cleanLines, _, _ := faultBatch(t, cleanTS)
	for i, code := range cleanCodes {
		if code != http.StatusOK {
			t.Fatalf("uninjected run: request %d got %d", i, code)
		}
	}

	hook := func(fs core.FaultSite) error {
		if fs.Known == nil || len(fs.Known["TotalIngress"]) == 0 || fs.Tokens < 2 {
			return nil
		}
		if fs.Known["TotalIngress"][0] == budgetTarget {
			return fmt.Errorf("injected fault: %w", core.ErrBudget)
		}
		return nil
	}
	faulty := newFaultServer(t, hook, replicated)
	ts := httptest.NewServer(faulty)
	defer ts.Close()

	codes, lines, statuses, _ := faultBatch(t, ts)
	for i := range codes {
		if i == 9 {
			if codes[i] != http.StatusServiceUnavailable || statuses[i] != "budget" {
				t.Errorf("faulted request: code %d status %q, want 503/budget", codes[i], statuses[i])
			}
			continue
		}
		if codes[i] != http.StatusOK {
			t.Errorf("clean request %d got %d alongside the fault", i, codes[i])
			continue
		}
		if lines[i] != cleanLines[i] {
			t.Errorf("request %d changed by a draining shard:\n got %q\nwant %q", i, lines[i], cleanLines[i])
		}
	}

	// The sick shard crossed its threshold and drained.
	waitFor(t, faulty, func(sn Snapshot) bool { return sn.ShardDrains >= 1 })
	drains := 0
	for _, sh := range faulty.Router().Stats() {
		drains += int(sh.Drains)
		if sh.Failures != 0 {
			t.Errorf("shard %d failure score %d not reset by drain", sh.Shard, sh.Failures)
		}
	}
	if drains < 1 {
		t.Errorf("no shard reports a drain (router stats)")
	}

	// The rejoined fleet keeps serving — including the shard that drained.
	for i := 0; i < 8; i++ {
		body := fmt.Sprintf(`{"known": {"TotalIngress": [%d], "Congestion": [0]}, "seed": %d}`, 55+i, 500+i)
		resp, data := postJSON(t, ts, "/v1/impute", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-drain request %d: %d (%s)", i, resp.StatusCode, data)
		}
	}

	// Drains are exported both aggregated and per shard.
	_, data := getBody(t, ts.URL+"/metrics")
	text := string(data)
	if !strings.Contains(text, "lejitd_router_drains_total 1") {
		t.Errorf("metrics missing router drain total:\n%s", grepMetric(text, "lejitd_router_drains"))
	}
	if !strings.Contains(text, "lejitd_shard_drains_total{") {
		t.Errorf("metrics missing per-shard drain gauge:\n%s", grepMetric(text, "lejitd_shard"))
	}

	// The uninjected fleet never drained anything.
	if snap := clean.Metrics().Snapshot(); snap.ShardDrains != 0 {
		t.Errorf("clean fleet reports %d shard drains", snap.ShardDrains)
	}
}
