package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/vocab"
)

// TestMicroBatchCoalesce is the satellite's headline assertion: two
// concurrent requests arriving within the batch window must land in ONE
// core.DecodeRequests call.
func TestMicroBatchCoalesce(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.BatchWindow = 250 * time.Millisecond
		c.MaxBatch = 8
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	var wg sync.WaitGroup
	sizes := make([]int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, data := postJSON(t, ts, "/v1/impute",
				fmt.Sprintf(`{"known": {"TotalIngress": [%d], "Congestion": [0]}, "seed": %d}`, 100+i, i))
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, resp.StatusCode, data)
				return
			}
			var dr DecodeResponse
			if err := json.Unmarshal(data, &dr); err != nil {
				t.Error(err)
				return
			}
			sizes[i] = dr.BatchSize
		}(i)
	}
	wg.Wait()

	snap := s.Metrics().Snapshot()
	if snap.Batches != 1 {
		t.Fatalf("dispatched %d batches, want 1", snap.Batches)
	}
	if snap.BatchedRecs != 2 {
		t.Fatalf("batched %d records, want 2", snap.BatchedRecs)
	}
	for i, sz := range sizes {
		if sz != 2 {
			t.Errorf("request %d reported batch_size %d, want 2", i, sz)
		}
	}
}

// TestBackpressure fills the admission queue while the batcher is held on a
// gated decode and checks the next request is refused with 429 + Retry-After
// instead of queuing unboundedly.
func TestBackpressure(t *testing.T) {
	gate := make(chan struct{})
	released := false
	release := func() {
		if !released {
			released = true
			close(gate)
		}
	}
	defer release()

	eng, rs, schema := testEngine(t, gateLM{vocab: vocab.Telemetry().Size(), gate: gate})
	s, err := New(Config{
		Engine: eng, Rules: rs, Schema: schema,
		BatchWindow: time.Millisecond, MaxBatch: 1, QueueDepth: 1, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	body := `{"known": {"TotalIngress": [100], "Congestion": [0]}}`
	codes := make(chan int, 2)
	post := func() {
		resp, _ := postJSON(t, ts, "/v1/impute", body)
		codes <- resp.StatusCode
	}

	// Request 1 is dequeued by the batcher and blocks on the gate.
	go post()
	waitFor(t, s, func(sn Snapshot) bool { return sn.Batches == 1 })
	// Request 2 sits in the queue (depth 1 → now full).
	go post()
	waitFor(t, s, func(sn Snapshot) bool { return sn.QueueDepth == 1 })

	// Request 3 must bounce immediately.
	resp, data := postJSON(t, ts, "/v1/impute", body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (body %s)", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	var e ErrorResponse
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatal(err)
	}
	if e.Status != "overloaded" {
		t.Errorf("status field %q, want overloaded", e.Status)
	}

	release()
	for i := 0; i < 2; i++ {
		if code := <-codes; code != http.StatusOK {
			t.Errorf("held request finished with %d, want 200", code)
		}
	}
	if got := s.Metrics().Snapshot().Rejected; got != 1 {
		t.Errorf("rejected counter %d, want 1", got)
	}
}

// TestRequestTimeout: a request with a 1ms deadline must return promptly
// with a timeout status even though the batch window alone exceeds it.
func TestRequestTimeout(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.BatchWindow = 50 * time.Millisecond })
	ts := httptest.NewServer(s)
	defer ts.Close()

	start := time.Now()
	resp, data := postJSON(t, ts, "/v1/impute", `{"known": {"TotalIngress": [100], "Congestion": [0]}, "timeout_ms": 1}`)
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (body %s)", resp.StatusCode, data)
	}
	var e ErrorResponse
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatal(err)
	}
	if e.Status != "timeout" {
		t.Errorf("status field %q, want timeout", e.Status)
	}
	if elapsed > 2*time.Second {
		t.Errorf("timeout response took %v, want prompt return", elapsed)
	}
	waitFor(t, s, func(sn Snapshot) bool { return sn.Timeouts >= 1 })
}

// TestServeEndToEnd is the acceptance scenario: a real listener, ≥16
// concurrent impute requests, rule-compliant responses, matching metrics
// with mean batch size > 1, and a graceful drain on context cancellation
// (the SIGTERM path).
func TestServeEndToEnd(t *testing.T) {
	eng, rs, schema := testEngine(t, uniformLM{vocab: vocab.Telemetry().Size()})
	s, err := New(Config{
		Engine: eng, Rules: rs, Schema: schema,
		BatchWindow: 20 * time.Millisecond, MaxBatch: 8, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ctx, l) }()
	base := "http://" + l.Addr().String()

	const n = 16
	var wg sync.WaitGroup
	var mu sync.Mutex
	ok := 0
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"known": {"TotalIngress": [%d], "Congestion": [%d]}, "seed": %d}`, 60+i, i%2*10, i)
			resp, err := http.Post(base+"/v1/impute", "application/json", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var dr DecodeResponse
			if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
				t.Error(err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d", i, resp.StatusCode)
				return
			}
			// Every response must decode to a rule-compliant record.
			viol, err := rs.Violations(dr.Record)
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			if len(viol) > 0 {
				t.Errorf("request %d violates %v", i, viol)
				return
			}
			mu.Lock()
			ok++
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	if ok != n {
		t.Fatalf("%d/%d requests succeeded", ok, n)
	}

	// The metrics endpoint must agree with what the clients saw, and the
	// batcher must actually have coalesced (mean batch size > 1).
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	if !strings.Contains(text, fmt.Sprintf(`lejitd_requests_total{route="impute",pack="default",code="200"} %d`, n)) {
		t.Errorf("metrics do not report %d impute 200s:\n%s", n, text)
	}
	snap := s.Metrics().Snapshot()
	if snap.MeanBatchSize <= 1 {
		t.Errorf("mean batch size %.2f, want > 1 (batches=%d recs=%d)",
			snap.MeanBatchSize, snap.Batches, snap.BatchedRecs)
	}

	// Graceful drain: cancel the serve context while a request is in
	// flight; it must complete before Serve returns.
	late := make(chan int, 1)
	go func() {
		resp, err := http.Post(base+"/v1/impute", "application/json",
			strings.NewReader(`{"known": {"TotalIngress": [90], "Congestion": [0]}}`))
		if err != nil {
			late <- -1
			return
		}
		resp.Body.Close()
		late <- resp.StatusCode
	}()
	// Wait until the late request has actually reached the server — still
	// queued or already answered — before cancelling. A fixed sleep flakes
	// when the host is oversubscribed (e.g. the -race suite) and the POST
	// has not yet connected when the listener closes.
	waitFor(t, s, func(sn Snapshot) bool {
		return sn.QueueDepth > 0 || sn.Inflight > 0 || sn.Requests["impute"][http.StatusOK] > uint64(n)
	})
	cancel()
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve returned %v", err)
	}
	if code := <-late; code != http.StatusOK {
		t.Errorf("in-flight request during drain finished with %d, want 200", code)
	}

	// After drain the server refuses new work (if anything still answers).
	if resp, err := http.Post(base+"/v1/impute", "application/json", strings.NewReader(`{}`)); err == nil {
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Error("drained server accepted new work")
		}
	}
}

// waitFor blocks until cond holds of a metrics snapshot, waking on counter
// mutations (Metrics.WaitUntil) rather than sleep-polling.
func waitFor(t *testing.T, s *Server, cond func(Snapshot) bool) {
	t.Helper()
	if !s.Metrics().WaitUntil(5*time.Second, cond) {
		t.Fatal("condition not reached within 5s")
	}
}
