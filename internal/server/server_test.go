package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rules"
	"repro/internal/vocab"
)

// --- Fixtures ---------------------------------------------------------------

// uniformLM assigns equal logits to every token (mirrors the core test
// fixture): a clueless model that leaves all steering to the rules.
type uniformLM struct{ vocab int }

func (u uniformLM) VocabSize() int { return u.vocab }
func (u uniformLM) NewSession() core.Session {
	return &uniformSession{logits: make([]float32, u.vocab)}
}

type uniformSession struct{ logits []float32 }

func (s *uniformSession) Append(tok int) error { return nil }
func (s *uniformSession) Logits() []float32    { return s.logits }

// gateLM blocks every decode on a shared gate channel until it is closed;
// the backpressure and drain tests use it to hold the batcher busy at a
// deterministic point.
type gateLM struct {
	vocab int
	gate  <-chan struct{}
}

func (g gateLM) VocabSize() int { return g.vocab }
func (g gateLM) NewSession() core.Session {
	return &gateSession{gate: g.gate, logits: make([]float32, g.vocab)}
}

type gateSession struct {
	gate   <-chan struct{}
	logits []float32
}

func (s *gateSession) Append(tok int) error { return nil }
func (s *gateSession) Logits() []float32    { <-s.gate; return s.logits }

const testRulesText = `
const BW = 60
const T  = 5
rule r1: forall t in 0..T-1: 0 <= I[t] and I[t] <= BW
rule r2: sum(I) == TotalIngress
rule r3: Congestion > 0 -> max(I) >= BW/2
`

// rulesTestSchema is usable from fuzz setup, which has no *testing.T.
func rulesTestSchema() *rules.Schema {
	return rules.MustSchema(
		rules.Field{Name: "TotalIngress", Kind: rules.Scalar, Lo: 0, Hi: 300},
		rules.Field{Name: "Congestion", Kind: rules.Scalar, Lo: 0, Hi: 100},
		rules.Field{Name: "I", Kind: rules.Vector, Len: 5, Lo: 0, Hi: 60},
	)
}

func testSchema(t *testing.T) *rules.Schema {
	t.Helper()
	return rulesTestSchema()
}

func testRuleSet(t *testing.T, schema *rules.Schema) *rules.RuleSet {
	t.Helper()
	rs, err := rules.ParseRuleSet(testRulesText, schema)
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func testEngine(t *testing.T, lm core.LM) (*core.Engine, *rules.RuleSet, *rules.Schema) {
	t.Helper()
	schema := testSchema(t)
	rs := testRuleSet(t, schema)
	slots, err := core.TelemetryGrammar(schema, []string{"TotalIngress", "Congestion"}, "I")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(core.Config{
		LM: lm, Tok: vocab.Telemetry(), Schema: schema,
		Rules: rs, Slots: slots, Mode: core.LeJIT,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, rs, schema
}

// newTestServer builds a Server over a uniform LM, applies cfg tweaks, and
// registers cleanup.
func newTestServer(t *testing.T, tweak func(*Config)) *Server {
	t.Helper()
	eng, rs, schema := testEngine(t, uniformLM{vocab: vocab.Telemetry().Size()})
	cfg := Config{Engine: eng, Rules: rs, Schema: schema, Workers: 2, BatchWindow: time.Millisecond}
	if tweak != nil {
		tweak(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func postJSON(t *testing.T, ts *httptest.Server, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// --- Handler unit tests -----------------------------------------------------

func TestHandlerBadJSON(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()
	for _, body := range []string{"", "{", `"just a string"`, `{"known": 12}`, `{"known": {}} trailing`} {
		resp, _ := postJSON(t, ts, "/v1/impute", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestHandlerUnknownMode(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, data := postJSON(t, ts, "/v1/impute", `{"mode": "telepathy"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 (body %s)", resp.StatusCode, data)
	}
	var e ErrorResponse
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Error, "telepathy") {
		t.Errorf("error %q does not name the bad mode", e.Error)
	}
}

func TestHandlerOversizedPayload(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MaxBodyBytes = 64 })
	ts := httptest.NewServer(s)
	defer ts.Close()
	big := fmt.Sprintf(`{"known": %s{"TotalIngress": [1]}}`, strings.Repeat(" ", 200))
	resp, _ := postJSON(t, ts, "/v1/impute", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}

func TestHandlerUnknownField(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, _ := postJSON(t, ts, "/v1/impute", `{"known": {"Nonsense": [1]}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts, "/v1/impute", `{"known": {"TotalIngress": [9999]}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-domain value: status %d, want 400", resp.StatusCode)
	}
}

func TestGenerateRejectsKnown(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, _ := postJSON(t, ts, "/v1/generate", `{"known": {"TotalIngress": [10]}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/impute")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status %d, want 405", resp.StatusCode)
	}
}

func TestCheckEndpoint(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	good := `{"record": {"TotalIngress": [100], "Congestion": [10], "I": [30, 20, 10, 20, 20]}}`
	resp, data := postJSON(t, ts, "/v1/check", good)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 (body %s)", resp.StatusCode, data)
	}
	var cr CheckResponse
	if err := json.Unmarshal(data, &cr); err != nil {
		t.Fatal(err)
	}
	if !cr.Compliant || len(cr.Violations) != 0 {
		t.Errorf("compliant record reported %+v", cr)
	}

	// sum(I) != TotalIngress violates r2.
	bad := `{"record": {"TotalIngress": [100], "Congestion": [10], "I": [1, 1, 1, 1, 1]}}`
	resp, data = postJSON(t, ts, "/v1/check", bad)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 (body %s)", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Compliant || len(cr.Violations) == 0 {
		t.Errorf("violating record reported %+v", cr)
	}
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, data := getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if !bytes.Contains(data, []byte(`"ok"`)) {
		t.Errorf("healthz body %s", data)
	}
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestImputeBasic exercises the full path once: valid request → compliant
// record, stats populated, metrics counted.
func TestImputeBasic(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, data := postJSON(t, ts, "/v1/impute", `{"known": {"TotalIngress": [100], "Congestion": [10]}, "seed": 7}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var dr DecodeResponse
	if err := json.Unmarshal(data, &dr); err != nil {
		t.Fatal(err)
	}
	if !dr.Compliant {
		t.Errorf("response not compliant: %v", dr.Violations)
	}
	if dr.Stats.Tokens == 0 || dr.Stats.SolverChecks == 0 {
		t.Errorf("stats not populated: %+v", dr.Stats)
	}
	if dr.BatchSize < 1 {
		t.Errorf("batch size %d", dr.BatchSize)
	}
	if dr.Line == "" {
		t.Error("empty line rendering")
	}
	snap := s.Metrics().Snapshot()
	if snap.Requests["impute"][200] != 1 {
		t.Errorf("metrics: %+v", snap.Requests)
	}
	if snap.Tokens == 0 || snap.SolverChecks == 0 {
		t.Errorf("metrics decode counters empty: %+v", snap)
	}
}

// TestImputeSeedDeterminism: the same seed must return the same record, no
// matter how the two requests were batched with other traffic.
func TestImputeSeedDeterminism(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.BatchWindow = 10 * time.Millisecond; c.MaxBatch = 8 })
	ts := httptest.NewServer(s)
	defer ts.Close()

	body := `{"known": {"TotalIngress": [120], "Congestion": [10]}, "seed": 42}`
	_, first := postJSON(t, ts, "/v1/impute", body)
	var want DecodeResponse
	if err := json.Unmarshal(first, &want); err != nil {
		t.Fatal(err)
	}

	// Re-issue the seeded request alongside background traffic so it lands
	// at a different batch position.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			postJSON(t, ts, "/v1/impute", fmt.Sprintf(`{"known": {"TotalIngress": [%d], "Congestion": [0]}}`, 50+i))
		}(i)
	}
	_, again := postJSON(t, ts, "/v1/impute", body)
	wg.Wait()
	var got DecodeResponse
	if err := json.Unmarshal(again, &got); err != nil {
		t.Fatal(err)
	}
	if got.Line != want.Line {
		t.Errorf("seeded request not deterministic across batches:\n got %q\nwant %q", got.Line, want.Line)
	}
}

func TestMetricsEndpointRenders(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()
	postJSON(t, ts, "/v1/impute", `{"known": {"TotalIngress": [100], "Congestion": [10]}}`)
	resp, data := getBody(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	for _, want := range []string{
		`lejitd_requests_total{route="impute",pack="default",code="200"} 1`,
		"lejitd_batches_total 1",
		"lejitd_queue_depth 0",
		"lejitd_batch_size_sum 1",
		"lejitd_batch_size_count 1",
		"lejitd_request_duration_seconds_count 1",
		"lejitd_tokens_total",
		"lejitd_solver_checks_total",
		"lejitd_budget_exhausted_total 0",
		"lejitd_panics_recovered_total 0",
		"lejitd_lanes_retired_total 0",
		"lejitd_batcher_restarts_total 0",
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("metrics missing %q:\n%s", want, data)
		}
	}
}
