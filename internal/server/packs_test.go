package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/pack"
	"repro/internal/rules"
)

// newPackTestServer builds a Server over a multi-pack registry: the two
// built-in domain packs (uniform LMs) plus whatever tweak adds.
func newPackTestServer(t *testing.T, cacheBytes int64, tweak func(*Config)) *Server {
	t.Helper()
	reg := pack.NewRegistry(cacheBytes)
	for _, def := range []pack.Definition{pack.RouterCfgDefinition(nil), pack.FinComplianceDefinition(nil)} {
		pk, err := pack.Compile(def)
		if err != nil {
			t.Fatal(err)
		}
		if err := reg.Register(pk); err != nil {
			t.Fatal(err)
		}
	}
	cfg := Config{Packs: reg, DefaultPack: pack.RouterCfgName, Workers: 2, BatchWindow: time.Millisecond}
	if tweak != nil {
		tweak(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// TestPackSelectionEndToEnd decodes through lejitd's HTTP surface with
// per-request pack selection: each pack's responses obey its own rules and
// carry its name and epoch.
func TestPackSelectionEndToEnd(t *testing.T) {
	s := newPackTestServer(t, 0, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	cases := []struct {
		body     string
		wantPack string
	}{
		{`{"pack": "routercfg", "known": {"NumAcls": [3]}, "seed": 1}`, "routercfg"},
		{`{"pack": "fincompliance", "known": {"TotalExposure": [120], "RiskScore": [80], "Escalate": [1]}, "seed": 2}`, "fincompliance"},
		{`{"known": {"NumAcls": [2]}, "seed": 3}`, "routercfg"}, // default pack
	}
	for i, tc := range cases {
		resp, data := postJSON(t, ts, "/v1/impute", tc.body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("case %d: status %d: %s", i, resp.StatusCode, data)
		}
		var out DecodeResponse
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatal(err)
		}
		if out.Pack != tc.wantPack {
			t.Errorf("case %d: pack %q, want %q", i, out.Pack, tc.wantPack)
		}
		if !out.Compliant || len(out.Violations) != 0 {
			t.Errorf("case %d: violations %v", i, out.Violations)
		}
		pk, _ := s.packs.Get(tc.wantPack)
		if out.Epoch != pk.EpochHex() {
			t.Errorf("case %d: epoch %q, want %q", i, out.Epoch, pk.EpochHex())
		}
		// The record must be the selected pack's shape, not another's.
		if err := pk.Schema.Validate(out.Record); err != nil {
			t.Errorf("case %d: %v", i, err)
		}
	}

	// Unknown pack: 400 with machine-readable status, never a decode.
	resp, data := postJSON(t, ts, "/v1/impute", `{"pack": "nope", "known": {"NumAcls": [1]}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown pack: status %d: %s", resp.StatusCode, data)
	}
	var e ErrorResponse
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatal(err)
	}
	if e.Status != "unknown_pack" {
		t.Errorf("unknown pack status %q, want unknown_pack", e.Status)
	}

	// Known fields validate against the selected pack's schema: NumAcls is
	// not a fincompliance field.
	resp, _ = postJSON(t, ts, "/v1/impute", `{"pack": "fincompliance", "known": {"NumAcls": [1]}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("cross-pack field: status %d, want 400", resp.StatusCode)
	}

	// /v1/check is pack-scoped too.
	resp, data = postJSON(t, ts, "/v1/check",
		`{"pack": "fincompliance", "record": {"TotalExposure": [90], "RiskScore": [10], "Escalate": [0], "Exposure": [90, 0, 0, 0]}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("check: status %d: %s", resp.StatusCode, data)
	}
	var chk CheckResponse
	if err := json.Unmarshal(data, &chk); err != nil {
		t.Fatal(err)
	}
	if chk.Compliant || len(chk.Violations) == 0 {
		t.Errorf("check: Exposure[0]=90 should violate catlimit, got %+v", chk)
	}

	// Per-pack metrics split.
	snap := s.Metrics().Snapshot()
	if got := snap.Packs["routercfg"].Requests["impute"][200]; got != 2 {
		t.Errorf("routercfg impute 200s = %d, want 2", got)
	}
	if got := snap.Packs["fincompliance"].Requests["impute"][200]; got != 1 {
		t.Errorf("fincompliance impute 200s = %d, want 1", got)
	}
	if snap.Packs["routercfg"].Tokens == 0 || snap.Packs["fincompliance"].Tokens == 0 {
		t.Errorf("per-pack token counters not split: %+v", snap.Packs)
	}
}

func TestPacksListingEndpoint(t *testing.T) {
	s := newPackTestServer(t, 0, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/packs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out PacksResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Default != pack.RouterCfgName || len(out.Packs) != 2 {
		t.Fatalf("listing %+v", out)
	}
	for _, info := range out.Packs {
		if info.Epoch == "" || info.Generation != 1 || info.Rules == 0 {
			t.Errorf("bad info %+v", info)
		}
		if info.Default != (info.Name == pack.RouterCfgName) {
			t.Errorf("default flag wrong on %+v", info)
		}
	}

	if resp, _ := postJSON(t, ts, "/v1/packs", `{}`); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/packs: %d, want 405", resp.StatusCode)
	}
}

func TestPackReloadEndpoint(t *testing.T) {
	s := newPackTestServer(t, 0, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	before, _ := s.packs.Get(pack.FinComplianceName)

	// Happy path: tighten CATMAX, decodes pick up the new rules.
	tightened := strings.ReplaceAll(pack.FinComplianceRules, "CATMAX = 80", "CATMAX = 75")
	body, _ := json.Marshal(ReloadRequest{Pack: pack.FinComplianceName, Rules: tightened})
	resp, data := postJSON(t, ts, "/v1/packs/reload", string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload: status %d: %s", resp.StatusCode, data)
	}
	var out ReloadResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Generation != 2 || out.Epoch == before.EpochHex() || out.Rules == 0 {
		t.Fatalf("reload response %+v (old epoch %s)", out, before.EpochHex())
	}
	resp, data = postJSON(t, ts, "/v1/impute",
		`{"pack": "fincompliance", "known": {"TotalExposure": [150], "RiskScore": [10], "Escalate": [1]}, "seed": 9}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-reload decode: %d: %s", resp.StatusCode, data)
	}
	var dec DecodeResponse
	if err := json.Unmarshal(data, &dec); err != nil {
		t.Fatal(err)
	}
	if dec.Epoch != out.Epoch {
		t.Errorf("post-reload decode epoch %q, want %q", dec.Epoch, out.Epoch)
	}
	for _, v := range dec.Record["Exposure"] {
		if v > 75 {
			t.Errorf("post-reload Exposure %d > 75", v)
		}
	}

	// Unknown pack: 404.
	resp, data = postJSON(t, ts, "/v1/packs/reload", `{"pack": "nope", "rules": ""}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown reload: %d: %s", resp.StatusCode, data)
	}

	// Bad rules: 400 with status bad_rules; pack keeps serving generation 2.
	resp, data = postJSON(t, ts, "/v1/packs/reload",
		fmt.Sprintf(`{"pack": %q, "rules": "rule x: Nope >= 1"}`, pack.FinComplianceName))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad reload: %d: %s", resp.StatusCode, data)
	}
	var e ErrorResponse
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatal(err)
	}
	if e.Status != "bad_rules" {
		t.Errorf("bad reload status %q, want bad_rules", e.Status)
	}
	cur, _ := s.packs.Get(pack.FinComplianceName)
	if cur.Generation != 2 {
		t.Errorf("failed reload moved generation to %d", cur.Generation)
	}

	// Missing pack field: 400.
	if resp, _ := postJSON(t, ts, "/v1/packs/reload", `{"rules": ""}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("packless reload: %d, want 400", resp.StatusCode)
	}

	// Reload counters surface in /metrics.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mbody, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(mbody)
	if !strings.Contains(text, `lejitd_pack_reloads_total{pack="fincompliance"} 1`) {
		t.Errorf("metrics missing reload counter:\n%s", text)
	}
	if !strings.Contains(text, `lejitd_pack_reload_errors_total{pack="fincompliance"} 1`) {
		t.Errorf("metrics missing reload error counter:\n%s", text)
	}
}

// TestPackReloadWhileDraining: reloads are management-plane writes; a
// draining server refuses them like it refuses decodes.
func TestPackReloadWhileDraining(t *testing.T) {
	s := newPackTestServer(t, 0, nil)
	s.draining.Store(true)
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, _ := postJSON(t, ts, "/v1/packs/reload",
		fmt.Sprintf(`{"pack": %q, "rules": ""}`, pack.RouterCfgName))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining reload: %d, want 503", resp.StatusCode)
	}
}

// TestMixedPackBatchGrouping: concurrent requests against different packs
// admitted into one batcher window decode correctly — each group runs on its
// own pack's engine and reports its own batch size.
func TestMixedPackBatchGrouping(t *testing.T) {
	s := newPackTestServer(t, 0, func(cfg *Config) { cfg.BatchWindow = 20 * time.Millisecond })
	ts := httptest.NewServer(s)
	defer ts.Close()

	const n = 8
	var wg sync.WaitGroup
	errs := make(chan string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pk, body := pack.RouterCfgName, fmt.Sprintf(`{"pack": "routercfg", "known": {"NumAcls": [%d]}, "seed": %d}`, 1+i%5, i)
			if i%2 == 1 {
				pk = pack.FinComplianceName
				body = fmt.Sprintf(`{"pack": "fincompliance", "known": {"TotalExposure": [%d], "RiskScore": [10], "Escalate": [1]}, "seed": %d}`, 50+i, i)
			}
			resp, data := postJSON(t, ts, "/v1/impute", body)
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Sprintf("req %d: %d %s", i, resp.StatusCode, data)
				return
			}
			var out DecodeResponse
			if err := json.Unmarshal(data, &out); err != nil {
				errs <- err.Error()
				return
			}
			if out.Pack != pk {
				errs <- fmt.Sprintf("req %d: pack %q, want %q", i, out.Pack, pk)
			}
			if !out.Compliant {
				errs <- fmt.Sprintf("req %d: violations %v", i, out.Violations)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestReloadUnderLoad hammers /v1/impute while concurrently flip-flopping
// the pack's rule set: every response must be compliant under the rule set
// matching its reported epoch, in-flight requests finish on their
// admission-time epoch, and stale prefix-cache entries are evicted rather
// than replayed. Run with -race in CI (Makefile verify).
func TestReloadUnderLoad(t *testing.T) {
	// A real (untrained) transformer so the prefix cache participates; small
	// enough that decodes are fast.
	reg := pack.NewRegistry(8 << 20)
	def := pack.FinComplianceDefinition(nil)
	tok, err := def.Tokenizer()
	if err != nil {
		t.Fatal(err)
	}
	m, err := nn.New(nn.Config{Vocab: tok.Size(), Ctx: 64, Dim: 16, Heads: 2, Layers: 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	def.LM = core.WrapNN(m)
	pk, err := pack.Compile(def)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(pk); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Packs: reg, DefaultPack: pack.FinComplianceName,
		Workers: 2, BatchWindow: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s)
	defer ts.Close()

	// The two rule sets that alternate: shipped (CATMAX 80) and tightened
	// (CATMAX 75). Example prompts stay feasible under both.
	loose := pack.FinComplianceRules
	tight := strings.ReplaceAll(loose, "CATMAX = 80", "CATMAX = 75")
	looseRS, err := rules.ParseRuleSet(loose, def.Schema)
	if err != nil {
		t.Fatal(err)
	}
	tightRS, err := rules.ParseRuleSet(tight, def.Schema)
	if err != nil {
		t.Fatal(err)
	}
	epochRules := map[string]*rules.RuleSet{pk.EpochHex(): looseRS}

	// Resolve both epochs up front (reload is deterministic per text).
	next, err := reg.Reload(pack.FinComplianceName, tight)
	if err != nil {
		t.Fatal(err)
	}
	epochRules[next.EpochHex()] = tightRS

	// The reloader is paced by decode traffic, not a sleep: each served
	// impute tickles pace (non-blocking), and the reloader flips the rules
	// once per tickle. Reloads and decodes stay interleaved at whatever rate
	// the host actually sustains.
	stop := make(chan struct{})
	pace := make(chan struct{}, 1)
	var reloads sync.WaitGroup
	reloads.Add(1)
	go func() {
		defer reloads.Done()
		texts := []string{loose, tight}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-pace:
			}
			body, _ := json.Marshal(ReloadRequest{Pack: pack.FinComplianceName, Rules: texts[i%2]})
			resp, err := http.Post(ts.URL+"/v1/packs/reload", "application/json", strings.NewReader(string(body)))
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
		}
	}()

	const workers, perWorker = 4, 25
	var wg sync.WaitGroup
	errs := make(chan string, workers*perWorker)
	examples := pack.FinComplianceExamples(workers*perWorker, 77)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ex := examples[w*perWorker+i]
				body := fmt.Sprintf(
					`{"known": {"TotalExposure": [%d], "RiskScore": [%d], "Escalate": [%d]}, "seed": %d}`,
					ex["TotalExposure"][0], ex["RiskScore"][0], ex["Escalate"][0], w*perWorker+i)
				resp, data := postJSON(t, ts, "/v1/impute", body)
				select {
				case pace <- struct{}{}:
				default:
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Sprintf("worker %d req %d: %d %s", w, i, resp.StatusCode, data)
					continue
				}
				var out DecodeResponse
				if err := json.Unmarshal(data, &out); err != nil {
					errs <- err.Error()
					continue
				}
				rs, ok := epochRules[out.Epoch]
				if !ok {
					errs <- fmt.Sprintf("response carries unknown epoch %q", out.Epoch)
					continue
				}
				viol, err := rs.Violations(out.Record)
				if err != nil {
					errs <- err.Error()
					continue
				}
				if len(viol) > 0 {
					errs <- fmt.Sprintf("epoch %s decode violates its own rules: %v (%v)", out.Epoch, viol, out.Record)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	reloads.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	snap := s.Metrics().Snapshot()
	ps := snap.Packs[pack.FinComplianceName]
	if ps.Reloads < 2 {
		t.Errorf("reloads %d, want >= 2", ps.Reloads)
	}
	// Epoch flips invalidate cached snapshots on sight: with requests
	// crossing at least two epochs, evictions must have happened.
	if ps.Prefix.Inserts > 0 && ps.Prefix.Evictions == 0 {
		t.Errorf("prefix cache saw %d inserts but no evictions across epoch flips", ps.Prefix.Inserts)
	}
}
