package server

import (
	"bytes"
	"testing"
)

// FuzzImputeRequest: arbitrary client bytes must parse or error, never
// panic — a malformed request can never take the daemon down. Anything
// accepted must be normalized (a known mode, non-negative timeout, no empty
// known map).
func FuzzImputeRequest(f *testing.F) {
	f.Add([]byte(`{"known": {"TotalIngress": [100], "Congestion": [8]}, "seed": 1}`))
	f.Add([]byte(`{"known": {"I": [1,2,3,4,5]}, "mode": "rejection", "timeout_ms": 50}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"mode": "telepathy"}`))
	f.Add([]byte(`{"known": 12}`))
	f.Add([]byte(`{"known": {"TotalIngress": [999999999999999999]}}`))
	f.Add([]byte(`{"known": {"TotalIngress": [1]}} {"again": true}`))
	f.Add([]byte(`{"seed": -9223372036854775808, "timeout_ms": -1}`))
	f.Add([]byte(`{"unknown_key": true}`))

	schema := rulesTestSchema()
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ParseDecodeRequest(bytes.NewReader(data), schema, true)
		if err != nil {
			return
		}
		switch req.Mode {
		case ModeLeJIT, ModeVanilla, ModeRejection, ModePostHoc:
		default:
			t.Fatalf("accepted request has unnormalized mode %q", req.Mode)
		}
		if req.TimeoutMs < 0 {
			t.Fatalf("accepted request has negative timeout %d", req.TimeoutMs)
		}
		if req.Known != nil && len(req.Known) == 0 {
			t.Fatal("accepted request has empty non-nil known map")
		}
		// The check decoder must be panic-free on the same input too.
		_, _ = ParseCheckRequest(bytes.NewReader(data), schema)
	})
}
