package server

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/pack"
	"repro/internal/prefixcache"
	"repro/internal/router"
)

// histogram is a fixed-bucket Prometheus histogram. Buckets are cumulative
// upper bounds; a +Inf bucket is implicit (Count).
type histogram struct {
	bounds []float64
	counts []uint64
	sum    float64
	count  uint64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]uint64, len(bounds))}
}

func (h *histogram) observe(v float64) {
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
		}
	}
	h.sum += v
	h.count++
}

// Mean returns the average observation (0 when empty).
func (h *histogram) mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

func (h *histogram) write(w io.Writer, name string) {
	for i, b := range h.bounds {
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, strconv.FormatFloat(b, 'g', -1, 64), h.counts[i])
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.count)
	fmt.Fprintf(w, "%s_sum %g\n", name, h.sum)
	fmt.Fprintf(w, "%s_count %d\n", name, h.count)
}

// packCounters are the decode counters kept per domain pack.
type packCounters struct {
	tokens        uint64
	solverChecks  uint64
	specAccepted  uint64
	specRollbacks uint64
}

// Metrics is the daemon's hand-rolled Prometheus registry: a handful of
// counters, one gauge, and two histograms — enough for dashboards and the
// acceptance tests without pulling in a client library. Request and decode
// counters are labeled by domain pack; requests that fail before pack
// resolution (parse errors, unknown pack) carry an empty pack label.
type Metrics struct {
	mu sync.Mutex
	// requests[route][pack][code] counts completed HTTP requests.
	requests map[string]map[string]map[int]uint64
	rejected uint64 // 429 backpressure rejections (also in requests)
	timeouts uint64 // requests that hit their deadline
	batches  uint64 // core.DecodeRequests calls issued by the batcher

	batchSize *histogram // records per batch
	latency   *histogram // end-to-end request seconds (enqueue → reply)

	tokens       uint64 // decoded tokens (from core.Stats)
	solverChecks uint64 // SMT checks attributable to served decodes

	// Speculative-decoding counters (DESIGN.md §13): tokens committed via an
	// accepted lookahead window, and windows rolled back after validation.
	specAccepted  uint64
	specRollbacks uint64

	// perPack splits the decode counters above by domain pack.
	perPack map[string]*packCounters

	// Fault-isolation counters (DESIGN.md §10): every failed record of a
	// dispatched batch retires one lane; the two sub-causes worth alerting
	// on — solver budget exhaustion and recovered panics — are also counted
	// on their own. batcherRestarts counts batcher goroutine resurrections
	// after a panic escaped a batch.
	budgetExhausted uint64
	panicsRecovered uint64
	lanesRetired    uint64
	batcherRestarts uint64

	// Scale-out counters: requests admitted past backpressure (a request
	// still decoding has been admitted but not yet counted in requests, so
	// this is the honest "accepted work" number), SSE streaming responses,
	// and router shards drained after crossing their failure threshold.
	admitted    uint64
	streams     uint64
	shardDrains uint64

	ttft *histogram // streaming time-to-first-chunk seconds (admission → first slot event)

	// cond is broadcast on every counter mutation so WaitUntil can sleep on
	// state changes instead of polling.
	cond *sync.Cond

	// load samples router state — (queued, admitted-but-unfinished) — at
	// scrape time. The second gauge is the backpressure-honest one: a full
	// in-flight batch with an empty queue still reports its jobs here.
	load func() (queued, inflight int)
	// shardStats samples per-shard router state at scrape time. May be nil.
	shardStats func() []router.ShardStats
	// packStats samples per-pack runtime state (prefix-cache counters,
	// reload counters) from the pack registry at scrape time. May be nil.
	packStats func() map[string]pack.RuntimeStats
}

func newMetrics(load func() (int, int), shardStats func() []router.ShardStats, packStats func() map[string]pack.RuntimeStats) *Metrics {
	m := &Metrics{
		requests:   map[string]map[string]map[int]uint64{},
		perPack:    map[string]*packCounters{},
		batchSize:  newHistogram([]float64{1, 2, 4, 8, 16, 32, 64}),
		latency:    newHistogram([]float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}),
		ttft:       newHistogram([]float64{0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}),
		load:       load,
		shardStats: shardStats,
		packStats:  packStats,
	}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// WaitUntil blocks until pred holds of a live snapshot or timeout elapses,
// returning whether it held. It sleeps on the metrics condition variable —
// every mutator broadcasts — so callers get wakeups on state changes instead
// of sleep-polling. Router gauges (queue depth, inflight) are sampled fresh
// at each wakeup; a mutation that indirectly changes them (an admission, a
// dispatched batch, a delivered result) triggers re-evaluation.
func (m *Metrics) WaitUntil(timeout time.Duration, pred func(Snapshot) bool) bool {
	expired := false
	timer := time.AfterFunc(timeout, func() {
		m.mu.Lock()
		expired = true
		m.cond.Broadcast()
		m.mu.Unlock()
	})
	defer timer.Stop()
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if pred(m.snapshotLocked()) {
			return true
		}
		if expired {
			return false
		}
		m.cond.Wait()
	}
}

func (m *Metrics) countRequest(route, pk string, code int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	byPack := m.requests[route]
	if byPack == nil {
		byPack = map[string]map[int]uint64{}
		m.requests[route] = byPack
	}
	byCode := byPack[pk]
	if byCode == nil {
		byCode = map[int]uint64{}
		byPack[pk] = byCode
	}
	byCode[code]++
	if code == 429 {
		m.rejected++
	}
	m.cond.Broadcast()
}

func (m *Metrics) countTimeout() {
	m.mu.Lock()
	m.timeouts++
	m.cond.Broadcast()
	m.mu.Unlock()
}

func (m *Metrics) observeBatch(size int) {
	m.mu.Lock()
	m.batches++
	m.batchSize.observe(float64(size))
	m.cond.Broadcast()
	m.mu.Unlock()
}

func (m *Metrics) observeLatency(seconds float64) {
	m.mu.Lock()
	m.latency.observe(seconds)
	m.cond.Broadcast()
	m.mu.Unlock()
}

// noteAdmitted records one request past admission control. Broadcasting here
// matters beyond the counter itself: admission changes the router's queue and
// inflight gauges, and this is the wakeup that lets WaitUntil observe them.
func (m *Metrics) noteAdmitted() {
	m.mu.Lock()
	m.admitted++
	m.cond.Broadcast()
	m.mu.Unlock()
}

func (m *Metrics) countStream() {
	m.mu.Lock()
	m.streams++
	m.cond.Broadcast()
	m.mu.Unlock()
}

func (m *Metrics) observeTTFT(seconds float64) {
	m.mu.Lock()
	m.ttft.observe(seconds)
	m.cond.Broadcast()
	m.mu.Unlock()
}

func (m *Metrics) countShardDrain() {
	m.mu.Lock()
	m.shardDrains++
	m.cond.Broadcast()
	m.mu.Unlock()
}

func (m *Metrics) countDecode(pk string, tokens int, solverChecks uint64, specAccepted, specRollbacks int) {
	m.mu.Lock()
	m.tokens += uint64(tokens)
	m.solverChecks += solverChecks
	m.specAccepted += uint64(specAccepted)
	m.specRollbacks += uint64(specRollbacks)
	pc := m.perPack[pk]
	if pc == nil {
		pc = &packCounters{}
		m.perPack[pk] = pc
	}
	pc.tokens += uint64(tokens)
	pc.solverChecks += solverChecks
	pc.specAccepted += uint64(specAccepted)
	pc.specRollbacks += uint64(specRollbacks)
	m.mu.Unlock()
}

// countLaneRetired records one failed batch record, flagged by cause.
func (m *Metrics) countLaneRetired(budget, panicked bool) {
	m.mu.Lock()
	m.lanesRetired++
	if budget {
		m.budgetExhausted++
	}
	if panicked {
		m.panicsRecovered++
	}
	m.cond.Broadcast()
	m.mu.Unlock()
}

func (m *Metrics) countBatcherRestart() {
	m.mu.Lock()
	m.batcherRestarts++
	m.cond.Broadcast()
	m.mu.Unlock()
}

// budgetTrips reads the budget-exhaustion counter (healthz degradation).
func (m *Metrics) budgetTrips() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.budgetExhausted
}

// PackSnapshot is one pack's slice of the counters.
type PackSnapshot struct {
	Requests map[string]map[int]uint64 // route → code

	Tokens             uint64
	SolverChecks       uint64
	SpecAcceptedTokens uint64
	SpecRollbacks      uint64

	// Prefix and the reload counters are sampled from the pack registry.
	Prefix       prefixcache.Stats
	Reloads      uint64
	ReloadErrors uint64
}

// Snapshot is a programmatic view of the counters, for tests and the serve
// benchmark (which would otherwise scrape and parse the text endpoint).
// Top-level fields aggregate over packs; Packs splits them out.
type Snapshot struct {
	Requests      map[string]map[int]uint64 // route → code, summed over packs
	Rejected      uint64
	Timeouts      uint64
	Batches       uint64
	BatchedRecs   uint64
	MeanBatchSize float64
	Tokens        uint64
	SolverChecks  uint64
	QueueDepth    int
	// Inflight counts requests admitted but not yet answered — queued plus
	// decoding. A full in-flight batch with an empty queue shows up here,
	// which the queue gauge alone would report as zero load.
	Inflight int

	SpecAcceptedTokens uint64
	SpecRollbacks      uint64

	BudgetExhausted uint64
	PanicsRecovered uint64
	LanesRetired    uint64
	BatcherRestarts uint64

	// Scale-out state: cumulative admissions, SSE streaming responses,
	// router shard drains, and the per-shard gauge sample.
	Admitted    uint64
	Streams     uint64
	ShardDrains uint64
	Shards      []router.ShardStats

	// Prefix sums the per-pack prefix-cache counters at snapshot time; the
	// zero value when no pack has a cache.
	Prefix prefixcache.Stats

	// Packs holds the per-pack split (requests, decode counters, prefix
	// cache, reloads), keyed by pack name.
	Packs map[string]PackSnapshot
}

// Snapshot returns a copy of the current counter state.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.snapshotLocked()
}

func (m *Metrics) snapshotLocked() Snapshot {
	s := Snapshot{
		Requests: make(map[string]map[int]uint64, len(m.requests)),
		Rejected: m.rejected,
		Timeouts: m.timeouts,
		Batches:  m.batches,
		// One histogram observation per batch, valued at its size: the sum
		// is total records batched and the mean is records per batch.
		BatchedRecs:   uint64(m.batchSize.sum),
		MeanBatchSize: m.batchSize.mean(),
		Tokens:        m.tokens,
		SolverChecks:  m.solverChecks,

		SpecAcceptedTokens: m.specAccepted,
		SpecRollbacks:      m.specRollbacks,

		BudgetExhausted: m.budgetExhausted,
		PanicsRecovered: m.panicsRecovered,
		LanesRetired:    m.lanesRetired,
		BatcherRestarts: m.batcherRestarts,

		Admitted:    m.admitted,
		Streams:     m.streams,
		ShardDrains: m.shardDrains,

		Packs: map[string]PackSnapshot{},
	}
	packSnap := func(pk string) PackSnapshot {
		ps, ok := s.Packs[pk]
		if !ok {
			ps = PackSnapshot{Requests: map[string]map[int]uint64{}}
		}
		return ps
	}
	for route, byPack := range m.requests {
		agg := make(map[int]uint64)
		for pk, byCode := range byPack {
			ps := packSnap(pk)
			cp := make(map[int]uint64, len(byCode))
			for c, n := range byCode {
				cp[c] = n
				agg[c] += n
			}
			ps.Requests[route] = cp
			s.Packs[pk] = ps
		}
		s.Requests[route] = agg
	}
	for pk, pc := range m.perPack {
		ps := packSnap(pk)
		ps.Tokens = pc.tokens
		ps.SolverChecks = pc.solverChecks
		ps.SpecAcceptedTokens = pc.specAccepted
		ps.SpecRollbacks = pc.specRollbacks
		s.Packs[pk] = ps
	}
	if m.load != nil {
		s.QueueDepth, s.Inflight = m.load()
	}
	if m.shardStats != nil {
		s.Shards = m.shardStats()
	}
	if m.packStats != nil {
		for pk, rt := range m.packStats() {
			ps := packSnap(pk)
			ps.Prefix = rt.Prefix
			ps.Reloads = rt.Reloads
			ps.ReloadErrors = rt.ReloadErrors
			s.Packs[pk] = ps

			s.Prefix.Hits += rt.Prefix.Hits
			s.Prefix.Misses += rt.Prefix.Misses
			s.Prefix.Evictions += rt.Prefix.Evictions
			s.Prefix.Inserts += rt.Prefix.Inserts
			s.Prefix.BytesResident += rt.Prefix.BytesResident
			s.Prefix.Entries += rt.Prefix.Entries
		}
	}
	return s
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format, in deterministic order.
func (m *Metrics) WritePrometheus(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintln(w, "# HELP lejitd_requests_total Completed HTTP requests by route, domain pack, and status code.")
	fmt.Fprintln(w, "# TYPE lejitd_requests_total counter")
	routes := make([]string, 0, len(m.requests))
	for r := range m.requests {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	for _, r := range routes {
		packs := make([]string, 0, len(m.requests[r]))
		for pk := range m.requests[r] {
			packs = append(packs, pk)
		}
		sort.Strings(packs)
		for _, pk := range packs {
			codes := make([]int, 0, len(m.requests[r][pk]))
			for c := range m.requests[r][pk] {
				codes = append(codes, c)
			}
			sort.Ints(codes)
			for _, c := range codes {
				fmt.Fprintf(w, "lejitd_requests_total{route=%q,pack=%q,code=\"%d\"} %d\n", r, pk, c, m.requests[r][pk][c])
			}
		}
	}

	fmt.Fprintln(w, "# HELP lejitd_rejected_total Requests rejected by queue backpressure (HTTP 429).")
	fmt.Fprintln(w, "# TYPE lejitd_rejected_total counter")
	fmt.Fprintf(w, "lejitd_rejected_total %d\n", m.rejected)

	fmt.Fprintln(w, "# HELP lejitd_timeouts_total Requests that hit their deadline before a result.")
	fmt.Fprintln(w, "# TYPE lejitd_timeouts_total counter")
	fmt.Fprintf(w, "lejitd_timeouts_total %d\n", m.timeouts)

	fmt.Fprintln(w, "# HELP lejitd_batches_total Micro-batches dispatched to the decode pool.")
	fmt.Fprintln(w, "# TYPE lejitd_batches_total counter")
	fmt.Fprintf(w, "lejitd_batches_total %d\n", m.batches)

	if m.load != nil {
		queued, inflight := m.load()
		fmt.Fprintln(w, "# HELP lejitd_queue_depth Requests waiting in shard admission queues.")
		fmt.Fprintln(w, "# TYPE lejitd_queue_depth gauge")
		fmt.Fprintf(w, "lejitd_queue_depth %d\n", queued)
		fmt.Fprintln(w, "# HELP lejitd_inflight Requests admitted but not yet answered (queued plus decoding).")
		fmt.Fprintln(w, "# TYPE lejitd_inflight gauge")
		fmt.Fprintf(w, "lejitd_inflight %d\n", inflight)
	}
	if m.shardStats != nil {
		st := m.shardStats()
		fmt.Fprintln(w, "# HELP lejitd_shard_queue_depth Requests waiting per engine shard.")
		fmt.Fprintln(w, "# TYPE lejitd_shard_queue_depth gauge")
		for _, sh := range st {
			fmt.Fprintf(w, "lejitd_shard_queue_depth{shard=\"%d\"} %d\n", sh.Shard, sh.Queued)
		}
		fmt.Fprintln(w, "# HELP lejitd_shard_inflight Requests admitted to an engine shard and not yet answered.")
		fmt.Fprintln(w, "# TYPE lejitd_shard_inflight gauge")
		for _, sh := range st {
			fmt.Fprintf(w, "lejitd_shard_inflight{shard=\"%d\"} %d\n", sh.Shard, sh.Inflight)
		}
		fmt.Fprintln(w, "# HELP lejitd_shard_drains_total Shard self-drains after crossing the failure threshold.")
		fmt.Fprintln(w, "# TYPE lejitd_shard_drains_total counter")
		for _, sh := range st {
			fmt.Fprintf(w, "lejitd_shard_drains_total{shard=\"%d\"} %d\n", sh.Shard, sh.Drains)
		}
	}

	fmt.Fprintln(w, "# HELP lejitd_admitted_total Requests admitted past backpressure (includes in-flight).")
	fmt.Fprintln(w, "# TYPE lejitd_admitted_total counter")
	fmt.Fprintf(w, "lejitd_admitted_total %d\n", m.admitted)

	fmt.Fprintln(w, "# HELP lejitd_streams_total Requests answered as SSE streams.")
	fmt.Fprintln(w, "# TYPE lejitd_streams_total counter")
	fmt.Fprintf(w, "lejitd_streams_total %d\n", m.streams)

	fmt.Fprintln(w, "# HELP lejitd_batch_size Records coalesced per micro-batch.")
	fmt.Fprintln(w, "# TYPE lejitd_batch_size histogram")
	m.batchSize.write(w, "lejitd_batch_size")

	fmt.Fprintln(w, "# HELP lejitd_request_duration_seconds End-to-end decode request latency.")
	fmt.Fprintln(w, "# TYPE lejitd_request_duration_seconds histogram")
	m.latency.write(w, "lejitd_request_duration_seconds")

	fmt.Fprintln(w, "# HELP lejitd_stream_ttft_seconds Streaming time to first slot event (admission to first chunk).")
	fmt.Fprintln(w, "# TYPE lejitd_stream_ttft_seconds histogram")
	m.ttft.write(w, "lejitd_stream_ttft_seconds")

	packNames := make([]string, 0, len(m.perPack))
	for pk := range m.perPack {
		packNames = append(packNames, pk)
	}
	sort.Strings(packNames)

	fmt.Fprintln(w, "# HELP lejitd_tokens_total Tokens decoded for served requests, by domain pack.")
	fmt.Fprintln(w, "# TYPE lejitd_tokens_total counter")
	for _, pk := range packNames {
		fmt.Fprintf(w, "lejitd_tokens_total{pack=%q} %d\n", pk, m.perPack[pk].tokens)
	}

	fmt.Fprintln(w, "# HELP lejitd_solver_checks_total SMT solver checks attributable to served requests, by domain pack.")
	fmt.Fprintln(w, "# TYPE lejitd_solver_checks_total counter")
	for _, pk := range packNames {
		fmt.Fprintf(w, "lejitd_solver_checks_total{pack=%q} %d\n", pk, m.perPack[pk].solverChecks)
	}

	fmt.Fprintln(w, "# HELP lejitd_speculation_accepted_tokens_total Tokens committed through accepted speculative lookahead windows, by domain pack.")
	fmt.Fprintln(w, "# TYPE lejitd_speculation_accepted_tokens_total counter")
	for _, pk := range packNames {
		fmt.Fprintf(w, "lejitd_speculation_accepted_tokens_total{pack=%q} %d\n", pk, m.perPack[pk].specAccepted)
	}

	fmt.Fprintln(w, "# HELP lejitd_speculation_rollbacks_total Speculative windows rolled back after suffix validation failed, by domain pack.")
	fmt.Fprintln(w, "# TYPE lejitd_speculation_rollbacks_total counter")
	for _, pk := range packNames {
		fmt.Fprintf(w, "lejitd_speculation_rollbacks_total{pack=%q} %d\n", pk, m.perPack[pk].specRollbacks)
	}

	if m.packStats != nil {
		stats := m.packStats()
		names := make([]string, 0, len(stats))
		for pk := range stats {
			names = append(names, pk)
		}
		sort.Strings(names)

		fmt.Fprintln(w, "# HELP lejitd_prefix_hits_total Decodes warm-started from the cross-request prefix cache, by domain pack.")
		fmt.Fprintln(w, "# TYPE lejitd_prefix_hits_total counter")
		for _, pk := range names {
			fmt.Fprintf(w, "lejitd_prefix_hits_total{pack=%q} %d\n", pk, stats[pk].Prefix.Hits)
		}

		fmt.Fprintln(w, "# HELP lejitd_prefix_misses_total Prefix-cache lookups that found no usable snapshot, by domain pack.")
		fmt.Fprintln(w, "# TYPE lejitd_prefix_misses_total counter")
		for _, pk := range names {
			fmt.Fprintf(w, "lejitd_prefix_misses_total{pack=%q} %d\n", pk, stats[pk].Prefix.Misses)
		}

		fmt.Fprintln(w, "# HELP lejitd_prefix_evictions_total Prefix-cache snapshots dropped (LRU capacity, stale rule epoch, or replacement), by domain pack.")
		fmt.Fprintln(w, "# TYPE lejitd_prefix_evictions_total counter")
		for _, pk := range names {
			fmt.Fprintf(w, "lejitd_prefix_evictions_total{pack=%q} %d\n", pk, stats[pk].Prefix.Evictions)
		}

		fmt.Fprintln(w, "# HELP lejitd_prefix_cache_bytes Bytes pinned by resident prefix-cache snapshots, by domain pack.")
		fmt.Fprintln(w, "# TYPE lejitd_prefix_cache_bytes gauge")
		for _, pk := range names {
			fmt.Fprintf(w, "lejitd_prefix_cache_bytes{pack=%q} %d\n", pk, stats[pk].Prefix.BytesResident)
		}

		fmt.Fprintln(w, "# HELP lejitd_prefix_cache_entries Resident prefix-cache snapshots, by domain pack.")
		fmt.Fprintln(w, "# TYPE lejitd_prefix_cache_entries gauge")
		for _, pk := range names {
			fmt.Fprintf(w, "lejitd_prefix_cache_entries{pack=%q} %d\n", pk, stats[pk].Prefix.Entries)
		}

		fmt.Fprintln(w, "# HELP lejitd_pack_reloads_total Successful hot reloads of a pack's rule set.")
		fmt.Fprintln(w, "# TYPE lejitd_pack_reloads_total counter")
		for _, pk := range names {
			fmt.Fprintf(w, "lejitd_pack_reloads_total{pack=%q} %d\n", pk, stats[pk].Reloads)
		}

		fmt.Fprintln(w, "# HELP lejitd_pack_reload_errors_total Rejected hot reloads (parse, compile, or satisfiability failure); the prior rules kept serving.")
		fmt.Fprintln(w, "# TYPE lejitd_pack_reload_errors_total counter")
		for _, pk := range names {
			fmt.Fprintf(w, "lejitd_pack_reload_errors_total{pack=%q} %d\n", pk, stats[pk].ReloadErrors)
		}
	}

	fmt.Fprintln(w, "# HELP lejitd_budget_exhausted_total Requests whose solver budget or deadline ran out mid-decode (HTTP 503).")
	fmt.Fprintln(w, "# TYPE lejitd_budget_exhausted_total counter")
	fmt.Fprintf(w, "lejitd_budget_exhausted_total %d\n", m.budgetExhausted)

	fmt.Fprintln(w, "# HELP lejitd_panics_recovered_total Decoding panics converted into per-request failures (HTTP 500).")
	fmt.Fprintln(w, "# TYPE lejitd_panics_recovered_total counter")
	fmt.Fprintf(w, "lejitd_panics_recovered_total %d\n", m.panicsRecovered)

	fmt.Fprintln(w, "# HELP lejitd_lanes_retired_total Batch records that failed while their batch-mates kept decoding.")
	fmt.Fprintln(w, "# TYPE lejitd_lanes_retired_total counter")
	fmt.Fprintf(w, "lejitd_lanes_retired_total %d\n", m.lanesRetired)

	fmt.Fprintln(w, "# HELP lejitd_batcher_restarts_total Batcher goroutine restarts after an escaped panic.")
	fmt.Fprintln(w, "# TYPE lejitd_batcher_restarts_total counter")
	fmt.Fprintf(w, "lejitd_batcher_restarts_total %d\n", m.batcherRestarts)

	fmt.Fprintln(w, "# HELP lejitd_router_drains_total Engine shards drained and re-cloned after repeated failures.")
	fmt.Fprintln(w, "# TYPE lejitd_router_drains_total counter")
	fmt.Fprintf(w, "lejitd_router_drains_total %d\n", m.shardDrains)
}
