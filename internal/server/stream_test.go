package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	name string
	data string
}

// parseSSE splits a complete event-stream body into events. The server only
// emits "event:" and "data:" lines, one data line per event.
func parseSSE(t *testing.T, body string) []sseEvent {
	t.Helper()
	var out []sseEvent
	for _, block := range strings.Split(body, "\n\n") {
		block = strings.TrimSpace(block)
		if block == "" {
			continue
		}
		var ev sseEvent
		for _, line := range strings.Split(block, "\n") {
			switch {
			case strings.HasPrefix(line, "event: "):
				ev.name = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				ev.data = strings.TrimPrefix(line, "data: ")
			default:
				t.Fatalf("unexpected SSE line %q", line)
			}
		}
		out = append(out, ev)
	}
	return out
}

// streamDecode POSTs one streaming request and returns the slot chunks in
// arrival order plus the terminal event.
func streamDecode(t *testing.T, ts *httptest.Server, path, body string) (chunks []StreamChunk, terminal sseEvent) {
	t.Helper()
	resp, data := postJSON(t, ts, path, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream transport status %d: %s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream Content-Type %q", ct)
	}
	events := parseSSE(t, string(data))
	if len(events) == 0 {
		t.Fatal("empty event stream")
	}
	for _, ev := range events[:len(events)-1] {
		if ev.name != "slot" {
			t.Fatalf("mid-stream event %q, want slot", ev.name)
		}
		var c StreamChunk
		if err := json.Unmarshal([]byte(ev.data), &c); err != nil {
			t.Fatal(err)
		}
		chunks = append(chunks, c)
	}
	return chunks, events[len(events)-1]
}

// checkStreamedResponse asserts the terminal event is "done", its payload
// matches the unary response for the same request bit for bit, and the slot
// chunks concatenate to exactly the response line.
func checkStreamedResponse(t *testing.T, label string, chunks []StreamChunk, terminal sseEvent, unary []byte) {
	t.Helper()
	if terminal.name != "done" {
		t.Fatalf("%s: terminal event %q (%s), want done", label, terminal.name, terminal.data)
	}
	var got, want DecodeResponse
	if err := json.Unmarshal([]byte(terminal.data), &got); err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if err := json.Unmarshal(unary, &want); err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if got.Line != want.Line {
		t.Errorf("%s: streamed line %q != unary %q", label, got.Line, want.Line)
	}
	if fmt.Sprint(got.Record) != fmt.Sprint(want.Record) {
		t.Errorf("%s: streamed record %v != unary %v", label, got.Record, want.Record)
	}
	if got.Epoch != want.Epoch || got.Pack != want.Pack {
		t.Errorf("%s: streamed pack/epoch %s/%s != unary %s/%s", label, got.Pack, got.Epoch, want.Pack, want.Epoch)
	}
	var sb strings.Builder
	for i, c := range chunks {
		if c.Slot != i {
			t.Errorf("%s: chunk %d carries slot %d (out of order or duplicated)", label, i, c.Slot)
		}
		sb.WriteString(c.Text)
	}
	if sb.String() != want.Line {
		t.Errorf("%s: concatenated chunks %q != line %q", label, sb.String(), want.Line)
	}
}

// TestStreamMatchesUnarySolo: on the per-record decode path, a streamed
// request emits one chunk per grammar slot, their concatenation equals the
// unary line for the same (prompt, seed), and the done event carries the
// identical DecodeResponse.
func TestStreamMatchesUnarySolo(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	cases := []struct{ path, known string }{
		{"/v1/impute", `"known": {"TotalIngress": [120], "Congestion": [10]}, `},
		{"/v1/impute", `"known": {"TotalIngress": [60], "Congestion": [0]}, `},
		{"/v1/generate", ""},
	}
	for ci, tc := range cases {
		for seed := 0; seed < 3; seed++ {
			label := fmt.Sprintf("case %d seed %d", ci, seed)
			unaryBody := fmt.Sprintf(`{%s"seed": %d}`, tc.known, seed)
			resp, unary := postJSON(t, ts, tc.path, unaryBody)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s: unary status %d: %s", label, resp.StatusCode, unary)
			}
			streamBody := fmt.Sprintf(`{%s"seed": %d, "stream": true}`, tc.known, seed)
			chunks, terminal := streamDecode(t, ts, tc.path, streamBody)
			checkStreamedResponse(t, label, chunks, terminal, unary)
		}
	}
	snap := s.Metrics().Snapshot()
	if want := uint64(len(cases) * 3); snap.Streams != want {
		t.Errorf("streams counter %d, want %d", snap.Streams, want)
	}
}

// TestStreamMatchesUnaryLockStep: streamed and unary requests coalesced into
// lock-step batches (nn-backed engine, wide batch window) stay bit-identical
// per (prompt, seed) — chunks from concurrently decoding lanes never mix.
func TestStreamMatchesUnaryLockStep(t *testing.T) {
	s := newFaultServer(t, nil, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	const n = 8
	body := func(i int, stream bool) string {
		extra := ""
		if stream {
			extra = `, "stream": true`
		}
		return fmt.Sprintf(`{"known": {"TotalIngress": [%d], "Congestion": [%d]}, "seed": %d%s}`,
			60+10*i, i%3, 1000+i, extra)
	}
	// One concurrent unary wave, then one concurrent streamed wave: each
	// coalesces into a lock-step batch; responses must match pairwise.
	unary := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, data := postJSON(t, ts, "/v1/impute", body(i, false))
			if resp.StatusCode != http.StatusOK {
				t.Errorf("unary %d: status %d: %s", i, resp.StatusCode, data)
				return
			}
			unary[i] = data
		}(i)
	}
	wg.Wait()

	type streamed struct {
		chunks   []StreamChunk
		terminal sseEvent
	}
	outs := make([]streamed, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			chunks, terminal := streamDecode(t, ts, "/v1/impute", body(i, true))
			outs[i] = streamed{chunks, terminal}
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		checkStreamedResponse(t, fmt.Sprintf("lane %d", i), outs[i].chunks, outs[i].terminal, unary[i])
	}
	// The streamed wave really batched (the whole point of lock-step) and
	// TTFT was recorded for it.
	snap := s.Metrics().Snapshot()
	if snap.MeanBatchSize <= 1 {
		t.Errorf("mean batch size %.2f, want > 1", snap.MeanBatchSize)
	}
	if snap.Streams != n {
		t.Errorf("streams counter %d, want %d", snap.Streams, n)
	}
}

// TestStreamErrorEvent: a streamed request that fails decode-side surfaces an
// "error" event carrying the status the unary path would have answered — here
// an infeasible prompt (422), checked against the unary shape.
func TestStreamErrorEvent(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	// TotalIngress 0 with Congestion 50 is infeasible: sum(I) == 0 forces
	// every I[t] to 0, violating max(I) >= BW/2 for congested records.
	_, unary := postJSON(t, ts, "/v1/impute", `{"known": {"TotalIngress": [0], "Congestion": [50]}, "seed": 1}`)
	var want ErrorResponse
	if err := json.Unmarshal(unary, &want); err != nil {
		t.Fatal(err)
	}
	if want.Status != "infeasible" {
		t.Fatalf("fixture not infeasible unary-side: %s", unary)
	}

	resp, data := postJSON(t, ts, "/v1/impute", `{"known": {"TotalIngress": [0], "Congestion": [50]}, "seed": 1, "stream": true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream transport status %d", resp.StatusCode)
	}
	events := parseSSE(t, string(data))
	last := events[len(events)-1]
	if last.name != "error" {
		t.Fatalf("terminal event %q, want error (%s)", last.name, last.data)
	}
	var se StreamError
	if err := json.Unmarshal([]byte(last.data), &se); err != nil {
		t.Fatal(err)
	}
	if se.Code != http.StatusUnprocessableEntity || se.Status != "infeasible" {
		t.Errorf("stream error %d/%q, want 422/infeasible", se.Code, se.Status)
	}
	// The logical code lands in the request counters even though the wire
	// status was 200.
	waitFor(t, s, func(sn Snapshot) bool {
		return sn.Requests["impute"][http.StatusUnprocessableEntity] == 2
	})
}

// TestStreamTTFTRecorded: the TTFT histogram counts streamed requests only.
func TestStreamTTFTRecorded(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	postJSON(t, ts, "/v1/impute", `{"known": {"TotalIngress": [100], "Congestion": [0]}, "seed": 3}`)
	streamDecode(t, ts, "/v1/impute", `{"known": {"TotalIngress": [100], "Congestion": [0]}, "seed": 3, "stream": true}`)

	_, data := getBody(t, ts.URL+"/metrics")
	text := string(data)
	if !strings.Contains(text, "lejitd_stream_ttft_seconds_count 1") {
		t.Errorf("metrics missing single-stream TTFT count:\n%s", grepMetric(text, "lejitd_stream_ttft"))
	}
	if !strings.Contains(text, "lejitd_streams_total 1") {
		t.Errorf("metrics missing streams total:\n%s", grepMetric(text, "lejitd_streams"))
	}
}

func grepMetric(text, prefix string) string {
	var b strings.Builder
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, prefix) {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}
