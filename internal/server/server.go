package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/pack"
	"repro/internal/rules"
)

// Config assembles a Server. Either Packs or Engine is required; everything
// else has serving-sane defaults.
type Config struct {
	// Packs is the domain-pack registry the server decodes under: each
	// request selects a pack by name ("pack" field, default DefaultPack) and
	// runs against that pack's engine, rules, and schema. When nil, the
	// Engine/Rules/Schema fields below are wrapped into a single-pack
	// registry named "default" — the pre-pack construction path.
	Packs *pack.Registry
	// DefaultPack names the pack used by requests that do not select one.
	// Required when Packs is set; implied ("default") otherwise.
	DefaultPack string

	// Engine decodes when Packs is nil. Engines are used only from the
	// single batcher goroutine (which hands per-worker clones to the pool),
	// so the engine's no-concurrency contract holds.
	Engine *core.Engine
	// Rules defines compliance for responses and /v1/check when Packs is
	// nil. May be nil.
	Rules *rules.RuleSet
	// Schema validates request records when Packs is nil. May be nil (no
	// validation).
	Schema *rules.Schema

	// BatchWindow is how long the batcher waits after the first request for
	// more to coalesce (default 2ms).
	BatchWindow time.Duration
	// MaxBatch caps records per micro-batch (default 32).
	MaxBatch int
	// QueueDepth bounds the admission queue; a full queue answers 429 with
	// Retry-After (default 256).
	QueueDepth int
	// Workers is the decode pool size per batch (default GOMAXPROCS).
	Workers int
	// Timeout is the default per-request deadline (default 30s); requests
	// may lower or raise it via timeout_ms.
	Timeout time.Duration
	// DrainTimeout bounds graceful shutdown (default 30s).
	DrainTimeout time.Duration
	// MaxBodyBytes caps request bodies (default 1 MiB).
	MaxBodyBytes int64
	// Seed is the base for server-assigned RNG seeds when a request does
	// not pin its own.
	Seed int64
	// DegradedThreshold makes /healthz report status "degraded" (still HTTP
	// 200, so load balancers keep the instance) once at least this many
	// requests have exhausted their solver budget. 0 disables degradation.
	DegradedThreshold int
	// KernelWorkers, when non-zero and Packs is nil, shards the wrapped
	// engine's GEMM kernels across a worker group of that many goroutines
	// (negative → GOMAXPROCS). Output is bit-identical at any worker count
	// (DESIGN.md §15). No-op for non-nn engines. When Packs is set, worker
	// groups are per-pack state (pack.Definition.KernelWorkers).
	KernelWorkers int
	// Quantize, when non-empty and Packs is nil, applies int8 weight
	// quantization ("exact" or "snap", see nn.Model.Quantize) to the wrapped
	// engine's model. Errors for non-nn engines. When Packs is set,
	// quantization is per-pack state (pack.Definition.Quantize).
	Quantize string
	// PrefixCacheMB, when positive and Packs is nil, attaches a
	// cross-request prefix cache of that many MiB to the wrapped engine
	// (DESIGN.md §11): decodes sharing a prompt prefix reuse frozen
	// transformer KV state and solver witnesses across micro-batches, with
	// LRU eviction under the byte cap. 0 disables the cache. When Packs is
	// set, per-pack caches are the registry's business (pack.NewRegistry).
	PrefixCacheMB int
	// Logf, when set, receives serving log lines.
	Logf func(format string, args ...any)
}

func (c *Config) fill() {
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
}

// job is one admitted decode request waiting for the batcher.
type job struct {
	ctx    context.Context
	prompt rules.Record // nil → unconditional generation
	// pk is the domain pack resolved at admission time. A hot reload that
	// lands while this job is queued does not retarget it: the job decodes
	// on the engine (and rule epoch) it was admitted under.
	pk        *pack.Compiled
	seed      int64
	decode    core.DecodeCtxFn
	noCache   bool // request opted out of the prefix cache
	lookahead *int // per-request speculative-window override (nil → daemon default)
	start     time.Time
	// resp is buffered (cap 1): the batcher never blocks delivering to a
	// handler that already gave up on its deadline.
	resp chan jobResult
}

type jobResult struct {
	res       core.Result
	err       error
	batchSize int
}

// Server is the lejitd HTTP handler plus its micro-batching pipeline.
type Server struct {
	cfg         Config
	packs       *pack.Registry
	defaultPack string
	mux         *http.ServeMux
	queue       chan *job
	metrics     *Metrics
	started     time.Time

	draining  atomic.Bool
	seedSeq   atomic.Int64
	stop      chan struct{} // tells the batcher to exit
	batcherWG sync.WaitGroup
	closeOnce sync.Once
}

// New builds a Server and starts its batcher goroutine. Callers must Close
// it (Serve does so on return).
func New(cfg Config) (*Server, error) {
	if cfg.Packs == nil && cfg.Engine == nil {
		return nil, fmt.Errorf("server: Packs or Engine is required")
	}
	cfg.fill()
	s := &Server{
		cfg:         cfg,
		packs:       cfg.Packs,
		defaultPack: cfg.DefaultPack,
		mux:         http.NewServeMux(),
		queue:       make(chan *job, cfg.QueueDepth),
		started:     time.Now(),
		stop:        make(chan struct{}),
	}
	if s.packs == nil {
		// Legacy construction: wrap the single engine as the pack "default".
		// The registry owns the per-pack prefix cache (it outlives any
		// single micro-batch: snapshots captured in one batch warm requests
		// in every later one), so PrefixCacheMB becomes its byte budget.
		s.packs = pack.NewRegistry(int64(cfg.PrefixCacheMB) << 20)
		if cfg.KernelWorkers != 0 {
			cfg.Engine.SetKernelWorkers(cfg.KernelWorkers)
		}
		if cfg.Quantize != "" {
			if _, err := cfg.Engine.SetWeightQuantization(cfg.Quantize); err != nil {
				return nil, fmt.Errorf("server: %w", err)
			}
		}
		pk, err := pack.FromEngine("default", cfg.Engine, cfg.Rules, cfg.Schema)
		if err != nil {
			return nil, err
		}
		if err := s.packs.Register(pk); err != nil {
			return nil, err
		}
		if s.defaultPack == "" {
			s.defaultPack = "default"
		}
	}
	if _, ok := s.packs.Get(s.defaultPack); !ok {
		return nil, fmt.Errorf("server: default pack %q is not registered (have %v)", s.defaultPack, s.packs.Names())
	}
	s.metrics = newMetrics(func() int { return len(s.queue) }, s.packs.Stats)
	s.mux.HandleFunc("/v1/impute", func(w http.ResponseWriter, r *http.Request) { s.handleDecode(w, r, "impute") })
	s.mux.HandleFunc("/v1/generate", func(w http.ResponseWriter, r *http.Request) { s.handleDecode(w, r, "generate") })
	s.mux.HandleFunc("/v1/check", s.handleCheck)
	s.mux.HandleFunc("/v1/packs", s.handlePacks)
	s.mux.HandleFunc("/v1/packs/reload", s.handlePackReload)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.batcherWG.Add(1)
	go s.batcher()
	return s, nil
}

// Packs exposes the server's pack registry (cmd/lejitd, tests).
func (s *Server) Packs() *pack.Registry { return s.packs }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Metrics exposes the server's counters (tests, benchmarks).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Close stops the batcher. Safe to call more than once. Requests admitted
// after Close time out rather than decode; call only once handlers are
// drained (Serve sequences this correctly).
func (s *Server) Close() {
	s.closeOnce.Do(func() { close(s.stop) })
	s.batcherWG.Wait()
}

// Serve accepts connections on l until ctx is cancelled, then drains: new
// requests are refused with 503, in-flight requests finish (bounded by
// DrainTimeout), and only then is the batcher stopped. This is the SIGTERM
// path — cmd/lejitd passes a signal-cancelled context.
func (s *Server) Serve(ctx context.Context, l net.Listener) error {
	hs := &http.Server{Handler: s}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(l) }()
	select {
	case err := <-errc:
		s.Close()
		return err
	case <-ctx.Done():
	}
	s.logf("server: draining (%d queued)", len(s.queue))
	s.draining.Store(true)
	sctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	err := hs.Shutdown(sctx) // waits for in-flight handlers
	s.Close()
	s.logf("server: drained")
	return err
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// batcher supervises the queue consumer: core's recover barriers turn lane
// panics into per-record errors, but if one still escapes a batch (or the
// dispatch plumbing itself panics), the loop is restarted instead of leaving
// the daemon accepting requests that no one will ever decode. Jobs caught in
// the dead batch fail by deadline (504); everything after resumes normally.
func (s *Server) batcher() {
	defer s.batcherWG.Done()
	for !s.batcherLoop() {
		s.metrics.countBatcherRestart()
		s.logf("server: batcher restarted after panic")
	}
}

// batcherLoop is the single consumer of the admission queue: it takes the
// first waiting job, keeps the window open for BatchWindow (or until
// MaxBatch), and dispatches the batch to core.DecodeRequests so concurrent
// callers share one worker-pool invocation and its per-clone solver state.
// Returns true on clean stop; a panic is recovered and returns false so the
// supervisor restarts it.
func (s *Server) batcherLoop() (stopped bool) {
	defer func() {
		if r := recover(); r != nil {
			s.logf("server: batcher panicked: %v", r)
		}
	}()
	for {
		var first *job
		select {
		case first = <-s.queue:
		case <-s.stop:
			return true
		}
		batch := append(make([]*job, 0, s.cfg.MaxBatch), first)
		timer := time.NewTimer(s.cfg.BatchWindow)
	collect:
		for len(batch) < s.cfg.MaxBatch {
			select {
			case j := <-s.queue:
				batch = append(batch, j)
			case <-timer.C:
				break collect
			}
		}
		timer.Stop()
		s.runBatch(batch)
	}
}

// runBatch splits one micro-batch by domain pack and decodes the groups
// concurrently — each group is one DecodeRequests call on its own pack's
// engine, so lock-step batching still composes within a pack while packs
// never share solver or transformer state. Grouping is by *pack.Compiled
// pointer, not name: jobs admitted before a hot reload decode on their
// admission-time bundle even if a same-named newer one is in the same batch.
func (s *Server) runBatch(batch []*job) {
	order := make([]*pack.Compiled, 0, 1)
	groups := make(map[*pack.Compiled][]*job, 1)
	for _, j := range batch {
		if _, ok := groups[j.pk]; !ok {
			order = append(order, j.pk)
		}
		groups[j.pk] = append(groups[j.pk], j)
	}
	var wg sync.WaitGroup
	// A panic escaping a group goroutine must not kill the process: it is
	// re-raised on the batcher goroutine after the other groups finish, so
	// the batcher supervisor's restart semantics are preserved.
	panics := make(chan any, len(order))
	for _, pk := range order {
		wg.Add(1)
		go func(pk *pack.Compiled, group []*job) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics <- r
				}
			}()
			s.runGroup(pk, group)
		}(pk, groups[pk])
	}
	wg.Wait()
	select {
	case r := <-panics:
		panic(r)
	default:
	}
}

// runGroup decodes one same-pack slice of a micro-batch and delivers each
// job's result.
func (s *Server) runGroup(pk *pack.Compiled, batch []*job) {
	s.metrics.observeBatch(len(batch))
	reqs := make([]core.BatchRequest, len(batch))
	for i, j := range batch {
		seed := j.seed
		reqs[i] = core.BatchRequest{Prompt: j.prompt, Ctx: j.ctx, Seed: &seed, Decode: j.decode, NoPrefixCache: j.noCache, Lookahead: j.lookahead}
	}
	out, err := pk.Engine.DecodeRequests(context.Background(), reqs, s.cfg.Workers, 0, nil)
	if err != nil {
		// Group-level failure (engine cloning): fail every job.
		for _, j := range batch {
			j.resp <- jobResult{err: err, batchSize: len(batch)}
		}
		return
	}
	for i, j := range batch {
		if out[i].Err != nil {
			// Classify the retired lane here, not in the response writer:
			// a handler that already gave up on its deadline never reads
			// resp, but the failure still happened and must be counted.
			var pe *core.PanicError
			s.metrics.countLaneRetired(
				errors.Is(out[i].Err, core.ErrBudget),
				errors.As(out[i].Err, &pe),
			)
		}
		j.resp <- jobResult{res: out[i].Res, err: out[i].Err, batchSize: len(batch)}
	}
}

// decodeFnFor maps a request mode to its decode function. The baselines are
// not token-interruptible, so they only honor cancellation between attempts.
func (s *Server) decodeFnFor(mode string) (core.DecodeCtxFn, error) {
	var base core.DecodeFn
	switch mode {
	case ModeLeJIT:
		return nil, nil // engine default: ctx-aware guided decoding
	case ModeVanilla:
		base = (*core.Engine).Vanilla
	case ModeRejection:
		base = (*core.Engine).Rejection
	case ModePostHoc:
		base = (*core.Engine).PostHoc
	default:
		return nil, badRequestf("unknown mode %q", mode)
	}
	return func(ctx context.Context, e *core.Engine, known rules.Record, rng *rand.Rand) (core.Result, error) {
		if err := ctx.Err(); err != nil {
			return core.Result{}, err
		}
		return base(e, known, rng)
	}, nil
}

// handleDecode serves /v1/impute and /v1/generate.
func (s *Server) handleDecode(w http.ResponseWriter, r *http.Request, route string) {
	code, pk := s.serveDecode(w, r, route)
	s.metrics.countRequest(route, pk, code)
}

// resolvePack maps a request's pack field (empty → default) to its current
// bundle.
func (s *Server) resolvePack(name string) (*pack.Compiled, error) {
	if name == "" {
		name = s.defaultPack
	}
	pk, ok := s.packs.Get(name)
	if !ok {
		return nil, fmt.Errorf("unknown pack %q (have %v)", name, s.packs.Names())
	}
	return pk, nil
}

// serveDecode returns the HTTP status and the resolved pack name ("" when
// the request failed before pack resolution).
func (s *Server) serveDecode(w http.ResponseWriter, r *http.Request, route string) (int, string) {
	if r.Method != http.MethodPost {
		return writeError(w, http.StatusMethodNotAllowed, "POST required", ""), ""
	}
	if s.draining.Load() {
		return writeError(w, http.StatusServiceUnavailable, "server is draining", "draining"), ""
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	// Parsed without a schema: record validation needs the pack, which the
	// body itself selects.
	req, err := ParseDecodeRequest(body, nil, route == "impute")
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return writeError(w, http.StatusRequestEntityTooLarge, "request body too large", ""), ""
		}
		return writeError(w, http.StatusBadRequest, err.Error(), ""), ""
	}
	pk, err := s.resolvePack(req.Pack)
	if err != nil {
		return writeError(w, http.StatusBadRequest, err.Error(), "unknown_pack"), ""
	}
	packName := pk.Def.Name
	if req.Known != nil && pk.Schema != nil {
		if err := validateRecord(req.Known, pk.Schema); err != nil {
			return writeError(w, http.StatusBadRequest, err.Error(), ""), packName
		}
	}
	decode, err := s.decodeFnFor(req.Mode)
	if err != nil {
		return writeError(w, http.StatusBadRequest, err.Error(), ""), packName
	}

	// Clients may shorten their deadline but never extend it past the
	// server's: an uncapped timeout_ms would let one caller pin a batcher
	// lane (and its engine clone) for arbitrarily long.
	timeout := s.cfg.Timeout
	if req.TimeoutMs > 0 {
		if t := time.Duration(req.TimeoutMs) * time.Millisecond; t < timeout {
			timeout = t
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// Each request without a pinned seed gets its own splitmix64-derived
	// stream; the old affine seed+seq*7919 scheme let two servers with
	// nearby base seeds replay each other's request streams.
	seed := core.MixSeed(s.cfg.Seed, int(s.seedSeq.Add(1)))
	if req.Seed != nil {
		seed = *req.Seed
	}
	j := &job{
		ctx:       ctx,
		prompt:    req.Known,
		pk:        pk,
		seed:      seed,
		decode:    decode,
		noCache:   req.NoPrefixCache,
		lookahead: req.Lookahead,
		start:     time.Now(),
		resp:      make(chan jobResult, 1),
	}
	// Bounded admission: never block the handler on a full queue.
	select {
	case s.queue <- j:
	default:
		w.Header().Set("Retry-After", "1")
		return writeError(w, http.StatusTooManyRequests, "queue full", "overloaded"), packName
	}

	select {
	case res := <-j.resp:
		s.metrics.observeLatency(time.Since(j.start).Seconds())
		return s.writeDecodeResult(w, j, res), packName
	case <-ctx.Done():
		// The job may still be queued or decoding; its context is cancelled,
		// so the batcher will abandon it and nobody reads resp (buffered).
		s.metrics.observeLatency(time.Since(j.start).Seconds())
		s.metrics.countTimeout()
		return writeError(w, http.StatusGatewayTimeout, "deadline exceeded", "timeout"), packName
	}
}

func (s *Server) writeDecodeResult(w http.ResponseWriter, j *job, res jobResult) int {
	if res.err != nil {
		var pe *core.PanicError
		switch {
		case errors.Is(res.err, context.DeadlineExceeded), errors.Is(res.err, context.Canceled):
			s.metrics.countTimeout()
			return writeError(w, http.StatusGatewayTimeout, "deadline exceeded", "timeout")
		case errors.Is(res.err, core.ErrBudget):
			// The solver gave up inside its budget, not a proof the request
			// is bad: the caller may retry (ideally elsewhere or later).
			w.Header().Set("Retry-After", "1")
			return writeError(w, http.StatusServiceUnavailable, res.err.Error(), "budget")
		case isInfeasible(res.err):
			return writeError(w, http.StatusUnprocessableEntity, res.err.Error(), "infeasible")
		case errors.As(res.err, &pe):
			// The lane panicked and was retired alone; its batch-mates are
			// unaffected. The stack stays in the server log, not the reply.
			return writeError(w, http.StatusInternalServerError, res.err.Error(), "panic")
		default:
			return writeError(w, http.StatusInternalServerError, res.err.Error(), "")
		}
	}
	st := res.res.Stats
	s.metrics.countDecode(j.pk.Def.Name, st.Tokens, st.SolverChecks, st.SpecAcceptedTokens, st.SpecRollbacks)
	out := DecodeResponse{
		Record:    res.res.Rec,
		Line:      formatLine(j.pk.Engine, res.res.Rec),
		Compliant: true,
		BatchSize: res.batchSize,
		Pack:      j.pk.Def.Name,
		Epoch:     j.pk.EpochHex(),
		Stats: StatsJSON{
			Tokens: st.Tokens, MaskedSteps: st.MaskedSteps, ForcedSteps: st.ForcedSteps,
			SolverChecks: st.SolverChecks, Attempts: st.Attempts,
			SpecAcceptedTokens: st.SpecAcceptedTokens, SpecRollbacks: st.SpecRollbacks,
		},
	}
	if j.pk.Rules != nil {
		viol, err := j.pk.Rules.Violations(res.res.Rec)
		if err != nil {
			return writeError(w, http.StatusInternalServerError, err.Error(), "")
		}
		out.Violations = viol
		out.Compliant = len(viol) == 0
	}
	return writeJSON(w, http.StatusOK, out)
}

// formatLine renders a record in the engine's grammar order (digits +
// separators), the same text format the pack's LM was trained on.
func formatLine(e *core.Engine, rec rules.Record) string {
	var b strings.Builder
	for _, sl := range e.Slots() {
		vs, ok := rec[sl.Field]
		if !ok || sl.Index >= len(vs) {
			return ""
		}
		fmt.Fprintf(&b, "%d%c", vs[sl.Index], sl.Sep)
	}
	return b.String()
}

// handleCheck serves /v1/check: pure rule evaluation, no queue, no decode.
func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	code, pk := s.serveCheck(w, r)
	s.metrics.countRequest("check", pk, code)
}

func (s *Server) serveCheck(w http.ResponseWriter, r *http.Request) (int, string) {
	if r.Method != http.MethodPost {
		return writeError(w, http.StatusMethodNotAllowed, "POST required", ""), ""
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	req, err := ParseCheckRequest(body, nil)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return writeError(w, http.StatusRequestEntityTooLarge, "request body too large", ""), ""
		}
		return writeError(w, http.StatusBadRequest, err.Error(), ""), ""
	}
	pk, err := s.resolvePack(req.Pack)
	if err != nil {
		return writeError(w, http.StatusBadRequest, err.Error(), "unknown_pack"), ""
	}
	packName := pk.Def.Name
	if pk.Schema != nil {
		if err := validateRecord(req.Record, pk.Schema); err != nil {
			return writeError(w, http.StatusBadRequest, err.Error(), ""), packName
		}
	}
	if pk.Rules == nil {
		return writeError(w, http.StatusNotImplemented, "pack has no rule set loaded", ""), packName
	}
	viol, err := pk.Rules.Violations(req.Record)
	if err != nil {
		return writeError(w, http.StatusBadRequest, err.Error(), ""), packName
	}
	if viol == nil {
		viol = []string{}
	}
	return writeJSON(w, http.StatusOK, CheckResponse{Compliant: len(viol) == 0, Violations: viol}), packName
}

// handlePacks serves GET /v1/packs: the registry listing with live epoch,
// generation, and reload counters per pack.
func (s *Server) handlePacks(w http.ResponseWriter, r *http.Request) {
	code := s.servePacks(w, r)
	s.metrics.countRequest("packs", "", code)
}

func (s *Server) servePacks(w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodGet {
		return writeError(w, http.StatusMethodNotAllowed, "GET required", "")
	}
	infos := s.packs.List()
	out := PacksResponse{Default: s.defaultPack, Packs: make([]PackInfoJSON, 0, len(infos))}
	for _, info := range infos {
		out.Packs = append(out.Packs, PackInfoJSON{
			Name: info.Name, Version: info.Version,
			Epoch:      fmt.Sprintf("%016x", info.Epoch),
			Generation: info.Generation,
			Rules:      info.Rules, Fields: info.Fields,
			Reloads: info.Reloads, ReloadErrs: info.ReloadErrors,
			Default: info.Name == s.defaultPack,
		})
	}
	return writeJSON(w, http.StatusOK, out)
}

// handlePackReload serves POST /v1/packs/reload: swap one pack's rule set
// from source text. Parsing, compilation, and the satisfiability pre-check
// run here — off the decode hot path — and the registry swaps atomically, so
// in-flight requests finish on the epoch they were admitted under and the
// next admission sees the new rules. On any error the old rules keep serving.
func (s *Server) handlePackReload(w http.ResponseWriter, r *http.Request) {
	code, pk := s.servePackReload(w, r)
	s.metrics.countRequest("reload", pk, code)
}

func (s *Server) servePackReload(w http.ResponseWriter, r *http.Request) (int, string) {
	if r.Method != http.MethodPost {
		return writeError(w, http.StatusMethodNotAllowed, "POST required", ""), ""
	}
	if s.draining.Load() {
		return writeError(w, http.StatusServiceUnavailable, "server is draining", "draining"), ""
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	req, err := ParseReloadRequest(body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return writeError(w, http.StatusRequestEntityTooLarge, "request body too large", ""), ""
		}
		return writeError(w, http.StatusBadRequest, err.Error(), ""), ""
	}
	next, err := s.packs.Reload(req.Pack, req.Rules)
	if err != nil {
		var unknown pack.ErrUnknownPack
		if errors.As(err, &unknown) {
			return writeError(w, http.StatusNotFound, err.Error(), "unknown_pack"), ""
		}
		return writeError(w, http.StatusBadRequest, err.Error(), "bad_rules"), req.Pack
	}
	s.logf("server: pack %s reloaded: epoch %s generation %d", req.Pack, next.EpochHex(), next.Generation)
	nrules := 0
	if next.Rules != nil {
		nrules = len(next.Rules.Rules)
	}
	return writeJSON(w, http.StatusOK, ReloadResponse{
		Pack: req.Pack, Epoch: next.EpochHex(), Generation: next.Generation, Rules: nrules,
	}), req.Pack
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	status := "ok"
	trips := s.metrics.budgetTrips()
	if t := s.cfg.DegradedThreshold; t > 0 && trips >= uint64(t) {
		// Still HTTP 200: the instance serves fine-behaved requests; the
		// degraded status is an operator signal that budgets are tripping
		// (misconfigured budget, or a pathological rule set in the traffic).
		status = "degraded"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":           status,
		"uptime_s":         time.Since(s.started).Seconds(),
		"max_batch":        s.cfg.MaxBatch,
		"budget_exhausted": trips,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WritePrometheus(w)
}

func writeJSON(w http.ResponseWriter, code int, v any) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
	return code
}

func writeError(w http.ResponseWriter, code int, msg, status string) int {
	return writeJSON(w, code, ErrorResponse{Error: msg, Status: status})
}

// isInfeasible reports whether err is core.ErrInfeasible (no rule-compliant
// completion exists for the prompt).
func isInfeasible(err error) bool {
	var inf core.ErrInfeasible
	return errors.As(err, &inf)
}
