package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/prefixcache"
	"repro/internal/rules"
)

// Config assembles a Server. Engine is required; everything else has
// serving-sane defaults.
type Config struct {
	// Engine decodes. It is used only from the single batcher goroutine
	// (which hands per-worker clones to the pool), so the engine's
	// no-concurrency contract holds.
	Engine *core.Engine
	// Rules defines compliance for responses and /v1/check. May be nil.
	Rules *rules.RuleSet
	// Schema validates request records. May be nil (no validation).
	Schema *rules.Schema

	// BatchWindow is how long the batcher waits after the first request for
	// more to coalesce (default 2ms).
	BatchWindow time.Duration
	// MaxBatch caps records per micro-batch (default 32).
	MaxBatch int
	// QueueDepth bounds the admission queue; a full queue answers 429 with
	// Retry-After (default 256).
	QueueDepth int
	// Workers is the decode pool size per batch (default GOMAXPROCS).
	Workers int
	// Timeout is the default per-request deadline (default 30s); requests
	// may lower or raise it via timeout_ms.
	Timeout time.Duration
	// DrainTimeout bounds graceful shutdown (default 30s).
	DrainTimeout time.Duration
	// MaxBodyBytes caps request bodies (default 1 MiB).
	MaxBodyBytes int64
	// Seed is the base for server-assigned RNG seeds when a request does
	// not pin its own.
	Seed int64
	// DegradedThreshold makes /healthz report status "degraded" (still HTTP
	// 200, so load balancers keep the instance) once at least this many
	// requests have exhausted their solver budget. 0 disables degradation.
	DegradedThreshold int
	// PrefixCacheMB, when positive, attaches a cross-request prefix cache of
	// that many MiB to the engine (DESIGN.md §11): decodes sharing a prompt
	// prefix reuse frozen transformer KV state and solver witnesses across
	// micro-batches, with LRU eviction under the byte cap. 0 disables the
	// cache.
	PrefixCacheMB int
	// Logf, when set, receives serving log lines.
	Logf func(format string, args ...any)
}

func (c *Config) fill() {
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
}

// job is one admitted decode request waiting for the batcher.
type job struct {
	ctx       context.Context
	prompt    rules.Record // nil → unconditional generation
	seed      int64
	decode    core.DecodeCtxFn
	noCache   bool // request opted out of the prefix cache
	lookahead *int // per-request speculative-window override (nil → daemon default)
	start     time.Time
	// resp is buffered (cap 1): the batcher never blocks delivering to a
	// handler that already gave up on its deadline.
	resp chan jobResult
}

type jobResult struct {
	res       core.Result
	err       error
	batchSize int
}

// Server is the lejitd HTTP handler plus its micro-batching pipeline.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	queue   chan *job
	metrics *Metrics
	started time.Time

	draining  atomic.Bool
	seedSeq   atomic.Int64
	stop      chan struct{} // tells the batcher to exit
	batcherWG sync.WaitGroup
	closeOnce sync.Once
}

// New builds a Server and starts its batcher goroutine. Callers must Close
// it (Serve does so on return).
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("server: Engine is required")
	}
	cfg.fill()
	s := &Server{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		queue:   make(chan *job, cfg.QueueDepth),
		started: time.Now(),
		stop:    make(chan struct{}),
	}
	// The prefix cache outlives any single micro-batch: it hangs off the
	// engine (shared by its whole clone family), so snapshots captured in
	// one batch warm requests in every later one.
	var prefixStats func() prefixcache.Stats
	if cfg.PrefixCacheMB > 0 {
		cache := prefixcache.New(int64(cfg.PrefixCacheMB) << 20)
		cfg.Engine.SetPrefixCache(cache)
		prefixStats = cache.Stats
	}
	s.metrics = newMetrics(func() int { return len(s.queue) }, prefixStats)
	s.mux.HandleFunc("/v1/impute", func(w http.ResponseWriter, r *http.Request) { s.handleDecode(w, r, "impute") })
	s.mux.HandleFunc("/v1/generate", func(w http.ResponseWriter, r *http.Request) { s.handleDecode(w, r, "generate") })
	s.mux.HandleFunc("/v1/check", s.handleCheck)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.batcherWG.Add(1)
	go s.batcher()
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Metrics exposes the server's counters (tests, benchmarks).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Close stops the batcher. Safe to call more than once. Requests admitted
// after Close time out rather than decode; call only once handlers are
// drained (Serve sequences this correctly).
func (s *Server) Close() {
	s.closeOnce.Do(func() { close(s.stop) })
	s.batcherWG.Wait()
}

// Serve accepts connections on l until ctx is cancelled, then drains: new
// requests are refused with 503, in-flight requests finish (bounded by
// DrainTimeout), and only then is the batcher stopped. This is the SIGTERM
// path — cmd/lejitd passes a signal-cancelled context.
func (s *Server) Serve(ctx context.Context, l net.Listener) error {
	hs := &http.Server{Handler: s}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(l) }()
	select {
	case err := <-errc:
		s.Close()
		return err
	case <-ctx.Done():
	}
	s.logf("server: draining (%d queued)", len(s.queue))
	s.draining.Store(true)
	sctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	err := hs.Shutdown(sctx) // waits for in-flight handlers
	s.Close()
	s.logf("server: drained")
	return err
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// batcher supervises the queue consumer: core's recover barriers turn lane
// panics into per-record errors, but if one still escapes a batch (or the
// dispatch plumbing itself panics), the loop is restarted instead of leaving
// the daemon accepting requests that no one will ever decode. Jobs caught in
// the dead batch fail by deadline (504); everything after resumes normally.
func (s *Server) batcher() {
	defer s.batcherWG.Done()
	for !s.batcherLoop() {
		s.metrics.countBatcherRestart()
		s.logf("server: batcher restarted after panic")
	}
}

// batcherLoop is the single consumer of the admission queue: it takes the
// first waiting job, keeps the window open for BatchWindow (or until
// MaxBatch), and dispatches the batch to core.DecodeRequests so concurrent
// callers share one worker-pool invocation and its per-clone solver state.
// Returns true on clean stop; a panic is recovered and returns false so the
// supervisor restarts it.
func (s *Server) batcherLoop() (stopped bool) {
	defer func() {
		if r := recover(); r != nil {
			s.logf("server: batcher panicked: %v", r)
		}
	}()
	for {
		var first *job
		select {
		case first = <-s.queue:
		case <-s.stop:
			return true
		}
		batch := append(make([]*job, 0, s.cfg.MaxBatch), first)
		timer := time.NewTimer(s.cfg.BatchWindow)
	collect:
		for len(batch) < s.cfg.MaxBatch {
			select {
			case j := <-s.queue:
				batch = append(batch, j)
			case <-timer.C:
				break collect
			}
		}
		timer.Stop()
		s.runBatch(batch)
	}
}

// runBatch decodes one micro-batch and delivers each job's result.
func (s *Server) runBatch(batch []*job) {
	s.metrics.observeBatch(len(batch))
	reqs := make([]core.BatchRequest, len(batch))
	for i, j := range batch {
		seed := j.seed
		reqs[i] = core.BatchRequest{Prompt: j.prompt, Ctx: j.ctx, Seed: &seed, Decode: j.decode, NoPrefixCache: j.noCache, Lookahead: j.lookahead}
	}
	out, err := s.cfg.Engine.DecodeRequests(context.Background(), reqs, s.cfg.Workers, 0, nil)
	if err != nil {
		// Batch-level failure (engine cloning): fail every job.
		for _, j := range batch {
			j.resp <- jobResult{err: err, batchSize: len(batch)}
		}
		return
	}
	for i, j := range batch {
		if out[i].Err != nil {
			// Classify the retired lane here, not in the response writer:
			// a handler that already gave up on its deadline never reads
			// resp, but the failure still happened and must be counted.
			var pe *core.PanicError
			s.metrics.countLaneRetired(
				errors.Is(out[i].Err, core.ErrBudget),
				errors.As(out[i].Err, &pe),
			)
		}
		j.resp <- jobResult{res: out[i].Res, err: out[i].Err, batchSize: len(batch)}
	}
}

// decodeFnFor maps a request mode to its decode function. The baselines are
// not token-interruptible, so they only honor cancellation between attempts.
func (s *Server) decodeFnFor(mode string) (core.DecodeCtxFn, error) {
	var base core.DecodeFn
	switch mode {
	case ModeLeJIT:
		return nil, nil // engine default: ctx-aware guided decoding
	case ModeVanilla:
		base = (*core.Engine).Vanilla
	case ModeRejection:
		base = (*core.Engine).Rejection
	case ModePostHoc:
		base = (*core.Engine).PostHoc
	default:
		return nil, badRequestf("unknown mode %q", mode)
	}
	return func(ctx context.Context, e *core.Engine, known rules.Record, rng *rand.Rand) (core.Result, error) {
		if err := ctx.Err(); err != nil {
			return core.Result{}, err
		}
		return base(e, known, rng)
	}, nil
}

// handleDecode serves /v1/impute and /v1/generate.
func (s *Server) handleDecode(w http.ResponseWriter, r *http.Request, route string) {
	code := s.serveDecode(w, r, route)
	s.metrics.countRequest(route, code)
}

func (s *Server) serveDecode(w http.ResponseWriter, r *http.Request, route string) int {
	if r.Method != http.MethodPost {
		return writeError(w, http.StatusMethodNotAllowed, "POST required", "")
	}
	if s.draining.Load() {
		return writeError(w, http.StatusServiceUnavailable, "server is draining", "draining")
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	req, err := ParseDecodeRequest(body, s.cfg.Schema, route == "impute")
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return writeError(w, http.StatusRequestEntityTooLarge, "request body too large", "")
		}
		return writeError(w, http.StatusBadRequest, err.Error(), "")
	}
	decode, err := s.decodeFnFor(req.Mode)
	if err != nil {
		return writeError(w, http.StatusBadRequest, err.Error(), "")
	}

	// Clients may shorten their deadline but never extend it past the
	// server's: an uncapped timeout_ms would let one caller pin a batcher
	// lane (and its engine clone) for arbitrarily long.
	timeout := s.cfg.Timeout
	if req.TimeoutMs > 0 {
		if t := time.Duration(req.TimeoutMs) * time.Millisecond; t < timeout {
			timeout = t
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// Each request without a pinned seed gets its own splitmix64-derived
	// stream; the old affine seed+seq*7919 scheme let two servers with
	// nearby base seeds replay each other's request streams.
	seed := core.MixSeed(s.cfg.Seed, int(s.seedSeq.Add(1)))
	if req.Seed != nil {
		seed = *req.Seed
	}
	j := &job{
		ctx:       ctx,
		prompt:    req.Known,
		seed:      seed,
		decode:    decode,
		noCache:   req.NoPrefixCache,
		lookahead: req.Lookahead,
		start:     time.Now(),
		resp:      make(chan jobResult, 1),
	}
	// Bounded admission: never block the handler on a full queue.
	select {
	case s.queue <- j:
	default:
		w.Header().Set("Retry-After", "1")
		return writeError(w, http.StatusTooManyRequests, "queue full", "overloaded")
	}

	select {
	case res := <-j.resp:
		s.metrics.observeLatency(time.Since(j.start).Seconds())
		return s.writeDecodeResult(w, res)
	case <-ctx.Done():
		// The job may still be queued or decoding; its context is cancelled,
		// so the batcher will abandon it and nobody reads resp (buffered).
		s.metrics.observeLatency(time.Since(j.start).Seconds())
		s.metrics.countTimeout()
		return writeError(w, http.StatusGatewayTimeout, "deadline exceeded", "timeout")
	}
}

func (s *Server) writeDecodeResult(w http.ResponseWriter, res jobResult) int {
	if res.err != nil {
		var pe *core.PanicError
		switch {
		case errors.Is(res.err, context.DeadlineExceeded), errors.Is(res.err, context.Canceled):
			s.metrics.countTimeout()
			return writeError(w, http.StatusGatewayTimeout, "deadline exceeded", "timeout")
		case errors.Is(res.err, core.ErrBudget):
			// The solver gave up inside its budget, not a proof the request
			// is bad: the caller may retry (ideally elsewhere or later).
			w.Header().Set("Retry-After", "1")
			return writeError(w, http.StatusServiceUnavailable, res.err.Error(), "budget")
		case isInfeasible(res.err):
			return writeError(w, http.StatusUnprocessableEntity, res.err.Error(), "infeasible")
		case errors.As(res.err, &pe):
			// The lane panicked and was retired alone; its batch-mates are
			// unaffected. The stack stays in the server log, not the reply.
			return writeError(w, http.StatusInternalServerError, res.err.Error(), "panic")
		default:
			return writeError(w, http.StatusInternalServerError, res.err.Error(), "")
		}
	}
	st := res.res.Stats
	s.metrics.countDecode(st.Tokens, st.SolverChecks, st.SpecAcceptedTokens, st.SpecRollbacks)
	out := DecodeResponse{
		Record:    res.res.Rec,
		Line:      s.formatLine(res.res.Rec),
		Compliant: true,
		BatchSize: res.batchSize,
		Stats: StatsJSON{
			Tokens: st.Tokens, MaskedSteps: st.MaskedSteps, ForcedSteps: st.ForcedSteps,
			SolverChecks: st.SolverChecks, Attempts: st.Attempts,
			SpecAcceptedTokens: st.SpecAcceptedTokens, SpecRollbacks: st.SpecRollbacks,
		},
	}
	if s.cfg.Rules != nil {
		viol, err := s.cfg.Rules.Violations(res.res.Rec)
		if err != nil {
			return writeError(w, http.StatusInternalServerError, err.Error(), "")
		}
		out.Violations = viol
		out.Compliant = len(viol) == 0
	}
	return writeJSON(w, http.StatusOK, out)
}

// formatLine renders a record in grammar order (digits + separators), the
// same text format the LM was trained on.
func (s *Server) formatLine(rec rules.Record) string {
	var b strings.Builder
	for _, sl := range s.cfg.Engine.Slots() {
		vs, ok := rec[sl.Field]
		if !ok || sl.Index >= len(vs) {
			return ""
		}
		fmt.Fprintf(&b, "%d%c", vs[sl.Index], sl.Sep)
	}
	return b.String()
}

// handleCheck serves /v1/check: pure rule evaluation, no queue, no decode.
func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	code := s.serveCheck(w, r)
	s.metrics.countRequest("check", code)
}

func (s *Server) serveCheck(w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodPost {
		return writeError(w, http.StatusMethodNotAllowed, "POST required", "")
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	req, err := ParseCheckRequest(body, s.cfg.Schema)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return writeError(w, http.StatusRequestEntityTooLarge, "request body too large", "")
		}
		return writeError(w, http.StatusBadRequest, err.Error(), "")
	}
	if s.cfg.Rules == nil {
		return writeError(w, http.StatusNotImplemented, "server has no rule set loaded", "")
	}
	viol, err := s.cfg.Rules.Violations(req.Record)
	if err != nil {
		return writeError(w, http.StatusBadRequest, err.Error(), "")
	}
	if viol == nil {
		viol = []string{}
	}
	return writeJSON(w, http.StatusOK, CheckResponse{Compliant: len(viol) == 0, Violations: viol})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	status := "ok"
	trips := s.metrics.budgetTrips()
	if t := s.cfg.DegradedThreshold; t > 0 && trips >= uint64(t) {
		// Still HTTP 200: the instance serves fine-behaved requests; the
		// degraded status is an operator signal that budgets are tripping
		// (misconfigured budget, or a pathological rule set in the traffic).
		status = "degraded"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":           status,
		"uptime_s":         time.Since(s.started).Seconds(),
		"max_batch":        s.cfg.MaxBatch,
		"budget_exhausted": trips,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WritePrometheus(w)
}

func writeJSON(w http.ResponseWriter, code int, v any) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
	return code
}

func writeError(w http.ResponseWriter, code int, msg, status string) int {
	return writeJSON(w, code, ErrorResponse{Error: msg, Status: status})
}

// isInfeasible reports whether err is core.ErrInfeasible (no rule-compliant
// completion exists for the prompt).
func isInfeasible(err error) bool {
	var inf core.ErrInfeasible
	return errors.As(err, &inf)
}
