package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/pack"
	"repro/internal/router"
	"repro/internal/rules"
)

// Config assembles a Server. Either Packs or Engine is required; everything
// else has serving-sane defaults.
type Config struct {
	// Packs is the domain-pack registry the server decodes under: each
	// request selects a pack by name ("pack" field, default DefaultPack) and
	// runs against that pack's engine, rules, and schema. When nil, the
	// Engine/Rules/Schema fields below are wrapped into a single-pack
	// registry named "default" — the pre-pack construction path.
	Packs *pack.Registry
	// DefaultPack names the pack used by requests that do not select one.
	// Required when Packs is set; implied ("default") otherwise.
	DefaultPack string

	// Engine decodes when Packs is nil. Engines are used only from the
	// single batcher goroutine (which hands per-worker clones to the pool),
	// so the engine's no-concurrency contract holds.
	Engine *core.Engine
	// Rules defines compliance for responses and /v1/check when Packs is
	// nil. May be nil.
	Rules *rules.RuleSet
	// Schema validates request records when Packs is nil. May be nil (no
	// validation).
	Schema *rules.Schema

	// Replicas is the engine shard count (default 1). Each shard runs its
	// own micro-batcher and engine clones behind a load-aware router; rule
	// compilation and per-pack prefix caches are shared across shards.
	Replicas int
	// ShardFailureThreshold drains a shard (fresh engine clones, queued jobs
	// redistributed) once that many of its lanes were retired by budget
	// exhaustion or recovered panics since its last drain. Default 8;
	// negative disables self-draining.
	ShardFailureThreshold int
	// BatchWindow is how long each shard's batcher waits after the first
	// request for more to coalesce (default 2ms).
	BatchWindow time.Duration
	// MaxBatch caps records per micro-batch (default 32).
	MaxBatch int
	// QueueDepth bounds total queued admissions across shards; full queues
	// answer 429 with Retry-After (default 256, split evenly per shard).
	QueueDepth int
	// Workers is the decode pool size per batch (default GOMAXPROCS).
	Workers int
	// Timeout is the default per-request deadline (default 30s); requests
	// may lower or raise it via timeout_ms.
	Timeout time.Duration
	// DrainTimeout bounds graceful shutdown (default 30s).
	DrainTimeout time.Duration
	// MaxBodyBytes caps request bodies (default 1 MiB).
	MaxBodyBytes int64
	// Seed is the base for server-assigned RNG seeds when a request does
	// not pin its own.
	Seed int64
	// DegradedThreshold makes /healthz report status "degraded" (still HTTP
	// 200, so load balancers keep the instance) once at least this many
	// requests have exhausted their solver budget. 0 disables degradation.
	DegradedThreshold int
	// KernelWorkers, when non-zero and Packs is nil, shards the wrapped
	// engine's GEMM kernels across a worker group of that many goroutines
	// (negative → GOMAXPROCS). Output is bit-identical at any worker count
	// (DESIGN.md §15). No-op for non-nn engines. When Packs is set, worker
	// groups are per-pack state (pack.Definition.KernelWorkers).
	KernelWorkers int
	// Quantize, when non-empty and Packs is nil, applies int8 weight
	// quantization ("exact" or "snap", see nn.Model.Quantize) to the wrapped
	// engine's model. Errors for non-nn engines. When Packs is set,
	// quantization is per-pack state (pack.Definition.Quantize).
	Quantize string
	// PrefixCacheMB, when positive and Packs is nil, attaches a
	// cross-request prefix cache of that many MiB to the wrapped engine
	// (DESIGN.md §11): decodes sharing a prompt prefix reuse frozen
	// transformer KV state and solver witnesses across micro-batches, with
	// LRU eviction under the byte cap. 0 disables the cache. When Packs is
	// set, per-pack caches are the registry's business (pack.NewRegistry).
	PrefixCacheMB int
	// Logf, when set, receives serving log lines.
	Logf func(format string, args ...any)
}

func (c *Config) fill() {
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	if c.ShardFailureThreshold == 0 {
		c.ShardFailureThreshold = 8
	} else if c.ShardFailureThreshold < 0 {
		c.ShardFailureThreshold = 0 // router treats 0 as disabled
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
}

// Server is the lejitd HTTP handler plus its sharded micro-batching pipeline:
// admission control and response writing live here, dispatch and decoding live
// in the router (one micro-batcher per engine shard).
type Server struct {
	cfg         Config
	packs       *pack.Registry
	defaultPack string
	mux         *http.ServeMux
	router      *router.Router
	metrics     *Metrics
	started     time.Time

	draining atomic.Bool
	seedSeq  atomic.Int64
}

// New builds a Server and starts its shard batcher goroutines. Callers must
// Close it (Serve does so on return).
func New(cfg Config) (*Server, error) {
	if cfg.Packs == nil && cfg.Engine == nil {
		return nil, fmt.Errorf("server: Packs or Engine is required")
	}
	cfg.fill()
	s := &Server{
		cfg:         cfg,
		packs:       cfg.Packs,
		defaultPack: cfg.DefaultPack,
		mux:         http.NewServeMux(),
		started:     time.Now(),
	}
	if s.packs == nil {
		// Legacy construction: wrap the single engine as the pack "default".
		// The registry owns the per-pack prefix cache (it outlives any
		// single micro-batch: snapshots captured in one batch warm requests
		// in every later one), so PrefixCacheMB becomes its byte budget.
		s.packs = pack.NewRegistry(int64(cfg.PrefixCacheMB) << 20)
		if cfg.KernelWorkers != 0 {
			cfg.Engine.SetKernelWorkers(cfg.KernelWorkers)
		}
		if cfg.Quantize != "" {
			if _, err := cfg.Engine.SetWeightQuantization(cfg.Quantize); err != nil {
				return nil, fmt.Errorf("server: %w", err)
			}
		}
		pk, err := pack.FromEngine("default", cfg.Engine, cfg.Rules, cfg.Schema)
		if err != nil {
			return nil, err
		}
		if err := s.packs.Register(pk); err != nil {
			return nil, err
		}
		if s.defaultPack == "" {
			s.defaultPack = "default"
		}
	}
	if _, ok := s.packs.Get(s.defaultPack); !ok {
		return nil, fmt.Errorf("server: default pack %q is not registered (have %v)", s.defaultPack, s.packs.Names())
	}
	perShardQueue := cfg.QueueDepth / cfg.Replicas
	if perShardQueue < 1 {
		perShardQueue = 1
	}
	s.router = router.New(router.Config{
		Replicas:         cfg.Replicas,
		BatchWindow:      cfg.BatchWindow,
		MaxBatch:         cfg.MaxBatch,
		QueueDepth:       perShardQueue,
		Workers:          cfg.Workers,
		FailureThreshold: cfg.ShardFailureThreshold,
		Logf:             cfg.Logf,
		ObserveBatch:     func(shard, size int) { s.metrics.observeBatch(size) },
		OnLaneError: func(shard int, err error) {
			// Classify the retired lane here, not in the response writer: a
			// handler that already gave up on its deadline never reads Resp,
			// but the failure still happened and must be counted.
			var pe *core.PanicError
			s.metrics.countLaneRetired(errors.Is(err, core.ErrBudget), errors.As(err, &pe))
		},
		OnRestart: func(shard int) { s.metrics.countBatcherRestart() },
		OnDrain:   func(shard, moved int) { s.metrics.countShardDrain() },
	})
	s.metrics = newMetrics(s.router.Load, s.router.Stats, s.packs.Stats)
	s.mux.HandleFunc("/v1/impute", func(w http.ResponseWriter, r *http.Request) { s.handleDecode(w, r, "impute") })
	s.mux.HandleFunc("/v1/generate", func(w http.ResponseWriter, r *http.Request) { s.handleDecode(w, r, "generate") })
	s.mux.HandleFunc("/v1/check", s.handleCheck)
	s.mux.HandleFunc("/v1/packs", s.handlePacks)
	s.mux.HandleFunc("/v1/packs/reload", s.handlePackReload)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s, nil
}

// Packs exposes the server's pack registry (cmd/lejitd, tests).
func (s *Server) Packs() *pack.Registry { return s.packs }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Metrics exposes the server's counters (tests, benchmarks).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Router exposes the engine-shard router (tests, cmd/lejitd logging).
func (s *Server) Router() *router.Router { return s.router }

// Close stops the shard batchers. Safe to call more than once. Requests
// admitted after Close time out rather than decode; call only once handlers
// are drained (Serve sequences this correctly).
func (s *Server) Close() { s.router.Close() }

// Serve accepts connections on l until ctx is cancelled, then drains: new
// requests are refused with 503, in-flight requests finish (bounded by
// DrainTimeout), and only then is the batcher stopped. This is the SIGTERM
// path — cmd/lejitd passes a signal-cancelled context.
func (s *Server) Serve(ctx context.Context, l net.Listener) error {
	hs := &http.Server{Handler: s}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(l) }()
	select {
	case err := <-errc:
		s.Close()
		return err
	case <-ctx.Done():
	}
	queued, inflight := s.router.Load()
	s.logf("server: draining (%d queued, %d in flight)", queued, inflight)
	s.draining.Store(true)
	sctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	err := hs.Shutdown(sctx) // waits for in-flight handlers
	s.Close()
	s.logf("server: drained")
	return err
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// retryAfter estimates when capacity frees up, from live backlog: the
// admitted-but-unfinished count divided into micro-batches, each taking about
// one batch window to dispatch. Clamped to [1s, 30s] — the old hardcoded "1"
// told a client staring at a 200-deep queue to hammer the daemon once a
// second.
func (s *Server) retryAfter() string {
	_, inflight := s.router.Load()
	batches := inflight/s.cfg.MaxBatch + 1
	est := time.Duration(batches) * s.cfg.BatchWindow
	secs := int64((est + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return strconv.FormatInt(secs, 10)
}

// decodeFnFor maps a request mode to its decode function. The baselines are
// not token-interruptible, so they only honor cancellation between attempts.
func (s *Server) decodeFnFor(mode string) (core.DecodeCtxFn, error) {
	var base core.DecodeFn
	switch mode {
	case ModeLeJIT:
		return nil, nil // engine default: ctx-aware guided decoding
	case ModeVanilla:
		base = (*core.Engine).Vanilla
	case ModeRejection:
		base = (*core.Engine).Rejection
	case ModePostHoc:
		base = (*core.Engine).PostHoc
	default:
		return nil, badRequestf("unknown mode %q", mode)
	}
	return func(ctx context.Context, e *core.Engine, known rules.Record, rng *rand.Rand) (core.Result, error) {
		if err := ctx.Err(); err != nil {
			return core.Result{}, err
		}
		return base(e, known, rng)
	}, nil
}

// handleDecode serves /v1/impute and /v1/generate.
func (s *Server) handleDecode(w http.ResponseWriter, r *http.Request, route string) {
	code, pk := s.serveDecode(w, r, route)
	s.metrics.countRequest(route, pk, code)
}

// resolvePack maps a request's pack field (empty → default) to its current
// bundle.
func (s *Server) resolvePack(name string) (*pack.Compiled, error) {
	if name == "" {
		name = s.defaultPack
	}
	pk, ok := s.packs.Get(name)
	if !ok {
		return nil, fmt.Errorf("unknown pack %q (have %v)", name, s.packs.Names())
	}
	return pk, nil
}

// serveDecode returns the HTTP status and the resolved pack name ("" when
// the request failed before pack resolution).
func (s *Server) serveDecode(w http.ResponseWriter, r *http.Request, route string) (int, string) {
	if r.Method != http.MethodPost {
		return writeError(w, http.StatusMethodNotAllowed, "POST required", ""), ""
	}
	if s.draining.Load() {
		return writeError(w, http.StatusServiceUnavailable, "server is draining", "draining"), ""
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	// Parsed without a schema: record validation needs the pack, which the
	// body itself selects.
	req, err := ParseDecodeRequest(body, nil, route == "impute")
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return writeError(w, http.StatusRequestEntityTooLarge, "request body too large", ""), ""
		}
		return writeError(w, http.StatusBadRequest, err.Error(), ""), ""
	}
	pk, err := s.resolvePack(req.Pack)
	if err != nil {
		return writeError(w, http.StatusBadRequest, err.Error(), "unknown_pack"), ""
	}
	packName := pk.Def.Name
	if req.Known != nil && pk.Schema != nil {
		if err := validateRecord(req.Known, pk.Schema); err != nil {
			return writeError(w, http.StatusBadRequest, err.Error(), ""), packName
		}
	}
	decode, err := s.decodeFnFor(req.Mode)
	if err != nil {
		return writeError(w, http.StatusBadRequest, err.Error(), ""), packName
	}

	// Clients may shorten their deadline but never extend it past the
	// server's: an uncapped timeout_ms would let one caller pin a batcher
	// lane (and its engine clone) for arbitrarily long.
	timeout := s.cfg.Timeout
	if req.TimeoutMs > 0 {
		if t := time.Duration(req.TimeoutMs) * time.Millisecond; t < timeout {
			timeout = t
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// Each request without a pinned seed gets its own splitmix64-derived
	// stream; the old affine seed+seq*7919 scheme let two servers with
	// nearby base seeds replay each other's request streams.
	seed := core.MixSeed(s.cfg.Seed, int(s.seedSeq.Add(1)))
	if req.Seed != nil {
		seed = *req.Seed
	}
	j := &router.Job{
		Ctx:           ctx,
		Prompt:        req.Known,
		Pack:          pk,
		Seed:          seed,
		Decode:        decode,
		NoPrefixCache: req.NoPrefixCache,
		Lookahead:     req.Lookahead,
		Start:         time.Now(),
		Resp:          make(chan router.Result, 1),
	}
	// Streaming requests thread an emit hook through the job context. The
	// channel holds every slot (each emits exactly once), so the decoding
	// goroutine never blocks on a slow client — the send always has room.
	var chunks chan StreamChunk
	if req.Stream {
		chunks = make(chan StreamChunk, len(pk.Engine.Slots()))
		j.Ctx = core.WithEmit(j.Ctx, func(slot int, text string) {
			chunks <- StreamChunk{Slot: slot, Text: text}
		})
	}
	// Bounded admission: never block the handler on full queues.
	if _, ok := s.router.Submit(j); !ok {
		w.Header().Set("Retry-After", s.retryAfter())
		return writeError(w, http.StatusTooManyRequests, "queue full", "overloaded"), packName
	}
	s.metrics.noteAdmitted()

	if req.Stream {
		return s.streamDecodeResponse(w, ctx, pk, j, chunks), packName
	}
	select {
	case res := <-j.Resp:
		s.metrics.observeLatency(time.Since(j.Start).Seconds())
		return s.writeDecodeResult(w, pk, res), packName
	case <-ctx.Done():
		// The job may still be queued or decoding; its context is cancelled,
		// so its shard will abandon it and nobody reads Resp (buffered).
		s.metrics.observeLatency(time.Since(j.Start).Seconds())
		s.metrics.countTimeout()
		return writeError(w, http.StatusGatewayTimeout, "deadline exceeded", "timeout"), packName
	}
}

// decodeOutcome is a decode result mapped to its HTTP shape, shared by the
// unary writer and the SSE terminal event.
type decodeOutcome struct {
	code       int
	status     string // machine-readable error status ("" on success)
	errMsg     string
	retryAfter bool // 503s that mean "try again later" carry Retry-After
	body       *DecodeResponse
}

// buildDecodeOutcome classifies one router result. On success it also counts
// the decode and checks compliance.
func (s *Server) buildDecodeOutcome(pk *pack.Compiled, res router.Result) decodeOutcome {
	if res.Err != nil {
		var pe *core.PanicError
		switch {
		case errors.Is(res.Err, context.DeadlineExceeded), errors.Is(res.Err, context.Canceled):
			s.metrics.countTimeout()
			return decodeOutcome{code: http.StatusGatewayTimeout, status: "timeout", errMsg: "deadline exceeded"}
		case errors.Is(res.Err, core.ErrBudget):
			// The solver gave up inside its budget, not a proof the request
			// is bad: the caller may retry (ideally elsewhere or later).
			return decodeOutcome{code: http.StatusServiceUnavailable, status: "budget", errMsg: res.Err.Error(), retryAfter: true}
		case errors.Is(res.Err, router.ErrOverloaded):
			// Admitted, then orphaned by a shard drain with no sibling room.
			return decodeOutcome{code: http.StatusServiceUnavailable, status: "overloaded", errMsg: res.Err.Error(), retryAfter: true}
		case isInfeasible(res.Err):
			return decodeOutcome{code: http.StatusUnprocessableEntity, status: "infeasible", errMsg: res.Err.Error()}
		case errors.As(res.Err, &pe):
			// The lane panicked and was retired alone; its batch-mates are
			// unaffected. The stack stays in the server log, not the reply.
			return decodeOutcome{code: http.StatusInternalServerError, status: "panic", errMsg: res.Err.Error()}
		default:
			return decodeOutcome{code: http.StatusInternalServerError, errMsg: res.Err.Error()}
		}
	}
	st := res.Res.Stats
	s.metrics.countDecode(pk.Def.Name, st.Tokens, st.SolverChecks, st.SpecAcceptedTokens, st.SpecRollbacks)
	out := &DecodeResponse{
		Record:    res.Res.Rec,
		Line:      formatLine(pk.Engine, res.Res.Rec),
		Compliant: true,
		BatchSize: res.BatchSize,
		Pack:      pk.Def.Name,
		Epoch:     pk.EpochHex(),
		Stats: StatsJSON{
			Tokens: st.Tokens, MaskedSteps: st.MaskedSteps, ForcedSteps: st.ForcedSteps,
			SolverChecks: st.SolverChecks, Attempts: st.Attempts,
			SpecAcceptedTokens: st.SpecAcceptedTokens, SpecRollbacks: st.SpecRollbacks,
		},
	}
	if pk.Rules != nil {
		viol, err := pk.Rules.Violations(res.Res.Rec)
		if err != nil {
			return decodeOutcome{code: http.StatusInternalServerError, errMsg: err.Error()}
		}
		out.Violations = viol
		out.Compliant = len(viol) == 0
	}
	return decodeOutcome{code: http.StatusOK, body: out}
}

func (s *Server) writeDecodeResult(w http.ResponseWriter, pk *pack.Compiled, res router.Result) int {
	o := s.buildDecodeOutcome(pk, res)
	if o.code != http.StatusOK {
		if o.retryAfter {
			w.Header().Set("Retry-After", s.retryAfter())
		}
		return writeError(w, o.code, o.errMsg, o.status)
	}
	return writeJSON(w, http.StatusOK, o.body)
}

// formatLine renders a record in the engine's grammar order (digits +
// separators), the same text format the pack's LM was trained on.
func formatLine(e *core.Engine, rec rules.Record) string {
	var b strings.Builder
	for _, sl := range e.Slots() {
		vs, ok := rec[sl.Field]
		if !ok || sl.Index >= len(vs) {
			return ""
		}
		fmt.Fprintf(&b, "%d%c", vs[sl.Index], sl.Sep)
	}
	return b.String()
}

// handleCheck serves /v1/check: pure rule evaluation, no queue, no decode.
func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	code, pk := s.serveCheck(w, r)
	s.metrics.countRequest("check", pk, code)
}

func (s *Server) serveCheck(w http.ResponseWriter, r *http.Request) (int, string) {
	if r.Method != http.MethodPost {
		return writeError(w, http.StatusMethodNotAllowed, "POST required", ""), ""
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	req, err := ParseCheckRequest(body, nil)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return writeError(w, http.StatusRequestEntityTooLarge, "request body too large", ""), ""
		}
		return writeError(w, http.StatusBadRequest, err.Error(), ""), ""
	}
	pk, err := s.resolvePack(req.Pack)
	if err != nil {
		return writeError(w, http.StatusBadRequest, err.Error(), "unknown_pack"), ""
	}
	packName := pk.Def.Name
	if pk.Schema != nil {
		if err := validateRecord(req.Record, pk.Schema); err != nil {
			return writeError(w, http.StatusBadRequest, err.Error(), ""), packName
		}
	}
	if pk.Rules == nil {
		return writeError(w, http.StatusNotImplemented, "pack has no rule set loaded", ""), packName
	}
	viol, err := pk.Rules.Violations(req.Record)
	if err != nil {
		return writeError(w, http.StatusBadRequest, err.Error(), ""), packName
	}
	if viol == nil {
		viol = []string{}
	}
	return writeJSON(w, http.StatusOK, CheckResponse{Compliant: len(viol) == 0, Violations: viol}), packName
}

// handlePacks serves GET /v1/packs: the registry listing with live epoch,
// generation, and reload counters per pack.
func (s *Server) handlePacks(w http.ResponseWriter, r *http.Request) {
	code := s.servePacks(w, r)
	s.metrics.countRequest("packs", "", code)
}

func (s *Server) servePacks(w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodGet {
		return writeError(w, http.StatusMethodNotAllowed, "GET required", "")
	}
	infos := s.packs.List()
	out := PacksResponse{Default: s.defaultPack, Packs: make([]PackInfoJSON, 0, len(infos))}
	for _, info := range infos {
		out.Packs = append(out.Packs, PackInfoJSON{
			Name: info.Name, Version: info.Version,
			Epoch:      fmt.Sprintf("%016x", info.Epoch),
			Generation: info.Generation,
			Rules:      info.Rules, Fields: info.Fields,
			Reloads: info.Reloads, ReloadErrs: info.ReloadErrors,
			Default: info.Name == s.defaultPack,
		})
	}
	return writeJSON(w, http.StatusOK, out)
}

// handlePackReload serves POST /v1/packs/reload: swap one pack's rule set
// from source text. Parsing, compilation, and the satisfiability pre-check
// run here — off the decode hot path — and the registry swaps atomically, so
// in-flight requests finish on the epoch they were admitted under and the
// next admission sees the new rules. On any error the old rules keep serving.
func (s *Server) handlePackReload(w http.ResponseWriter, r *http.Request) {
	code, pk := s.servePackReload(w, r)
	s.metrics.countRequest("reload", pk, code)
}

func (s *Server) servePackReload(w http.ResponseWriter, r *http.Request) (int, string) {
	if r.Method != http.MethodPost {
		return writeError(w, http.StatusMethodNotAllowed, "POST required", ""), ""
	}
	if s.draining.Load() {
		return writeError(w, http.StatusServiceUnavailable, "server is draining", "draining"), ""
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	req, err := ParseReloadRequest(body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return writeError(w, http.StatusRequestEntityTooLarge, "request body too large", ""), ""
		}
		return writeError(w, http.StatusBadRequest, err.Error(), ""), ""
	}
	next, err := s.packs.Reload(req.Pack, req.Rules)
	if err != nil {
		var unknown pack.ErrUnknownPack
		if errors.As(err, &unknown) {
			return writeError(w, http.StatusNotFound, err.Error(), "unknown_pack"), ""
		}
		return writeError(w, http.StatusBadRequest, err.Error(), "bad_rules"), req.Pack
	}
	s.logf("server: pack %s reloaded: epoch %s generation %d", req.Pack, next.EpochHex(), next.Generation)
	nrules := 0
	if next.Rules != nil {
		nrules = len(next.Rules.Rules)
	}
	return writeJSON(w, http.StatusOK, ReloadResponse{
		Pack: req.Pack, Epoch: next.EpochHex(), Generation: next.Generation, Rules: nrules,
	}), req.Pack
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	status := "ok"
	trips := s.metrics.budgetTrips()
	if t := s.cfg.DegradedThreshold; t > 0 && trips >= uint64(t) {
		// Still HTTP 200: the instance serves fine-behaved requests; the
		// degraded status is an operator signal that budgets are tripping
		// (misconfigured budget, or a pathological rule set in the traffic).
		status = "degraded"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":           status,
		"uptime_s":         time.Since(s.started).Seconds(),
		"max_batch":        s.cfg.MaxBatch,
		"replicas":         s.router.Replicas(),
		"budget_exhausted": trips,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WritePrometheus(w)
}

func writeJSON(w http.ResponseWriter, code int, v any) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
	return code
}

func writeError(w http.ResponseWriter, code int, msg, status string) int {
	return writeJSON(w, code, ErrorResponse{Error: msg, Status: status})
}

// isInfeasible reports whether err is core.ErrInfeasible (no rule-compliant
// completion exists for the prompt).
func isInfeasible(err error) bool {
	var inf core.ErrInfeasible
	return errors.As(err, &inf)
}
