package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/pack"
	"repro/internal/router"
)

// StreamChunk is one SSE "slot" event: a completed grammar slot's rendered
// text (digits plus trailing separator), sent as soon as the decode has
// proven it exact. Chunks arrive in slot order and concatenate to exactly the
// unary response's line field.
type StreamChunk struct {
	Slot int    `json:"slot"`
	Text string `json:"text"`
}

// StreamError is the data of an SSE "error" event — the streaming shape of
// ErrorResponse, carrying the HTTP status the request would have gotten
// unary. The transport status is already 200 by the time an error surfaces.
type StreamError struct {
	Code   int    `json:"code"`
	Error  string `json:"error"`
	Status string `json:"status,omitempty"`
}

// streamDecodeResponse writes one decode as Server-Sent Events: a "slot"
// event per completed slot while the decode runs, then a terminal "done"
// event with the full DecodeResponse (or an "error" event). Returns the
// logical status code — what the unary path would have answered — for the
// request counter; the wire status is 200 as soon as the stream opens.
func (s *Server) streamDecodeResponse(w http.ResponseWriter, ctx context.Context, pk *pack.Compiled, j *router.Job, chunks <-chan StreamChunk) int {
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	flush()
	s.metrics.countStream()

	first := true
	event := func(name string, data any) {
		buf, _ := json.Marshal(data)
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", name, buf)
		flush()
	}
	slot := func(c StreamChunk) {
		if first {
			first = false
			s.metrics.observeTTFT(time.Since(j.Start).Seconds())
		}
		event("slot", c)
	}
	finish := func(res router.Result) int {
		// Every emit happened before the result was delivered (same decoding
		// goroutine), so the remaining chunks are already buffered: drain
		// them before the terminal event.
		for {
			select {
			case c := <-chunks:
				slot(c)
				continue
			default:
			}
			break
		}
		s.metrics.observeLatency(time.Since(j.Start).Seconds())
		o := s.buildDecodeOutcome(pk, res)
		if o.code != http.StatusOK {
			event("error", StreamError{Code: o.code, Error: o.errMsg, Status: o.status})
			return o.code
		}
		event("done", o.body)
		return http.StatusOK
	}

	for {
		select {
		case c := <-chunks:
			slot(c)
		case res := <-j.Resp:
			return finish(res)
		case <-ctx.Done():
			// The job may still be queued or decoding; its context is
			// cancelled, so its shard abandons it and nobody reads Resp.
			s.metrics.observeLatency(time.Since(j.Start).Seconds())
			s.metrics.countTimeout()
			event("error", StreamError{Code: http.StatusGatewayTimeout, Error: "deadline exceeded", Status: "timeout"})
			return http.StatusGatewayTimeout
		}
	}
}
