package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/router"
	"repro/internal/rules"
	"repro/internal/vocab"
)

// --- nn-backed fixtures -------------------------------------------------------
//
// uniformLM/gateLM do not implement core.BatchLM, so every other server test
// exercises the per-record worker pool. The fault-injection e2e needs the
// lock-step GEMM path — the one a poisoned lane shares with 15 strangers —
// so it builds a real (tiny, untrained) transformer.

var (
	faultModelOnce sync.Once
	faultModelVal  *nn.Model
	faultModelErr  error
)

func faultTestModel(tb testing.TB) *nn.Model {
	tb.Helper()
	faultModelOnce.Do(func() {
		faultModelVal, faultModelErr = nn.New(nn.Config{
			Vocab: vocab.Telemetry().Size(), Ctx: 48, Dim: 16, Heads: 2, Layers: 2,
		}, 7)
	})
	if faultModelErr != nil {
		tb.Fatal(faultModelErr)
	}
	return faultModelVal
}

// nnServerEngine builds a lock-step-capable engine with an optional fault
// hook.
func nnServerEngine(tb testing.TB, hook func(core.FaultSite) error) (*core.Engine, *rules.RuleSet, *rules.Schema) {
	tb.Helper()
	schema := rulesTestSchema()
	rs, err := rules.ParseRuleSet(testRulesText, schema)
	if err != nil {
		tb.Fatal(err)
	}
	slots, err := core.TelemetryGrammar(schema, []string{"TotalIngress", "Congestion"}, "I")
	if err != nil {
		tb.Fatal(err)
	}
	eng, err := core.NewEngine(core.Config{
		LM: core.WrapNN(faultTestModel(tb)), Tok: vocab.Telemetry(), Schema: schema,
		Rules: rs, Slots: slots, Mode: core.LeJIT, FaultHook: hook,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return eng, rs, schema
}

func newFaultServer(t *testing.T, hook func(core.FaultSite) error, tweak func(*Config)) *Server {
	t.Helper()
	eng, rs, schema := nnServerEngine(t, hook)
	cfg := Config{
		Engine: eng, Rules: rs, Schema: schema,
		BatchWindow: 150 * time.Millisecond, MaxBatch: 16, Workers: 1,
	}
	if tweak != nil {
		tweak(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// faultBatch fires the same 16 seeded impute requests concurrently so they
// coalesce into one lock-step batch, returning per-request status code,
// decoded line, and machine status.
func faultBatch(t *testing.T, ts *httptest.Server) (codes []int, lines, statuses []string, retryAfter []string) {
	t.Helper()
	const n = 16
	codes = make([]int, n)
	lines = make([]string, n)
	statuses = make([]string, n)
	retryAfter = make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"known": {"TotalIngress": [%d], "Congestion": [%d]}, "seed": %d}`, 60+10*i, i%3, 1000+i)
			resp, data := postJSON(t, ts, "/v1/impute", body)
			codes[i] = resp.StatusCode
			retryAfter[i] = resp.Header.Get("Retry-After")
			if resp.StatusCode == http.StatusOK {
				var dr DecodeResponse
				if err := json.Unmarshal(data, &dr); err != nil {
					t.Error(err)
					return
				}
				lines[i] = dr.Line
			} else {
				var e ErrorResponse
				if err := json.Unmarshal(data, &e); err != nil {
					t.Error(err)
					return
				}
				statuses[i] = e.Status
			}
		}(i)
	}
	wg.Wait()
	return codes, lines, statuses, retryAfter
}

// TestFaultInjectionE2E is the acceptance scenario: in a 16-record lock-step
// batch, one lane is forced to panic and one to exhaust its solver budget.
// lejitd must answer 500/503 for those two requests only, the other 14
// responses must be bit-identical to an uninjected run, the process must
// survive, and /metrics must report the new counters.
func TestFaultInjectionE2E(t *testing.T) {
	// Requests are keyed by their TotalIngress value: 60+10*i.
	const panicTarget = int64(60 + 10*3)  // request 3 panics
	const budgetTarget = int64(60 + 10*9) // request 9 "stalls"

	clean := newFaultServer(t, nil, nil)
	cleanTS := httptest.NewServer(clean)
	defer cleanTS.Close()
	cleanCodes, cleanLines, _, _ := faultBatch(t, cleanTS)
	for i, code := range cleanCodes {
		if code != http.StatusOK {
			t.Fatalf("uninjected run: request %d got %d", i, code)
		}
	}

	hook := func(fs core.FaultSite) error {
		if fs.Known == nil || len(fs.Known["TotalIngress"]) == 0 || fs.Tokens < 2 {
			return nil
		}
		switch fs.Known["TotalIngress"][0] {
		case panicTarget:
			panic("injected fault: lane panic")
		case budgetTarget:
			return fmt.Errorf("injected fault: %w", core.ErrBudget)
		}
		return nil
	}
	faulty := newFaultServer(t, hook, func(c *Config) { c.DegradedThreshold = 1 })
	ts := httptest.NewServer(faulty)
	defer ts.Close()

	codes, lines, statuses, retryAfter := faultBatch(t, ts)
	for i := range codes {
		switch i {
		case 3:
			if codes[i] != http.StatusInternalServerError || statuses[i] != "panic" {
				t.Errorf("panicked request: code %d status %q, want 500/panic", codes[i], statuses[i])
			}
		case 9:
			if codes[i] != http.StatusServiceUnavailable || statuses[i] != "budget" {
				t.Errorf("budget request: code %d status %q, want 503/budget", codes[i], statuses[i])
			}
			if retryAfter[i] == "" {
				t.Error("503 budget response without Retry-After")
			}
		default:
			if codes[i] != http.StatusOK {
				t.Errorf("clean request %d got %d alongside faults", i, codes[i])
				continue
			}
			if lines[i] != cleanLines[i] {
				t.Errorf("request %d changed by poisoned batch-mates:\n got %q\nwant %q", i, lines[i], cleanLines[i])
			}
		}
	}

	// The process survives and keeps serving.
	resp, data := postJSON(t, ts, "/v1/impute", `{"known": {"TotalIngress": [55], "Congestion": [0]}, "seed": 5}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-fault request: %d (%s)", resp.StatusCode, data)
	}

	// The new counters are exported.
	resp, data = getBody(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	text := string(data)
	for _, want := range []string{
		"lejitd_budget_exhausted_total 1",
		"lejitd_panics_recovered_total 1",
		"lejitd_lanes_retired_total 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}

	// One budget trip meets DegradedThreshold=1: healthz degrades but stays
	// HTTP 200 so load balancers keep the instance.
	resp, data = getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	if !strings.Contains(string(data), `"degraded"`) {
		t.Errorf("healthz not degraded after budget trip: %s", data)
	}

	// The clean server never degraded.
	resp, data = getBody(t, cleanTS.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), `"ok"`) {
		t.Errorf("clean healthz: %d %s", resp.StatusCode, data)
	}
}

// TestExpiredDeadlineJob: a job whose deadline has already passed when its
// shard picks it up is not decoded; its lane is retired with the context
// error and counted.
func TestExpiredDeadlineJob(t *testing.T) {
	s := newTestServer(t, nil)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	pk, _ := s.packs.Get(s.defaultPack)
	j := &router.Job{
		Ctx:    ctx,
		Prompt: rules.Record{"TotalIngress": {100}, "Congestion": {0}},
		Pack:   pk,
		Seed:   1,
		Start:  time.Now(),
		Resp:   make(chan router.Result, 1),
	}
	if _, ok := s.router.Submit(j); !ok {
		t.Fatal("expired job refused admission")
	}
	res := <-j.Resp
	if !errors.Is(res.Err, context.DeadlineExceeded) {
		t.Fatalf("expired job err %v, want DeadlineExceeded", res.Err)
	}
	if got := s.Metrics().Snapshot().LanesRetired; got != 1 {
		t.Errorf("lanes retired %d, want 1", got)
	}
}

// TestDrainRefusalBeatsQueueFull: with the queue full AND the server
// draining, a new request gets the deterministic 503 draining refusal, not
// 429 — drain state is checked before admission.
func TestDrainRefusalBeatsQueueFull(t *testing.T) {
	gate := make(chan struct{})
	released := false
	release := func() {
		if !released {
			released = true
			close(gate)
		}
	}
	defer release()

	eng, rs, schema := testEngine(t, gateLM{vocab: vocab.Telemetry().Size(), gate: gate})
	s, err := New(Config{
		Engine: eng, Rules: rs, Schema: schema,
		BatchWindow: time.Millisecond, MaxBatch: 1, QueueDepth: 1, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	body := `{"known": {"TotalIngress": [100], "Congestion": [0]}}`
	done := make(chan struct{}, 2)
	post := func() {
		postJSON(t, ts, "/v1/impute", body)
		done <- struct{}{}
	}
	// Request 1 blocks on the gate inside the batcher; request 2 fills the
	// queue.
	go post()
	waitFor(t, s, func(sn Snapshot) bool { return sn.Batches == 1 })
	go post()
	waitFor(t, s, func(sn Snapshot) bool { return sn.QueueDepth == 1 })

	s.draining.Store(true)
	resp, data := postJSON(t, ts, "/v1/impute", body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 (body %s)", resp.StatusCode, data)
	}
	var e ErrorResponse
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatal(err)
	}
	if e.Status != "draining" {
		t.Errorf("status field %q, want draining (drain must precede queue-full 429)", e.Status)
	}

	// Unblock the held decodes before Close/ts.Close tear down; the two
	// admitted requests finish normally (admission predates the drain flag).
	release()
	<-done
	<-done
}

// TestWriteDecodeResultMapping exercises the error→HTTP mapping directly,
// including failures wrapped the way the lock-step scheduler reports them.
func TestWriteDecodeResultMapping(t *testing.T) {
	s := newTestServer(t, nil)
	cases := []struct {
		name       string
		err        error
		wantCode   int
		wantStatus string
	}{
		{"deadline", context.DeadlineExceeded, http.StatusGatewayTimeout, "timeout"},
		{"budget", fmt.Errorf("lane: %w", core.ErrBudget), http.StatusServiceUnavailable, "budget"},
		{"infeasible", core.ErrInfeasible{Detail: "x"}, http.StatusUnprocessableEntity, "infeasible"},
		{"panic", &core.PanicError{Value: "boom"}, http.StatusInternalServerError, "panic"},
		{"lane-wrapped", &nn.LaneError{Lane: 3, Err: fmt.Errorf("context length exceeded")}, http.StatusInternalServerError, ""},
		{"lane-wrapped-budget", fmt.Errorf("retired: %w", &nn.LaneError{Lane: 1, Err: core.ErrBudget}), http.StatusServiceUnavailable, "budget"},
		{"drain-overloaded", router.ErrOverloaded, http.StatusServiceUnavailable, "overloaded"},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		pk, _ := s.packs.Get(s.defaultPack)
		code := s.writeDecodeResult(rec, pk, router.Result{Err: tc.err})
		if code != tc.wantCode {
			t.Errorf("%s: code %d, want %d", tc.name, code, tc.wantCode)
		}
		var e ErrorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if e.Status != tc.wantStatus {
			t.Errorf("%s: status %q, want %q", tc.name, e.Status, tc.wantStatus)
		}
		if tc.wantCode == http.StatusServiceUnavailable && rec.Header().Get("Retry-After") == "" {
			t.Errorf("%s: 503 without Retry-After", tc.name)
		}
	}
}

// TestTimeoutMsClampedToServerMax: a client asking for an hour-long deadline
// on a server configured with a much shorter one is clamped — the handler
// returns 504 at the server's deadline, and no batcher lane stays pinned.
func TestTimeoutMsClampedToServerMax(t *testing.T) {
	gate := make(chan struct{})
	eng, rs, schema := testEngine(t, gateLM{vocab: vocab.Telemetry().Size(), gate: gate})
	s, err := New(Config{
		Engine: eng, Rules: rs, Schema: schema,
		BatchWindow: time.Millisecond, Workers: 1,
		Timeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// LIFO: the gate must open before s.Close waits on the batcher, which is
	// parked inside the gated decode.
	defer close(gate)
	ts := httptest.NewServer(s)
	defer ts.Close()

	start := time.Now()
	resp, _ := postJSON(t, ts, "/v1/impute",
		`{"known": {"TotalIngress": [100], "Congestion": [0]}, "timeout_ms": 3600000}`)
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("clamped request took %v; timeout_ms was not capped at cfg.Timeout", elapsed)
	}
}

// TestBatcherRestartsAfterPanic: a panic that escapes a batch (here: result
// delivery to a closed channel) kills the batcher loop once; the supervisor
// restarts it, the restart is counted, and the server keeps serving.
func TestBatcherRestartsAfterPanic(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	poisoned := make(chan router.Result, 1)
	close(poisoned)
	pk, _ := s.packs.Get(s.defaultPack)
	if _, ok := s.router.Submit(&router.Job{
		Ctx:    context.Background(),
		Prompt: rules.Record{"TotalIngress": {100}, "Congestion": {0}},
		Pack:   pk,
		Seed:   1,
		Start:  time.Now(),
		Resp:   poisoned, // delivery panics: send on closed channel
	}); !ok {
		t.Fatal("poisoned job refused admission")
	}
	waitFor(t, s, func(sn Snapshot) bool { return sn.BatcherRestarts >= 1 })

	resp, data := postJSON(t, ts, "/v1/impute", `{"known": {"TotalIngress": [90], "Congestion": [0]}, "seed": 2}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart request: %d (%s)", resp.StatusCode, data)
	}
}
