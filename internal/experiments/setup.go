// Package experiments contains one driver per figure in the paper's
// evaluation (§4): data preparation, model training (cached on disk),
// rule mining, the per-method decoding loops, and the table printers that
// cmd/lejit-bench and bench_test.go invoke. See DESIGN.md §3 for the
// experiment index and EXPERIMENTS.md for recorded results.
package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/mining"
	"repro/internal/nn"
	"repro/internal/rules"
	"repro/internal/vocab"
)

// ScaleConfig sets the experiment scale. The paper runs 90 racks and >30K
// test windows on a GPU cluster; the defaults here are laptop-scale with the
// same structure — every driver accepts a custom scale for larger runs.
type ScaleConfig struct {
	Racks          int // total racks (default 90, as in the paper)
	WindowsPerRack int // windows per rack (default 60)
	TrainRacks     int // default 80
	TestRacks      int // default 10
	TestN          int // test windows evaluated per figure (default 120)
	SampleN        int // synthetic samples per generator in Fig 5 (default 400)

	ModelDim    int // transformer width (default 64)
	ModelLayers int // default 2
	ModelHeads  int // default 4
	Epochs      int // training epochs (default 3)

	MiningSlack  int64   // bound slack for mined rules (default 2)
	MiningCoeffs []int64 // pairwise coefficients (default {1,2,3})

	Temperature float64 // decoding temperature (default 0.9)
	Seed        int64
	// Workers is the decode-worker count for engine-backed methods
	// (default runtime.GOMAXPROCS(0)). Results are deterministic in Seed
	// regardless of the value — see core.DecodeBatch.
	Workers int

	CacheDir string // model cache directory ("" → no caching)
	Quiet    bool   // suppress progress logging
}

// DefaultScale returns the laptop-scale defaults.
func DefaultScale() ScaleConfig {
	return ScaleConfig{
		Racks: 90, WindowsPerRack: 60, TrainRacks: 80, TestRacks: 10,
		TestN: 120, SampleN: 400,
		ModelDim: 64, ModelLayers: 2, ModelHeads: 4, Epochs: 3,
		MiningSlack: 2, MiningCoeffs: []int64{1, 2, 3},
		Temperature: 0.9, Seed: 1, CacheDir: "artifacts",
	}
}

// TinyScale returns a minimal configuration for tests (seconds, not
// minutes); results are structurally valid but statistically noisy.
func TinyScale() ScaleConfig {
	sc := DefaultScale()
	sc.Racks, sc.WindowsPerRack = 12, 30
	sc.TrainRacks, sc.TestRacks = 10, 2
	sc.TestN, sc.SampleN = 20, 60
	sc.ModelDim, sc.ModelLayers, sc.ModelHeads = 32, 1, 2
	sc.Epochs = 2
	sc.CacheDir = ""
	sc.Quiet = true
	return sc
}

func (sc *ScaleConfig) fill() {
	d := DefaultScale()
	if sc.Racks == 0 {
		sc.Racks = d.Racks
	}
	if sc.WindowsPerRack == 0 {
		sc.WindowsPerRack = d.WindowsPerRack
	}
	if sc.TrainRacks == 0 {
		sc.TrainRacks = d.TrainRacks
	}
	if sc.TestRacks == 0 {
		sc.TestRacks = d.TestRacks
	}
	if sc.TestN == 0 {
		sc.TestN = d.TestN
	}
	if sc.SampleN == 0 {
		sc.SampleN = d.SampleN
	}
	if sc.ModelDim == 0 {
		sc.ModelDim = d.ModelDim
	}
	if sc.ModelLayers == 0 {
		sc.ModelLayers = d.ModelLayers
	}
	if sc.ModelHeads == 0 {
		sc.ModelHeads = d.ModelHeads
	}
	if sc.Epochs == 0 {
		sc.Epochs = d.Epochs
	}
	if sc.MiningSlack == 0 {
		sc.MiningSlack = d.MiningSlack
	}
	if sc.MiningCoeffs == nil {
		sc.MiningCoeffs = d.MiningCoeffs
	}
	if sc.Temperature == 0 {
		sc.Temperature = d.Temperature
	}
	if sc.Seed == 0 {
		sc.Seed = d.Seed
	}
	if sc.Workers == 0 {
		sc.Workers = runtime.GOMAXPROCS(0)
	}
}

// ManualRulesText is the Zoom2Net-style hand-written rule set (the paper's
// "manual rules C4–C7" baseline): capacity, conservation, the ECN burst
// implication, and smoothness.
const ManualRulesText = `
const BW = 60
const T  = 5
rule c4: forall t in 0..T-1: 0 <= I[t] and I[t] <= BW
rule c5: sum(I) == TotalIngress
rule c6: Congestion > 0 -> max(I) >= BW/2
rule c7: forall t in 0..T-2: I[t+1] - I[t] <= BW and I[t] - I[t+1] <= BW
`

// Env is everything a figure driver needs: data splits, the trained model,
// and the three rule sets.
type Env struct {
	Scale  ScaleConfig
	Schema *rules.Schema
	Tok    *vocab.Tokenizer
	Model  *nn.Model

	Train, Test []dataset.Window

	ImputeRules *rules.RuleSet // full mined set over all fields (paper: 716)
	SynthRules  *rules.RuleSet // mined set over coarse fields only (paper: 255)
	ManualRules *rules.RuleSet // the 4 manual rules (C4–C7)
}

// Logf logs progress unless the scale is quiet.
func (e *Env) Logf(format string, args ...any) {
	if !e.Scale.Quiet {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
}

// Prepare generates the corpus, trains (or loads) the model, and mines the
// rule sets. Deterministic in ScaleConfig.
func Prepare(sc ScaleConfig) (*Env, error) {
	sc.fill()
	env := &Env{Scale: sc, Schema: dataset.Schema(), Tok: vocab.Telemetry()}

	env.Logf("experiments: generating %d racks × %d windows", sc.Racks, sc.WindowsPerRack)
	ws := dataset.Generate(dataset.Config{Racks: sc.Racks, WindowsPerRack: sc.WindowsPerRack, Seed: sc.Seed})
	env.Train, env.Test = dataset.Split(ws, sc.TrainRacks, sc.TestRacks)
	if len(env.Train) == 0 || len(env.Test) == 0 {
		return nil, fmt.Errorf("experiments: empty split (racks %d train %d test %d)", sc.Racks, sc.TrainRacks, sc.TestRacks)
	}

	env.Logf("experiments: mining rules from %d training windows", len(env.Train))
	var err error
	env.ImputeRules, err = mining.Mine(dataset.Records(env.Train), env.Schema,
		mining.Config{Slack: sc.MiningSlack, Coeffs: sc.MiningCoeffs})
	if err != nil {
		return nil, fmt.Errorf("experiments: mining imputation rules: %w", err)
	}
	env.SynthRules, err = mining.Mine(dataset.Records(env.Train), env.Schema,
		mining.Config{Slack: sc.MiningSlack, Coeffs: sc.MiningCoeffs, Fields: dataset.CoarseFields()})
	if err != nil {
		return nil, fmt.Errorf("experiments: mining synthesis rules: %w", err)
	}
	env.ManualRules, err = rules.ParseRuleSet(ManualRulesText, env.Schema)
	if err != nil {
		return nil, fmt.Errorf("experiments: parsing manual rules: %w", err)
	}
	env.Logf("experiments: mined %d imputation rules, %d synthesis rules", env.ImputeRules.Len(), env.SynthRules.Len())

	if err := env.loadOrTrain(); err != nil {
		return nil, err
	}
	return env, nil
}

// modelCfg derives the transformer configuration from the scale.
func (sc ScaleConfig) modelCfg(vocabSize int) nn.Config {
	return nn.Config{
		Vocab: vocabSize, Ctx: 48,
		Dim: sc.ModelDim, Heads: sc.ModelHeads, Layers: sc.ModelLayers,
	}
}

// cacheKey fingerprints everything that affects the trained weights.
func (sc ScaleConfig) cacheKey() string {
	h := sha256.Sum256([]byte(fmt.Sprintf("v1|%d|%d|%d|%d|%d|%d|%d|%d|%d",
		sc.Racks, sc.WindowsPerRack, sc.TrainRacks,
		sc.ModelDim, sc.ModelLayers, sc.ModelHeads, sc.Epochs, sc.Seed, 48)))
	return hex.EncodeToString(h[:8])
}

func (e *Env) loadOrTrain() error {
	sc := e.Scale
	var path string
	if sc.CacheDir != "" {
		path = filepath.Join(sc.CacheDir, "gpt2mini_"+sc.cacheKey()+".gob")
		if f, err := os.Open(path); err == nil {
			defer f.Close()
			m, err := nn.Load(f)
			if err == nil {
				e.Logf("experiments: loaded cached model %s", path)
				e.Model = m
				return nil
			}
			e.Logf("experiments: cache %s unreadable (%v), retraining", path, err)
		}
	}

	seqs, err := Corpus(e.Tok, e.Train)
	if err != nil {
		return err
	}
	m, err := nn.New(sc.modelCfg(e.Tok.Size()), sc.Seed)
	if err != nil {
		return err
	}
	e.Logf("experiments: training %d-param model on %d sequences for %d epochs",
		m.NumParams(), len(seqs), sc.Epochs)
	tc := nn.TrainConfig{Epochs: sc.Epochs, Seed: sc.Seed, LogEvery: 50}
	if !sc.Quiet {
		tc.Logf = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	}
	if _, err := m.Train(seqs, tc); err != nil {
		return fmt.Errorf("experiments: training: %w", err)
	}
	e.Model = m

	if path != "" {
		if err := os.MkdirAll(sc.CacheDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := m.Save(f); err != nil {
			return err
		}
		e.Logf("experiments: cached model at %s", path)
	}
	return nil
}

// Corpus tokenizes windows into BOS…EOS training sequences.
func Corpus(tok *vocab.Tokenizer, ws []dataset.Window) ([][]int, error) {
	seqs := make([][]int, 0, len(ws))
	for _, w := range ws {
		seq, err := tok.EncodeSeq(dataset.Format(w.Rec))
		if err != nil {
			return nil, err
		}
		seqs = append(seqs, seq)
	}
	return seqs, nil
}

// EngineFor builds a decoding engine over the trained model for the given
// rule set and mode.
func (e *Env) EngineFor(rs *rules.RuleSet, mode core.Mode) (*core.Engine, error) {
	return e.EngineForModel(e.Model, rs, mode)
}

// EngineForModel is EngineFor over an explicit model — the cores benchmark
// decodes against a gob-cloned copy so snap-mode quantization never touches
// the shared Env model.
func (e *Env) EngineForModel(m *nn.Model, rs *rules.RuleSet, mode core.Mode) (*core.Engine, error) {
	slots, err := core.TelemetryGrammar(e.Schema, dataset.CoarseFields(), dataset.FineField)
	if err != nil {
		return nil, err
	}
	return core.NewEngine(core.Config{
		LM: core.WrapNN(m), Tok: e.Tok, Schema: e.Schema,
		Rules: rs, Slots: slots, Mode: mode,
		Temperature: e.Scale.Temperature,
	})
}

// TestRecordsN returns up to n test records (n ≤ 0 → ScaleConfig.TestN).
func (e *Env) TestRecordsN(n int) []rules.Record {
	if n <= 0 {
		n = e.Scale.TestN
	}
	if n > len(e.Test) {
		n = len(e.Test)
	}
	return dataset.Records(e.Test[:n])
}

// CoarseOf projects a record to its coarse fields (the imputation prompt).
func CoarseOf(rec rules.Record) rules.Record {
	out := rules.Record{}
	for _, f := range dataset.CoarseFields() {
		out[f] = append([]int64(nil), rec[f]...)
	}
	return out
}
