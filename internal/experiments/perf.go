package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/rules"
)

// WorkerPerf is decode throughput at one worker count. Speedup is nil on a
// GOMAXPROCS=1 host: the sweep then measures determinism, not scaling, and
// a ~1.0 value would read as "no speedup" when no speedup was measurable
// (the BENCH_1..7 footgun — every committed report ran on a 1-CPU host).
type WorkerPerf struct {
	Workers       int      `json:"workers"`
	TotalMs       float64  `json:"total_ms"`
	RecordsPerSec float64  `json:"records_per_sec"`
	Speedup       *float64 `json:"speedup_vs_1"`
}

// BatchPerf is lock-step decode throughput at one batch size: B lanes share
// one BatchSession, so each transformer weight block is streamed from memory
// once per token step instead of once per record (DESIGN.md §9).
type BatchPerf struct {
	Batch        int     `json:"batch"`
	TotalMs      float64 `json:"total_ms"`
	TokensPerSec float64 `json:"tokens_per_sec"`
	// WeightBytesPerToken is the parameter traffic one lane-token costs with
	// the batch full: AppendWeightBytes/B. Ragged tails stream more; this is
	// the steady-state figure, and at batch 1 it equals the solo path's cost.
	WeightBytesPerToken float64 `json:"weight_bytes_per_token"`
	// Speedup is nil on a GOMAXPROCS=1 host (see WorkerPerf.Speedup).
	Speedup *float64 `json:"speedup_vs_1"`
}

// PerfReport is the machine-readable performance summary written as
// BENCH_N.json so future changes can track the hot path's trajectory.
// All measurements are LeJIT imputation over the mined rule set.
type PerfReport struct {
	Records int `json:"records"`
	Rules   int `json:"rules"`
	// NumCPU and GoMaxProcs contextualize the worker sweep: on a host where
	// either is 1 the pool cannot show wall-clock scaling, only determinism.
	// Earlier reports recorded only GOMAXPROCS, which hid the difference
	// between a constrained process and a genuinely single-CPU machine.
	NumCPU         int     `json:"num_cpu"`
	GoMaxProcs     int     `json:"gomaxprocs"`
	Tokens         int     `json:"tokens"`
	TokensPerSec   float64 `json:"tokens_per_sec"`
	ChecksPerToken float64 `json:"solver_checks_per_token"`
	// FastPathRate is the fraction of range-feasibility probes answered with
	// no solver involvement — per-slot interval state or model patching
	// (DESIGN.md §6); SolverProbeRate is the fraction that fell back to a
	// real CheckWith. The two partition OracleQueries (the epoch-keyed probe
	// cache was removed after BENCH_2 measured a 0.17% hit rate).
	FastPathRate    float64 `json:"oracle_fastpath_rate"`
	SolverProbeRate float64 `json:"oracle_solver_probe_rate"`
	// WarmStartRate is the fraction of solver Checks that reused the
	// epoch's memoized propagated base store instead of rebuilding it.
	WarmStartRate float64      `json:"solver_warm_start_rate"`
	ByWorkers     []WorkerPerf `json:"by_workers"`
	ByBatch       []BatchPerf  `json:"by_batch"`
	// Warning flags conditions that make parts of the report meaningless
	// (e.g. a worker sweep with GOMAXPROCS=1).
	Warning string `json:"warning,omitempty"`
}

// RunPerf measures LeJIT decode throughput: one serial pass for the
// per-token counters, then one batched pass per requested worker count
// (nil → {1, 2, Scale.Workers}). Decoded records are identical across
// worker counts by the DecodeBatch determinism contract.
func RunPerf(env *Env, workerCounts []int) (*PerfReport, error) {
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, env.Scale.Workers}
	}
	seen := map[int]bool{}
	counts := workerCounts[:0:0]
	for _, w := range workerCounts {
		if w > 0 && !seen[w] {
			seen[w] = true
			counts = append(counts, w)
		}
	}
	workerCounts = counts
	eng, err := env.EngineFor(env.ImputeRules, core.LeJIT)
	if err != nil {
		return nil, err
	}
	test := env.TestRecordsN(0)
	prompts := make([]rules.Record, len(test))
	for i, rec := range test {
		prompts[i] = CoarseOf(rec)
	}
	rep := &PerfReport{
		Records:    len(prompts),
		Rules:      env.ImputeRules.Len(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	if rep.GoMaxProcs == 1 {
		rep.Warning = fmt.Sprintf("GOMAXPROCS=1 (NumCPU=%d): the worker sweep measures determinism, not parallel speedup", rep.NumCPU)
	}

	// Serial pass: per-token counters and wall time.
	checksBefore := eng.SolverStats().Checks
	warmBefore := eng.SolverStats().WarmStarts
	start := time.Now()
	batch, err := eng.DecodeBatch(prompts, 1, env.Scale.Seed+4000, nil)
	if err != nil {
		return nil, err
	}
	serial := time.Since(start)
	var queries, fast, probes uint64
	for _, b := range batch {
		if b.Err != nil {
			continue
		}
		rep.Tokens += b.Res.Stats.Tokens
		queries += b.Res.Stats.OracleQueries
		fast += b.Res.Stats.OracleFastPath
		probes += b.Res.Stats.OracleProbes
	}
	checks := eng.SolverStats().Checks - checksBefore
	warms := eng.SolverStats().WarmStarts - warmBefore
	if serial > 0 {
		rep.TokensPerSec = float64(rep.Tokens) / serial.Seconds()
	}
	if rep.Tokens > 0 {
		rep.ChecksPerToken = float64(checks) / float64(rep.Tokens)
	}
	if queries > 0 {
		rep.FastPathRate = float64(fast) / float64(queries)
		rep.SolverProbeRate = float64(probes) / float64(queries)
	}
	if checks > 0 {
		rep.WarmStartRate = float64(warms) / float64(checks)
	}

	var base float64
	for _, w := range workerCounts {
		start := time.Now()
		if _, err := eng.DecodeBatch(prompts, w, env.Scale.Seed+4000, nil); err != nil {
			return nil, err
		}
		total := time.Since(start)
		wp := WorkerPerf{Workers: w, TotalMs: float64(total.Microseconds()) / 1000}
		if total > 0 {
			wp.RecordsPerSec = float64(len(prompts)) / total.Seconds()
		}
		if w == 1 || base == 0 {
			base = wp.RecordsPerSec
		}
		if base > 0 && rep.GoMaxProcs > 1 {
			s := wp.RecordsPerSec / base
			wp.Speedup = &s
		}
		rep.ByWorkers = append(rep.ByWorkers, wp)
	}

	// Batch sweep: decode the same prompts in chunks of B through
	// DecodeRequests with a single worker, so each chunk runs as one
	// lock-step group of B lanes (B == 1 stays on the per-record path).
	// Tokens/sec shows GEMM throughput where cores allow; the weight-traffic
	// column shows the memory-bandwidth win even on a single-CPU host.
	wb := float64(env.Model.AppendWeightBytes())
	var batchBase float64
	for _, b := range []int{1, 4, 16, 32} {
		start := time.Now()
		toks := 0
		for lo := 0; lo < len(prompts); lo += b {
			hi := lo + b
			if hi > len(prompts) {
				hi = len(prompts)
			}
			reqs := make([]core.BatchRequest, hi-lo)
			for j := lo; j < hi; j++ {
				reqs[j-lo].Prompt = prompts[j]
			}
			res, err := eng.DecodeRequests(context.Background(), reqs, 1, env.Scale.Seed+4000, nil)
			if err != nil {
				return nil, err
			}
			for _, r := range res {
				if r.Err == nil {
					toks += r.Res.Stats.Tokens
				}
			}
		}
		total := time.Since(start)
		bp := BatchPerf{Batch: b, TotalMs: float64(total.Microseconds()) / 1000}
		if total > 0 {
			bp.TokensPerSec = float64(toks) / total.Seconds()
		}
		bp.WeightBytesPerToken = wb / float64(b)
		if b == 1 || batchBase == 0 {
			batchBase = bp.TokensPerSec
		}
		if batchBase > 0 && rep.GoMaxProcs > 1 {
			s := bp.TokensPerSec / batchBase
			bp.Speedup = &s
		}
		rep.ByBatch = append(rep.ByBatch, bp)
	}
	return rep, nil
}

// WriteJSON writes the report to path, pretty-printed.
func (r *PerfReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// PerfTable renders the report for the text output.
func PerfTable(r *PerfReport) Table {
	t := Table{
		Title:  "Perf: LeJIT decode throughput (imputation, mined rules)",
		Header: []string{"records", "tokens/sec", "checks/token", "fastpath %", "warm-start %"},
	}
	t.Rows = append(t.Rows, []string{
		itoa(r.Records), f1(r.TokensPerSec), f3(r.ChecksPerToken),
		pct(r.FastPathRate), pct(r.WarmStartRate),
	})
	for _, w := range r.ByWorkers {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("workers=%d", w.Workers), f1(w.RecordsPerSec) + " rec/s",
			fmt.Sprintf("%.1fms", w.TotalMs), speedupCell(w.Speedup), "",
		})
	}
	for _, b := range r.ByBatch {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("batch=%d", b.Batch), f1(b.TokensPerSec) + " tok/s",
			fmt.Sprintf("%.1fms", b.TotalMs), speedupCell(b.Speedup),
			fmt.Sprintf("%.0f B/tok", b.WeightBytesPerToken),
		})
	}
	return t
}

// speedupCell renders a nullable speedup: "n/a" when the host could not
// have shown one (GOMAXPROCS=1).
func speedupCell(s *float64) string {
	if s == nil {
		return "n/a"
	}
	return fmt.Sprintf("%.2fx", *s)
}
