package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/rules"
)

// WorkerPerf is decode throughput at one worker count.
type WorkerPerf struct {
	Workers       int     `json:"workers"`
	TotalMs       float64 `json:"total_ms"`
	RecordsPerSec float64 `json:"records_per_sec"`
	Speedup       float64 `json:"speedup_vs_1"`
}

// PerfReport is the machine-readable performance summary written as
// BENCH_N.json so future changes can track the hot path's trajectory.
// All measurements are LeJIT imputation over the mined rule set.
type PerfReport struct {
	Records int `json:"records"`
	Rules   int `json:"rules"`
	// NumCPU and GoMaxProcs contextualize the worker sweep: on a host where
	// either is 1 the pool cannot show wall-clock scaling, only determinism.
	// Earlier reports recorded only GOMAXPROCS, which hid the difference
	// between a constrained process and a genuinely single-CPU machine.
	NumCPU         int     `json:"num_cpu"`
	GoMaxProcs     int     `json:"gomaxprocs"`
	Tokens         int     `json:"tokens"`
	TokensPerSec   float64 `json:"tokens_per_sec"`
	ChecksPerToken float64 `json:"solver_checks_per_token"`
	// FastPathRate is the fraction of range-feasibility probes answered with
	// no solver involvement — per-slot interval state or model patching
	// (DESIGN.md §6);
	// SolverProbeRate is the fraction that fell back to a real CheckWith.
	// The remainder hit the epoch-keyed cache (OracleHitRate).
	FastPathRate    float64 `json:"oracle_fastpath_rate"`
	SolverProbeRate float64 `json:"oracle_solver_probe_rate"`
	// OracleHitRate is the fraction of range-feasibility probes served
	// from the engine's epoch-keyed cache without a solver call.
	OracleHitRate float64 `json:"oracle_cache_hit_rate"`
	// WarmStartRate is the fraction of solver Checks that reused the
	// epoch's memoized propagated base store instead of rebuilding it.
	WarmStartRate float64      `json:"solver_warm_start_rate"`
	ByWorkers     []WorkerPerf `json:"by_workers"`
	// Warning flags conditions that make parts of the report meaningless
	// (e.g. a worker sweep with GOMAXPROCS=1).
	Warning string `json:"warning,omitempty"`
}

// RunPerf measures LeJIT decode throughput: one serial pass for the
// per-token counters, then one batched pass per requested worker count
// (nil → {1, 2, Scale.Workers}). Decoded records are identical across
// worker counts by the DecodeBatch determinism contract.
func RunPerf(env *Env, workerCounts []int) (*PerfReport, error) {
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, env.Scale.Workers}
	}
	seen := map[int]bool{}
	counts := workerCounts[:0:0]
	for _, w := range workerCounts {
		if w > 0 && !seen[w] {
			seen[w] = true
			counts = append(counts, w)
		}
	}
	workerCounts = counts
	eng, err := env.EngineFor(env.ImputeRules, core.LeJIT)
	if err != nil {
		return nil, err
	}
	test := env.TestRecordsN(0)
	prompts := make([]rules.Record, len(test))
	for i, rec := range test {
		prompts[i] = CoarseOf(rec)
	}
	rep := &PerfReport{
		Records:    len(prompts),
		Rules:      env.ImputeRules.Len(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	if rep.GoMaxProcs == 1 {
		rep.Warning = fmt.Sprintf("GOMAXPROCS=1 (NumCPU=%d): the worker sweep measures determinism, not parallel speedup", rep.NumCPU)
	}

	// Serial pass: per-token counters and wall time.
	checksBefore := eng.SolverStats().Checks
	warmBefore := eng.SolverStats().WarmStarts
	start := time.Now()
	batch, err := eng.DecodeBatch(prompts, 1, env.Scale.Seed+4000, nil)
	if err != nil {
		return nil, err
	}
	serial := time.Since(start)
	var queries, hits, fast, probes uint64
	for _, b := range batch {
		if b.Err != nil {
			continue
		}
		rep.Tokens += b.Res.Stats.Tokens
		queries += b.Res.Stats.OracleQueries
		hits += b.Res.Stats.OracleHits
		fast += b.Res.Stats.OracleFastPath
		probes += b.Res.Stats.OracleProbes
	}
	checks := eng.SolverStats().Checks - checksBefore
	warms := eng.SolverStats().WarmStarts - warmBefore
	if serial > 0 {
		rep.TokensPerSec = float64(rep.Tokens) / serial.Seconds()
	}
	if rep.Tokens > 0 {
		rep.ChecksPerToken = float64(checks) / float64(rep.Tokens)
	}
	if queries > 0 {
		rep.OracleHitRate = float64(hits) / float64(queries)
		rep.FastPathRate = float64(fast) / float64(queries)
		rep.SolverProbeRate = float64(probes) / float64(queries)
	}
	if checks > 0 {
		rep.WarmStartRate = float64(warms) / float64(checks)
	}

	var base float64
	for _, w := range workerCounts {
		start := time.Now()
		if _, err := eng.DecodeBatch(prompts, w, env.Scale.Seed+4000, nil); err != nil {
			return nil, err
		}
		total := time.Since(start)
		wp := WorkerPerf{Workers: w, TotalMs: float64(total.Microseconds()) / 1000}
		if total > 0 {
			wp.RecordsPerSec = float64(len(prompts)) / total.Seconds()
		}
		if w == 1 || base == 0 {
			base = wp.RecordsPerSec
		}
		if base > 0 {
			wp.Speedup = wp.RecordsPerSec / base
		}
		rep.ByWorkers = append(rep.ByWorkers, wp)
	}
	return rep, nil
}

// WriteJSON writes the report to path, pretty-printed.
func (r *PerfReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// PerfTable renders the report for the text output.
func PerfTable(r *PerfReport) Table {
	t := Table{
		Title:  "Perf: LeJIT decode throughput (imputation, mined rules)",
		Header: []string{"records", "tokens/sec", "checks/token", "fastpath %", "warm-start %"},
	}
	t.Rows = append(t.Rows, []string{
		itoa(r.Records), f1(r.TokensPerSec), f3(r.ChecksPerToken),
		pct(r.FastPathRate), pct(r.WarmStartRate),
	})
	for _, w := range r.ByWorkers {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("workers=%d", w.Workers), f1(w.RecordsPerSec) + " rec/s",
			fmt.Sprintf("%.1fms", w.TotalMs), fmt.Sprintf("%.2fx", w.Speedup), "",
		})
	}
	return t
}
