package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/pack"
	"repro/internal/rules"
	"repro/internal/server"
)

// PackReport is the machine-readable domain-pack benchmark written as
// BENCH_7.json: one lejitd instance serving three packs (telemetry,
// routercfg, fincompliance) under an interleaved mixed workload, with a
// fincompliance rule hot-reload fired between the two halves of the run.
type PackReport struct {
	Requests    int `json:"requests"`
	Concurrency int `json:"concurrency"`
	NumCPU      int `json:"num_cpu"`
	GoMaxProcs  int `json:"gomaxprocs"`
	CacheMB     int `json:"cache_mb"`
	Errors      int `json:"errors"`

	// TelemetryMatchesDirect is the golden check: the telemetry pack served
	// over HTTP must reproduce, bit for bit, the records a directly
	// constructed engine decodes for the same prompts and seeds.
	TelemetryMatchesDirect bool `json:"telemetry_matches_direct"`

	Packs  []PackPhaseStats  `json:"packs"`
	Reload *PackReloadReport `json:"reload"`
}

// PackPhaseStats is one pack's share of the mixed workload.
type PackPhaseStats struct {
	Name          string  `json:"name"`
	Requests      int     `json:"requests"`
	Errors        int     `json:"errors"`
	Violations    int     `json:"violations"` // client-side re-check of every response
	MsPerRecord   float64 `json:"ms_per_record"`
	Tokens        uint64  `json:"tokens"`
	TokensPerSec  float64 `json:"tokens_per_sec"`
	PrefixHits    uint64  `json:"prefix_hits"`
	PrefixMisses  uint64  `json:"prefix_misses"`
	PrefixHitRate float64 `json:"prefix_hit_rate"`
}

// PackReloadReport records the mid-run hot reload: the fincompliance pack's
// CATMAX tightened from 80 to 75 between the two workload halves.
type PackReloadReport struct {
	Pack     string  `json:"pack"`
	OldEpoch string  `json:"old_epoch"`
	NewEpoch string  `json:"new_epoch"`
	ReloadMs float64 `json:"reload_ms"`
	// PostRequests fincompliance responses arrived after the reload;
	// PostViolations of them break the tightened rule set (want 0), and
	// PostOldEpoch of them still carry the pre-reload epoch (want 0 — the
	// reload returns only once the new bundle is swapped in).
	PostRequests   int `json:"post_requests"`
	PostViolations int `json:"post_violations"`
	PostOldEpoch   int `json:"post_old_epoch"`
}

// packBenchRequest is one prepared request of the mixed workload.
type packBenchRequest struct {
	pack string
	body []byte
	// prompt+seed let the telemetry golden check replay the request directly.
	prompt rules.Record
	seed   int64
}

// packBenchResult is one response with everything the report validates.
type packBenchResult struct {
	ok        bool
	latencyMs float64
	rec       rules.Record
	epoch     string
}

// RunPackBench benchmarks multi-pack serving: it registers the three
// built-in packs (telemetry on the environment's trained model, routercfg
// and fincompliance on tiny transformers trained in-process on their example
// corpora), interleaves requests across them, hot-reloads the fincompliance
// rules halfway through, and reports per-pack latency, throughput, prefix
// hit rate, and rule compliance — plus the telemetry-vs-direct golden check.
func RunPackBench(env *Env, cfg ServeBenchConfig) (*PackReport, error) {
	cfg.fill(env.Scale)
	const cacheMB = 64

	reg := pack.NewRegistry(int64(cacheMB) << 20)
	teleEng, err := env.EngineFor(env.ImputeRules, core.LeJIT)
	if err != nil {
		return nil, err
	}
	telePk, err := pack.FromEngine(pack.TelemetryName, teleEng, env.ImputeRules, env.Schema)
	if err != nil {
		return nil, err
	}
	if err := reg.Register(telePk); err != nil {
		return nil, err
	}
	for _, def := range []pack.Definition{pack.RouterCfgDefinition(nil), pack.FinComplianceDefinition(nil)} {
		env.Logf("experiments: pack bench — training %s model (%d examples)", def.Name, len(def.Examples))
		if err := pack.TrainLM(&def, pack.TrainLMConfig{Logf: env.Logf}); err != nil {
			return nil, fmt.Errorf("experiments: pack %s: %w", def.Name, err)
		}
		pk, err := pack.Compile(def)
		if err != nil {
			return nil, fmt.Errorf("experiments: pack %s: %w", def.Name, err)
		}
		if err := reg.Register(pk); err != nil {
			return nil, err
		}
	}

	srv, err := server.New(server.Config{
		Packs: reg, DefaultPack: pack.TelemetryName,
		BatchWindow: cfg.BatchWindow, MaxBatch: cfg.MaxBatch, Workers: cfg.Workers,
		QueueDepth: cfg.Requests + cfg.Concurrency,
		Seed:       env.Scale.Seed,
	})
	if err != nil {
		return nil, err
	}
	base, shutdown, err := listenAndServe(srv)
	if err != nil {
		return nil, err
	}

	reqs, err := buildPackWorkload(env, cfg.Requests)
	if err != nil {
		shutdown()
		return nil, err
	}
	env.Logf("experiments: pack bench — %d requests over %v, %d clients, reload at halfway",
		len(reqs), reg.Names(), cfg.Concurrency)

	finPk, _ := reg.Get(pack.FinComplianceName)
	oldEpoch := finPk.EpochHex()
	tightRules := strings.Replace(pack.FinComplianceRules, "CATMAX = 80", "CATMAX = 75", 1)
	tightSet, err := rules.ParseRuleSet(tightRules, pack.FinComplianceSchema())
	if err != nil {
		shutdown()
		return nil, err
	}

	half := len(reqs) / 2
	wallStart := time.Now()
	resultsA := runPackWorkload(base, reqs[:half], cfg.Concurrency)

	reloadStart := time.Now()
	newEpoch, err := reloadPack(base, pack.FinComplianceName, tightRules)
	reloadMs := float64(time.Since(reloadStart).Microseconds()) / 1000
	if err != nil {
		shutdown()
		return nil, fmt.Errorf("experiments: pack bench reload: %w", err)
	}

	resultsB := runPackWorkload(base, reqs[half:], cfg.Concurrency)
	elapsed := time.Since(wallStart)

	snap := srv.Metrics().Snapshot()
	if err := shutdown(); err != nil {
		return nil, fmt.Errorf("experiments: pack bench server: %w", err)
	}

	results := append(resultsA, resultsB...)
	rep := &PackReport{
		Requests: len(reqs), Concurrency: cfg.Concurrency,
		NumCPU: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0),
		CacheMB: cacheMB,
		Reload: &PackReloadReport{
			Pack: pack.FinComplianceName, OldEpoch: oldEpoch, NewEpoch: newEpoch,
			ReloadMs: reloadMs,
		},
	}

	// Per-pack stats: latency from the client side, tokens and prefix
	// counters from the server's per-pack snapshot over the whole run.
	rulesets := map[string]*rules.RuleSet{
		pack.TelemetryName:     env.ImputeRules,
		pack.RouterCfgName:     mustPackRules(pack.RouterCfgDefinition(nil)),
		pack.FinComplianceName: mustPackRules(pack.FinComplianceDefinition(nil)),
	}
	for _, name := range []string{pack.TelemetryName, pack.RouterCfgName, pack.FinComplianceName} {
		st := PackPhaseStats{Name: name}
		var totalMs float64
		for i, r := range results {
			if reqs[i].pack != name {
				continue
			}
			st.Requests++
			if !r.ok {
				st.Errors++
				continue
			}
			totalMs += r.latencyMs
			if v, err := rulesets[name].Violations(r.rec); err != nil || len(v) > 0 {
				st.Violations++
			}
		}
		if n := st.Requests - st.Errors; n > 0 {
			st.MsPerRecord = totalMs / float64(n)
		}
		if ps, ok := snap.Packs[name]; ok {
			st.Tokens = ps.Tokens
			st.PrefixHits = ps.Prefix.Hits
			st.PrefixMisses = ps.Prefix.Misses
			if lookups := ps.Prefix.Hits + ps.Prefix.Misses; lookups > 0 {
				st.PrefixHitRate = float64(ps.Prefix.Hits) / float64(lookups)
			}
			if elapsed > 0 {
				// Throughput this pack achieved within the shared mixed run —
				// the three packs decode concurrently over the same wall
				// clock, so the rates add up to the server's total.
				st.TokensPerSec = float64(ps.Tokens) / elapsed.Seconds()
			}
		}
		rep.Errors += st.Errors
		rep.Packs = append(rep.Packs, st)
	}

	// Post-reload fincompliance responses must carry the new epoch and obey
	// the tightened rules.
	for i := half; i < len(reqs); i++ {
		if reqs[i].pack != pack.FinComplianceName || !results[i].ok {
			continue
		}
		rep.Reload.PostRequests++
		if results[i].epoch == oldEpoch {
			rep.Reload.PostOldEpoch++
		}
		if v, err := tightSet.Violations(results[i].rec); err != nil || len(v) > 0 {
			rep.Reload.PostViolations++
		}
	}

	rep.TelemetryMatchesDirect, err = telemetryGolden(env, reqs, results)
	if err != nil {
		return nil, err
	}
	return rep, nil
}

func mustPackRules(def pack.Definition) *rules.RuleSet {
	rs, err := rules.ParseRuleSet(def.RuleText, def.Schema)
	if err != nil {
		panic(err)
	}
	return rs
}

// listenAndServe starts srv on an ephemeral port; shutdown stops it and
// returns Serve's error.
func listenAndServe(srv *server.Server) (string, func() error, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return "", nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ctx, l) }()
	return "http://" + l.Addr().String(), func() error {
		cancel()
		return <-serveErr
	}, nil
}

// buildPackWorkload interleaves the three packs round-robin with pinned
// seeds: telemetry prompts cluster over a few coarse records (so the prefix
// cache has something to hit), routercfg and fincompliance prompts come from
// their example corpora.
func buildPackWorkload(env *Env, n int) ([]packBenchRequest, error) {
	test := env.TestRecordsN(0)
	if len(test) == 0 {
		return nil, fmt.Errorf("experiments: no test records for pack bench")
	}
	const clusters = 4
	routerDef := pack.RouterCfgDefinition(nil)
	routerEx := pack.RouterCfgExamples(64, 101)
	finDef := pack.FinComplianceDefinition(nil)
	finEx := pack.FinComplianceExamples(64, 102)

	reqs := make([]packBenchRequest, 0, n)
	for i := 0; i < n; i++ {
		var r packBenchRequest
		r.seed = env.Scale.Seed + 200_000 + int64(i)
		switch i % 3 {
		case 0:
			r.pack = pack.TelemetryName
			r.prompt = CoarseOf(test[i%clusters%len(test)])
		case 1:
			r.pack = pack.RouterCfgName
			r.prompt = routerDef.PromptOf(routerEx[i%len(routerEx)])
		default:
			r.pack = pack.FinComplianceName
			r.prompt = finDef.PromptOf(finEx[i%len(finEx)])
		}
		body, err := json.Marshal(map[string]any{"pack": r.pack, "known": r.prompt, "seed": r.seed})
		if err != nil {
			return nil, err
		}
		r.body = body
		reqs = append(reqs, r)
	}
	return reqs, nil
}

// runPackWorkload fires reqs at base with the given concurrency and returns
// one result per request, index-aligned.
func runPackWorkload(base string, reqs []packBenchRequest, concurrency int) []packBenchResult {
	client := &http.Client{}
	results := make([]packBenchResult, len(reqs))
	var next atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(reqs) {
					return
				}
				t0 := time.Now()
				resp, err := client.Post(base+"/v1/impute", "application/json", bytes.NewReader(reqs[i].body))
				if err != nil {
					continue
				}
				var dr server.DecodeResponse
				decErr := json.NewDecoder(resp.Body).Decode(&dr)
				resp.Body.Close()
				if decErr != nil || resp.StatusCode != http.StatusOK || !dr.Compliant {
					continue
				}
				results[i] = packBenchResult{
					ok: true, latencyMs: float64(time.Since(t0).Microseconds()) / 1000,
					rec: dr.Record, epoch: dr.Epoch,
				}
			}
		}()
	}
	wg.Wait()
	return results
}

// reloadPack posts new rule text to /v1/packs/reload and returns the new
// epoch.
func reloadPack(base, name, ruleText string) (string, error) {
	body, err := json.Marshal(server.ReloadRequest{Pack: name, Rules: ruleText})
	if err != nil {
		return "", err
	}
	resp, err := http.Post(base+"/v1/packs/reload", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var rr server.ReloadResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("reload status %d", resp.StatusCode)
	}
	return rr.Epoch, nil
}

// telemetryGolden replays up to 8 of the workload's telemetry requests on a
// freshly constructed engine (same model, same rules, no server in the loop)
// and demands bit-identical records.
func telemetryGolden(env *Env, reqs []packBenchRequest, results []packBenchResult) (bool, error) {
	eng, err := env.EngineFor(env.ImputeRules, core.LeJIT)
	if err != nil {
		return false, err
	}
	checked := 0
	for i := range reqs {
		if reqs[i].pack != pack.TelemetryName || !results[i].ok {
			continue
		}
		seed := reqs[i].seed
		out, err := eng.DecodeRequests(context.Background(),
			[]core.BatchRequest{{Prompt: reqs[i].prompt, Seed: &seed}}, 1, 0, nil)
		if err != nil {
			return false, err
		}
		if out[0].Err != nil {
			return false, out[0].Err
		}
		if !reflect.DeepEqual(out[0].Res.Rec, results[i].rec) {
			return false, nil
		}
		if checked++; checked >= 8 {
			break
		}
	}
	return checked > 0, nil
}

// WriteJSON writes the report to path, pretty-printed.
func (r *PackReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// PackTable renders the report for the text output.
func PackTable(r *PackReport) Table {
	t := Table{
		Title:  "Packs: mixed-domain serving with a mid-run rule hot-reload",
		Header: []string{"metric", "value"},
	}
	t.Rows = append(t.Rows,
		[]string{"requests", itoa(r.Requests)},
		[]string{"concurrency", itoa(r.Concurrency)},
		[]string{"errors", itoa(r.Errors)},
		[]string{"telemetry == direct", fmt.Sprintf("%v", r.TelemetryMatchesDirect)},
	)
	for _, p := range r.Packs {
		t.Rows = append(t.Rows, []string{
			p.Name,
			fmt.Sprintf("%s ms/rec, %s tok/s, %.0f%% prefix hits, %d violations",
				f1(p.MsPerRecord), f1(p.TokensPerSec), 100*p.PrefixHitRate, p.Violations),
		})
	}
	if rl := r.Reload; rl != nil {
		t.Rows = append(t.Rows,
			[]string{"reload", fmt.Sprintf("%s %s -> %s in %s ms", rl.Pack, rl.OldEpoch[:8], rl.NewEpoch[:8], f1(rl.ReloadMs))},
			[]string{"post-reload", fmt.Sprintf("%d requests, %d violations, %d stale-epoch", rl.PostRequests, rl.PostViolations, rl.PostOldEpoch)},
		)
	}
	return t
}
