package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/rules"
)

// CoresPoint is lock-step decode throughput at one (GOMAXPROCS, batch)
// setting. Every point decodes the same prompts with the same per-record
// seeds, so the records are bit-identical across the whole sweep by the
// kernel-partitioning invariant (DESIGN.md §15) — ParallelMatchesSerial
// asserts exactly that.
type CoresPoint struct {
	GoMaxProcs    int     `json:"gomaxprocs"`
	KernelWorkers int     `json:"kernel_workers"`
	Batch         int     `json:"batch"`
	Tokens        int     `json:"tokens"`
	TotalMs       float64 `json:"total_ms"`
	TokensPerSec  float64 `json:"tokens_per_sec"`
	// SpeedupVs1 compares against the GOMAXPROCS=1 point at the same batch
	// size. It is nil on a single-CPU host: raising GOMAXPROCS there adds
	// scheduling overhead, not parallelism, and a ~1.0 value would read as
	// "sharding doesn't help" when no speedup was measurable (the BENCH_1..7
	// footgun).
	SpeedupVs1 *float64 `json:"speedup_vs_1"`
}

// CoresQuant compares int8-quantized kernels against float32 on the same
// snapped weights (snap mode overwrites every weight with its dequantized
// value, so the two kernels are bit-identical by construction — the
// comparison isolates kernel cost, not rounding).
type CoresQuant struct {
	Mode        string  `json:"mode"`
	RowCoverage float64 `json:"row_coverage"`
	// Weight traffic one lane-token costs with a full batch of 16.
	WeightBytesPerTokenFloat32 float64 `json:"weight_bytes_per_token_float32"`
	WeightBytesPerTokenInt8    float64 `json:"weight_bytes_per_token_int8"`
	TokensPerSecFloat32        float64 `json:"tokens_per_sec_float32"`
	TokensPerSecInt8           float64 `json:"tokens_per_sec_int8"`
}

// CoresReport is the machine-readable multi-core kernel summary written as
// BENCH_8.json. NumCPU comes first deliberately: every number below it is
// meaningless as a scaling claim unless NumCPU > 1.
type CoresReport struct {
	NumCPU         int    `json:"num_cpu"`
	GoMaxProcsHost int    `json:"gomaxprocs_host"`
	Records        int    `json:"records"`
	Rules          int    `json:"rules"`
	Warning        string `json:"warning,omitempty"`
	// ParallelMatchesSerial: every sweep point's records equal the
	// GOMAXPROCS=1, batch=1, serial-kernel baseline's. CI gates on this.
	ParallelMatchesSerial bool `json:"parallel_matches_serial"`
	// QuantizedMatchesFloat32: int8 decode records equal float32 decode
	// records over the same snapped weights. CI gates on this.
	QuantizedMatchesFloat32 bool `json:"quantized_matches_float32"`
	// ParallelKernelOps counts GEMM/attention dispatches that actually took
	// the sharded path during the sweep — nonzero even on a 1-CPU host
	// (block dispatch keys on work size, not CPU count), so a zero means the
	// equivalence check was vacuous.
	ParallelKernelOps uint64       `json:"parallel_kernel_ops"`
	Sweep             []CoresPoint `json:"sweep"`
	Quant             CoresQuant   `json:"quant"`
}

// coresDecode decodes the prompts in lock-step chunks of b on one decode
// worker, with per-record seeds fixed by global index (so chunking does not
// change any record's RNG stream) and the prefix cache off (so every point
// runs its GEMMs cold — cache reuse would make the bit-exactness check
// partially vacuous and the timing unfair to later points).
func coresDecode(eng *core.Engine, prompts []rules.Record, b int, seed int64) ([]rules.Record, int, time.Duration, error) {
	recs := make([]rules.Record, len(prompts))
	toks := 0
	start := time.Now()
	for lo := 0; lo < len(prompts); lo += b {
		hi := min(lo+b, len(prompts))
		reqs := make([]core.BatchRequest, hi-lo)
		for j := lo; j < hi; j++ {
			s := core.MixSeed(seed, j)
			reqs[j-lo].Prompt = prompts[j]
			reqs[j-lo].Seed = &s
			reqs[j-lo].NoPrefixCache = true
		}
		res, err := eng.DecodeRequests(context.Background(), reqs, 1, seed, nil)
		if err != nil {
			return nil, 0, 0, err
		}
		for j, r := range res {
			if r.Err != nil {
				return nil, 0, 0, fmt.Errorf("cores bench: batch=%d record %d: %w", b, lo+j, r.Err)
			}
			recs[lo+j] = r.Res.Rec
			toks += r.Res.Stats.Tokens
		}
	}
	return recs, toks, time.Since(start), nil
}

// RunCoresBench sweeps GOMAXPROCS {1,2,4} × lock-step batch {1,16} over the
// sharded GEMM kernels, then compares int8 against float32 kernels on
// snapped weights. It decodes against a gob clone of the trained model
// (snap-mode quantization rewrites weights in place) and restores the
// process GOMAXPROCS before returning.
func RunCoresBench(env *Env) (*CoresReport, error) {
	var buf bytes.Buffer
	if err := env.Model.Save(&buf); err != nil {
		return nil, fmt.Errorf("cores bench: cloning model: %w", err)
	}
	m, err := nn.Load(&buf)
	if err != nil {
		return nil, fmt.Errorf("cores bench: cloning model: %w", err)
	}
	eng, err := env.EngineForModel(m, env.ImputeRules, core.LeJIT)
	if err != nil {
		return nil, err
	}
	test := env.TestRecordsN(0)
	prompts := make([]rules.Record, len(test))
	for i, rec := range test {
		prompts[i] = CoarseOf(rec)
	}
	rep := &CoresReport{
		NumCPU:                  runtime.NumCPU(),
		GoMaxProcsHost:          runtime.GOMAXPROCS(0),
		Records:                 len(prompts),
		Rules:                   env.ImputeRules.Len(),
		ParallelMatchesSerial:   true,
		QuantizedMatchesFloat32: true,
	}
	if rep.NumCPU == 1 {
		rep.Warning = "NumCPU=1: the sweep verifies determinism and bit-exactness only; wall-clock speedups are not measurable on this host"
	}

	defer runtime.GOMAXPROCS(rep.GoMaxProcsHost)
	defer m.SetKernelWorkers(1) // stop the worker group's goroutines

	seed := env.Scale.Seed + 8000
	var baseline []rules.Record
	base := map[int]float64{} // batch → tokens/sec at GOMAXPROCS=1
	for _, g := range []int{1, 2, 4} {
		runtime.GOMAXPROCS(g)
		m.SetKernelWorkers(g)
		for _, b := range []int{1, 16} {
			recs, toks, total, err := coresDecode(eng, prompts, b, seed)
			if err != nil {
				return nil, err
			}
			pt := CoresPoint{
				GoMaxProcs: g, KernelWorkers: m.KernelWorkers(), Batch: b,
				Tokens: toks, TotalMs: float64(total.Microseconds()) / 1000,
			}
			if total > 0 {
				pt.TokensPerSec = float64(toks) / total.Seconds()
			}
			if g == 1 {
				base[b] = pt.TokensPerSec
			} else if base[b] > 0 && rep.NumCPU > 1 {
				s := pt.TokensPerSec / base[b]
				pt.SpeedupVs1 = &s
			}
			if baseline == nil {
				baseline = recs
			} else if !reflect.DeepEqual(recs, baseline) {
				rep.ParallelMatchesSerial = false
			}
			rep.Sweep = append(rep.Sweep, pt)
		}
	}
	rep.ParallelKernelOps, _ = m.KernelOps()
	if rep.ParallelKernelOps == 0 {
		rep.ParallelMatchesSerial = false // vacuous check — nothing ran sharded
	}

	// Quant phase: snap the weights, then decode at the sweep's widest
	// setting with the int8 store disabled and enabled. Snap rewrites
	// weights, so these records differ from the float sweep's — the
	// equivalence claim is int8-vs-float32 over identical (snapped) weights.
	st, err := m.Quantize(nn.QuantSnap)
	if err != nil {
		return nil, err
	}
	rep.Quant.Mode = st.Mode
	rep.Quant.RowCoverage = st.Coverage
	rep.Quant.WeightBytesPerTokenFloat32 = float64(m.AppendWeightBytes()) / 16
	rep.Quant.WeightBytesPerTokenInt8 = float64(m.AppendWeightBytesInt8()) / 16
	engQ, err := env.EngineForModel(m, env.ImputeRules, core.LeJIT)
	if err != nil {
		return nil, err
	}
	m.EnableQuant(false)
	recsF, toksF, totalF, err := coresDecode(engQ, prompts, 16, seed)
	if err != nil {
		return nil, err
	}
	m.EnableQuant(true)
	recsQ, toksQ, totalQ, err := coresDecode(engQ, prompts, 16, seed)
	if err != nil {
		return nil, err
	}
	if totalF > 0 {
		rep.Quant.TokensPerSecFloat32 = float64(toksF) / totalF.Seconds()
	}
	if totalQ > 0 {
		rep.Quant.TokensPerSecInt8 = float64(toksQ) / totalQ.Seconds()
	}
	if !reflect.DeepEqual(recsQ, recsF) {
		rep.QuantizedMatchesFloat32 = false
	}
	return rep, nil
}

// WriteJSON writes the report to path, pretty-printed.
func (r *CoresReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// CoresTable renders the report for the text output.
func CoresTable(r *CoresReport) Table {
	t := Table{
		Title: fmt.Sprintf("Cores: GOMAXPROCS × batch sweep, sharded GEMM + int8 (NumCPU=%d, %d records)",
			r.NumCPU, r.Records),
		Header: []string{"gomaxprocs", "batch", "tokens/sec", "total ms", "speedup_vs_1"},
	}
	for _, p := range r.Sweep {
		t.Rows = append(t.Rows, []string{
			itoa(p.GoMaxProcs), itoa(p.Batch), f1(p.TokensPerSec),
			fmt.Sprintf("%.1f", p.TotalMs), speedupCell(p.SpeedupVs1),
		})
	}
	t.Rows = append(t.Rows, []string{
		"int8 off", "16", f1(r.Quant.TokensPerSecFloat32),
		fmt.Sprintf("%.0f B/tok", r.Quant.WeightBytesPerTokenFloat32), "",
	})
	t.Rows = append(t.Rows, []string{
		"int8 on", "16", f1(r.Quant.TokensPerSecInt8),
		fmt.Sprintf("%.0f B/tok", r.Quant.WeightBytesPerTokenInt8),
		fmt.Sprintf("coverage %.2f", r.Quant.RowCoverage),
	})
	return t
}
