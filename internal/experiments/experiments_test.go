package experiments

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
)

// prepared caches one tiny environment across the package's tests (training
// even the tiny model is the dominant cost).
var prepared *Env

func tinyEnv(t *testing.T) *Env {
	t.Helper()
	if prepared != nil {
		return prepared
	}
	env, err := Prepare(TinyScale())
	if err != nil {
		t.Fatal(err)
	}
	prepared = env
	return env
}

func TestPrepareTiny(t *testing.T) {
	env := tinyEnv(t)
	if env.Model == nil || env.Model.NumParams() == 0 {
		t.Fatal("no model")
	}
	if env.ImputeRules.Len() == 0 || env.SynthRules.Len() == 0 || env.ManualRules.Len() != 4 {
		t.Fatalf("rule sets: %d/%d/%d", env.ImputeRules.Len(), env.SynthRules.Len(), env.ManualRules.Len())
	}
	if len(env.Train) == 0 || len(env.Test) == 0 {
		t.Fatal("empty splits")
	}
	// Synthesis rules must reference only coarse fields.
	for _, r := range env.SynthRules.Rules {
		if strings.Contains(r.String(), "I[") {
			t.Errorf("synthesis rule touches fine field: %s", r)
		}
	}
}

func TestRunImputationTiny(t *testing.T) {
	env := tinyEnv(t)
	rs, err := RunImputation(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 7 {
		t.Fatalf("got %d methods, want 7", len(rs))
	}
	byName := map[string]ImputeResult{}
	for _, r := range rs {
		byName[r.Method] = r
		if r.Records != env.Scale.TestN {
			t.Errorf("%s: records %d, want %d", r.Method, r.Records, env.Scale.TestN)
		}
	}
	lj, ok := byName["LeJIT"]
	if !ok {
		t.Fatal("LeJIT missing")
	}
	// The headline guarantee: LeJIT never violates (over its successes).
	if lj.Succeeded > 0 && lj.PairViolationRate != 0 {
		t.Errorf("LeJIT violation rate %v, want 0", lj.PairViolationRate)
	}
	// Vanilla must violate more than LeJIT (on a weak tiny model, a lot).
	v := byName["Vanilla GPT-2"]
	if v.Succeeded > 0 && v.PairViolationRate <= lj.PairViolationRate {
		t.Errorf("vanilla %.4f not worse than LeJIT %.4f", v.PairViolationRate, lj.PairViolationRate)
	}
	// All four figure tables must render every method.
	for _, tab := range []Table{Fig3LeftTable(rs), Fig3RightTable(rs), Fig4LeftTable(rs), Fig4RightTable(rs)} {
		out := tab.Render()
		for _, r := range rs {
			if !strings.Contains(out, r.Method) {
				t.Errorf("table %q missing method %s", tab.Title, r.Method)
			}
		}
	}
}

func TestRunSynthesisTiny(t *testing.T) {
	env := tinyEnv(t)
	ss, err := RunSynthesis(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(ss) != 8 {
		t.Fatalf("got %d methods, want 8", len(ss))
	}
	for _, s := range ss {
		if s.Method == "LeJIT" && s.Succeeded > 0 && s.PairViolationRate != 0 {
			t.Errorf("LeJIT synthesis violation rate %v", s.PairViolationRate)
		}
		if s.Succeeded > 0 {
			for _, f := range dataset.CoarseFields() {
				if _, ok := s.JSDPerField[f]; !ok {
					t.Errorf("%s: missing JSD for %s", s.Method, f)
				}
			}
		}
	}
	out := Fig5Table(ss).Render()
	if !strings.Contains(out, "LeJIT") || !strings.Contains(out, "NetShare") {
		t.Errorf("Fig5 table incomplete:\n%s", out)
	}
	_ = Fig5RuntimeTable(ss).Render()
}

func TestRuleSetSizeAblationTiny(t *testing.T) {
	env := tinyEnv(t)
	ab, err := RunRuleSetSizeAblation(env, []float64{0, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(ab) != 2 {
		t.Fatalf("got %d rows", len(ab))
	}
	if ab[1].RuleCount != env.ImputeRules.Len() {
		t.Errorf("full config enforces %d rules, want %d", ab[1].RuleCount, env.ImputeRules.Len())
	}
	// Full enforcement must achieve zero violations; none must do worse
	// than structure-only.
	if ab[1].PairViolationRate != 0 {
		t.Errorf("100%% rules but violation rate %v", ab[1].PairViolationRate)
	}
	if ab[0].PairViolationRate < ab[1].PairViolationRate {
		t.Errorf("0%% rules (%v) beat 100%% (%v)?", ab[0].PairViolationRate, ab[1].PairViolationRate)
	}
	_ = AblationTable("t", ab).Render()
}

// TestLockStepDecodeTiny pins the lock-step/per-record equivalence on the
// real trained tiny model: the same requests decoded through a shared
// BatchSession (workers=1, one group) must byte-match solo decodes.
func TestLockStepDecodeTiny(t *testing.T) {
	env := tinyEnv(t)
	eng, err := env.EngineFor(env.ImputeRules, core.LeJIT)
	if err != nil {
		t.Fatal(err)
	}
	test := env.TestRecordsN(6)
	reqs := make([]core.BatchRequest, len(test))
	for i, rec := range test {
		reqs[i].Prompt = CoarseOf(rec)
	}
	batched, err := eng.DecodeRequests(context.Background(), reqs, 1, 99, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		solo, err := eng.ImputeCtx(context.Background(), reqs[i].Prompt, rand.New(rand.NewSource(core.MixSeed(99, i))))
		if err != nil {
			t.Fatalf("solo %d: %v", i, err)
		}
		if batched[i].Err != nil {
			t.Fatalf("batched %d: %v", i, batched[i].Err)
		}
		got := dataset.Format(batched[i].Res.Rec)
		want := dataset.Format(solo.Rec)
		if got != want {
			t.Errorf("record %d: lock-step %q != solo %q", i, got, want)
		}
	}
}

func TestCorpusRoundTrip(t *testing.T) {
	env := tinyEnv(t)
	seqs, err := Corpus(env.Tok, env.Train[:5])
	if err != nil {
		t.Fatal(err)
	}
	for i, seq := range seqs {
		text := env.Tok.Decode(seq)
		if text != dataset.Format(env.Train[i].Rec) {
			t.Errorf("sequence %d decodes to %q, want %q", i, text, dataset.Format(env.Train[i].Rec))
		}
	}
}

func TestTableRender(t *testing.T) {
	tab := Table{
		Title:  "demo",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"x", "1"}, {"longer-cell", "2"}},
	}
	out := tab.Render()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, divider, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "demo") {
		t.Errorf("title missing")
	}
	// All data lines align to the same width grid.
	if len(lines[2]) < len("longer-cell") {
		t.Errorf("row not padded: %q", lines[2])
	}
}

func TestStructureOnlyFasterThanLeJIT(t *testing.T) {
	env := tinyEnv(t)
	engL, err := env.EngineFor(env.ImputeRules, core.LeJIT)
	if err != nil {
		t.Fatal(err)
	}
	engS, err := env.EngineFor(env.ImputeRules, core.StructureOnly)
	if err != nil {
		t.Fatal(err)
	}
	_ = engL
	_ = engS
	// Construction alone suffices here; timing comparisons live in
	// bench_test.go where they belong.
}

func TestDecodeStrategyAblationTiny(t *testing.T) {
	env := tinyEnv(t)
	ab, err := RunDecodeStrategyAblation(env, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(ab) != 3 {
		t.Fatalf("got %d rows, want 3 (sampling, beam-1, beam-2)", len(ab))
	}
	for _, r := range ab {
		// Every strategy is rule-enforced: zero residual violations over
		// its successes.
		if r.Records-r.Failures > 0 && r.PairViolationRate != 0 {
			t.Errorf("%s: violation rate %v, want 0", r.Config, r.PairViolationRate)
		}
	}
	_ = AblationTable("decode", ab).Render()
}

func TestRunPerfTiny(t *testing.T) {
	env := tinyEnv(t)
	rep, err := RunPerf(env, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != env.Scale.TestN {
		t.Errorf("records %d, want %d", rep.Records, env.Scale.TestN)
	}
	if rep.Tokens == 0 || rep.TokensPerSec <= 0 {
		t.Errorf("no throughput measured: tokens=%d tokens/sec=%v", rep.Tokens, rep.TokensPerSec)
	}
	if rep.ChecksPerToken <= 0 {
		t.Error("checks/token not recorded")
	}
	if rep.FastPathRate <= 0 || rep.FastPathRate > 1 {
		t.Errorf("fast-path rate %v outside (0,1]", rep.FastPathRate)
	}
	if sum := rep.FastPathRate + rep.SolverProbeRate; sum < 0.999 || sum > 1.001 {
		t.Errorf("probe resolution rates sum to %v, want 1", sum)
	}
	if rep.NumCPU <= 0 || rep.GoMaxProcs <= 0 {
		t.Errorf("cpu context not recorded: NumCPU=%d GOMAXPROCS=%d", rep.NumCPU, rep.GoMaxProcs)
	}
	if rep.GoMaxProcs == 1 && rep.Warning == "" {
		t.Error("GOMAXPROCS=1 run must carry a warning in the report")
	}
	if rep.WarmStartRate <= 0 || rep.WarmStartRate > 1 {
		t.Errorf("warm-start rate %v outside (0,1]", rep.WarmStartRate)
	}
	if len(rep.ByWorkers) != 2 || rep.ByWorkers[0].Workers != 1 || rep.ByWorkers[1].Workers != 2 {
		t.Fatalf("worker sweep %+v, want counts {1,2}", rep.ByWorkers)
	}
	for _, w := range rep.ByWorkers {
		if w.RecordsPerSec <= 0 {
			t.Errorf("workers=%d: no throughput", w.Workers)
		}
	}
	if len(rep.ByBatch) != 4 {
		t.Fatalf("batch sweep has %d entries, want 4", len(rep.ByBatch))
	}
	for i, bp := range rep.ByBatch {
		if bp.TokensPerSec <= 0 {
			t.Errorf("batch=%d: no throughput", bp.Batch)
		}
		if bp.WeightBytesPerToken <= 0 {
			t.Errorf("batch=%d: weight traffic not recorded", bp.Batch)
		}
		if i > 0 && bp.WeightBytesPerToken >= rep.ByBatch[i-1].WeightBytesPerToken {
			t.Errorf("batch=%d streams %v B/token, not below batch=%d's %v",
				bp.Batch, bp.WeightBytesPerToken, rep.ByBatch[i-1].Batch, rep.ByBatch[i-1].WeightBytesPerToken)
		}
	}
	_ = PerfTable(rep).Render()
}
