package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/rules"
)

// AblationResult measures one engine configuration on the imputation task
// (the design-choice ablations listed in DESIGN.md §3).
type AblationResult struct {
	Config            string
	RuleCount         int
	Records           int
	Failures          int
	PairViolationRate float64 // vs the FULL mined set, regardless of the subset enforced
	MAE               float64
	SolverChecks      uint64
	Total             time.Duration
}

// RunRuleSetSizeAblation enforces growing fractions of the mined rule set
// and measures residual violations against the full set — the paper's
// observation that "performance improves as rule quality increases" (§4.1).
func RunRuleSetSizeAblation(env *Env, fractions []float64) ([]AblationResult, error) {
	if len(fractions) == 0 {
		fractions = []float64{0, 0.25, 0.5, 1.0}
	}
	test := env.TestRecordsN(0)
	var out []AblationResult
	for _, frac := range fractions {
		n := int(frac * float64(env.ImputeRules.Len()))
		idx := 0
		sub := env.ImputeRules.Filter(func(rules.Rule) bool {
			idx++
			return idx <= n
		})
		var eng *core.Engine
		var err error
		name := fmt.Sprintf("%.0f%% of rules", frac*100)
		if n == 0 {
			eng, err = env.EngineFor(env.ImputeRules, core.StructureOnly)
			name = "0% (structure only)"
		} else {
			eng, err = env.EngineFor(sub, core.LeJIT)
		}
		if err != nil {
			return nil, err
		}
		res, err := runAblation(env, name, n, eng, test)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// RunDecodeStrategyAblation compares sampling (at the configured
// temperature) against greedy and beam-search decoding — all rule-enforced,
// differing only in how the model's preferences are consumed.
func RunDecodeStrategyAblation(env *Env, widths []int) ([]AblationResult, error) {
	if len(widths) == 0 {
		widths = []int{1, 4}
	}
	test := env.TestRecordsN(0)
	eng, err := env.EngineFor(env.ImputeRules, core.LeJIT)
	if err != nil {
		return nil, err
	}
	out := make([]AblationResult, 0, 1+len(widths))
	res, err := runAblation(env, "sampling", env.ImputeRules.Len(), eng, test)
	if err != nil {
		return nil, err
	}
	out = append(out, res)

	for _, w := range widths {
		name := fmt.Sprintf("beam-%d", w)
		if w == 1 {
			name = "greedy (beam-1)"
		}
		res := AblationResult{Config: name, RuleCount: env.ImputeRules.Len(), Records: len(test)}
		checksBefore := eng.SolverStats().Checks
		var preds, truths [][]int64
		var outRecs []rules.Record
		start := time.Now()
		for _, rec := range test {
			got, err := eng.BeamImpute(CoarseOf(rec), w)
			if err != nil {
				res.Failures++
				continue
			}
			outRecs = append(outRecs, got.Rec)
			preds = append(preds, got.Rec[dataset.FineField])
			truths = append(truths, rec[dataset.FineField])
		}
		res.Total = time.Since(start)
		res.SolverChecks = eng.SolverStats().Checks - checksBefore
		if len(outRecs) > 0 {
			res.PairViolationRate, _, err = env.ImputeRules.ViolationRate(outRecs)
			if err != nil {
				return nil, err
			}
			res.MAE, err = metrics.MAE(preds, truths)
			if err != nil {
				return nil, err
			}
		}
		out = append(out, res)
	}
	return out, nil
}

func runAblation(env *Env, name string, ruleCount int, eng *core.Engine, test []rules.Record) (AblationResult, error) {
	rng := rand.New(rand.NewSource(env.Scale.Seed + 3000))
	res := AblationResult{Config: name, RuleCount: ruleCount, Records: len(test)}
	checksBefore := eng.SolverStats().Checks

	var preds, truths [][]int64
	var outRecs []rules.Record
	start := time.Now()
	for _, rec := range test {
		got, err := eng.Impute(CoarseOf(rec), rng)
		if err != nil {
			res.Failures++
			continue
		}
		outRecs = append(outRecs, got.Rec)
		preds = append(preds, got.Rec[dataset.FineField])
		truths = append(truths, rec[dataset.FineField])
	}
	res.Total = time.Since(start)
	res.SolverChecks = eng.SolverStats().Checks - checksBefore
	if len(outRecs) == 0 {
		return res, nil
	}
	var err error
	res.PairViolationRate, _, err = env.ImputeRules.ViolationRate(outRecs)
	if err != nil {
		return res, err
	}
	res.MAE, err = metrics.MAE(preds, truths)
	return res, err
}

// AblationTable renders ablation results.
func AblationTable(title string, rs []AblationResult) Table {
	t := Table{
		Title:  title,
		Header: []string{"config", "rules", "failures", "pair-violation %", "MAE", "solver checks", "total"},
	}
	for _, r := range rs {
		t.Rows = append(t.Rows, []string{
			r.Config, itoa(r.RuleCount), itoa(r.Failures),
			pct(r.PairViolationRate), f3(r.MAE), itoa64(r.SolverChecks),
			r.Total.Round(time.Millisecond).String(),
		})
	}
	return t
}
