package experiments

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/server"
)

// LoadBenchConfig parameterizes the open-loop serving sweep (BENCH_9): a
// Poisson arrival process drives lejitd fleets of 1, 2, and 4 engine shards
// across a rate sweep, mixing streamed (SSE) and unary clients.
type LoadBenchConfig struct {
	Conns       int           // in-flight connection cap (default 10000)
	Replicas    []int         // fleet sizes swept (default {1, 2, 4})
	RateFactors []float64     // multipliers on the calibrated base rate (default {0.5, 1.0, 1.5, 2.0})
	Duration    time.Duration // target arrival span per rate point (default 1s)
	BatchWindow time.Duration // micro-batch window (default 2ms)
	MaxBatch    int           // records per batch cap (default 32)
	Workers     int           // decode pool size per shard (default Scale.Workers)
	QueueDepth  int           // fleet-wide admission cap (default 256, split across shards)
	Combos      int           // distinct (prompt, seed) pairs cycled (default 8)
}

func (c *LoadBenchConfig) fill(sc ScaleConfig) {
	if c.Conns <= 0 {
		c.Conns = 10000
	}
	if len(c.Replicas) == 0 {
		c.Replicas = []int{1, 2, 4}
	}
	if len(c.RateFactors) == 0 {
		c.RateFactors = []float64{0.5, 1.0, 1.5, 2.0}
	}
	if c.Duration <= 0 {
		c.Duration = time.Second
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.Workers <= 0 {
		c.Workers = sc.Workers
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.Combos <= 0 {
		c.Combos = 8
	}
}

// maxPointRequests bounds one rate point's arrival count so a fast machine's
// calibrated base rate cannot blow the sweep up into minutes.
const maxPointRequests = 4096

// LoadReport is the machine-readable open-loop sweep written as BENCH_9.json.
// Latency percentiles are over successful requests only and are measured from
// each request's scheduled Poisson arrival time, so queueing delay the server
// induces under overload is charged to the server, never hidden by a slow
// client loop (no coordinated omission).
type LoadReport struct {
	Conns      int `json:"conns"`
	NumCPU     int `json:"num_cpu"`
	GoMaxProcs int `json:"gomaxprocs"`

	BatchWindowMs   float64 `json:"batch_window_ms"`
	MaxBatch        int     `json:"max_batch"`
	Workers         int     `json:"workers"`
	QueueDepth      int     `json:"queue_depth"`
	PointDurationMs float64 `json:"point_duration_ms"`
	BaseRatePerSec  float64 `json:"base_rate_per_sec"` // calibrated on the 1-shard fleet

	Curves []LoadCurve `json:"curves"`

	// StreamedMatchesUnary is the bit-identity gate: per fleet, every
	// verification pair (sequential, concurrent wave, lookahead-8) and every
	// in-sweep streamed response concatenated to exactly the unary line.
	StreamedMatchesUnary bool `json:"streamed_matches_unary"`
	// StaleEpochs counts 200s whose epoch differed from the fleet's pack
	// epoch; MisSeeded counts 200s whose line differed from the recorded
	// line for the same (prompt, seed). Both must be zero.
	StaleEpochs int `json:"stale_epochs"`
	MisSeeded   int `json:"mis_seeded"`
	// Errors counts transport failures and unexpected status codes.
	// Backpressure answers (429/503/504) are tallied per point, not here.
	Errors int `json:"errors"`

	Warning string `json:"warning,omitempty"`
}

// LoadCurve is one fleet size's rate sweep.
type LoadCurve struct {
	Replicas int         `json:"replicas"`
	Points   []LoadPoint `json:"points"`
}

// LoadPoint is one offered rate against one fleet.
type LoadPoint struct {
	OfferedPerSec  float64 `json:"offered_per_sec"`
	AchievedPerSec float64 `json:"achieved_per_sec"` // successful requests over the point's wall-clock
	Requests       int     `json:"requests"`
	OK             int     `json:"ok"`
	Streamed       int     `json:"streamed"` // successful SSE requests (half the mix)
	Rejected429    int     `json:"rejected_429"`
	Unavailable503 int     `json:"unavailable_503"`
	Timeout504     int     `json:"timeout_504"`
	Errors         int     `json:"errors"`

	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	// TTFT is scheduled-arrival to first SSE slot event, streamed 200s only.
	TTFTP50Ms float64 `json:"ttft_p50_ms"`
	TTFTP95Ms float64 `json:"ttft_p95_ms"`
}

// loadCombo is one (prompt, seed) pair in its four request encodings. The
// seed is pinned so every decode of the combo must reproduce the same line —
// that determinism is what makes mis-seeding observable from the outside.
type loadCombo struct {
	unary      []byte
	streamed   []byte
	unaryLA    []byte // lookahead 8: exercises the speculative window
	streamedLA []byte
}

func buildLoadCombo(known any, seed int64) (loadCombo, error) {
	mk := func(extra map[string]any) ([]byte, error) {
		req := map[string]any{"known": known, "seed": seed}
		for k, v := range extra {
			req[k] = v
		}
		return json.Marshal(req)
	}
	var c loadCombo
	var err error
	if c.unary, err = mk(nil); err != nil {
		return c, err
	}
	if c.streamed, err = mk(map[string]any{"stream": true}); err != nil {
		return c, err
	}
	if c.unaryLA, err = mk(map[string]any{"lookahead": 8}); err != nil {
		return c, err
	}
	c.streamedLA, err = mk(map[string]any{"stream": true, "lookahead": 8})
	return c, err
}

// RunLoadBench sweeps offered load against lejitd fleets of increasing shard
// count. Arrivals are open-loop Poisson: each request fires at its scheduled
// time whether or not earlier ones have completed, up to cfg.Conns in flight.
// Before any load is offered, each fleet must prove the streamed path
// bit-identical to unary; during the sweep every 200 is checked against the
// recorded line and epoch for its (prompt, seed).
func RunLoadBench(env *Env, cfg LoadBenchConfig) (*LoadReport, error) {
	cfg.fill(env.Scale)
	test := env.TestRecordsN(0)
	if len(test) == 0 {
		return nil, fmt.Errorf("experiments: no test records for load bench")
	}
	combos := make([]loadCombo, cfg.Combos)
	for i := range combos {
		known := CoarseOf(test[i%len(test)])
		c, err := buildLoadCombo(known, env.Scale.Seed+50_000+int64(i))
		if err != nil {
			return nil, err
		}
		combos[i] = c
	}

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.Conns,
		MaxIdleConnsPerHost: cfg.Conns,
	}}

	rep := &LoadReport{
		Conns: cfg.Conns, NumCPU: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0),
		BatchWindowMs: float64(cfg.BatchWindow.Microseconds()) / 1000,
		MaxBatch:      cfg.MaxBatch, Workers: cfg.Workers, QueueDepth: cfg.QueueDepth,
		PointDurationMs: float64(cfg.Duration.Microseconds()) / 1000,

		StreamedMatchesUnary: true,
	}
	if rep.GoMaxProcs == 1 {
		rep.Warning = fmt.Sprintf("GOMAXPROCS=1 (NumCPU=%d): shards, HTTP clients, and the arrival scheduler share one CPU; the replica comparison reflects serialization", rep.NumCPU)
	}

	var expected []string // line per combo, recorded on the first fleet
	var baseRate float64
	for fi, n := range cfg.Replicas {
		srv, base, shutdown, err := loadServer(env, cfg, n)
		if err != nil {
			return nil, err
		}
		env.Logf("experiments: load bench — fleet of %d shard(s), window %v, queue %d",
			n, cfg.BatchWindow, cfg.QueueDepth)

		lines, epoch, verErrs, match := verifyStreamed(client, base, combos)
		rep.Errors += verErrs
		if !match {
			rep.StreamedMatchesUnary = false
		}
		if expected == nil {
			expected = lines
		} else {
			// Fleet size must not change output: same (prompt, seed), same line.
			for i := range lines {
				if lines[i] != expected[i] {
					rep.MisSeeded++
				}
			}
		}

		if fi == 0 {
			baseRate = calibrateRate(client, base, combos)
			rep.BaseRatePerSec = baseRate
			env.Logf("experiments: load bench — calibrated base rate %.0f req/s", baseRate)
		}

		curve := LoadCurve{Replicas: n}
		for pi, f := range cfg.RateFactors {
			pt, integ := runLoadPoint(client, base, combos, expected, epoch, baseRate*f, cfg,
				env.Scale.Seed+int64(1000*fi+pi))
			rep.MisSeeded += integ.misSeeded
			rep.StaleEpochs += integ.staleEpochs
			if integ.streamMismatches > 0 {
				rep.StreamedMatchesUnary = false
			}
			rep.Errors += pt.Errors
			env.Logf("experiments: load bench — %d shard(s) @ %.0f req/s: %d ok, %d/429, %d/503, p99 %.1f ms",
				n, pt.OfferedPerSec, pt.OK, pt.Rejected429, pt.Unavailable503, pt.P99Ms)
			curve.Points = append(curve.Points, pt)
		}
		rep.Curves = append(rep.Curves, curve)

		_ = srv
		if err := shutdown(); err != nil {
			return nil, fmt.Errorf("experiments: load bench server (%d shards): %w", n, err)
		}
	}
	return rep, nil
}

// loadServer stands up one lejitd fleet for the sweep. The admission cap is
// deliberately small (cfg.QueueDepth) so overload points actually shed.
func loadServer(env *Env, cfg LoadBenchConfig, replicas int) (*server.Server, string, func() error, error) {
	eng, err := env.EngineFor(env.ImputeRules, core.LeJIT)
	if err != nil {
		return nil, "", nil, err
	}
	srv, err := server.New(server.Config{
		Engine: eng, Rules: env.ImputeRules, Schema: env.Schema,
		BatchWindow: cfg.BatchWindow, MaxBatch: cfg.MaxBatch, Workers: cfg.Workers,
		QueueDepth: cfg.QueueDepth, Replicas: replicas,
		Seed: env.Scale.Seed,
	})
	if err != nil {
		return nil, "", nil, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return nil, "", nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ctx, l) }()
	shutdown := func() error {
		cancel()
		return <-serveErr
	}
	return srv, "http://" + l.Addr().String(), shutdown, nil
}

// verifyStreamed proves streamed == unary on one fleet before load: per combo
// sequentially (solo decode path), as one concurrent wave per mode (lock-step
// path, nn-backed lanes coalesce), and once with an 8-token speculative
// window. Returns the expected line per combo and the pack epoch served.
func verifyStreamed(client *http.Client, base string, combos []loadCombo) (lines []string, epoch string, errs int, match bool) {
	match = true
	lines = make([]string, len(combos))
	for i, c := range combos {
		u := doUnary(client, base, c.unary)
		if u.err != nil || u.code != http.StatusOK {
			errs++
			match = false
			continue
		}
		lines[i] = u.line
		if epoch == "" {
			epoch = u.epoch
		}
		s := doStream(client, base, c.streamed, nil)
		if s.err != nil || s.code != http.StatusOK {
			errs++
			match = false
			continue
		}
		if s.line != u.line || s.concat != u.line {
			match = false
		}
	}

	// Concurrent waves: unary then streamed, each coalescing into lock-step
	// batches; every response must still match the sequentially recorded line.
	uOuts := make([]unaryResult, len(combos))
	sOuts := make([]streamResult, len(combos))
	var wg sync.WaitGroup
	for i, c := range combos {
		wg.Add(1)
		go func(i int, body []byte) {
			defer wg.Done()
			uOuts[i] = doUnary(client, base, body)
		}(i, c.unary)
	}
	wg.Wait()
	for i, c := range combos {
		wg.Add(1)
		go func(i int, body []byte) {
			defer wg.Done()
			sOuts[i] = doStream(client, base, body, nil)
		}(i, c.streamed)
	}
	wg.Wait()
	for i := range combos {
		u, s := uOuts[i], sOuts[i]
		if u.err != nil || u.code != http.StatusOK || s.err != nil || s.code != http.StatusOK {
			errs++
			match = false
			continue
		}
		if u.line != lines[i] || s.line != lines[i] || s.concat != lines[i] {
			match = false
		}
	}

	// Speculative window: lookahead-8 is exact, so both modes must reproduce
	// the lookahead-0 line bit for bit.
	u := doUnary(client, base, combos[0].unaryLA)
	s := doStream(client, base, combos[0].streamedLA, nil)
	switch {
	case u.err != nil || u.code != http.StatusOK || s.err != nil || s.code != http.StatusOK:
		errs++
		match = false
	case u.line != lines[0] || s.line != lines[0] || s.concat != lines[0]:
		match = false
	}
	return lines, epoch, errs, match
}

// calibrateRate measures the 1-shard fleet's closed-loop throughput; the rate
// sweep offers multiples of it so the same absolute rates hit every fleet.
func calibrateRate(client *http.Client, base string, combos []loadCombo) float64 {
	const n, concurrency = 48, 16
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				doUnary(client, base, combos[i%len(combos)].unary)
			}
		}()
	}
	wg.Wait()
	rate := float64(n) / time.Since(start).Seconds()
	if rate < 8 {
		rate = 8
	}
	return rate
}

// loadIntegrity carries one point's correctness violations (kept out of
// LoadPoint so the JSON stays a pure performance record).
type loadIntegrity struct {
	misSeeded        int
	staleEpochs      int
	streamMismatches int
}

// loadOutcome is one request's result during a rate point.
type loadOutcome struct {
	code           int // logical status (SSE terminal errors unwrap to theirs)
	latencyMs      float64
	ttftMs         float64
	streamed       bool
	transportErr   bool
	misSeeded      bool
	staleEpoch     bool
	streamMismatch bool
}

// runLoadPoint offers `rate` req/s of Poisson arrivals for cfg.Duration,
// alternating unary and streamed requests over the combo pool. Latency is
// measured from each request's scheduled arrival: if the connection cap or
// the server queue delays it, that delay is part of the number.
func runLoadPoint(client *http.Client, base string, combos []loadCombo, expected []string, epoch string, rate float64, cfg LoadBenchConfig, seed int64) (LoadPoint, loadIntegrity) {
	n := int(rate * cfg.Duration.Seconds())
	if n < 8 {
		n = 8
	}
	if n > maxPointRequests {
		n = maxPointRequests
	}
	rng := rand.New(rand.NewSource(seed))
	offsets := make([]time.Duration, n)
	acc := 0.0
	for i := range offsets {
		acc += rng.ExpFloat64() / rate
		offsets[i] = time.Duration(acc * float64(time.Second))
	}

	outs := make([]loadOutcome, n)
	sem := make(chan struct{}, cfg.Conns)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			combo := combos[i%len(combos)]
			want := expected[i%len(combos)]
			sched := start.Add(offsets[i])
			time.Sleep(time.Until(sched))
			sem <- struct{}{}
			defer func() { <-sem }()
			if i%2 == 1 {
				outs[i] = fireStream(client, base, combo.streamed, want, epoch, sched)
			} else {
				outs[i] = fireUnary(client, base, combo.unary, want, epoch, sched)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	pt := LoadPoint{OfferedPerSec: rate, Requests: n}
	var integ loadIntegrity
	var lat, ttft []float64
	for _, o := range outs {
		switch {
		case o.transportErr:
			pt.Errors++
		case o.code == http.StatusOK:
			pt.OK++
			lat = append(lat, o.latencyMs)
			if o.streamed {
				pt.Streamed++
				if o.ttftMs > 0 {
					ttft = append(ttft, o.ttftMs)
				}
			}
			if o.misSeeded {
				integ.misSeeded++
			}
			if o.staleEpoch {
				integ.staleEpochs++
			}
			if o.streamMismatch {
				integ.streamMismatches++
			}
		case o.code == http.StatusTooManyRequests:
			pt.Rejected429++
		case o.code == http.StatusServiceUnavailable:
			pt.Unavailable503++
		case o.code == http.StatusGatewayTimeout:
			pt.Timeout504++
		default:
			pt.Errors++
		}
	}
	sort.Float64s(lat)
	sort.Float64s(ttft)
	pt.P50Ms = percentile(lat, 0.50)
	pt.P95Ms = percentile(lat, 0.95)
	pt.P99Ms = percentile(lat, 0.99)
	pt.TTFTP50Ms = percentile(ttft, 0.50)
	pt.TTFTP95Ms = percentile(ttft, 0.95)
	if elapsed > 0 {
		pt.AchievedPerSec = float64(pt.OK) / elapsed.Seconds()
	}
	return pt, integ
}

func msSince(t time.Time) float64 {
	return float64(time.Since(t).Microseconds()) / 1000
}

func fireUnary(client *http.Client, base string, body []byte, want, epoch string, sched time.Time) loadOutcome {
	res := doUnary(client, base, body)
	o := loadOutcome{code: res.code, latencyMs: msSince(sched), transportErr: res.err != nil}
	if res.code == http.StatusOK {
		o.misSeeded = res.line != want
		o.staleEpoch = res.epoch != epoch
	}
	return o
}

func fireStream(client *http.Client, base string, body []byte, want, epoch string, sched time.Time) loadOutcome {
	o := loadOutcome{streamed: true}
	res := doStream(client, base, body, func() { o.ttftMs = msSince(sched) })
	o.code, o.latencyMs, o.transportErr = res.code, msSince(sched), res.err != nil
	if res.code == http.StatusOK {
		o.misSeeded = res.line != want
		o.staleEpoch = res.epoch != epoch
		o.streamMismatch = res.concat != res.line
	}
	return o
}

// unaryResult is one plain JSON decode response, reduced to what the bench
// checks.
type unaryResult struct {
	code  int
	line  string
	epoch string
	err   error
}

func doUnary(client *http.Client, base string, body []byte) unaryResult {
	resp, err := client.Post(base+"/v1/impute", "application/json", bytes.NewReader(body))
	if err != nil {
		return unaryResult{err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return unaryResult{code: resp.StatusCode}
	}
	var dr server.DecodeResponse
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		return unaryResult{code: resp.StatusCode, err: err}
	}
	return unaryResult{code: resp.StatusCode, line: dr.Line, epoch: dr.Epoch}
}

// streamResult is one parsed SSE response. code carries the logical status:
// the terminal error event's code when the stream ends in one, the transport
// status when admission rejected the request before streaming began.
type streamResult struct {
	code   int
	line   string // from the done event
	concat string // slot chunks concatenated in arrival order
	epoch  string
	err    error
}

// doStream POSTs one streaming request and parses the event stream
// incrementally; onFirstChunk fires when the first slot event's header line
// arrives (the TTFT instant).
func doStream(client *http.Client, base string, body []byte, onFirstChunk func()) streamResult {
	resp, err := client.Post(base+"/v1/impute", "application/json", bytes.NewReader(body))
	if err != nil {
		return streamResult{err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return streamResult{code: resp.StatusCode}
	}
	res := streamResult{code: http.StatusOK}
	var concat strings.Builder
	var name, data string
	first := true
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 16<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
			if name == "slot" && first {
				first = false
				if onFirstChunk != nil {
					onFirstChunk()
				}
			}
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "":
			switch name {
			case "slot":
				var c server.StreamChunk
				if err := json.Unmarshal([]byte(data), &c); err != nil {
					res.err = err
					return res
				}
				concat.WriteString(c.Text)
			case "done":
				var dr server.DecodeResponse
				if err := json.Unmarshal([]byte(data), &dr); err != nil {
					res.err = err
					return res
				}
				res.line, res.epoch = dr.Line, dr.Epoch
			case "error":
				var se server.StreamError
				if err := json.Unmarshal([]byte(data), &se); err != nil {
					res.err = err
					return res
				}
				res.code = se.Code
			}
			name, data = "", ""
		}
	}
	if err := sc.Err(); err != nil {
		res.err = err
	}
	res.concat = concat.String()
	return res
}

// WriteJSON writes the report to path, pretty-printed.
func (r *LoadReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadTable renders the sweep for the text output, one row per rate point.
func LoadTable(r *LoadReport) Table {
	t := Table{
		Title: fmt.Sprintf("Load: open-loop Poisson sweep vs replica count (conns<=%d, streamed==unary: %v, mis-seeded: %d, stale epochs: %d)",
			r.Conns, r.StreamedMatchesUnary, r.MisSeeded, r.StaleEpochs),
		Header: []string{"replicas", "offered/s", "achieved/s", "ok", "429", "503", "504", "err", "p50 ms", "p95 ms", "p99 ms", "ttft p50 ms"},
	}
	for _, c := range r.Curves {
		for _, p := range c.Points {
			t.Rows = append(t.Rows, []string{
				itoa(c.Replicas),
				f1(p.OfferedPerSec), f1(p.AchievedPerSec),
				itoa(p.OK), itoa(p.Rejected429), itoa(p.Unavailable503), itoa(p.Timeout504), itoa(p.Errors),
				f1(p.P50Ms), f1(p.P95Ms), f1(p.P99Ms), f1(p.TTFTP50Ms),
			})
		}
	}
	return t
}
