package experiments

import (
	"fmt"
	"strconv"
	"strings"
)

// Table is a minimal aligned-text table for experiment reports.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Render produces the aligned text form.
func (t Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteString("\n")
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		b.WriteString("\n")
	}
	line(t.Header)
	total := -2
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func pct(v float64) string   { return fmt.Sprintf("%.2f%%", v*100) }
func f1(v float64) string    { return strconv.FormatFloat(v, 'f', 1, 64) }
func f3(v float64) string    { return strconv.FormatFloat(v, 'f', 3, 64) }
func itoa(v int) string      { return strconv.Itoa(v) }
func itoa64(v uint64) string { return strconv.FormatUint(v, 10) }
