package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/rules"
)

// SpecPoint is one lookahead setting of the speculative-decoding sweep.
// Lookahead 0 is the exact per-token path and anchors the comparison: every
// other row must reproduce its records bit for bit (DESIGN.md §13).
type SpecPoint struct {
	Lookahead      int     `json:"lookahead"`
	MsPerRecord    float64 `json:"ms_per_record"`
	ChecksPerToken float64 `json:"solver_checks_per_token"`
	AcceptedTokens int     `json:"accepted_tokens"`
	Rollbacks      int     `json:"rollbacks"`
	Tokens         int     `json:"tokens"`
	// AcceptRate is accepted speculative tokens over all decoded tokens: the
	// fraction of the stream that was committed through a validated window
	// instead of a per-token oracle round.
	AcceptRate float64 `json:"accept_rate"`
	// MatchesExact reports whether this row's decoded records equal the k=0
	// baseline's, record for record.
	MatchesExact bool `json:"matches_exact"`
}

// SpecReport is the speculative-decoding benchmark written as BENCH_N.json:
// the same imputation workload decoded at each lookahead window, with the
// k=0 exact path first as the bit-exactness baseline.
type SpecReport struct {
	Records int `json:"records"`
	Rules   int `json:"rules"`
	// NumCPU and GoMaxProcs contextualize the timings; the sweep itself is
	// serial (one worker), so they matter for reproducing ms/record, not
	// for scaling.
	NumCPU     int `json:"num_cpu"`
	GoMaxProcs int `json:"gomaxprocs"`
	// Passes is how many times each lookahead's decode ran; ms_per_record
	// is the fastest pass (decoding is deterministic, so repetition only
	// removes scheduler noise from the timing).
	Passes int         `json:"passes"`
	Points []SpecPoint `json:"points"`
	// MatchesExact is the conjunction over all points — the CI gate.
	MatchesExact bool `json:"speculation_matches_exact"`
}

// RunSpecBench decodes the imputation test set once per lookahead setting
// (nil → {0, 2, 4, 8, 16}) on a single worker and reports per-setting cost
// and acceptance. The k=0 row always runs, and runs first: it is both the
// checks/token baseline the sweep is judged against and the record-level
// oracle for MatchesExact.
func RunSpecBench(env *Env, ks []int) (*SpecReport, error) {
	if len(ks) == 0 {
		ks = []int{0, 2, 4, 8, 16}
	}
	seen := map[int]bool{}
	sweep := []int{0} // exact baseline first, exactly once
	seen[0] = true
	for _, k := range ks {
		if k >= 0 && !seen[k] {
			seen[k] = true
			sweep = append(sweep, k)
		}
	}
	eng, err := env.EngineFor(env.ImputeRules, core.LeJIT)
	if err != nil {
		return nil, err
	}
	defer eng.SetLookahead(0)
	test := env.TestRecordsN(0)
	prompts := make([]rules.Record, len(test))
	for i, rec := range test {
		prompts[i] = CoarseOf(rec)
	}
	const passes = 5
	rep := &SpecReport{
		Records:      len(prompts),
		Rules:        env.ImputeRules.Len(),
		NumCPU:       runtime.NumCPU(),
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		Passes:       passes,
		MatchesExact: true,
	}
	var baseline []rules.Record
	for _, k := range sweep {
		eng.SetLookahead(k)
		var best time.Duration
		var batch []core.BatchResult
		for pass := 0; pass < passes; pass++ {
			start := time.Now()
			b, err := eng.DecodeBatch(prompts, 1, env.Scale.Seed+6000, nil)
			if err != nil {
				return nil, err
			}
			if d := time.Since(start); pass == 0 || d < best {
				best = d
			}
			if pass == 0 {
				batch = b
			}
		}
		pt := SpecPoint{Lookahead: k, MatchesExact: true}
		recs := make([]rules.Record, len(batch))
		var checks uint64
		for i, b := range batch {
			if b.Err != nil {
				return nil, fmt.Errorf("spec bench: lookahead=%d record %d: %w", k, i, b.Err)
			}
			recs[i] = b.Res.Rec
			pt.Tokens += b.Res.Stats.Tokens
			checks += b.Res.Stats.SolverChecks
			pt.AcceptedTokens += b.Res.Stats.SpecAcceptedTokens
			pt.Rollbacks += b.Res.Stats.SpecRollbacks
		}
		if len(prompts) > 0 {
			pt.MsPerRecord = float64(best.Microseconds()) / 1000 / float64(len(prompts))
		}
		if pt.Tokens > 0 {
			pt.ChecksPerToken = float64(checks) / float64(pt.Tokens)
			pt.AcceptRate = float64(pt.AcceptedTokens) / float64(pt.Tokens)
		}
		if k == 0 {
			baseline = recs
		} else {
			pt.MatchesExact = reflect.DeepEqual(recs, baseline)
			if !pt.MatchesExact {
				rep.MatchesExact = false
			}
		}
		rep.Points = append(rep.Points, pt)
	}
	return rep, nil
}

// WriteJSON writes the report to path, pretty-printed.
func (r *SpecReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// SpecTable renders the report for the text output.
func SpecTable(r *SpecReport) Table {
	t := Table{
		Title: fmt.Sprintf("Speculative decoding: lookahead sweep (%d records, NumCPU=%d GOMAXPROCS=%d)",
			r.Records, r.NumCPU, r.GoMaxProcs),
		Header: []string{"lookahead", "ms/record", "checks/token", "accept %", "rollbacks", "exact"},
	}
	for _, p := range r.Points {
		match := "yes"
		if !p.MatchesExact {
			match = "NO"
		}
		t.Rows = append(t.Rows, []string{
			itoa(p.Lookahead), f3(p.MsPerRecord), f3(p.ChecksPerToken),
			pct(p.AcceptRate), itoa(p.Rollbacks), match,
		})
	}
	return t
}
