package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/server"
)

// ServeBenchConfig parameterizes the serving load test.
type ServeBenchConfig struct {
	Requests    int           // total requests (default 128)
	Concurrency int           // concurrent clients (default 16)
	BatchWindow time.Duration // micro-batch window (default 2ms)
	MaxBatch    int           // records per batch cap (default 32)
	Workers     int           // decode pool size (default Scale.Workers)
}

func (c *ServeBenchConfig) fill(sc ScaleConfig) {
	if c.Requests <= 0 {
		c.Requests = 128
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 16
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.Workers <= 0 {
		c.Workers = sc.Workers
	}
}

// ServeReport is the machine-readable serving benchmark written as
// BENCH_3.json: end-to-end HTTP throughput and latency through lejitd's
// micro-batching queue, plus the batching efficiency the daemon achieved.
type ServeReport struct {
	Requests    int `json:"requests"`
	Concurrency int `json:"concurrency"`
	Errors      int `json:"errors"`
	NumCPU      int `json:"num_cpu"`
	GoMaxProcs  int `json:"gomaxprocs"`

	BatchWindowMs float64 `json:"batch_window_ms"`
	MaxBatch      int     `json:"max_batch"`
	Workers       int     `json:"workers"`

	DurationMs     float64 `json:"duration_ms"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	P50Ms          float64 `json:"p50_ms"`
	P95Ms          float64 `json:"p95_ms"`
	P99Ms          float64 `json:"p99_ms"`

	Batches       uint64  `json:"batches"`
	MeanBatchSize float64 `json:"mean_batch_size"`
	Tokens        uint64  `json:"tokens"`
	TokensPerSec  float64 `json:"tokens_per_sec"`
	SolverChecks  uint64  `json:"solver_checks"`

	// Warning flags conditions that make parts of the report meaningless
	// (e.g. GOMAXPROCS=1 serializes the decode pool).
	Warning string `json:"warning,omitempty"`
}

// RunServeBench stands up a real lejitd server on an ephemeral port and
// drives it with cfg.Concurrency HTTP clients issuing imputation requests
// over the test split, measuring end-to-end latency percentiles and
// throughput — the serving-path analogue of RunPerf.
func RunServeBench(env *Env, cfg ServeBenchConfig) (*ServeReport, error) {
	cfg.fill(env.Scale)
	eng, err := env.EngineFor(env.ImputeRules, core.LeJIT)
	if err != nil {
		return nil, err
	}
	srv, err := server.New(server.Config{
		Engine: eng, Rules: env.ImputeRules, Schema: env.Schema,
		BatchWindow: cfg.BatchWindow, MaxBatch: cfg.MaxBatch, Workers: cfg.Workers,
		QueueDepth: cfg.Requests + cfg.Concurrency, // benchmark measures latency, not shedding
		Seed:       env.Scale.Seed,
	})
	if err != nil {
		return nil, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ctx, l) }()
	base := "http://" + l.Addr().String()

	test := env.TestRecordsN(0)
	if len(test) == 0 {
		return nil, fmt.Errorf("experiments: no test records for serve bench")
	}
	bodies := make([][]byte, cfg.Requests)
	for i := range bodies {
		known := CoarseOf(test[i%len(test)])
		req := map[string]any{"known": known, "seed": env.Scale.Seed + int64(i)}
		b, err := json.Marshal(req)
		if err != nil {
			return nil, err
		}
		bodies[i] = b
	}

	env.Logf("experiments: serve bench — %d requests, %d clients, window %v, max batch %d",
		cfg.Requests, cfg.Concurrency, cfg.BatchWindow, cfg.MaxBatch)

	client := &http.Client{}
	latencies := make([]float64, cfg.Requests) // ms
	var errs atomic.Int64
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.Concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= cfg.Requests {
					return
				}
				t0 := time.Now()
				resp, err := client.Post(base+"/v1/impute", "application/json", bytes.NewReader(bodies[i]))
				if err != nil {
					errs.Add(1)
					continue
				}
				var dr server.DecodeResponse
				decErr := json.NewDecoder(resp.Body).Decode(&dr)
				resp.Body.Close()
				latencies[i] = float64(time.Since(t0).Microseconds()) / 1000
				if decErr != nil || resp.StatusCode != http.StatusOK || !dr.Compliant {
					errs.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	snap := srv.Metrics().Snapshot()
	cancel()
	if err := <-serveErr; err != nil {
		return nil, fmt.Errorf("experiments: serve bench server: %w", err)
	}

	sort.Float64s(latencies)
	rep := &ServeReport{
		Requests: cfg.Requests, Concurrency: cfg.Concurrency, Errors: int(errs.Load()),
		NumCPU: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0),
		BatchWindowMs: float64(cfg.BatchWindow.Microseconds()) / 1000,
		MaxBatch:      cfg.MaxBatch, Workers: cfg.Workers,
		DurationMs:    float64(elapsed.Microseconds()) / 1000,
		P50Ms:         percentile(latencies, 0.50),
		P95Ms:         percentile(latencies, 0.95),
		P99Ms:         percentile(latencies, 0.99),
		Batches:       snap.Batches,
		MeanBatchSize: snap.MeanBatchSize,
		Tokens:        snap.Tokens,
		SolverChecks:  snap.SolverChecks,
	}
	if elapsed > 0 {
		rep.RequestsPerSec = float64(cfg.Requests) / elapsed.Seconds()
		rep.TokensPerSec = float64(snap.Tokens) / elapsed.Seconds()
	}
	if rep.GoMaxProcs == 1 {
		rep.Warning = fmt.Sprintf("GOMAXPROCS=1 (NumCPU=%d): the decode pool and HTTP clients share one CPU; latency percentiles reflect serialization", rep.NumCPU)
	}
	return rep, nil
}

// percentile reads the p-quantile from ascending xs (nearest-rank).
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	i := int(p*float64(len(xs))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(xs) {
		i = len(xs) - 1
	}
	return xs[i]
}

// WriteJSON writes the report to path, pretty-printed.
func (r *ServeReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ServeTable renders the report for the text output.
func ServeTable(r *ServeReport) Table {
	t := Table{
		Title:  "Serve: lejitd end-to-end throughput (micro-batched imputation over HTTP)",
		Header: []string{"metric", "value"},
	}
	t.Rows = append(t.Rows,
		[]string{"requests", itoa(r.Requests)},
		[]string{"concurrency", itoa(r.Concurrency)},
		[]string{"errors", itoa(r.Errors)},
		[]string{"throughput", f1(r.RequestsPerSec) + " req/s"},
		[]string{"p50 latency", f1(r.P50Ms) + " ms"},
		[]string{"p95 latency", f1(r.P95Ms) + " ms"},
		[]string{"p99 latency", f1(r.P99Ms) + " ms"},
		[]string{"mean batch size", f1(r.MeanBatchSize)},
		[]string{"batches", itoa64(r.Batches)},
		[]string{"tokens/sec", f1(r.TokensPerSec)},
	)
	return t
}
