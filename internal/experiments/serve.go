package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/server"
)

// ServeBenchConfig parameterizes the serving load test.
type ServeBenchConfig struct {
	Requests    int           // total requests (default 128)
	Concurrency int           // concurrent clients (default 16)
	BatchWindow time.Duration // micro-batch window (default 2ms)
	MaxBatch    int           // records per batch cap (default 32)
	Workers     int           // decode pool size (default Scale.Workers)
}

func (c *ServeBenchConfig) fill(sc ScaleConfig) {
	if c.Requests <= 0 {
		c.Requests = 128
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 16
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.Workers <= 0 {
		c.Workers = sc.Workers
	}
}

// ServeReport is the machine-readable serving benchmark written as
// BENCH_3.json: end-to-end HTTP throughput and latency through lejitd's
// micro-batching queue, plus the batching efficiency the daemon achieved.
type ServeReport struct {
	Requests    int `json:"requests"`
	Concurrency int `json:"concurrency"`
	Errors      int `json:"errors"`
	NumCPU      int `json:"num_cpu"`
	GoMaxProcs  int `json:"gomaxprocs"`

	BatchWindowMs float64 `json:"batch_window_ms"`
	MaxBatch      int     `json:"max_batch"`
	Workers       int     `json:"workers"`

	DurationMs     float64 `json:"duration_ms"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	P50Ms          float64 `json:"p50_ms"`
	P95Ms          float64 `json:"p95_ms"`
	P99Ms          float64 `json:"p99_ms"`

	Batches       uint64  `json:"batches"`
	MeanBatchSize float64 `json:"mean_batch_size"`
	Tokens        uint64  `json:"tokens"`
	TokensPerSec  float64 `json:"tokens_per_sec"`
	SolverChecks  uint64  `json:"solver_checks"`

	// Prefix measures the cross-request prefix cache (DESIGN.md §11) on a
	// prefix-clustered workload: the same request stream served cold (cache
	// disabled) and warm (cache populated by an identical prior pass).
	Prefix *PrefixBenchReport `json:"prefix,omitempty"`

	// Warning flags conditions that make parts of the report meaningless
	// (e.g. GOMAXPROCS=1 serializes the decode pool).
	Warning string `json:"warning,omitempty"`
}

// PrefixBenchReport compares warm and cold serving of one prefix-clustered
// workload. Every request pins its seed, so the warm pass must reproduce the
// cold pass's records bit for bit (WarmMatchesCold).
type PrefixBenchReport struct {
	Requests   int `json:"requests"`
	Clusters   int `json:"clusters"` // distinct prompts in the workload
	CacheMB    int `json:"cache_mb"`
	NumCPU     int `json:"num_cpu"`
	GoMaxProcs int `json:"gomaxprocs"`
	Errors     int `json:"errors"`

	Hits    uint64  `json:"hits"`   // warm measured pass
	Misses  uint64  `json:"misses"` // warm measured pass
	HitRate float64 `json:"hit_rate"`

	ColdMsPerRecord  float64 `json:"cold_ms_per_record"`
	WarmMsPerRecord  float64 `json:"warm_ms_per_record"`
	ColdTokensPerSec float64 `json:"cold_tokens_per_sec"`
	WarmTokensPerSec float64 `json:"warm_tokens_per_sec"`
	SpeedupX         float64 `json:"speedup_x"` // cold ms/record ÷ warm ms/record

	WarmMatchesCold bool `json:"warm_matches_cold"`
}

// RunServeBench stands up a real lejitd server on an ephemeral port and
// drives it with cfg.Concurrency HTTP clients issuing imputation requests
// over the test split, measuring end-to-end latency percentiles and
// throughput — the serving-path analogue of RunPerf.
func RunServeBench(env *Env, cfg ServeBenchConfig) (*ServeReport, error) {
	cfg.fill(env.Scale)
	eng, err := env.EngineFor(env.ImputeRules, core.LeJIT)
	if err != nil {
		return nil, err
	}
	srv, err := server.New(server.Config{
		Engine: eng, Rules: env.ImputeRules, Schema: env.Schema,
		BatchWindow: cfg.BatchWindow, MaxBatch: cfg.MaxBatch, Workers: cfg.Workers,
		QueueDepth: cfg.Requests + cfg.Concurrency, // benchmark measures latency, not shedding
		Seed:       env.Scale.Seed,
	})
	if err != nil {
		return nil, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ctx, l) }()
	base := "http://" + l.Addr().String()

	test := env.TestRecordsN(0)
	if len(test) == 0 {
		return nil, fmt.Errorf("experiments: no test records for serve bench")
	}
	bodies := make([][]byte, cfg.Requests)
	for i := range bodies {
		known := CoarseOf(test[i%len(test)])
		req := map[string]any{"known": known, "seed": env.Scale.Seed + int64(i)}
		b, err := json.Marshal(req)
		if err != nil {
			return nil, err
		}
		bodies[i] = b
	}

	env.Logf("experiments: serve bench — %d requests, %d clients, window %v, max batch %d",
		cfg.Requests, cfg.Concurrency, cfg.BatchWindow, cfg.MaxBatch)

	client := &http.Client{}
	latencies := make([]float64, cfg.Requests) // ms
	var errs atomic.Int64
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.Concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= cfg.Requests {
					return
				}
				t0 := time.Now()
				resp, err := client.Post(base+"/v1/impute", "application/json", bytes.NewReader(bodies[i]))
				if err != nil {
					errs.Add(1)
					continue
				}
				var dr server.DecodeResponse
				decErr := json.NewDecoder(resp.Body).Decode(&dr)
				resp.Body.Close()
				latencies[i] = float64(time.Since(t0).Microseconds()) / 1000
				if decErr != nil || resp.StatusCode != http.StatusOK || !dr.Compliant {
					errs.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	snap := srv.Metrics().Snapshot()
	cancel()
	if err := <-serveErr; err != nil {
		return nil, fmt.Errorf("experiments: serve bench server: %w", err)
	}

	sort.Float64s(latencies)
	rep := &ServeReport{
		Requests: cfg.Requests, Concurrency: cfg.Concurrency, Errors: int(errs.Load()),
		NumCPU: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0),
		BatchWindowMs: float64(cfg.BatchWindow.Microseconds()) / 1000,
		MaxBatch:      cfg.MaxBatch, Workers: cfg.Workers,
		DurationMs:    float64(elapsed.Microseconds()) / 1000,
		P50Ms:         percentile(latencies, 0.50),
		P95Ms:         percentile(latencies, 0.95),
		P99Ms:         percentile(latencies, 0.99),
		Batches:       snap.Batches,
		MeanBatchSize: snap.MeanBatchSize,
		Tokens:        snap.Tokens,
		SolverChecks:  snap.SolverChecks,
	}
	if elapsed > 0 {
		rep.RequestsPerSec = float64(cfg.Requests) / elapsed.Seconds()
		rep.TokensPerSec = float64(snap.Tokens) / elapsed.Seconds()
	}
	if rep.GoMaxProcs == 1 {
		rep.Warning = fmt.Sprintf("GOMAXPROCS=1 (NumCPU=%d): the decode pool and HTTP clients share one CPU; latency percentiles reflect serialization", rep.NumCPU)
	}
	rep.Prefix, err = runPrefixBench(env, cfg)
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// benchServer stands up one lejitd instance for a benchmark phase and returns
// its base URL plus a shutdown function.
func benchServer(env *Env, cfg ServeBenchConfig, cacheMB int) (*server.Server, string, func() error, error) {
	eng, err := env.EngineFor(env.ImputeRules, core.LeJIT)
	if err != nil {
		return nil, "", nil, err
	}
	srv, err := server.New(server.Config{
		Engine: eng, Rules: env.ImputeRules, Schema: env.Schema,
		BatchWindow: cfg.BatchWindow, MaxBatch: cfg.MaxBatch, Workers: cfg.Workers,
		QueueDepth:    cfg.Requests + cfg.Concurrency,
		Seed:          env.Scale.Seed,
		PrefixCacheMB: cacheMB,
	})
	if err != nil {
		return nil, "", nil, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return nil, "", nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ctx, l) }()
	shutdown := func() error {
		cancel()
		return <-serveErr
	}
	return srv, "http://" + l.Addr().String(), shutdown, nil
}

// runWorkload fires bodies at base with cfg.Concurrency clients and returns
// the elapsed wall-clock, each response's rendered line (by request index),
// and the error count.
func runWorkload(base string, bodies [][]byte, concurrency int) (time.Duration, []string, int) {
	client := &http.Client{}
	lines := make([]string, len(bodies))
	var errs atomic.Int64
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(bodies) {
					return
				}
				resp, err := client.Post(base+"/v1/impute", "application/json", bytes.NewReader(bodies[i]))
				if err != nil {
					errs.Add(1)
					continue
				}
				var dr server.DecodeResponse
				decErr := json.NewDecoder(resp.Body).Decode(&dr)
				resp.Body.Close()
				if decErr != nil || resp.StatusCode != http.StatusOK || !dr.Compliant {
					errs.Add(1)
					continue
				}
				lines[i] = dr.Line
			}
		}()
	}
	wg.Wait()
	return time.Since(start), lines, int(errs.Load())
}

// runPrefixBench measures the cross-request prefix cache: a prefix-clustered
// workload (a few distinct prompts, every request seed-pinned) served cold —
// cache disabled — and then warm — an identical populating pass followed by
// the measured pass, so every measured request can hit. Bit-identical output
// between the phases is part of the report, not just a test-suite property.
func runPrefixBench(env *Env, cfg ServeBenchConfig) (*PrefixBenchReport, error) {
	const (
		clusters = 4
		cacheMB  = 64
	)
	test := env.TestRecordsN(0)
	if len(test) == 0 {
		return nil, fmt.Errorf("experiments: no test records for prefix bench")
	}
	bodies := make([][]byte, cfg.Requests)
	for i := range bodies {
		known := CoarseOf(test[i%clusters%len(test)])
		req := map[string]any{"known": known, "seed": env.Scale.Seed + 100_000 + int64(i)}
		b, err := json.Marshal(req)
		if err != nil {
			return nil, err
		}
		bodies[i] = b
	}
	env.Logf("experiments: prefix bench — %d requests over %d prompt clusters, cache %d MiB vs cold",
		cfg.Requests, clusters, cacheMB)

	// Phase A: cold — no cache at all.
	coldSrv, base, shutdown, err := benchServer(env, cfg, 0)
	if err != nil {
		return nil, err
	}
	coldElapsed, coldLines, coldErrs := runWorkload(base, bodies, cfg.Concurrency)
	coldTokens := coldSrv.Metrics().Snapshot().Tokens
	if err := shutdown(); err != nil {
		return nil, fmt.Errorf("experiments: prefix bench cold server: %w", err)
	}

	// Phase B: warm — populate with one identical pass, measure the second.
	srv, base, shutdown, err := benchServer(env, cfg, cacheMB)
	if err != nil {
		return nil, err
	}
	_, _, popErrs := runWorkload(base, bodies, cfg.Concurrency)
	before := srv.Metrics().Snapshot()
	warmElapsed, warmLines, warmErrs := runWorkload(base, bodies, cfg.Concurrency)
	after := srv.Metrics().Snapshot()
	if err := shutdown(); err != nil {
		return nil, fmt.Errorf("experiments: prefix bench warm server: %w", err)
	}

	match := true
	for i := range coldLines {
		if coldLines[i] != warmLines[i] || coldLines[i] == "" {
			match = false
			break
		}
	}
	rep := &PrefixBenchReport{
		Requests: cfg.Requests, Clusters: clusters, CacheMB: cacheMB,
		NumCPU: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0),
		Errors: coldErrs + popErrs + warmErrs,
		Hits:   after.Prefix.Hits - before.Prefix.Hits,
		Misses: after.Prefix.Misses - before.Prefix.Misses,

		ColdMsPerRecord: float64(coldElapsed.Microseconds()) / 1000 / float64(cfg.Requests),
		WarmMsPerRecord: float64(warmElapsed.Microseconds()) / 1000 / float64(cfg.Requests),

		WarmMatchesCold: match,
	}
	if lookups := rep.Hits + rep.Misses; lookups > 0 {
		rep.HitRate = float64(rep.Hits) / float64(lookups)
	}
	// Tokens per second per phase come from each server's own counters: the
	// cold server's total, the warm server's delta over the measured pass.
	// Warm tokens count only the sampled region — the restored prefix costs
	// no forward passes, which is the point.
	if coldElapsed > 0 {
		rep.ColdTokensPerSec = float64(coldTokens) / coldElapsed.Seconds()
	}
	if warmElapsed > 0 {
		rep.WarmTokensPerSec = float64(after.Tokens-before.Tokens) / warmElapsed.Seconds()
	}
	if rep.WarmMsPerRecord > 0 {
		rep.SpeedupX = rep.ColdMsPerRecord / rep.WarmMsPerRecord
	}
	return rep, nil
}

// percentile reads the p-quantile from ascending xs (nearest-rank).
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	i := int(p*float64(len(xs))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(xs) {
		i = len(xs) - 1
	}
	return xs[i]
}

// WriteJSON writes the report to path, pretty-printed.
func (r *ServeReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ServeTable renders the report for the text output.
func ServeTable(r *ServeReport) Table {
	t := Table{
		Title:  "Serve: lejitd end-to-end throughput (micro-batched imputation over HTTP)",
		Header: []string{"metric", "value"},
	}
	t.Rows = append(t.Rows,
		[]string{"requests", itoa(r.Requests)},
		[]string{"concurrency", itoa(r.Concurrency)},
		[]string{"errors", itoa(r.Errors)},
		[]string{"throughput", f1(r.RequestsPerSec) + " req/s"},
		[]string{"p50 latency", f1(r.P50Ms) + " ms"},
		[]string{"p95 latency", f1(r.P95Ms) + " ms"},
		[]string{"p99 latency", f1(r.P99Ms) + " ms"},
		[]string{"mean batch size", f1(r.MeanBatchSize)},
		[]string{"batches", itoa64(r.Batches)},
		[]string{"tokens/sec", f1(r.TokensPerSec)},
	)
	if p := r.Prefix; p != nil {
		t.Rows = append(t.Rows,
			[]string{"prefix hit rate", fmt.Sprintf("%.0f%% (%d clusters, %d MiB)", 100*p.HitRate, p.Clusters, p.CacheMB)},
			[]string{"prefix ms/record", fmt.Sprintf("%s cold -> %s warm (%.2fx)", f1(p.ColdMsPerRecord), f1(p.WarmMsPerRecord), p.SpeedupX)},
			[]string{"prefix tokens/sec", fmt.Sprintf("%s cold -> %s warm", f1(p.ColdTokensPerSec), f1(p.WarmTokensPerSec))},
			[]string{"prefix warm==cold", fmt.Sprintf("%v", p.WarmMatchesCold)},
		)
	}
	return t
}
