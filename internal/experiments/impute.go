package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/rules"
)

// ImputeMethod is one imputation strategy under evaluation.
type ImputeMethod struct {
	Name string
	Run  func(known rules.Record, rng *rand.Rand) (rules.Record, error)
	// Batch, when non-nil, decodes all prompts through core.DecodeBatch
	// (engine-backed methods set it); serial-only methods — stateful
	// generators like Zoom2Net — leave it nil and fall back to Run.
	Batch func(prompts []rules.Record, workers int, seed int64) ([]core.BatchResult, error)
}

// batcher adapts an engine + decode function to the ImputeMethod.Batch shape.
func batcher(eng *core.Engine, fn core.DecodeFn) func([]rules.Record, int, int64) ([]core.BatchResult, error) {
	return func(prompts []rules.Record, workers int, seed int64) ([]core.BatchResult, error) {
		return eng.DecodeBatch(prompts, workers, seed, fn)
	}
}

// ImputeResult aggregates one method's imputation run (feeds Fig 3 and
// Fig 4).
type ImputeResult struct {
	Method    string
	Records   int // records attempted
	Failures  int // decode errors (malformed / infeasible / attempts exhausted)
	Succeeded int // records decoded; all rates below are over these

	// Rule compliance against the full mined set (Fig 3 left).
	PairViolationRate float64 // violated (rule, record) pairs
	RecViolationRate  float64 // records violating ≥1 rule

	// Accuracy vs ground truth (Fig 4 left).
	MAE         float64
	EMD         float64
	P99Err      float64
	AutocorrErr float64

	// Downstream burst analysis (Fig 4 right).
	Burst metrics.BurstStats

	// Runtime (Fig 3 right).
	Total     time.Duration
	PerRecord time.Duration
	Extrap30K time.Duration // extrapolation to the paper's 30K test points
}

// ImputeMethods constructs the evaluated methods in presentation order:
// the three GPT-2 baselines, the constrained-decoding strawman, the two
// LeJIT variants, Zoom2Net, and post-hoc SMT repair.
func (e *Env) ImputeMethods() ([]ImputeMethod, error) {
	engMined, err := e.EngineFor(e.ImputeRules, core.LeJIT)
	if err != nil {
		return nil, err
	}
	engManual, err := e.EngineFor(e.ManualRules, core.LeJIT)
	if err != nil {
		return nil, err
	}
	engStruct, err := e.EngineFor(e.ImputeRules, core.StructureOnly)
	if err != nil {
		return nil, err
	}

	z2n, err := baselines.NewZoom2Net(e.Schema, dataset.CoarseFields(), dataset.FineField,
		e.ManualRules, baselines.Z2NConfig{Seed: e.Scale.Seed})
	if err != nil {
		return nil, err
	}
	e.Logf("experiments: fitting Zoom2Net on %d windows", len(e.Train))
	if err := z2n.Fit(dataset.Records(e.Train)); err != nil {
		return nil, err
	}

	wrap := func(f func(rules.Record, *rand.Rand) (core.Result, error)) func(rules.Record, *rand.Rand) (rules.Record, error) {
		return func(known rules.Record, rng *rand.Rand) (rules.Record, error) {
			res, err := f(known, rng)
			return res.Rec, err
		}
	}
	return []ImputeMethod{
		{Name: "Vanilla GPT-2", Run: wrap(engMined.Vanilla), Batch: batcher(engMined, (*core.Engine).Vanilla)},
		{Name: "Rejection Sampling", Run: wrap(engMined.Rejection), Batch: batcher(engMined, (*core.Engine).Rejection)},
		{Name: "Post-hoc SMT Repair", Run: wrap(engMined.PostHoc), Batch: batcher(engMined, (*core.Engine).PostHoc)},
		{Name: "Constrained Decoding", Run: wrap(engStruct.Impute), Batch: batcher(engStruct, (*core.Engine).Impute)},
		{Name: "Zoom2Net", Run: func(known rules.Record, _ *rand.Rand) (rules.Record, error) {
			return z2n.Impute(known)
		}},
		{Name: "LeJIT (manual rules)", Run: wrap(engManual.Impute), Batch: batcher(engManual, (*core.Engine).Impute)},
		{Name: "LeJIT", Run: wrap(engMined.Impute), Batch: batcher(engMined, (*core.Engine).Impute)},
	}, nil
}

// RunImputation evaluates every method on the test prompts and aggregates
// the Fig 3 / Fig 4 measurements. One pass feeds all four panels.
func RunImputation(env *Env) ([]ImputeResult, error) {
	methods, err := env.ImputeMethods()
	if err != nil {
		return nil, err
	}
	test := env.TestRecordsN(0)
	out := make([]ImputeResult, 0, len(methods))
	for _, m := range methods {
		env.Logf("experiments: imputation method %q on %d records", m.Name, len(test))
		res, err := runOneImputation(env, m, test)
		if err != nil {
			return nil, fmt.Errorf("method %s: %w", m.Name, err)
		}
		out = append(out, res)
	}
	return out, nil
}

func runOneImputation(env *Env, m ImputeMethod, test []rules.Record) (ImputeResult, error) {
	res := ImputeResult{Method: m.Name, Records: len(test)}

	var preds, truths [][]int64
	var outRecs []rules.Record
	start := time.Now()
	if m.Batch != nil {
		prompts := make([]rules.Record, len(test))
		for i, rec := range test {
			prompts[i] = CoarseOf(rec)
		}
		batch, err := m.Batch(prompts, env.Scale.Workers, env.Scale.Seed+1000)
		if err != nil {
			return res, err
		}
		res.Total = time.Since(start)
		for i, b := range batch {
			if b.Err != nil {
				res.Failures++
				continue
			}
			outRecs = append(outRecs, b.Res.Rec)
			preds = append(preds, b.Res.Rec[dataset.FineField])
			truths = append(truths, test[i][dataset.FineField])
		}
	} else {
		rng := rand.New(rand.NewSource(env.Scale.Seed + 1000))
		for _, rec := range test {
			known := CoarseOf(rec)
			got, err := m.Run(known, rng)
			if err != nil {
				res.Failures++
				continue
			}
			outRecs = append(outRecs, got)
			preds = append(preds, got[dataset.FineField])
			truths = append(truths, rec[dataset.FineField])
		}
		res.Total = time.Since(start)
	}
	if len(test) > 0 {
		res.PerRecord = res.Total / time.Duration(len(test))
		res.Extrap30K = res.PerRecord * 30000
	}
	res.Succeeded = len(outRecs)
	if len(outRecs) == 0 {
		return res, nil
	}

	var err error
	res.PairViolationRate, res.RecViolationRate, err = env.ImputeRules.ViolationRate(outRecs)
	if err != nil {
		return res, err
	}
	res.MAE, err = metrics.MAE(preds, truths)
	if err != nil {
		return res, err
	}
	res.EMD = metrics.EMD(flattenF(preds), flattenF(truths))
	res.P99Err = metrics.P99Error(preds, truths)
	res.AutocorrErr = metrics.AutocorrError(preds, truths)
	res.Burst, err = metrics.BurstAnalysis(preds, truths, dataset.BW/2)
	if err != nil {
		return res, err
	}
	return res, nil
}

func flattenF(xs [][]int64) []float64 {
	var out []float64
	for _, s := range xs {
		for _, v := range s {
			out = append(out, float64(v))
		}
	}
	return out
}

// Fig3LeftTable renders rule-violation rates (paper Fig 3 left).
func Fig3LeftTable(rs []ImputeResult) Table {
	t := Table{
		Title:  "Fig 3 (left): rule violations in imputed time series (vs full mined rule set)",
		Header: []string{"method", "records", "failures", "pair-violation %", "record-violation %"},
	}
	for _, r := range rs {
		t.Rows = append(t.Rows, []string{
			r.Method, itoa(r.Records), itoa(r.Failures),
			orDash(r.Succeeded > 0, pct(r.PairViolationRate)),
			orDash(r.Succeeded > 0, pct(r.RecViolationRate)),
		})
	}
	return t
}

// orDash renders "-" for metrics computed over an empty success set.
func orDash(ok bool, s string) string {
	if !ok {
		return "-"
	}
	return s
}

// Fig3RightTable renders runtime (paper Fig 3 right).
func Fig3RightTable(rs []ImputeResult) Table {
	t := Table{
		Title:  "Fig 3 (right): imputation runtime (measured, extrapolated to 30K samples)",
		Header: []string{"method", "per-record", "total (this run)", "extrapolated 30K"},
	}
	for _, r := range rs {
		t.Rows = append(t.Rows, []string{
			r.Method, r.PerRecord.String(), r.Total.Round(time.Millisecond).String(),
			r.Extrap30K.Round(time.Second).String(),
		})
	}
	return t
}

// Fig4LeftTable renders imputation accuracy (paper Fig 4 left).
func Fig4LeftTable(rs []ImputeResult) Table {
	t := Table{
		Title:  "Fig 4 (left): imputation accuracy vs ground truth",
		Header: []string{"method", "MAE", "EMD", "p99 rel-err", "autocorr err"},
	}
	for _, r := range rs {
		ok := r.Succeeded > 0
		t.Rows = append(t.Rows, []string{
			r.Method, orDash(ok, f3(r.MAE)), orDash(ok, f3(r.EMD)),
			orDash(ok, f3(r.P99Err)), orDash(ok, f3(r.AutocorrErr)),
		})
	}
	return t
}

// Fig4RightTable renders downstream burst-analysis accuracy (paper Fig 4
// right).
func Fig4RightTable(rs []ImputeResult) Table {
	t := Table{
		Title:  "Fig 4 (right): downstream burst analysis (threshold BW/2)",
		Header: []string{"method", "burst-count err", "burst-volume err", "burst-position err"},
	}
	for _, r := range rs {
		ok := r.Succeeded > 0
		t.Rows = append(t.Rows, []string{
			r.Method, orDash(ok, f3(r.Burst.CountErr)),
			orDash(ok, f3(r.Burst.VolumeErr)), orDash(ok, f3(r.Burst.PositionErr)),
		})
	}
	return t
}
