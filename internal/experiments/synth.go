package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/rules"
)

// SynthMethod is one synthetic-data generator under evaluation.
type SynthMethod struct {
	Name string
	Run  func(rng *rand.Rand) (rules.Record, error)
	// Batch, when non-nil, draws all samples through core.DecodeBatch
	// (the GPT-2-backed generators); the fitted statistical generators
	// stay serial via Run.
	Batch func(n, workers int, seed int64) ([]core.BatchResult, error)
}

// genBatcher adapts an engine + decode function to SynthMethod.Batch:
// n nil prompts mean n unconditional generations.
func genBatcher(eng *core.Engine, fn core.DecodeFn) func(int, int, int64) ([]core.BatchResult, error) {
	return func(n, workers int, seed int64) ([]core.BatchResult, error) {
		return eng.DecodeBatch(make([]rules.Record, n), workers, seed, fn)
	}
}

// SynthResult aggregates one generator's run (feeds Fig 5).
type SynthResult struct {
	Method    string
	Samples   int
	Failures  int
	Succeeded int

	// Compliance against the mined synthesis rule set.
	PairViolationRate float64
	RecViolationRate  float64

	// Per-coarse-field Jensen–Shannon divergence vs held-out data.
	JSDPerField map[string]float64
	MeanJSD     float64

	Total     time.Duration
	PerSample time.Duration
}

// SynthMethods constructs the Fig 5 lineup: three GPT-2 variants (vanilla,
// rejection, LeJIT), the GPT-2-based REaLTabFormer substitute (the same
// trained transformer under structural decoding), and the four statistical
// SOTA generators fitted on the training split.
func (e *Env) SynthMethods() ([]SynthMethod, error) {
	engSynth, err := e.EngineFor(e.SynthRules, core.LeJIT)
	if err != nil {
		return nil, err
	}
	engStruct, err := e.EngineFor(e.SynthRules, core.StructureOnly)
	if err != nil {
		return nil, err
	}

	methods := []SynthMethod{
		{Name: "Vanilla GPT-2", Run: func(rng *rand.Rand) (rules.Record, error) {
			res, err := engSynth.Vanilla(nil, rng)
			return res.Rec, err
		}, Batch: genBatcher(engSynth, (*core.Engine).Vanilla)},
		{Name: "Rejection Sampling", Run: func(rng *rand.Rand) (rules.Record, error) {
			res, err := engSynth.Rejection(nil, rng)
			return res.Rec, err
		}, Batch: genBatcher(engSynth, (*core.Engine).Rejection)},
		{Name: "REaLTabFormer", Run: func(rng *rand.Rand) (rules.Record, error) {
			res, err := engStruct.Generate(rng)
			return res.Rec, err
		}, Batch: genBatcher(engStruct, nil)},
	}

	gens := []baselines.Generator{
		baselines.NewNetShare(e.Schema, 0),
		baselines.NewEWGANGP(e.Schema),
		baselines.NewCTGAN(e.Schema, 0, e.Scale.Seed),
		baselines.NewTVAE(e.Schema, 0),
	}
	train := dataset.Records(e.Train)
	for _, g := range gens {
		e.Logf("experiments: fitting %s on %d windows", g.Name(), len(train))
		if err := g.Fit(train); err != nil {
			return nil, fmt.Errorf("fitting %s: %w", g.Name(), err)
		}
		g := g
		methods = append(methods, SynthMethod{Name: g.Name(), Run: func(rng *rand.Rand) (rules.Record, error) {
			return g.Sample(rng)
		}})
	}

	methods = append(methods, SynthMethod{Name: "LeJIT", Run: func(rng *rand.Rand) (rules.Record, error) {
		res, err := engSynth.Generate(rng)
		return res.Rec, err
	}, Batch: genBatcher(engSynth, nil)})
	return methods, nil
}

// RunSynthesis evaluates every generator (paper Fig 5): draw SampleN
// records each, compare per-field distributions to the held-out test split
// by JSD, and check compliance with the mined synthesis rules.
func RunSynthesis(env *Env) ([]SynthResult, error) {
	methods, err := env.SynthMethods()
	if err != nil {
		return nil, err
	}
	// Reference distributions from the full test split.
	ref := map[string][]float64{}
	for _, w := range env.Test {
		for _, f := range dataset.CoarseFields() {
			ref[f] = append(ref[f], float64(w.Rec[f][0]))
		}
	}

	out := make([]SynthResult, 0, len(methods))
	for _, m := range methods {
		env.Logf("experiments: synthesis method %q drawing %d samples", m.Name, env.Scale.SampleN)
		res, err := runOneSynthesis(env, m, ref)
		if err != nil {
			return nil, fmt.Errorf("method %s: %w", m.Name, err)
		}
		out = append(out, res)
	}
	return out, nil
}

func runOneSynthesis(env *Env, m SynthMethod, ref map[string][]float64) (SynthResult, error) {
	res := SynthResult{Method: m.Name, Samples: env.Scale.SampleN, JSDPerField: map[string]float64{}}

	var recs []rules.Record
	start := time.Now()
	if m.Batch != nil {
		batch, err := m.Batch(env.Scale.SampleN, env.Scale.Workers, env.Scale.Seed+2000)
		if err != nil {
			return res, err
		}
		res.Total = time.Since(start)
		for _, b := range batch {
			if b.Err != nil {
				res.Failures++
				continue
			}
			recs = append(recs, b.Res.Rec)
		}
	} else {
		rng := rand.New(rand.NewSource(env.Scale.Seed + 2000))
		for i := 0; i < env.Scale.SampleN; i++ {
			rec, err := m.Run(rng)
			if err != nil {
				res.Failures++
				continue
			}
			recs = append(recs, rec)
		}
		res.Total = time.Since(start)
	}
	if env.Scale.SampleN > 0 {
		res.PerSample = res.Total / time.Duration(env.Scale.SampleN)
	}
	res.Succeeded = len(recs)
	if len(recs) == 0 {
		return res, nil
	}

	var err error
	res.PairViolationRate, res.RecViolationRate, err = env.SynthRules.ViolationRate(recs)
	if err != nil {
		return res, err
	}

	var sum float64
	for _, fname := range dataset.CoarseFields() {
		f, _ := env.Schema.Field(fname)
		var synth []float64
		for _, rec := range recs {
			synth = append(synth, float64(rec[fname][0]))
		}
		jsd := metrics.JSD(synth, ref[fname], 24, float64(f.Lo), float64(f.Hi))
		res.JSDPerField[fname] = jsd
		sum += jsd
	}
	res.MeanJSD = sum / float64(len(dataset.CoarseFields()))
	return res, nil
}

// Fig5Table renders the synthesis comparison (paper Fig 5).
func Fig5Table(rs []SynthResult) Table {
	t := Table{
		Title: "Fig 5: synthesis fidelity (JSD vs held-out data, lower is better) and rule compliance",
		Header: append([]string{"method"},
			append(dataset.CoarseFields(), "mean JSD", "pair-violation %", "rec-violation %", "failures")...),
	}
	for _, r := range rs {
		ok := r.Succeeded > 0
		row := []string{r.Method}
		for _, f := range dataset.CoarseFields() {
			row = append(row, orDash(ok, f3(r.JSDPerField[f])))
		}
		row = append(row, orDash(ok, f3(r.MeanJSD)),
			orDash(ok, pct(r.PairViolationRate)), orDash(ok, pct(r.RecViolationRate)), itoa(r.Failures))
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig5RuntimeTable renders generation throughput alongside Fig 5.
func Fig5RuntimeTable(rs []SynthResult) Table {
	t := Table{
		Title:  "Fig 5 (runtime): synthesis throughput",
		Header: []string{"method", "per-sample", "total"},
	}
	for _, r := range rs {
		t.Rows = append(t.Rows, []string{r.Method, r.PerSample.String(), r.Total.Round(time.Millisecond).String()})
	}
	return t
}
