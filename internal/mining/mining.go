// Package mining implements a NetNomos-style rule miner (the paper obtains
// its 716 imputation rules and 255 synthesis rules by "applying NetNomos on
// the training data"; NetNomos itself is closed research code, so this is
// the substitute documented in DESIGN.md §1).
//
// The miner discovers, from a training corpus, hard rules of the classes the
// paper's evaluation exercises:
//
//   - bounds: observed [min, max] per value term (with configurable slack),
//   - pairwise linear inequalities A ≤ k·B + c with the tightest consistent c,
//   - aggregate thresholds (max/min of the fine-grained vector),
//   - conservation sums (Σ I = TotalIngress when exact in the data),
//   - temporal smoothness (|I[t+1] − I[t]| ≤ c),
//   - conditional implications (antecedent > threshold ⟹ consequent),
//     kept only at 100% confidence and configurable minimum support.
//
// All mined rules hold on every training record by construction; vacuous
// rules (implied by the schema domains alone) are pruned. Output is DSL text
// parsed back through rules.ParseRuleSet, so every mined rule is guaranteed
// well-formed and compilable.
package mining

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rules"
)

// Config controls which rule classes are mined and how aggressively.
type Config struct {
	// Fields restricts mining to these schema fields (nil → all fields).
	// The paper's synthesis task mines only coarse-signal rules; pass the
	// coarse field names for that behaviour.
	Fields []string
	// Slack widens mined bounds and pairwise constants by this much,
	// trading tightness for generalization to unseen racks (0 → 0).
	Slack int64
	// Coeffs are the multipliers tried in pairwise rules A ≤ k·B + c
	// (nil → {1, 2}).
	Coeffs []int64
	// MinSupport is the minimum number of records in which an
	// implication's antecedent holds (0 → max(10, 1% of corpus)).
	MinSupport int
	// Disable flags for ablations; all classes are on by default.
	NoBounds, NoPairwise, NoAggregates, NoSums, NoSmoothness, NoImplications, NoCounts bool
}

func (c *Config) fill(n int) {
	if c.Coeffs == nil {
		c.Coeffs = []int64{1, 2}
	}
	if c.MinSupport == 0 {
		c.MinSupport = n / 100
		if c.MinSupport < 10 {
			c.MinSupport = 10
		}
	}
}

// term is one minable value: a scalar field, one vector element, or the
// vector sum. ref is the DSL expression; lo/hi its domain bounds.
type term struct {
	name   string // identifier-safe name for rule naming
	ref    string // DSL expression, e.g. "Congestion", "I[2]", "sum(I)"
	lo, hi int64
	get    func(rules.Record) int64
}

// Mine discovers rules from the corpus. The result parses against schema and
// holds on every record in recs.
func Mine(recs []rules.Record, schema *rules.Schema, cfg Config) (*rules.RuleSet, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("mining: empty corpus")
	}
	cfg.fill(len(recs))

	allow := map[string]bool{}
	for _, f := range cfg.Fields {
		allow[f] = true
	}
	allowed := func(name string) bool { return len(allow) == 0 || allow[name] }

	// Build the term list.
	var terms []term
	var vectors []rules.Field
	for _, f := range schema.Fields() {
		if !allowed(f.Name) {
			continue
		}
		if f.Kind == rules.Scalar {
			name := f.Name
			terms = append(terms, term{
				name: name, ref: name, lo: f.Lo, hi: f.Hi,
				get: func(r rules.Record) int64 { return r[name][0] },
			})
			continue
		}
		vectors = append(vectors, f)
		for i := 0; i < f.Len; i++ {
			name, idx := f.Name, i
			terms = append(terms, term{
				name: fmt.Sprintf("%s_%d", name, idx),
				ref:  fmt.Sprintf("%s[%d]", name, idx),
				lo:   f.Lo, hi: f.Hi,
				get: func(r rules.Record) int64 { return r[name][idx] },
			})
		}
		// The vector sum participates in pairwise mining (linear).
		name := f.Name
		terms = append(terms, term{
			name: "sum_" + name, ref: fmt.Sprintf("sum(%s)", name),
			lo: f.Lo * int64(f.Len), hi: f.Hi * int64(f.Len),
			get: func(r rules.Record) int64 {
				var s int64
				for _, v := range r[name] {
					s += v
				}
				return s
			},
		})
	}
	if len(terms) == 0 {
		return nil, fmt.Errorf("mining: no fields to mine (filter %v)", cfg.Fields)
	}

	// Precompute term values per record.
	vals := make([][]int64, len(terms))
	for ti, tm := range terms {
		col := make([]int64, len(recs))
		for ri, rec := range recs {
			col[ri] = tm.get(rec)
		}
		vals[ti] = col
	}

	var b strings.Builder
	emit := func(name, body string) {
		fmt.Fprintf(&b, "rule %s: %s\n", name, body)
	}

	if !cfg.NoBounds {
		mineBounds(terms, vals, cfg, emit)
	}
	if !cfg.NoAggregates {
		mineAggregates(vectors, recs, cfg, emit)
	}
	if !cfg.NoSums {
		mineSums(terms, vals, emit)
	}
	if !cfg.NoSmoothness {
		mineSmoothness(vectors, recs, cfg, emit)
	}
	if !cfg.NoCounts {
		mineCounts(vectors, recs, cfg, emit)
	}
	if !cfg.NoPairwise {
		minePairwise(terms, vals, cfg, emit)
	}
	if !cfg.NoImplications {
		mineImplications(terms, vals, cfg, emit)
		mineAggImplications(terms, vals, vectors, recs, cfg, emit)
	}

	rs, err := rules.ParseRuleSet(b.String(), schema)
	if err != nil {
		return nil, fmt.Errorf("mining: generated invalid DSL (bug): %w\n%s", err, b.String())
	}
	// Safety net: every mined rule must hold on the corpus.
	for _, rec := range recs {
		vs, err := rs.Violations(rec)
		if err != nil {
			return nil, fmt.Errorf("mining: evaluating mined rules: %w", err)
		}
		if len(vs) > 0 {
			return nil, fmt.Errorf("mining: mined rules %v violated by training record (bug)", vs)
		}
	}
	return rs, nil
}

func clamp(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// mineBounds emits observed-range rules per term, skipping sides already
// implied by the domain.
func mineBounds(terms []term, vals [][]int64, cfg Config, emit func(string, string)) {
	for ti, tm := range terms {
		lo, hi := vals[ti][0], vals[ti][0]
		for _, v := range vals[ti] {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		lo = clamp(lo-cfg.Slack, tm.lo, tm.hi)
		hi = clamp(hi+cfg.Slack, tm.lo, tm.hi)
		var parts []string
		if lo > tm.lo {
			parts = append(parts, fmt.Sprintf("%s >= %d", tm.ref, lo))
		}
		if hi < tm.hi {
			parts = append(parts, fmt.Sprintf("%s <= %d", tm.ref, hi))
		}
		if len(parts) > 0 {
			emit("bound_"+tm.name, strings.Join(parts, " and "))
		}
	}
}

// mineAggregates emits max/min threshold rules per vector field.
func mineAggregates(vectors []rules.Field, recs []rules.Record, cfg Config, emit func(string, string)) {
	for _, f := range vectors {
		maxHi, minLo := f.Lo, f.Hi
		for _, rec := range recs {
			vs := rec[f.Name]
			mx, mn := vs[0], vs[0]
			for _, v := range vs[1:] {
				if v > mx {
					mx = v
				}
				if v < mn {
					mn = v
				}
			}
			if mx > maxHi {
				maxHi = mx
			}
			if mn < minLo {
				minLo = mn
			}
		}
		maxHi = clamp(maxHi+cfg.Slack, f.Lo, f.Hi)
		minLo = clamp(minLo-cfg.Slack, f.Lo, f.Hi)
		if maxHi < f.Hi {
			emit("aggmax_"+f.Name, fmt.Sprintf("max(%s) <= %d", f.Name, maxHi))
		}
		if minLo > f.Lo {
			emit("aggmin_"+f.Name, fmt.Sprintf("min(%s) >= %d", f.Name, minLo))
		}
	}
}

// mineSums emits exact conservation rules sumTerm == scalarTerm when the
// equality holds on every record (the paper's R2).
func mineSums(terms []term, vals [][]int64, emit func(string, string)) {
	for i, a := range terms {
		if !strings.HasPrefix(a.name, "sum_") {
			continue
		}
		for j, bj := range terms {
			if i == j || strings.HasPrefix(bj.name, "sum_") || strings.Contains(bj.ref, "[") {
				continue
			}
			exact := true
			for r := range vals[i] {
				if vals[i][r] != vals[j][r] {
					exact = false
					break
				}
			}
			if exact {
				emit(fmt.Sprintf("conserve_%s_%s", a.name, bj.name),
					fmt.Sprintf("%s == %s", a.ref, bj.ref))
			}
		}
	}
}

// mineSmoothness emits adjacent-difference bounds over vector fields.
func mineSmoothness(vectors []rules.Field, recs []rules.Record, cfg Config, emit func(string, string)) {
	for _, f := range vectors {
		if f.Len < 2 {
			continue
		}
		var maxJump int64
		for _, rec := range recs {
			vs := rec[f.Name]
			for t := 0; t+1 < len(vs); t++ {
				d := vs[t+1] - vs[t]
				if d < 0 {
					d = -d
				}
				if d > maxJump {
					maxJump = d
				}
			}
		}
		maxJump += cfg.Slack
		if maxJump < f.Hi-f.Lo { // non-vacuous
			emit("smooth_"+f.Name, fmt.Sprintf(
				"forall t in 0..%d: %s[t+1] - %s[t] <= %d and %s[t] - %s[t+1] <= %d",
				f.Len-2, f.Name, f.Name, maxJump, f.Name, f.Name, maxJump))
		}
	}
}

// mineCounts emits burst-count rules: for each vector field and a small set
// of thresholds (fractions of the domain top), the observed range of
// count(V ≥ θ) — e.g. "at most 2 sub-intervals per window reach half the
// bandwidth". These use the DSL's count aggregate (the temporal/counting
// rule class the paper's §5 calls for).
func mineCounts(vectors []rules.Field, recs []rules.Record, cfg Config, emit func(string, string)) {
	for _, f := range vectors {
		span := f.Hi - f.Lo
		for _, num := range []int64{2, 3} { // θ at 1/2 and 3/4 of the domain top
			theta := f.Lo + span*num/4
			if theta <= f.Lo {
				continue
			}
			minC, maxC := int64(f.Len), int64(0)
			for _, rec := range recs {
				var n int64
				for _, v := range rec[f.Name] {
					if v >= theta {
						n++
					}
				}
				if n < minC {
					minC = n
				}
				if n > maxC {
					maxC = n
				}
			}
			maxC += cfg.Slack
			if maxC > int64(f.Len) {
				maxC = int64(f.Len)
			}
			minC -= cfg.Slack
			if minC < 0 {
				minC = 0
			}
			var parts []string
			if maxC < int64(f.Len) {
				parts = append(parts, fmt.Sprintf("count(%s >= %d) <= %d", f.Name, theta, maxC))
			}
			if minC > 0 {
				parts = append(parts, fmt.Sprintf("count(%s >= %d) >= %d", f.Name, theta, minC))
			}
			if len(parts) > 0 {
				emit(fmt.Sprintf("count_%s_ge%d", f.Name, theta), strings.Join(parts, " and "))
			}
		}
	}
}

// minePairwise emits A ≤ k·B + c with the smallest consistent c, for every
// ordered term pair and coefficient, pruning vacuous instances.
func minePairwise(terms []term, vals [][]int64, cfg Config, emit func(string, string)) {
	for i, a := range terms {
		for j, bj := range terms {
			if i == j {
				continue
			}
			for _, k := range cfg.Coeffs {
				// c = max over records of a − k·b.
				c := vals[i][0] - k*vals[j][0]
				for r := range vals[i] {
					if d := vals[i][r] - k*vals[j][r]; d > c {
						c = d
					}
				}
				c += cfg.Slack
				// Vacuous when implied by domains: max(a) − k·min(b) ≤ c.
				if a.hi-k*bj.lo <= c {
					continue
				}
				var rhs string
				if k == 1 {
					rhs = bj.ref
				} else {
					rhs = fmt.Sprintf("%d*%s", k, bj.ref)
				}
				if c != 0 {
					if c > 0 {
						rhs += fmt.Sprintf(" + %d", c)
					} else {
						rhs += fmt.Sprintf(" - %d", -c)
					}
				}
				emit(fmt.Sprintf("pw_%s_le_%d%s", a.name, k, bj.name),
					fmt.Sprintf("%s <= %s", a.ref, rhs))
			}
		}
	}
}

// mineImplications emits (A > θ) ⟹ (B ≥ m) rules at 100% confidence.
// Thresholds θ are 0 and the corpus median of A; the consequent bound m is
// the minimum of B over records satisfying the antecedent, kept only when it
// strictly exceeds B's unconditional minimum (i.e. the implication carries
// information).
func mineImplications(terms []term, vals [][]int64, cfg Config, emit func(string, string)) {
	n := len(vals[0])
	for i, a := range terms {
		thetas := []int64{0}
		if med := median(vals[i]); med > 0 {
			thetas = append(thetas, med)
		}
		for _, theta := range thetas {
			// Support.
			support := 0
			for r := 0; r < n; r++ {
				if vals[i][r] > theta {
					support++
				}
			}
			if support < cfg.MinSupport || support == n {
				continue
			}
			for j, bj := range terms {
				if i == j {
					continue
				}
				// Unconditional and conditional minima of B.
				uncond, cond := vals[j][0], int64(1<<62)
				for r := 0; r < n; r++ {
					if vals[j][r] < uncond {
						uncond = vals[j][r]
					}
					if vals[i][r] > theta && vals[j][r] < cond {
						cond = vals[j][r]
					}
				}
				m := cond - cfg.Slack
				if m <= uncond || m <= bj.lo {
					continue // carries no information beyond bounds
				}
				emit(fmt.Sprintf("imp_%s_gt%d_%s", a.name, theta, bj.name),
					fmt.Sprintf("%s > %d -> %s >= %d", a.ref, theta, bj.ref, m))
			}
		}
	}
}

// mineAggImplications emits the R3-class rules: (A > θ) ⟹ max(V) ≥ m and
// (A > θ) ⟹ min(V) ≤ m', where the burst witness may occur at any position
// — the disjunctive structure that static per-element mining cannot express
// (and that constrained decoding cannot enforce without a solver, §2.2).
func mineAggImplications(terms []term, vals [][]int64, vectors []rules.Field, recs []rules.Record, cfg Config, emit func(string, string)) {
	n := len(recs)
	for _, f := range vectors {
		// Per-record max/min of the vector.
		maxs := make([]int64, n)
		mins := make([]int64, n)
		for r, rec := range recs {
			vs := rec[f.Name]
			mx, mn := vs[0], vs[0]
			for _, v := range vs[1:] {
				if v > mx {
					mx = v
				}
				if v < mn {
					mn = v
				}
			}
			maxs[r], mins[r] = mx, mn
		}
		for i, a := range terms {
			if strings.HasPrefix(a.name, f.Name+"_") || a.name == "sum_"+f.Name {
				continue // don't condition the vector on itself
			}
			thetas := []int64{0}
			if med := median(vals[i]); med > 0 {
				thetas = append(thetas, med)
			}
			for _, theta := range thetas {
				support := 0
				for r := 0; r < n; r++ {
					if vals[i][r] > theta {
						support++
					}
				}
				if support < cfg.MinSupport || support == n {
					continue
				}
				// Conditional and unconditional extremes.
				condMax, uncondMax := int64(1<<62), int64(1<<62)
				for r := 0; r < n; r++ {
					if maxs[r] < uncondMax {
						uncondMax = maxs[r]
					}
					if vals[i][r] > theta && maxs[r] < condMax {
						condMax = maxs[r]
					}
				}
				if m := condMax - cfg.Slack; m > uncondMax && m > f.Lo {
					emit(fmt.Sprintf("impmax_%s_gt%d_%s", a.name, theta, f.Name),
						fmt.Sprintf("%s > %d -> max(%s) >= %d", a.ref, theta, f.Name, m))
				}
				condMin, uncondMin := int64(-1<<62), int64(-1<<62)
				for r := 0; r < n; r++ {
					if mins[r] > uncondMin {
						uncondMin = mins[r]
					}
					if vals[i][r] > theta && mins[r] > condMin {
						condMin = mins[r]
					}
				}
				if m := condMin + cfg.Slack; m < uncondMin && m < f.Hi {
					emit(fmt.Sprintf("impmin_%s_gt%d_%s", a.name, theta, f.Name),
						fmt.Sprintf("%s > %d -> min(%s) <= %d", a.ref, theta, f.Name, m))
				}
			}
		}
	}
}

func median(xs []int64) int64 {
	s := append([]int64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}
