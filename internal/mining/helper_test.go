package mining

import (
	"repro/internal/rules"
	"repro/internal/smt"
)

// newSolverBinding creates a solver with one variable per schema field
// element, for compile-smoke tests.
func newSolverBinding(schema *rules.Schema) (*smt.Solver, *rules.Binding) {
	s := smt.NewSolver()
	return s, rules.Instantiate(s, schema)
}
