package mining

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/rules"
)

func corpus(t *testing.T, racks, perRack int) ([]rules.Record, *rules.Schema) {
	t.Helper()
	ws := dataset.Generate(dataset.Config{Racks: racks, WindowsPerRack: perRack, Seed: 21})
	return dataset.Records(ws), dataset.Schema()
}

func TestMineProducesConsistentRules(t *testing.T) {
	recs, schema := corpus(t, 10, 100)
	rs, err := Mine(recs, schema, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() < 50 {
		t.Errorf("mined only %d rules; expected a NetNomos-scale set", rs.Len())
	}
	// Consistency is asserted inside Mine, but double-check independently.
	for i, rec := range recs {
		vs, err := rs.Violations(rec)
		if err != nil {
			t.Fatal(err)
		}
		if len(vs) > 0 {
			t.Fatalf("record %d violates mined rules %v", i, vs)
		}
	}
}

func TestMineFindsConservation(t *testing.T) {
	recs, schema := corpus(t, 8, 80)
	rs, err := Mine(recs, schema, Config{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rs.Rules {
		if strings.HasPrefix(r.Name, "conserve_sum_I_TotalIngress") {
			found = true
		}
	}
	if !found {
		t.Errorf("miner missed the R2 conservation rule; rules:\n%s", ruleNames(rs))
	}
}

func TestMineFindsBurstImplication(t *testing.T) {
	recs, schema := corpus(t, 10, 150)
	rs, err := Mine(recs, schema, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// R3: Congestion > 0 -> max(I) >= BW/2 holds by construction in the
	// simulator; the miner must discover an impmax rule for it with a
	// threshold of at least BW/2.
	found := false
	for _, r := range rs.Rules {
		if strings.HasPrefix(r.Name, "impmax_Congestion_gt0_I") {
			found = true
			body := rules.NodeString(r.Body)
			if !strings.Contains(body, "max(I) >= ") {
				t.Errorf("unexpected impmax body: %s", body)
			}
		}
	}
	if !found {
		t.Errorf("miner missed the R3-class burst implication; rules:\n%s", ruleNames(rs))
	}
}

func TestMineFieldFilter(t *testing.T) {
	recs, schema := corpus(t, 8, 80)
	rs, err := Mine(recs, schema, Config{Fields: dataset.CoarseFields()})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs.Rules {
		if strings.Contains(rules.NodeString(r.Body), "I[") || strings.Contains(rules.NodeString(r.Body), "(I)") {
			t.Errorf("coarse-only mining produced a fine-grained rule: %s", r)
		}
	}
	if rs.Len() < 20 {
		t.Errorf("coarse-only set has only %d rules", rs.Len())
	}
}

func TestMineSlackWidensBounds(t *testing.T) {
	recs, schema := corpus(t, 6, 60)
	tight, err := Mine(recs, schema, Config{})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Mine(recs, schema, Config{Slack: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Slack can only prune (vacuity) or keep rules, never tighten; the
	// loose set must accept everything the tight set accepts.
	for _, rec := range recs {
		vs, err := loose.Violations(rec)
		if err != nil {
			t.Fatal(err)
		}
		if len(vs) > 0 {
			t.Fatalf("slack rules violated on training data: %v", vs)
		}
	}
	if loose.Len() > tight.Len() {
		t.Errorf("slack increased rule count %d -> %d (vacuity pruning should only shrink)", tight.Len(), loose.Len())
	}
}

func TestMineClassToggles(t *testing.T) {
	recs, schema := corpus(t, 6, 60)
	all, err := Mine(recs, schema, Config{})
	if err != nil {
		t.Fatal(err)
	}
	onlyBounds, err := Mine(recs, schema, Config{
		NoPairwise: true, NoAggregates: true, NoSums: true, NoSmoothness: true, NoImplications: true, NoCounts: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if onlyBounds.Len() >= all.Len() {
		t.Errorf("bounds-only (%d) should be smaller than full set (%d)", onlyBounds.Len(), all.Len())
	}
	for _, r := range onlyBounds.Rules {
		if !strings.HasPrefix(r.Name, "bound_") {
			t.Errorf("unexpected rule class: %s", r.Name)
		}
	}
}

func TestMineEmptyCorpus(t *testing.T) {
	_, schema := corpus(t, 2, 10)
	if _, err := Mine(nil, schema, Config{}); err == nil {
		t.Error("empty corpus should error")
	}
}

func TestMineUnknownFieldFilter(t *testing.T) {
	recs, schema := corpus(t, 2, 10)
	if _, err := Mine(recs, schema, Config{Fields: []string{"DoesNotExist"}}); err == nil {
		t.Error("filter matching no fields should error")
	}
}

// TestMinedRulesGeneralize checks that rules mined on train racks mostly
// hold on unseen test racks — mined hard rules encode physics, not noise.
func TestMinedRulesGeneralize(t *testing.T) {
	ws := dataset.Generate(dataset.Config{Racks: 30, WindowsPerRack: 120, Seed: 77})
	train, test := dataset.Split(ws, 25, 5)
	rs, err := Mine(dataset.Records(train), dataset.Schema(), Config{Slack: 3})
	if err != nil {
		t.Fatal(err)
	}
	pair, _, err := rs.ViolationRate(dataset.Records(test))
	if err != nil {
		t.Fatal(err)
	}
	if pair > 0.01 {
		t.Errorf("mined rules violated on %.2f%% of test (rule,record) pairs; want < 1%%", pair*100)
	}
}

// TestMinedRuleSetCompiles ensures every mined rule lowers to SMT.
func TestMinedRuleSetCompiles(t *testing.T) {
	recs, schema := corpus(t, 8, 80)
	rs, err := Mine(recs, schema, Config{})
	if err != nil {
		t.Fatal(err)
	}
	s, b := newSolverBinding(schema)
	_ = s
	if _, err := rs.CompileAll(b); err != nil {
		t.Fatalf("mined rules failed to compile: %v", err)
	}
}

func ruleNames(rs *rules.RuleSet) string {
	var names []string
	for _, r := range rs.Rules {
		names = append(names, r.Name)
	}
	return strings.Join(names, "\n")
}

func TestMineFindsCountRules(t *testing.T) {
	recs, schema := corpus(t, 10, 150)
	rs, err := Mine(recs, schema, Config{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rs.Rules {
		if strings.HasPrefix(r.Name, "count_I_ge") {
			found = true
			if !strings.Contains(rules.NodeString(r.Body), "count(I >= ") {
				t.Errorf("unexpected count body: %s", rules.NodeString(r.Body))
			}
		}
	}
	if !found {
		t.Errorf("miner missed burst-count rules; rules:\n%s", ruleNames(rs))
	}
}
