// Package router fronts N engine shards with load-aware dispatch. Each shard
// owns a micro-batcher goroutine and its own engine clones (one per domain
// pack, cloned lazily from the pack's compiled bundle — rule compilation
// happens once and the formula is shared read-only; see pack.Compiled). The
// per-pack prefix caches stay registry-owned: a clone shares its parent's
// cache pointer, so snapshots captured on one shard warm decodes on every
// other and hit rates survive sharding.
//
// Dispatch is load-aware and health-aware: Submit sends a job to the
// non-draining shard with the fewest admitted-but-unfinished jobs whose
// bounded queue has room. A shard whose decodes keep tripping the budget or
// panic barriers (FailureThreshold) drains itself: queued jobs are
// resubmitted to its siblings, its engine clones are discarded, and it
// rejoins with fresh state. Determinism makes this safe — output is a
// function of (prompt, seed) only, never of shard placement (DESIGN.md §16).
package router

import (
	"context"
	"errors"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/pack"
	"repro/internal/rules"
)

// ErrOverloaded fails a job that was admitted but could not be placed: its
// shard drained and no sibling had queue room. Callers should surface it as
// backpressure (HTTP 503 + Retry-After), not as a decode failure.
var ErrOverloaded = errors.New("router: all shards at capacity")

// Job is one admitted decode request. The pack is pinned at admission time: a
// hot reload never retargets a queued job, it decodes on the epoch it was
// admitted under.
type Job struct {
	Ctx           context.Context
	Prompt        rules.Record // nil → unconditional generation
	Pack          *pack.Compiled
	Seed          int64
	Decode        core.DecodeCtxFn // nil → engine-default guided decode
	NoPrefixCache bool
	Lookahead     *int
	Start         time.Time
	// Resp must be buffered (cap ≥ 1): shards never block delivering to a
	// caller that already gave up on its deadline.
	Resp chan Result
}

// Result is one job's outcome, tagged with the shard that decoded it.
type Result struct {
	Res       core.Result
	Err       error
	BatchSize int
	Shard     int
}

// Config assembles a Router.
type Config struct {
	// Replicas is the shard count (default 1).
	Replicas int
	// BatchWindow is each shard's coalescing window (default 2ms).
	BatchWindow time.Duration
	// MaxBatch caps records per shard micro-batch (default 32).
	MaxBatch int
	// QueueDepth bounds each shard's admission queue (default 32).
	QueueDepth int
	// Workers is each shard's decode pool size (default GOMAXPROCS).
	Workers int
	// FailureThreshold drains a shard once this many of its lanes have been
	// retired by budget exhaustion or recovered panics since its last drain.
	// 0 disables self-draining.
	FailureThreshold int
	// Logf receives router log lines. May be nil.
	Logf func(format string, args ...any)

	// ObserveBatch, OnLaneError, OnRestart, and OnDrain are metrics hooks;
	// any may be nil. OnLaneError fires once per failed record with the
	// decoding shard and the record's error; OnDrain fires after a shard
	// drained with the number of jobs moved to siblings.
	ObserveBatch func(shard, size int)
	OnLaneError  func(shard int, err error)
	OnRestart    func(shard int)
	OnDrain      func(shard, moved int)
}

func (c *Config) fill() {
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 32
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 32
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
}

// shardEngine pairs a shard's engine clone with the compiled bundle it was
// cloned from, so a hot reload (new *pack.Compiled) forces a fresh clone.
type shardEngine struct {
	pk  *pack.Compiled
	eng *core.Engine
}

// shard is one replica: a bounded queue, a batcher goroutine, and its
// private engine clones. engines is owned by the batcher goroutine.
type shard struct {
	id      int
	queue   chan *Job
	engines map[string]shardEngine

	// inflight counts admitted-but-unfinished jobs: incremented at Submit,
	// decremented when the job's batch settles. This is the load signal
	// dispatch sorts on — unlike len(queue) it still sees a full batch that
	// has been dequeued but is mid-decode.
	inflight atomic.Int64
	failures atomic.Int64 // budget/panic lane retirements since last drain
	draining atomic.Bool
	batches  atomic.Uint64
	drains   atomic.Uint64
}

// ShardStats is one shard's live dispatch state.
type ShardStats struct {
	Shard    int    `json:"shard"`
	Queued   int    `json:"queued"`
	Inflight int    `json:"inflight"` // includes Queued
	Batches  uint64 `json:"batches"`
	Failures uint64 `json:"failures"`
	Drains   uint64 `json:"drains"`
	Draining bool   `json:"draining"`
}

// Router fans jobs out across shards.
type Router struct {
	cfg    Config
	shards []*shard
	stop   chan struct{}
	wg     sync.WaitGroup
	once   sync.Once
}

// New builds a Router and starts one batcher goroutine per shard. Callers
// must Close it.
func New(cfg Config) *Router {
	cfg.fill()
	r := &Router{cfg: cfg, stop: make(chan struct{})}
	for i := 0; i < cfg.Replicas; i++ {
		sh := &shard{id: i, queue: make(chan *Job, cfg.QueueDepth), engines: map[string]shardEngine{}}
		r.shards = append(r.shards, sh)
		r.wg.Add(1)
		go r.batcher(sh)
	}
	return r
}

// Close stops every shard batcher. Jobs still queued are abandoned (their
// contexts expire); call only once callers are drained.
func (r *Router) Close() {
	r.once.Do(func() { close(r.stop) })
	r.wg.Wait()
}

// Replicas returns the shard count.
func (r *Router) Replicas() int { return len(r.shards) }

// Load returns the jobs waiting in shard queues and the total
// admitted-but-unfinished count (which includes the queued ones).
func (r *Router) Load() (queued, inflight int) {
	for _, sh := range r.shards {
		queued += len(sh.queue)
		inflight += int(sh.inflight.Load())
	}
	return queued, inflight
}

// Stats snapshots per-shard dispatch state, ordered by shard id.
func (r *Router) Stats() []ShardStats {
	out := make([]ShardStats, len(r.shards))
	for i, sh := range r.shards {
		out[i] = ShardStats{
			Shard: sh.id, Queued: len(sh.queue), Inflight: int(sh.inflight.Load()),
			Batches: sh.batches.Load(), Failures: uint64(sh.failures.Load()),
			Drains: sh.drains.Load(), Draining: sh.draining.Load(),
		}
	}
	return out
}

// Submit places j on the least-loaded healthy shard, returning the shard id.
// ok is false when every candidate queue is full (the caller should answer
// 429): admission never blocks.
func (r *Router) Submit(j *Job) (shard int, ok bool) {
	return r.submitExcept(j, -1)
}

// submitExcept is Submit skipping one shard id (drain redistribution).
func (r *Router) submitExcept(j *Job, except int) (int, bool) {
	cands := make([]*shard, 0, len(r.shards))
	for _, sh := range r.shards {
		if sh.id == except || sh.draining.Load() {
			continue
		}
		cands = append(cands, sh)
	}
	// Least-inflight first; stable sort keeps shard order as the tiebreak so
	// an idle fleet fills round-robin as each admission bumps the count.
	sort.SliceStable(cands, func(a, b int) bool {
		return cands[a].inflight.Load() < cands[b].inflight.Load()
	})
	for _, sh := range cands {
		sh.inflight.Add(1)
		select {
		case sh.queue <- j:
			return sh.id, true
		default:
			sh.inflight.Add(-1)
		}
	}
	return -1, false
}

func (r *Router) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// batcher supervises one shard's queue consumer, mirroring the single-engine
// daemon's restart semantics: a panic that escapes a batch restarts the loop
// with the shard's engine clones discarded (the panic unwound through one).
func (r *Router) batcher(sh *shard) {
	defer r.wg.Done()
	for !r.batcherLoop(sh) {
		sh.engines = map[string]shardEngine{}
		if r.cfg.OnRestart != nil {
			r.cfg.OnRestart(sh.id)
		}
		r.logf("router: shard %d batcher restarted after panic", sh.id)
	}
}

// batcherLoop consumes sh.queue: first job, then the window stays open for
// BatchWindow (or until MaxBatch), then the batch dispatches. Returns true
// on clean stop; a recovered panic returns false for the supervisor.
func (r *Router) batcherLoop(sh *shard) (stopped bool) {
	defer func() {
		if rec := recover(); rec != nil {
			r.logf("router: shard %d batcher panicked: %v", sh.id, rec)
		}
	}()
	for {
		var first *Job
		select {
		case first = <-sh.queue:
		case <-r.stop:
			return true
		}
		batch := append(make([]*Job, 0, r.cfg.MaxBatch), first)
		timer := time.NewTimer(r.cfg.BatchWindow)
	collect:
		for len(batch) < r.cfg.MaxBatch {
			select {
			case j := <-sh.queue:
				batch = append(batch, j)
			case <-timer.C:
				break collect
			}
		}
		timer.Stop()
		r.runBatch(sh, batch)
		if t := r.cfg.FailureThreshold; t > 0 && sh.failures.Load() >= int64(t) {
			r.drainShard(sh)
		}
	}
}

// runBatch splits one micro-batch by compiled pack and decodes the groups
// concurrently, each on the shard's clone of that pack's engine. Engines are
// resolved before the goroutines spawn (sh.engines belongs to the batcher
// goroutine). A panic escaping a group is re-raised here so the supervisor's
// restart semantics hold; the deferred inflight settle still runs.
func (r *Router) runBatch(sh *shard, batch []*Job) {
	defer sh.inflight.Add(-int64(len(batch)))
	sh.batches.Add(1)
	order := make([]*pack.Compiled, 0, 1)
	groups := make(map[*pack.Compiled][]*Job, 1)
	for _, j := range batch {
		if _, ok := groups[j.Pack]; !ok {
			order = append(order, j.Pack)
		}
		groups[j.Pack] = append(groups[j.Pack], j)
	}
	engines := make(map[*pack.Compiled]*core.Engine, len(order))
	for _, pk := range order {
		eng, err := sh.engineFor(pk)
		if err != nil {
			for _, j := range groups[pk] {
				j.Resp <- Result{Err: err, BatchSize: len(groups[pk]), Shard: sh.id}
			}
			continue
		}
		engines[pk] = eng
	}
	var wg sync.WaitGroup
	panics := make(chan any, len(order))
	for _, pk := range order {
		eng := engines[pk]
		if eng == nil {
			continue
		}
		wg.Add(1)
		go func(pk *pack.Compiled, eng *core.Engine, group []*Job) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					panics <- rec
				}
			}()
			r.runGroup(sh, eng, group)
		}(pk, eng, groups[pk])
	}
	wg.Wait()
	select {
	case rec := <-panics:
		panic(rec)
	default:
	}
}

// engineFor returns the shard's engine clone for pk, cloning afresh when the
// shard has none for the pack or holds one from a superseded reload epoch.
// Only the batcher goroutine calls this.
func (sh *shard) engineFor(pk *pack.Compiled) (*core.Engine, error) {
	name := pk.Def.Name
	if se, ok := sh.engines[name]; ok && se.pk == pk {
		return se.eng, nil
	}
	eng, err := pk.Engine.Clone()
	if err != nil {
		return nil, err
	}
	sh.engines[name] = shardEngine{pk: pk, eng: eng}
	return eng, nil
}

// runGroup decodes one same-pack slice of a micro-batch on eng and delivers
// each job's result, counting budget/panic retirements toward the shard's
// failure score.
func (r *Router) runGroup(sh *shard, eng *core.Engine, group []*Job) {
	if r.cfg.ObserveBatch != nil {
		r.cfg.ObserveBatch(sh.id, len(group))
	}
	reqs := make([]core.BatchRequest, len(group))
	for i, j := range group {
		seed := j.Seed
		reqs[i] = core.BatchRequest{
			Prompt: j.Prompt, Ctx: j.Ctx, Seed: &seed, Decode: j.Decode,
			NoPrefixCache: j.NoPrefixCache, Lookahead: j.Lookahead,
		}
	}
	out, err := eng.DecodeRequests(context.Background(), reqs, r.cfg.Workers, 0, nil)
	if err != nil {
		for _, j := range group {
			j.Resp <- Result{Err: err, BatchSize: len(group), Shard: sh.id}
		}
		return
	}
	for i, j := range group {
		if out[i].Err != nil {
			var pe *core.PanicError
			if errors.Is(out[i].Err, core.ErrBudget) || errors.As(out[i].Err, &pe) {
				sh.failures.Add(1)
			}
			if r.cfg.OnLaneError != nil {
				r.cfg.OnLaneError(sh.id, out[i].Err)
			}
		}
		j.Resp <- Result{Res: out[i].Res, Err: out[i].Err, BatchSize: len(group), Shard: sh.id}
	}
}

// drainShard takes sh out of dispatch, moves its queued jobs to siblings
// (failing them with ErrOverloaded only when nowhere has room), discards its
// engine clones, and rejoins it with a clean failure score. Runs on the
// shard's own batcher goroutine, so touching sh.engines is safe.
func (r *Router) drainShard(sh *shard) {
	sh.draining.Store(true)
	moved, failed := 0, 0
	if len(r.shards) > 1 {
	redistribute:
		for {
			select {
			case j := <-sh.queue:
				sh.inflight.Add(-1)
				if _, ok := r.submitExcept(j, sh.id); ok {
					moved++
				} else {
					failed++
					j.Resp <- Result{Err: ErrOverloaded, Shard: sh.id}
				}
			default:
				break redistribute
			}
		}
	}
	sh.engines = map[string]shardEngine{}
	sh.failures.Store(0)
	sh.drains.Add(1)
	sh.draining.Store(false)
	if r.cfg.OnDrain != nil {
		r.cfg.OnDrain(sh.id, moved)
	}
	r.logf("router: shard %d drained (moved %d, refused %d) and rejoined", sh.id, moved, failed)
}
