package router

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/pack"
	"repro/internal/rules"
	"repro/internal/vocab"
)

// --- Fixtures (mirror the server package's LM mocks) -------------------------

type uniformLM struct{ vocab int }

func (u uniformLM) VocabSize() int { return u.vocab }
func (u uniformLM) NewSession() core.Session {
	return &uniformSession{logits: make([]float32, u.vocab)}
}

type uniformSession struct{ logits []float32 }

func (s *uniformSession) Append(tok int) error { return nil }
func (s *uniformSession) Logits() []float32    { return s.logits }

// gateLM blocks every decode on a shared gate channel until it is closed.
type gateLM struct {
	vocab int
	gate  <-chan struct{}
}

func (g gateLM) VocabSize() int { return g.vocab }
func (g gateLM) NewSession() core.Session {
	return &gateSession{gate: g.gate, logits: make([]float32, g.vocab)}
}

type gateSession struct {
	gate   <-chan struct{}
	logits []float32
}

func (s *gateSession) Append(tok int) error { return nil }
func (s *gateSession) Logits() []float32    { <-s.gate; return s.logits }

const testRulesText = `
const BW = 60
const T  = 5
rule r1: forall t in 0..T-1: 0 <= I[t] and I[t] <= BW
rule r2: sum(I) == TotalIngress
rule r3: Congestion > 0 -> max(I) >= BW/2
`

func testPack(t *testing.T, lm core.LM, hook func(core.FaultSite) error) *pack.Compiled {
	t.Helper()
	schema := rules.MustSchema(
		rules.Field{Name: "TotalIngress", Kind: rules.Scalar, Lo: 0, Hi: 300},
		rules.Field{Name: "Congestion", Kind: rules.Scalar, Lo: 0, Hi: 100},
		rules.Field{Name: "I", Kind: rules.Vector, Len: 5, Lo: 0, Hi: 60},
	)
	rs, err := rules.ParseRuleSet(testRulesText, schema)
	if err != nil {
		t.Fatal(err)
	}
	slots, err := core.TelemetryGrammar(schema, []string{"TotalIngress", "Congestion"}, "I")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(core.Config{
		LM: lm, Tok: vocab.Telemetry(), Schema: schema,
		Rules: rs, Slots: slots, Mode: core.LeJIT, FaultHook: hook,
	})
	if err != nil {
		t.Fatal(err)
	}
	pk, err := pack.FromEngine("default", eng, rs, schema)
	if err != nil {
		t.Fatal(err)
	}
	return pk
}

func newJob(pk *pack.Compiled, ingress int64, seed int64) *Job {
	return &Job{
		Ctx:    context.Background(),
		Prompt: rules.Record{"TotalIngress": {ingress}, "Congestion": {0}},
		Pack:   pk,
		Seed:   seed,
		Start:  time.Now(),
		Resp:   make(chan Result, 1),
	}
}

// TestSubmitSpreadsLoad: with an idle fleet, consecutive admissions fill
// shards round-robin (each Submit bumps the chosen shard's inflight count),
// and every job decodes on the shard it was admitted to.
func TestSubmitSpreadsLoad(t *testing.T) {
	gate := make(chan struct{})
	pk := testPack(t, gateLM{vocab: vocab.Telemetry().Size(), gate: gate}, nil)
	r := New(Config{Replicas: 4, BatchWindow: time.Millisecond, QueueDepth: 4, Workers: 1})
	defer r.Close()

	const n = 8
	jobs := make([]*Job, n)
	admitted := make([]int, n)
	for i := range jobs {
		jobs[i] = newJob(pk, 60+10*int64(i), int64(i))
		sh, ok := r.Submit(jobs[i])
		if !ok {
			t.Fatalf("job %d refused with capacity to spare", i)
		}
		admitted[i] = sh
	}
	for i, sh := range admitted {
		if want := i % 4; sh != want {
			t.Errorf("job %d admitted to shard %d, want %d (round-robin fill)", i, sh, want)
		}
	}
	close(gate)
	for i, j := range jobs {
		res := <-j.Resp
		if res.Err != nil {
			t.Fatalf("job %d: %v", i, res.Err)
		}
		if res.Shard != admitted[i] {
			t.Errorf("job %d decoded on shard %d, admitted to %d", i, res.Shard, admitted[i])
		}
	}
	if q, inflight := r.Load(); q != 0 || inflight != 0 {
		t.Errorf("idle router reports queued=%d inflight=%d", q, inflight)
	}
}

// TestSubmitRejectsWhenFull: once every shard holds a decoding batch and a
// full queue, Submit refuses instead of blocking.
func TestSubmitRejectsWhenFull(t *testing.T) {
	gate := make(chan struct{})
	pk := testPack(t, gateLM{vocab: vocab.Telemetry().Size(), gate: gate}, nil)
	dispatched := make(chan int, 8)
	r := New(Config{
		Replicas: 2, BatchWindow: time.Millisecond, MaxBatch: 1, QueueDepth: 1, Workers: 1,
		ObserveBatch: func(shard, size int) { dispatched <- shard },
	})
	defer r.Close()
	defer close(gate) // LIFO: unblock the gated decodes before Close waits on the batchers

	// Two jobs occupy the two batchers (each held on the gate)...
	for i := 0; i < 2; i++ {
		if _, ok := r.Submit(newJob(pk, 100, int64(i))); !ok {
			t.Fatalf("job %d refused", i)
		}
	}
	for i := 0; i < 2; i++ {
		select {
		case <-dispatched:
		case <-time.After(5 * time.Second):
			t.Fatal("batchers never picked up the gating jobs")
		}
	}
	// ...two more fill the depth-1 queues...
	for i := 2; i < 4; i++ {
		if _, ok := r.Submit(newJob(pk, 100, int64(i))); !ok {
			t.Fatalf("job %d refused with queue room left", i)
		}
	}
	// ...and the fifth must bounce.
	if sh, ok := r.Submit(newJob(pk, 100, 4)); ok {
		t.Fatalf("job admitted to shard %d past full capacity", sh)
	}
}

// TestDrainAfterFailures: a shard whose decode trips the budget barrier
// crosses FailureThreshold, drains itself (fresh engine clones, failure score
// reset), rejoins dispatch, and keeps serving clean traffic.
func TestDrainAfterFailures(t *testing.T) {
	const poisoned = 250
	hook := func(fs core.FaultSite) error {
		if fs.Known["TotalIngress"][0] == poisoned && fs.Tokens >= 2 {
			return fmt.Errorf("injected fault: %w", core.ErrBudget)
		}
		return nil
	}
	pk := testPack(t, uniformLM{vocab: vocab.Telemetry().Size()}, hook)
	drained := make(chan int, 4)
	r := New(Config{
		Replicas: 2, BatchWindow: time.Millisecond, Workers: 1, FailureThreshold: 1,
		OnDrain: func(shard, moved int) { drained <- shard },
	})
	defer r.Close()

	bad := newJob(pk, poisoned, 1)
	if _, ok := r.Submit(bad); !ok {
		t.Fatal("poisoned job refused")
	}
	res := <-bad.Resp
	if !errors.Is(res.Err, core.ErrBudget) {
		t.Fatalf("poisoned job err = %v, want ErrBudget", res.Err)
	}
	var sick int
	select {
	case sick = <-drained:
	case <-time.After(5 * time.Second):
		t.Fatal("no shard drained after crossing the failure threshold")
	}
	st := r.Stats()
	if st[sick].Drains != 1 {
		t.Errorf("shard %d drains = %d, want 1", sick, st[sick].Drains)
	}
	if st[sick].Failures != 0 {
		t.Errorf("shard %d failure score %d not reset by drain", sick, st[sick].Failures)
	}

	// The fleet — including the rejoined shard — keeps serving.
	jobs := make([]*Job, 4)
	for i := range jobs {
		jobs[i] = newJob(pk, 100+int64(i), int64(i))
		if _, ok := r.Submit(jobs[i]); !ok {
			t.Fatalf("post-drain job %d refused", i)
		}
	}
	for i, j := range jobs {
		if res := <-j.Resp; res.Err != nil {
			t.Fatalf("post-drain job %d: %v", i, res.Err)
		}
	}
}
