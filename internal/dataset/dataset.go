// Package dataset simulates the per-rack datacenter telemetry the paper
// evaluates on (the Meta dataset of Ghabashneh et al., IMC '22 — proprietary
// traces we substitute with a generative simulator; see DESIGN.md §1).
//
// Each record is one coarse-grained measurement window for one rack:
//
//   - fine-grained ingress volumes I[0..T-1] (one per millisecond-scale
//     sub-interval, capped by the link bandwidth BW),
//   - coarse counters derived from the fine series with realistic noise:
//     TotalIngress (conservation: Σ I_t), Congestion (ECN-marked bytes —
//     positive only when a burst reached half the bandwidth, the paper's
//     R3), Retrans (retransmissions, bounded by congestion), Egress
//     (response traffic correlated with ingress), and Conns (active
//     connections, correlated with load).
//
// Traffic follows a per-rack Markov-modulated on/off process with
// heavy-tailed burst volumes, giving the cross-signal correlations the
// paper's mined rules capture and enough stochasticity that an
// unconstrained LM violates them at a double-digit rate.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/rules"
)

// Canonical dimensioning, matching the paper's running example (§2.1):
// T = 5 fine-grained intervals per window, BW = 60 (normalized volume units).
const (
	T  = 5
	BW = 60
	// MaxCoarse bounds TotalIngress and Egress (T·BW).
	MaxCoarse = T * BW
	// MaxCongestion bounds the ECN-marked byte counter.
	MaxCongestion = 100
	// MaxRetrans bounds the retransmission counter.
	MaxRetrans = 100
	// MaxConns bounds the active-connection counter.
	MaxConns = 40
)

// FineField is the name of the fine-grained vector field.
const FineField = "I"

// CoarseFields lists the coarse scalar fields in serialization order.
func CoarseFields() []string {
	return []string{"TotalIngress", "Congestion", "Retrans", "Egress", "Conns"}
}

// Schema returns the canonical telemetry schema shared by the whole system.
func Schema() *rules.Schema {
	return rules.MustSchema(
		rules.Field{Name: "TotalIngress", Kind: rules.Scalar, Lo: 0, Hi: MaxCoarse},
		rules.Field{Name: "Congestion", Kind: rules.Scalar, Lo: 0, Hi: MaxCongestion},
		rules.Field{Name: "Retrans", Kind: rules.Scalar, Lo: 0, Hi: MaxRetrans},
		rules.Field{Name: "Egress", Kind: rules.Scalar, Lo: 0, Hi: MaxCoarse},
		rules.Field{Name: "Conns", Kind: rules.Scalar, Lo: 0, Hi: MaxConns},
		rules.Field{Name: FineField, Kind: rules.Vector, Len: T, Lo: 0, Hi: BW},
	)
}

// Window is one telemetry record attributed to a rack.
type Window struct {
	Rack int
	Rec  rules.Record
}

// Config parameterizes the simulator. The defaults reproduce the paper's
// evaluation scale: 90 racks (80 train / 10 test), enough windows per rack
// that the test split exceeds 30K records when WindowsPerRack ≥ 3000 — the
// experiment drivers use a smaller default and scale via flags.
type Config struct {
	Racks          int   // number of racks (0 → 90)
	WindowsPerRack int   // windows per rack (0 → 400)
	Seed           int64 // master seed

	// DiurnalAmplitude ∈ [0,1] modulates each rack's duty cycle over a
	// daily cycle of DiurnalPeriod windows (0 → no diurnal pattern).
	// Datacenter racks show strong time-of-day load swings; this knob
	// injects them without breaking any physical invariant.
	DiurnalAmplitude float64
	// DiurnalPeriod is the cycle length in windows (0 → 48).
	DiurnalPeriod int
	// AnomalyRate is the per-window probability of an incident window:
	// sustained line-rate bursts with heavy ECN marking (0 → none).
	// Anomalies still satisfy R1–R3 — they are extreme, not invalid.
	AnomalyRate float64
}

func (c *Config) fill() {
	if c.Racks == 0 {
		c.Racks = 90
	}
	if c.WindowsPerRack == 0 {
		c.WindowsPerRack = 400
	}
	if c.DiurnalPeriod == 0 {
		c.DiurnalPeriod = 48
	}
}

// rackProfile holds one rack's traffic personality, drawn per rack so that
// racks differ (the paper splits train/test by rack, which only stresses
// generalization if racks are heterogeneous).
type rackProfile struct {
	pBurst    float64 // chance an on-period escalates to a burst
	pOn       float64 // on/off duty cycle
	meanLoad  float64 // mean per-interval volume when on
	burstSkew float64 // heavy-tail shape for burst volumes
	egressMul float64 // egress-to-ingress ratio
	connBase  int64   // baseline connection count
}

func drawProfile(rng *rand.Rand) rackProfile {
	return rackProfile{
		pBurst:    0.15 + 0.25*rng.Float64(),
		pOn:       0.4 + 0.5*rng.Float64(),
		meanLoad:  6 + 14*rng.Float64(),
		burstSkew: 1.2 + rng.Float64(),
		egressMul: 0.5 + 0.8*rng.Float64(),
		connBase:  int64(4 + rng.Intn(12)),
	}
}

// Generate produces the full corpus deterministically from the seed.
func Generate(cfg Config) []Window {
	cfg.fill()
	master := rand.New(rand.NewSource(cfg.Seed))
	out := make([]Window, 0, cfg.Racks*cfg.WindowsPerRack)
	for rack := 0; rack < cfg.Racks; rack++ {
		rng := rand.New(rand.NewSource(master.Int63()))
		prof := drawProfile(rng)
		// Markov on/off state persists across windows within a rack.
		on := rng.Float64() < prof.pOn
		for w := 0; w < cfg.WindowsPerRack; w++ {
			// Diurnal modulation of the on-probability.
			pOnBoost := 0.0
			if cfg.DiurnalAmplitude > 0 {
				phase := 2 * math.Pi * float64(w) / float64(cfg.DiurnalPeriod)
				pOnBoost = cfg.DiurnalAmplitude * math.Sin(phase)
			}
			// State transitions between windows.
			if on {
				if rng.Float64() < clamp01(0.25-pOnBoost*0.2) {
					on = false
				}
			} else if rng.Float64() < clamp01(0.45+pOnBoost*0.4) {
				on = true
			}
			if cfg.AnomalyRate > 0 && rng.Float64() < cfg.AnomalyRate {
				out = append(out, Window{Rack: rack, Rec: genAnomaly(rng)})
				continue
			}
			out = append(out, Window{Rack: rack, Rec: genWindow(rng, prof, on)})
		}
	}
	return out
}

// genWindow synthesizes one record obeying the physical invariants:
// conservation (TotalIngress = Σ I), capacity (I_t ≤ BW), and the
// ECN-causality rule (Congestion > 0 ⟹ max I ≥ BW/2).
func genWindow(rng *rand.Rand, prof rackProfile, on bool) rules.Record {
	fine := make([]int64, T)
	burst := false
	for t := 0; t < T; t++ {
		var v float64
		switch {
		case !on:
			// idle: sparse background chatter
			if rng.Float64() < 0.3 {
				v = rng.ExpFloat64() * 2
			}
		case rng.Float64() < prof.pBurst:
			// burst: heavy-tailed, at least half bandwidth
			v = float64(BW)/2 + math.Min(rng.ExpFloat64()*prof.burstSkew*8, float64(BW)/2)
			burst = true
		default:
			// steady load
			v = prof.meanLoad * (0.5 + rng.Float64())
		}
		if v < 0 {
			v = 0
		}
		if v > BW {
			v = BW
		}
		fine[t] = int64(math.Round(v))
		if fine[t] >= BW/2 {
			burst = true
		}
	}

	var total int64
	var maxI int64
	for _, v := range fine {
		total += v
		if v > maxI {
			maxI = v
		}
	}

	// Congestion: ECN marks appear only with a genuine burst (R3 holds by
	// construction) and scale with how far the burst exceeded 3/4 BW.
	var congestion int64
	if burst && maxI >= BW/2 {
		excess := float64(0)
		for _, v := range fine {
			if d := float64(v) - 0.75*BW; d > 0 {
				excess += d
			}
		}
		congestion = int64(math.Round(excess*2 + rng.Float64()*6))
		if maxI >= BW/2 && congestion == 0 && rng.Float64() < 0.5 {
			congestion = 1 + int64(rng.Intn(3))
		}
		if congestion > MaxCongestion {
			congestion = MaxCongestion
		}
	}

	// Retransmissions trail congestion (never exceed it) with noise.
	var retrans int64
	if congestion > 0 {
		retrans = int64(rng.Float64() * float64(congestion) * 0.8)
	}

	// Egress correlates with ingress through the rack's response ratio.
	egress := int64(math.Round(float64(total)*prof.egressMul + rng.NormFloat64()*4))
	if egress < 0 {
		egress = 0
	}
	if egress > MaxCoarse {
		egress = MaxCoarse
	}

	// Connections scale gently with load.
	conns := prof.connBase + total/30 + int64(rng.Intn(4))
	if conns > MaxConns {
		conns = MaxConns
	}
	if conns < 1 {
		conns = 1
	}

	return rules.Record{
		"TotalIngress": {total},
		"Congestion":   {congestion},
		"Retrans":      {retrans},
		"Egress":       {egress},
		"Conns":        {conns},
		FineField:      fine,
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// genAnomaly synthesizes an incident window: sustained near-line-rate
// ingress with heavy ECN marking and retransmissions. All invariants hold
// (conservation, capacity, the burst-causality rule) — anomalies live in the
// extreme tail of the legitimate space.
func genAnomaly(rng *rand.Rand) rules.Record {
	fine := make([]int64, T)
	var total int64
	for t := 0; t < T; t++ {
		v := int64(BW) - int64(rng.Intn(BW/4))
		fine[t] = v
		total += v
	}
	congestion := int64(MaxCongestion) - int64(rng.Intn(20))
	retrans := congestion - int64(rng.Intn(int(congestion/2)+1))
	egress := total - int64(rng.Intn(40))
	if egress > MaxCoarse {
		egress = MaxCoarse
	}
	conns := int64(MaxConns) - int64(rng.Intn(8))
	return rules.Record{
		"TotalIngress": {total},
		"Congestion":   {congestion},
		"Retrans":      {retrans},
		"Egress":       {egress},
		"Conns":        {conns},
		FineField:      fine,
	}
}

// Split partitions windows into train/test by rack id: racks
// [0, trainRacks) train, [trainRacks, trainRacks+testRacks) test, matching
// the paper's 80-train / 10-test split.
func Split(ws []Window, trainRacks, testRacks int) (train, test []Window) {
	for _, w := range ws {
		switch {
		case w.Rack < trainRacks:
			train = append(train, w)
		case w.Rack < trainRacks+testRacks:
			test = append(test, w)
		}
	}
	return train, test
}

// Records projects windows to bare records.
func Records(ws []Window) []rules.Record {
	out := make([]rules.Record, len(ws))
	for i, w := range ws {
		out[i] = w.Rec
	}
	return out
}

// Format renders a record in the LM text format:
//
//	TotalIngress,Congestion,Retrans,Egress,Conns|I0,I1,I2,I3,I4\n
//
// Coarse fields come first so that the same trained model serves both tasks:
// imputation prompts with the coarse prefix; synthesis starts from BOS.
func Format(rec rules.Record) string {
	var b strings.Builder
	for i, f := range CoarseFields() {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatInt(rec[f][0], 10))
	}
	b.WriteByte('|')
	for i, v := range rec[FineField] {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatInt(v, 10))
	}
	b.WriteByte('\n')
	return b.String()
}

// ParseLine inverts Format. It validates shape but not domains; callers that
// need domain guarantees should run Schema().Validate on the result.
func ParseLine(line string) (rules.Record, error) {
	line = strings.TrimSuffix(line, "\n")
	parts := strings.Split(line, "|")
	if len(parts) != 2 {
		return nil, fmt.Errorf("dataset: line %q: want exactly one '|'", line)
	}
	coarse := strings.Split(parts[0], ",")
	names := CoarseFields()
	if len(coarse) != len(names) {
		return nil, fmt.Errorf("dataset: line %q: %d coarse values, want %d", line, len(coarse), len(names))
	}
	rec := rules.Record{}
	for i, s := range coarse {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: coarse field %s: %v", names[i], err)
		}
		rec[names[i]] = []int64{v}
	}
	fine := strings.Split(parts[1], ",")
	if len(fine) != T {
		return nil, fmt.Errorf("dataset: line %q: %d fine values, want %d", line, len(fine), T)
	}
	vs := make([]int64, T)
	for i, s := range fine {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: fine value %d: %v", i, err)
		}
		vs[i] = v
	}
	rec[FineField] = vs
	return rec, nil
}

// Prompt renders the imputation prompt for a record: the coarse prefix up to
// and including the '|' separator.
func Prompt(rec rules.Record) string {
	s := Format(rec)
	return s[:strings.IndexByte(s, '|')+1]
}
