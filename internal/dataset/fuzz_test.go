package dataset

import "testing"

// FuzzParseLine: arbitrary text must parse or error, never panic, and
// anything accepted must round-trip through Format.
func FuzzParseLine(f *testing.F) {
	f.Add("100,8,2,90,12|20,15,25,30,10")
	f.Add("0,0,0,0,0|0,0,0,0,0")
	f.Add("|")
	f.Add("1,2,3,4,5|6,7,8,9")
	f.Add("a|b")
	f.Add("1|2|3")
	f.Add("999999999999999999999,0,0,0,0|0,0,0,0,0")
	f.Fuzz(func(t *testing.T, line string) {
		rec, err := ParseLine(line)
		if err != nil {
			return
		}
		back, err := ParseLine(Format(rec))
		if err != nil {
			t.Fatalf("Format of accepted record unparseable: %v", err)
		}
		if Format(back) != Format(rec) {
			t.Fatalf("round trip unstable: %q vs %q", Format(back), Format(rec))
		}
	})
}
