package dataset

import (
	"strings"
	"testing"

	"repro/internal/rules"
)

func TestGenerateShapeAndDomains(t *testing.T) {
	ws := Generate(Config{Racks: 6, WindowsPerRack: 50, Seed: 1})
	if len(ws) != 300 {
		t.Fatalf("got %d windows, want 300", len(ws))
	}
	schema := Schema()
	for i, w := range ws {
		if err := schema.Validate(w.Rec); err != nil {
			t.Fatalf("window %d: %v", i, err)
		}
		if w.Rack < 0 || w.Rack >= 6 {
			t.Fatalf("window %d rack %d", i, w.Rack)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Racks: 3, WindowsPerRack: 20, Seed: 42})
	b := Generate(Config{Racks: 3, WindowsPerRack: 20, Seed: 42})
	for i := range a {
		sa, sb := Format(a[i].Rec), Format(b[i].Rec)
		if sa != sb {
			t.Fatalf("window %d differs: %q vs %q", i, sa, sb)
		}
	}
	c := Generate(Config{Racks: 3, WindowsPerRack: 20, Seed: 43})
	same := true
	for i := range a {
		if Format(a[i].Rec) != Format(c[i].Rec) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical corpora")
	}
}

// TestPhysicalInvariants verifies the ground truth obeys the paper's R1-R3
// (so the miner will discover them with full confidence).
func TestPhysicalInvariants(t *testing.T) {
	ws := Generate(Config{Racks: 10, WindowsPerRack: 200, Seed: 7})
	for i, w := range ws {
		fine := w.Rec[FineField]
		var sum, maxI int64
		for _, v := range fine {
			if v < 0 || v > BW {
				t.Fatalf("window %d: R1 violated: I=%v", i, fine)
			}
			sum += v
			if v > maxI {
				maxI = v
			}
		}
		if sum != w.Rec["TotalIngress"][0] {
			t.Fatalf("window %d: R2 violated: sum %d != TotalIngress %d", i, sum, w.Rec["TotalIngress"][0])
		}
		if w.Rec["Congestion"][0] > 0 && maxI < BW/2 {
			t.Fatalf("window %d: R3 violated: congestion %d with max I %d", i, w.Rec["Congestion"][0], maxI)
		}
		if w.Rec["Retrans"][0] > w.Rec["Congestion"][0] {
			t.Fatalf("window %d: retrans %d exceeds congestion %d", i, w.Rec["Retrans"][0], w.Rec["Congestion"][0])
		}
	}
}

// TestCorpusDiversity guards against degenerate generators: the corpus must
// contain idle, loaded, and burst windows.
func TestCorpusDiversity(t *testing.T) {
	ws := Generate(Config{Racks: 20, WindowsPerRack: 100, Seed: 3})
	var idle, congested, busy int
	for _, w := range ws {
		ti := w.Rec["TotalIngress"][0]
		switch {
		case ti == 0:
			idle++
		case w.Rec["Congestion"][0] > 0:
			congested++
		default:
			busy++
		}
	}
	n := len(ws)
	if idle == 0 || congested < n/20 || busy < n/10 {
		t.Errorf("degenerate corpus: idle=%d congested=%d busy=%d of %d", idle, congested, busy, n)
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	ws := Generate(Config{Racks: 4, WindowsPerRack: 25, Seed: 11})
	for i, w := range ws {
		line := Format(w.Rec)
		if !strings.HasSuffix(line, "\n") {
			t.Fatalf("window %d: no trailing newline: %q", i, line)
		}
		rec, err := ParseLine(line)
		if err != nil {
			t.Fatalf("window %d: %v", i, err)
		}
		if Format(rec) != line {
			t.Fatalf("window %d: round trip %q -> %q", i, line, Format(rec))
		}
	}
}

func TestParseLineErrors(t *testing.T) {
	bad := []string{
		"",
		"1,2,3,4,5",
		"1,2,3,4|1,2,3,4,5",
		"1,2,3,4,5|1,2,3,4",
		"1,2,x,4,5|1,2,3,4,5",
		"1,2,3,4,5|1,2,3,4,y",
		"1|2|3",
	}
	for _, line := range bad {
		if _, err := ParseLine(line); err == nil {
			t.Errorf("ParseLine(%q) should fail", line)
		}
	}
}

func TestPrompt(t *testing.T) {
	rec := rules.Record{
		"TotalIngress": {100}, "Congestion": {8}, "Retrans": {2},
		"Egress": {90}, "Conns": {12}, FineField: {20, 15, 25, 30, 10},
	}
	p := Prompt(rec)
	if p != "100,8,2,90,12|" {
		t.Errorf("Prompt = %q", p)
	}
	if !strings.HasPrefix(Format(rec), p) {
		t.Error("Prompt must be a prefix of Format")
	}
}

func TestSplitByRack(t *testing.T) {
	ws := Generate(Config{Racks: 10, WindowsPerRack: 10, Seed: 5})
	train, test := Split(ws, 8, 2)
	if len(train) != 80 || len(test) != 20 {
		t.Fatalf("split %d/%d, want 80/20", len(train), len(test))
	}
	for _, w := range train {
		if w.Rack >= 8 {
			t.Fatal("train contains test rack")
		}
	}
	for _, w := range test {
		if w.Rack < 8 || w.Rack >= 10 {
			t.Fatal("test rack out of range")
		}
	}
}

func TestRecordsProjection(t *testing.T) {
	ws := Generate(Config{Racks: 2, WindowsPerRack: 3, Seed: 1})
	recs := Records(ws)
	if len(recs) != len(ws) {
		t.Fatalf("len %d vs %d", len(recs), len(ws))
	}
	for i := range recs {
		if Format(recs[i]) != Format(ws[i].Rec) {
			t.Fatal("projection mismatch")
		}
	}
}

func TestSchemaMatchesConstants(t *testing.T) {
	s := Schema()
	f, ok := s.Field(FineField)
	if !ok || f.Len != T || f.Hi != BW {
		t.Errorf("fine field: %+v", f)
	}
	for _, name := range CoarseFields() {
		if _, ok := s.Field(name); !ok {
			t.Errorf("coarse field %s missing from schema", name)
		}
	}
}

// TestDiurnalPatternCreatesLoadCycle: with diurnal modulation on, load must
// correlate with the cycle phase (peak-half mean load exceeds trough-half).
func TestDiurnalPatternCreatesLoadCycle(t *testing.T) {
	cfg := Config{Racks: 20, WindowsPerRack: 96, Seed: 13, DiurnalAmplitude: 0.9, DiurnalPeriod: 48}
	ws := Generate(cfg)
	var peak, trough float64
	var nPeak, nTrough int
	for i, w := range ws {
		// Windows are emitted rack-major in order, so the within-rack
		// index is the position modulo WindowsPerRack.
		idx := i % cfg.WindowsPerRack
		phase := float64(idx%cfg.DiurnalPeriod) / float64(cfg.DiurnalPeriod)
		ti := float64(w.Rec["TotalIngress"][0])
		if phase < 0.5 { // sin > 0: boosted duty cycle
			peak += ti
			nPeak++
		} else {
			trough += ti
			nTrough++
		}
	}
	peak /= float64(nPeak)
	trough /= float64(nTrough)
	if peak <= trough*1.1 {
		t.Errorf("no diurnal signal: peak-half mean %.1f vs trough-half %.1f", peak, trough)
	}
	// And every window still validates.
	schema := Schema()
	for i, w := range ws {
		if err := schema.Validate(w.Rec); err != nil {
			t.Fatalf("window %d: %v", i, err)
		}
	}
}

// TestAnomalyInjection: anomaly windows appear at roughly the configured
// rate, sit in the extreme tail, and still satisfy every invariant.
func TestAnomalyInjection(t *testing.T) {
	cfg := Config{Racks: 10, WindowsPerRack: 200, Seed: 17, AnomalyRate: 0.05}
	ws := Generate(cfg)
	extreme := 0
	for i, w := range ws {
		if err := Schema().Validate(w.Rec); err != nil {
			t.Fatalf("window %d: %v", i, err)
		}
		fine := w.Rec[FineField]
		var sum, maxI int64
		for _, v := range fine {
			sum += v
			if v > maxI {
				maxI = v
			}
		}
		if sum != w.Rec["TotalIngress"][0] {
			t.Fatalf("window %d: conservation broken", i)
		}
		if w.Rec["Congestion"][0] > 0 && maxI < BW/2 {
			t.Fatalf("window %d: R3 broken", i)
		}
		if w.Rec["TotalIngress"][0] > 250 {
			extreme++
		}
	}
	rate := float64(extreme) / float64(len(ws))
	if rate < 0.02 || rate > 0.12 {
		t.Errorf("extreme-window rate %.3f, expected near the 5%% anomaly rate", rate)
	}
	// Without anomalies such windows are essentially absent.
	base := Generate(Config{Racks: 10, WindowsPerRack: 200, Seed: 17})
	baseExtreme := 0
	for _, w := range base {
		if w.Rec["TotalIngress"][0] > 250 {
			baseExtreme++
		}
	}
	if baseExtreme >= extreme {
		t.Errorf("anomaly injection indistinguishable from baseline: %d vs %d", baseExtreme, extreme)
	}
}
