package prefixcache

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/nn"
	"repro/internal/smt"
)

var (
	testModelOnce sync.Once
	testModel     *nn.Model
)

func model(t testing.TB) *nn.Model {
	testModelOnce.Do(func() {
		m, err := nn.New(nn.Config{Vocab: 16, Ctx: 64, Dim: 8, Heads: 2, Layers: 1}, 3)
		if err != nil {
			panic(err)
		}
		testModel = m
	})
	return testModel
}

// sessFor builds a frozen session that has consumed exactly key.
func sessFor(t testing.TB, key []int) *nn.Session {
	s := model(t).NewSession()
	for _, tok := range key {
		if err := s.Append(tok); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func snapFor(t testing.TB, key []int, epoch uint64, slots int) *Snapshot {
	return &Snapshot{
		Sess:      sessFor(t, key),
		Model:     map[smt.Var]int64{smt.Var(1): 42},
		RuleEpoch: epoch,
		Slots:     slots,
	}
}

func TestLongestPrefixLookup(t *testing.T) {
	c := New(64 << 20)
	short := []int{1, 5, 6}
	long := []int{1, 5, 6, 7, 8}
	if !c.Insert(short, snapFor(t, short, 9, 1)) {
		t.Fatal("insert short rejected")
	}
	if !c.Insert(long, snapFor(t, long, 9, 2)) {
		t.Fatal("insert long rejected")
	}

	cases := []struct {
		key        []int
		wantTokens int // 0 = miss
		wantSlots  int
	}{
		{[]int{1, 5, 6, 7, 8, 9, 9}, 5, 2}, // deepest wins
		{[]int{1, 5, 6, 7, 9}, 3, 1},       // diverges inside long's edge
		{[]int{1, 5, 6}, 3, 1},             // exact short
		{[]int{1, 5}, 0, 0},                // shorter than any entry
		{[]int{2, 5, 6}, 0, 0},             // diverges at root
		{nil, 0, 0},
	}
	for i, tc := range cases {
		h := c.Lookup(tc.key, 9)
		if tc.wantTokens == 0 {
			if h != nil {
				t.Fatalf("case %d: want miss, got %d tokens", i, h.Tokens)
			}
			continue
		}
		if h == nil {
			t.Fatalf("case %d: want hit of %d tokens, got miss", i, tc.wantTokens)
		}
		if h.Tokens != tc.wantTokens || h.Slots != tc.wantSlots {
			t.Fatalf("case %d: got (%d tokens, %d slots), want (%d, %d)",
				i, h.Tokens, h.Slots, tc.wantTokens, tc.wantSlots)
		}
		if h.Sess.Len() != tc.wantTokens {
			t.Fatalf("case %d: restored session at %d tokens, want %d", i, h.Sess.Len(), tc.wantTokens)
		}
		if h.Model[smt.Var(1)] != 42 {
			t.Fatalf("case %d: model not restored", i)
		}
		// The hit is owned: mutating it must not corrupt the cached copy.
		h.Model[smt.Var(1)] = -1
		if err := h.Sess.Append(2); err != nil {
			t.Fatal(err)
		}
		h.Sess.Release()
	}

	st := c.Stats()
	if st.Hits != 3 || st.Misses != 3 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 3 hits, 3 misses, 2 entries", st)
	}
}

func TestStaleEpochMissesAndDrops(t *testing.T) {
	c := New(64 << 20)
	key := []int{1, 2, 3, 4}
	if !c.Insert(key, snapFor(t, key, 7, 1)) {
		t.Fatal("insert rejected")
	}
	// A different rule epoch must miss — and purge the stale entry.
	if h := c.Lookup(key, 8); h != nil {
		t.Fatalf("stale snapshot served: %d tokens", h.Tokens)
	}
	st := c.Stats()
	if st.Entries != 0 || st.Evictions != 1 {
		t.Fatalf("stale entry not dropped: %+v", st)
	}
	// Even the capturing epoch now misses: the entry is gone, not hidden.
	if h := c.Lookup(key, 7); h != nil {
		t.Fatal("dropped entry still served")
	}

	// Same-key insert at a new epoch replaces rather than duplicates.
	if !c.Insert(key, snapFor(t, key, 7, 1)) {
		t.Fatal("reinsert rejected")
	}
	if !c.Insert(key, snapFor(t, key, 8, 1)) {
		t.Fatal("cross-epoch replacement rejected")
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("replacement duplicated: %+v", st)
	}
	if h := c.Lookup(key, 8); h == nil {
		t.Fatal("replacement not served")
	} else {
		h.Sess.Release()
	}
}

func TestDuplicateInsertRejected(t *testing.T) {
	c := New(64 << 20)
	key := []int{1, 2, 3}
	if !c.Insert(key, snapFor(t, key, 5, 1)) {
		t.Fatal("first insert rejected")
	}
	if c.NeedsInsert(key, 5) {
		t.Fatal("NeedsInsert true for cached key")
	}
	if !c.NeedsInsert(key, 6) {
		t.Fatal("NeedsInsert false for stale-epoch key")
	}
	if !c.NeedsInsert([]int{1, 2}, 5) {
		t.Fatal("NeedsInsert false for interior prefix")
	}
	if c.Insert(key, snapFor(t, key, 5, 1)) {
		t.Fatal("duplicate insert accepted")
	}
	if st := c.Stats(); st.Entries != 1 || st.Inserts != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUEvictionByBytes(t *testing.T) {
	one := snapFor(t, []int{1, 2}, 1, 1)
	per := one.Sess.KVBytes() + 16 + 2*8 + entryOverhead
	one.Sess.Release()

	// Budget for exactly three single-page entries.
	c := New(3 * per)
	keys := [][]int{{1, 2}, {2, 3}, {3, 4}, {4, 5}}
	for _, k := range keys[:3] {
		if !c.Insert(k, snapFor(t, k, 1, 1)) {
			t.Fatalf("insert %v rejected", k)
		}
	}
	// Touch {1,2} so {2,3} becomes least recently used.
	if h := c.Lookup(keys[0], 1); h == nil {
		t.Fatal("expected hit")
	} else {
		h.Sess.Release()
	}
	if !c.Insert(keys[3], snapFor(t, keys[3], 1, 1)) {
		t.Fatal("insert over budget rejected instead of evicting")
	}
	if h := c.Lookup(keys[1], 1); h != nil {
		t.Fatalf("LRU entry %v survived eviction", keys[1])
	}
	for _, k := range [][]int{keys[0], keys[2], keys[3]} {
		if h := c.Lookup(k, 1); h == nil {
			t.Fatalf("entry %v wrongly evicted", k)
		} else {
			h.Sess.Release()
		}
	}
	st := c.Stats()
	if st.Entries != 3 || st.Evictions != 1 || st.BytesResident != 3*per {
		t.Fatalf("stats = %+v, want 3 entries, 1 eviction, %d bytes", st, 3*per)
	}

	// A snapshot bigger than the whole budget is rejected outright.
	tiny := New(per - 1)
	if tiny.Insert(keys[0], snapFor(t, keys[0], 1, 1)) {
		t.Fatal("over-budget snapshot accepted")
	}
}

// TestConcurrentHitEvictInsert is the race-detector workout: writers insert
// snapshots into a deliberately tiny budget (forcing constant eviction)
// while readers hit, miss, extend restored sessions, and probe with a stale
// epoch. Run under -race via make verify.
func TestConcurrentHitEvictInsert(t *testing.T) {
	one := snapFor(t, []int{1, 2, 3}, 1, 1)
	per := one.Sess.KVBytes() + entryOverhead + 64
	one.Sess.Release()
	c := New(4 * per) // ~4 entries resident → every insert evicts

	keys := make([][]int, 12)
	for i := range keys {
		keys[i] = []int{1 + i%3, 2 + i%5, 3 + i%7, 4 + i}
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 200; i++ {
				k := keys[rng.Intn(len(keys))]
				switch rng.Intn(3) {
				case 0:
					if c.NeedsInsert(k, 1) {
						c.Insert(k, snapFor(t, k, 1, 1))
					}
				case 1:
					if h := c.Lookup(k, 1); h != nil {
						// Drive the restored session to force COW against
						// concurrent holders of the same pages.
						if err := h.Sess.Append(5); err != nil {
							t.Error(err)
						}
						h.Sess.Release()
					}
				case 2:
					c.Lookup(k, 99) // stale probe: must miss, may drop
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.BytesResident > 4*per {
		t.Fatalf("resident %d bytes exceeds budget %d", st.BytesResident, 4*per)
	}
}
