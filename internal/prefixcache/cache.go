// Package prefixcache implements the cross-request radix prefix cache:
// decoded token sequences are the keys of a compressed radix tree whose
// nodes hold *paired* snapshots of the two engines that LeJIT interleaves —
// a frozen nn.Session (the transformer KV state after consuming exactly
// that token prefix) and the solver's witness model at the same boundary.
// A warm request longest-prefix-matches its prompt and resumes mid-record:
// the KV restore skips the transformer forward passes for the shared
// prefix, and the witness model re-arms the interval oracle's fast path
// (and, on a full-prompt hit, stands in for the prompt feasibility check).
//
// Snapshots are only valid against the exact rule environment they were
// captured under. Every entry therefore carries the engine's rule-epoch
// fingerprint; Lookup skips — and drops — entries whose epoch differs, so a
// stale snapshot can never be served. The cache is safe for concurrent use
// and bounded by a byte budget with LRU eviction; session memory is
// refcounted at the KV-page level (see nn), so a hit shares pages with the
// cached snapshot instead of copying them. See DESIGN.md §11.
package prefixcache

import (
	"sync"

	"repro/internal/nn"
	"repro/internal/smt"
)

// Snapshot is the paired mid-record state stored at one radix node. The
// cache takes ownership of Sess on Insert (it is released on eviction);
// Model is retained as given and copied on every hit.
type Snapshot struct {
	// Sess is the frozen transformer session: it has consumed exactly the
	// key's tokens and must never be advanced again.
	Sess *nn.Session
	// Model is the solver's witness model at the boundary — a satisfying
	// assignment for the rule set plus every value pinned by the key. Nil
	// when the engine had no epoch-current model at capture time; a nil
	// model still warm-starts the transformer, just not the oracle.
	Model map[smt.Var]int64
	// RuleEpoch fingerprints the rule environment (rules, schema, slots,
	// decode mode, model identity) the snapshot was captured under.
	RuleEpoch uint64
	// Slots is how many grammar slots the key covers (separators consumed).
	Slots int
}

// Hit is an owned warm-start handed to one request: Sess is a private clone
// (page-sharing, copy-on-write) the caller must drive or Release, and Model
// is a private copy the caller may mutate.
type Hit struct {
	Sess   *nn.Session
	Model  map[smt.Var]int64
	Tokens int // key prefix length restored (BOS included)
	Slots  int
}

// Stats is a point-in-time view of the cache counters.
type Stats struct {
	Hits          uint64 // lookups that returned a warm prefix
	Misses        uint64 // lookups with no usable prefix
	Evictions     uint64 // entries dropped: LRU capacity, stale epoch, or replacement
	Inserts       uint64 // snapshots accepted
	BytesResident int64  // bytes pinned by live snapshots
	Entries       int
}

// node is one radix-tree node; label is the edge from its parent
// (compressed: one node per divergence point, not per token).
type node struct {
	label    []int
	parent   *node
	children map[int]*node
	ent      *entry
}

// entry is a stored snapshot plus its LRU links and byte accounting.
type entry struct {
	snap       *Snapshot
	keyLen     int
	bytes      int64
	node       *node
	prev, next *entry // LRU list, head = most recent
}

// Cache is a byte-bounded radix prefix cache, safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	root     *node
	maxBytes int64
	bytes    int64
	entries  int
	// LRU list with sentinel-free head/tail.
	head, tail *entry

	hits, misses, evictions, inserts uint64
}

// entryOverhead approximates per-entry bookkeeping bytes beyond the KV
// pages: tree node, labels, LRU links, map headers.
const entryOverhead = 256

// New creates a cache bounded to maxBytes of resident snapshot state.
func New(maxBytes int64) *Cache {
	return &Cache{root: &node{}, maxBytes: maxBytes}
}

// Lookup returns the deepest cached snapshot whose key is a prefix of key
// and whose rule epoch matches, as an owned Hit, or nil. Entries found on
// the path with a different epoch are stale — they are dropped on sight
// (counted as evictions) and can never be served.
func (c *Cache) Lookup(key []int, epoch uint64) *Hit {
	c.mu.Lock()
	defer c.mu.Unlock()
	var best *entry
	n := c.root
	depth := 0
	for {
		if n.ent != nil {
			if n.ent.snap.RuleEpoch == epoch {
				best = n.ent
			} else {
				c.drop(n.ent)
			}
		}
		if depth == len(key) {
			break
		}
		child, ok := n.children[key[depth]]
		if !ok || len(key)-depth < len(child.label) || !prefixEq(child.label, key[depth:]) {
			break
		}
		depth += len(child.label)
		n = child
	}
	// A one-token prefix (the BOS a cold session gets for free) is noise.
	if best == nil || best.keyLen < 2 {
		c.misses++
		return nil
	}
	c.hits++
	c.touch(best)
	h := &Hit{
		Sess:   best.snap.Sess.Clone(),
		Tokens: best.keyLen,
		Slots:  best.snap.Slots,
	}
	if m := best.snap.Model; m != nil {
		h.Model = make(map[smt.Var]int64, len(m))
		for k, v := range m {
			h.Model[k] = v
		}
	}
	return h
}

// NeedsInsert reports whether Insert(key, …) at this epoch would store a new
// snapshot — false when an epoch-current entry already sits at exactly key.
// Capture sites use it to skip the session clone for already-cached
// boundaries.
func (c *Cache) NeedsInsert(key []int, epoch uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, exact := c.find(key)
	return !(exact && n.ent != nil && n.ent.snap.RuleEpoch == epoch)
}

// Insert stores snap at key, taking ownership of snap.Sess. It returns
// false — releasing the session — when the snapshot is a duplicate of an
// epoch-current entry or is larger than the whole budget. A same-key entry
// from another epoch is replaced; least-recently-used entries are evicted
// until the new total fits.
func (c *Cache) Insert(key []int, snap *Snapshot) bool {
	bytes := snap.Sess.KVBytes() + int64(len(snap.Model))*16 + int64(len(key))*8 + entryOverhead
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(key) < 2 || bytes > c.maxBytes {
		snap.Sess.Release()
		return false
	}
	n := c.insertNode(key)
	if n.ent != nil {
		if n.ent.snap.RuleEpoch == snap.RuleEpoch {
			c.touch(n.ent)
			snap.Sess.Release()
			return false
		}
		c.detach(n.ent)
	}
	e := &entry{snap: snap, keyLen: len(key), bytes: bytes, node: n}
	n.ent = e
	c.pushFront(e)
	c.bytes += bytes
	c.entries++
	c.inserts++
	for c.bytes > c.maxBytes && c.tail != nil && c.tail != e {
		c.drop(c.tail)
	}
	return true
}

// Stats returns the current counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Inserts: c.inserts, BytesResident: c.bytes, Entries: c.entries,
	}
}

// find walks key and returns the deepest node on its path plus whether that
// node sits at exactly key. Caller holds c.mu.
func (c *Cache) find(key []int) (*node, bool) {
	n := c.root
	depth := 0
	for depth < len(key) {
		child, ok := n.children[key[depth]]
		if !ok || len(key)-depth < len(child.label) || !prefixEq(child.label, key[depth:]) {
			return n, false
		}
		depth += len(child.label)
		n = child
	}
	return n, true
}

// insertNode returns the node at exactly key, creating and splitting edges
// as needed. Caller holds c.mu.
func (c *Cache) insertNode(key []int) *node {
	n := c.root
	i := 0
	for i < len(key) {
		child, ok := n.children[key[i]]
		if !ok {
			leaf := &node{label: append([]int(nil), key[i:]...), parent: n}
			if n.children == nil {
				n.children = map[int]*node{}
			}
			n.children[key[i]] = leaf
			return leaf
		}
		common := 0
		rest := key[i:]
		for common < len(child.label) && common < len(rest) && child.label[common] == rest[common] {
			common++
		}
		if common == len(child.label) {
			n = child
			i += common
			continue
		}
		// Split child's edge at the divergence point.
		mid := &node{label: append([]int(nil), child.label[:common]...), parent: n}
		mid.children = map[int]*node{child.label[common]: child}
		child.label = append([]int(nil), child.label[common:]...)
		child.parent = mid
		n.children[key[i]] = mid
		if common == len(rest) {
			return mid
		}
		leaf := &node{label: append([]int(nil), rest[common:]...), parent: mid}
		mid.children[rest[common]] = leaf
		return leaf
	}
	return n
}

// detach removes e from the cache bookkeeping (LRU, bytes, session refs)
// but leaves its tree node in place — used when the node is about to be
// reused by a replacement entry. Counted as an eviction. Caller holds c.mu.
func (c *Cache) detach(e *entry) {
	c.unlink(e)
	c.bytes -= e.bytes
	c.entries--
	c.evictions++
	e.node.ent = nil
	e.snap.Sess.Release()
}

// drop is detach plus pruning of now-empty tree nodes, so the tree doesn't
// accrete dead branches. Caller holds c.mu.
func (c *Cache) drop(e *entry) {
	c.detach(e)
	n := e.node
	for n != c.root && n.ent == nil && len(n.children) == 0 {
		p := n.parent
		delete(p.children, n.label[0])
		n = p
	}
}

func prefixEq(label, key []int) bool {
	for i, t := range label {
		if key[i] != t {
			return false
		}
	}
	return true
}

// LRU primitives. Caller holds c.mu.

func (c *Cache) pushFront(e *entry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache) touch(e *entry) {
	c.unlink(e)
	c.pushFront(e)
}
