package core

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/nn"
	"repro/internal/rules"
	"repro/internal/vocab"
)

// --- NN-backed fixtures -----------------------------------------------------
//
// The mock LMs above don't implement BatchLM, so every other test in this
// package exercises the per-record fallback. These tests build a real (tiny,
// untrained) transformer: WrapNN's adapter implements BatchLM, which routes
// eligible DecodeRequests batches through the lock-step scheduler.

var (
	nnModelOnce sync.Once
	nnModelVal  *nn.Model
	nnModelErr  error
)

func nnTestModel(tb testing.TB) *nn.Model {
	tb.Helper()
	nnModelOnce.Do(func() {
		nnModelVal, nnModelErr = nn.New(nn.Config{
			Vocab: vocab.Telemetry().Size(), Ctx: 48, Dim: 16, Heads: 2, Layers: 2,
		}, 7)
	})
	if nnModelErr != nil {
		tb.Fatal(nnModelErr)
	}
	return nnModelVal
}

func nnTestEngine(tb testing.TB) *Engine {
	tb.Helper()
	schema := rules.MustSchema(
		rules.Field{Name: "TotalIngress", Kind: rules.Scalar, Lo: 0, Hi: 300},
		rules.Field{Name: "Congestion", Kind: rules.Scalar, Lo: 0, Hi: 100},
		rules.Field{Name: "I", Kind: rules.Vector, Len: 5, Lo: 0, Hi: 60},
	)
	rs, err := rules.ParseRuleSet(testRules, schema)
	if err != nil {
		tb.Fatal(err)
	}
	slots, err := TelemetryGrammar(schema, []string{"TotalIngress", "Congestion"}, "I")
	if err != nil {
		tb.Fatal(err)
	}
	e, err := NewEngine(Config{
		LM: WrapNN(nnTestModel(tb)), Tok: vocab.Telemetry(), Schema: schema,
		Rules: rs, Slots: slots, Mode: LeJIT,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return e
}

// soloDecode runs reqs[i] exactly as the per-record path would, on a fresh
// clone so the comparison engine carries no state from other records.
func soloDecode(tb testing.TB, e *Engine, req BatchRequest, seed int64, i int) (Result, error) {
	tb.Helper()
	eng, err := e.Clone()
	if err != nil {
		tb.Fatal(err)
	}
	s := MixSeed(seed, i)
	if req.Seed != nil {
		s = *req.Seed
	}
	rctx := req.Ctx
	if rctx == nil {
		rctx = context.Background()
	}
	rng := rand.New(rand.NewSource(s))
	if req.Prompt == nil {
		return eng.GenerateCtx(rctx, rng)
	}
	return eng.ImputeCtx(rctx, req.Prompt, rng)
}

// checkMatchesSolo asserts every lock-step outcome equals the per-record one:
// same record, same sampled-token count, same error-ness.
func checkMatchesSolo(t *testing.T, e *Engine, reqs []BatchRequest, out []BatchResult, seed int64) {
	t.Helper()
	for i := range reqs {
		res, err := soloDecode(t, e, reqs[i], seed, i)
		if (err != nil) != (out[i].Err != nil) {
			t.Errorf("record %d: lock-step err %v, solo err %v", i, out[i].Err, err)
			continue
		}
		if err != nil {
			continue
		}
		if !reflect.DeepEqual(out[i].Res.Rec, res.Rec) {
			t.Errorf("record %d: lock-step %v != solo %v", i, out[i].Res.Rec, res.Rec)
		}
		if out[i].Res.Stats.Tokens != res.Stats.Tokens {
			t.Errorf("record %d: lock-step sampled %d tokens, solo %d", i, out[i].Res.Stats.Tokens, res.Stats.Tokens)
		}
	}
}

// TestLockStepMatchesSolo: batches of every small size and mixed prompt
// shapes (imputation, generation, per-request seeds) decode to records
// byte-identical to the per-record path. This is the golden equivalence the
// GEMM decode path promises: batch composition never changes any record.
func TestLockStepMatchesSolo(t *testing.T) {
	e := nnTestEngine(t)
	override := int64(12345)
	for _, n := range []int{2, 3, 5} {
		reqs := make([]BatchRequest, n)
		for i := range reqs {
			switch i % 3 {
			case 0:
				reqs[i].Prompt = rules.Record{"TotalIngress": {120}, "Congestion": {10}}
			case 1:
				reqs[i].Prompt = rules.Record{"TotalIngress": {60 + int64(i)}, "Congestion": {0}}
			default:
				// Unconditional generation shares the batch with imputations.
			}
			if i == n-1 {
				reqs[i].Seed = &override
			}
		}
		out, err := e.DecodeRequests(context.Background(), reqs, 1, 42, nil)
		if err != nil {
			t.Fatal(err)
		}
		checkMatchesSolo(t, e, reqs, out, 42)
	}
}

// TestLockStepGroupingInvariance: the same requests decoded with different
// worker counts (different group splits) and different batch-mates produce
// identical records — output is a function of (request, seed, index) only.
func TestLockStepGroupingInvariance(t *testing.T) {
	e := nnTestEngine(t)
	reqs := make([]BatchRequest, 6)
	for i := range reqs {
		reqs[i].Prompt = rules.Record{"TotalIngress": {100 + 20*int64(i)}, "Congestion": {5}}
	}
	base, err := e.DecodeRequests(context.Background(), reqs, 1, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 6} {
		out, err := e.DecodeRequests(context.Background(), reqs, workers, 7, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range reqs {
			if (out[i].Err != nil) != (base[i].Err != nil) {
				t.Fatalf("workers=%d record %d: err %v vs base %v", workers, i, out[i].Err, base[i].Err)
			}
			if !reflect.DeepEqual(out[i].Res.Rec, base[i].Res.Rec) {
				t.Errorf("workers=%d record %d: %v != %v", workers, i, out[i].Res.Rec, base[i].Res.Rec)
			}
		}
	}
	// Pinning the seed pins the record regardless of batch-mates: the same
	// request decoded in a different batch keeps its output.
	s := int64(7)
	lone := []BatchRequest{{Prompt: reqs[2].Prompt, Seed: &[]int64{MixSeed(s, 2)}[0]}, {Prompt: rules.Record{"TotalIngress": {33}, "Congestion": {1}}}}
	out, err := e.DecodeRequests(context.Background(), lone, 1, 999, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out[0].Res.Rec, base[2].Res.Rec) {
		t.Errorf("seed-pinned record changed with batch composition: %v != %v", out[0].Res.Rec, base[2].Res.Rec)
	}
}

// TestLockStepMixedOverrides: per-request Decode overrides fall back to the
// per-record path while their batch-mates stay lock-step, all in one call.
func TestLockStepMixedOverrides(t *testing.T) {
	e := nnTestEngine(t)
	calls := 0
	reqs := []BatchRequest{
		{Prompt: rules.Record{"TotalIngress": {120}, "Congestion": {10}}},
		{Prompt: rules.Record{"TotalIngress": {90}, "Congestion": {0}}, Decode: func(ctx context.Context, eng *Engine, known rules.Record, rng *rand.Rand) (Result, error) {
			calls++
			return eng.ImputeCtx(ctx, known, rng)
		}},
		{Prompt: rules.Record{"TotalIngress": {150}, "Congestion": {20}}},
	}
	out, err := e.DecodeRequests(context.Background(), reqs, 1, 11, nil)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("override decode called %d times, want 1", calls)
	}
	checkMatchesSolo(t, e, reqs, out, 11)
}

// TestLockStepLaneFailure: a lane whose per-request context is already dead
// must not decode, and a lane cancelled mid-flight must not disturb its
// batch-mates' outputs.
func TestLockStepLaneFailure(t *testing.T) {
	e := nnTestEngine(t)
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	reqs := []BatchRequest{
		{Prompt: rules.Record{"TotalIngress": {120}, "Congestion": {10}}},
		{Prompt: rules.Record{"TotalIngress": {90}, "Congestion": {0}}, Ctx: dead},
		{Prompt: rules.Record{"TotalIngress": {150}, "Congestion": {20}}},
	}
	out, err := e.DecodeRequests(context.Background(), reqs, 1, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out[1].Err != context.Canceled {
		t.Errorf("dead-ctx lane err %v, want context.Canceled", out[1].Err)
	}
	for _, i := range []int{0, 2} {
		res, err := soloDecode(t, e, reqs[i], 5, i)
		if err != nil || out[i].Err != nil {
			t.Fatalf("record %d: solo err %v, batched err %v", i, err, out[i].Err)
		}
		if !reflect.DeepEqual(out[i].Res.Rec, res.Rec) {
			t.Errorf("record %d changed by a failing batch-mate: %v != %v", i, out[i].Res.Rec, res.Rec)
		}
	}
}

// TestLockStepConcurrentGroups drives several lock-step groups plus fallback
// lanes at once; its real assertions run under the race detector (make
// verify runs this package with -race).
func TestLockStepConcurrentGroups(t *testing.T) {
	e := nnTestEngine(t)
	reqs := make([]BatchRequest, 12)
	for i := range reqs {
		if i%4 == 3 {
			reqs[i].Decode = func(ctx context.Context, eng *Engine, known rules.Record, rng *rand.Rand) (Result, error) {
				return eng.ImputeCtx(ctx, known, rng)
			}
		}
		reqs[i].Prompt = rules.Record{"TotalIngress": {60 + 10*int64(i)}, "Congestion": {int64(i % 3)}}
	}
	out, err := e.DecodeRequests(context.Background(), reqs, 4, 13, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range out {
		if r.Err != nil {
			t.Errorf("record %d: %v", i, r.Err)
		}
	}
}

// FuzzLockStepMatchesSolo randomizes batch composition and seeds and asserts
// every record's lock-step outcome (including infeasible-prompt errors)
// matches its solo decode.
func FuzzLockStepMatchesSolo(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(0))
	f.Add(int64(42), uint8(5), uint8(0xA5))
	f.Add(int64(-9), uint8(3), uint8(0xFF))
	f.Fuzz(func(t *testing.T, seed int64, n, mix uint8) {
		e := nnTestEngine(t)
		lanes := int(n)%6 + 2
		reqs := make([]BatchRequest, lanes)
		for i := range reqs {
			switch (int(mix) >> (i % 8)) & 1 {
			case 0:
				reqs[i].Prompt = rules.Record{
					"TotalIngress": {int64(uint(seed)+uint(i)*37) % 301},
					"Congestion":   {int64(uint(mix)+uint(i)) % 101},
				}
			default:
				reqs[i].Prompt = nil
			}
		}
		out, err := e.DecodeRequests(context.Background(), reqs, 1+int(mix)%3, seed, nil)
		if err != nil {
			t.Fatal(err)
		}
		checkMatchesSolo(t, e, reqs, out, seed)
	})
}

// TestLockStepClonePool: pooled engine clones are reused across batches and
// leave no residue — back-to-back batches on one engine decode identically.
func TestLockStepClonePool(t *testing.T) {
	e := nnTestEngine(t)
	reqs := []BatchRequest{
		{Prompt: rules.Record{"TotalIngress": {120}, "Congestion": {10}}},
		{Prompt: rules.Record{"TotalIngress": {60}, "Congestion": {0}}},
	}
	first, err := e.DecodeRequests(context.Background(), reqs, 1, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	e.poolMu.Lock()
	pooled := len(e.pool)
	e.poolMu.Unlock()
	if pooled == 0 {
		t.Fatal("no engine clones returned to the pool")
	}
	second, err := e.DecodeRequests(context.Background(), reqs, 1, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		if fmt.Sprint(first[i].Res.Rec) != fmt.Sprint(second[i].Res.Rec) {
			t.Errorf("record %d drifted across pooled batches: %v != %v", i, first[i].Res.Rec, second[i].Res.Rec)
		}
	}
}
