package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/rules"
	"repro/internal/vocab"
)

// These tests exercise speculative constrained decoding (spec.go, DESIGN.md
// §13). The contract under test is bit-exactness: for every lookahead k the
// decoded record and the sampled-token count equal the exact (k=0) path's,
// on both the solo guided path and the lock-step scheduler. Mechanism stats
// (fast-path hits, probe counts, solver checks) are allowed to differ — the
// two paths do different solver work by design — so comparisons stick to
// Rec and Stats.Tokens.

// specLookahead decodes known on a fresh clone of e with a per-request
// lookahead of k (0 = exact path) and the given seed.
func specLookahead(tb testing.TB, e *Engine, known rules.Record, seed int64, k int) (Result, error) {
	tb.Helper()
	eng, err := e.Clone()
	if err != nil {
		tb.Fatal(err)
	}
	ctx := WithLookahead(context.Background(), k)
	rng := rand.New(rand.NewSource(seed))
	if known == nil {
		return eng.GenerateCtx(ctx, rng)
	}
	return eng.ImputeCtx(ctx, known, rng)
}

// checkSpecMatch asserts a speculative outcome equals the exact one.
func checkSpecMatch(t *testing.T, label string, exact, spec Result, eerr, serr error) {
	t.Helper()
	if (eerr != nil) != (serr != nil) {
		t.Fatalf("%s: exact err %v, speculative err %v", label, eerr, serr)
	}
	if eerr != nil {
		return
	}
	if !reflect.DeepEqual(exact.Rec, spec.Rec) {
		t.Errorf("%s: speculative record %v != exact %v", label, spec.Rec, exact.Rec)
	}
	if exact.Stats.Tokens != spec.Stats.Tokens {
		t.Errorf("%s: speculative sampled %d tokens, exact %d", label, spec.Stats.Tokens, exact.Stats.Tokens)
	}
}

// TestSpeculativeGoldenSolo: for a spread of prompts, seeds, and window
// sizes, the solo guided path under speculation reproduces the exact path's
// record bit for bit — and the windows actually open (accepted tokens are
// counted), so the equality is not vacuous.
func TestSpeculativeGoldenSolo(t *testing.T) {
	e := nnTestEngine(t)
	prompts := []rules.Record{
		{"TotalIngress": {120}, "Congestion": {10}},
		{"TotalIngress": {60}, "Congestion": {0}},
		{"TotalIngress": {299}, "Congestion": {77}},
		nil, // unconditional generation
	}
	accepted := 0
	for pi, p := range prompts {
		for _, seed := range []int64{1, 7, 42} {
			exact, eerr := specLookahead(t, e, p, seed, 0)
			if exact.Stats.SpecAcceptedTokens != 0 || exact.Stats.SpecRollbacks != 0 {
				t.Fatalf("k=0 run counted speculation: %+v", exact.Stats)
			}
			for _, k := range []int{1, 2, 4, 8, 16} {
				spec, serr := specLookahead(t, e, p, seed, k)
				checkSpecMatch(t, fmt.Sprintf("prompt %d seed %d k=%d", pi, seed, k), exact, spec, eerr, serr)
				accepted += spec.Stats.SpecAcceptedTokens
			}
		}
	}
	if accepted == 0 {
		t.Fatal("no speculative window ever opened: the bit-exactness assertions were vacuous")
	}
}

// TestSpeculativeEngineDefault: SetLookahead arms speculation engine-wide
// (including pooled clones) without changing output, and SetLookahead(0)
// restores the exact path.
func TestSpeculativeEngineDefault(t *testing.T) {
	e := nnTestEngine(t)
	prompt := rules.Record{"TotalIngress": {150}, "Congestion": {20}}
	exact, eerr := specLookahead(t, e, prompt, 5, 0)

	eng, err := e.Clone()
	if err != nil {
		t.Fatal(err)
	}
	eng.SetLookahead(8)
	spec, serr := eng.ImputeCtx(context.Background(), prompt, rand.New(rand.NewSource(5)))
	checkSpecMatch(t, "SetLookahead(8)", exact, spec, eerr, serr)
	if spec.Stats.SpecAcceptedTokens == 0 {
		t.Error("SetLookahead(8) decode accepted no speculative tokens")
	}

	eng.SetLookahead(0)
	off, oerr := eng.ImputeCtx(context.Background(), prompt, rand.New(rand.NewSource(5)))
	checkSpecMatch(t, "SetLookahead(0)", exact, off, eerr, oerr)
	if off.Stats.SpecAcceptedTokens != 0 {
		t.Error("SetLookahead(0) decode still counted speculative tokens")
	}
}

// TestSpeculativeLockStepMatchesExact: lanes speculating privately between
// shared AppendBatch steps produce records bit-identical to the exact solo
// path, for homogeneous and per-request-mixed lookaheads.
func TestSpeculativeLockStepMatchesExact(t *testing.T) {
	e := nnTestEngine(t)
	ks := []int{8, 0, 2, 16, 4}
	reqs := make([]BatchRequest, 5)
	for i := range reqs {
		if i != 3 {
			reqs[i].Prompt = rules.Record{"TotalIngress": {80 + 30*int64(i)}, "Congestion": {int64(5 * i)}}
		}
		k := ks[i]
		reqs[i].Lookahead = &k
	}
	out, err := e.DecodeRequests(context.Background(), reqs, 1, 23, nil)
	if err != nil {
		t.Fatal(err)
	}
	accepted := 0
	for i := range reqs {
		exact, eerr := specLookahead(t, e, reqs[i].Prompt, MixSeed(23, i), 0)
		checkSpecMatch(t, fmt.Sprintf("lane %d k=%d", i, ks[i]), exact, out[i].Res, eerr, out[i].Err)
		accepted += out[i].Res.Stats.SpecAcceptedTokens
		if ks[i] == 0 && out[i].Res.Stats.SpecAcceptedTokens != 0 {
			t.Errorf("lane %d: k=0 lane counted speculation", i)
		}
	}
	if accepted == 0 {
		t.Fatal("no lock-step lane ever opened a window")
	}
}

// FuzzSpeculativeMatchesExact randomizes prompts, seeds, and window sizes
// across both drive paths and asserts the speculative outcome always equals
// the exact one.
func FuzzSpeculativeMatchesExact(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(0))
	f.Add(int64(42), uint8(8), uint8(0xA5))
	f.Add(int64(-7), uint8(16), uint8(0x3C))
	f.Fuzz(func(t *testing.T, seed int64, k, mix uint8) {
		e := nnTestEngine(t)
		lookahead := int(k)%17 + 1
		var prompt rules.Record
		if mix&1 == 0 {
			prompt = rules.Record{
				"TotalIngress": {int64(uint(seed)) % 301},
				"Congestion":   {int64(uint(mix)) % 101},
			}
		}
		exact, eerr := specLookahead(t, e, prompt, seed, 0)
		spec, serr := specLookahead(t, e, prompt, seed, lookahead)
		checkSpecMatch(t, fmt.Sprintf("solo k=%d", lookahead), exact, spec, eerr, serr)

		// The same record through the lock-step scheduler, alongside a
		// batch-mate so the group is eligible. The pinned per-request seed is
		// used raw, matching the solo decode above.
		s := seed
		reqs := []BatchRequest{
			{Prompt: prompt, Seed: &s, Lookahead: &lookahead},
			{Prompt: rules.Record{"TotalIngress": {90}, "Congestion": {3}}, Lookahead: &lookahead},
		}
		out, err := e.DecodeRequests(context.Background(), reqs, 1, seed, nil)
		if err != nil {
			t.Fatal(err)
		}
		checkSpecMatch(t, fmt.Sprintf("lock-step k=%d", lookahead), exact, out[0].Res, eerr, out[0].Err)
	})
}

// rollbackTestEngine builds an engine whose rules pin A=7, B=3 through a
// pair of coupled equalities the interval fast path cannot decide digit by
// digit (patching A breaks both conjuncts at once, so patchFeasible gives
// up). Under speculation the first position of A defers probes for every
// digit the bounds allow, making a wrong first digit — and the forced
// separator after it, since the wrong value's canEnd probe is deferred too —
// overwhelmingly likely, which drives a rollback across the slot boundary.
func rollbackTestEngine(tb testing.TB, hook func(FaultSite) error, vfp bool) *Engine {
	tb.Helper()
	// These tests exist to exercise rollbacks; disable the head-of-record
	// warmup so windows open immediately and violations stay reachable.
	old := specWarmup
	specWarmup = 0
	tb.Cleanup(func() { specWarmup = old })
	schema := rules.MustSchema(
		rules.Field{Name: "A", Kind: rules.Scalar, Lo: 1, Hi: 9},
		rules.Field{Name: "B", Kind: rules.Scalar, Lo: 1, Hi: 9},
		rules.Field{Name: "V", Kind: rules.Vector, Len: 1, Lo: 0, Hi: 9},
	)
	rs, err := rules.ParseRuleSet(`
rule r1: A + B == 10
rule r2: A - B == 4
`, schema)
	if err != nil {
		tb.Fatal(err)
	}
	slots, err := TelemetryGrammar(schema, []string{"A", "B"}, "V")
	if err != nil {
		tb.Fatal(err)
	}
	e, err := NewEngine(Config{
		LM: WrapNN(nnTestModel(tb)), Tok: vocab.Telemetry(), Schema: schema,
		Rules: rs, Slots: slots, Mode: LeJIT,
		FaultHook: hook, ValidateFastPath: vfp,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return e
}

// TestSpeculationRollbackAcrossSeparator: with A pinned to 7 by cross-slot
// coupling, a speculative window admits wrong first digits for A, force-emits
// the slot separator after one (its canEnd probe is deferred optimistically),
// asserts the wrong value, and enters slot B — all of which validation must
// unwind: the rollback truncates the journaled A-assert, the appended value,
// and the slot state, then re-decides A exactly. Every seed must come out
// bit-identical to the exact path, and the scanned seed range must exhibit at
// least one such across-the-separator rollback so the edge is actually hit.
func TestSpeculationRollbackAcrossSeparator(t *testing.T) {
	e := rollbackTestEngine(t, nil, false)
	sepA := e.cfg.Tok.ID(e.cfg.Slots[0].Sep)

	crossed := false
	for seed := int64(0); seed < 10; seed++ {
		var steps []TraceStep
		e.cfg.TraceHook = func(s TraceStep) { steps = append(steps, s) }
		spec, serr := specLookahead(t, e, nil, seed, 8)
		e.cfg.TraceHook = nil
		exact, eerr := specLookahead(t, e, nil, seed, 0)
		checkSpecMatch(t, fmt.Sprintf("seed %d", seed), exact, spec, eerr, serr)
		if serr != nil {
			t.Fatalf("seed %d: decode failed: %v", seed, serr)
		}
		if got := spec.Rec["A"][0]; got != 7 {
			t.Fatalf("seed %d: A = %d, want 7", seed, got)
		}
		if got := spec.Rec["B"][0]; got != 3 {
			t.Fatalf("seed %d: B = %d, want 3", seed, got)
		}

		// An across-the-separator rollback shows in the trace as: slot A's
		// separator chosen (completing a wrong value), followed by a later
		// step for slot A again (the re-decide after the rollback erased the
		// boundary crossing).
		sepAt := -1
		for i, s := range steps {
			if s.Field == "A" && s.Chosen == sepA && sepAt < 0 {
				sepAt = i
			}
			if sepAt >= 0 && i > sepAt && s.Field == "A" {
				if spec.Stats.SpecRollbacks == 0 {
					t.Fatalf("seed %d: slot A re-decided but no rollback counted", seed)
				}
				crossed = true
			}
		}
	}
	if !crossed {
		t.Fatal("no seed in the scanned range rolled back across the slot separator; the edge case went unexercised")
	}
}

// TestSpeculationMidWindowBudgetError: a solver-budget failure injected while
// a window is open (the fault hook fires at a committed token count, which
// rollbacks restore, so the injection point is path-independent) surfaces as
// the same ErrBudget the exact path reports — never swallowed by the window,
// never misreported as infeasibility.
func TestSpeculationMidWindowBudgetError(t *testing.T) {
	hook := func(s FaultSite) error {
		if s.Tokens >= 2 {
			return fmt.Errorf("injected mid-window stall: %w", ErrBudget)
		}
		return nil
	}
	for _, k := range []int{0, 8} {
		e := rollbackTestEngine(t, hook, false)
		_, err := specLookahead(t, e, nil, 3, k)
		if !errors.Is(err, ErrBudget) {
			t.Fatalf("k=%d: err %v, want ErrBudget", k, err)
		}
		var inf ErrInfeasible
		if errors.As(err, &inf) {
			t.Fatalf("k=%d: budget failure misreported as infeasibility: %v", k, err)
		}
	}
}

// TestSpeculationMidWindowPanicLockStep: a lane that panics mid-window fails
// alone with a *PanicError while its speculating batch-mates still decode
// bit-identically to the exact path.
func TestSpeculationMidWindowPanicLockStep(t *testing.T) {
	reqs := faultReqs(4)
	k := 8
	for i := range reqs {
		reqs[i].Lookahead = &k
	}
	bad := reqs[2].Prompt["TotalIngress"][0]
	e := nnFaultEngine(t, poison(bad, func() error { panic("injected mid-window panic") }))
	clean := nnTestEngine(t)

	out, err := e.DecodeRequests(context.Background(), reqs, 1, 42, nil)
	if err != nil {
		t.Fatal(err)
	}
	var pe *PanicError
	if !errors.As(out[2].Err, &pe) {
		t.Fatalf("poisoned lane err %v, want *PanicError", out[2].Err)
	}
	for _, i := range []int{0, 1, 3} {
		exact, eerr := specLookahead(t, clean, reqs[i].Prompt, MixSeed(42, i), 0)
		checkSpecMatch(t, fmt.Sprintf("lane %d", i), exact, out[i].Res, eerr, out[i].Err)
	}
}

// TestSpeculationValidateFastPath: with ValidateFastPath set, every deferred
// probe certified by suffix validation is re-checked exactly; a single
// mismatch would be a soundness bug. The rollback-heavy engine gives the
// validator real work on both the certify and the refute side.
func TestSpeculationValidateFastPath(t *testing.T) {
	e := rollbackTestEngine(t, nil, true)
	for seed := int64(0); seed < 5; seed++ {
		spec, err := specLookahead(t, e, nil, seed, 8)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if spec.Stats.FastPathMismatches != 0 {
			t.Fatalf("seed %d: %d fast-path mismatches under speculation", seed, spec.Stats.FastPathMismatches)
		}
	}
	big := nnTestEngine(t)
	vfp, err := big.Clone()
	if err != nil {
		t.Fatal(err)
	}
	vfp.cfg.ValidateFastPath = true
	res, derr := vfp.ImputeCtx(WithLookahead(context.Background(), 8),
		rules.Record{"TotalIngress": {120}, "Congestion": {10}}, rand.New(rand.NewSource(1)))
	if derr != nil {
		t.Fatal(derr)
	}
	if res.Stats.FastPathMismatches != 0 {
		t.Fatalf("%d fast-path mismatches under speculation", res.Stats.FastPathMismatches)
	}
}
