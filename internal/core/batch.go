package core

import (
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/rules"
)

// DecodeFn decodes one prompt on an engine. DecodeBatch calls it with a
// worker-local engine and a per-prompt RNG; implementations must not retain
// either across calls. Method expressions over *Engine fit directly, e.g.
// (*Engine).Vanilla.
type DecodeFn func(e *Engine, known rules.Record, rng *rand.Rand) (Result, error)

// BatchResult pairs one prompt's decode outcome with its index.
type BatchResult struct {
	Index int
	Res   Result
	Err   error
}

// batchSeed derives the RNG seed for prompt i. Seeding by index rather than
// by decode order is what makes batch output independent of worker count
// and scheduling.
func batchSeed(seed int64, i int) int64 { return seed + int64(i)*7919 }

// DecodeBatch decodes prompts[i] for every i and returns results in prompt
// order. A nil prompt means unconditional generation; a nil decode selects
// Generate/Impute accordingly. workers < 1 means runtime.GOMAXPROCS(0).
//
// Determinism contract: prompt i is decoded with rand.NewSource(seed +
// i*7919) on an engine equivalent to the receiver (the receiver itself when
// workers == 1, a Clone otherwise), so for a fixed seed the returned records
// are byte-identical for every worker count. Engines are single-threaded;
// each worker gets its own clone, while the LM weights and the compiled rule
// formula are shared read-only.
func (e *Engine) DecodeBatch(prompts []rules.Record, workers int, seed int64, decode DecodeFn) ([]BatchResult, error) {
	if decode == nil {
		decode = func(eng *Engine, known rules.Record, rng *rand.Rand) (Result, error) {
			if known == nil {
				return eng.Generate(rng)
			}
			return eng.Impute(known, rng)
		}
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(prompts) {
		workers = len(prompts)
	}
	out := make([]BatchResult, len(prompts))
	for i := range out {
		out[i].Index = i
	}
	if len(prompts) == 0 {
		return out, nil
	}
	if workers == 1 {
		for i, p := range prompts {
			rng := rand.New(rand.NewSource(batchSeed(seed, i)))
			out[i].Res, out[i].Err = decode(e, p, rng)
		}
		return out, nil
	}

	engines := make([]*Engine, workers)
	for w := range engines {
		eng, err := e.Clone()
		if err != nil {
			return nil, err
		}
		engines[w] = eng
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for _, eng := range engines {
		wg.Add(1)
		go func(eng *Engine) {
			defer wg.Done()
			for i := range idx {
				rng := rand.New(rand.NewSource(batchSeed(seed, i)))
				out[i].Res, out[i].Err = decode(eng, prompts[i], rng)
			}
		}(eng)
	}
	for i := range prompts {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out, nil
}

// BatchImpute builds an engine from cfg and imputes every prompt via
// DecodeBatch. Kept as the package-level convenience entry point; callers
// that already hold an engine should use DecodeBatch directly and skip the
// construction cost.
func BatchImpute(cfg Config, prompts []rules.Record, workers int, seed int64) ([]BatchResult, error) {
	eng, err := NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	return eng.DecodeBatch(prompts, workers, seed, nil)
}
