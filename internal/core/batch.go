package core

import (
	"context"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"

	"repro/internal/rules"
)

// DecodeFn decodes one prompt on an engine. DecodeBatch calls it with a
// worker-local engine and a per-prompt RNG; implementations must not retain
// either across calls. Method expressions over *Engine fit directly, e.g.
// (*Engine).Vanilla.
type DecodeFn func(e *Engine, known rules.Record, rng *rand.Rand) (Result, error)

// DecodeCtxFn is the context-aware form of DecodeFn. The context is the
// per-record one (see BatchRequest.Ctx); implementations should abandon the
// decode promptly once it is cancelled.
type DecodeCtxFn func(ctx context.Context, e *Engine, known rules.Record, rng *rand.Rand) (Result, error)

// BatchRequest is one record's worth of work for DecodeRequests. The zero
// value (plus a Prompt) behaves exactly like an entry of DecodeBatch's
// prompt slice.
type BatchRequest struct {
	// Prompt is the known prefix; nil means unconditional generation.
	Prompt rules.Record
	// Ctx cancels just this record. nil means the batch context. A request
	// whose context is already done is not decoded at all; its BatchResult
	// carries the context's error.
	Ctx context.Context
	// Seed, when non-nil, overrides the index-derived RNG seed. This is what
	// lets a serving layer coalesce requests from independent callers into
	// one batch while keeping each caller's output a deterministic function
	// of its own seed, not of batch composition (DESIGN.md §8).
	Seed *int64
	// Decode, when non-nil, overrides the batch-level decode function for
	// this record (e.g. a per-request baseline mode).
	Decode DecodeCtxFn
	// NoPrefixCache opts this record out of the engine's cross-request
	// prefix cache: no warm start and no snapshot capture. Output is
	// unaffected either way (warm decodes are bit-identical); the knob
	// exists for isolation — e.g. keeping a tenant's prompts out of shared
	// cache state — and for cold-path measurement.
	NoPrefixCache bool
	// Lookahead, when non-nil, overrides the engine's speculative-decoding
	// window (Config.Lookahead) for this record; 0 forces the exact path.
	// Output is bit-identical for every value (DESIGN.md §13).
	Lookahead *int
}

// prefixCacheOffKey marks a context whose decodes must skip the prefix
// cache (see DisablePrefixCache).
type prefixCacheOffKey struct{}

// DisablePrefixCache returns a context under which guided decodes neither
// consult nor populate the engine's prefix cache. Used by the serving layer
// for per-request opt-out; callers invoking ImputeCtx/GenerateCtx directly
// can use it too.
func DisablePrefixCache(ctx context.Context) context.Context {
	return context.WithValue(ctx, prefixCacheOffKey{}, true)
}

func prefixCacheDisabled(ctx context.Context) bool {
	off, _ := ctx.Value(prefixCacheOffKey{}).(bool)
	return off
}

// emitKey carries a per-request slot-emit hook (streaming responses).
type emitKey struct{}

// EmitFn receives one completed slot's rendered text (digits plus trailing
// separator) as soon as the decode has proven it exact. Chunks arrive in slot
// order and their concatenation equals the full rendered line byte for byte.
// Implementations run on the decoding goroutine and must not block.
type EmitFn func(slot int, text string)

// WithEmit returns a context under which guided decodes stream each
// completed slot to fn at the moment it becomes exact: immediately on the
// non-speculative path, and at window commit on the speculative one — a slot
// inside an open lookahead window is never emitted, so a rollback can never
// retract streamed bytes (DESIGN.md §16). The serving layer uses it for SSE
// responses; callers invoking ImputeCtx/GenerateCtx directly can too.
func WithEmit(ctx context.Context, fn EmitFn) context.Context {
	return context.WithValue(ctx, emitKey{}, fn)
}

// emitFor resolves the slot-emit hook for a decode (nil → no streaming).
func emitFor(ctx context.Context) EmitFn {
	fn, _ := ctx.Value(emitKey{}).(EmitFn)
	return fn
}

// lookaheadKey carries a per-request speculation-window override.
type lookaheadKey struct{}

// WithLookahead returns a context under which guided decodes use a
// speculation window of k tokens instead of the engine's Config.Lookahead
// (0 forces the exact path). The serving layer uses it for per-request
// overrides; callers invoking ImputeCtx/GenerateCtx directly can too.
func WithLookahead(ctx context.Context, k int) context.Context {
	return context.WithValue(ctx, lookaheadKey{}, k)
}

// lookaheadFor resolves the effective speculation window for a decode.
func lookaheadFor(ctx context.Context, def int) int {
	if k, ok := ctx.Value(lookaheadKey{}).(int); ok {
		return k
	}
	return def
}

// BatchResult pairs one prompt's decode outcome with its index.
type BatchResult struct {
	Index int
	Res   Result
	Err   error
}

// MixSeed derives the RNG seed for record i of a batch seeded with seed.
// Seeding by index rather than by decode order is what makes batch output
// independent of worker count and scheduling. The finalizer is splitmix64:
// unlike the earlier affine seed+i*7919 scheme, distinct (seed, i) pairs
// cannot collide by construction of a small seed delta, so two nearby batch
// seeds never share per-record RNG streams.
func MixSeed(seed int64, i int) int64 {
	z := uint64(seed) + (uint64(i)+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

func batchSeed(seed int64, i int) int64 { return MixSeed(seed, i) }

// defaultDecode selects ImputeCtx/GenerateCtx by prompt presence.
func defaultDecode(ctx context.Context, e *Engine, known rules.Record, rng *rand.Rand) (Result, error) {
	if known == nil {
		return e.GenerateCtx(ctx, rng)
	}
	return e.ImputeCtx(ctx, known, rng)
}

// DecodeBatch decodes prompts[i] for every i and returns results in prompt
// order. A nil prompt means unconditional generation; a nil decode selects
// Generate/Impute accordingly. workers < 1 means runtime.GOMAXPROCS(0).
//
// Determinism contract: prompt i is decoded with
// rand.NewSource(MixSeed(seed, i)) on an engine equivalent to the receiver
// (the receiver itself when workers == 1, a Clone otherwise), so for a fixed
// seed the returned records are byte-identical for every worker count.
// Engines are single-threaded; each worker gets its own clone, while the LM
// weights and the compiled rule formula are shared read-only.
func (e *Engine) DecodeBatch(prompts []rules.Record, workers int, seed int64, decode DecodeFn) ([]BatchResult, error) {
	var dc DecodeCtxFn
	if decode != nil {
		dc = func(_ context.Context, eng *Engine, known rules.Record, rng *rand.Rand) (Result, error) {
			return decode(eng, known, rng)
		}
	}
	return e.DecodeBatchCtx(context.Background(), prompts, workers, seed, dc)
}

// DecodeBatchCtx is DecodeBatch under a context: cancelling ctx stops
// in-flight decodes at the next token boundary and skips records not yet
// started (their BatchResult.Err is the context error).
func (e *Engine) DecodeBatchCtx(ctx context.Context, prompts []rules.Record, workers int, seed int64, decode DecodeCtxFn) ([]BatchResult, error) {
	reqs := make([]BatchRequest, len(prompts))
	for i, p := range prompts {
		reqs[i].Prompt = p
	}
	return e.DecodeRequests(ctx, reqs, workers, seed, decode)
}

// DecodeRequests is the most general batch entry point: each request may
// carry its own context, seed, and decode function (see BatchRequest). It
// preserves DecodeBatch's determinism contract — request i without an
// explicit seed uses rand.NewSource(MixSeed(seed, i)) — while letting a
// serving layer cancel or time out individual records without aborting the
// batch. The returned error reports only batch-level failures (engine
// cloning); per-record failures, including context cancellation, land in
// BatchResult.Err.
//
// When the engine's LM implements BatchLM, the batch-level decode function
// is the default guided decoder, and at least two requests carry no
// per-request Decode override, those requests are decoded lock-step through
// a shared BatchSession (lockstep.go): each transformer weight block is
// streamed once per token step for the whole group instead of once per
// record. The determinism contract is unchanged — outputs are bit-identical
// to the per-record path for every batch composition.
func (e *Engine) DecodeRequests(ctx context.Context, reqs []BatchRequest, workers int, seed int64, decode DecodeCtxFn) ([]BatchResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	defaultPath := decode == nil
	if decode == nil {
		decode = defaultDecode
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(reqs) {
		workers = len(reqs)
	}
	out := make([]BatchResult, len(reqs))
	for i := range out {
		out[i].Index = i
	}
	if len(reqs) == 0 {
		return out, nil
	}
	e.notePoolDemand(len(reqs))
	if blm, ok := e.cfg.LM.(BatchLM); ok && defaultPath {
		eligible := 0
		for i := range reqs {
			if reqs[i].Decode == nil {
				eligible++
			}
		}
		if eligible >= 2 {
			e.decodeRequestsLockStep(ctx, reqs, workers, seed, decode, out, blm)
			return out, nil
		}
	}
	if workers == 1 {
		for i := range reqs {
			e.runRequest(ctx, reqs, i, seed, decode, e, out)
		}
		return out, nil
	}

	engines := make([]*Engine, workers)
	for w := range engines {
		eng, err := e.Clone()
		if err != nil {
			return nil, err
		}
		engines[w] = eng
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for _, eng := range engines {
		wg.Add(1)
		go func(eng *Engine) {
			defer wg.Done()
			for i := range idx {
				if e.runRequest(ctx, reqs, i, seed, decode, eng, out) {
					// The worker's engine absorbed a panic: replace it for
					// the remaining records. If cloning fails, keep the old
					// one — its solver frames were rebalanced by the guided
					// path's deferred cleanup, so best-effort reuse beats
					// failing every remaining record.
					if fresh, cerr := e.Clone(); cerr == nil {
						eng = fresh
					}
				}
			}
		}(eng)
	}
	for i := range reqs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out, nil
}

// runRequest decodes reqs[i] on eng via the per-record path, resolving the
// request's context, seed, and decode overrides. Shared by the worker pool
// above and the lock-step scheduler's fallback lanes. A panic inside the
// decode is converted into a per-record *PanicError and reported via the
// poisoned return: the caller should retire eng (the panic unwound through
// its solver and session state) rather than reuse or pool it. The guided
// path defers its frame cleanup, so even a poisoned engine has had its
// solver stack rebalanced — reuse is a last resort, not instant corruption.
func (e *Engine) runRequest(ctx context.Context, reqs []BatchRequest, i int, seed int64, decode DecodeCtxFn, eng *Engine, out []BatchResult) (poisoned bool) {
	rctx := reqs[i].Ctx
	if rctx == nil {
		rctx = ctx
	}
	if err := rctx.Err(); err != nil {
		out[i].Err = err
		return false
	}
	if reqs[i].NoPrefixCache {
		rctx = DisablePrefixCache(rctx)
	}
	if reqs[i].Lookahead != nil {
		rctx = WithLookahead(rctx, *reqs[i].Lookahead)
	}
	s := batchSeed(seed, i)
	if reqs[i].Seed != nil {
		s = *reqs[i].Seed
	}
	d := reqs[i].Decode
	if d == nil {
		d = decode
	}
	rng := rand.New(rand.NewSource(s))
	defer func() {
		if r := recover(); r != nil {
			out[i].Res = Result{}
			out[i].Err = &PanicError{Value: r, Stack: debug.Stack()}
			poisoned = true
		}
	}()
	out[i].Res, out[i].Err = d(rctx, eng, reqs[i].Prompt, rng)
	return false
}

// BatchImpute builds an engine from cfg and imputes every prompt via
// DecodeBatch. Kept as the package-level convenience entry point; callers
// that already hold an engine should use DecodeBatch directly and skip the
// construction cost.
func BatchImpute(cfg Config, prompts []rules.Record, workers int, seed int64) ([]BatchResult, error) {
	eng, err := NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	return eng.DecodeBatch(prompts, workers, seed, nil)
}
