package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/rules"
	"repro/internal/vocab"
)

// formatRec renders a record deterministically for byte-level comparison.
func formatRec(t *testing.T, e *Engine, rec rules.Record) string {
	t.Helper()
	var b strings.Builder
	for _, s := range e.Slots() {
		vs, ok := rec[s.Field]
		if !ok || s.Index >= len(vs) {
			t.Fatalf("record missing %s[%d]", s.Field, s.Index)
		}
		fmt.Fprintf(&b, "%d%c", vs[s.Index], s.Sep)
	}
	return b.String()
}

func testPrompts(n int) []rules.Record {
	rng := rand.New(rand.NewSource(7))
	prompts := make([]rules.Record, n)
	for i := range prompts {
		total := rng.Int63n(200)
		cong := int64(0)
		// Keep Congestion>0 prompts feasible under r3 (max(I) >= 30
		// requires total >= 30).
		if total >= 30 && rng.Intn(2) == 0 {
			cong = rng.Int63n(50) + 1
		}
		prompts[i] = rules.Record{
			"TotalIngress": {total},
			"Congestion":   {cong},
		}
	}
	return prompts
}

// TestDecodeBatchDeterministic is the PR's headline contract: the same seed
// must produce byte-identical records for any worker count.
func TestDecodeBatchDeterministic(t *testing.T) {
	e := testEngine(t, uniformLM{vocab: vocab.Telemetry().Size()}, LeJIT)
	prompts := testPrompts(12)

	var want []string
	for _, workers := range []int{1, 4, 8} {
		out, err := e.DecodeBatch(prompts, workers, 42, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != len(prompts) {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(out), len(prompts))
		}
		got := make([]string, len(out))
		for i, b := range out {
			if b.Err != nil {
				t.Fatalf("workers=%d record %d: %v", workers, i, b.Err)
			}
			if b.Index != i {
				t.Fatalf("workers=%d: result %d has index %d", workers, i, b.Index)
			}
			got[i] = formatRec(t, e, b.Res.Rec)
		}
		if want == nil {
			want = got
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("workers=%d record %d differs:\n got %q\nwant %q", workers, i, got[i], want[i])
			}
		}
	}
}

// TestDecodeBatchGenerate covers the nil-prompt (unconditional synthesis)
// path and rule compliance of its output.
func TestDecodeBatchGenerate(t *testing.T) {
	e := testEngine(t, uniformLM{vocab: vocab.Telemetry().Size()}, LeJIT)
	out, err := e.DecodeBatch(make([]rules.Record, 6), 3, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range out {
		if b.Err != nil {
			t.Fatalf("record %d: %v", i, b.Err)
		}
		viol, err := e.Rules().Violations(b.Res.Rec)
		if err != nil {
			t.Fatal(err)
		}
		if len(viol) > 0 {
			t.Errorf("record %d violates %v", i, viol)
		}
	}
}

// TestDecodeBatchCustomFn routes a baseline through the pool via a method
// expression.
func TestDecodeBatchCustomFn(t *testing.T) {
	schema := testSchema(t)
	slots := testGrammar(t, schema)
	tok := vocab.Telemetry()
	e := testEngine(t, formatAwareLM{tok: tok, slots: slots}, LeJIT)
	prompts := testPrompts(4)
	out, err := e.DecodeBatch(prompts, 2, 9, (*Engine).Vanilla)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(prompts) {
		t.Fatalf("got %d results, want %d", len(out), len(prompts))
	}
	n := 0
	for _, b := range out {
		if b.Err == nil {
			n++
		}
	}
	if n == 0 {
		t.Fatal("vanilla batch produced no records at all")
	}
}

// TestDecodeBatchRace hammers the pool so `go test -race` can prove engine
// isolation: shared LM weights and the shared compiled rule formula are
// read-only; everything mutable is per-clone.
func TestDecodeBatchRace(t *testing.T) {
	e := testEngine(t, uniformLM{vocab: vocab.Telemetry().Size()}, LeJIT)
	prompts := testPrompts(24)
	for round := 0; round < 3; round++ {
		if _, err := e.DecodeBatch(prompts, 8, int64(round), nil); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCloneSharesCompiledRules verifies the satellite fix: cloning must not
// recompile rules or burn solver checks on a satisfiability pre-check.
func TestCloneSharesCompiledRules(t *testing.T) {
	e := testEngine(t, uniformLM{vocab: vocab.Telemetry().Size()}, LeJIT)
	c, err := e.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if got := c.SolverStats().Checks; got != 0 {
		t.Errorf("clone performed %d solver checks at construction, want 0", got)
	}
	if c.ruleFormula == nil {
		t.Error("clone did not inherit the compiled rule formula")
	}
	// The clone must still enforce: decode and check compliance.
	res, err := c.Impute(rules.Record{"TotalIngress": {120}, "Congestion": {10}}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	viol, err := c.Rules().Violations(res.Rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(viol) > 0 {
		t.Errorf("clone output violates %v", viol)
	}
}

// TestMixSeed pins the splitmix64 seed derivation: distinct indices under
// one batch seed never collide, and — the failure mode of the old affine
// seed+i*7919 scheme — two nearby batch seeds never alias each other's
// per-record streams (seed 0 record 1 used to equal seed 7919 record 0).
func TestMixSeed(t *testing.T) {
	seen := map[int64][2]int64{}
	for _, seed := range []int64{0, 1, 7919, -7919, 42, 1 << 40} {
		for i := 0; i < 64; i++ {
			s := MixSeed(seed, i)
			if prev, dup := seen[s]; dup {
				t.Fatalf("MixSeed(%d,%d) == MixSeed(%d,%d) == %d", seed, i, prev[0], prev[1], s)
			}
			seen[s] = [2]int64{seed, int64(i)}
		}
	}
	if MixSeed(3, 5) != MixSeed(3, 5) {
		t.Error("MixSeed not deterministic")
	}
}

// TestDecodeRequestsPerRecordCtx: a request whose context is already done
// must not decode at all, and must not disturb its batch-mates.
func TestDecodeRequestsPerRecordCtx(t *testing.T) {
	e := testEngine(t, uniformLM{vocab: vocab.Telemetry().Size()}, LeJIT)
	prompts := testPrompts(3)
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	reqs := []BatchRequest{
		{Prompt: prompts[0]},
		{Prompt: prompts[1], Ctx: dead},
		{Prompt: prompts[2]},
	}
	out, err := e.DecodeRequests(context.Background(), reqs, 2, 42, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(out[1].Err, context.Canceled) {
		t.Errorf("cancelled record err = %v, want context.Canceled", out[1].Err)
	}
	if out[1].Res.Stats.Tokens != 0 {
		t.Errorf("cancelled record emitted %d tokens, want 0", out[1].Res.Stats.Tokens)
	}
	for _, i := range []int{0, 2} {
		if out[i].Err != nil {
			t.Errorf("record %d: %v", i, out[i].Err)
		}
	}
}

// TestDecodeRequestsSeedOverride: an explicit per-request seed must make the
// output independent of the record's position in the batch (the serving
// determinism contract, DESIGN.md §8).
func TestDecodeRequestsSeedOverride(t *testing.T) {
	e := testEngine(t, uniformLM{vocab: vocab.Telemetry().Size()}, LeJIT)
	prompts := testPrompts(4)
	seed := int64(1234)
	decodeAt := func(pos, n int) string {
		reqs := make([]BatchRequest, n)
		for i := range reqs {
			reqs[i].Prompt = prompts[i]
		}
		reqs[pos].Prompt = prompts[3]
		reqs[pos].Seed = &seed
		out, err := e.DecodeRequests(context.Background(), reqs, 1, 99, nil)
		if err != nil {
			t.Fatal(err)
		}
		if out[pos].Err != nil {
			t.Fatal(out[pos].Err)
		}
		return formatRec(t, e, out[pos].Res.Rec)
	}
	first := decodeAt(0, 1)
	if got := decodeAt(2, 3); got != first {
		t.Errorf("seeded record differs by batch position:\n got %q\nwant %q", got, first)
	}
}

// TestImputeCtxCancelMidDecode: cancelling during the decode stops it at a
// token boundary with the context's error.
func TestImputeCtxCancelMidDecode(t *testing.T) {
	e := testEngine(t, uniformLM{vocab: vocab.Telemetry().Size()}, LeJIT)
	ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer cancel()
	time.Sleep(time.Millisecond) // ensure the deadline has passed
	_, err := e.ImputeCtx(ctx, rules.Record{"TotalIngress": {120}, "Congestion": {10}}, rand.New(rand.NewSource(1)))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestBatchImputeCompat keeps the package-level entry point working.
func TestBatchImputeCompat(t *testing.T) {
	schema := testSchema(t)
	rs, err := rules.ParseRuleSet(testRules, schema)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		LM: uniformLM{vocab: vocab.Telemetry().Size()}, Tok: vocab.Telemetry(),
		Schema: schema, Rules: rs, Slots: testGrammar(t, schema), Mode: LeJIT,
	}
	out, err := BatchImpute(cfg, testPrompts(3), 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("got %d results, want 3", len(out))
	}
	for i, b := range out {
		if b.Err != nil {
			t.Fatalf("record %d: %v", i, b.Err)
		}
	}
}
