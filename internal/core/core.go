// Package core implements the paper's contribution: Just-in-Time Logic
// Enforcement (LeJIT). The engine interleaves the SMT solver into the
// language model's token-by-token inference: before each character is
// emitted, the solver computes — from the rules and everything generated so
// far, with lookahead over the not-yet-generated suffix — which next
// characters keep a rule-compliant completion reachable, masks the rest out
// of the model's logits, renormalizes, and samples (paper §3, Fig 1b/2).
//
// The package also implements the evaluated baselines: Vanilla (free
// sampling), Rejection (resample until compliant), PostHoc (L1-minimal SMT
// repair of the free sample — the Zoom2Net-CEM strategy), and a
// StructureOnly mode (grammar/width masking without the solver — the
// constrained-decoding strawman of §2.2).
package core

import (
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/nn"
	"repro/internal/prefixcache"
	"repro/internal/rules"
	"repro/internal/smt"
	"repro/internal/vocab"
)

// Session is an incremental decoding session over a language model.
type Session interface {
	// Append feeds one token; afterwards Logits reflects the next position.
	Append(tok int) error
	// Logits returns the next-token logits. The engine reads but does not
	// retain the returned slice; it may be reused by the next Append.
	Logits() []float32
}

// LM abstracts the language model so the engine stays model-agnostic
// ("LeJIT is LLM-agnostic", §4).
type LM interface {
	VocabSize() int
	NewSession() Session
}

// BatchSession is the lock-step analogue of Session: one forward pass
// advances many independent decoding lanes at once, so the LM's weights are
// streamed from memory once per token step instead of once per record.
// Lanes are ragged — any subset may be advanced per call, each at its own
// position.
type BatchSession interface {
	// AppendBatch feeds toks[i] to lanes[i] for every i. Implementations
	// must validate all lanes before mutating any state; a per-lane failure
	// (e.g. context-length overflow) is reported via an error that unwraps
	// to *nn.LaneError, leaving the batch untouched so the caller can retire
	// the lane and retry the rest.
	AppendBatch(lanes, toks []int) error
	// Logits returns lane's next-token logits after its last step; the
	// engine reads but does not retain the returned slice.
	Logits(lane int) []float32
	// Len reports the number of tokens lane has consumed.
	Len(lane int) int
}

// BatchLM is an LM whose sessions can be stepped in lock-step. When the
// engine's LM implements it, DecodeRequests routes eligible records through
// the batched GEMM path (lockstep.go); otherwise every record decodes on
// its own Session.
type BatchLM interface {
	LM
	NewBatchSession(n int) BatchSession
}

// nnLM adapts *nn.Model to the LM and BatchLM interfaces.
type nnLM struct{ m *nn.Model }

func (a nnLM) VocabSize() int                     { return a.m.Cfg.Vocab }
func (a nnLM) NewSession() Session                { return a.m.NewSession() }
func (a nnLM) NewBatchSession(n int) BatchSession { return a.m.NewBatchSession(n) }

// WrapNN adapts a trained transformer to the engine's LM interface.
func WrapNN(m *nn.Model) LM { return nnLM{m: m} }

// Slot is one value position in the output grammar: a field element followed
// by a separator character.
type Slot struct {
	Field string
	Index int
	Sep   byte
}

// TelemetryGrammar builds the record grammar used by the telemetry text
// format: scalar fields in coarseOrder separated by ',', a '|' before the
// fine-grained vector, ',' within it, and a final '\n'.
func TelemetryGrammar(schema *rules.Schema, coarseOrder []string, fineField string) ([]Slot, error) {
	var slots []Slot
	for i, name := range coarseOrder {
		f, ok := schema.Field(name)
		if !ok {
			return nil, fmt.Errorf("core: grammar field %q not in schema", name)
		}
		if f.Kind != rules.Scalar {
			return nil, fmt.Errorf("core: grammar field %q is not scalar", name)
		}
		sep := byte(',')
		if i == len(coarseOrder)-1 {
			sep = '|'
		}
		slots = append(slots, Slot{Field: name, Index: 0, Sep: sep})
	}
	f, ok := schema.Field(fineField)
	if !ok {
		return nil, fmt.Errorf("core: fine field %q not in schema", fineField)
	}
	if f.Kind != rules.Vector {
		return nil, fmt.Errorf("core: fine field %q is not a vector", fineField)
	}
	for i := 0; i < f.Len; i++ {
		sep := byte(',')
		if i == f.Len-1 {
			sep = '\n'
		}
		slots = append(slots, Slot{Field: fineField, Index: i, Sep: sep})
	}
	return slots, nil
}

// Mode selects the enforcement strategy of the guided decoder.
type Mode int

const (
	// LeJIT enforces the full rule set with SMT lookahead (the paper's
	// contribution).
	LeJIT Mode = iota
	// StructureOnly masks only by grammar and field domains — equivalent
	// to grammar-constrained decoding, which cannot track arithmetic
	// constraints (§2.2 "Enforcing rules during decoding").
	StructureOnly
)

// Config assembles an Engine.
type Config struct {
	LM     LM
	Tok    *vocab.Tokenizer
	Schema *rules.Schema
	// PackName identifies the domain pack this engine decodes for (empty for
	// engines built outside the pack registry). It participates in the
	// rule-epoch fingerprint, so two packs whose rule environments happen to
	// coincide still never cross-serve cached snapshots.
	PackName string
	// Rules guide LeJIT decoding and define "violation" for all decoders.
	// May be nil (then guided decoding enforces field domains only).
	Rules *rules.RuleSet
	Slots []Slot
	Mode  Mode

	Temperature float64 // softmax temperature (0 → 1.0)
	TopK        int     // restrict sampling to the K most likely admissible tokens (0 → all)
	// KernelWorkers sizes the LM's kernel worker group (multi-core GEMM
	// sharding, DESIGN.md §15): n > 1 shards eligible kernels across n
	// goroutines, negative means GOMAXPROCS, 0 leaves the model's current
	// setting untouched. Only nn-backed LMs (WrapNN) honor it; output is
	// bit-identical at every setting. The worker group lives on the model,
	// so it is shared by every engine and clone over that model.
	KernelWorkers int
	// QuantizeWeights builds the LM's int8 weight store at engine
	// construction: nn.QuantExact keeps the weights untouched and serves
	// only rows with an exact int8 round-trip (typically none for trained
	// float32 weights), nn.QuantSnap snaps the weights onto their int8 grid
	// once so the whole model streams quantized. Empty leaves the model
	// as-is. Like the worker group, the store is model-level shared state;
	// logits are unchanged by construction (the dequant-exact invariant).
	QuantizeWeights string
	MaxNodes        uint64 // solver search budget per Check (0 → solver default)
	// SolverTimeout is the wall-clock budget per solver Check (0 → none).
	// A Check that exceeds it returns Unknown and the lane fails with an
	// error unwrapping to ErrBudget, so one pathological rule set cannot
	// stall the whole batch.
	SolverTimeout time.Duration
	MaxAttempts   int // rejection-sampling attempt cap (0 → 500)
	MaxRetries    int // vanilla parse-retry cap (0 → 8)
	// NoIntervalFastPath disables the per-slot interval fast path
	// (DESIGN.md §6), forcing every range probe through the solver as the
	// seed implementation did. Ablation knob; decoded output is identical
	// either way.
	NoIntervalFastPath bool
	// ValidateFastPath cross-checks every fast-path answer against a real
	// solver probe, counting disagreements in Stats.FastPathMismatches.
	// Debugging/verification mode: it defeats the fast path's purpose and
	// inflates SolverChecks. With Lookahead set it also cross-checks the
	// speculative suffix validation: every deferred probe is re-checked
	// exactly even when the batched model already certified it, and any
	// disagreement lands in FastPathMismatches too.
	ValidateFastPath bool
	// Lookahead enables speculative constrained decoding (DESIGN.md §13):
	// decode up to Lookahead sampled tokens per window on the interval fast
	// path and grammar masks alone — feasibility probes neither can decide
	// are journaled and assumed true — then settle the whole window against
	// the solver at once, rolling back to the first optimistically-admitted
	// position when validation refutes one. 0 disables speculation: the
	// exact token-at-a-time oracle path, unchanged. Output is bit-identical
	// either way; only LeJIT-mode lanes on rewindable (nn-backed) LMs
	// speculate. Per-request override: BatchRequest.Lookahead.
	Lookahead int
	// TraceHook, when set, receives one TraceStep per guided decoding
	// step — the observability channel for debugging rule interactions
	// and for demonstrating minimal invasiveness. Not invoked by the
	// Vanilla/Rejection/PostHoc baselines.
	TraceHook func(TraceStep)
	// FaultHook, when set, is called once per guided decoding step just
	// before the solver probes, mirroring TraceHook. Test-only fault
	// injection: a returned error fails the lane with it (wrap ErrBudget to
	// simulate a solver stall), a panic exercises the recover barrier, and
	// a sleep makes the lane slow. Never set in production configs.
	FaultHook func(FaultSite) error
	// PrefixCache, when set, lets guided decodes start warm from (and
	// capture into) a cross-request radix prefix cache pairing transformer
	// KV snapshots with solver witness state (DESIGN.md §11). Only engines
	// whose LM is a WrapNN transformer participate; warm output stays
	// bit-identical to cold. Share one cache across every clone of one
	// engine family (SetPrefixCache does this); snapshots from a different
	// rule environment are fenced off by the rule-epoch fingerprint.
	PrefixCache *prefixcache.Cache
}

// Stats reports what one decode did.
type Stats struct {
	Tokens       int    // tokens emitted (excluding the prompt)
	MaskedSteps  int    // steps where ≥1 candidate token was pruned
	ForcedSteps  int    // steps with exactly one admissible token (paper Fig 1b step ⑤)
	SolverChecks uint64 // SMT Check calls attributable to this decode
	Attempts     int    // sampling attempts (rejection baseline)
	Malformed    int    // free-sampling outputs that failed to parse
	Repaired     bool   // post-hoc repair modified the output
	// OracleQueries counts range-feasibility probes issued by the guided
	// decoder.
	OracleQueries uint64
	// OracleFastPath counts probes answered locally from the slot's
	// interval state (no solver call); OracleProbes counts probes that
	// reached the solver — the two partition OracleQueries. (An epoch-keyed
	// probe cache once sat between them; it was removed after BENCH_2
	// measured a 0.17% hit rate, see DESIGN.md §6.) FastPathMismatches
	// counts ValidateFastPath disagreements — nonzero means a soundness bug.
	OracleFastPath     uint64
	OracleProbes       uint64
	FastPathMismatches uint64
	// LogProb is the renormalized log-probability of the returned token
	// sequence (filled by BeamImpute; 0 for samplers).
	LogProb float64
	// PrefixHitTokens is how many leading tokens (BOS included) this decode
	// restored from the cross-request prefix cache instead of running
	// through the transformer; 0 means a cold decode. PrefixCaptures counts
	// snapshots this decode inserted into the cache.
	PrefixHitTokens int
	PrefixCaptures  int
	// SpecAcceptedTokens counts sampled tokens decoded inside a speculation
	// window (Config.Lookahead) that survived suffix validation;
	// SpecRollbacks counts windows that failed it and re-decoded from the
	// first refuted position. Both zero when speculation is off. Note that
	// speculation shifts work between the Oracle* mechanism counters (a
	// deferred probe is neither fast path nor solver probe at ask time) —
	// only the output and the mask-derived counters (Tokens, MaskedSteps,
	// ForcedSteps) are invariant across Lookahead settings.
	SpecAcceptedTokens int
	SpecRollbacks      int
	// KernelWorkers is the LM kernel worker-group size this decode ran
	// under (1 = serial; 0 for non-nn LMs). QuantizedWeightRows is the
	// fraction of weight rows served from the int8 store (0 when the store
	// is absent or disabled).
	KernelWorkers       int
	QuantizedWeightRows float64
}

// Result is one decoded record plus its statistics.
type Result struct {
	Rec   rules.Record
	Stats Stats
}

// TraceStep describes one guided decoding step (see Config.TraceHook).
type TraceStep struct {
	Field  string // field being generated
	Index  int    // element index within the field
	Prefix string // digit prefix accumulated before this step
	// Admissible are the token ids the rules allow at this step;
	// Structural counts what the grammar/width alone would allow.
	Admissible []int
	Structural int
	Chosen     int // the sampled token id
}

// ErrInfeasible is returned when the rules conjoined with the prompt's known
// values admit no compliant completion (possible when a test record itself
// violates a mined rule).
type ErrInfeasible struct{ Detail string }

func (e ErrInfeasible) Error() string {
	return "core: no rule-compliant completion exists: " + e.Detail
}

// Engine decodes records from a language model. It owns a solver with the
// rule set compiled once; per-record state is pushed and popped, so an
// Engine is not safe for concurrent use — Clone one per goroutine.
type Engine struct {
	cfg     Config
	solver  *smt.Solver
	binding *rules.Binding
	// ruleFormula is the rule set compiled once against the binding's
	// variables; clones re-assert it instead of recompiling. Sharing is
	// sound because rules.Instantiate declares variables in schema order,
	// so every clone's solver assigns the same Var ids.
	ruleFormula smt.Formula
	// digitTok[d] is the token id of digit d.
	digitTok  [10]int
	maxDigits map[string]int // per field, from the domain's upper bound
	// lastModel is the most recent model the solver produced, valid while
	// the epoch matches lastModelEpoch; it seeds each slot oracle's witness
	// so a slot's first probe (HasPath) usually costs no solver check.
	lastModel      map[smt.Var]int64
	lastModelEpoch uint64
	// varConjuncts indexes the rule formula's top-level conjuncts by the
	// variables they mention, built lazily on the first model-patching
	// attempt (oracle.go). Shared across records: the rule formula never
	// changes after construction.
	varConjuncts map[smt.Var][]smt.Formula
	// fingerprint is the rule-epoch fingerprint stamped on prefix-cache
	// snapshots: a hash of everything that decides whether a cached
	// (KV state, witness model) pair is still valid — the rule set, schema,
	// grammar, decode mode, pack identity, and the LM's identity. It doubles
	// as the pack epoch (internal/pack): a hot reload builds a new engine
	// whose fingerprint differs exactly when the rule environment changed, so
	// snapshots from a stale pack are dropped on sight. A cache shared across
	// engine families with different fingerprints simply never cross-serves.
	fingerprint uint64
	// poolMu guards pool, a free list of idle clones used by the lock-step
	// scheduler (lockstep.go) so per-lane engines are cloned once and then
	// recycled across batches. Only the root engine of a clone family pools.
	// poolDemand is the largest concurrent-lane demand seen so far; it lifts
	// the pool's retention cap above 2×NumCPU so large micro-batches on
	// small hosts keep their clones across steady-state batches.
	poolMu     sync.Mutex
	pool       []*Engine
	poolDemand int
}

// NewEngine validates the configuration, compiles the rules, and returns a
// ready engine.
func NewEngine(cfg Config) (*Engine, error) {
	return newEngine(cfg, nil)
}

// newEngine builds an engine; when ruleFormula is non-nil it is asserted
// as-is (the clone path), skipping rule compilation and the initial
// satisfiability pre-check, which the originating engine already did.
func newEngine(cfg Config, ruleFormula smt.Formula) (*Engine, error) {
	if cfg.LM == nil || cfg.Tok == nil || cfg.Schema == nil {
		return nil, fmt.Errorf("core: LM, Tok, and Schema are required")
	}
	if len(cfg.Slots) == 0 {
		return nil, fmt.Errorf("core: empty grammar")
	}
	if cfg.Temperature == 0 {
		cfg.Temperature = 1
	}
	if cfg.MaxAttempts == 0 {
		cfg.MaxAttempts = 500
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 8
	}
	if cfg.LM.VocabSize() != cfg.Tok.Size() {
		return nil, fmt.Errorf("core: LM vocab %d != tokenizer %d", cfg.LM.VocabSize(), cfg.Tok.Size())
	}

	e := &Engine{cfg: cfg, maxDigits: map[string]int{}}
	e.digitTok = cfg.Tok.DigitIDs()
	for d, id := range e.digitTok {
		if id == -1 {
			return nil, fmt.Errorf("core: tokenizer lacks digit %d", d)
		}
	}
	seen := map[string]map[int]bool{}
	for _, s := range cfg.Slots {
		f, ok := cfg.Schema.Field(s.Field)
		if !ok {
			return nil, fmt.Errorf("core: slot field %q not in schema", s.Field)
		}
		if s.Index < 0 || s.Index >= f.Len {
			return nil, fmt.Errorf("core: slot %s[%d] out of range", s.Field, s.Index)
		}
		if f.Lo < 0 {
			return nil, fmt.Errorf("core: field %q has negative domain; the digit grammar covers non-negative values only", s.Field)
		}
		if cfg.Tok.ID(s.Sep) == -1 {
			return nil, fmt.Errorf("core: separator %q not in tokenizer", string(s.Sep))
		}
		if seen[s.Field] == nil {
			seen[s.Field] = map[int]bool{}
		}
		if seen[s.Field][s.Index] {
			return nil, fmt.Errorf("core: slot %s[%d] appears twice", s.Field, s.Index)
		}
		seen[s.Field][s.Index] = true
		e.maxDigits[s.Field] = len(strconv.FormatInt(f.Hi, 10))
	}

	e.solver = smt.NewSolver()
	if cfg.MaxNodes > 0 {
		e.solver.MaxNodes = cfg.MaxNodes
	}
	e.solver.Timeout = cfg.SolverTimeout
	e.binding = rules.Instantiate(e.solver, cfg.Schema)
	if cfg.Rules != nil && cfg.Mode == LeJIT {
		if ruleFormula != nil {
			e.ruleFormula = ruleFormula
			e.solver.Assert(ruleFormula)
		} else {
			f, err := cfg.Rules.CompileAll(e.binding)
			if err != nil {
				return nil, fmt.Errorf("core: compiling rules: %w", err)
			}
			e.ruleFormula = f
			e.solver.Assert(f)
			if r := e.solver.Check(); r.Status != smt.Sat {
				return nil, fmt.Errorf("core: rule set is unsatisfiable on its own (%v)", r.Status)
			}
		}
	}
	// Kernel configuration lands on the shared model before the fingerprint
	// is taken. Both calls are idempotent on the model (SetKernelWorkers
	// no-ops on an unchanged count, Quantize returns the existing store), so
	// the clone path re-applying the same config mid-serve is free — and a
	// snap-mode Quantize changes weights only on the first engine build,
	// before any decoding, never under a live prefix cache.
	if lm, ok := cfg.LM.(nnLM); ok {
		if cfg.KernelWorkers != 0 {
			lm.m.SetKernelWorkers(cfg.KernelWorkers)
		}
		if cfg.QuantizeWeights != "" {
			if _, err := lm.m.Quantize(cfg.QuantizeWeights); err != nil {
				return nil, fmt.Errorf("core: quantizing weights: %w", err)
			}
		}
	}
	e.fingerprint = ruleFingerprint(cfg)
	return e, nil
}

// ruleFingerprint hashes the rule environment a prefix-cache snapshot is
// valid under. Two engines agree on a fingerprint exactly when a snapshot
// captured by one is sound for the other: same compiled rules (RuleSet.String
// is the parseable DSL rendering), same schema domains, same grammar (the
// token⇄slot-value mapping), same enforcement mode, and the same transformer
// weights (by model identity — the cache is in-process, and cached sessions
// keep their model reachable, so the pointer cannot be recycled under a live
// entry). Sampling knobs (temperature, top-K, seeds) are deliberately
// excluded: they shape what is sampled after the snapshot, not the validity
// of the state restored from it.
func ruleFingerprint(cfg Config) uint64 {
	h := fnv.New64a()
	if lm, ok := cfg.LM.(nnLM); ok {
		fmt.Fprintf(h, "model=%p;", lm.m)
	}
	fmt.Fprintf(h, "pack=%s;vocab=%d;mode=%d;", cfg.PackName, cfg.Tok.Size(), cfg.Mode)
	for _, f := range cfg.Schema.Fields() {
		fmt.Fprintf(h, "f=%s:%d:%d:%d:%d;", f.Name, f.Kind, f.Lo, f.Hi, f.Len)
	}
	for _, s := range cfg.Slots {
		fmt.Fprintf(h, "s=%s[%d]%c;", s.Field, s.Index, s.Sep)
	}
	if cfg.Rules != nil {
		io.WriteString(h, cfg.Rules.String())
	}
	return h.Sum64()
}

// SetPrefixCache installs (or, with nil, removes) the cross-request prefix
// cache on the engine after construction, mirroring SetSolverBudget: the
// cache is written into the config so future clones inherit it, and idle
// pooled clones are updated in place. Call before decoding begins.
func (e *Engine) SetPrefixCache(c *prefixcache.Cache) {
	e.cfg.PrefixCache = c
	e.poolMu.Lock()
	for _, cl := range e.pool {
		cl.cfg.PrefixCache = c
		cl.fingerprint = e.fingerprint
	}
	e.poolMu.Unlock()
}

// PrefixCache returns the engine's prefix cache (nil when disabled).
func (e *Engine) PrefixCache() *prefixcache.Cache { return e.cfg.PrefixCache }

// SetSolverBudget installs a per-Check solver budget (node limit and
// wall-clock deadline; a zero leaves that dimension unlimited) on the engine
// after construction, covering engines built by helpers that take no Config
// (the experiments harness, -demo). The budget is written into the engine's
// config so every future Clone — including pooled lock-step lanes — inherits
// it; call before decoding begins, since already-pooled clones are updated
// only as the pool drains through Clone.
func (e *Engine) SetSolverBudget(maxNodes uint64, timeout time.Duration) {
	if maxNodes > 0 {
		e.cfg.MaxNodes = maxNodes
		e.solver.MaxNodes = maxNodes
	}
	e.cfg.SolverTimeout = timeout
	e.solver.Timeout = timeout
	e.poolMu.Lock()
	for _, c := range e.pool {
		if maxNodes > 0 {
			c.cfg.MaxNodes = maxNodes
			c.solver.MaxNodes = maxNodes
		}
		c.cfg.SolverTimeout = timeout
		c.solver.Timeout = timeout
	}
	e.poolMu.Unlock()
}

// SetKernelWorkers sizes the LM's kernel worker group after construction,
// mirroring SetSolverBudget: the count is written into the config so future
// clones inherit it (their re-application is a no-op on the shared model),
// and idle pooled clones' configs are updated in place. Returns the
// effective worker count — 0 when the LM is not nn-backed (non-transformer
// LMs have no kernels to shard). Call before decoding begins.
func (e *Engine) SetKernelWorkers(n int) int {
	lm, ok := e.cfg.LM.(nnLM)
	if !ok {
		return 0
	}
	eff := lm.m.SetKernelWorkers(n)
	e.cfg.KernelWorkers = eff
	e.poolMu.Lock()
	for _, c := range e.pool {
		c.cfg.KernelWorkers = eff
	}
	e.poolMu.Unlock()
	return eff
}

// SetWeightQuantization builds the LM's int8 weight store after
// construction (mode nn.QuantExact or nn.QuantSnap; see
// Config.QuantizeWeights) and records the mode in the config for future
// clones. Idempotent on the shared model — a second call returns the
// existing store's stats. Returns an error for unknown modes or non-nn LMs.
// Call before decoding begins: snap mode rewrites the model's weights.
func (e *Engine) SetWeightQuantization(mode string) (nn.QuantStats, error) {
	lm, ok := e.cfg.LM.(nnLM)
	if !ok {
		return nn.QuantStats{}, fmt.Errorf("core: LM is not an nn model; nothing to quantize")
	}
	st, err := lm.m.Quantize(mode)
	if err != nil {
		return nn.QuantStats{}, err
	}
	e.cfg.QuantizeWeights = st.Mode
	e.poolMu.Lock()
	for _, c := range e.pool {
		c.cfg.QuantizeWeights = st.Mode
	}
	e.poolMu.Unlock()
	return st, nil
}

// SetLookahead sets the speculative-decoding window (Config.Lookahead)
// after construction, mirroring SetSolverBudget: it is written into the
// config so future clones inherit it, and idle pooled clones are updated in
// place. Call before decoding begins.
func (e *Engine) SetLookahead(k int) {
	e.cfg.Lookahead = k
	e.poolMu.Lock()
	for _, c := range e.pool {
		c.cfg.Lookahead = k
	}
	e.poolMu.Unlock()
}

// Clone returns an independent engine with the same configuration (for
// parallel decoding). The compiled rule formula is shared — it is an
// immutable tree and both solvers bind identical Var ids — so cloning does
// no rule recompilation and zero solver checks.
func (e *Engine) Clone() (*Engine, error) { return newEngine(e.cfg, e.ruleFormula) }

// Rules returns the engine's rule set (may be nil).
func (e *Engine) Rules() *rules.RuleSet { return e.cfg.Rules }

// Fingerprint returns the engine's rule-epoch fingerprint. Two engines share
// a fingerprint iff their pack name, model identity, vocabulary, schema,
// grammar, and rule text all coincide; the pack registry exposes it as the
// pack epoch and the prefix cache uses it to drop stale snapshots on sight.
func (e *Engine) Fingerprint() uint64 { return e.fingerprint }

// Configuration returns a copy of the engine's config so a caller (e.g. the
// pack registry's hot reload) can rebuild an equivalent engine with a swapped
// rule set. Slices and pointers inside the copy are shared read-only.
func (e *Engine) Configuration() Config { return e.cfg }

// Slots returns the output grammar.
func (e *Engine) Slots() []Slot { return e.cfg.Slots }

// SolverStats exposes the cumulative SMT statistics, aggregated over the
// engine's own solver and the idle clones in its lock-step pool (lane
// decodes run on pooled clones, so a family-wide view is what per-token
// accounting needs). Clones checked out mid-decode are not counted; read
// when the engine is quiescent.
func (e *Engine) SolverStats() smt.Stats {
	st := e.solver.Stats()
	e.poolMu.Lock()
	for _, c := range e.pool {
		cs := c.solver.Stats()
		st.Checks += cs.Checks
		st.Nodes += cs.Nodes
		st.Propagations += cs.Propagations
		st.Conflicts += cs.Conflicts
		st.OptQueries += cs.OptQueries
		st.BaseBuilds += cs.BaseBuilds
		st.WarmStarts += cs.WarmStarts
		st.BudgetStops += cs.BudgetStops
	}
	e.poolMu.Unlock()
	return st
}

// slotVar resolves the solver variable of a slot.
func (e *Engine) slotVar(s Slot) smt.Var {
	vs, _ := e.binding.Vars(s.Field)
	return vs[s.Index]
}

// promptFor renders the known prefix values as prompt text and returns the
// number of leading slots they cover. Known must cover a (possibly empty)
// prefix of the grammar, each covered field completely.
func (e *Engine) promptFor(known rules.Record) (string, int, error) {
	if len(known) == 0 {
		return "", 0, nil
	}
	var b strings.Builder
	covered := 0
	for _, s := range e.cfg.Slots {
		vs, ok := known[s.Field]
		if !ok {
			break
		}
		if s.Index >= len(vs) {
			return "", 0, fmt.Errorf("core: known field %q has %d values, slot needs index %d", s.Field, len(vs), s.Index)
		}
		b.WriteString(strconv.FormatInt(vs[s.Index], 10))
		b.WriteByte(s.Sep)
		covered++
	}
	// Every known field must actually be consumed by the covered prefix.
	consumed := map[string]bool{}
	for _, s := range e.cfg.Slots[:covered] {
		consumed[s.Field] = true
	}
	for f := range known {
		if !consumed[f] {
			return "", 0, fmt.Errorf("core: known field %q is not a grammar prefix", f)
		}
	}
	return b.String(), covered, nil
}

// parseBySlots parses generated text according to the grammar from the given
// slot onward, returning the per-slot values; the text must match
// digits+separator per slot exactly.
func (e *Engine) parseBySlots(text string, fromSlot int) ([]int64, error) {
	vals := make([]int64, 0, len(e.cfg.Slots)-fromSlot)
	pos := 0
	for _, s := range e.cfg.Slots[fromSlot:] {
		start := pos
		for pos < len(text) && text[pos] >= '0' && text[pos] <= '9' {
			pos++
		}
		if pos == start {
			return nil, fmt.Errorf("core: expected digits for %s[%d] at offset %d of %q", s.Field, s.Index, start, text)
		}
		v, err := strconv.ParseInt(text[start:pos], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("core: value of %s[%d]: %w", s.Field, s.Index, err)
		}
		if pos >= len(text) || text[pos] != s.Sep {
			return nil, fmt.Errorf("core: expected separator %q after %s[%d] in %q", string(s.Sep), s.Field, s.Index, text)
		}
		pos++
		vals = append(vals, v)
	}
	if pos != len(text) {
		return nil, fmt.Errorf("core: trailing content %q", text[pos:])
	}
	return vals, nil
}

// assemble builds the output record from known values plus generated slot
// values (aligned with Slots[fromSlot:]).
func (e *Engine) assemble(known rules.Record, fromSlot int, vals []int64) rules.Record {
	rec := rules.Record{}
	for f, vs := range known {
		rec[f] = append([]int64(nil), vs...)
	}
	for i, s := range e.cfg.Slots[fromSlot:] {
		f, _ := e.cfg.Schema.Field(s.Field)
		if rec[s.Field] == nil {
			rec[s.Field] = make([]int64, f.Len)
		}
		rec[s.Field][s.Index] = vals[i]
	}
	return rec
}

// newPromptedSession starts an LM session primed with BOS and the prompt.
func (e *Engine) newPromptedSession(prompt string) (Session, error) {
	sess := e.cfg.LM.NewSession()
	if err := sess.Append(vocab.BOS); err != nil {
		return nil, err
	}
	ids, err := e.cfg.Tok.Encode(prompt)
	if err != nil {
		return nil, err
	}
	for _, id := range ids {
		if err := sess.Append(id); err != nil {
			return nil, err
		}
	}
	return sess, nil
}

// sampleMasked samples a token among allowed ids using the engine's
// temperature and top-K, renormalizing the remaining mass so the model's
// relative preferences among admissible tokens are preserved (the
// minimal-invasiveness property, §3). rng is consumed through floatSource
// so speculative lanes can substitute a replaying buffer (spec.go); the
// draw discipline — exactly one Float64, and none for a forced mask — is
// what keeps RNG streams aligned across rollbacks.
func (e *Engine) sampleMasked(logits []float32, allowed []int, rng floatSource) int {
	if len(allowed) == 0 {
		panic("core: sampleMasked with empty candidate set")
	}
	if len(allowed) == 1 {
		return allowed[0]
	}
	type cand struct {
		id int
		l  float64
	}
	cands := make([]cand, len(allowed))
	for i, id := range allowed {
		cands[i] = cand{id: id, l: float64(logits[id]) / e.cfg.Temperature}
	}
	if k := e.cfg.TopK; k > 0 && k < len(cands) {
		// Partial selection sort of the K largest.
		for i := 0; i < k; i++ {
			best := i
			for j := i + 1; j < len(cands); j++ {
				if cands[j].l > cands[best].l {
					best = j
				}
			}
			cands[i], cands[best] = cands[best], cands[i]
		}
		cands = cands[:k]
	}
	maxL := cands[0].l
	for _, c := range cands[1:] {
		if c.l > maxL {
			maxL = c.l
		}
	}
	var sum float64
	ps := make([]float64, len(cands))
	for i, c := range cands {
		ps[i] = math.Exp(c.l - maxL)
		sum += ps[i]
	}
	r := rng.Float64() * sum
	for i, p := range ps {
		r -= p
		if r <= 0 {
			return cands[i].id
		}
	}
	return cands[len(cands)-1].id
}
