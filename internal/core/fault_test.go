package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/rules"
	"repro/internal/vocab"
)

// nnFaultEngine is nnTestEngine plus a fault hook, for injecting failures
// into the lock-step path deterministically.
func nnFaultEngine(tb testing.TB, hook func(FaultSite) error) *Engine {
	tb.Helper()
	schema := rules.MustSchema(
		rules.Field{Name: "TotalIngress", Kind: rules.Scalar, Lo: 0, Hi: 300},
		rules.Field{Name: "Congestion", Kind: rules.Scalar, Lo: 0, Hi: 100},
		rules.Field{Name: "I", Kind: rules.Vector, Len: 5, Lo: 0, Hi: 60},
	)
	rs, err := rules.ParseRuleSet(testRules, schema)
	if err != nil {
		tb.Fatal(err)
	}
	slots, err := TelemetryGrammar(schema, []string{"TotalIngress", "Congestion"}, "I")
	if err != nil {
		tb.Fatal(err)
	}
	e, err := NewEngine(Config{
		LM: WrapNN(nnTestModel(tb)), Tok: vocab.Telemetry(), Schema: schema,
		Rules: rs, Slots: slots, Mode: LeJIT, FaultHook: hook,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return e
}

func faultReqs(n int) []BatchRequest {
	reqs := make([]BatchRequest, n)
	for i := range reqs {
		reqs[i].Prompt = rules.Record{"TotalIngress": {60 + 10*int64(i)}, "Congestion": {int64(i % 3)}}
	}
	return reqs
}

// poison returns a hook that fires f once the lane whose TotalIngress known
// value equals target has sampled at least two tokens — fault injection keyed
// on the request, not on batch position.
func poison(target int64, f func() error) func(FaultSite) error {
	return func(s FaultSite) error {
		if s.Known == nil || len(s.Known["TotalIngress"]) == 0 {
			return nil
		}
		if s.Known["TotalIngress"][0] == target && s.Tokens >= 2 {
			return f()
		}
		return nil
	}
}

// TestLockStepPanicIsolated: a lane that panics mid-decode fails alone with a
// *PanicError; its batch-mates' records are bit-identical to a fault-free
// run, and the engine keeps serving afterwards (the poisoned clone was
// discarded, not pooled).
func TestLockStepPanicIsolated(t *testing.T) {
	reqs := faultReqs(4)
	bad := reqs[2].Prompt["TotalIngress"][0]
	e := nnFaultEngine(t, poison(bad, func() error { panic("injected lane panic") }))
	clean := nnTestEngine(t)

	out, err := e.DecodeRequests(context.Background(), reqs, 1, 42, nil)
	if err != nil {
		t.Fatal(err)
	}
	var pe *PanicError
	if !errors.As(out[2].Err, &pe) {
		t.Fatalf("poisoned lane err %v, want *PanicError", out[2].Err)
	}
	if len(pe.Stack) == 0 {
		t.Error("PanicError carries no stack")
	}
	for _, i := range []int{0, 1, 3} {
		res, serr := soloDecode(t, clean, reqs[i], 42, i)
		if serr != nil || out[i].Err != nil {
			t.Fatalf("record %d: solo err %v, batched err %v", i, serr, out[i].Err)
		}
		if !reflect.DeepEqual(out[i].Res.Rec, res.Rec) {
			t.Errorf("record %d disturbed by panicking batch-mate: %v != %v", i, out[i].Res.Rec, res.Rec)
		}
	}

	// The process — and the engine — survive: a second batch that trips no
	// fault (different prompt values) decodes clean, proving no poisoned
	// clone re-entered the pool.
	reqs2 := faultReqs(3)
	for i := range reqs2 {
		reqs2[i].Prompt["TotalIngress"][0] += 101
	}
	out2, err := e.DecodeRequests(context.Background(), reqs2, 1, 43, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range out2 {
		if r.Err != nil {
			t.Errorf("post-panic record %d: %v", i, r.Err)
		}
	}
}

// TestLockStepBudgetErrorIsolated: a lane whose solver "stalls" (the hook
// returns an error wrapping ErrBudget) fails with an error unwrapping to
// ErrBudget while its batch-mates decode untouched.
func TestLockStepBudgetErrorIsolated(t *testing.T) {
	reqs := faultReqs(4)
	bad := reqs[1].Prompt["TotalIngress"][0]
	e := nnFaultEngine(t, poison(bad, func() error {
		return fmt.Errorf("injected solver stall: %w", ErrBudget)
	}))
	clean := nnTestEngine(t)

	out, err := e.DecodeRequests(context.Background(), reqs, 1, 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(out[1].Err, ErrBudget) {
		t.Fatalf("stalled lane err %v, want ErrBudget", out[1].Err)
	}
	for _, i := range []int{0, 2, 3} {
		res, serr := soloDecode(t, clean, reqs[i], 9, i)
		if serr != nil || out[i].Err != nil {
			t.Fatalf("record %d: solo err %v, batched err %v", i, serr, out[i].Err)
		}
		if !reflect.DeepEqual(out[i].Res.Rec, res.Rec) {
			t.Errorf("record %d disturbed by stalled batch-mate: %v != %v", i, out[i].Res.Rec, res.Rec)
		}
	}
}

// TestSolverBudgetFailsLaneNotProcess: an absurdly small real node budget
// makes decoding fail with ErrBudget — never with a spurious ErrInfeasible,
// and never by hanging.
func TestSolverBudgetFailsLaneNotProcess(t *testing.T) {
	e := nnTestEngine(t)
	eng, err := e.Clone()
	if err != nil {
		t.Fatal(err)
	}
	eng.SetSolverBudget(1, 0)
	_, derr := eng.ImputeCtx(context.Background(),
		rules.Record{"TotalIngress": {120}, "Congestion": {10}}, rand.New(rand.NewSource(1)))
	if !errors.Is(derr, ErrBudget) {
		t.Fatalf("decode under 1-node budget: err %v, want ErrBudget", derr)
	}
	var inf ErrInfeasible
	if errors.As(derr, &inf) {
		t.Fatalf("budget exhaustion misreported as infeasibility: %v", derr)
	}
}

// TestSolverTimeoutStopsMidCheck: a 1ns wall-clock budget trips inside the
// very first Check instead of letting it run to completion.
func TestSolverTimeoutStopsMidCheck(t *testing.T) {
	e := nnTestEngine(t)
	eng, err := e.Clone()
	if err != nil {
		t.Fatal(err)
	}
	eng.SetSolverBudget(0, time.Nanosecond)
	start := time.Now()
	_, derr := eng.ImputeCtx(context.Background(),
		rules.Record{"TotalIngress": {120}, "Congestion": {10}}, rand.New(rand.NewSource(1)))
	if !errors.Is(derr, ErrBudget) {
		t.Fatalf("decode under 1ns timeout: err %v, want ErrBudget", derr)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatalf("timeout took %v to fire", time.Since(start))
	}
}

// TestClonePoolBounded: releasing a burst of clones retains at most
// 2×NumCPU of them.
func TestClonePoolBounded(t *testing.T) {
	e := nnTestEngine(t)
	cap := 2 * runtime.NumCPU()
	for i := 0; i < cap+8; i++ {
		c, err := e.Clone()
		if err != nil {
			t.Fatal(err)
		}
		e.releaseClone(c)
	}
	e.poolMu.Lock()
	n := len(e.pool)
	e.poolMu.Unlock()
	if n > cap {
		t.Fatalf("pool retained %d clones, cap %d", n, cap)
	}
}

// TestWorkerPoolPanicRecovered: the per-record worker pool (requests with
// Decode overrides) converts a panic into that record's *PanicError and keeps
// decoding the rest.
func TestWorkerPoolPanicRecovered(t *testing.T) {
	e := nnTestEngine(t)
	reqs := faultReqs(3)
	reqs[1].Decode = func(ctx context.Context, eng *Engine, known rules.Record, rng *rand.Rand) (Result, error) {
		panic("injected override panic")
	}
	out, err := e.DecodeRequests(context.Background(), reqs, 2, 17, nil)
	if err != nil {
		t.Fatal(err)
	}
	var pe *PanicError
	if !errors.As(out[1].Err, &pe) {
		t.Fatalf("override lane err %v, want *PanicError", out[1].Err)
	}
	for _, i := range []int{0, 2} {
		if out[i].Err != nil {
			t.Errorf("record %d failed alongside panicking override: %v", i, out[i].Err)
		}
	}
}
