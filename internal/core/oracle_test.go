package core

import (
	"math/rand"
	"testing"

	"repro/internal/rules"
	"repro/internal/vocab"
)

func fastPathEngine(t *testing.T, mutate func(*Config)) *Engine {
	t.Helper()
	schema := testSchema(t)
	rs, err := rules.ParseRuleSet(testRules, schema)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		LM: uniformLM{vocab: vocab.Telemetry().Size()}, Tok: vocab.Telemetry(),
		Schema: schema, Rules: rs, Slots: testGrammar(t, schema), Mode: LeJIT,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestIntervalFastPathEquivalence is the PR's headline soundness contract:
// the interval fast path must not change a single decoded byte relative to
// probing the solver for everything, across prompts, seeds, and worker
// counts.
func TestIntervalFastPathEquivalence(t *testing.T) {
	fast := fastPathEngine(t, nil)
	slow := fastPathEngine(t, func(c *Config) { c.NoIntervalFastPath = true })
	prompts := testPrompts(16)

	for _, workers := range []int{1, 3} {
		outFast, err := fast.DecodeBatch(prompts, workers, 42, nil)
		if err != nil {
			t.Fatal(err)
		}
		outSlow, err := slow.DecodeBatch(prompts, workers, 42, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range prompts {
			if outFast[i].Err != nil || outSlow[i].Err != nil {
				t.Fatalf("record %d: fast err=%v slow err=%v", i, outFast[i].Err, outSlow[i].Err)
			}
			got := formatRec(t, fast, outFast[i].Res.Rec)
			want := formatRec(t, slow, outSlow[i].Res.Rec)
			if got != want {
				t.Errorf("workers=%d record %d: fast %q != slow %q", workers, i, got, want)
			}
		}
	}
}

// TestIntervalFastPathStats pins the probe accounting: every query resolves
// as exactly one of fast path or solver probe, and on this workload the
// fast path carries the bulk of them.
func TestIntervalFastPathStats(t *testing.T) {
	e := fastPathEngine(t, nil)
	res, err := e.Impute(rules.Record{"TotalIngress": {120}, "Congestion": {10}}, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.OracleQueries == 0 {
		t.Fatal("no oracle queries recorded")
	}
	if st.OracleFastPath+st.OracleProbes != st.OracleQueries {
		t.Errorf("fastpath %d + probes %d != queries %d",
			st.OracleFastPath, st.OracleProbes, st.OracleQueries)
	}
	if st.OracleFastPath == 0 {
		t.Error("fast path answered zero probes")
	}
	if st.OracleProbes >= st.OracleQueries/2 {
		t.Errorf("solver probes %d ≥ half of %d queries: fast path ineffective",
			st.OracleProbes, st.OracleQueries)
	}
	if st.FastPathMismatches != 0 {
		t.Errorf("%d fast-path mismatches without validation enabled?", st.FastPathMismatches)
	}
}

// TestValidateFastPath cross-checks every locally answered probe against the
// solver on real decodes; a single disagreement is a soundness bug in the
// interval/convexity reasoning.
func TestValidateFastPath(t *testing.T) {
	e := fastPathEngine(t, func(c *Config) { c.ValidateFastPath = true })
	for _, prompt := range testPrompts(8) {
		res, err := e.Impute(prompt, rand.New(rand.NewSource(11)))
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.FastPathMismatches != 0 {
			t.Fatalf("prompt %v: %d fast-path answers disagreed with the solver",
				prompt, res.Stats.FastPathMismatches)
		}
	}
}

// TestModelPatchRepair pins the model-patching fast path on the workload it
// was built for: a sum-coupled (disjunction-tainted) series slot, where
// per-digit probes ask for exact values away from the current model's
// assignment. Patching plus single-variable repair must resolve the bulk of
// those without solver probes, and — under ValidateFastPath — every patched
// answer must agree with the solver.
func TestModelPatchRepair(t *testing.T) {
	e := fastPathEngine(t, func(c *Config) { c.ValidateFastPath = true })
	res, err := e.Impute(rules.Record{"TotalIngress": {150}, "Congestion": {20}},
		rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.FastPathMismatches != 0 {
		t.Fatalf("%d patched answers disagreed with the solver", st.FastPathMismatches)
	}
	if st.OracleProbes*4 > st.OracleQueries {
		t.Errorf("solver probes %d > quarter of %d queries: patching ineffective",
			st.OracleProbes, st.OracleQueries)
	}
}

// TestFastPathSolverSavings quantifies the point of the feature: the fast
// path must cut the solver checks of a decode, not just relabel them.
func TestFastPathSolverSavings(t *testing.T) {
	prompt := rules.Record{"TotalIngress": {150}, "Congestion": {20}}
	fast := fastPathEngine(t, nil)
	slow := fastPathEngine(t, func(c *Config) { c.NoIntervalFastPath = true })
	resFast, err := fast.Impute(prompt, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	resSlow, err := slow.Impute(prompt, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if resFast.Stats.SolverChecks*2 > resSlow.Stats.SolverChecks {
		t.Errorf("fast path checks %d not < half of %d",
			resFast.Stats.SolverChecks, resSlow.Stats.SolverChecks)
	}
}
