package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/nn"
	"repro/internal/rules"
	"repro/internal/vocab"
)

// cloneableUniform is uniformLM with session cloning for beam tests.
type cloneableUniform struct{ vocab int }

func (u cloneableUniform) VocabSize() int { return u.vocab }
func (u cloneableUniform) NewSession() Session {
	return &cloneableUniformSession{logits: make([]float32, u.vocab)}
}

type cloneableUniformSession struct {
	logits []float32
	n      int
}

func (s *cloneableUniformSession) Append(tok int) error { s.n++; return nil }
func (s *cloneableUniformSession) Logits() []float32    { return s.logits }
func (s *cloneableUniformSession) CloneSession() Session {
	return &cloneableUniformSession{logits: append([]float32(nil), s.logits...), n: s.n}
}

// cloneableScripted wraps scriptedLM with cloning.
type cloneableScripted struct{ scriptedLM }

func (s cloneableScripted) NewSession() Session {
	return &cloneableScriptedSession{scriptedSession{lm: s.scriptedLM, logits: make([]float32, s.tok.Size())}}
}

type cloneableScriptedSession struct{ scriptedSession }

func (s *cloneableScriptedSession) CloneSession() Session {
	cp := s.scriptedSession
	cp.logits = append([]float32(nil), s.logits...)
	return &cloneableScriptedSession{cp}
}

func TestBeamImputeCompliance(t *testing.T) {
	e := testEngine(t, cloneableUniform{vocab: vocab.Telemetry().Size()}, LeJIT)
	known := rules.Record{"TotalIngress": {100}, "Congestion": {8}}
	for _, width := range []int{1, 2, 4} {
		res, err := e.BeamImpute(known, width)
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		vs, err := e.Rules().Violations(res.Rec)
		if err != nil {
			t.Fatal(err)
		}
		if len(vs) > 0 {
			t.Fatalf("width %d: violations %v in %v", width, vs, res.Rec)
		}
		if res.Stats.LogProb > 0 || math.IsInf(res.Stats.LogProb, 0) {
			t.Errorf("width %d: bad logprob %v", width, res.Stats.LogProb)
		}
	}
}

func TestBeamPrefersLikelyCompliantPath(t *testing.T) {
	// The scripted model wants the compliant sequence exactly; beam must
	// recover it verbatim with near-zero log-loss.
	want := "100,8|20,15,25,39,1\n"
	e := testEngine(t, cloneableScripted{scriptedLM{tok: vocab.Telemetry(), text: want}}, LeJIT)
	res, err := e.BeamImpute(rules.Record{"TotalIngress": {100}, "Congestion": {8}}, 3)
	if err != nil {
		t.Fatal(err)
	}
	wantI := []int64{20, 15, 25, 39, 1}
	for i := range wantI {
		if res.Rec["I"][i] != wantI[i] {
			t.Fatalf("beam missed the model's compliant intent: %v", res.Rec["I"])
		}
	}
	if res.Stats.LogProb < -1 {
		t.Errorf("logprob %.3f for a near-deterministic path", res.Stats.LogProb)
	}
}

// TestBeamBeatsGreedyLogProb: with width > 1 the beam's sequence likelihood
// must be at least the width-1 (greedy) one — the defining beam property.
func TestBeamBeatsGreedyLogProb(t *testing.T) {
	// A trained tiny transformer gives non-trivial (non-flat, non-delta)
	// distributions where beam re-ranking can actually help.
	tok := vocab.Telemetry()
	m, err := nn.New(nn.Config{Vocab: tok.Size(), Ctx: 32, Dim: 16, Heads: 2, Layers: 1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	var seqs [][]int
	for i := 0; i < 120; i++ {
		a, b := int64(rng.Intn(30)), int64(rng.Intn(30))
		line := rules.Record{"TotalIngress": {a + b}, "Congestion": {0}, "I": {a, b, 0, 0, 0}}
		_ = line
		text := ""
		text += itoa64t(a+b) + ",0|" + itoa64t(a) + "," + itoa64t(b) + ",0,0,0\n"
		seq, err := tok.EncodeSeq(text)
		if err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, seq)
	}
	if _, err := m.Train(seqs, nn.TrainConfig{Epochs: 2, Seed: 1, Workers: 2}); err != nil {
		t.Fatal(err)
	}

	schema := testSchema(t)
	rs, err := rules.ParseRuleSet(testRules, schema)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(Config{
		LM: WrapNN(m), Tok: tok, Schema: schema,
		Rules: rs, Slots: testGrammar(t, schema),
	})
	if err != nil {
		t.Fatal(err)
	}
	known := rules.Record{"TotalIngress": {37}, "Congestion": {0}}
	greedy, err := e.BeamImpute(known, 1)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := e.BeamImpute(known, 6)
	if err != nil {
		t.Fatal(err)
	}
	if wide.Stats.LogProb < greedy.Stats.LogProb-1e-9 {
		t.Errorf("beam-6 logprob %.4f worse than greedy %.4f", wide.Stats.LogProb, greedy.Stats.LogProb)
	}
	// Both must comply regardless.
	for _, r := range []Result{greedy, wide} {
		if vs, _ := rs.Violations(r.Rec); len(vs) > 0 {
			t.Fatalf("beam output violates %v: %v", vs, r.Rec)
		}
	}
}

func TestBeamInfeasiblePrompt(t *testing.T) {
	e := testEngine(t, cloneableUniform{vocab: vocab.Telemetry().Size()}, LeJIT)
	_, err := e.BeamImpute(rules.Record{"TotalIngress": {0}, "Congestion": {50}}, 2)
	if _, ok := err.(ErrInfeasible); !ok {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestBeamRejectsNonCloneableWhenForking(t *testing.T) {
	// The plain uniformLM session cannot clone; width > 1 eventually forks.
	e := testEngine(t, uniformLM{vocab: vocab.Telemetry().Size()}, LeJIT)
	_, err := e.BeamImpute(rules.Record{"TotalIngress": {100}, "Congestion": {8}}, 4)
	if err == nil {
		t.Error("non-cloneable LM with width 4 should error when beams fork")
	}
}

func TestBeamWidthValidation(t *testing.T) {
	e := testEngine(t, cloneableUniform{vocab: vocab.Telemetry().Size()}, LeJIT)
	if _, err := e.BeamImpute(rules.Record{"TotalIngress": {100}, "Congestion": {8}}, 0); err == nil {
		t.Error("width 0 should be rejected")
	}
}

func TestNNSessionCloneDiverges(t *testing.T) {
	tok := vocab.Telemetry()
	m, err := nn.New(nn.Config{Vocab: tok.Size(), Ctx: 16, Dim: 8, Heads: 2, Layers: 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	a := m.NewSession()
	if err := a.Append(vocab.BOS); err != nil {
		t.Fatal(err)
	}
	if err := a.Append(tok.ID('1')); err != nil {
		t.Fatal(err)
	}
	b := a.Clone()
	// Same state so far.
	la := append([]float32(nil), a.Logits()...)
	for i, v := range b.Logits() {
		if v != la[i] {
			t.Fatalf("clone logits differ at %d", i)
		}
	}
	// Diverge.
	if err := a.Append(tok.ID('2')); err != nil {
		t.Fatal(err)
	}
	if err := b.Append(tok.ID('9')); err != nil {
		t.Fatal(err)
	}
	same := true
	for i, v := range b.Logits() {
		if v != a.Logits()[i] {
			same = false
			_ = i
			break
		}
	}
	if same {
		t.Error("diverged sessions produced identical logits (cache aliasing?)")
	}
	if a.Len() != 3 || b.Len() != 3 {
		t.Errorf("lengths %d/%d", a.Len(), b.Len())
	}
}

func itoa64t(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf []byte
	for v > 0 {
		buf = append([]byte{byte('0' + v%10)}, buf...)
		v /= 10
	}
	return string(buf)
}
