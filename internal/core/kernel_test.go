package core

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/nn"
	"repro/internal/rules"
	"repro/internal/vocab"
)

// These tests cover the engine-level plumbing of the multi-core GEMM
// sharding and int8 quantization (DESIGN.md §15): config application,
// post-construction setters, the lock-step golden equivalence under a
// sharded+quantized model, and the pooled-clone retention cap.

// nnKernelEngine builds an engine over a private model (never the shared
// nnTestModel: snap-mode quantization rewrites weights, and worker-group
// settings are model-level state) big enough that the batch GEMMs clear the
// parallel-dispatch threshold.
func nnKernelEngine(tb testing.TB, cfg Config) (*Engine, *nn.Model) {
	tb.Helper()
	m, err := nn.New(nn.Config{
		Vocab: vocab.Telemetry().Size(), Ctx: 48, Dim: 48, Heads: 4, Layers: 2,
	}, 7)
	if err != nil {
		tb.Fatal(err)
	}
	schema := rules.MustSchema(
		rules.Field{Name: "TotalIngress", Kind: rules.Scalar, Lo: 0, Hi: 300},
		rules.Field{Name: "Congestion", Kind: rules.Scalar, Lo: 0, Hi: 100},
		rules.Field{Name: "I", Kind: rules.Vector, Len: 5, Lo: 0, Hi: 60},
	)
	rs, err := rules.ParseRuleSet(testRules, schema)
	if err != nil {
		tb.Fatal(err)
	}
	slots, err := TelemetryGrammar(schema, []string{"TotalIngress", "Congestion"}, "I")
	if err != nil {
		tb.Fatal(err)
	}
	cfg.LM = WrapNN(m)
	cfg.Tok = vocab.Telemetry()
	cfg.Schema = schema
	cfg.Rules = rs
	cfg.Slots = slots
	cfg.Mode = LeJIT
	e, err := NewEngine(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return e, m
}

// TestLockStepShardedQuantizedMatchesSolo is the end-to-end golden check:
// a lock-step batch decoded on a sharded worker group over snapped int8
// weights produces records identical to per-record solo decodes of the same
// engine family, and the decode genuinely took the parallel path.
func TestLockStepShardedQuantizedMatchesSolo(t *testing.T) {
	e, m := nnKernelEngine(t, Config{KernelWorkers: 3, QuantizeWeights: nn.QuantSnap})
	defer m.SetKernelWorkers(1)
	if got := m.KernelWorkers(); got != 3 {
		t.Fatalf("model worker group = %d, want 3 from Config.KernelWorkers", got)
	}
	if cov := m.QuantCoverage(); cov != 1 {
		t.Fatalf("snap coverage %v, want 1", cov)
	}
	reqs := []BatchRequest{
		{Prompt: rules.Record{"TotalIngress": {120}, "Congestion": {10}}},
		{Prompt: rules.Record{"TotalIngress": {60}, "Congestion": {0}}},
		{},
		{Prompt: rules.Record{"TotalIngress": {200}, "Congestion": {55}}},
	}
	out, err := e.DecodeRequests(context.Background(), reqs, 1, 42, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkMatchesSolo(t, e, reqs, out, 42)
	par, _ := m.KernelOps()
	if par == 0 {
		t.Fatal("decode recorded no parallel kernel dispatches — batch GEMMs below threshold?")
	}
	for i := range out {
		if out[i].Err != nil {
			continue
		}
		if got := out[i].Res.Stats.KernelWorkers; got != 3 {
			t.Errorf("record %d Stats.KernelWorkers = %d, want 3", i, got)
		}
		if got := out[i].Res.Stats.QuantizedWeightRows; got != 1 {
			t.Errorf("record %d Stats.QuantizedWeightRows = %v, want 1", i, got)
		}
	}
}

// TestKernelConfigSetters covers the post-construction mirror of the config
// fields, including clone inheritance and the non-nn error path.
func TestKernelConfigSetters(t *testing.T) {
	e, m := nnKernelEngine(t, Config{})
	defer m.SetKernelWorkers(1)
	if got := e.SetKernelWorkers(-1); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("SetKernelWorkers(-1) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := e.SetKernelWorkers(2); got != 2 || m.KernelWorkers() != 2 {
		t.Fatalf("SetKernelWorkers(2) = %d (model %d), want 2", got, m.KernelWorkers())
	}
	st, err := e.SetWeightQuantization(nn.QuantExact)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode != nn.QuantExact {
		t.Fatalf("quant stats mode %q, want exact", st.Mode)
	}
	c, err := e.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if c.cfg.KernelWorkers != 2 || c.cfg.QuantizeWeights != nn.QuantExact {
		t.Fatalf("clone config (workers=%d quant=%q) did not inherit setters",
			c.cfg.KernelWorkers, c.cfg.QuantizeWeights)
	}
	if _, err := e.SetWeightQuantization("bogus"); err == nil {
		t.Fatal("SetWeightQuantization accepted a bogus mode")
	}

	mock := testEngine(t, uniformLM{vocab: vocab.Telemetry().Size()}, LeJIT)
	if got := mock.SetKernelWorkers(4); got != 0 {
		t.Fatalf("non-nn SetKernelWorkers = %d, want 0", got)
	}
	if _, err := mock.SetWeightQuantization(nn.QuantSnap); err == nil {
		t.Fatal("non-nn SetWeightQuantization succeeded")
	}
}

// TestReleaseClonePoolCap: the pool retains up to max(2×NumCPU, observed
// batch demand) clones — the demand high-water mark lifts the CPU-derived
// cap so a large micro-batch on a small host keeps its lane engines.
func TestReleaseClonePoolCap(t *testing.T) {
	e := nnTestEngine(t)
	drain := func() {
		e.poolMu.Lock()
		e.pool = nil
		e.poolDemand = 0
		e.poolMu.Unlock()
	}
	drain()
	defer drain()

	baseCap := 2 * runtime.NumCPU()
	want := baseCap + 3
	clones := make([]*Engine, want+2)
	for i := range clones {
		c, err := e.Clone()
		if err != nil {
			t.Fatal(err)
		}
		clones[i] = c
	}

	for _, c := range clones {
		e.releaseClone(c)
	}
	e.poolMu.Lock()
	got := len(e.pool)
	e.poolMu.Unlock()
	if got != baseCap {
		t.Fatalf("pool retained %d clones with no recorded demand, want %d", got, baseCap)
	}

	drain()
	e.notePoolDemand(want)
	e.notePoolDemand(1) // a smaller batch must not lower the high-water mark
	for _, c := range clones {
		e.releaseClone(c)
	}
	e.poolMu.Lock()
	got = len(e.pool)
	e.poolMu.Unlock()
	if got != want {
		t.Fatalf("pool retained %d clones with demand %d, want %d", got, want, want)
	}
}
