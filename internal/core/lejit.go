package core

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/rules"
	"repro/internal/smt"
	"repro/internal/transition"
)

// Impute generates the slots not covered by known, conditioned on the known
// prefix (the paper's telemetry-imputation task: coarse counters in, fine
// series out), enforcing the rule set Just-In-Time.
func (e *Engine) Impute(known rules.Record, rng *rand.Rand) (Result, error) {
	return e.guided(context.Background(), known, rng)
}

// ImputeCtx is Impute under a context: a cancelled or expired context stops
// the decode at the next token boundary — before the next round of solver
// probes — and returns the context's error.
func (e *Engine) ImputeCtx(ctx context.Context, known rules.Record, rng *rand.Rand) (Result, error) {
	return e.guided(ctx, known, rng)
}

// Generate produces a full record unconditionally (the synthetic-data task),
// enforcing the rule set Just-In-Time.
func (e *Engine) Generate(rng *rand.Rand) (Result, error) {
	return e.guided(context.Background(), nil, rng)
}

// GenerateCtx is Generate under a context (see ImputeCtx).
func (e *Engine) GenerateCtx(ctx context.Context, rng *rand.Rand) (Result, error) {
	return e.guided(ctx, nil, rng)
}

// guided is the LeJIT decoding loop (paper Fig 1b):
//
//  1. Compile-once rules live on the engine's solver; the known prefix is
//     asserted under a Push frame.
//  2. For each remaining slot, a character-level transition system
//     (internal/transition, paper Fig 2) asks the solver range-feasibility
//     queries — "does a rule-compliant completion exist in which this
//     variable's value starts with these digits?" — which perform the
//     lookahead over unfixed suffix variables for free, because the solver
//     treats them as existentially quantified.
//  3. Admissible tokens keep their model logits; everything else is masked
//     and the remainder renormalized. When the value terminates, its
//     equality is asserted, activating/deactivating rules for later slots
//     (dynamic partial instantiation, §3 step ①–②).
func (e *Engine) guided(ctx context.Context, known rules.Record, rng *rand.Rand) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var res Result
	prompt, fromSlot, err := e.promptFor(known)
	if err != nil {
		return res, err
	}
	checksBefore := e.solver.Stats().Checks
	// Entries are keyed by solver epoch, so stale ones can never be hit;
	// clearing per record just bounds the map's growth.
	clear(e.oracleCache)

	e.solver.Push()
	defer e.solver.Pop()
	for f, vs := range known {
		bv, ok := e.binding.Vars(f)
		if !ok {
			return res, fmt.Errorf("core: known field %q not bound", f)
		}
		for i, v := range vs {
			e.solver.Assert(smt.Eq(smt.V(bv[i]), smt.C(v)))
		}
	}
	r := e.solver.Check()
	if r.Status != smt.Sat {
		res.Stats.SolverChecks = e.solver.Stats().Checks - checksBefore
		return res, ErrInfeasible{Detail: fmt.Sprintf("prompt %q (%v)", prompt, r.Status)}
	}
	// The feasibility model doubles as the first slot's witness seed.
	e.noteModel(r.Model)

	sess, err := e.newPromptedSession(prompt)
	if err != nil {
		return res, err
	}

	vals := make([]int64, 0, len(e.cfg.Slots)-fromSlot)
	for _, slot := range e.cfg.Slots[fromSlot:] {
		v, err := e.generateValue(ctx, slot, sess, rng, &res.Stats)
		if err != nil {
			res.Stats.SolverChecks = e.solver.Stats().Checks - checksBefore
			return res, err
		}
		vals = append(vals, v)
		// Dynamic partial instantiation: pin the completed value so the
		// solver's view of active rules advances with generation.
		e.solver.Assert(smt.Eq(smt.V(e.slotVar(slot)), smt.C(v)))
		// If the last model already assigned the pinned value, it remains a
		// model of the extended stack: revalidate it for the new epoch so
		// the next slot starts with a witness.
		if e.lastModel != nil && e.lastModel[e.slotVar(slot)] == v {
			e.lastModelEpoch = e.solver.Epoch()
		}
	}
	res.Rec = e.assemble(known, fromSlot, vals)
	res.Stats.SolverChecks = e.solver.Stats().Checks - checksBefore
	return res, nil
}

// generateValue decodes one slot's value character by character. The context
// is checked once per emitted token — i.e. before each round of solver
// probes — so a cancelled request stops burning solver work mid-decode.
func (e *Engine) generateValue(ctx context.Context, slot Slot, sess Session, rng *rand.Rand, st *Stats) (int64, error) {
	f, _ := e.cfg.Schema.Field(slot.Field)
	v := e.slotVar(slot)

	var sys *transition.System
	if e.cfg.Mode == StructureOnly || e.cfg.Rules == nil {
		lo, hi := f.Lo, f.Hi
		sys = transition.New(e.maxDigits[slot.Field],
			func(qlo, qhi int64) bool { return qlo <= hi && lo <= qhi })
	} else {
		// The slot oracle answers probes from per-slot interval state
		// (oracle.go) and falls back to epoch-cached solver probes; batching
		// lets it drain a candidate's whole completion union locally before
		// any solver work.
		so := e.newSlotOracle(v, st)
		sys = transition.NewBatch(e.maxDigits[slot.Field], so.Feasible, so.FeasibleAny)
	}
	if !sys.HasPath() {
		return 0, ErrInfeasible{Detail: fmt.Sprintf("no feasible value for %s[%d]", slot.Field, slot.Index)}
	}
	// structural mirrors the grammar/width automaton with a trivially-true
	// oracle, so Masked/Forced stats count only rule-driven pruning, not
	// structural necessities like the separator after a max-width value.
	structural := transition.New(e.maxDigits[slot.Field],
		func(lo, hi int64) bool { return lo <= f.Hi && f.Lo <= hi })

	sepID := e.cfg.Tok.ID(slot.Sep)
	state := sys.Start()
	allowed := make([]int, 0, 11)
	for {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		digits, canEnd := sys.Admissible(state)
		allowed = allowed[:0]
		for d := 0; d <= 9; d++ {
			if digits[d] {
				allowed = append(allowed, e.digitTok[d])
			}
		}
		if canEnd {
			allowed = append(allowed, sepID)
		}
		if len(allowed) == 0 {
			// Unreachable if the lookahead invariant holds: the state
			// was only entered because some completion existed.
			return 0, fmt.Errorf("core: dead end at %s[%d] prefix %s (invariant breach)", slot.Field, slot.Index, state)
		}
		sDigits, sEnd := structural.Admissible(state)
		nStruct := 0
		for d := 0; d <= 9; d++ {
			if sDigits[d] {
				nStruct++
			}
		}
		if sEnd {
			nStruct++
		}
		if len(allowed) < nStruct {
			st.MaskedSteps++
			if len(allowed) == 1 {
				st.ForcedSteps++
			}
		}

		tok := e.sampleMasked(sess.Logits(), allowed, rng)
		if e.cfg.TraceHook != nil {
			e.cfg.TraceHook(TraceStep{
				Field: slot.Field, Index: slot.Index, Prefix: state.String(),
				Admissible: append([]int(nil), allowed...),
				Structural: nStruct, Chosen: tok,
			})
		}
		if err := sess.Append(tok); err != nil {
			return 0, err
		}
		st.Tokens++
		if tok == sepID {
			return state.Value(), nil
		}
		var err error
		state, err = sys.Step(state, e.cfg.Tok.Char(tok))
		if err != nil {
			return 0, fmt.Errorf("core: stepping transition system: %w", err)
		}
	}
}
