package core

import (
	"context"
	"math/rand"

	"repro/internal/nn"
	"repro/internal/rules"
)

// Impute generates the slots not covered by known, conditioned on the known
// prefix (the paper's telemetry-imputation task: coarse counters in, fine
// series out), enforcing the rule set Just-In-Time.
func (e *Engine) Impute(known rules.Record, rng *rand.Rand) (Result, error) {
	return e.guided(context.Background(), known, rng)
}

// ImputeCtx is Impute under a context: a cancelled or expired context stops
// the decode at the next token boundary — before the next round of solver
// probes — and returns the context's error.
func (e *Engine) ImputeCtx(ctx context.Context, known rules.Record, rng *rand.Rand) (Result, error) {
	return e.guided(ctx, known, rng)
}

// Generate produces a full record unconditionally (the synthetic-data task),
// enforcing the rule set Just-In-Time.
func (e *Engine) Generate(rng *rand.Rand) (Result, error) {
	return e.guided(context.Background(), nil, rng)
}

// GenerateCtx is Generate under a context (see ImputeCtx).
func (e *Engine) GenerateCtx(ctx context.Context, rng *rand.Rand) (Result, error) {
	return e.guided(ctx, nil, rng)
}

// guided is the LeJIT decoding loop (paper Fig 1b):
//
//  1. Compile-once rules live on the engine's solver; the known prefix is
//     asserted under a Push frame.
//  2. For each remaining slot, a character-level transition system
//     (internal/transition, paper Fig 2) asks the solver range-feasibility
//     queries — "does a rule-compliant completion exist in which this
//     variable's value starts with these digits?" — which perform the
//     lookahead over unfixed suffix variables for free, because the solver
//     treats them as existentially quantified.
//  3. Admissible tokens keep their model logits; everything else is masked
//     and the remainder renormalized. When the value terminates, its
//     equality is asserted, activating/deactivating rules for later slots
//     (dynamic partial instantiation, §3 step ①–②).
//
// The loop itself lives in laneDecoder (lane.go), a token-at-a-time state
// machine that the per-record path here and the lock-step batch scheduler
// (lockstep.go) drive identically: guided feeds it a private Session, the
// scheduler feeds many lanes from one shared BatchSession.
func (e *Engine) guided(ctx context.Context, known rules.Record, rng *rand.Rand) (Result, error) {
	ld := e.newLaneDecoder(ctx, known, rng)
	defer ld.finish()
	if !ld.done() {
		var sess Session
		var logits []float32
		if ws := ld.applyWarm(); ws != nil {
			// Prefix-cache hit: decode directly on the restored session. Its
			// logits are the model's output after the cached prefix, exactly
			// what a cold decode would have computed token by token.
			sess = ws
			logits = ws.Logits()
		} else {
			sess = e.cfg.LM.NewSession()
		}
		if ns, ok := sess.(*nn.Session); ok {
			// Snapshot capture at slot boundaries is a COW clone: pages are
			// shared, so the cost is O(pages) bookkeeping, not a KV copy.
			ld.capture = ns.Clone
			// The paged session can rewind, which is what arms speculative
			// decoding (Config.Lookahead); other LMs stay on the exact path.
			ld.installRewind(ns.Len, ns.Rewind)
			defer ns.Release()
		}
		for !ld.done() {
			tok, err := ld.next(logits)
			if err != nil {
				ld.fail(err)
				break
			}
			if err := sess.Append(tok); err != nil {
				ld.fail(err)
				break
			}
			if err := ld.advance(tok); err != nil {
				ld.fail(err)
				break
			}
			logits = sess.Logits()
		}
	}
	return ld.result()
}
