package core

import (
	"repro/internal/smt"
)

// slotOracle answers the transition system's range-feasibility probes for
// one slot — one solver epoch — keeping enough interval state to resolve
// most probes without a solver call (the interval fast path, DESIGN.md §6).
//
// Invariants maintained per slot, all sound with respect to the current
// assertion stack:
//
//   - [kLo, kHi] is a superset of the slot variable's feasible set. It
//     starts at the solver's propagated root bounds (BaseBounds) and, for
//     convex slots, tightens when an unsat probe proves a side empty. A
//     probe range disjoint from it is infeasible — answered locally.
//   - Witnesses are values proven feasible by an actual solver model. For
//     convex slots (no live disjunction reaches the variable, see
//     smt.VarDisjunctionTainted) the whole span [wLo, wHi] between the
//     extreme witnesses is feasible, so any probe intersecting it is
//     feasible — answered locally. For tainted slots only exact witnessed
//     values count.
//
// Probes the intervals cannot decide first try model patching
// (patchFeasible): certifying a value by ground-evaluating the affected
// rule conjuncts against the engine's current model. Everything else falls
// back to a real CheckWith probe, whose outcome (model or refutation) feeds
// the state above, so the fallback rate decays as the slot's digits are
// generated.
type slotOracle struct {
	e  *Engine
	st *Stats
	v  smt.Var

	infeasible bool // the assertions conflict: nothing is feasible
	// err is set (sticky, first failure wins) when a solver probe returned
	// Unknown — the budget ran out or the request's context was cancelled
	// mid-Check. The probe answers false locally (sound: nothing is emitted
	// on its strength), and the lane driver checks budgetErr after each
	// oracle-backed transition call so the lane fails with the real cause
	// instead of a spurious ErrInfeasible.
	err      error
	convex   bool  // feasible set proven hole-free: interval reasoning ok
	kLo, kHi int64 // no feasible value lies outside [kLo, kHi]
	hasW     bool
	wLo, wHi int64   // extreme witnessed-feasible values
	wvals    []int64 // individual witnesses (tainted slots only)

	// spec, when non-nil with an open window, redirects probes the fast
	// path cannot decide into the lane's speculation journal instead of the
	// solver: the probe is answered true optimistically and settled by the
	// window's batched suffix validation (spec.go, DESIGN.md §13).
	// Optimistic answers never feed the interval state — addWitness and
	// noteUnsat accept only certificates.
	spec *laneSpec

	undecided [][2]int64 // FeasibleAny scratch
	one       [1][2]int64
}

// newSlotOracle builds the oracle for slot variable v at the current epoch.
// Costs zero solver checks: the bounds come from the epoch's propagated base
// store, and the witness (when available) from the last model the engine saw.
func (e *Engine) newSlotOracle(v smt.Var, st *Stats) *slotOracle {
	o := &slotOracle{e: e, st: st, v: v}
	lo, hi, ok := e.solver.BaseBounds(v)
	if !ok {
		o.infeasible = true
		return o
	}
	o.kLo, o.kHi = lo, hi
	o.convex = !e.solver.VarDisjunctionTainted(v)
	if e.lastModel != nil && e.lastModelEpoch == e.solver.Epoch() {
		if mv, found := e.lastModel[v]; found {
			o.addWitness(mv)
		}
	}
	return o
}

// addWitness records a feasible value harvested from a solver model.
func (o *slotOracle) addWitness(x int64) {
	if !o.hasW {
		o.hasW, o.wLo, o.wHi = true, x, x
	} else {
		if x < o.wLo {
			o.wLo = x
		}
		if x > o.wHi {
			o.wHi = x
		}
	}
	if !o.convex {
		for _, w := range o.wvals {
			if w == x {
				return
			}
		}
		o.wvals = append(o.wvals, x)
	}
}

// noteUnsat tightens the known envelope after a proven-infeasible probe.
// Convex slots only: with the feasible set one interval [A, B] containing
// the witnesses, an unsat range ending below wLo forces A > hi (otherwise
// hi itself, between A and wLo ≤ B, would be feasible); symmetrically for
// ranges starting above wHi.
func (o *slotOracle) noteUnsat(lo, hi int64) {
	if !o.convex || !o.hasW {
		return
	}
	if hi < o.wLo && hi+1 > o.kLo {
		o.kLo = hi + 1
	}
	if lo > o.wHi && lo-1 < o.kHi {
		o.kHi = lo - 1
	}
}

// answerLocal resolves a probe from interval state alone:
// +1 feasible, -1 infeasible, 0 unknown (needs the solver).
func (o *slotOracle) answerLocal(lo, hi int64) int {
	if o.infeasible || hi < o.kLo || lo > o.kHi {
		return -1
	}
	if o.hasW {
		if o.convex {
			if lo <= o.wHi && hi >= o.wLo {
				return 1
			}
		} else {
			for _, w := range o.wvals {
				if lo <= w && w <= hi {
					return 1
				}
			}
		}
	}
	return 0
}

// probe issues the real solver query and feeds the outcome back into the
// interval state. (An epoch-keyed result cache used to sit in front of this;
// it was removed once the interval fast path left it a 0.17% hit rate — the
// interval state absorbs exactly the repeats the cache used to serve, see
// DESIGN.md §6.)
func (o *slotOracle) probe(qlo, qhi int64) bool {
	e := o.e
	r := e.solver.CheckWith(smt.Ge(smt.V(o.v), smt.C(qlo)), smt.Le(smt.V(o.v), smt.C(qhi)))
	o.st.OracleProbes++
	sat := r.Status == smt.Sat
	if sat {
		e.noteModel(r.Model)
		o.addWitness(r.Model[o.v])
	} else if r.Status == smt.Unsat {
		o.noteUnsat(qlo, qhi)
	} else if o.err == nil {
		// Unknown: budget or cancellation. Record the cause; do not treat
		// the range as proven infeasible (noteUnsat would be unsound here).
		if o.err = r.Err; o.err == nil {
			o.err = smt.ErrBudget
		}
	}
	return sat
}

// budgetErr reports the first Unknown a probe hit, or nil.
func (o *slotOracle) budgetErr() error { return o.err }

// patchFeasible tries to certify some value in [lo, hi] feasible by model
// patching, without a solver call. The engine's lastModel — when its epoch
// matches — is a complete satisfying assignment for the live assertion
// stack. Setting M[v] = x can only change the truth of conjuncts that
// mention v, and those are exactly the rule formula's (pinned and known
// values are asserted as equalities over other, already-fixed variables).
// So: clamp a candidate x into the probe range intersected with the known
// envelope (which keeps x inside v's declared domain — BaseBounds only ever
// tightens it), patch M[v] = x, and ground-evaluate the v-mentioning rule
// conjuncts. If all hold, the patched M is again a full model: x is
// feasible, the patch is kept (refreshing the witness chain for later
// slots), and the probe is answered with zero solver work.
//
// Only a positive answer is possible here; refutation still needs the
// solver. Candidates are the clamped model value first (for a tainted slot
// this is usually the exact probed digit value), then the opposite end of
// the clamped range.
func (o *slotOracle) patchFeasible(lo, hi int64) bool {
	e := o.e
	if e.lastModel == nil || e.lastModelEpoch != e.solver.Epoch() {
		return false
	}
	m, ok := e.lastModel[o.v]
	if !ok {
		return false
	}
	if lo < o.kLo {
		lo = o.kLo
	}
	if hi > o.kHi {
		hi = o.kHi
	}
	if lo > hi {
		return false
	}
	x := m
	if x < lo {
		x = lo
	} else if x > hi {
		x = hi
	}
	if o.tryPatch(x) {
		return true
	}
	if lo != hi {
		y := lo
		if x == lo {
			y = hi
		}
		return o.tryPatch(y)
	}
	return false
}

// tryPatch attempts M[v] = x via the engine-level patch, recording the
// witness on success.
func (o *slotOracle) tryPatch(x int64) bool {
	if o.e.patchValue(o.v, x) {
		o.addWitness(x)
		return true
	}
	return false
}

// patchValue attempts to keep lastModel a full model under M[v] = x.
// Callers must ensure lastModel is valid for the current stack minus any
// constraint on v itself (the oracle fast path and the separator-assert
// repair in advance() both do).
func (e *Engine) patchValue(v smt.Var, x int64) bool {
	return e.patchModel(e.lastModel, v, x)
}

// patchModel attempts to keep m a full model of the current stack under
// M[v] = x: it evaluates every rule conjunct mentioning v under the patched
// model, keeping the patch on success and rolling it back on any failure
// (including an evaluation error, which would mean the model is not
// complete over the conjunct's variables — treated as "cannot certify",
// never as feasible). m must be a model of the current stack minus any
// constraint on v itself — speculative suffix validation runs this against
// a scratch copy of the window's settle model at a replayed probe-time
// stack, where that holds because the stack is a prefix of the settled one.
func (e *Engine) patchModel(m map[smt.Var]int64, v smt.Var, x int64) bool {
	old := m[v]
	if x == old {
		// m already satisfies the stack with this value.
		return true
	}
	m[v] = x
	var broken smt.Formula
	ok := true
	for _, c := range e.conjunctsOn(v) {
		sat, err := smt.EvalFormula(c, m)
		if err != nil {
			ok, broken = false, nil
			break
		}
		if !sat {
			if broken != nil {
				// Two independent conjuncts broken: repair would need to
				// move two more variables. Leave it to the solver.
				ok, broken = false, nil
				break
			}
			ok, broken = false, c
		}
	}
	if ok || (broken != nil && e.repairConjunct(m, broken, v)) {
		return true
	}
	m[v] = old
	return false
}

// repairConjunct restores a single broken atomic conjunct — typically a
// coupling constraint like TotalIngress = sum(I) — by shifting the patch's
// residual onto one other adjustable variable in the same atom, then
// re-validating every conjunct that variable appears in. The shift is the
// minimal integer move of that variable that satisfies the atom again: an
// exact cancellation for an equality, the nearest boundary crossing for an
// inequality or disequality. A variable is adjustable when its propagated
// base bounds leave slack (pinned and propagation-fixed variables have
// lo == hi and are skipped), which also keeps the shifted value inside its
// declared domain. On success the model differs from a known-satisfying one
// in exactly {v, u}, and every conjunct mentioning either has been
// re-evaluated true: the patched model is again a full model.
func (e *Engine) repairConjunct(m map[smt.Var]int64, broken smt.Formula, v smt.Var) bool {
	a, isAtom := smt.AtomOf(broken)
	if !isAtom {
		return false
	}
	resid, err := a.Expr.Eval(m)
	if err != nil {
		return false
	}
	for _, u := range a.Expr.Vars() {
		if u == v {
			continue
		}
		cu := a.Expr.Coef(u)
		if cu == 0 {
			continue
		}
		d, ok := repairShift(a.Op, resid, cu)
		if !ok {
			continue
		}
		lo, hi, okB := e.solver.BaseBounds(u)
		if !okB || lo == hi {
			continue
		}
		oldU := m[u]
		newU := oldU + d
		if newU < lo || newU > hi {
			continue
		}
		m[u] = newU
		good := true
		for _, c := range e.conjunctsOn(u) {
			sat, err := smt.EvalFormula(c, m)
			if err != nil || !sat {
				good = false
				break
			}
		}
		if good {
			return true
		}
		m[u] = oldU
	}
	return false
}

// repairShift computes the minimal integer move d of a variable with
// coefficient cu that makes resid + cu·d satisfy "OP 0" (atoms are
// normalized to Expr OP 0). ok is false when no move helps (zero residual
// on an equality that is somehow still broken cannot happen; a
// non-divisible equality residual can).
func repairShift(op smt.AtomOp, resid, cu int64) (d int64, ok bool) {
	switch op {
	case smt.OpEQ:
		if resid%cu != 0 {
			return 0, false
		}
		return -resid / cu, true
	case smt.OpNE:
		// Broken means resid == 0: any single step off zero works.
		return 1, true
	case smt.OpLE:
		return shiftAtMost(resid, cu, 0), true
	case smt.OpLT:
		return shiftAtMost(resid, cu, -1), true
	case smt.OpGE:
		return shiftAtLeast(resid, cu, 0), true
	case smt.OpGT:
		return shiftAtLeast(resid, cu, 1), true
	}
	return 0, false
}

// shiftAtMost returns the smallest-magnitude d with resid + cu·d ≤ bound.
func shiftAtMost(resid, cu, bound int64) int64 {
	if cu > 0 {
		return floorDiv(bound-resid, cu)
	}
	return ceilDiv(bound-resid, cu)
}

// shiftAtLeast returns the smallest-magnitude d with resid + cu·d ≥ bound.
func shiftAtLeast(resid, cu, bound int64) int64 {
	if cu > 0 {
		return ceilDiv(bound-resid, cu)
	}
	return floorDiv(bound-resid, cu)
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

func ceilDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) == (b < 0) {
		q++
	}
	return q
}

// crossCheck verifies a fast-path answer against the solver (the
// Config.ValidateFastPath debugging mode). Unknown results (budget
// exhaustion) are skipped: the fast path's answers are certificates, the
// solver's Unknown is not.
func (o *slotOracle) crossCheck(lo, hi int64, sat bool) {
	r := o.e.solver.CheckWith(smt.Ge(smt.V(o.v), smt.C(lo)), smt.Le(smt.V(o.v), smt.C(hi)))
	if r.Status == smt.Unknown {
		return
	}
	if (r.Status == smt.Sat) != sat {
		o.st.FastPathMismatches++
	}
}

// Feasible is the transition.Oracle: one range probe.
func (o *slotOracle) Feasible(lo, hi int64) bool {
	o.st.OracleQueries++
	if !o.e.cfg.NoIntervalFastPath {
		if d := o.answerLocal(lo, hi); d != 0 {
			o.st.OracleFastPath++
			if o.e.cfg.ValidateFastPath {
				o.crossCheck(lo, hi, d > 0)
			}
			return d > 0
		}
		if o.patchFeasible(lo, hi) {
			o.st.OracleFastPath++
			if o.e.cfg.ValidateFastPath {
				o.crossCheck(lo, hi, true)
			}
			return true
		}
	}
	if sp := o.spec; sp != nil && sp.open {
		o.one[0] = [2]int64{lo, hi}
		sp.deferProbe(o.v, o.one[:])
		return true
	}
	return o.probe(lo, hi)
}

// FeasibleAny is the transition.BatchOracle: does any range contain a
// feasible value? Local answers are drained first, so the solver only sees
// ranges the interval state cannot decide — and each solver outcome refines
// that state, often deciding the remaining ranges for free.
func (o *slotOracle) FeasibleAny(ranges [][2]int64) bool {
	if o.e.cfg.NoIntervalFastPath {
		// Ablation path: identical probe sequence to per-range decoding.
		for _, r := range ranges {
			if o.Feasible(r[0], r[1]) {
				return true
			}
		}
		return false
	}
	// Queries are counted at resolution: ranges skipped by a short-circuit
	// are not counted, matching the per-range path's early exit.
	und := o.undecided[:0]
	for _, r := range ranges {
		d := o.answerLocal(r[0], r[1])
		if d == 0 {
			und = append(und, r)
			continue
		}
		o.st.OracleQueries++
		o.st.OracleFastPath++
		if o.e.cfg.ValidateFastPath {
			o.crossCheck(r[0], r[1], d > 0)
		}
		if d > 0 {
			o.undecided = und
			return true
		}
	}
	o.undecided = und
	for j, r := range und {
		o.st.OracleQueries++
		// Earlier probes in this loop may have refined the state.
		if d := o.answerLocal(r[0], r[1]); d != 0 {
			o.st.OracleFastPath++
			if d > 0 {
				return true
			}
			continue
		}
		if o.patchFeasible(r[0], r[1]) {
			o.st.OracleFastPath++
			if o.e.cfg.ValidateFastPath {
				o.crossCheck(r[0], r[1], true)
			}
			return true
		}
		if sp := o.spec; sp != nil && sp.open {
			// Defer the whole undecided remainder as one disjunctive probe:
			// its exact answer is precisely this loop's residual answer
			// (every earlier range was proven infeasible), so validation
			// decides the batch query itself, not a single range of it.
			sp.deferProbe(o.v, und[j:])
			return true
		}
		if o.probe(r[0], r[1]) {
			return true
		}
	}
	return false
}

// noteModel remembers the latest full model the solver produced. Models are
// feasibility certificates for every variable at the epoch they were found,
// which seeds the next slot's witness for free; guided() re-validates the
// model across value assertions when the pinned value matches.
func (e *Engine) noteModel(m map[smt.Var]int64) {
	if m == nil {
		return
	}
	e.lastModel = m
	e.lastModelEpoch = e.solver.Epoch()
}

// conjunctsOn returns the rule formula's top-level conjuncts that mention v,
// building the index lazily on first use. The index is shared across records:
// the rule formula is fixed at engine construction, and per-record state
// (known/pinned values) is asserted separately as equalities that never
// mention an in-flight slot variable.
func (e *Engine) conjunctsOn(v smt.Var) []smt.Formula {
	if e.varConjuncts == nil {
		e.varConjuncts = map[smt.Var][]smt.Formula{}
		if e.ruleFormula != nil {
			for _, c := range smt.Conjuncts(e.ruleFormula) {
				for u := range smt.FormulaVars(c) {
					e.varConjuncts[u] = append(e.varConjuncts[u], c)
				}
			}
		}
	}
	return e.varConjuncts[v]
}
