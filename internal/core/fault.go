package core

import (
	"fmt"
	"runtime/debug"

	"repro/internal/rules"
	"repro/internal/smt"
)

// ErrBudget is the solver's budget-exhaustion sentinel re-exported at the
// engine boundary: lane failures caused by a Check that ran out of nodes,
// propagation steps, or wall-clock time unwrap to it (errors.Is), so a
// serving layer can map "the solver gave up" to backpressure (HTTP 503)
// instead of a hard failure.
var ErrBudget = smt.ErrBudget

// PanicError wraps a panic recovered from one decoding lane. The lock-step
// scheduler and the worker pool convert panics inside a lane (e.g. an
// invariant breach in sampling or an LM session misuse) into a per-record
// *PanicError instead of crashing the process; the lane's engine clone is
// discarded rather than pooled, since its solver stack may have been
// mid-mutation when the panic unwound.
type PanicError struct {
	Value any    // the recovered panic value
	Stack []byte // stack at recovery, for logs
}

func (p *PanicError) Error() string {
	return fmt.Sprintf("core: decoding lane panicked: %v", p.Value)
}

// FaultSite identifies one guided-decoding step for fault injection: the
// record's known prefix (which is what a test can key on to poison exactly
// one request of a batch) plus the slot position and token count reached.
type FaultSite struct {
	Known  rules.Record // the lane's known prefix, nil for generation
	Field  string       // field of the slot about to emit a token
	Index  int          // element index within the field
	Tokens int          // sampled tokens emitted so far by this lane
}

// guardLane runs f, converting a panic into a *PanicError so one lane's
// crash is a per-lane failure, not a process death. Mirrors how LaneError
// retires a single lane of a lock-step batch.
func guardLane(f func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return f()
}
