package core

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/nn"
)

// This file implements the lock-step batched decode path: all eligible
// records of a DecodeRequests batch step through one shared BatchSession,
// so each transformer weight block is streamed from memory once per token
// step (a GEMM) instead of once per record (B independent matrix-vector
// passes). The solver side stays strictly per-lane — each lane drives its
// own laneDecoder on its own pooled engine clone — so a record's sequence
// of solver probes and RNG draws is exactly the per-record path's, and its
// output is bit-identical to a solo decode (enforced by tests).
//
// Fallback rules: records that carry a per-request Decode override (beam,
// diagnose, baseline modes), batches whose decode fn is not the default
// guided decoder, and LMs that do not implement BatchLM all take the
// existing per-record worker pool. Within a lock-step group, a lane that
// fails mid-flight (context cancelled, NN context length exceeded, ...)
// is retired alone; its batch-mates keep stepping.

// acquireClone hands out an engine dedicated to one lane, reusing a pooled
// clone when one is idle. Clones share the compiled rule formula and the LM
// weights; everything mutable is per-clone, so pooling only skips the
// construction cost, not any per-record state reset (Push/Pop handles that).
func (e *Engine) acquireClone() (*Engine, error) {
	e.poolMu.Lock()
	if n := len(e.pool); n > 0 {
		c := e.pool[n-1]
		e.pool = e.pool[:n-1]
		e.poolMu.Unlock()
		return c, nil
	}
	e.poolMu.Unlock()
	return e.Clone()
}

// releaseClone returns a lane engine to the pool for the next batch. The
// pool is bounded at max(2×NumCPU, observed batch demand): the CPU term
// keeps a one-time burst of unrelated lanes from permanently retaining every
// clone and its KV-cache scratch, while the demand term — the largest batch
// size DecodeRequests has actually seen (notePoolDemand) — stops a steady
// stream of large micro-batches on a small host from re-cloning most of its
// lanes every batch. Excess clones are dropped for the GC.
func (e *Engine) releaseClone(c *Engine) {
	e.poolMu.Lock()
	limit := 2 * runtime.NumCPU()
	if e.poolDemand > limit {
		limit = e.poolDemand
	}
	if len(e.pool) < limit {
		e.pool = append(e.pool, c)
	}
	e.poolMu.Unlock()
}

// notePoolDemand records that n lanes may need clones concurrently, raising
// the pool's retention cap (never lowering it — demand is a high-water mark).
func (e *Engine) notePoolDemand(n int) {
	e.poolMu.Lock()
	if n > e.poolDemand {
		e.poolDemand = n
	}
	e.poolMu.Unlock()
}

// prefixBatchSession is the optional BatchSession extension the prefix cache
// needs: seeding a fresh lane from a frozen solo session and freezing a lane
// back out as one. *nn.BatchSession implements it; a BatchLM whose sessions
// do not simply decodes cold (any unclaimed hit is released by finish).
type prefixBatchSession interface {
	SeedLane(lane int, src *nn.Session) error
	CloneLane(lane int) *nn.Session
}

// rewindBatchSession is the optional BatchSession extension speculative
// decoding needs: rewinding one lane to an earlier position and restoring
// its logits row in place. *nn.BatchSession implements it; lanes of a
// BatchLM whose sessions do not simply decode on the exact path. Lanes
// speculate privately between shared AppendBatch steps — a rollback only
// moves the lane's own ragged position, which the batched forward already
// handles, so batch-mates never desync.
type rewindBatchSession interface {
	RewindLane(lane, pos int, logits []float32) error
}

// lsLane is one record in flight inside a lock-step group.
type lsLane struct {
	out  *BatchResult
	eng  *Engine
	ld   *laneDecoder
	slot int // lane index in the group's BatchSession
	tok  int // token pending in the current step
}

// settle records the lane's outcome and recycles its engine.
func (e *Engine) settle(la *lsLane) {
	la.ld.finish()
	la.out.Res, la.out.Err = la.ld.result()
	e.releaseClone(la.eng)
}

// failLane retires la with err. A recovered panic (*PanicError) means the
// lane's engine is suspect — its solver stack may have been mid-mutation
// when the panic unwound — so the clone is discarded instead of pooled, and
// even the finish bookkeeping is guarded. Clean failures settle normally.
func (e *Engine) failLane(la *lsLane, err error) {
	var pe *PanicError
	if !errors.As(err, &pe) {
		la.ld.fail(err)
		e.settle(la)
		return
	}
	func() {
		defer func() { recover() }()
		la.ld.fail(err)
	}()
	la.ld.finished = true
	la.out.Res, la.out.Err = la.ld.res, err
}

// decodeLockStep decodes reqs[i] for every i in idxs through one shared
// BatchSession, writing outcomes into out. Seeds, per-request contexts, and
// all decoding decisions are per-lane, so results do not depend on which
// records share a batch. plans[i], when non-nil, is request i's pre-encoded
// prompt (shared read-only across lanes with identical prompts).
func (e *Engine) decodeLockStep(ctx context.Context, reqs []BatchRequest, idxs []int, seed int64, out []BatchResult, blm BatchLM, plans []*promptPlan) {
	bs := blm.NewBatchSession(len(idxs))
	lanes := make([]*lsLane, 0, len(idxs))
	for slot, i := range idxs {
		rctx := reqs[i].Ctx
		if rctx == nil {
			rctx = ctx
		}
		// A request whose context is already done is not decoded at all,
		// mirroring the per-record path.
		if err := rctx.Err(); err != nil {
			out[i].Err = err
			continue
		}
		if reqs[i].NoPrefixCache {
			rctx = DisablePrefixCache(rctx)
		}
		if reqs[i].Lookahead != nil {
			rctx = WithLookahead(rctx, *reqs[i].Lookahead)
		}
		eng, err := e.acquireClone()
		if err != nil {
			out[i].Err = err
			continue
		}
		s := batchSeed(seed, i)
		if reqs[i].Seed != nil {
			s = *reqs[i].Seed
		}
		var plan *promptPlan
		if plans != nil {
			plan = plans[i]
		}
		la := &lsLane{out: &out[i], eng: eng, slot: slot}
		pbs, canWarm := bs.(prefixBatchSession)
		if perr := guardLane(func() error {
			la.ld = eng.newLaneDecoderPlan(rctx, reqs[i].Prompt, rand.New(rand.NewSource(s)), plan)
			if la.ld.done() {
				return nil
			}
			if rbs, ok := bs.(rewindBatchSession); ok {
				slot := la.slot
				la.ld.installRewind(
					func() int { return bs.Len(slot) },
					func(pos int, logits []float32) error { return rbs.RewindLane(slot, pos, logits) },
				)
			}
			if !canWarm {
				return nil
			}
			// A prefix-cache hit seeds the lane's KV block and position
			// directly; the laneDecoder has already dropped the restored
			// tokens from its feed queue. Snapshot capture copies the lane
			// back out of the batch at slot boundaries.
			if ws := la.ld.applyWarm(); ws != nil {
				err := pbs.SeedLane(slot, ws)
				ws.Release()
				if err != nil {
					return err
				}
			}
			la.ld.capture = func() *nn.Session { return pbs.CloneLane(la.slot) }
			return nil
		}); perr != nil {
			// Setup panicked or the warm seed failed: a seeded-then-failed
			// lane cannot fall back to cold (its prompt queue is already
			// truncated), so record the error and discard the clone unpooled.
			out[i].Err = perr
			continue
		}
		if la.ld.done() {
			e.settle(la)
			continue
		}
		lanes = append(lanes, la)
	}

	stepLanes := make([]int, 0, len(lanes))
	stepToks := make([]int, 0, len(lanes))
	stepRefs := make([]*lsLane, 0, len(lanes))
	for len(lanes) > 0 {
		// Phase 1, per lane: solver probes + masked sampling decide the
		// lane's next token (prompt tokens need no logits; the BOS is always
		// fed before the first sampled token).
		stepLanes, stepToks, stepRefs = stepLanes[:0], stepToks[:0], stepRefs[:0]
		for _, la := range lanes {
			var logits []float32
			if bs.Len(la.slot) > 0 {
				logits = bs.Logits(la.slot)
			}
			var tok int
			err := guardLane(func() error {
				var nerr error
				tok, nerr = la.ld.next(logits)
				return nerr
			})
			if err != nil {
				e.failLane(la, err)
				continue
			}
			la.tok = tok
			stepLanes = append(stepLanes, la.slot)
			stepToks = append(stepToks, tok)
			stepRefs = append(stepRefs, la)
		}

		// Phase 2: one GEMM forward for every surviving lane. A *LaneError
		// means AppendBatch validated and refused one lane without touching
		// any state: retire that lane and retry the rest.
		for len(stepLanes) > 0 {
			err := guardLane(func() error { return bs.AppendBatch(stepLanes, stepToks) })
			if err == nil {
				break
			}
			var le *nn.LaneError
			bad := -1
			if errors.As(err, &le) {
				for j, s := range stepLanes {
					if s == le.Lane {
						bad = j
						break
					}
				}
			}
			if bad < 0 {
				// Whole-batch failure (or a panic inside the forward pass,
				// which leaves the shared session unattributable and
				// suspect): no lane advanced; fail them all.
				for _, la := range stepRefs {
					e.failLane(la, err)
				}
				stepRefs = stepRefs[:0]
				stepLanes = stepLanes[:0]
				break
			}
			la := stepRefs[bad]
			la.ld.fail(err)
			e.settle(la)
			stepLanes = append(stepLanes[:bad], stepLanes[bad+1:]...)
			stepToks = append(stepToks[:bad], stepToks[bad+1:]...)
			stepRefs = append(stepRefs[:bad], stepRefs[bad+1:]...)
		}

		// Phase 3, per lane: post-append bookkeeping (value pinning, record
		// assembly). Lanes compact without reordering: finished ones drop
		// out, the rest keep their BatchSession slot.
		next := lanes[:0]
		for _, la := range stepRefs {
			err := guardLane(func() error { return la.ld.advance(la.tok) })
			var pe *PanicError
			if errors.As(err, &pe) {
				e.failLane(la, err)
				continue
			}
			if err != nil {
				la.ld.fail(err)
			}
			if la.ld.done() {
				e.settle(la)
				continue
			}
			next = append(next, la)
		}
		lanes = next
	}
}

// decodeRequestsLockStep is the batched front half of DecodeRequests:
// records without a per-request Decode override step through shared
// BatchSessions (split into at most `workers` groups, each on its own
// goroutine), while override records take the per-record path concurrently.
// Grouping never affects output: every record's seed, engine, and decoder
// are its own.
func (e *Engine) decodeRequestsLockStep(ctx context.Context, reqs []BatchRequest, workers int, seed int64, decode DecodeCtxFn, out []BatchResult, blm BatchLM) {
	batched := make([]int, 0, len(reqs))
	var rest []int
	for i := range reqs {
		if reqs[i].Decode == nil {
			batched = append(batched, i)
		} else {
			rest = append(rest, i)
		}
	}
	// Hoist prompt rendering + tokenization out of lane setup: identical
	// prompts in one batch (the common serving shape — many requests
	// conditioned on the same coarse counters) are encoded exactly once and
	// the plan shared read-only across their lanes.
	plans := make([]*promptPlan, len(reqs))
	byText := make(map[string]*promptPlan, len(batched))
	for _, i := range batched {
		text, fromSlot, err := e.promptFor(reqs[i].Prompt)
		if err != nil {
			plans[i] = &promptPlan{err: err}
			continue
		}
		if p, ok := byText[text]; ok && p.fromSlot == fromSlot {
			plans[i] = p
			continue
		}
		p := &promptPlan{text: text, fromSlot: fromSlot}
		p.ids, p.err = e.cfg.Tok.Encode(text)
		byText[text] = p
		plans[i] = p
	}
	groups := workers
	if groups > len(batched) {
		groups = len(batched)
	}
	var wg sync.WaitGroup
	for g := 0; g < groups; g++ {
		// Contiguous split: group g takes batched[lo:hi].
		lo := g * len(batched) / groups
		hi := (g + 1) * len(batched) / groups
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(idxs []int) {
			defer wg.Done()
			e.decodeLockStep(ctx, reqs, idxs, seed, out, blm, plans)
		}(batched[lo:hi])
	}
	// Per-request Decode overrides keep the per-record path, sharing the
	// clone pool; at most one extra goroutine beyond the group budget.
	if len(rest) > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, i := range rest {
				eng, err := e.acquireClone()
				if err != nil {
					out[i].Err = err
					continue
				}
				if e.runRequest(ctx, reqs, i, seed, decode, eng, out) {
					// Poisoned by a recovered panic: discard, never pool.
					continue
				}
				e.releaseClone(eng)
			}
		}()
	}
	wg.Wait()
}
