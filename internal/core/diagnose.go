package core

import (
	"fmt"

	"repro/internal/rules"
	"repro/internal/smt"
)

// DiagnoseInfeasible explains why no rule-compliant completion exists for
// the known prefix: it returns a minimal subset of rule names that, together
// with the known values and the field domains, is already unsatisfiable
// (a minimal unsatisfiable core at rule granularity, computed by deletion
// minimization).
//
// It returns an error if the prompt is actually feasible, and may return an
// over-approximate core if the solver budget is exhausted mid-minimization.
func (e *Engine) DiagnoseInfeasible(known rules.Record) ([]string, error) {
	if e.cfg.Rules == nil {
		return nil, fmt.Errorf("core: no rule set configured")
	}
	// A scratch solver so diagnosis never disturbs the decode solver.
	s := smt.NewSolver()
	if e.cfg.MaxNodes > 0 {
		s.MaxNodes = e.cfg.MaxNodes
	}
	b := rules.Instantiate(s, e.cfg.Schema)
	for f, vs := range known {
		bv, ok := b.Vars(f)
		if !ok {
			return nil, fmt.Errorf("core: known field %q not in schema", f)
		}
		for i, v := range vs {
			if i >= len(bv) {
				return nil, fmt.Errorf("core: known field %q has too many values", f)
			}
			s.Assert(smt.Eq(smt.V(bv[i]), smt.C(v)))
		}
	}

	// Compile each rule separately so they can be toggled.
	compiled := make([]smt.Formula, len(e.cfg.Rules.Rules))
	for i, r := range e.cfg.Rules.Rules {
		f, err := e.cfg.Rules.Compile(r, b)
		if err != nil {
			return nil, fmt.Errorf("core: compiling rule %s: %w", r.Name, err)
		}
		compiled[i] = f
	}

	active := make([]bool, len(compiled))
	for i := range active {
		active[i] = true
	}
	conj := func() smt.Formula {
		var fs []smt.Formula
		for i, on := range active {
			if on {
				fs = append(fs, compiled[i])
			}
		}
		return smt.And(fs...)
	}

	if r := s.CheckWith(conj()); r.Status == smt.Sat {
		return nil, fmt.Errorf("core: prompt is feasible; nothing to diagnose")
	}

	// Deletion minimization: drop any rule whose removal keeps UNSAT.
	for i := range compiled {
		active[i] = false
		r := s.CheckWith(conj())
		if r.Status != smt.Unsat {
			active[i] = true // needed for infeasibility (or unknown: keep)
		}
	}
	var names []string
	for i, on := range active {
		if on {
			names = append(names, e.cfg.Rules.Rules[i].Name)
		}
	}
	return names, nil
}
