package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/nn"
	"repro/internal/rules"
	"repro/internal/smt"
	"repro/internal/transition"
	"repro/internal/vocab"
)

// CloneableSession is a Session whose state can be forked — required by
// beam-search decoding, where beams share a prefix and then diverge.
// *nn.Session implements it via the WrapNN adapter; custom LMs can opt in.
type CloneableSession interface {
	Session
	CloneSession() Session
}

// nn sessions clone natively.
type nnSession struct{ *nn.Session }

func (s nnSession) CloneSession() Session { return nnSession{s.Session.Clone()} }

func (a nnLM) newCloneable() Session { return nnSession{a.m.NewSession()} }

// BeamImpute decodes the slots not covered by known with beam search of the
// given width under Just-in-Time rule enforcement: a deterministic,
// MAP-flavoured alternative to sampling that returns (approximately) the
// most likely rule-compliant completion. Stats.LogProb carries the
// renormalized log-probability of the returned sequence.
//
// The LM's sessions must support cloning (CloneableSession; the built-in
// transformer does).
func (e *Engine) BeamImpute(known rules.Record, width int) (Result, error) {
	if width < 1 {
		return Result{}, fmt.Errorf("core: beam width %d < 1", width)
	}
	var res Result
	prompt, fromSlot, err := e.promptFor(known)
	if err != nil {
		return res, err
	}
	checksBefore := e.solver.Stats().Checks
	defer func() { res.Stats.SolverChecks = e.solver.Stats().Checks - checksBefore }()

	// Known-prefix assertions shared by every beam.
	baseAssigns, err := e.knownFormulas(known)
	if err != nil {
		return res, err
	}
	if r := e.solver.CheckWith(baseAssigns...); r.Status != smt.Sat {
		return res, ErrInfeasible{Detail: fmt.Sprintf("prompt %q (%v)", prompt, r.Status)}
	}

	root, err := e.newPromptedCloneable(prompt)
	if err != nil {
		return res, err
	}

	type beamState struct {
		sess    Session
		slotIdx int // index into Slots (absolute)
		state   transition.State
		vals    []int64 // completed generated values (aligned with Slots[fromSlot:])
		logp    float64
		tokens  int
	}
	live := []beamState{{sess: root, slotIdx: fromSlot}}
	var finished []beamState

	slots := e.cfg.Slots
	for len(live) > 0 {
		type cand struct {
			parent int
			tok    int
			logp   float64
			isSep  bool
		}
		var cands []cand
		for bi := range live {
			b := &live[bi]
			slot := slots[b.slotIdx]
			allowed, err := e.beamAdmissible(b.vals, baseAssigns, slot, b.state, fromSlot)
			if err != nil {
				return res, err
			}
			if len(allowed) == 0 {
				continue // dead beam (cannot happen for the top beam: lookahead invariant)
			}
			lps := renormLogProbs(b.sess.Logits(), allowed, e.cfg.Temperature)
			sepID := e.cfg.Tok.ID(slot.Sep)
			for i, tok := range allowed {
				cands = append(cands, cand{parent: bi, tok: tok, logp: b.logp + lps[i], isSep: tok == sepID})
			}
		}
		if len(cands) == 0 {
			break
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].logp > cands[j].logp })
		if len(cands) > width {
			cands = cands[:width]
		}

		// Expand survivors; clone parents shared by multiple children.
		used := map[int]int{}
		var next []beamState
		for _, c := range cands {
			parent := live[c.parent]
			var sess Session
			if used[c.parent] == 0 {
				sess = parent.sess
			} else {
				cl, ok := parent.sess.(CloneableSession)
				if !ok {
					return res, fmt.Errorf("core: LM session %T does not support cloning (beam search needs CloneableSession)", parent.sess)
				}
				sess = cl.CloneSession()
			}
			used[c.parent]++
			if err := sess.Append(c.tok); err != nil {
				return res, err
			}
			nb := beamState{
				sess: sess, slotIdx: parent.slotIdx, state: parent.state,
				vals: append([]int64(nil), parent.vals...),
				logp: c.logp, tokens: parent.tokens + 1,
			}
			if c.isSep {
				nb.vals = append(nb.vals, parent.state.Value())
				nb.state = transition.State{}
				nb.slotIdx++
				if nb.slotIdx == len(slots) {
					finished = append(finished, nb)
					continue
				}
			} else {
				st, err := stepState(e, slots[parent.slotIdx], parent.state, e.cfg.Tok.Char(c.tok))
				if err != nil {
					return res, err
				}
				nb.state = st
			}
			next = append(next, nb)
		}
		live = next
		// Stop once no live beam can overtake the best finished one
		// (log-probabilities only decrease as tokens are appended).
		if len(finished) > 0 {
			bestFin := math.Inf(-1)
			for _, f := range finished {
				if f.logp > bestFin {
					bestFin = f.logp
				}
			}
			anyHope := false
			for _, b := range live {
				if b.logp > bestFin {
					anyHope = true
					break
				}
			}
			if !anyHope {
				break
			}
		}
	}
	if len(finished) == 0 {
		return res, ErrInfeasible{Detail: "beam search found no complete sequence"}
	}
	best := finished[0]
	for _, f := range finished[1:] {
		if f.logp > best.logp {
			best = f
		}
	}
	res.Rec = e.assemble(known, fromSlot, best.vals)
	res.Stats.Tokens = best.tokens
	res.Stats.LogProb = best.logp
	return res, nil
}

// knownFormulas renders the known prefix as equality formulas.
func (e *Engine) knownFormulas(known rules.Record) ([]smt.Formula, error) {
	var fs []smt.Formula
	for f, vs := range known {
		bv, ok := e.binding.Vars(f)
		if !ok {
			return nil, fmt.Errorf("core: known field %q not bound", f)
		}
		for i, v := range vs {
			if i >= len(bv) {
				return nil, fmt.Errorf("core: known field %q has too many values", f)
			}
			fs = append(fs, smt.Eq(smt.V(bv[i]), smt.C(v)))
		}
	}
	return fs, nil
}

// beamAdmissible computes the admissible tokens for one beam at one step:
// the beam's completed values are passed as side constraints instead of
// being asserted (beams diverge, so the solver stack cannot hold them).
func (e *Engine) beamAdmissible(vals []int64, base []smt.Formula, slot Slot, st transition.State, fromSlot int) ([]int, error) {
	side := append([]smt.Formula(nil), base...)
	for i, v := range vals {
		s := e.cfg.Slots[fromSlot+i]
		side = append(side, smt.Eq(smt.V(e.slotVar(s)), smt.C(v)))
	}
	v := e.slotVar(slot)
	var oracle transition.Oracle
	f, _ := e.cfg.Schema.Field(slot.Field)
	if e.cfg.Mode == StructureOnly || e.cfg.Rules == nil {
		lo, hi := f.Lo, f.Hi
		oracle = func(qlo, qhi int64) bool { return qlo <= hi && lo <= qhi }
	} else {
		oracle = transition.CachedOracle(func(qlo, qhi int64) bool {
			probe := append(append([]smt.Formula(nil), side...),
				smt.Ge(smt.V(v), smt.C(qlo)), smt.Le(smt.V(v), smt.C(qhi)))
			return e.solver.CheckWith(probe...).Status == smt.Sat
		})
	}
	sys := transition.New(e.maxDigits[slot.Field], oracle)
	digits, canEnd := sys.Admissible(st)
	allowed := make([]int, 0, 11)
	for d := 0; d <= 9; d++ {
		if digits[d] {
			allowed = append(allowed, e.digitTok[d])
		}
	}
	if canEnd {
		allowed = append(allowed, e.cfg.Tok.ID(slot.Sep))
	}
	return allowed, nil
}

// stepState advances a transition state by one digit (the oracle is not
// needed for stepping, only for admissibility, so a trivial one suffices).
func stepState(e *Engine, slot Slot, st transition.State, c byte) (transition.State, error) {
	sys := transition.New(e.maxDigits[slot.Field], func(int64, int64) bool { return true })
	return sys.Step(st, c)
}

// renormLogProbs computes log softmax over the allowed tokens only
// (temperature-scaled) — the same renormalization the sampler uses, so beam
// scores and sampling probabilities are directly comparable.
func renormLogProbs(logits []float32, allowed []int, temp float64) []float64 {
	maxL := math.Inf(-1)
	ls := make([]float64, len(allowed))
	for i, id := range allowed {
		ls[i] = float64(logits[id]) / temp
		if ls[i] > maxL {
			maxL = ls[i]
		}
	}
	var sum float64
	for i := range ls {
		sum += math.Exp(ls[i] - maxL)
	}
	logZ := maxL + math.Log(sum)
	for i := range ls {
		ls[i] -= logZ
	}
	return ls
}

// newPromptedCloneable starts a cloneable LM session primed with BOS and the
// prompt, falling back to the plain session for non-cloneable LMs (beam
// width 1 never clones).
func (e *Engine) newPromptedCloneable(prompt string) (Session, error) {
	var sess Session
	if a, ok := e.cfg.LM.(nnLM); ok {
		sess = a.newCloneable()
	} else {
		sess = e.cfg.LM.NewSession()
	}
	if err := sess.Append(vocab.BOS); err != nil {
		return nil, err
	}
	ids, err := e.cfg.Tok.Encode(prompt)
	if err != nil {
		return nil, err
	}
	for _, id := range ids {
		if err := sess.Append(id); err != nil {
			return nil, err
		}
	}
	return sess, nil
}
