package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/rules"
	"repro/internal/vocab"
)

func TestTraceHookObservesEverySlot(t *testing.T) {
	schema := testSchema(t)
	rs, err := rules.ParseRuleSet(testRules, schema)
	if err != nil {
		t.Fatal(err)
	}
	var steps []TraceStep
	e, err := NewEngine(Config{
		LM: uniformLM{vocab: vocab.Telemetry().Size()}, Tok: vocab.Telemetry(),
		Schema: schema, Rules: rs, Slots: testGrammar(t, schema),
		TraceHook: func(s TraceStep) { steps = append(steps, s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	res, err := e.Impute(rules.Record{"TotalIngress": {100}, "Congestion": {8}}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != res.Stats.Tokens {
		t.Fatalf("%d trace steps for %d tokens", len(steps), res.Stats.Tokens)
	}
	// Every step's chosen token must be among its admissible set, and the
	// admissible set never exceeds the structural one.
	seen := map[string]bool{}
	for i, s := range steps {
		ok := false
		for _, id := range s.Admissible {
			if id == s.Chosen {
				ok = true
			}
		}
		if !ok {
			t.Errorf("step %d: chosen token %d not admissible %v", i, s.Chosen, s.Admissible)
		}
		if len(s.Admissible) > s.Structural {
			t.Errorf("step %d: admissible %d > structural %d", i, len(s.Admissible), s.Structural)
		}
		seen[s.Field] = true
	}
	if !seen["I"] {
		t.Error("trace never visited the fine field")
	}
	// Imputation starts after the coarse prompt — those fields are never
	// generated and must not appear.
	if seen["TotalIngress"] || seen["Congestion"] {
		t.Error("trace includes prompt fields")
	}
}

// failingSession errors after a fixed number of appends — injected failure
// to verify the engine propagates model errors instead of masking them.
type failingLM struct {
	vocab int
	after int
}

func (f failingLM) VocabSize() int { return f.vocab }
func (f failingLM) NewSession() Session {
	return &failingSession{logits: make([]float32, f.vocab), after: f.after}
}

type failingSession struct {
	logits []float32
	n      int
	after  int
}

var errInjected = errors.New("injected model failure")

func (s *failingSession) Append(tok int) error {
	s.n++
	if s.n > s.after {
		return errInjected
	}
	return nil
}

func (s *failingSession) Logits() []float32 { return s.logits }

func TestModelErrorPropagates(t *testing.T) {
	schema := testSchema(t)
	rs, err := rules.ParseRuleSet(testRules, schema)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(Config{
		LM: failingLM{vocab: vocab.Telemetry().Size(), after: 10}, Tok: vocab.Telemetry(),
		Schema: schema, Rules: rs, Slots: testGrammar(t, schema),
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	_, err = e.Impute(rules.Record{"TotalIngress": {100}, "Congestion": {8}}, rng)
	if !errors.Is(err, errInjected) {
		t.Fatalf("err = %v, want injected failure", err)
	}
}

func TestTopK1IsGreedyDeterministic(t *testing.T) {
	schema := testSchema(t)
	rs, err := rules.ParseRuleSet(testRules, schema)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *Engine {
		e, err := NewEngine(Config{
			LM:  scriptedLM{tok: vocab.Telemetry(), text: "100,8|20,15,25,39,1\n"},
			Tok: vocab.Telemetry(), Schema: schema, Rules: rs,
			Slots: testGrammar(t, schema), TopK: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	known := rules.Record{"TotalIngress": {100}, "Congestion": {8}}
	// Different RNG seeds, same argmax path: TopK=1 removes all sampling
	// randomness.
	a, err := mk().Impute(known, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := mk().Impute(known, rand.New(rand.NewSource(999)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rec["I"] {
		if a.Rec["I"][i] != b.Rec["I"][i] {
			t.Fatalf("greedy decode not deterministic: %v vs %v", a.Rec["I"], b.Rec["I"])
		}
	}
}

// TestCountRuleGuidedDecoding drives the engine with a counting rule — the
// §5 "richer temporal constraints" extension — and verifies guided decoding
// respects it: at most one burst interval per window, conservation intact.
func TestCountRuleGuidedDecoding(t *testing.T) {
	schema := testSchema(t)
	rs, err := rules.ParseRuleSet(`
const BW = 60
rule conserve: sum(I) == TotalIngress
rule onepeak:  count(I >= 30) <= 1
rule cap:      max(I) <= BW
`, schema)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(Config{
		LM: uniformLM{vocab: vocab.Telemetry().Size()}, Tok: vocab.Telemetry(),
		Schema: schema, Rules: rs, Slots: testGrammar(t, schema),
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 15; trial++ {
		res, err := e.Impute(rules.Record{"TotalIngress": {80}, "Congestion": {0}}, rng)
		if err != nil {
			t.Fatal(err)
		}
		var sum int64
		bursts := 0
		for _, v := range res.Rec["I"] {
			sum += v
			if v >= 30 {
				bursts++
			}
		}
		if sum != 80 {
			t.Fatalf("trial %d: conservation broken: %v", trial, res.Rec["I"])
		}
		if bursts > 1 {
			t.Fatalf("trial %d: %d bursts, count rule allows 1: %v", trial, bursts, res.Rec["I"])
		}
	}
}
