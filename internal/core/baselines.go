package core

import (
	"fmt"
	"math/rand"

	"repro/internal/ilp"
	"repro/internal/rules"
	"repro/internal/smt"
	"repro/internal/vocab"
)

// Vanilla decodes with free sampling — no rules, no masking beyond the
// tokenizer's vocabulary — matching the paper's "Vanilla GPT-2" baseline.
// Generation stops when the grammar's final separator appears (or the
// context fills). Malformed outputs are re-sampled up to MaxRetries; the
// retry count is reported in Stats.Malformed.
func (e *Engine) Vanilla(known rules.Record, rng *rand.Rand) (Result, error) {
	var res Result
	prompt, fromSlot, err := e.promptFor(known)
	if err != nil {
		return res, err
	}
	lastSep := e.cfg.Slots[len(e.cfg.Slots)-1].Sep

	for retry := 0; retry <= e.cfg.MaxRetries; retry++ {
		text, toks, err := e.freeSample(prompt, lastSep, rng)
		if err != nil {
			return res, err
		}
		res.Stats.Tokens += toks
		vals, perr := e.parseBySlots(text, fromSlot)
		if perr != nil {
			res.Stats.Malformed++
			continue
		}
		res.Rec = e.assemble(known, fromSlot, vals)
		return res, nil
	}
	return res, fmt.Errorf("core: free sampling produced no well-formed record in %d attempts", e.cfg.MaxRetries+1)
}

// freeSample runs unconstrained sampling until stopByte, EOS, or the context
// limit, returning the generated text.
func (e *Engine) freeSample(prompt string, stopByte byte, rng *rand.Rand) (string, int, error) {
	sess, err := e.newPromptedSession(prompt)
	if err != nil {
		return "", 0, err
	}
	// All character tokens plus EOS are fair game; PAD/BOS are excluded
	// (the model never saw them mid-sequence).
	allowed := make([]int, 0, e.cfg.Tok.Size())
	for id := vocab.FirstChar; id < e.cfg.Tok.Size(); id++ {
		allowed = append(allowed, id)
	}
	allowed = append(allowed, vocab.EOS)

	var out []byte
	toks := 0
	// Generous cap: the longest legal record plus slack.
	maxLen := 0
	for _, s := range e.cfg.Slots {
		maxLen += e.maxDigits[s.Field] + 1
	}
	maxLen = maxLen*2 + 8
	for len(out) < maxLen {
		tok := e.sampleMasked(sess.Logits(), allowed, rng)
		toks++
		if tok == vocab.EOS {
			break
		}
		if err := sess.Append(tok); err != nil {
			break // context exhausted: return what we have
		}
		c := e.cfg.Tok.Char(tok)
		out = append(out, c)
		if c == stopByte {
			break
		}
	}
	return string(out), toks, nil
}

// Rejection implements the rejection-sampling baseline: sample freely and
// discard until the output satisfies every rule, up to MaxAttempts. The
// paper's Fig 3 shows why this is hopeless at scale — the model repeats the
// same mistakes because nothing guides it.
func (e *Engine) Rejection(known rules.Record, rng *rand.Rand) (Result, error) {
	if e.cfg.Rules == nil {
		return Result{}, fmt.Errorf("core: rejection sampling requires a rule set")
	}
	var agg Stats
	for attempt := 1; attempt <= e.cfg.MaxAttempts; attempt++ {
		agg.Attempts = attempt
		r, err := e.Vanilla(known, rng)
		if err != nil {
			return Result{Stats: agg}, err
		}
		agg.Tokens += r.Stats.Tokens
		agg.Malformed += r.Stats.Malformed
		vs, err := e.cfg.Rules.Violations(r.Rec)
		if err != nil {
			return Result{Stats: agg}, err
		}
		if len(vs) == 0 {
			r.Stats = agg
			return r, nil
		}
	}
	return Result{Stats: agg}, fmt.Errorf("core: rejection sampling exhausted %d attempts", e.cfg.MaxAttempts)
}

// PostHoc implements post-inference enforcement (§2.2, the NetDiffusion /
// Zoom2Net-CEM strategy): sample freely once, then, if any rule is violated,
// project the output onto the feasible region by L1-minimal integer repair.
// The projection guarantees compliance but optimizes numerical distance, not
// likelihood — the fidelity cost the paper measures.
func (e *Engine) PostHoc(known rules.Record, rng *rand.Rand) (Result, error) {
	if e.cfg.Rules == nil {
		return Result{}, fmt.Errorf("core: post-hoc repair requires a rule set")
	}
	res, err := e.Vanilla(known, rng)
	if err != nil {
		return res, err
	}
	vs, err := e.cfg.Rules.Violations(res.Rec)
	if err != nil {
		return res, err
	}
	if len(vs) == 0 {
		return res, nil
	}

	// Repair on a fresh solver (the engine's solver may be configured for
	// LeJIT mode; repair needs the rules regardless of engine mode). The
	// node budget is deliberately tight: ilp.Repair degrades gracefully to
	// the best incumbent when a probe exhausts it, mirroring the
	// time-limited ILPs of real CEM-style systems.
	s := smt.NewSolver()
	s.MaxNodes = 30_000
	if e.cfg.MaxNodes > 0 {
		s.MaxNodes = e.cfg.MaxNodes
	}
	b := rules.Instantiate(s, e.cfg.Schema)
	f, err := e.cfg.Rules.CompileAll(b)
	if err != nil {
		return res, err
	}
	s.Assert(f)
	// Pin the known prefix; repair only the generated slots.
	_, fromSlot, err := e.promptFor(known)
	if err != nil {
		return res, err
	}
	for fn, vals := range known {
		bv, _ := b.Vars(fn)
		for i, v := range vals {
			s.Assert(smt.Eq(smt.V(bv[i]), smt.C(v)))
		}
	}
	var free []smt.Var
	var targets []int64
	for _, slot := range e.cfg.Slots[fromSlot:] {
		bv, _ := b.Vars(slot.Field)
		free = append(free, bv[slot.Index])
		targets = append(targets, res.Rec[slot.Field][slot.Index])
	}
	checksBefore := s.Stats().Checks
	repaired, st := ilp.Repair(s, free, targets)
	res.Stats.SolverChecks += s.Stats().Checks - checksBefore
	if st != smt.Sat {
		return res, ErrInfeasible{Detail: fmt.Sprintf("repair %v", st)}
	}
	for i, slot := range e.cfg.Slots[fromSlot:] {
		res.Rec[slot.Field][slot.Index] = repaired[free[i]]
	}
	res.Stats.Repaired = true
	return res, nil
}
