package core

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/nn"
	"repro/internal/prefixcache"
	"repro/internal/rules"
	"repro/internal/smt"
	"repro/internal/transition"
	"repro/internal/vocab"
)

// laneDecoder is the guided (LeJIT) decoding loop turned inside out: instead
// of driving an LM session itself, it hands its driver one token at a time
// (next) and is told when the LM has consumed it (advance). The per-record
// path (Engine.guided) drives it with a plain Session; the lock-step
// scheduler (lockstep.go) drives one laneDecoder per batch lane between
// shared GEMM steps. Both drivers execute the same per-record sequence of
// solver probes, RNG draws, and token decisions, so a record's output is
// identical — bit for bit, given the NN kernels' bit-exactness — whichever
// path decodes it.
//
// All solver work happens on the decoder's engine, which must be dedicated
// to this lane until finish: the known prefix is asserted under a Push frame
// that finish pops.
type laneDecoder struct {
	e     *Engine
	ctx   context.Context
	rng   *rand.Rand
	known rules.Record

	res          Result
	err          error
	checksBefore uint64
	pushed       bool
	finished     bool

	fromSlot int
	pending  []int // BOS + prompt tokens not yet handed to the LM
	vals     []int64

	// Prefix-cache state. key accumulates every token the LM has consumed
	// (BOS first), keySlots the grammar slots those tokens complete; together
	// they name the radix-tree position of the lane's current prefix. warm
	// holds a pending cache hit until the driver claims it via applyWarm;
	// capture is the driver-installed hook that freezes the LM state at a
	// boundary (nil when the LM is not a paged nn.Session).
	useCache bool
	warm     *prefixcache.Hit
	key      []int
	keySlots int
	capture  func() *nn.Session
	genCaps  int // generated-region snapshots taken by this lane

	// Per-slot state, rebuilt by beginSlot for e.cfg.Slots[slot].
	slot       int
	inSlot     bool
	oracle     *slotOracle // nil in StructureOnly / rule-free modes
	sys        *transition.System
	structural *transition.System
	state      transition.State
	sepID      int
	sampled    bool // whether the last token from next was sampled (vs prompt)
	allowed    []int

	// Speculative decoding (spec.go, DESIGN.md §13). spec is non-nil only
	// when a driver installed a rewind hook and the effective lookahead is
	// positive; draw is the lane's sampling RNG surface — rng itself on the
	// exact path, the replaying specRNG when speculating.
	spec *laneSpec
	draw floatSource
	// mergeO carries the violated run's validation replica from a rollback
	// to the re-decide's beginSlot: interval knowledge proven at mergeMark's
	// stack that the fresh oracle may start from (see rollbackTo).
	mergeO    *slotOracle
	mergeMark int

	// Streaming state (WithEmit, DESIGN.md §16). emitTok/emitSlots mark how
	// far along key the hook has been fed; flushEmit only ever runs outside
	// an open speculation window, so everything at or before emitTok is
	// committed and a rollback (which truncates to a checkpoint taken after
	// the last flush) can never cut below it.
	emit      EmitFn
	emitTok   int // tokens of key already rendered to the hook
	emitSlots int // slots already rendered to the hook
}

// promptPlan is a prompt rendered and tokenized once. The lock-step
// scheduler precomputes plans so identical prompts in one batch are encoded
// a single time and shared read-only across lanes; the per-record path
// builds one on the fly.
type promptPlan struct {
	text     string
	fromSlot int
	ids      []int // encoded prompt tokens, BOS excluded; never mutated
	err      error
}

// planPrompt renders and tokenizes known's prompt.
func (e *Engine) planPrompt(known rules.Record) *promptPlan {
	text, fromSlot, err := e.promptFor(known)
	if err != nil {
		return &promptPlan{err: err}
	}
	p := &promptPlan{text: text, fromSlot: fromSlot}
	p.ids, p.err = e.cfg.Tok.Encode(text)
	return p
}

// newLaneDecoder starts one record's guided decode on e: it asserts the
// known prefix under a Push frame, runs the feasibility pre-check, and
// queues BOS plus the rendered prompt for the LM. On any setup failure the
// returned decoder is already finished with the error recorded.
func (e *Engine) newLaneDecoder(ctx context.Context, known rules.Record, rng *rand.Rand) *laneDecoder {
	return e.newLaneDecoderPlan(ctx, known, rng, nil)
}

// newLaneDecoderPlan is newLaneDecoder with an optional precomputed prompt
// plan (nil → plan here).
func (e *Engine) newLaneDecoderPlan(ctx context.Context, known rules.Record, rng *rand.Rand, plan *promptPlan) *laneDecoder {
	if ctx == nil {
		ctx = context.Background()
	}
	ld := &laneDecoder{e: e, ctx: ctx, rng: rng, draw: rng, known: known, emit: emitFor(ctx)}
	if plan == nil {
		plan = e.planPrompt(known)
	}
	if plan.err != nil {
		ld.fail(plan.err)
		return ld
	}
	ld.fromSlot, ld.slot = plan.fromSlot, plan.fromSlot
	ld.checksBefore = e.solver.Stats().Checks
	ld.pending = append(append(make([]int, 0, len(plan.ids)+1), vocab.BOS), plan.ids...)

	// Longest-prefix lookup before any solver or LM work. Only nn-backed
	// engines participate: a cached snapshot is a frozen nn.Session, which
	// is meaningless to any other LM implementation.
	if cache := e.cfg.PrefixCache; cache != nil && !prefixCacheDisabled(ctx) {
		if _, ok := e.cfg.LM.(nnLM); ok {
			ld.useCache = true
			ld.warm = cache.Lookup(ld.pending, e.fingerprint)
		}
	}

	// Attach the request's context to the solver for the lane's lifetime:
	// a cancelled request now abandons a Check mid-search (the solver polls
	// the context between nodes), not just between tokens. finish detaches
	// it before the engine returns to the pool.
	e.solver.SetContext(ctx)
	e.solver.Push()
	ld.pushed = true
	for f, vs := range known {
		bv, ok := e.binding.Vars(f)
		if !ok {
			ld.fail(fmt.Errorf("core: known field %q not bound", f))
			return ld
		}
		for i, v := range vs {
			e.solver.Assert(smt.Eq(smt.V(bv[i]), smt.C(v)))
		}
	}
	if ld.warm != nil && ld.warm.Tokens == len(ld.pending) && ld.warm.Model != nil {
		// Full-prompt hit with a witness: the snapshot's model satisfies the
		// rules plus every value its key pins, and the key is this exact
		// prompt — the same assertion stack just built (the grammar makes
		// token prefix ⇄ value assignment one-to-one, and the rule-epoch
		// fingerprint pinned the rule side). That proves Sat, so the
		// feasibility Check is skipped and the witness seeds the first
		// slot's oracle directly.
		e.noteModel(ld.warm.Model)
	} else {
		r := e.solver.Check()
		if r.Status == smt.Unknown {
			// Budget or cancellation — not a proof of infeasibility.
			ld.fail(fmt.Errorf("core: prompt feasibility check gave up: %w", r.Err))
			return ld
		}
		if r.Status != smt.Sat {
			ld.fail(ErrInfeasible{Detail: fmt.Sprintf("prompt %q (%v)", plan.text, r.Status)})
			return ld
		}
		// The feasibility model doubles as the first slot's witness seed.
		e.noteModel(r.Model)
	}

	ld.vals = make([]int64, 0, len(e.cfg.Slots)-plan.fromSlot)
	ld.allowed = make([]int, 0, 11)
	return ld
}

// applyWarm consumes the lane's pending cache hit: the already-consumed
// prefix is dropped from the LM feed queue and the caller takes ownership of
// the restored session (the solo driver decodes on it directly; the
// lock-step driver copies it into its lane and releases it). Returns nil on
// a cold lane. Must be called before the first next().
func (ld *laneDecoder) applyWarm() *nn.Session {
	if ld.warm == nil || ld.finished {
		return nil
	}
	h := ld.warm
	ld.warm = nil
	ld.key = append(ld.key, ld.pending[:h.Tokens]...)
	ld.keySlots = h.Slots
	ld.pending = ld.pending[h.Tokens:]
	ld.res.Stats.PrefixHitTokens = h.Tokens
	return h.Sess
}

// done reports whether the record is complete (successfully or not); once
// done, result() holds the outcome and the solver frame has been popped.
func (ld *laneDecoder) done() bool { return ld.finished }

// result returns the decode outcome; valid once done.
func (ld *laneDecoder) result() (Result, error) { return ld.res, ld.err }

// fail finishes the lane with err.
func (ld *laneDecoder) fail(err error) {
	ld.err = err
	ld.finish()
}

// finish settles the stats and pops the lane's solver frame. Idempotent; the
// per-record driver defers it so the engine is always left clean.
func (ld *laneDecoder) finish() {
	if ld.finished {
		return
	}
	ld.finished = true
	if ld.warm != nil {
		// A hit the driver never claimed: drop its page references.
		ld.warm.Sess.Release()
		ld.warm = nil
	}
	if ld.spec != nil {
		// Captures still staged belong to a window that never validated
		// (the lane failed mid-window); its journaled asserts sit above the
		// lane's Push frame, so the Pop below discards them.
		dropCaps(ld.spec.caps)
		ld.spec.caps = ld.spec.caps[:0]
		ld.spec.open = false
	}
	ld.res.Stats.SolverChecks = ld.e.solver.Stats().Checks - ld.checksBefore
	if lm, ok := ld.e.cfg.LM.(nnLM); ok {
		ld.res.Stats.KernelWorkers = lm.m.KernelWorkers()
		if lm.m.QuantEnabled() {
			ld.res.Stats.QuantizedWeightRows = lm.m.QuantCoverage()
		}
	}
	if ld.pushed {
		ld.e.solver.Pop()
		ld.pushed = false
	}
	// Detach the request context so a pooled engine never carries a dead
	// context into its next lane.
	ld.e.solver.SetContext(nil)
}

// next returns the next token to feed the LM: a queued prompt token, or one
// sampled from logits under the slot's admissible mask. logits are the LM's
// logits after the lane's previous token and are only read once the prompt
// has drained (BOS always precedes the first sampled token, so the first
// call may pass nil). The caller must feed the token to the LM and then call
// advance with it.
//
// With speculation armed, a step error inside an open window first settles
// the window: if the committed prefix is exact the error is real and
// propagates; if a rollback erased the erroring position, the loop retries
// it on the exact path — the rollback restored the LM's logits buffer in
// place, so the caller's logits slice already shows the retried position.
func (ld *laneDecoder) next(logits []float32) (int, error) {
	for {
		tok, err := ld.step(logits)
		if err == nil {
			return tok, nil
		}
		if sp := ld.spec; sp == nil || !sp.open {
			return 0, err
		}
		rolledBack, rerr := ld.resolveWindow(err)
		if !rolledBack {
			return 0, rerr
		}
	}
}

// step decides one token (see next, its driver-facing wrapper).
func (ld *laneDecoder) step(logits []float32) (int, error) {
	if ld.finished {
		return 0, fmt.Errorf("core: laneDecoder.next after finish")
	}
	if len(ld.pending) > 0 {
		tok := ld.pending[0]
		ld.pending = ld.pending[1:]
		ld.sampled = false
		return tok, nil
	}
	e := ld.e
	// Every call past the prompt samples, so each one is a speculative
	// position: checkpoint it (opening a window if none is open) — unless a
	// rollback just landed here, in which case this position re-decides on
	// the exact path.
	if sp := ld.spec; sp != nil {
		if sp.exactNext {
			sp.exactNext = false
		} else if sp.warm > 0 {
			sp.warm--
		} else if sp.cool > 0 {
			sp.cool--
		} else {
			ld.specCheckpoint(logits)
		}
	}
	if !ld.inSlot {
		if err := ld.beginSlot(); err != nil {
			return 0, err
		}
	}
	// One context check per emitted token — before this round of solver
	// probes — so a cancelled request stops burning solver work mid-decode.
	if err := ld.ctx.Err(); err != nil {
		return 0, err
	}
	slot := e.cfg.Slots[ld.slot]
	if e.cfg.FaultHook != nil {
		if err := e.cfg.FaultHook(FaultSite{
			Known: ld.known, Field: slot.Field, Index: slot.Index,
			Tokens: ld.res.Stats.Tokens,
		}); err != nil {
			return 0, err
		}
	}
	digits, canEnd := ld.sys.Admissible(ld.state)
	if ld.oracle != nil {
		if err := ld.oracle.budgetErr(); err != nil {
			return 0, lookaheadGaveUp(slot, err)
		}
	}
	ld.allowed = ld.allowed[:0]
	for d := 0; d <= 9; d++ {
		if digits[d] {
			ld.allowed = append(ld.allowed, e.digitTok[d])
		}
	}
	if canEnd {
		ld.allowed = append(ld.allowed, ld.sepID)
	}
	if len(ld.allowed) == 0 {
		// Unreachable if the lookahead invariant holds: the state was only
		// entered because some completion existed.
		return 0, fmt.Errorf("core: dead end at %s[%d] prefix %s (invariant breach)", slot.Field, slot.Index, ld.state)
	}
	sDigits, sEnd := ld.structural.Admissible(ld.state)
	nStruct := 0
	for d := 0; d <= 9; d++ {
		if sDigits[d] {
			nStruct++
		}
	}
	if sEnd {
		nStruct++
	}
	if len(ld.allowed) < nStruct {
		ld.res.Stats.MaskedSteps++
		if len(ld.allowed) == 1 {
			ld.res.Stats.ForcedSteps++
		}
	}
	tok := e.sampleMasked(logits, ld.allowed, ld.draw)
	if e.cfg.TraceHook != nil {
		e.cfg.TraceHook(TraceStep{
			Field: slot.Field, Index: slot.Index, Prefix: ld.state.String(),
			Admissible: append([]int(nil), ld.allowed...),
			Structural: nStruct, Chosen: tok,
		})
	}
	ld.sampled = true
	return tok, nil
}

// beginSlot builds the transition system for the slot about to decode:
// solver-backed lookahead in LeJIT mode, grammar/domain masking otherwise,
// plus the purely structural mirror used for Masked/Forced accounting.
func (ld *laneDecoder) beginSlot() error {
	e := ld.e
	slot := e.cfg.Slots[ld.slot]
	f, _ := e.cfg.Schema.Field(slot.Field)
	ld.oracle = nil
	if e.cfg.Mode == StructureOnly || e.cfg.Rules == nil {
		lo, hi := f.Lo, f.Hi
		ld.sys = transition.New(e.maxDigits[slot.Field],
			func(qlo, qhi int64) bool { return qlo <= hi && lo <= qhi })
	} else {
		// The slot oracle answers probes from per-slot interval state
		// (oracle.go) and falls back to solver probes; batching lets it
		// drain a candidate's whole completion union locally before any
		// solver work.
		ld.oracle = e.newSlotOracle(e.slotVar(slot), &ld.res.Stats)
		ld.oracle.spec = ld.spec
		if ld.mergeO != nil {
			// A rollback stashed the violated run's validation replica: its
			// witnesses and envelope tightenings were proven at exactly this
			// variable and assertion stack, so the re-decide starts with
			// everything suffix validation already paid for — including the
			// refutation that forced the rollback, when the envelope can
			// express it.
			if ld.mergeO.v == ld.oracle.v && e.solver.AssertionMark() == ld.mergeMark {
				mergeOracle(ld.oracle, ld.mergeO)
			}
			ld.mergeO = nil
		}
		ld.sys = transition.NewBatch(e.maxDigits[slot.Field], ld.oracle.Feasible, ld.oracle.FeasibleAny)
	}
	if !ld.sys.HasPath() {
		// A budget-starved or cancelled probe answers false; surface that as
		// the lane's failure, not as a (false) proof of infeasibility.
		if ld.oracle != nil {
			if err := ld.oracle.budgetErr(); err != nil {
				return lookaheadGaveUp(slot, err)
			}
		}
		return ErrInfeasible{Detail: fmt.Sprintf("no feasible value for %s[%d]", slot.Field, slot.Index)}
	}
	// structural mirrors the grammar/width automaton with a trivially-true
	// oracle, so Masked/Forced stats count only rule-driven pruning, not
	// structural necessities like the separator after a max-width value.
	ld.structural = transition.New(e.maxDigits[slot.Field],
		func(lo, hi int64) bool { return lo <= f.Hi && f.Lo <= hi })
	ld.sepID = e.cfg.Tok.ID(slot.Sep)
	ld.state = ld.sys.Start()
	ld.inSlot = true
	return nil
}

// advance records that the LM consumed tok (the value next returned). It
// performs the post-append bookkeeping: token accounting, value completion
// on a separator (dynamic partial instantiation: the finished value is
// asserted so the solver's view of active rules advances with generation),
// prefix-cache snapshot capture at slot boundaries, and record assembly
// after the last slot.
func (ld *laneDecoder) advance(tok int) error {
	e := ld.e
	ld.key = append(ld.key, tok)
	// A slot boundary is the separator that completes slot keySlots —
	// whether it arrived as prompt text or was just sampled. (A separator
	// token can never be confused with a digit, so the comparison is exact.)
	boundary := false
	if ld.keySlots < len(e.cfg.Slots) && tok == e.cfg.Tok.ID(e.cfg.Slots[ld.keySlots].Sep) {
		ld.keySlots++
		boundary = true
	}
	if ld.sampled {
		ld.res.Stats.Tokens++
		if tok == ld.sepID {
			v := ld.state.Value()
			ld.vals = append(ld.vals, v)
			slot := e.cfg.Slots[ld.slot]
			f := smt.Eq(smt.V(e.slotVar(slot)), smt.C(v))
			wasValid := e.lastModel != nil && e.lastModelEpoch == e.solver.Epoch()
			e.solver.Assert(f)
			if sp := ld.spec; sp != nil && sp.open {
				// Journaled so suffix validation can rebuild any probe-time
				// stack; the assert itself lands as usual, above the
				// window's base mark.
				sp.asserts = append(sp.asserts, f)
			}
			// Carry the witness model across the assert when possible: if it
			// already assigned the pinned value it remains a model of the
			// extended stack as-is; otherwise try patching it to the value
			// (shifting the residual of at most one coupling conjunct, see
			// patchValue). Keeping the model alive here is what keeps the
			// patch fast path productive for the following slots — during an
			// open speculation window there are no solver probes to refresh
			// it, so this repair is the only witness source until the settle.
			if wasValid && (e.lastModel[e.slotVar(slot)] == v || e.patchValue(e.slotVar(slot), v)) {
				e.lastModelEpoch = e.solver.Epoch()
			}
			ld.inSlot = false
			ld.slot++
		} else {
			st, err := ld.sys.Step(ld.state, e.cfg.Tok.Char(tok))
			if err != nil {
				return fmt.Errorf("core: stepping transition system: %w", err)
			}
			// Digits fall through: boundary is false for them and completion
			// is false while inSlot, so only the window-full check below can
			// act — exactly what a full window mid-value needs.
			ld.state = st
		}
	}
	if boundary {
		// After the assert above, so a captured witness covers the pinned
		// value and a restored one re-arms the next slot's oracle.
		ld.maybeCapture()
	}
	if sp := ld.spec; sp != nil && sp.open && ld.sampled {
		if ld.complete() || len(sp.cps) >= sp.curK {
			// Window full or record complete: settle it. On rollback the
			// restored state fails the completion re-check below and the
			// driver's next call retries the rolled-back position (its
			// logits buffer was restored in place).
			if _, err := ld.resolveWindow(nil); err != nil {
				return err
			}
		}
	}
	if ld.complete() {
		ld.res.Rec = e.assemble(ld.known, ld.fromSlot, ld.vals)
		ld.finish()
	}
	// Stream newly completed slots, but never from inside an open lookahead
	// window: a rollback may still erase them. resolveWindow above has
	// already settled full/complete windows, so commits flush here too.
	if ld.emit != nil && (ld.spec == nil || !ld.spec.open) {
		ld.flushEmit()
	}
	return nil
}

// flushEmit renders every completed-but-unstreamed slot of key to the emit
// hook. Must only be called outside an open speculation window (advance
// guards this), which is what makes streamed chunks irrevocable: the first
// checkpoint of any later window sits at or past emitTok, so no rollback
// truncates below it.
func (ld *laneDecoder) flushEmit() {
	e := ld.e
	for ld.emitSlots < ld.keySlots {
		if ld.emitTok == 0 {
			ld.emitTok = 1 // key[0] is BOS, which renders to nothing
		}
		sep := e.cfg.Tok.ID(e.cfg.Slots[ld.emitSlots].Sep)
		end := ld.emitTok
		for end < len(ld.key) && ld.key[end] != sep {
			end++
		}
		if end >= len(ld.key) {
			return // slot still incomplete (unreachable while emitSlots < keySlots)
		}
		buf := make([]byte, 0, end+1-ld.emitTok)
		for _, tok := range ld.key[ld.emitTok : end+1] {
			buf = append(buf, e.cfg.Tok.Char(tok))
		}
		ld.emit(ld.emitSlots, string(buf))
		ld.emitTok = end + 1
		ld.emitSlots++
	}
}

// complete reports whether every slot has been decoded.
func (ld *laneDecoder) complete() bool {
	return len(ld.pending) == 0 && !ld.inSlot && ld.slot >= len(ld.e.cfg.Slots)
}

// lookaheadGaveUp wraps the sticky budget/cancellation error a slot oracle
// recorded, naming the slot whose lookahead the solver abandoned.
func lookaheadGaveUp(slot Slot, err error) error {
	return fmt.Errorf("core: solver gave up during lookahead for %s[%d]: %w", slot.Field, slot.Index, err)
}

// maxGenCaptures bounds how many sampled-region boundaries one lane may
// snapshot. Prompt-region boundaries (where clustering lives) are not
// counted against it; sampled-region snapshots mostly pay off when a later
// request's longer prompt extends into this record's generated values, so a
// couple per record buys that without cloning at every separator.
const maxGenCaptures = 2

// maybeCapture freezes the lane's paired (LM, solver) state at the current
// slot boundary and inserts it into the prefix cache, unless the boundary
// is already cached, capture is impossible, or the record is complete (a
// full-record key can never be another request's proper prefix).
func (ld *laneDecoder) maybeCapture() {
	e := ld.e
	if !ld.useCache || ld.capture == nil || ld.keySlots >= len(e.cfg.Slots) {
		return
	}
	gen := ld.keySlots > ld.fromSlot
	if gen && ld.genCaps >= maxGenCaptures {
		return
	}
	cache := e.cfg.PrefixCache
	if !cache.NeedsInsert(ld.key, e.fingerprint) {
		return
	}
	sess := ld.capture()
	if sess == nil {
		return
	}
	// Pair the KV snapshot with the solver's witness when one is current for
	// this epoch; the witness may assign more than the key pins (later knowns
	// are already asserted), which only makes it a stronger model of the
	// key's assertion set. A nil model still warm-starts the transformer.
	var model map[smt.Var]int64
	if e.lastModel != nil && e.lastModelEpoch == e.solver.Epoch() {
		model = make(map[smt.Var]int64, len(e.lastModel))
		for k, v := range e.lastModel {
			model[k] = v
		}
	}
	key := append([]int(nil), ld.key...)
	snap := &prefixcache.Snapshot{
		Sess: sess, Model: model, RuleEpoch: e.fingerprint, Slots: ld.keySlots,
	}
	if sp := ld.spec; sp != nil && sp.open {
		// Mid-window boundaries stage their snapshots instead of publishing
		// them: other requests must never warm-start from a prefix that has
		// not validated. genCaps advances now so the cap applies within the
		// window; a rollback restores it from the checkpoint.
		sp.caps = append(sp.caps, specCapture{key: key, snap: snap, gen: gen})
		if gen {
			ld.genCaps++
		}
		return
	}
	if cache.Insert(key, snap) {
		ld.res.Stats.PrefixCaptures++
		if gen {
			ld.genCaps++
		}
	}
}
