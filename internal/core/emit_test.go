package core

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/rules"
)

// renderLine builds the full grammar-order text of a record — the exact
// string the serving layer returns as "line". Streamed chunks must
// concatenate to it byte for byte.
func renderLine(e *Engine, rec rules.Record) string {
	var b strings.Builder
	for _, sl := range e.Slots() {
		fmt.Fprintf(&b, "%d%c", rec[sl.Field][sl.Index], sl.Sep)
	}
	return b.String()
}

// chunkCollector gathers emitted slots and checks ordering invariants.
type chunkCollector struct {
	chunks []string
	slots  []int
}

func (c *chunkCollector) fn(slot int, text string) {
	c.chunks = append(c.chunks, text)
	c.slots = append(c.slots, slot)
}

// checkChunks asserts the collector saw every slot exactly once, in order,
// and that the concatenation equals the record's rendered line.
func checkChunks(t *testing.T, label string, e *Engine, rec rules.Record, c *chunkCollector) {
	t.Helper()
	if len(c.slots) != len(e.Slots()) {
		t.Fatalf("%s: %d chunks for %d slots", label, len(c.slots), len(e.Slots()))
	}
	for i, s := range c.slots {
		if s != i {
			t.Fatalf("%s: chunk %d carries slot %d (out of order or duplicated)", label, i, s)
		}
	}
	got := strings.Join(c.chunks, "")
	want := renderLine(e, rec)
	if got != want {
		t.Errorf("%s: streamed %q != line %q", label, got, want)
	}
}

// TestEmitMatchesLineSolo: on the per-record path, the emit hook streams one
// chunk per slot whose concatenation is bit-identical to the rendered line,
// and installing the hook does not perturb the decode.
func TestEmitMatchesLineSolo(t *testing.T) {
	e := nnTestEngine(t)
	prompts := []rules.Record{
		{"TotalIngress": {120}, "Congestion": {10}},
		{"TotalIngress": {60}, "Congestion": {0}},
		nil, // unconditional generation streams every slot
	}
	for pi, known := range prompts {
		for seed := int64(0); seed < 3; seed++ {
			label := fmt.Sprintf("prompt %d seed %d", pi, seed)
			plain, err := soloDecode(t, e, BatchRequest{Prompt: known}, seed, 0)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			var c chunkCollector
			eng, err := e.Clone()
			if err != nil {
				t.Fatal(err)
			}
			ctx := WithEmit(context.Background(), c.fn)
			rng := rand.New(rand.NewSource(MixSeed(seed, 0)))
			var res Result
			if known == nil {
				res, err = eng.GenerateCtx(ctx, rng)
			} else {
				res, err = eng.ImputeCtx(ctx, known, rng)
			}
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if !reflect.DeepEqual(res.Rec, plain.Rec) {
				t.Errorf("%s: emit hook changed the record: %v != %v", label, res.Rec, plain.Rec)
			}
			checkChunks(t, label, e, res.Rec, &c)
		}
	}
}

// TestEmitMatchesLineLockStep: lanes decoded lock-step through a shared
// BatchSession stream their slots through per-request contexts, and each
// lane's chunks concatenate to exactly its own line — no cross-lane mixing.
func TestEmitMatchesLineLockStep(t *testing.T) {
	e := nnTestEngine(t)
	const n = 5
	cols := make([]chunkCollector, n)
	reqs := make([]BatchRequest, n)
	for i := range reqs {
		if i%3 != 2 {
			reqs[i].Prompt = rules.Record{"TotalIngress": {80 + 15*int64(i)}, "Congestion": {int64(i % 2 * 10)}}
		}
		reqs[i].Ctx = WithEmit(context.Background(), cols[i].fn)
	}
	out, err := e.DecodeRequests(context.Background(), reqs, 1, 21, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i].Err != nil {
			t.Fatalf("lane %d: %v", i, out[i].Err)
		}
		checkChunks(t, fmt.Sprintf("lane %d", i), e, out[i].Res.Rec, &cols[i])
	}
	// The emit hook must not perturb lock-step output either.
	bare := make([]BatchRequest, n)
	for i := range bare {
		bare[i].Prompt = reqs[i].Prompt
	}
	plain, err := e.DecodeRequests(context.Background(), bare, 1, 21, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if !reflect.DeepEqual(plain[i].Res.Rec, out[i].Res.Rec) {
			t.Errorf("lane %d: emit hook changed the record: %v != %v", i, out[i].Res.Rec, plain[i].Res.Rec)
		}
	}
}

// TestEmitSpeculativeNeverRetracts: under speculative decoding, chunks are
// withheld while a window is open and flushed at commit, so even runs that
// roll back stream exactly the final line — never a retracted prefix. The
// fixture engine forces rollbacks (including across slot boundaries); the
// scanned seed range must actually exhibit one for the test to mean anything.
func TestEmitSpeculativeNeverRetracts(t *testing.T) {
	e := rollbackTestEngine(t, nil, false)
	rolledBack := false
	for seed := int64(0); seed < 10; seed++ {
		label := fmt.Sprintf("seed %d", seed)
		var c chunkCollector
		eng, err := e.Clone()
		if err != nil {
			t.Fatal(err)
		}
		ctx := WithEmit(WithLookahead(context.Background(), 8), c.fn)
		res, err := eng.GenerateCtx(ctx, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if res.Stats.SpecRollbacks > 0 {
			rolledBack = true
		}
		exact, err := specLookahead(t, e, nil, seed, 0)
		if err != nil {
			t.Fatalf("%s: exact path: %v", label, err)
		}
		if !reflect.DeepEqual(res.Rec, exact.Rec) {
			t.Errorf("%s: speculative+emit record %v != exact %v", label, res.Rec, exact.Rec)
		}
		checkChunks(t, label, e, res.Rec, &c)
	}
	if !rolledBack {
		t.Fatal("no seed triggered a rollback; the retraction edge was not exercised")
	}
}
