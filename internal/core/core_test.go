package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/rules"
	"repro/internal/vocab"
)

// --- Mock language models -------------------------------------------------

// uniformLM assigns equal logits to every token: a maximally clueless model
// that exercises the engine's correctness guarantees in isolation.
type uniformLM struct{ vocab int }

func (u uniformLM) VocabSize() int { return u.vocab }
func (u uniformLM) NewSession() Session {
	return &uniformSession{logits: make([]float32, u.vocab)}
}

type uniformSession struct {
	logits []float32
	n      int
}

func (s *uniformSession) Append(tok int) error { s.n++; return nil }
func (s *uniformSession) Logits() []float32    { return s.logits }

// scriptedLM strongly prefers emitting a fixed text (the characters after
// BOS), modeling a confident LM whose intent the engine should preserve
// whenever it is rule-compliant.
type scriptedLM struct {
	tok  *vocab.Tokenizer
	text string
}

func (s scriptedLM) VocabSize() int { return s.tok.Size() }
func (s scriptedLM) NewSession() Session {
	return &scriptedSession{lm: s, logits: make([]float32, s.tok.Size())}
}

type scriptedSession struct {
	lm     scriptedLM
	logits []float32
	chars  int // characters consumed (Appends excluding BOS)
}

func (s *scriptedSession) Append(tok int) error {
	if tok != vocab.BOS {
		s.chars++
	}
	return nil
}

func (s *scriptedSession) Logits() []float32 {
	for i := range s.logits {
		s.logits[i] = -30
	}
	if s.chars < len(s.lm.text) {
		s.logits[s.lm.tok.ID(s.lm.text[s.chars])] = 30
	} else {
		s.logits[vocab.EOS] = 30
	}
	return s.logits
}

// formatAwareLM mimics a trained model: it has internalized the record
// format (digits then the correct separator) but picks digit values
// uniformly — well-formed output, random values. This is what free sampling
// from a real trained LM looks like before rule knowledge.
type formatAwareLM struct {
	tok   *vocab.Tokenizer
	slots []Slot
}

func (f formatAwareLM) VocabSize() int { return f.tok.Size() }
func (f formatAwareLM) NewSession() Session {
	return &formatAwareSession{lm: f, logits: make([]float32, f.tok.Size())}
}

type formatAwareSession struct {
	lm      formatAwareLM
	logits  []float32
	slot    int // current grammar slot
	ndigits int // digits emitted in the current value
}

func (s *formatAwareSession) Append(tok int) error {
	if tok == vocab.BOS || !s.lm.tok.IsChar(tok) {
		return nil
	}
	c := s.lm.tok.Char(tok)
	if c >= '0' && c <= '9' {
		s.ndigits++
		return nil
	}
	// Any separator advances the slot.
	s.slot++
	s.ndigits = 0
	return nil
}

func (s *formatAwareSession) Logits() []float32 {
	for i := range s.logits {
		s.logits[i] = -20
	}
	if s.slot >= len(s.lm.slots) {
		s.logits[vocab.EOS] = 5
		return s.logits
	}
	for d := byte('0'); d <= '9'; d++ {
		s.logits[s.lm.tok.ID(d)] = 0
	}
	if s.ndigits >= 1 {
		// Prefer ending the value after 1-2 digits, via the correct
		// separator for the current slot.
		sep := s.lm.slots[s.slot].Sep
		s.logits[s.lm.tok.ID(sep)] = float32(s.ndigits) * 1.5
	}
	return s.logits
}

// --- Shared fixtures -------------------------------------------------------

func testSchema(t *testing.T) *rules.Schema {
	t.Helper()
	return rules.MustSchema(
		rules.Field{Name: "TotalIngress", Kind: rules.Scalar, Lo: 0, Hi: 300},
		rules.Field{Name: "Congestion", Kind: rules.Scalar, Lo: 0, Hi: 100},
		rules.Field{Name: "I", Kind: rules.Vector, Len: 5, Lo: 0, Hi: 60},
	)
}

const testRules = `
const BW = 60
const T  = 5
rule r1: forall t in 0..T-1: 0 <= I[t] and I[t] <= BW
rule r2: sum(I) == TotalIngress
rule r3: Congestion > 0 -> max(I) >= BW/2
`

func testGrammar(t *testing.T, schema *rules.Schema) []Slot {
	t.Helper()
	slots, err := TelemetryGrammar(schema, []string{"TotalIngress", "Congestion"}, "I")
	if err != nil {
		t.Fatal(err)
	}
	return slots
}

func testEngine(t *testing.T, lm LM, mode Mode) *Engine {
	t.Helper()
	schema := testSchema(t)
	rs, err := rules.ParseRuleSet(testRules, schema)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(Config{
		LM: lm, Tok: vocab.Telemetry(), Schema: schema,
		Rules: rs, Slots: testGrammar(t, schema), Mode: mode,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// --- Tests ------------------------------------------------------------------

func TestTelemetryGrammar(t *testing.T) {
	schema := testSchema(t)
	slots := testGrammar(t, schema)
	if len(slots) != 7 {
		t.Fatalf("got %d slots, want 7", len(slots))
	}
	wantSeps := []byte{',', '|', ',', ',', ',', ',', '\n'}
	for i, s := range slots {
		if s.Sep != wantSeps[i] {
			t.Errorf("slot %d sep %q, want %q", i, string(s.Sep), string(wantSeps[i]))
		}
	}
	if _, err := TelemetryGrammar(schema, []string{"Nope"}, "I"); err == nil {
		t.Error("unknown coarse field accepted")
	}
	if _, err := TelemetryGrammar(schema, []string{"I"}, "I"); err == nil {
		t.Error("vector as coarse field accepted")
	}
	if _, err := TelemetryGrammar(schema, []string{"TotalIngress"}, "Congestion"); err == nil {
		t.Error("scalar as fine field accepted")
	}
}

func TestNewEngineValidation(t *testing.T) {
	schema := testSchema(t)
	tok := vocab.Telemetry()
	slots := testGrammar(t, schema)
	lm := uniformLM{vocab: tok.Size()}
	cases := []Config{
		{Tok: tok, Schema: schema, Slots: slots},                                            // no LM
		{LM: lm, Schema: schema, Slots: slots},                                              // no tokenizer
		{LM: lm, Tok: tok, Schema: schema},                                                  // no grammar
		{LM: uniformLM{vocab: 5}, Tok: tok, Schema: schema, Slots: slots},                   // vocab mismatch
		{LM: lm, Tok: tok, Schema: schema, Slots: []Slot{{Field: "X"}}},                     // unknown field
		{LM: lm, Tok: tok, Schema: schema, Slots: []Slot{{Field: "I", Index: 9, Sep: ','}}}, // bad index
		{LM: lm, Tok: tok, Schema: schema, Slots: []Slot{{Field: "Congestion", Sep: '#'}}},  // bad sep
	}
	for i, cfg := range cases {
		if _, err := NewEngine(cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

// TestLeJITGuaranteesCompliance is the headline property (paper Finding 1):
// even a clueless uniform model, guided by LeJIT, yields 100% compliance.
func TestLeJITGuaranteesCompliance(t *testing.T) {
	e := testEngine(t, uniformLM{vocab: vocab.Telemetry().Size()}, LeJIT)
	rng := rand.New(rand.NewSource(1))
	known := rules.Record{"TotalIngress": {100}, "Congestion": {8}}
	for trial := 0; trial < 25; trial++ {
		res, err := e.Impute(known, rng)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		vs, err := e.Rules().Violations(res.Rec)
		if err != nil {
			t.Fatal(err)
		}
		if len(vs) > 0 {
			t.Fatalf("trial %d: LeJIT output violates %v: %v", trial, vs, res.Rec)
		}
		// Spot-check the semantics, not just the checker.
		var sum, maxI int64
		for _, v := range res.Rec["I"] {
			sum += v
			if v > maxI {
				maxI = v
			}
			if v < 0 || v > 60 {
				t.Fatalf("trial %d: R1 violated: %v", trial, res.Rec["I"])
			}
		}
		if sum != 100 {
			t.Fatalf("trial %d: R2 violated: sum %d", trial, sum)
		}
		if maxI < 30 {
			t.Fatalf("trial %d: R3 violated: max %d", trial, maxI)
		}
	}
}

func TestLeJITUnconditionalGenerate(t *testing.T) {
	e := testEngine(t, uniformLM{vocab: vocab.Telemetry().Size()}, LeJIT)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		res, err := e.Generate(rng)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		vs, err := e.Rules().Violations(res.Rec)
		if err != nil {
			t.Fatal(err)
		}
		if len(vs) > 0 {
			t.Fatalf("trial %d: violations %v in %v", trial, vs, res.Rec)
		}
		if res.Stats.Tokens == 0 || res.Stats.SolverChecks == 0 {
			t.Errorf("trial %d: suspicious stats %+v", trial, res.Stats)
		}
	}
}

// TestLeJITMinimallyInvasive: when the model's preferred output already
// complies, LeJIT must reproduce it verbatim (§3: "without overwriting
// decisions that would not have led to rule violations").
func TestLeJITMinimallyInvasive(t *testing.T) {
	tok := vocab.Telemetry()
	want := "100,8|20,15,25,39,1\n" // complies with R1-R3
	e := testEngine(t, scriptedLM{tok: tok, text: want}, LeJIT)
	rng := rand.New(rand.NewSource(3))
	res, err := e.Impute(rules.Record{"TotalIngress": {100}, "Congestion": {8}}, rng)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Rec["I"]
	wantI := []int64{20, 15, 25, 39, 1}
	for i := range wantI {
		if got[i] != wantI[i] {
			t.Fatalf("LeJIT altered a compliant output: got %v, want %v", got, wantI)
		}
	}
	// On a fully compliant path LeJIT may still prune tokens that would
	// have led to dead ends, but it must not force the model's hand except
	// where the rules leave a single option (here: the last value).
	if res.Stats.ForcedSteps > 2 {
		t.Errorf("too many rule-forced steps on a compliant path: %+v", res.Stats)
	}
}

// TestLeJITRedirectsInvalidIntent reproduces the paper's Fig 1 example: the
// model wants I=[20,15,25,70,8] (I3=70 breaches BW and the sum), and LeJIT
// must nudge it onto a compliant path instead.
func TestLeJITRedirectsInvalidIntent(t *testing.T) {
	tok := vocab.Telemetry()
	want := "100,8|20,15,25,70,8\n"
	e := testEngine(t, scriptedLM{tok: tok, text: want}, LeJIT)
	rng := rand.New(rand.NewSource(4))
	res, err := e.Impute(rules.Record{"TotalIngress": {100}, "Congestion": {8}}, rng)
	if err != nil {
		t.Fatal(err)
	}
	vs, err := e.Rules().Violations(res.Rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) > 0 {
		t.Fatalf("violations %v in %v", vs, res.Rec)
	}
	// The compliant prefix must be preserved.
	I := res.Rec["I"]
	if I[0] != 20 || I[1] != 15 || I[2] != 25 {
		t.Errorf("compliant prefix altered: %v", I)
	}
	// And the decode must have actually masked something.
	if res.Stats.MaskedSteps == 0 {
		t.Error("no masking recorded while redirecting an invalid intent")
	}
}

// TestLeJITForcesLastValue: with R2 active, once I0..I3 are fixed the last
// value is uniquely determined (paper Fig 1b step ⑤) — the uniform model has
// no freedom there.
func TestLeJITForcesLastValue(t *testing.T) {
	e := testEngine(t, uniformLM{vocab: vocab.Telemetry().Size()}, LeJIT)
	rng := rand.New(rand.NewSource(5))
	res, err := e.Impute(rules.Record{"TotalIngress": {100}, "Congestion": {8}}, rng)
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, v := range res.Rec["I"][:4] {
		sum += v
	}
	if res.Rec["I"][4] != 100-sum {
		t.Errorf("last value %d, forced to %d", res.Rec["I"][4], 100-sum)
	}
}

func TestImputeInfeasiblePrompt(t *testing.T) {
	e := testEngine(t, uniformLM{vocab: vocab.Telemetry().Size()}, LeJIT)
	rng := rand.New(rand.NewSource(6))
	// TotalIngress 301 > 5·60: no compliant completion exists. (Schema Hi
	// is 300, so use 300 with an impossible congestion pairing instead:
	// TI=0 forces all I=0, but Congestion>0 needs max(I) ≥ 30.)
	_, err := e.Impute(rules.Record{"TotalIngress": {0}, "Congestion": {50}}, rng)
	if _, ok := err.(ErrInfeasible); !ok {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestImputeRejectsNonPrefixKnown(t *testing.T) {
	e := testEngine(t, uniformLM{vocab: vocab.Telemetry().Size()}, LeJIT)
	rng := rand.New(rand.NewSource(7))
	// Congestion without TotalIngress is not a grammar prefix.
	if _, err := e.Impute(rules.Record{"Congestion": {8}}, rng); err == nil {
		t.Error("non-prefix known set should be rejected")
	}
}

func TestStructureOnlyModeEnforcesDomainsNotRules(t *testing.T) {
	e := testEngine(t, uniformLM{vocab: vocab.Telemetry().Size()}, StructureOnly)
	rng := rand.New(rand.NewSource(8))
	known := rules.Record{"TotalIngress": {100}, "Congestion": {8}}
	violatedSum := false
	for trial := 0; trial < 20; trial++ {
		res, err := e.Impute(known, rng)
		if err != nil {
			t.Fatal(err)
		}
		var sum int64
		for _, v := range res.Rec["I"] {
			if v < 0 || v > 60 {
				t.Fatalf("domain violated even in structure-only mode: %v", res.Rec["I"])
			}
			sum += v
		}
		if sum != 100 {
			violatedSum = true
		}
	}
	if !violatedSum {
		t.Error("structure-only decoding never violated R2 in 20 uniform trials (statistically implausible)")
	}
}

func TestVanillaViolatesOften(t *testing.T) {
	schema := testSchema(t)
	slots := testGrammar(t, schema)
	tok := vocab.Telemetry()
	e := testEngine(t, formatAwareLM{tok: tok, slots: slots}, LeJIT)
	rng := rand.New(rand.NewSource(9))
	known := rules.Record{"TotalIngress": {100}, "Congestion": {8}}
	violations := 0
	const trials = 15
	for trial := 0; trial < trials; trial++ {
		res, err := e.Vanilla(known, rng)
		if err != nil {
			t.Fatalf("trial %d: format-aware model should parse: %v", trial, err)
		}
		vs, err := e.Rules().Violations(res.Rec)
		if err != nil {
			t.Fatal(err)
		}
		if len(vs) > 0 {
			violations++
		}
	}
	// Random values summing to exactly 100 are vanishingly unlikely.
	if violations < trials/2 {
		t.Errorf("free sampling violated rules in only %d/%d trials", violations, trials)
	}
}

func TestVanillaUnparseableModelErrors(t *testing.T) {
	// A uniform model emits structural chars at random; Vanilla must give
	// up after MaxRetries rather than loop or fabricate a record.
	e := testEngine(t, uniformLM{vocab: vocab.Telemetry().Size()}, LeJIT)
	rng := rand.New(rand.NewSource(14))
	failures := 0
	for trial := 0; trial < 5; trial++ {
		if _, err := e.Vanilla(rules.Record{"TotalIngress": {100}, "Congestion": {8}}, rng); err != nil {
			failures++
		}
	}
	if failures == 0 {
		t.Error("uniform token soup parsed in every trial (implausible)")
	}
}

func TestRejectionEventuallyComplies(t *testing.T) {
	// Rules loose enough that a uniform sampler succeeds within the cap.
	schema := rules.MustSchema(
		rules.Field{Name: "A", Kind: rules.Scalar, Lo: 0, Hi: 9},
		rules.Field{Name: "B", Kind: rules.Vector, Len: 2, Lo: 0, Hi: 9},
	)
	rs, err := rules.ParseRuleSet("rule r: sum(B) >= A", schema)
	if err != nil {
		t.Fatal(err)
	}
	slots, err := TelemetryGrammar(schema, []string{"A"}, "B")
	if err != nil {
		t.Fatal(err)
	}
	tok := vocab.Telemetry()
	e, err := NewEngine(Config{
		LM: formatAwareLM{tok: tok, slots: slots}, Tok: tok, Schema: schema,
		Rules: rs, Slots: slots, MaxAttempts: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	res, err := e.Rejection(rules.Record{"A": {5}}, rng)
	if err != nil {
		t.Fatal(err)
	}
	vs, _ := rs.Violations(res.Rec)
	if len(vs) > 0 {
		t.Fatalf("rejection returned non-compliant record: %v", res.Rec)
	}
	if res.Stats.Attempts < 1 {
		t.Error("attempts not tracked")
	}
}

func TestPostHocRepairsToCompliance(t *testing.T) {
	tok := vocab.Telemetry()
	// The scripted model insists on the invalid Fig 1a output.
	want := "100,8|20,15,25,70,8\n"
	e := testEngine(t, scriptedLM{tok: tok, text: want}, LeJIT)
	rng := rand.New(rand.NewSource(11))
	res, err := e.PostHoc(rules.Record{"TotalIngress": {100}, "Congestion": {8}}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Repaired {
		t.Error("Repaired flag not set for an invalid sample")
	}
	vs, err := e.Rules().Violations(res.Rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) > 0 {
		t.Fatalf("post-hoc output still violates %v: %v", vs, res.Rec)
	}
}

func TestPostHocLeavesCompliantAlone(t *testing.T) {
	tok := vocab.Telemetry()
	want := "100,8|20,15,25,39,1\n"
	e := testEngine(t, scriptedLM{tok: tok, text: want}, LeJIT)
	rng := rand.New(rand.NewSource(12))
	res, err := e.PostHoc(rules.Record{"TotalIngress": {100}, "Congestion": {8}}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Repaired {
		t.Error("compliant sample was repaired")
	}
	wantI := []int64{20, 15, 25, 39, 1}
	for i, v := range wantI {
		if res.Rec["I"][i] != v {
			t.Fatalf("output altered: %v", res.Rec["I"])
		}
	}
}

func TestCloneIsIndependent(t *testing.T) {
	e := testEngine(t, uniformLM{vocab: vocab.Telemetry().Size()}, LeJIT)
	c, err := e.Clone()
	if err != nil {
		t.Fatal(err)
	}
	rng1 := rand.New(rand.NewSource(13))
	rng2 := rand.New(rand.NewSource(13))
	known := rules.Record{"TotalIngress": {100}, "Congestion": {8}}
	r1, err := e.Impute(known, rng1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Impute(known, rng2)
	if err != nil {
		t.Fatal(err)
	}
	// Same seed, same config → identical output (determinism).
	for i := range r1.Rec["I"] {
		if r1.Rec["I"][i] != r2.Rec["I"][i] {
			t.Fatalf("clone diverged: %v vs %v", r1.Rec["I"], r2.Rec["I"])
		}
	}
}

func TestParseBySlots(t *testing.T) {
	e := testEngine(t, uniformLM{vocab: vocab.Telemetry().Size()}, LeJIT)
	vals, err := e.parseBySlots("100,8|1,2,3,4,5\n", 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{100, 8, 1, 2, 3, 4, 5}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("vals = %v", vals)
		}
	}
	bad := []string{
		"100,8|1,2,3,4,5",     // missing newline
		"100,8|1,2,3,4\n",     // short
		"100,8|1,2,3,4,5,6\n", // long (trailing)
		"100|8|1,2,3,4,5\n",   // wrong separator
		",8|1,2,3,4,5\n",      // empty value
		"100,8|1,2,3,4,5\nx",  // trailing garbage
	}
	for _, s := range bad {
		if _, err := e.parseBySlots(s, 0); err == nil {
			t.Errorf("parseBySlots(%q) should fail", s)
		}
	}
	// Mid-grammar parse (imputation suffix).
	vals, err = e.parseBySlots("1,2,3,4,5\n", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 5 || vals[4] != 5 {
		t.Fatalf("suffix vals = %v", vals)
	}
}

func TestGuidedDecodeIsSeedDeterministic(t *testing.T) {
	e := testEngine(t, uniformLM{vocab: vocab.Telemetry().Size()}, LeJIT)
	known := rules.Record{"TotalIngress": {120}, "Congestion": {0}}
	a, err := e.Impute(known, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Impute(known, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(fmtVals(a.Rec["I"]), ",") != strings.Join(fmtVals(b.Rec["I"]), ",") {
		t.Errorf("non-deterministic decode: %v vs %v", a.Rec["I"], b.Rec["I"])
	}
}

func fmtVals(vs []int64) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = string(rune('0' + v%10))
	}
	return out
}
