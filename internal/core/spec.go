package core

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/prefixcache"
	"repro/internal/smt"
	"repro/internal/transition"
)

// This file implements speculative constrained decoding (DESIGN.md §13):
// amortizing the solver oracle across a k-token lookahead window. While a
// window is open the lane decodes on the interval fast path and grammar
// masks alone — probes neither side can answer exactly are journaled and
// assumed feasible — then the whole window is validated against the solver
// at once. Validation certifies most deferred probes with a single Check
// (a model of the full assertion stack is a model of every probe-time
// prefix of it); the stragglers are re-checked exactly against their own
// probe-time stack rebuilt from the journal. The first probe proven
// infeasible marks the first position whose mask was optimistic-wrong:
// everything before it is exact and commits, and the lane rolls back to
// re-decide that position with the full oracle.
//
// Output is bit-identical to the exact path. Exact fast-path answers are
// certificates either way, so a committed position's admissible mask —
// every deferred probe at it validated true — equals the exact mask;
// identical masks consume the raw RNG stream identically (specRNG replays
// it across rollbacks); and a rollback restores every piece of lane state,
// so the re-decided position is indistinguishable from the exact path's.

// floatSource is the RNG surface sampleMasked consumes: at most one Float64
// per step, and none when the mask is forced. *rand.Rand satisfies it
// directly; speculative decoding substitutes the replaying specRNG.
type floatSource interface{ Float64() float64 }

// specRNG buffers the raw Float64 stream drawn from the lane's RNG so a
// speculation rollback can replay it. The underlying source cannot be
// rewound; instead every draw is recorded and rollback moves the read
// cursor back. A committed prefix consumes exactly the draws the exact path
// would have (its masks are proven identical), so after a rollback the
// re-decided position's first draw is the same raw value it would have seen
// without speculation.
type specRNG struct {
	src *rand.Rand
	buf []float64
	idx int
}

func (r *specRNG) Float64() float64 {
	if r.idx < len(r.buf) {
		v := r.buf[r.idx]
		r.idx++
		return v
	}
	v := r.src.Float64()
	r.buf = append(r.buf, v)
	r.idx++
	return v
}

// mark returns the replay cursor; rewind moves it back to a mark.
func (r *specRNG) mark() int    { return r.idx }
func (r *specRNG) rewind(m int) { r.idx = m }

// trim drops draws consumed by now-committed positions. Unconsumed draws —
// possible when a rollback's exact re-decide needed fewer draws than the
// speculative attempt — stay buffered for replay.
func (r *specRNG) trim() {
	if r.idx > 0 {
		r.buf = r.buf[:copy(r.buf, r.buf[r.idx:])]
		r.idx = 0
	}
}

// specProbe is one range-feasibility probe the oracle answered
// optimistically during an open window instead of issuing a solver check.
type specProbe struct {
	pos      int // index into laneSpec.cps of the position that asked
	nAsserts int // window asserts on the stack when the probe was asked
	v        smt.Var
	ranges   [][2]int64 // private copy (callers reuse their range buffers)
}

// specCapture is a prefix-cache snapshot staged at a slot boundary inside
// an open window. Inserting it eagerly would publish state other requests
// could warm-start from before the window validates, so captures are staged
// and only inserted once their boundary is proven exact (commit, or the
// committed prefix of a rollback); the rest release their sessions.
type specCapture struct {
	key  []int
	snap *prefixcache.Snapshot
	gen  bool
}

// specCP checkpoints everything a rollback must restore to re-decide one
// position exactly: journal lengths, RNG cursor, LM position and logits,
// per-slot decode state, the oracle's interval state, stats, and the
// engine's patchable witness model.
type specCP struct {
	nAsserts, nProbes, nCaps int
	rngIdx                   int
	lmPos                    int
	logits                   []float32

	slot       int
	inSlot     bool
	state      transition.State
	sepID      int
	sys        *transition.System
	structural *transition.System
	oracle     *slotOracle
	oSnap      slotOracle
	oWvals     []int64

	nVals, nKey, keySlots, genCaps int
	stats                          Stats
	model                          map[smt.Var]int64
	modelValid                     bool
}

// laneSpec is the per-lane speculation state. A window opens at the first
// checkpointed position and closes after curK sampled tokens, on record
// completion, or on any step error; resolveWindow settles it.
//
// curK is the effective window size (currently fixed at k; window size
// affects only cost, never output — each committed position's mask is
// proven exact regardless of where the window around it closed).
type laneSpec struct {
	k        int
	curK     int
	rng      *specRNG
	lmLen    func() int
	lmRewind func(pos int, logits []float32) error

	open     bool
	baseMark int // solver assertion mark where the window's asserts begin
	// exactNext suppresses the next checkpoint: the position right after a
	// rollback is re-decided with the window closed, so its probes hit the
	// real oracle — which is what makes rollback converge.
	exactNext bool
	// cool holds the lane's rollback backoff: after a rollback the next
	// coolLen positions decode on the exact path before a window reopens,
	// and coolLen doubles on every rollback (up to k) until a full window
	// commits clean. Fast-path misses cluster — a record whose values keep
	// refuting optimistic probes would otherwise thrash rollback cascades,
	// re-decoding near-full windows over and over. Cost-only: exact-path
	// positions are bit-identical by construction.
	cool    int
	coolLen int
	// warm counts record-leading positions decoded on the exact path before
	// the first window opens. Fast-path misses concentrate at the head of a
	// record — before any committed values exist for interval propagation to
	// anchor on — so the first window would otherwise speculate a near-full
	// record and roll it all back. Cost-only, like cool.
	warm int

	asserts []smt.Formula
	probes  []specProbe
	cps     []specCP
	caps    []specCapture
}

// deferProbe journals an optimistically-answered probe for validation.
func (sp *laneSpec) deferProbe(v smt.Var, ranges [][2]int64) {
	rs := make([][2]int64, len(ranges))
	copy(rs, ranges)
	sp.probes = append(sp.probes, specProbe{
		pos:      len(sp.cps) - 1,
		nAsserts: len(sp.asserts),
		v:        v,
		ranges:   rs,
	})
}

// installRewind arms speculative decoding on the lane. Drivers whose LM can
// rewind (the paged nn sessions, solo or batched) call it right after
// installing the capture hook. Lanes without a rewind hook — or with a zero
// lookahead, a non-LeJIT mode, or no rules — decode on the exact path,
// which is byte-for-byte the pre-speculation code path.
func (ld *laneDecoder) installRewind(lmLen func() int, lmRewind func(pos int, logits []float32) error) {
	if ld.finished || lmRewind == nil {
		return
	}
	k := lookaheadFor(ld.ctx, ld.e.cfg.Lookahead)
	if k <= 0 || ld.e.cfg.Mode != LeJIT || ld.e.cfg.Rules == nil {
		return
	}
	sp := &laneSpec{k: k, curK: k, warm: specWarmup, rng: &specRNG{src: ld.rng}, lmLen: lmLen, lmRewind: lmRewind}
	ld.spec = sp
	ld.draw = sp.rng
}

// specCheckpoint records the lane's state at the top of a sampled position,
// opening a window if none is open. The logits copy is what a rollback
// restores into the LM's buffer — the driver's logits slice aliases it, so
// the restore is visible in place.
func (ld *laneDecoder) specCheckpoint(logits []float32) {
	e := ld.e
	sp := ld.spec
	if !sp.open {
		sp.open = true
		sp.baseMark = e.solver.AssertionMark()
		sp.asserts = sp.asserts[:0]
		sp.probes = sp.probes[:0]
		sp.cps = sp.cps[:0]
		sp.caps = sp.caps[:0]
	}
	cp := specCP{
		nAsserts:   len(sp.asserts),
		nProbes:    len(sp.probes),
		nCaps:      len(sp.caps),
		rngIdx:     sp.rng.mark(),
		lmPos:      sp.lmLen(),
		logits:     append([]float32(nil), logits...),
		slot:       ld.slot,
		inSlot:     ld.inSlot,
		state:      ld.state,
		sepID:      ld.sepID,
		sys:        ld.sys,
		structural: ld.structural,
		oracle:     ld.oracle,
		nVals:      len(ld.vals),
		nKey:       len(ld.key),
		keySlots:   ld.keySlots,
		genCaps:    ld.genCaps,
		stats:      ld.res.Stats,
	}
	if ld.oracle != nil {
		cp.oSnap = *ld.oracle
		cp.oWvals = append([]int64(nil), ld.oracle.wvals...)
	}
	if e.lastModel != nil {
		cp.model = make(map[smt.Var]int64, len(e.lastModel))
		for k, v := range e.lastModel {
			cp.model[k] = v
		}
		cp.modelValid = e.lastModelEpoch == e.solver.Epoch()
	}
	sp.cps = append(sp.cps, cp)
}

// rangesFormula encodes "v falls in one of ranges": the disjunction a
// deferred probe would have asked range by range.
func rangesFormula(v smt.Var, ranges [][2]int64) smt.Formula {
	fs := make([]smt.Formula, 0, len(ranges))
	for _, r := range ranges {
		if r[0] == r[1] {
			fs = append(fs, smt.Eq(smt.V(v), smt.C(r[0])))
		} else {
			fs = append(fs, smt.And(smt.Ge(smt.V(v), smt.C(r[0])), smt.Le(smt.V(v), smt.C(r[1]))))
		}
	}
	if len(fs) == 1 {
		return fs[0]
	}
	return smt.Or(fs...)
}

// inRanges reports whether x falls in any of ranges.
func inRanges(x int64, ranges [][2]int64) bool {
	for _, r := range ranges {
		if r[0] <= x && x <= r[1] {
			return true
		}
	}
	return false
}

// specStackTo truncates or replays journaled asserts until exactly n window
// asserts sit above the window's base mark, reproducing the stack as it was
// when the n-th assert had just landed.
func (ld *laneDecoder) specStackTo(n int) {
	s := ld.e.solver
	sp := ld.spec
	target := sp.baseMark + n
	if m := s.AssertionMark(); m > target {
		s.TruncateTo(target)
	}
	for m := s.AssertionMark(); m < target; m = s.AssertionMark() {
		s.Assert(sp.asserts[m-sp.baseMark])
	}
}

// resolveWindow closes the lane's open speculation window. cause, when
// non-nil, is a step error raised at the window's in-flight position: on
// commit it is returned for the caller to propagate (the prefix is proven
// exact, so the error is real), on rollback it is dropped — it belonged to
// a speculative future the rollback erased, and the exact re-decide either
// reproduces it deterministically or never reaches it.
//
// Returns rolledBack=true when the lane rewound and the caller should retry
// the current position; the non-nil error case is a failed LM rewind, which
// is unrecoverable for the lane.
func (ld *laneDecoder) resolveWindow(cause error) (rolledBack bool, err error) {
	sp := ld.spec
	completed := len(sp.cps)
	if cause != nil {
		// The last checkpoint belongs to the position that raised cause; it
		// never finished deciding and is not part of the committed prefix.
		completed--
	}

	viol, fullModel, vo, voN := ld.validateProbes()
	if viol >= 0 {
		if rerr := ld.rollbackTo(sp.probes[viol].pos, vo, voN); rerr != nil {
			return false, rerr
		}
		return true, nil
	}
	ld.specStackTo(len(sp.asserts))
	ld.commitWindow(completed, fullModel, vo, voN)
	return false, cause
}

// validateProbes settles the speculation journal: every deferred probe is
// decided exactly, in journal order, and the first probe whose optimistic
// answer was wrong is returned as viol (-1 when the whole journal holds).
//
// Probes are grouped into runs of equal (variable, stack height) — one
// generated slot's probes form one run, since window asserts land only at
// separators. Each run replays the exact path's interval reasoning at the
// probe-time stack: a replica oracle is seeded from the probe position's
// checkpointed snapshot, solver outcomes feed it as witnesses and envelope
// tightenings, and most siblings then resolve locally, exactly as they
// would have on the exact path. Two certificate sources make the replay
// cheaper than the per-token checks it replaces: the window's one
// full-stack settle model — computed lazily, shared by every run, sound at
// every probe-time stack because those are prefixes of the full stack —
// and the snapshots themselves, which carry slot-entry witnesses forward.
//
// Also returned: the settle model (for commitWindow to publish), and the
// last run's replica with its stack height, so commit or rollback can fold
// the knowledge proven here back into the live oracle (mergeOracle).
func (ld *laneDecoder) validateProbes() (viol int, fullModel map[smt.Var]int64, vo *slotOracle, voN int) {
	e := ld.e
	sp := ld.spec
	vfp := e.cfg.ValidateFastPath
	viol, voN = -1, -1

	// The settle model: a model of the full window stack, which certifies at
	// every probe-time stack (each is a prefix of it). When the separator
	// repair (advance) carried the engine's witness model across every
	// window assert, that model already is one — the settle costs nothing.
	// Otherwise it is one lazy Check, skipped entirely by windows whose
	// probes all certify locally.
	settled := false
	if e.lastModel != nil && e.lastModelEpoch == e.solver.Epoch() {
		settled = true
		fullModel = e.lastModel
	}
	settle := func() map[smt.Var]int64 {
		if !settled {
			settled = true
			ld.specStackTo(len(sp.asserts))
			if r := e.solver.Check(); r.Status == smt.Sat {
				fullModel = r.Model
			}
		}
		return fullModel
	}
	seed := func(vo *slotOracle) {
		if m := fullModel; m != nil {
			if x, ok := m[vo.v]; ok {
				vo.addWitness(x)
			}
		}
	}
	// The run's patchable models: full models of the run's probe-time stack
	// that patchModel can evolve to certify feasible values with zero solver
	// work, exactly as the exact path's patchFeasible does against lastModel
	// — this is the fast path that absorbs the canEnd point probes interval
	// reasoning cannot span. Two bases, cheapest first: cpScr from the probe
	// position's checkpointed witness model when one was valid there (free,
	// tried before the settle is ever forced; refreshed by recheck Sat
	// models), and stScr copied from the settle model, which satisfies the
	// whole window stack and hence the run's prefix of it. Each is re-copied
	// per run: patches shift variables the suffix stack re-pins, so an
	// evolved copy is only a model of its own run's stack.
	var cpScr, stScr map[smt.Var]int64
	copyModel := func(src map[smt.Var]int64) map[smt.Var]int64 {
		if src == nil {
			return nil
		}
		dst := make(map[smt.Var]int64, len(src))
		for k, x := range src {
			dst[k] = x
		}
		return dst
	}

	// materialize folds the solver's propagated bounds at the run's
	// probe-time stack into the replica, at most once per run. Bounds can
	// only refute (feasibility always comes from a witness), so they are
	// computed lazily: a run whose probes all certify through witnesses and
	// patches never pays for the base recomputation the replayed stack would
	// force (the dominant non-check cost of validation).
	boundsDone := false
	materialize := func(vo *slotOracle, pr *specProbe) {
		if boundsDone || vo.infeasible {
			return
		}
		boundsDone = true
		ld.specStackTo(pr.nAsserts)
		lo, hi, ok := e.solver.BaseBounds(pr.v)
		if !ok {
			vo.infeasible = true
			return
		}
		if lo > vo.kLo {
			vo.kLo = lo
		}
		if hi < vo.kHi {
			vo.kHi = hi
		}
		vo.convex = !e.solver.VarDisjunctionTainted(pr.v)
	}

	for i := 0; i < len(sp.probes); {
		pr0 := &sp.probes[i]
		vo, voN = ld.replayOracle(pr0), pr0.nAsserts
		seed(vo)
		boundsDone = false
		cpScr, stScr = nil, nil
		if pr0.pos >= 0 && pr0.pos < len(sp.cps) {
			if cp := &sp.cps[pr0.pos]; cp.nAsserts == pr0.nAsserts && cp.modelValid {
				cpScr = copyModel(cp.model)
			}
		}
		for ; i < len(sp.probes); i++ {
			pr := &sp.probes[i]
			if pr.v != pr0.v || pr.nAsserts != pr0.nAsserts {
				break // next run
			}
			d := vo.answerRanges(pr.ranges)
			if d == 0 && !boundsDone {
				// Fold in the propagated bounds first: one BaseBounds at the
				// probe-time stack both refutes out-of-envelope ranges and —
				// when the variable is disjunction-free — certifies ranges
				// inside it, absorbing most of the run with no per-probe
				// solver work at all.
				materialize(vo, pr)
				d = vo.answerRanges(pr.ranges)
			}
			if d == 0 && cpScr != nil {
				// Still undecided: try certifying a value in one of the
				// ranges by patching the checkpointed model at the
				// probe-time stack (BaseBounds inside the patch must see
				// exactly the asserts the certificate claims to satisfy).
				ld.specStackTo(pr.nAsserts)
				if ld.patchRanges(vo, cpScr, pr.ranges) {
					d = 1
				}
			}
			if d == 0 {
				// Compute the settle model (once per window) and retry with
				// its witness folded in, then with a patch against it.
				if settle() != nil {
					seed(vo)
					d = vo.answerRanges(pr.ranges)
					if d == 0 {
						if stScr == nil {
							stScr = copyModel(fullModel)
						}
						ld.specStackTo(pr.nAsserts)
						if ld.patchRanges(vo, stScr, pr.ranges) {
							d = 1
						}
					}
				}
			}
			if vfp {
				// Debug mode: cross-check every replica answer exactly, as
				// the exact path cross-checks every fast-path answer.
				ld.specStackTo(pr.nAsserts)
				rr := e.solver.CheckWith(rangesFormula(pr.v, pr.ranges))
				if rr.Status == smt.Sat {
					vo.addWitness(rr.Model[pr.v])
					if d == -1 {
						ld.res.Stats.FastPathMismatches++
					}
					if d != -1 {
						continue
					}
				} else if rr.Status == smt.Unsat {
					if d == 1 {
						ld.res.Stats.FastPathMismatches++
						continue // trust the certificate, as crossCheck does
					}
					d = -1
				} else if d == 1 {
					continue
				}
				if d <= 0 {
					return i, fullModel, vo, voN
				}
				continue
			}
			if d == 1 {
				continue
			}
			if d == -1 {
				// The replica refuted it outright: the optimistic yes was
				// wrong, with zero checks spent (propagated bounds or a
				// tightened envelope already exclude every range).
				return i, fullModel, vo, voN
			}
			// Exact resolution of the still-undecided ranges against the
			// probe-time stack, one disjunctive check. Sat feeds a witness,
			// Unsat refutes every range in it; either way siblings benefit.
			// An Unknown (budget, cancellation) cannot certify: roll back
			// and let the exact re-decide surface the cause
			// deterministically.
			und := make([][2]int64, 0, len(pr.ranges))
			for _, r := range pr.ranges {
				if vo.answerLocal(r[0], r[1]) == 0 {
					und = append(und, r)
				}
			}
			ld.specStackTo(pr.nAsserts)
			rr := e.solver.CheckWith(rangesFormula(pr.v, und))
			switch rr.Status {
			case smt.Sat:
				vo.addWitness(rr.Model[pr.v])
				// The fresh model satisfies this run's stack and sits inside
				// the probed range: the best patch base for the run's
				// remaining probes, so install it at the free tier.
				cpScr = rr.Model
			case smt.Unsat:
				for _, r := range und {
					vo.noteUnsat(r[0], r[1])
				}
				return i, fullModel, vo, voN
			default:
				return i, fullModel, vo, voN
			}
		}
	}
	return viol, fullModel, vo, voN
}

// replayOracle builds the validation replica for one run: a detached
// slotOracle holding only interval state, never issuing probes itself. It
// starts wide — non-convex, unbounded — and folds in the probe position's
// checkpointed snapshot when it covers the same variable at the same height,
// carrying slot-entry witnesses and envelope tightenings into validation
// for free. The snapshot misses exactly when the probe came from the
// position that created its slot's oracle (the checkpoint precedes
// beginSlot). The solver's propagated bounds at the probe-time stack are
// NOT loaded here: they can only refute, so validateProbes materializes
// them lazily, after the witness and patch tiers have had their shot.
func (ld *laneDecoder) replayOracle(pr *specProbe) *slotOracle {
	vo := &slotOracle{v: pr.v, kLo: math.MinInt64, kHi: math.MaxInt64}
	if pr.pos >= 0 && pr.pos < len(ld.spec.cps) {
		cp := &ld.spec.cps[pr.pos]
		if cp.oracle != nil && cp.oSnap.v == pr.v && cp.nAsserts == pr.nAsserts && !cp.oSnap.infeasible {
			snap := cp.oSnap
			snap.wvals = cp.oWvals
			mergeOracle(vo, &snap)
		}
	}
	return vo
}

// patchRanges tries to certify some value in one of the still-undecided
// ranges feasible by patching m — a model of the current (replayed) stack —
// following patchFeasible's candidate order: the model's own value clamped
// into the range intersected with the known envelope, then the opposite end
// of the clamped range. On success the witness feeds the replica so sibling
// probes of the run resolve locally.
func (ld *laneDecoder) patchRanges(vo *slotOracle, m map[smt.Var]int64, ranges [][2]int64) bool {
	if m == nil {
		return false
	}
	mv, ok := m[vo.v]
	if !ok {
		return false
	}
	for _, r := range ranges {
		if vo.answerLocal(r[0], r[1]) != 0 {
			continue
		}
		lo, hi := r[0], r[1]
		if lo < vo.kLo {
			lo = vo.kLo
		}
		if hi > vo.kHi {
			hi = vo.kHi
		}
		if lo > hi {
			continue
		}
		x := mv
		if x < lo {
			x = lo
		} else if x > hi {
			x = hi
		}
		if ld.e.patchModel(m, vo.v, x) {
			vo.addWitness(x)
			return true
		}
		if lo != hi {
			y := lo
			if x == lo {
				y = hi
			}
			if ld.e.patchModel(m, vo.v, y) {
				vo.addWitness(y)
				return true
			}
		}
	}
	return false
}

// answerRanges resolves a disjunctive probe from interval state alone:
// +1 some range is feasible, -1 every range is infeasible, 0 undecided.
func (o *slotOracle) answerRanges(ranges [][2]int64) int {
	all := true
	for _, r := range ranges {
		switch o.answerLocal(r[0], r[1]) {
		case 1:
			return 1
		case 0:
			all = false
		}
	}
	if all {
		return -1
	}
	return 0
}

// mergeOracle folds src's interval knowledge into dst. Sound only when both
// describe the same variable at the same assertion stack: witnesses are
// feasibility certificates there, and src's envelope holds every feasible
// value by the same noteUnsat argument.
func mergeOracle(dst, src *slotOracle) {
	if src == nil || src.infeasible || dst.infeasible || dst.v != src.v {
		return
	}
	if src.kLo > dst.kLo {
		dst.kLo = src.kLo
	}
	if src.kHi < dst.kHi {
		dst.kHi = src.kHi
	}
	if !src.hasW {
		return
	}
	if src.convex {
		// A convex source keeps no individual witness list; its extremes
		// are genuine witnesses for any destination (a non-convex dst
		// records them individually, assuming nothing in between).
		dst.addWitness(src.wLo)
		dst.addWitness(src.wHi)
		return
	}
	for _, w := range src.wvals {
		dst.addWitness(w)
	}
}

// commitWindow publishes a fully-validated window: staged captures are
// inserted, the validation model (when one was found) seeds the next slot's
// witness, and the accepted speculative tokens are counted. vo, when it
// describes the in-flight slot's variable at the current stack height, is
// the last run's validation replica: folding it into the live oracle hands
// the witnesses and envelope tightenings proven during validation to the
// decode that continues from here.
func (ld *laneDecoder) commitWindow(accepted int, model map[smt.Var]int64, vo *slotOracle, voN int) {
	sp := ld.spec
	ld.insertCaps(sp.caps)
	sp.caps = sp.caps[:0]
	if model != nil {
		ld.e.noteModel(model)
	}
	if vo != nil && ld.oracle != nil && ld.oracle.v == vo.v && voN == len(sp.asserts) {
		mergeOracle(ld.oracle, vo)
	}
	ld.res.Stats.SpecAcceptedTokens += accepted
	if accepted >= sp.curK {
		sp.coolLen = 0
	}
	sp.open = false
	sp.rng.trim()
}

// rollbackTo rewinds the lane to re-decide window position q exactly.
// Everything the speculative positions ≥ q touched is restored from cps[q]:
// solver stack, LM position and logits (in place — the driver's logits
// slice aliases the session buffer, so no driver change is needed), RNG
// cursor, per-slot decode state, oracle intervals, stats, and the engine's
// witness model. The prefix before q is proven exact and commits. vo, when
// it covers the restored position's variable at its stack height, is the
// violated run's validation replica: merging it means the exact re-decide
// starts with everything validation already proved — including the
// refutation that forced this rollback, when the envelope can express it.
func (ld *laneDecoder) rollbackTo(q int, vo *slotOracle, voN int) error {
	e := ld.e
	sp := ld.spec
	cp := &sp.cps[q]

	ld.specStackTo(cp.nAsserts)
	if err := sp.lmRewind(cp.lmPos, cp.logits); err != nil {
		// The LM refused a rewind over tokens it accepted: the lane is
		// unrecoverable. finish() releases the staged captures.
		sp.open = false
		return fmt.Errorf("core: speculation rollback: %w", err)
	}
	sp.rng.rewind(cp.rngIdx)

	ld.slot, ld.inSlot = cp.slot, cp.inSlot
	ld.state, ld.sepID = cp.state, cp.sepID
	ld.sys, ld.structural = cp.sys, cp.structural
	ld.oracle = cp.oracle
	if cp.oracle != nil {
		*cp.oracle = cp.oSnap
		cp.oracle.wvals = cp.oWvals
		if vo != nil && cp.oSnap.v == vo.v && cp.nAsserts == voN {
			mergeOracle(cp.oracle, vo)
		}
	}
	// When the restored position re-decides the start of a slot, its oracle
	// does not exist yet — beginSlot builds it after this rollback. Stash
	// the replica so beginSlot can fold it in, guarded by the assertion mark
	// (the knowledge is only sound at the exact stack it was proven at).
	ld.mergeO, ld.mergeMark = nil, 0
	if vo != nil && cp.nAsserts == voN {
		ld.mergeO, ld.mergeMark = vo, sp.baseMark+cp.nAsserts
	}
	ld.vals = ld.vals[:cp.nVals]
	ld.key = ld.key[:cp.nKey]
	ld.keySlots = cp.keySlots
	ld.genCaps = cp.genCaps

	// Checkpointed stats predate the window's deferred capture inserts, so
	// restore first and account the committed prefix after.
	ld.res.Stats = cp.stats
	ld.res.Stats.SpecAcceptedTokens += q
	ld.res.Stats.SpecRollbacks++

	// The restored model was valid for exactly the stack just rebuilt (the
	// journal replays identical formulas), so revalidate it at the current
	// epoch; epoch 0 never matches a live solver (declarations bump it).
	e.lastModel = cp.model
	if cp.modelValid {
		e.lastModelEpoch = e.solver.Epoch()
	} else {
		e.lastModelEpoch = 0
	}

	ld.insertCaps(sp.caps[:cp.nCaps])
	dropCaps(sp.caps[cp.nCaps:])
	sp.caps = sp.caps[:0]

	sp.open = false
	sp.exactNext = true
	if sp.coolLen == 0 {
		sp.coolLen = 1
	} else if sp.coolLen < sp.k {
		sp.coolLen *= 2
	}
	sp.cool = sp.coolLen
	sp.rng.trim()
	return nil
}

// insertCaps inserts staged captures whose boundaries are proven exact.
// Insert takes ownership of each snapshot's session either way.
func (ld *laneDecoder) insertCaps(caps []specCapture) {
	cache := ld.e.cfg.PrefixCache
	for i := range caps {
		if cache == nil {
			caps[i].snap.Sess.Release()
			continue
		}
		if cache.Insert(caps[i].key, caps[i].snap) {
			ld.res.Stats.PrefixCaptures++
		}
	}
}

// dropCaps releases staged captures from an erased speculative future.
func dropCaps(caps []specCapture) {
	for i := range caps {
		caps[i].snap.Sess.Release()
	}
}

// specWarmup is the number of record-leading positions each lane decodes
// exactly before speculating (see laneSpec.warm). A variable rather than a
// constant so rollback-focused tests can force fully eager speculation.
var specWarmup = 4
