package core

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/rules"
	"repro/internal/vocab"
)

func TestDiagnoseInfeasibleFindsCulprits(t *testing.T) {
	e := testEngine(t, uniformLM{vocab: vocab.Telemetry().Size()}, LeJIT)
	// TotalIngress=0 forces all I to 0 (r2), but Congestion=50 requires a
	// burst (r3): the minimal core is {r2, r3} — r1 is innocent.
	core, err := e.DiagnoseInfeasible(rules.Record{"TotalIngress": {0}, "Congestion": {50}})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(core)
	if len(core) != 2 || core[0] != "r2" || core[1] != "r3" {
		t.Errorf("core = %v, want [r2 r3]", core)
	}
}

func TestDiagnoseFeasiblePromptErrors(t *testing.T) {
	e := testEngine(t, uniformLM{vocab: vocab.Telemetry().Size()}, LeJIT)
	if _, err := e.DiagnoseInfeasible(rules.Record{"TotalIngress": {100}, "Congestion": {8}}); err == nil {
		t.Error("feasible prompt should not diagnose")
	}
}

func TestDiagnoseCoreIsActuallyUnsat(t *testing.T) {
	e := testEngine(t, uniformLM{vocab: vocab.Telemetry().Size()}, LeJIT)
	known := rules.Record{"TotalIngress": {0}, "Congestion": {50}}
	coreNames, err := e.DiagnoseInfeasible(known)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild an engine enforcing ONLY the core rules: the prompt must
	// still be infeasible (core soundness)...
	keep := map[string]bool{}
	for _, n := range coreNames {
		keep[n] = true
	}
	sub := e.Rules().Filter(func(r rules.Rule) bool { return keep[r.Name] })
	cfg := e.cfg
	cfg.Rules = sub
	eSub, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if _, err := eSub.Impute(known, rng); err == nil {
		t.Error("core rules alone should still be infeasible")
	}
	// ...and dropping any single core rule must make it feasible
	// (minimality).
	for _, drop := range coreNames {
		sub2 := e.Rules().Filter(func(r rules.Rule) bool { return keep[r.Name] && r.Name != drop })
		cfg := e.cfg
		cfg.Rules = sub2
		e2, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e2.Impute(known, rng); err != nil {
			t.Errorf("dropping %s should make the prompt feasible: %v", drop, err)
		}
	}
}

func TestBatchImputeMatchesSequential(t *testing.T) {
	schema := testSchema(t)
	rs, err := rules.ParseRuleSet(testRules, schema)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		LM: uniformLM{vocab: vocab.Telemetry().Size()}, Tok: vocab.Telemetry(),
		Schema: schema, Rules: rs, Slots: testGrammar(t, schema),
	}
	prompts := []rules.Record{
		{"TotalIngress": {100}, "Congestion": {8}},
		{"TotalIngress": {50}, "Congestion": {0}},
		{"TotalIngress": {200}, "Congestion": {30}},
		{"TotalIngress": {0}, "Congestion": {0}},
		{"TotalIngress": {120}, "Congestion": {2}},
		{"TotalIngress": {0}, "Congestion": {99}}, // infeasible
	}
	par, err := BatchImpute(cfg, prompts, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := BatchImpute(cfg, prompts, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(prompts) || len(seq) != len(prompts) {
		t.Fatal("wrong result counts")
	}
	for i := range prompts {
		if (par[i].Err == nil) != (seq[i].Err == nil) {
			t.Fatalf("prompt %d: error mismatch %v vs %v", i, par[i].Err, seq[i].Err)
		}
		if par[i].Err != nil {
			continue
		}
		for j := range par[i].Res.Rec["I"] {
			if par[i].Res.Rec["I"][j] != seq[i].Res.Rec["I"][j] {
				t.Fatalf("prompt %d: parallel %v vs sequential %v (worker count must not change results)",
					i, par[i].Res.Rec["I"], seq[i].Res.Rec["I"])
			}
		}
		// Compliance holds for every successful batch result.
		vs, err := rs.Violations(par[i].Res.Rec)
		if err != nil {
			t.Fatal(err)
		}
		if len(vs) > 0 {
			t.Fatalf("prompt %d: violations %v", i, vs)
		}
	}
	// The last prompt is infeasible and must report it.
	if _, ok := par[5].Err.(ErrInfeasible); !ok {
		t.Errorf("prompt 5: err %v, want ErrInfeasible", par[5].Err)
	}
}

func TestBatchImputeEmpty(t *testing.T) {
	schema := testSchema(t)
	cfg := Config{
		LM: uniformLM{vocab: vocab.Telemetry().Size()}, Tok: vocab.Telemetry(),
		Schema: schema, Slots: testGrammar(t, schema),
	}
	out, err := BatchImpute(cfg, nil, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("got %d results for no prompts", len(out))
	}
}
