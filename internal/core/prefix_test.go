package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/prefixcache"
	"repro/internal/rules"
	"repro/internal/vocab"
)

// Prefix-cache integration tests: the golden property is that a warm decode
// (prefix restored from the cache) is bit-identical to a cold decode of the
// same (prompt, seed) — on both the solo per-record path and the lock-step
// GEMM path — and that stale snapshots are never served.

// nnPrefixEngine is nnTestEngine with a prefix cache attached and optional
// rule-text override (for cross-epoch tests).
func nnPrefixEngine(tb testing.TB, cache *prefixcache.Cache, ruleSrc string) *Engine {
	tb.Helper()
	schema := rules.MustSchema(
		rules.Field{Name: "TotalIngress", Kind: rules.Scalar, Lo: 0, Hi: 300},
		rules.Field{Name: "Congestion", Kind: rules.Scalar, Lo: 0, Hi: 100},
		rules.Field{Name: "I", Kind: rules.Vector, Len: 5, Lo: 0, Hi: 60},
	)
	if ruleSrc == "" {
		ruleSrc = testRules
	}
	rs, err := rules.ParseRuleSet(ruleSrc, schema)
	if err != nil {
		tb.Fatal(err)
	}
	slots, err := TelemetryGrammar(schema, []string{"TotalIngress", "Congestion"}, "I")
	if err != nil {
		tb.Fatal(err)
	}
	e, err := NewEngine(Config{
		LM: WrapNN(nnTestModel(tb)), Tok: vocab.Telemetry(), Schema: schema,
		Rules: rs, Slots: slots, Mode: LeJIT, PrefixCache: cache,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return e
}

// TestPrefixWarmMatchesColdSolo: decode the same prompt twice on the solo
// path. The first pass populates the cache; the second starts warm and must
// produce the identical record with identical sampled-token count, matching
// a decode on a cache-free engine bit for bit.
func TestPrefixWarmMatchesColdSolo(t *testing.T) {
	prompt := rules.Record{"TotalIngress": {120}, "Congestion": {10}}
	const seed = 99

	cold := nnTestEngine(t) // no cache
	want, err := cold.Impute(prompt, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}

	e := nnPrefixEngine(t, prefixcache.New(16<<20), "")
	first, err := e.Impute(prompt, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.PrefixHitTokens != 0 {
		t.Fatalf("first pass hit %d tokens on an empty cache", first.Stats.PrefixHitTokens)
	}
	if first.Stats.PrefixCaptures == 0 {
		t.Fatal("first pass captured no snapshots")
	}
	if !reflect.DeepEqual(first.Rec, want.Rec) {
		t.Fatalf("caching engine (cold) decoded %v, cache-free %v", first.Rec, want.Rec)
	}

	warm, err := e.Impute(prompt, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.PrefixHitTokens == 0 {
		t.Fatal("second pass of an identical prompt did not hit the cache")
	}
	if !reflect.DeepEqual(warm.Rec, want.Rec) {
		t.Fatalf("warm decode %v != cold %v", warm.Rec, want.Rec)
	}
	if warm.Stats.Tokens != want.Stats.Tokens {
		t.Fatalf("warm sampled %d tokens, cold %d", warm.Stats.Tokens, want.Stats.Tokens)
	}
	// A full-prompt hit carries the witness model, so the prompt feasibility
	// Check is skipped: the warm pass must issue strictly fewer solver checks.
	if warm.Stats.SolverChecks >= first.Stats.SolverChecks {
		t.Errorf("warm pass used %d solver checks, cold %d — expected fewer",
			warm.Stats.SolverChecks, first.Stats.SolverChecks)
	}
}

// TestPrefixWarmMatchesColdLockStep: a prefix-clustered batch decoded twice
// through the lock-step scheduler. Second-pass outputs must be bit-identical
// to the first pass and to the per-record path, with cache hits recorded.
func TestPrefixWarmMatchesColdLockStep(t *testing.T) {
	e := nnPrefixEngine(t, prefixcache.New(16<<20), "")
	reqs := make([]BatchRequest, 4)
	for i := range reqs {
		// Two prompt clusters: indices {0,2} and {1,3} share a prompt but
		// carry distinct index-derived seeds.
		reqs[i].Prompt = rules.Record{"TotalIngress": {100 + 30*int64(i%2)}, "Congestion": {5}}
	}
	const seed = 21
	first, err := e.DecodeRequests(context.Background(), reqs, 1, seed, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkMatchesSolo(t, nnTestEngine(t), reqs, first, seed)

	second, err := e.DecodeRequests(context.Background(), reqs, 1, seed, nil)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i := range reqs {
		if second[i].Err != nil {
			t.Fatalf("record %d: %v", i, second[i].Err)
		}
		if !reflect.DeepEqual(second[i].Res.Rec, first[i].Res.Rec) {
			t.Errorf("record %d: warm %v != cold %v", i, second[i].Res.Rec, first[i].Res.Rec)
		}
		if second[i].Res.Stats.Tokens != first[i].Res.Stats.Tokens {
			t.Errorf("record %d: warm sampled %d tokens, cold %d",
				i, second[i].Res.Stats.Tokens, first[i].Res.Stats.Tokens)
		}
		if second[i].Res.Stats.PrefixHitTokens > 0 {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("no lock-step lane hit the cache on the second pass")
	}
}

// TestPrefixStaleEpochInvalidation: two engines with different rule sets
// share one cache. Snapshots captured under one rule epoch must never warm
// the other — the mismatched engine decodes fully cold and still correctly.
func TestPrefixStaleEpochInvalidation(t *testing.T) {
	cache := prefixcache.New(16 << 20)
	prompt := rules.Record{"TotalIngress": {120}, "Congestion": {10}}
	const seed = 5

	a := nnPrefixEngine(t, cache, "")
	if _, err := a.Impute(prompt, rand.New(rand.NewSource(seed))); err != nil {
		t.Fatal(err)
	}
	if cache.Stats().Inserts == 0 {
		t.Fatal("engine A captured nothing")
	}

	// Same schema and grammar, different rule set → different fingerprint.
	b := nnPrefixEngine(t, cache, `
const T = 5
rule q1: forall t in 0..T-1: 0 <= I[t] and I[t] <= 60
rule q2: sum(I) == TotalIngress
`)
	res, err := b.Impute(prompt, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PrefixHitTokens != 0 {
		t.Fatalf("engine B warm-started %d tokens from another epoch's snapshot", res.Stats.PrefixHitTokens)
	}
	if res.Stats.PrefixCaptures == 0 {
		t.Fatal("engine B captured nothing under its own epoch")
	}

	// B's captures replaced the shared keys under B's epoch, so A must now
	// decode cold too — never warm from B's snapshots.
	resA, err := a.Impute(prompt, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	if resA.Stats.PrefixHitTokens != 0 {
		t.Fatalf("engine A warm-started %d tokens from B's snapshot", resA.Stats.PrefixHitTokens)
	}
}

// TestPrefixNoCacheOptOut: a request with NoPrefixCache neither reads nor
// writes the cache, and its output is unchanged.
func TestPrefixNoCacheOptOut(t *testing.T) {
	e := nnPrefixEngine(t, prefixcache.New(16<<20), "")
	prompt := rules.Record{"TotalIngress": {120}, "Congestion": {10}}
	const seed = 17

	// Warm the cache via the lock-step path.
	warmup := []BatchRequest{{Prompt: prompt}, {Prompt: prompt}}
	if _, err := e.DecodeRequests(context.Background(), warmup, 1, seed, nil); err != nil {
		t.Fatal(err)
	}
	before := e.PrefixCache().Stats()

	reqs := []BatchRequest{
		{Prompt: prompt, NoPrefixCache: true},
		{Prompt: prompt},
	}
	out, err := e.DecodeRequests(context.Background(), reqs, 1, seed, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Err != nil || out[1].Err != nil {
		t.Fatalf("errs: %v / %v", out[0].Err, out[1].Err)
	}
	if out[0].Res.Stats.PrefixHitTokens != 0 || out[0].Res.Stats.PrefixCaptures != 0 {
		t.Errorf("opted-out request touched the cache: hit %d tokens, %d captures",
			out[0].Res.Stats.PrefixHitTokens, out[0].Res.Stats.PrefixCaptures)
	}
	if out[1].Res.Stats.PrefixHitTokens == 0 {
		t.Error("non-opted-out batch-mate missed the warm cache")
	}
	// The opted-out record and its warm batch-mate decode the same prompt
	// with index-derived seeds; both must match their solo equivalents.
	checkMatchesSolo(t, nnTestEngine(t), reqs, out, seed)
	after := e.PrefixCache().Stats()
	if after.Misses != before.Misses {
		t.Errorf("opted-out request recorded a lookup: misses %d -> %d", before.Misses, after.Misses)
	}
}

// TestSetPrefixCacheClonePool: a cache attached after clones exist reaches
// pooled clones, so lock-step lanes capture and hit through it.
func TestSetPrefixCacheClonePool(t *testing.T) {
	e := nnTestEngine(t)
	prompt := rules.Record{"TotalIngress": {120}, "Congestion": {10}}
	// Populate the clone pool with cache-less clones.
	reqs := []BatchRequest{{Prompt: prompt}, {Prompt: prompt}}
	if _, err := e.DecodeRequests(context.Background(), reqs, 1, 3, nil); err != nil {
		t.Fatal(err)
	}
	cache := prefixcache.New(16 << 20)
	e.SetPrefixCache(cache)
	if _, err := e.DecodeRequests(context.Background(), reqs, 1, 3, nil); err != nil {
		t.Fatal(err)
	}
	if cache.Stats().Inserts == 0 {
		t.Fatal("pooled clones did not pick up the cache")
	}
	out, err := e.DecodeRequests(context.Background(), reqs, 1, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Res.Stats.PrefixHitTokens == 0 && out[1].Res.Stats.PrefixHitTokens == 0 {
		t.Fatal("no hit after cache warmup through SetPrefixCache")
	}
	checkMatchesSolo(t, nnTestEngine(t), reqs, out, 3)
}
