package nn

import "sync/atomic"

// PageTokens is the number of token positions held by one KV page. Records
// in the telemetry grammar run a few dozen tokens (Ctx is 48 at the default
// scale), so 16 keeps a session at 1–3 pages while still letting a shared
// prompt prefix be reused at page granularity.
const PageTokens = 16

// kvPage is one refcounted block of KV cache: PageTokens positions for every
// layer, head-major within the page (head hd's entry for local position u is
// k[l][(hd*PageTokens+u)*dh : +dh]). Pages are shared between sessions by
// Clone and by the cross-request prefix cache; a page with refs > 1 is
// immutable — a session that needs to write into a shared partial page first
// replaces it with a private copy (copy-on-write in Session.Append).
//
// The refcount only drives the COW decision and the cache's byte accounting;
// memory itself is garbage-collected. A session dropped without Release
// therefore leaks a reference, which can only cause a spurious copy later,
// never corruption.
type kvPage struct {
	refs atomic.Int32
	k, v [][]float32 // per-layer slabs, [Layers][PageTokens*Dim]
}

// newKVPage allocates an empty page for m's geometry with refs = 1. All
// per-layer slabs are carved from one backing slice.
func newKVPage(m *Model) *kvPage {
	layers := m.Cfg.Layers
	slab := PageTokens * m.Cfg.Dim
	p := &kvPage{k: make([][]float32, layers), v: make([][]float32, layers)}
	backing := make([]float32, 2*layers*slab)
	for l := 0; l < layers; l++ {
		p.k[l] = backing[(2*l)*slab : (2*l+1)*slab]
		p.v[l] = backing[(2*l+1)*slab : (2*l+2)*slab]
	}
	p.refs.Store(1)
	return p
}

// copyPrefix returns a private copy of the page's first `used` positions
// (per head, per layer). The remainder of the fresh page is zero and never
// read before Append overwrites it.
func (p *kvPage) copyPrefix(m *Model, used int) *kvPage {
	c := newKVPage(m)
	if used == 0 {
		return c
	}
	dh := m.Cfg.Dim / m.Cfg.Heads
	n := used * dh
	for l := range p.k {
		for hd := 0; hd < m.Cfg.Heads; hd++ {
			base := hd * PageTokens * dh
			copy(c.k[l][base:base+n], p.k[l][base:base+n])
			copy(c.v[l][base:base+n], p.v[l][base:base+n])
		}
	}
	return c
}

func (p *kvPage) retain()  { p.refs.Add(1) }
func (p *kvPage) release() { p.refs.Add(-1) }

// pageBytes is the heap footprint of one page's float data for m's geometry.
func pageBytes(m *Model) int64 {
	return int64(2*m.Cfg.Layers*PageTokens*m.Cfg.Dim) * 4
}
