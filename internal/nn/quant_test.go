package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// The int8 store's contract is quant.go's invariant: a row is served as
// int8 only if dequantization reproduces its float32 weights bit-for-bit,
// so enabling the store never changes a logit. These tests pin both modes
// (exact: weights untouched, near-zero coverage on random weights; snap:
// weights moved onto the grid once, total coverage) and the combination
// with the sharded kernels.

func TestQuantizeRow(t *testing.T) {
	q := make([]int8, 4)
	var s, z float32

	// A constant row is exactly representable (every qi = 0).
	ok, moved := quantizeRow([]float32{2.5, 2.5, 2.5, 2.5}, q, &s, &z, false)
	if !ok || moved {
		t.Fatalf("constant row: ok=%v moved=%v, want true,false", ok, moved)
	}
	tq := &quantTensor{out: 4, q: q, scale: []float32{s}, zero: []float32{z}, ok: []bool{true}}
	dq := make([]float32, 4)
	tq.dequantRow(0, 0, 4, dq)
	for j, v := range dq {
		if math.Float32bits(v) != math.Float32bits(2.5) {
			t.Fatalf("constant row dequant[%d] = %v", j, v)
		}
	}

	// NaN/Inf rows are never servable, in either mode.
	for _, bad := range [][]float32{
		{1, float32(math.NaN()), 2, 3},
		{1, float32(math.Inf(1)), 2, 3},
	} {
		if ok, _ := quantizeRow(bad, q, &s, &z, true); ok {
			t.Fatalf("row %v quantized ok", bad)
		}
	}

	// Random weights in exact mode: not servable, and untouched.
	rng := rand.New(rand.NewSource(1))
	w := make([]float32, 64)
	for i := range w {
		w[i] = float32(rng.NormFloat64())
	}
	orig := append([]float32(nil), w...)
	q = make([]int8, len(w))
	if ok, _ := quantizeRow(w, q, &s, &z, false); ok {
		t.Fatal("random float32 row round-tripped through int8 (vanishingly unlikely)")
	}
	for i := range w {
		if math.Float32bits(w[i]) != math.Float32bits(orig[i]) {
			t.Fatalf("exact mode moved w[%d]: %v -> %v", i, orig[i], w[i])
		}
	}

	// The same row in snap mode: servable, moved, and dequant == w bitwise.
	ok, moved = quantizeRow(w, q, &s, &z, true)
	if !ok || !moved {
		t.Fatalf("snap: ok=%v moved=%v, want true,true", ok, moved)
	}
	tq = &quantTensor{out: len(w), q: q, scale: []float32{s}, zero: []float32{z}, ok: []bool{true}}
	dq = make([]float32, len(w))
	tq.dequantRow(0, 0, len(w), dq)
	for j := range w {
		if math.Float32bits(dq[j]) != math.Float32bits(w[j]) {
			t.Fatalf("snap dequant[%d] = %v, want %v", j, dq[j], w[j])
		}
	}
}

// TestQuantExactLeavesModelUnchanged: exact mode must be a pure no-op on
// output — weights untouched, decode bit-identical with the store enabled.
func TestQuantExactLeavesModelUnchanged(t *testing.T) {
	cfg := Config{Vocab: 13, Ctx: 12, Dim: 24, Heads: 4, Layers: 2}
	m := goldenModel(t, cfg, 800)
	rng := rand.New(rand.NewSource(53))
	seq := randSeq(rng, 8, cfg.Vocab)

	decode := func() []float32 {
		s := m.NewSession()
		for _, tok := range seq {
			if err := s.Append(tok); err != nil {
				t.Fatal(err)
			}
		}
		return append([]float32(nil), s.Logits()...)
	}
	base := decode()
	w0 := append([]float32(nil), m.layers[0].wq.W...)

	st, err := m.Quantize(QuantExact)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode != QuantExact || st.Snapped != 0 {
		t.Fatalf("exact stats: %+v", st)
	}
	for i := range w0 {
		if math.Float32bits(m.layers[0].wq.W[i]) != math.Float32bits(w0[i]) {
			t.Fatalf("exact Quantize moved wq[%d]", i)
		}
	}
	if !m.QuantEnabled() {
		t.Fatal("Quantize did not enable the store")
	}
	compareLogitsBits(t, decode(), base, "exact-quantized decode")
}

// TestQuantSnapInt8MatchesFloat32 is the tentpole equivalence: after snap,
// the int8 kernels and the float32 kernels decode identical logits over the
// same (snapped) weights — serial and sharded, batch and solo.
func TestQuantSnapInt8MatchesFloat32(t *testing.T) {
	forceParallel(t)
	cfg := Config{Vocab: 13, Ctx: 16, Dim: 24, Heads: 4, Layers: 2}
	m := goldenModel(t, cfg, 810)
	st, err := m.Quantize(QuantSnap)
	if err != nil {
		t.Fatal(err)
	}
	if st.Coverage != 1 {
		t.Fatalf("snap coverage %v, want 1 (stats %+v)", st.Coverage, st)
	}
	if st.Snapped == 0 {
		t.Fatal("snap moved no rows on random weights")
	}

	rng := rand.New(rand.NewSource(59))
	seqs := laneSchedule(rng, 3, 2, cfg.Ctx, cfg.Vocab)
	steps := buildSchedule(rng, seqs)

	m.EnableQuant(false)
	base := replaySchedule(t, m, len(seqs), steps)
	for _, w := range []int{1, 3, 8} {
		setWorkers(t, m, w)
		m.EnableQuant(true)
		got := replaySchedule(t, m, len(seqs), steps)
		m.EnableQuant(false)
		f32 := replaySchedule(t, m, len(seqs), steps)
		for i := range base {
			compareLogitsBits(t, got[i], base[i], "int8 kernels")
			compareLogitsBits(t, f32[i], base[i], "float32 kernels on snapped weights")
		}
	}
}

// TestQuantMixedFallback forces a mixed tensor — some rows servable, some
// not — by hand-editing weights before an exact-mode build, covering the
// per-row fallback inside one 4-row kernel block.
func TestQuantMixedFallback(t *testing.T) {
	forceParallel(t)
	cfg := Config{Vocab: 13, Ctx: 12, Dim: 24, Heads: 4, Layers: 2}
	m := goldenModel(t, cfg, 820)
	// Make alternating rows of every GEMM tensor exactly representable
	// (constant rows), leaving their neighbours as random float32.
	d := cfg.Dim
	f := cfg.ff() * d
	constRows := func(w []float32, in, out int) {
		for p := 0; p < in; p += 2 {
			for j := 0; j < out; j++ {
				w[p*out+j] = float32(p%7) * 0.25
			}
		}
	}
	for l := range m.layers {
		ly := &m.layers[l]
		constRows(ly.wq.W, d, d)
		constRows(ly.wk.W, d, d)
		constRows(ly.wv.W, d, d)
		constRows(ly.wo.W, d, d)
		constRows(ly.w1.W, d, f)
		constRows(ly.w2.W, f, d)
	}
	constRows(m.tok.W, cfg.Vocab, d)

	rng := rand.New(rand.NewSource(61))
	seq := randSeq(rng, 8, cfg.Vocab)
	decode := func() []float32 {
		s := m.NewSession()
		for _, tok := range seq {
			if err := s.Append(tok); err != nil {
				t.Fatal(err)
			}
		}
		return append([]float32(nil), s.Logits()...)
	}
	base := decode()

	st, err := m.Quantize(QuantExact)
	if err != nil {
		t.Fatal(err)
	}
	if st.Coverage == 0 || st.Coverage == 1 {
		t.Fatalf("wanted a mixed store, got coverage %v", st.Coverage)
	}
	for _, w := range []int{1, 3} {
		setWorkers(t, m, w)
		compareLogitsBits(t, decode(), base, "mixed int8/float32 decode")
	}
}

// TestQuantIdempotent: a second Quantize — even naming the other mode —
// returns the existing store untouched, so engine clones re-applying config
// cannot re-snap weights mid-serve.
func TestQuantIdempotent(t *testing.T) {
	m := goldenModel(t, Config{Vocab: 8, Ctx: 4, Dim: 8, Heads: 2, Layers: 1}, 830)
	st1, err := m.Quantize(QuantSnap)
	if err != nil {
		t.Fatal(err)
	}
	store := m.quant.Load()
	st2, err := m.Quantize(QuantExact)
	if err != nil {
		t.Fatal(err)
	}
	if st2 != st1 {
		t.Fatalf("second Quantize returned %+v, want %+v", st2, st1)
	}
	if m.quant.Load() != store {
		t.Fatal("second Quantize rebuilt the store")
	}
	if _, err := m.Quantize("bogus"); err == nil {
		t.Fatal("Quantize accepted a bogus mode")
	}
}

func TestEnableQuantWithoutStore(t *testing.T) {
	m := goldenModel(t, Config{Vocab: 8, Ctx: 4, Dim: 8, Heads: 2, Layers: 1}, 840)
	if m.EnableQuant(true) {
		t.Fatal("EnableQuant reported a store on a fresh model")
	}
	if m.QuantEnabled() {
		t.Fatal("QuantEnabled true without a store")
	}
	if m.QuantCoverage() != 0 {
		t.Fatal("QuantCoverage nonzero without a store")
	}
}

// TestQuantWeightBytes: the int8 store must actually cut the per-token
// weight traffic accounting, and the accounting must degrade to the
// float32 number without a store.
func TestQuantWeightBytes(t *testing.T) {
	m := goldenModel(t, Config{Vocab: 16, Ctx: 8, Dim: 32, Heads: 4, Layers: 2}, 850)
	if got, want := m.AppendWeightBytesInt8(), m.AppendWeightBytes(); got != want {
		t.Fatalf("no store: int8 bytes %d, float32 bytes %d", got, want)
	}
	if _, err := m.Quantize(QuantSnap); err != nil {
		t.Fatal(err)
	}
	f32, i8 := m.AppendWeightBytes(), m.AppendWeightBytesInt8()
	if i8 >= f32 {
		t.Fatalf("int8 bytes %d not below float32 bytes %d", i8, f32)
	}
	// 1 byte/weight + 8 bytes/row metadata vs 4 bytes/weight: comfortably
	// under a third at these shapes.
	if 3*i8 >= f32+3*8*int64(m.Cfg.Vocab+10*m.Cfg.Dim) {
		t.Fatalf("int8 bytes %d implausibly high vs float32 %d", i8, f32)
	}
}

// TestQuantNotSerialized: Save/Load round-trips the snapped weights but not
// the store — a loaded model decodes float32 until Quantize is called, and
// produces the same logits either way.
func TestQuantNotSerialized(t *testing.T) {
	cfg := Config{Vocab: 13, Ctx: 12, Dim: 24, Heads: 4, Layers: 2}
	m := goldenModel(t, cfg, 860)
	if _, err := m.Quantize(QuantSnap); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, hasStore := m2.QuantInfo(); hasStore {
		t.Fatal("loaded model has an int8 store")
	}
	rng := rand.New(rand.NewSource(67))
	seq := randSeq(rng, 8, cfg.Vocab)
	decode := func(m *Model) []float32 {
		s := m.NewSession()
		for _, tok := range seq {
			if err := s.Append(tok); err != nil {
				t.Fatal(err)
			}
		}
		return append([]float32(nil), s.Logits()...)
	}
	compareLogitsBits(t, decode(m2), decode(m), "loaded snapped model")
}
