package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// This file pins the rewritten per-token kernels (fused q/k/v projection,
// 4-wide unrolled vecLinear/Dot, head-major KV cache, partial Clone) to the
// seed implementation: refAppend below is the seed's Session.Append copied
// verbatim (over [Ctx, D] row-major caches and the zero-skipping vecLinear),
// and the golden tests require bit-identical logits, not just close ones.
// The unrolls keep one accumulator per output and add terms in ascending
// input order, so identical floats are the contract, not an accident.

// refSession is the seed Session: per-layer [Ctx, D] caches, token-major.
type refSession struct {
	m      *Model
	pos    int
	ks, vs []*tensor.Mat
	logits []float32

	x, ln, q, attn, proj, mlp []float32
	hbuf, hg                  []float32
	p                         []float32
}

func newRefSession(m *Model) *refSession {
	s := &refSession{m: m, logits: make([]float32, m.Cfg.Vocab)}
	s.ks = make([]*tensor.Mat, m.Cfg.Layers)
	s.vs = make([]*tensor.Mat, m.Cfg.Layers)
	for l := range s.ks {
		s.ks[l] = tensor.NewMat(m.Cfg.Ctx, m.Cfg.Dim)
		s.vs[l] = tensor.NewMat(m.Cfg.Ctx, m.Cfg.Dim)
	}
	d := m.Cfg.Dim
	f := m.Cfg.ff() * d
	s.x = make([]float32, d)
	s.ln = make([]float32, d)
	s.q = make([]float32, d)
	s.attn = make([]float32, d)
	s.proj = make([]float32, d)
	s.mlp = make([]float32, d)
	s.hbuf = make([]float32, f)
	s.hg = make([]float32, f)
	s.p = make([]float32, m.Cfg.Ctx)
	return s
}

// refVecLinear is the seed vecLinear: scalar, with the per-input zero skip.
func refVecLinear(y, x, w, b []float32, in, out int) {
	copy(y, b[:out])
	for p := 0; p < in; p++ {
		xv := x[p]
		if xv == 0 {
			continue
		}
		row := w[p*out : (p+1)*out]
		for j := 0; j < out; j++ {
			y[j] += xv * row[j]
		}
	}
}

// refDot is the seed Dot: a plain scalar accumulation loop.
func refDot(x, y []float32) float32 {
	var s float32
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

func (s *refSession) Append(tok int) {
	m := s.m
	d := m.Cfg.Dim
	f := m.Cfg.ff() * d
	h := m.Cfg.Heads
	dh := d / h
	scale := float32(1 / math.Sqrt(float64(dh)))
	t := s.pos

	x := s.x
	copy(x, m.tok.W[tok*d:(tok+1)*d])
	pos := m.pos.W[t*d : (t+1)*d]
	for j := range x {
		x[j] += pos[j]
	}

	ln, q, attn := s.ln, s.q, s.attn
	hbuf, hg := s.hbuf, s.hg
	for l := range m.layers {
		ly := &m.layers[l]
		tensor.LayerNormRow(ln, x, ly.ln1g.W, ly.ln1b.W)

		krow := s.ks[l].Row(t)
		vrow := s.vs[l].Row(t)
		refVecLinear(q, ln, ly.wq.W, ly.bq.W, d, d)
		refVecLinear(krow, ln, ly.wk.W, ly.bk.W, d, d)
		refVecLinear(vrow, ln, ly.wv.W, ly.bv.W, d, d)

		for i := range attn {
			attn[i] = 0
		}
		for hd := 0; hd < h; hd++ {
			off := hd * dh
			qh := q[off : off+dh]
			p := s.p[:t+1]
			for j := 0; j <= t; j++ {
				p[j] = refDot(qh, s.ks[l].Row(j)[off:off+dh]) * scale
			}
			tensor.SoftmaxRow(p)
			out := attn[off : off+dh]
			for j := 0; j <= t; j++ {
				pj := p[j]
				vj := s.vs[l].Row(j)[off : off+dh]
				for i := range out {
					out[i] += pj * vj[i]
				}
			}
		}

		proj := s.proj
		refVecLinear(proj, attn, ly.wo.W, ly.bo.W, d, d)
		for j := range x {
			x[j] += proj[j]
		}

		tensor.LayerNormRow(ln, x, ly.ln2g.W, ly.ln2b.W)
		refVecLinear(hbuf, ln, ly.w1.W, ly.b1.W, d, f)
		tensor.GELU(hg, hbuf)
		mlp := s.mlp
		refVecLinear(mlp, hg, ly.w2.W, ly.b2.W, f, d)
		for j := range x {
			x[j] += mlp[j]
		}
	}

	tensor.LayerNormRow(ln, x, m.lnfg.W, m.lnfb.W)
	for v := 0; v < m.Cfg.Vocab; v++ {
		s.logits[v] = refDot(ln, m.tok.W[v*d:(v+1)*d])
	}
	s.pos++
}

func goldenModel(t testing.TB, cfg Config, seed int64) *Model {
	t.Helper()
	m, err := New(cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func randSeq(rng *rand.Rand, n, vocab int) []int {
	seq := make([]int, n)
	for i := range seq {
		seq[i] = rng.Intn(vocab)
	}
	return seq
}

func compareLogitsBits(t *testing.T, got, want []float32, ctx string) {
	t.Helper()
	for v := range want {
		if math.Float32bits(got[v]) != math.Float32bits(want[v]) {
			t.Fatalf("%s vocab %d: got %v (%#08x), seed %v (%#08x)",
				ctx, v, got[v], math.Float32bits(got[v]), want[v], math.Float32bits(want[v]))
		}
	}
}

// TestGoldenLogitsMatchSeed is the kernel rewrite's contract: logits after
// every Append must be bit-identical to the seed implementation — same
// floats, same bits — across several shapes (including dims not divisible
// by the 4-wide unroll, to cover the tail loops).
func TestGoldenLogitsMatchSeed(t *testing.T) {
	cfgs := []Config{
		{Vocab: 11, Ctx: 8, Dim: 8, Heads: 2, Layers: 2},
		{Vocab: 13, Ctx: 16, Dim: 24, Heads: 4, Layers: 3},
		{Vocab: 11, Ctx: 12, Dim: 6, Heads: 3, Layers: 2}, // dh=2, tail-heavy
	}
	for ci, cfg := range cfgs {
		m := goldenModel(t, cfg, int64(100+ci))
		rng := rand.New(rand.NewSource(int64(ci)))
		seq := randSeq(rng, cfg.Ctx, cfg.Vocab)

		s := m.NewSession()
		r := newRefSession(m)
		for pos, tok := range seq {
			if err := s.Append(tok); err != nil {
				t.Fatal(err)
			}
			r.Append(tok)
			compareLogitsBits(t, s.Logits(), r.logits, t.Name())
			_ = pos
		}
	}
}

// TestGoldenCloneMatchesSeed forks sessions mid-sequence and requires the
// clone (which copies only the filled cache rows) to keep producing
// bit-identical logits on a divergent suffix.
func TestGoldenCloneMatchesSeed(t *testing.T) {
	cfg := Config{Vocab: 13, Ctx: 16, Dim: 24, Heads: 4, Layers: 3}
	m := goldenModel(t, cfg, 41)
	rng := rand.New(rand.NewSource(9))
	prefix := randSeq(rng, 7, cfg.Vocab)

	s := m.NewSession()
	r := newRefSession(m)
	for _, tok := range prefix {
		if err := s.Append(tok); err != nil {
			t.Fatal(err)
		}
		r.Append(tok)
	}
	for branch := 0; branch < 3; branch++ {
		cs := s.Clone()
		cr := newRefSession(m)
		for l := range r.ks {
			cr.ks[l] = r.ks[l].Clone()
			cr.vs[l] = r.vs[l].Clone()
		}
		cr.pos = r.pos
		for _, tok := range randSeq(rng, cfg.Ctx-len(prefix), cfg.Vocab) {
			if err := cs.Append(tok); err != nil {
				t.Fatal(err)
			}
			cr.Append(tok)
			compareLogitsBits(t, cs.Logits(), cr.logits, "clone branch")
		}
	}
	// The original must be untouched by its clones' appends.
	if err := s.Append(1); err != nil {
		t.Fatal(err)
	}
	r.Append(1)
	compareLogitsBits(t, s.Logits(), r.logits, "original after branching")
}

// TestVecLinearMatchesSeed fuzzes the unrolled kernels directly against the
// seed loops, including zero inputs (the removed skip branch) and lengths
// exercising every tail residue mod 4.
func TestVecLinearMatchesSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	fill := func(n int) []float32 {
		s := make([]float32, n)
		for i := range s {
			if rng.Intn(8) == 0 {
				s[i] = 0 // exercise the seed's zero-skip path
			} else {
				s[i] = float32(rng.NormFloat64())
			}
		}
		return s
	}
	for trial := 0; trial < 50; trial++ {
		in := 1 + rng.Intn(33)
		out := 1 + rng.Intn(33)
		x, b := fill(in), fill(out)
		wq, wk, wv := fill(in*out), fill(in*out), fill(in*out)

		want := make([]float32, out)
		refVecLinear(want, x, wq, b, in, out)
		got := make([]float32, out)
		vecLinear(got, x, wq, b, in, out)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("vecLinear in=%d out=%d j=%d: got %v, seed %v", in, out, j, got[j], want[j])
			}
		}

		q, k, v := make([]float32, out), make([]float32, out), make([]float32, out)
		vecLinear3(q, k, v, x, wq, wk, wv, b, b, b, in, out)
		wantK, wantV := make([]float32, out), make([]float32, out)
		refVecLinear(wantK, x, wk, b, in, out)
		refVecLinear(wantV, x, wv, b, in, out)
		for j := range want {
			if q[j] != want[j] || k[j] != wantK[j] || v[j] != wantV[j] {
				t.Fatalf("vecLinear3 in=%d out=%d j=%d: q %v/%v k %v/%v v %v/%v",
					in, out, j, q[j], want[j], k[j], wantK[j], v[j], wantV[j])
			}
		}

		y := fill(in)
		if g, w := tensor.Dot(x, y), refDot(x, y); math.Float32bits(g) != math.Float32bits(w) {
			t.Fatalf("Dot len=%d: got %v, seed %v", in, g, w)
		}
		ya, yb := fill(in), make([]float32, in)
		copy(yb, ya)
		a := float32(rng.NormFloat64())
		tensor.Axpy(ya, a, x)
		for i := range yb {
			yb[i] += a * x[i]
		}
		for i := range ya {
			if ya[i] != yb[i] {
				t.Fatalf("Axpy len=%d i=%d: got %v, seed %v", in, i, ya[i], yb[i])
			}
		}
	}
}

// benchCfg is sized like the bench-scale decode model: big enough that the
// kernels dominate, small enough for -bench to converge quickly.
func benchCfg() Config { return Config{Vocab: 16, Ctx: 64, Dim: 64, Heads: 4, Layers: 4} }

func BenchmarkVecLinear(b *testing.B) {
	const in, out = 64, 256
	rng := rand.New(rand.NewSource(1))
	x, w, bias := make([]float32, in), make([]float32, in*out), make([]float32, out)
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	for i := range w {
		w[i] = float32(rng.NormFloat64())
	}
	y := make([]float32, out)
	b.Run("unrolled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			vecLinear(y, x, w, bias, in, out)
		}
	})
	b.Run("seed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			refVecLinear(y, x, w, bias, in, out)
		}
	})
}

func BenchmarkVecLinear3(b *testing.B) {
	const d = 64
	rng := rand.New(rand.NewSource(2))
	x, bias := make([]float32, d), make([]float32, d)
	wq, wk, wv := make([]float32, d*d), make([]float32, d*d), make([]float32, d*d)
	for i := range wq {
		wq[i] = float32(rng.NormFloat64())
		wk[i] = float32(rng.NormFloat64())
		wv[i] = float32(rng.NormFloat64())
	}
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	q, k, v := make([]float32, d), make([]float32, d), make([]float32, d)
	b.Run("fused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			vecLinear3(q, k, v, x, wq, wk, wv, bias, bias, bias, d, d)
		}
	})
	b.Run("separate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			vecLinear(q, x, wq, bias, d, d)
			vecLinear(k, x, wk, bias, d, d)
			vecLinear(v, x, wv, bias, d, d)
		}
	})
}

func BenchmarkDot(b *testing.B) {
	const n = 256
	rng := rand.New(rand.NewSource(3))
	x, y := make([]float32, n), make([]float32, n)
	for i := range x {
		x[i] = float32(rng.NormFloat64())
		y[i] = float32(rng.NormFloat64())
	}
	var sink float32
	b.Run("unrolled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += tensor.Dot(x, y)
		}
	})
	b.Run("seed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink += refDot(x, y)
		}
	})
	_ = sink
}

// BenchmarkAttentionInner isolates the per-head score loop: head-major
// contiguous cache rows versus the seed's [Ctx, D]-strided rows.
func BenchmarkAttentionInner(b *testing.B) {
	const ctx, d, heads = 64, 64, 4
	const dh = d / heads
	rng := rand.New(rand.NewSource(4))
	q := make([]float32, dh)
	for i := range q {
		q[i] = float32(rng.NormFloat64())
	}
	headMajor := make([]float32, ctx*dh)
	strided := tensor.NewMat(ctx, d)
	for i := range headMajor {
		headMajor[i] = float32(rng.NormFloat64())
	}
	strided.Randn(rng, 1)
	p := make([]float32, ctx)
	b.Run("headmajor", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := 0; j < ctx; j++ {
				p[j] = tensor.Dot(q, headMajor[j*dh:j*dh+dh])
			}
		}
	})
	b.Run("strided", func(b *testing.B) {
		const off = dh // head 1 of the seed layout
		for i := 0; i < b.N; i++ {
			for j := 0; j < ctx; j++ {
				p[j] = refDot(q, strided.Row(j)[off:off+dh])
			}
		}
	})
}

// BenchmarkSessionAppend is the ISSUE's acceptance benchmark: the rewritten
// Append must beat the seed implementation by ≥1.5x on a full-context fill.
func BenchmarkSessionAppend(b *testing.B) {
	m := goldenModel(b, benchCfg(), 7)
	rng := rand.New(rand.NewSource(5))
	seq := randSeq(rng, m.Cfg.Ctx, m.Cfg.Vocab)
	b.Run("rewritten", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := m.NewSession()
			for _, tok := range seq {
				if err := s.Append(tok); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("seed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := newRefSession(m)
			for _, tok := range seq {
				s.Append(tok)
			}
		}
	})
}

func BenchmarkSessionClone(b *testing.B) {
	m := goldenModel(b, benchCfg(), 8)
	s := m.NewSession()
	// Clone at quarter fill — the typical beam-fork point.
	for i := 0; i < m.Cfg.Ctx/4; i++ {
		if err := s.Append(i % m.Cfg.Vocab); err != nil {
			b.Fatal(err)
		}
	}
	// share: the clone itself, which only retains page references — no KV
	// floats move, regardless of how full the session is.
	b.Run("share", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := s.Clone()
			c.Release()
		}
	})
	// fork: clone plus one divergent Append, which pays the copy-on-write
	// duplication of the shared partial page — the full cost of peeling a
	// beam (or a prefix-cache hit) off a live prefix.
	b.Run("fork", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := s.Clone()
			if err := c.Append(1); err != nil {
				b.Fatal(err)
			}
			c.Release()
		}
	})
}
