package nn

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file implements the kernel worker group: row-block parallelism for
// the decode GEMMs (DESIGN.md §15). A kernel call partitions its output
// columns (equivalently, the rows of Wᵀ) into contiguous blocks; each block
// is computed by exactly one goroutine, start to finish. Because every
// output element has a single accumulator whose adds run in ascending
// input-row order inside matLinearCols, the partition never changes any
// float32 operation sequence — the result is bit-identical to the serial
// kernel for every worker count, and deciding *which* goroutine runs a
// block is pure scheduling.
//
// The group is persistent: SetKernelWorkers starts n-1 pinned helper
// goroutines once, and a kernel dispatch costs one task handoff plus a
// barrier, not a goroutine spawn. The caller always participates, so a
// dispatch makes progress even if every helper is busy with another
// session's kernels (the pool is shared by all sessions of the model and is
// safe for concurrent dispatch).

// minParallelMadds is the dispatch threshold in multiply-adds: below it the
// barrier handoff costs more than the arithmetic it would spread. A var, not
// a const, so equivalence tests can force tiny kernels through the parallel
// path.
var minParallelMadds = 8192

// minGemmCols is the smallest column block worth dispatching: narrower
// blocks thrash the same cache lines the neighbouring block owns.
const minGemmCols = 8

// kernelTask is one parallelFor dispatch. Workers claim block indices from
// next; wg is the completion barrier.
type kernelTask struct {
	fn     func(block int)
	blocks int
	next   atomic.Int64
	wg     sync.WaitGroup
}

// run claims and executes blocks until none remain. Called by the
// dispatching goroutine and by any helper that picked the task up; the
// atomic claim means a block runs exactly once no matter how many
// goroutines are draining the task.
func (t *kernelTask) run() {
	for {
		b := int(t.next.Add(1)) - 1
		if b >= t.blocks {
			return
		}
		t.fn(b)
		t.wg.Done()
	}
}

// kernelPool is the persistent worker group: workers-1 helper goroutines
// parked on the task channel (the dispatching goroutine is the last worker).
type kernelPool struct {
	workers int
	tasks   chan *kernelTask
	quit    chan struct{}
}

func newKernelPool(workers int) *kernelPool {
	p := &kernelPool{
		workers: workers,
		tasks:   make(chan *kernelTask, workers),
		quit:    make(chan struct{}),
	}
	for i := 1; i < workers; i++ {
		go p.loop()
	}
	return p
}

func (p *kernelPool) loop() {
	for {
		select {
		case t := <-p.tasks:
			t.run()
		case <-p.quit:
			return
		}
	}
}

// stop retires the pool's helpers. In-flight tasks finish normally: a
// dispatch never depends on helpers being alive (the caller drains every
// unclaimed block itself), so stopping is safe even while sessions decode.
func (p *kernelPool) stop() { close(p.quit) }

// parallelFor runs fn(0) … fn(blocks-1), each exactly once, and returns
// after all complete. Helper handoff is best-effort (non-blocking sends):
// if every helper is busy the caller simply runs all blocks itself, so the
// dispatch can never deadlock and never blocks on a stopped pool.
func (p *kernelPool) parallelFor(blocks int, fn func(int)) {
	t := &kernelTask{fn: fn, blocks: blocks}
	t.wg.Add(blocks)
	helpers := p.workers - 1
	if helpers > blocks-1 {
		helpers = blocks - 1
	}
hint:
	for i := 0; i < helpers; i++ {
		select {
		case p.tasks <- t:
		default:
			break hint
		}
	}
	t.run()
	t.wg.Wait()
}

// SetKernelWorkers sets the model's kernel worker-group size: n > 1 shards
// eligible kernels across n goroutines (the caller plus n-1 persistent
// helpers), 1 restores the serial path, and n <= 0 means GOMAXPROCS.
// Returns the effective count. Output is bit-identical at every setting.
//
// Safe to call concurrently with decoding — sessions pick the pool up
// per-dispatch, and a replaced pool finishes its in-flight work — but a
// resize parks the old helpers for good, so treat it as configuration, not
// a per-request knob. Calls that do not change the count are no-ops, which
// is what Engine.Clone relies on when it re-applies engine config mid-serve.
func (m *Model) SetKernelWorkers(n int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	m.kernMu.Lock()
	defer m.kernMu.Unlock()
	cur := m.kern.Load()
	curW := 1
	if cur != nil {
		curW = cur.workers
	}
	if curW == n {
		return n
	}
	if n <= 1 {
		m.kern.Store(nil)
	} else {
		m.kern.Store(newKernelPool(n))
	}
	if cur != nil {
		cur.stop()
	}
	return n
}

// KernelWorkers returns the current kernel worker-group size (1 = serial).
func (m *Model) KernelWorkers() int {
	if p := m.kern.Load(); p != nil {
		return p.workers
	}
	return 1
}

// KernelOps returns how many kernel dispatches ran sharded across the
// worker group vs. serially (pool off, or work below the dispatch
// threshold). Cumulative over the model's lifetime, across all sessions.
func (m *Model) KernelOps() (parallel, serial uint64) {
	return m.parallelOps.Load(), m.serialOps.Load()
}

// kernelBlocks decides the sharding for one kernel call: work is the call's
// multiply-add count, span the partitionable extent (output columns, or
// lanes for attention), minSpan the smallest block worth owning, and
// maxBlocks the scratch-imposed cap. Returns (nil, 1) when the call should
// stay serial. The block count depends only on the pool size and the call
// shape — never on load — so the partition, and with it every accumulator's
// add sequence, is deterministic.
func (m *Model) kernelBlocks(work, span, minSpan, maxBlocks int) (*kernelPool, int) {
	p := m.kern.Load()
	if p == nil || work < minParallelMadds || span < 2*minSpan {
		return nil, 1
	}
	n := p.workers
	if n > maxBlocks {
		n = maxBlocks
	}
	if s := span / minSpan; n > s {
		n = s
	}
	if n <= 1 {
		return nil, 1
	}
	return p, n
}

// kernelScratch is per-session, per-block workspace: block bi's goroutine
// owns dq[bi] and p[bi] exclusively for the duration of one dispatch (one
// goroutine per block), so no synchronization is needed beyond the task
// barrier.
type kernelScratch struct {
	// dq[bi] stages dequantized int8 weight rows for block bi: 12·maxW
	// floats, enough for matLinear3Cols' three 4-row groups at full width.
	// Empty when the model had no int8 store at session construction (the
	// kernels then fall back to the float32 weights, which stay correct:
	// dequantization is exact by the load-time invariant, so skipping it
	// never changes output).
	dq [][]float32
	// p[bi] is block bi's attention score row ([Ctx] floats, batch path).
	p [][]float32
}
